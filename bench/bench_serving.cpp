// cesmd load generator: throughput, tail latency, coalescing, parity.
//
// Drives a cesmd daemon with N concurrent clients issuing verification
// requests in synchronized waves. Each wave fires every client at the
// same coalescing key simultaneously, so the daemon's single-flight path
// is exercised on purpose — the run FAILS (exit 1) if the daemon never
// coalesced, because that would mean the serving tier silently degraded
// to one computation per client.
//
// Two daemon modes:
//   (default)        an in-process serve::Server on an ephemeral port —
//                    self-contained, used by local runs;
//   --port=N         connect to an externally started cesmd on loopback
//   --socket=PATH    ... or on a unix socket. This is the CI shape: the
//                    workflow starts ./cesmd --port=0, scrapes the bound
//                    port off its stdout, and points this bench at it.
//
// Parity gate: every response's bytes are memcmp'd against the local
// serialization of an in-process run_suite for that request. Any
// difference is a hard failure — the daemon's entire contract is that
// it answers with exactly the bytes the library would produce.
//
// Output: a summary table on stdout and BENCH_serving.json (override
// with --out=PATH): rps, p50/p99 latency, request/flight/coalescing
// counts, and the parity verdict. --quick shrinks the wave count for CI.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "climate/ensemble.h"
#include "core/export.h"
#include "core/suite.h"
#include "serve/client.h"
#include "util/memory.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/signals.h"
#include "util/stopwatch.h"

namespace {

using namespace cesm;

struct Args {
  bool quick = false;
  std::size_t clients = 8;
  std::size_t waves = 6;
  std::uint16_t port = 0;        ///< nonzero: external daemon on loopback
  std::string socket_path;       ///< non-empty: external daemon on unix socket
  std::string out_path = "BENCH_serving.json";
};

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: bench_serving [--quick] [--clients=N] [--waves=N]\n"
               "                     [--port=N | --socket=PATH] [--out=PATH]\n");
  std::exit(code);
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--quick") {
      args.quick = true;
    } else if (arg.rfind("--clients=", 0) == 0) {
      args.clients = std::stoul(value("--clients="));
    } else if (arg.rfind("--waves=", 0) == 0) {
      args.waves = std::stoul(value("--waves="));
    } else if (arg.rfind("--port=", 0) == 0) {
      args.port = static_cast<std::uint16_t>(std::stoul(value("--port=")));
    } else if (arg.rfind("--socket=", 0) == 0) {
      args.socket_path = value("--socket=");
    } else if (arg.rfind("--out=", 0) == 0) {
      args.out_path = value("--out=");
    } else if (arg == "--help") {
      usage(0);
    } else {
      std::fprintf(stderr, "bench_serving: unknown argument %s\n", arg.c_str());
      usage(2);
    }
  }
  if (args.clients == 0 || args.waves == 0) usage(2);
  return args;
}

/// The bench workload: a small ensemble so a wave completes in hundreds
/// of milliseconds, with distinct variables (distinct coalescing keys)
/// alternating across waves.
serve::VerifyRequest wave_request(std::size_t wave) {
  static const char* kVariables[] = {"U", "FSDSC", "CCN3"};
  serve::VerifyRequest request;
  request.ensemble.grid = climate::GridSpec{12, 18, 3};
  request.ensemble.members = 9;
  request.ensemble.latent.k = 48;
  request.ensemble.latent.spinup_steps = 200;
  request.ensemble.latent.average_steps = 400;
  request.variable = kVariables[wave % (sizeof(kVariables) / sizeof(*kVariables))];
  request.config.test_member_count = 2;
  request.config.grib_max_extra_digits = 3;
  request.config.run_bias = false;
  return request;
}

serve::Client connect(const Args& args, const serve::Server* local) {
  if (!args.socket_path.empty()) return serve::Client::connect_unix(args.socket_path);
  if (args.port != 0) return serve::Client::connect_tcp("127.0.0.1", args.port);
  return serve::Client::connect_tcp("127.0.0.1", local->port());
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  util::install_signal_drain();

  // In-process daemon unless pointed at an external one.
  std::unique_ptr<serve::Server> local;
  if (args.socket_path.empty() && args.port == 0) {
    serve::ServerConfig cfg;
    cfg.max_inflight = args.clients;
    local = std::make_unique<serve::Server>(cfg);
    local->start();
  }

  try {
    const std::size_t waves = args.quick ? 3 : args.waves;

    // Local ground truth per wave, serialized with the canonical encoder.
    // (Distinct waves may share a variable; the map of expected bytes is
    // keyed by wave index anyway — recomputation is the honest baseline.)
    std::printf("bench_serving: computing local ground truth (%zu waves)...\n",
                waves);
    std::vector<Bytes> expected(waves);
    for (std::size_t w = 0; w < waves; ++w) {
      const serve::VerifyRequest request = wave_request(w);
      const climate::EnsembleGenerator ensemble(request.ensemble);
      core::SuiteResults results =
          core::run_suite(ensemble, request.config, {request.variable});
      expected[w] = serve::serialize_variable_result(
          serve::filter_result(results.variables.at(0), request.variants));
    }

    const auto before = connect(args, local.get()).stats();

    std::vector<double> latencies_ms;
    std::atomic<std::uint64_t> parity_failures{0};
    std::atomic<std::uint64_t> request_errors{0};
    std::mutex latency_mu;

    Stopwatch run_sw;
    for (std::size_t w = 0; w < waves && !util::interrupt_requested(); ++w) {
      const serve::VerifyRequest request = wave_request(w);
      std::vector<std::thread> threads;
      threads.reserve(args.clients);
      for (std::size_t c = 0; c < args.clients; ++c) {
        threads.emplace_back([&, w] {
          try {
            serve::Client client = connect(args, local.get());
            Stopwatch sw;
            const Bytes response = client.verify_raw(request);
            const double ms = sw.millis();
            if (response.size() != expected[w].size() ||
                std::memcmp(response.data(), expected[w].data(),
                            response.size()) != 0) {
              parity_failures.fetch_add(1);
            }
            std::lock_guard lock(latency_mu);
            latencies_ms.push_back(ms);
          } catch (const Error& e) {
            std::fprintf(stderr, "bench_serving: request failed: %s\n", e.what());
            request_errors.fetch_add(1);
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    const double run_seconds = run_sw.seconds();

    const auto after = connect(args, local.get()).stats();
    auto delta = [&](const char* key) {
      return after.at(key) - (before.count(key) != 0 ? before.at(key) : 0);
    };
    const std::uint64_t requests = delta("serve.responses");
    const std::uint64_t flights = delta("serve.flights");
    const std::uint64_t coalesced = delta("serve.coalesced_joins");

    std::sort(latencies_ms.begin(), latencies_ms.end());
    const double p50 = percentile(latencies_ms, 0.50);
    const double p99 = percentile(latencies_ms, 0.99);
    const double rps =
        run_seconds > 0.0 ? static_cast<double>(latencies_ms.size()) / run_seconds : 0.0;
    const bool parity = parity_failures.load() == 0 && request_errors.load() == 0 &&
                        latencies_ms.size() == waves * args.clients;
    // One flight per wave is the ideal; anything below clients*waves
    // proves coalescing. Zero joins means single-flight never engaged.
    const bool coalescing_ok = coalesced > 0;

    std::printf("clients=%zu waves=%zu requests=%llu\n", args.clients, waves,
                static_cast<unsigned long long>(requests));
    std::printf("throughput: %.2f responses/s   latency p50 %.1f ms  p99 %.1f ms\n",
                rps, p50, p99);
    std::printf("flights=%llu coalesced_joins=%llu (%.0f%% of requests joined)\n",
                static_cast<unsigned long long>(flights),
                static_cast<unsigned long long>(coalesced),
                requests != 0 ? 100.0 * static_cast<double>(coalesced) /
                                    static_cast<double>(requests)
                              : 0.0);
    std::printf("parity vs in-process run_suite: %s\n", parity ? "yes" : "NO");
    std::printf("coalescing engaged: %s\n", coalescing_ok ? "yes" : "NO");

    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"serving\",\n"
         << "  \"quick\": " << (args.quick ? "true" : "false") << ",\n"
         << "  \"clients\": " << args.clients << ",\n"
         << "  \"waves\": " << waves << ",\n"
         << "  \"requests\": " << requests << ",\n"
         << "  \"seconds\": " << run_seconds << ",\n"
         << "  \"rps\": " << rps << ",\n"
         << "  \"p50_ms\": " << p50 << ",\n"
         << "  \"p99_ms\": " << p99 << ",\n"
         << "  \"flights\": " << flights << ",\n"
         << "  \"coalesced_joins\": " << coalesced << ",\n"
         << "  \"peak_rss_bytes\": " << util::peak_rss_bytes() << ",\n"
         << "  \"parity\": " << (parity ? "true" : "false") << ",\n"
         << "  \"coalescing\": " << (coalescing_ok ? "true" : "false") << "\n"
         << "}\n";
    core::write_text_file(args.out_path, json.str());

    if (local != nullptr) local->stop();
    if (util::interrupt_requested()) return util::interrupt_exit_code();
    return parity && coalescing_ok ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "bench_serving: %s\n", e.what());
    if (local != nullptr) local->stop();
    return 1;
  }
}
