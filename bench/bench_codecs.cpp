// google-benchmark microbenchmarks of every codec's encode/decode
// throughput on CAM-like data (the per-element cost behind Table 5).

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "compress/variants.h"
#include "util/rng.h"

namespace {

using namespace cesm;

std::vector<float> cam_like_field(std::size_t n) {
  Pcg32 rng(0xbe6c4);
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(std::sin(i * 0.013) * 40.0 + 10.0 +
                                 rng.uniform(-2.0, 2.0));
  }
  return data;
}

void encode_benchmark(benchmark::State& state, const char* variant) {
  const comp::CodecPtr codec = comp::make_variant(variant);
  const auto data = cam_like_field(static_cast<std::size_t>(state.range(0)));
  const comp::Shape shape = comp::Shape::d1(data.size());
  std::size_t bytes = 0;
  for (auto _ : state) {
    Bytes stream = codec->encode(data, shape);
    bytes = stream.size();
    benchmark::DoNotOptimize(stream.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(data.size()));
  state.counters["CR"] = comp::compression_ratio(bytes, data.size());
}

void decode_benchmark(benchmark::State& state, const char* variant) {
  const comp::CodecPtr codec = comp::make_variant(variant);
  const auto data = cam_like_field(static_cast<std::size_t>(state.range(0)));
  const Bytes stream = codec->encode(data, comp::Shape::d1(data.size()));
  for (auto _ : state) {
    std::vector<float> out = codec->decode(stream);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(data.size()));
}

}  // namespace

#define CODEC_BENCH(name, variant)                                               \
  BENCHMARK_CAPTURE(encode_benchmark, name##_encode, variant)->Arg(1 << 16);     \
  BENCHMARK_CAPTURE(decode_benchmark, name##_decode, variant)->Arg(1 << 16)

CODEC_BENCH(apax2, "APAX-2");
CODEC_BENCH(apax5, "APAX-5");
CODEC_BENCH(fpzip24, "fpzip-24");
CODEC_BENCH(fpzip16, "fpzip-16");
CODEC_BENCH(isabela05, "ISA-0.5");
CODEC_BENCH(grib2, "GRIB2:3");
CODEC_BENCH(netcdf4, "NetCDF-4");

BENCHMARK_MAIN();
