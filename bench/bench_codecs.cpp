// Codec throughput benchmark: encode/decode MB/s for each codec family
// with the scalar reference kernels and with the vectorized kernels
// (simd.h), on CAM-like data (the per-element cost behind Table 5).
//
// Every measured pair is also a parity check: the scalar-mode and
// simd-mode streams must be byte-identical and the decodes bit-identical,
// or the run exits nonzero — a throughput number from a kernel that
// changes the stream is worthless. Output: a table on stdout and
// BENCH_codecs.json (override with --out=PATH); --quick shrinks the field
// and repeat count for CI smoke runs.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "compress/simd.h"
#include "util/memory.h"
#include "compress/variants.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace cesm;

/// Sink defeating dead-code elimination of the measured calls.
volatile std::size_t g_sink = 0;

struct CodecResult {
  std::string name;
  double scalar_encode_s = 0.0;
  double simd_encode_s = 0.0;
  double scalar_decode_s = 0.0;
  double simd_decode_s = 0.0;
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
  bool parity = true;

  [[nodiscard]] double mbps(double seconds) const {
    return static_cast<double>(bytes_in) / seconds * 1e-6;
  }
  [[nodiscard]] double encode_speedup() const { return scalar_encode_s / simd_encode_s; }
  [[nodiscard]] double decode_speedup() const { return scalar_decode_s / simd_decode_s; }
};

/// Best-of-`reps` wall time of one repeated call (one warmup pass first).
double best_of(int reps, const std::function<std::size_t()>& run) {
  g_sink = g_sink + run();  // warmup: page in, prime caches
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    g_sink = g_sink + run();
    best = std::min(best, sw.seconds());
  }
  return best;
}

/// CAM-like 2D field: smooth large-scale structure plus weather noise, the
/// regime all four codec families were tuned for.
std::vector<float> cam_like_field(std::size_t n) {
  Pcg32 rng(0xbe6c4);
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.013) * 40.0 +
                                 10.0 + rng.uniform(-2.0, 2.0));
  }
  return data;
}

void write_json(std::ofstream& out, const std::vector<CodecResult>& results,
                std::size_t n, bool quick, bool parity, double suite_seconds) {
  // Codec encode/decode is single-threaded; the worker fields exist so this
  // file shares a schema with BENCH_suite.json and stays honest if a future
  // harness ever threads the loop.
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t threads = 1;
  out << "{\n"
      << "  \"bench\": \"codecs\",\n"
      << "  \"elements\": " << n << ",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"hardware_concurrency\": " << hw << ",\n"
      << "  \"effective_workers\": " << (hw == 0 ? threads : std::min<std::size_t>(threads, hw))
      << ",\n"
      << "  \"oversubscribed\": " << (hw != 0 && threads > hw ? "true" : "false") << ",\n"
      << "  \"simd_supported\": " << (comp::simd::simd_supported() ? "true" : "false")
      << ",\n"
      << "  \"parity\": " << (parity ? "true" : "false") << ",\n"
      << "  \"peak_rss_bytes\": " << util::peak_rss_bytes() << ",\n"
      << "  \"suite_seconds\": " << suite_seconds << ",\n"
      << "  \"benches\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CodecResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", "
        << "\"scalar_encode_mbps\": " << r.mbps(r.scalar_encode_s) << ", "
        << "\"simd_encode_mbps\": " << r.mbps(r.simd_encode_s) << ", "
        << "\"encode_speedup\": " << r.encode_speedup() << ", "
        << "\"scalar_decode_mbps\": " << r.mbps(r.scalar_decode_s) << ", "
        << "\"simd_decode_mbps\": " << r.mbps(r.simd_decode_s) << ", "
        << "\"decode_speedup\": " << r.decode_speedup() << ", "
        << "\"compression_ratio\": "
        << static_cast<double>(r.bytes_out) / static_cast<double>(r.bytes_in) << ", "
        << "\"parity\": " << (r.parity ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_codecs.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "usage: bench_codecs [--quick] [--out=BENCH_codecs.json]\n");
      return arg == "--help" ? 0 : 2;
    }
  }

  // Default: one 3D variable's worth of points (48602-point fv0.9x1.25
  // horizontal grid x 30 levels, rounded to a 2D shape the GRIB2 wavelet
  // can tile). Quick keeps CI runs to a fraction of a second per codec.
  const std::size_t rows = quick ? 64 : 1459;
  const std::size_t cols = quick ? 256 : 1000;
  const std::size_t n = rows * cols;
  const int reps = quick ? 3 : 5;

  const std::vector<float> data = cam_like_field(n);
  const comp::Shape shape = comp::Shape::d2(rows, cols);

  const char* variants[] = {"fpzip-24", "ISA-0.5", "APAX-2", "GRIB2:3"};

  const Stopwatch suite_clock;
  std::vector<CodecResult> results;
  bool all_parity = true;
  for (const char* variant : variants) {
    const comp::CodecPtr codec = comp::make_variant(variant);
    CodecResult r;
    r.name = variant;
    r.bytes_in = n * sizeof(float);

    Bytes scalar_stream, simd_stream;
    std::vector<float> scalar_out, simd_out;
    {
      comp::simd::ScopedMode scoped(comp::simd::Mode::kScalar);
      scalar_stream = codec->encode(data, shape);
      scalar_out = codec->decode(scalar_stream);
      r.scalar_encode_s =
          best_of(reps, [&] { return codec->encode(data, shape).size(); });
      r.scalar_decode_s =
          best_of(reps, [&] { return codec->decode(scalar_stream).size(); });
    }
    {
      comp::simd::ScopedMode scoped(comp::simd::Mode::kSimd);
      simd_stream = codec->encode(data, shape);
      simd_out = codec->decode(scalar_stream);
      r.simd_encode_s = best_of(reps, [&] { return codec->encode(data, shape).size(); });
      r.simd_decode_s =
          best_of(reps, [&] { return codec->decode(scalar_stream).size(); });
    }
    r.bytes_out = scalar_stream.size();
    r.parity = scalar_stream == simd_stream && scalar_out.size() == simd_out.size() &&
               std::memcmp(scalar_out.data(), simd_out.data(),
                           scalar_out.size() * sizeof(float)) == 0;
    all_parity = all_parity && r.parity;
    results.push_back(r);
  }
  const double suite_seconds = suite_clock.seconds();

  std::printf("%-10s %14s %14s %8s %14s %14s %8s %7s\n", "codec", "enc scalar",
              "enc simd", "enc x", "dec scalar", "dec simd", "dec x", "parity");
  for (const CodecResult& r : results) {
    std::printf("%-10s %9.1f MB/s %9.1f MB/s %7.2fx %9.1f MB/s %9.1f MB/s %7.2fx %7s\n",
                r.name.c_str(), r.mbps(r.scalar_encode_s), r.mbps(r.simd_encode_s),
                r.encode_speedup(), r.mbps(r.scalar_decode_s), r.mbps(r.simd_decode_s),
                r.decode_speedup(), r.parity ? "ok" : "FAIL");
  }
  std::printf("kernel modes: scalar vs %s (simd %ssupported)  n=%zu reps=%d%s\n",
              comp::simd::mode_name(comp::simd::Mode::kSimd),
              comp::simd::simd_supported() ? "" : "NOT ", n, reps,
              quick ? " quick" : "");
  if (!all_parity) {
    std::fprintf(stderr, "PARITY FAILURE: simd stream or decode differs from scalar\n");
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  write_json(out, results, n, quick, all_parity, suite_seconds);
  std::printf("wrote %s\n", out_path.c_str());
  return all_parity ? 0 : 1;
}
