// Ablation studies for the library's own design choices:
//   1. fpzip predictor rank — flat 1-D stream vs 2-D vs 3-D Lorenzo;
//   2. APAX pre-filter — forced-raw vs adaptive derivative selection
//      (via quality mode on raw vs ramped data), and block-size sweep
//      by comparing fixed-rate error at the advertised rates;
//   3. deflate shuffle filter — on/off on float payloads.
// Each study prints the measured effect so regressions in these choices
// are visible.

#include <cstdio>

#include "climate/ensemble.h"
#include "compress/apax/apax.h"
#include "compress/deflate/deflate.h"
#include "compress/fpz/fpz.h"
#include "core/metrics.h"
#include "core/report.h"

int main() {
  using namespace cesm;

  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec::reduced();
  spec.members = 3;
  const climate::EnsembleGenerator model(spec);
  const climate::Field u = model.field("U", 1);  // 3-D: {nlev, ncol}
  const std::size_t nlev = u.shape.dims[0];
  const std::size_t ncol = u.shape.dims[1];
  const std::size_t nlat = model.grid().spec().nlat;
  const std::size_t nlon = model.grid().spec().nlon;

  std::printf("Ablation 1: fpzip Lorenzo predictor rank (lossless size on U)\n");
  {
    const comp::FpzCodec fpz(32);
    core::TextTable table({"layout", "bytes", "CR"});
    const auto entry = [&](const char* label, const comp::Shape& shape) {
      const Bytes s = fpz.encode(u.data, shape);
      table.add_row({label, std::to_string(s.size()),
                     core::format_fixed(comp::compression_ratio(s.size(), u.size()), 3)});
    };
    entry("1-D stream", comp::Shape::d1(u.size()));
    entry("2-D {lev, col}", comp::Shape::d2(nlev, ncol));
    entry("3-D {lev, lat, lon}", comp::Shape::d3(nlev, nlat, nlon));
    std::fputs(table.to_string().c_str(), stdout);
    std::printf(
        "expected: multi-dim prediction beats the flat stream; 3-D gains depend\n"
        "on how coherent the extra dimension is (weak on the coarse-lat grid)\n\n");
  }

  std::printf("Ablation 2: APAX adaptive pre-filter and mantissa budget\n");
  {
    core::TextTable table({"configuration", "CR", "NRMSE"});
    for (double rate : {2.0, 4.0, 5.0}) {
      const comp::ApaxCodec codec = comp::ApaxCodec::fixed_rate(rate);
      const comp::RoundTrip rt = comp::round_trip(codec, u.data, u.shape);
      const core::ErrorMetrics m = core::compare_fields(u, rt.reconstructed);
      table.add_row({"fixed-rate " + core::format_fixed(rate, 0), core::format_fixed(rt.cr, 3),
                     core::format_sci(m.nrmse)});
    }
    for (unsigned bits : {16u, 10u, 6u}) {
      const comp::ApaxCodec codec = comp::ApaxCodec::fixed_quality(bits);
      const comp::RoundTrip rt = comp::round_trip(codec, u.data, u.shape);
      const core::ErrorMetrics m = core::compare_fields(u, rt.reconstructed);
      table.add_row({"fixed-quality " + std::to_string(bits) + "b",
                     core::format_fixed(rt.cr, 3), core::format_sci(m.nrmse)});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::printf("expected: error rises smoothly as the mantissa budget shrinks\n\n");
  }

  std::printf("Ablation 3: deflate byte-shuffle filter on float payloads\n");
  {
    core::TextTable table({"filter", "bytes", "CR"});
    for (bool shuffle : {false, true}) {
      const comp::DeflateCodec codec(shuffle);
      const Bytes s = codec.encode(u.data, u.shape);
      table.add_row({shuffle ? "shuffle + deflate" : "deflate only",
                     std::to_string(s.size()),
                     core::format_fixed(comp::compression_ratio(s.size(), u.size()), 3)});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::printf("expected: shuffling groups exponent bytes => materially smaller\n");
  }
  return 0;
}
