// Reproduces paper Figure 1: box plots of (a) the normalized maximum
// pointwise error and (b) the normalized RMSE over all 170 variable
// datasets, one box per compression variant. Rendered as numeric quartile
// tables plus ASCII boxes on a log10 axis (the paper's y-axes are log).

#include <cstdio>
#include <map>

#include "common.h"
#include "core/export.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace cesm;
  bench::Options options = bench::Options::parse(argc, argv);
  options.run_bias = false;  // Figure 1 only needs §4.2 error metrics
  const climate::EnsembleGenerator ens = bench::make_ensemble(options);
  const std::vector<std::string> variables =
      bench::select_variables(ens, options.var_limit);

  std::printf(
      "Figure 1: Normalized maximum pointwise and normalized RMS errors for all\n"
      "%zu variable datasets.\n", variables.size());
  std::printf("(grid: %zu columns x %zu levels, %zu members)\n\n", ens.grid().columns(),
              ens.grid().levels(), options.members);

  const core::SuiteResults results =
      core::run_suite(ens, bench::suite_config(options), variables);

  // Collect per-variant distributions over variables (mean over the test
  // members of each variable, like the paper's single-file measurements).
  std::map<std::string, std::vector<double>> enmax, nrmse;
  for (const core::VariableResult& var : results.variables) {
    for (std::size_t vi = 0; vi < results.variant_names.size(); ++vi) {
      double e = 0.0, n = 0.0;
      for (const core::MemberEvaluation& m : var.verdicts[vi].members) {
        e += m.metrics.e_nmax;
        n += m.metrics.nrmse;
      }
      const auto cnt = static_cast<double>(var.verdicts[vi].members.size());
      enmax[results.variant_names[vi]].push_back(e / cnt);
      nrmse[results.variant_names[vi]].push_back(n / cnt);
    }
  }

  const auto render = [&](const char* title,
                          std::map<std::string, std::vector<double>>& data) {
    std::printf("%s\n", title);
    std::vector<core::LabelledBox> boxes;
    for (const std::string& variant : bench::variant_order()) {
      core::LabelledBox b;
      b.label = variant;
      b.box = stats::box_summary(data[variant]);
      boxes.push_back(std::move(b));
    }
    std::fputs(core::render_boxplot_log(boxes).c_str(), stdout);
    std::printf("\n");
  };
  render("(a) Normalized maximum pointwise error", enmax);
  render("(b) Normalized RMSE", nrmse);

  // Machine-readable series for external plotting.
  std::string csv = "variant,variable,e_nmax,nrmse\n";
  for (const core::VariableResult& var : results.variables) {
    for (std::size_t vi = 0; vi < results.variant_names.size(); ++vi) {
      double e = 0.0, n = 0.0;
      for (const core::MemberEvaluation& m : var.verdicts[vi].members) {
        e += m.metrics.e_nmax;
        n += m.metrics.nrmse;
      }
      const auto cnt = static_cast<double>(var.verdicts[vi].members.size());
      csv += results.variant_names[vi] + "," + var.variable + "," +
             core::format_sci(e / cnt, 6) + "," + core::format_sci(n / cnt, 6) + "\n";
    }
  }
  core::write_text_file("figure1_series.csv", csv);
  std::printf("per-(variant,variable) series written to figure1_series.csv\n\n");

  std::printf(
      "Paper shape checks: within each family the boxes shift upward with\n"
      "compression level; each variant spans several orders of magnitude across\n"
      "the diverse variables — the motivation for per-variable treatment.\n");
  bench::write_profile(options);
  return 0;
}
