// Reproduces paper Table 7: results from customizing each compression
// method by variable ("hybrid" methods, §5.4) — average/best/worst CR and
// average quality metrics per family, with lossless NetCDF-4 ("NC") as the
// reference column.

#include <cstdio>

#include "common.h"
#include "core/hybrid.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace cesm;
  const bench::Options options = bench::Options::parse(argc, argv);
  const climate::EnsembleGenerator ens = bench::make_ensemble(options);
  const std::vector<std::string> variables =
      bench::select_variables(ens, options.var_limit);

  std::printf(
      "Table 7: Results from customizing each compression method by variable and\n"
      "forming a hybrid method (%zu variables).\n", variables.size());
  std::printf("(grid: %zu columns x %zu levels, %zu members)\n\n", ens.grid().columns(),
              ens.grid().levels(), options.members);

  const core::SuiteResults results =
      core::run_suite(ens, bench::suite_config(options), variables);
  const std::vector<core::HybridSummary> hybrids = core::build_all_hybrids(results);

  core::TextTable table({"", "GRIB2", "ISABELA", "fpzip", "APAX", "NC"});
  const auto row = [&](const char* label, auto getter, int digits, bool sci) {
    std::vector<std::string> cells = {label};
    // Table 7 column order: GRIB2, ISABELA, fpzip, APAX, NC.
    for (const char* family : {"GRIB2", "ISABELA", "fpzip", "APAX", "NetCDF-4"}) {
      for (const core::HybridSummary& h : hybrids) {
        if (h.family == family) {
          const double v = getter(h);
          cells.push_back(sci ? core::format_sci(v, 3) : core::format_fixed(v, digits));
        }
      }
    }
    table.add_row(std::move(cells));
  };
  row("avg. CR", [](const auto& h) { return h.avg_cr; }, 2, false);
  row("best CR", [](const auto& h) { return h.best_cr; }, 2, false);
  row("worst CR", [](const auto& h) { return h.worst_cr; }, 2, false);
  row("avg. rho", [](const auto& h) { return h.avg_pearson; }, 7, false);
  row("avg. nrmse", [](const auto& h) { return h.avg_nrmse; }, 0, true);
  row("avg. e_nmax", [](const auto& h) { return h.avg_enmax; }, 0, true);
  std::fputs(table.to_string().c_str(), stdout);

  std::printf(
      "\nPaper shape checks: every hybrid beats the all-lossless NC column on\n"
      "average CR; fpzip achieves the best (lowest) average CR with APAX next;\n"
      "average rho stays at five-nines or better for every family.\n");
  bench::write_profile(options);
  return 0;
}
