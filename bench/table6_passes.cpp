// Reproduces paper Table 6: the number of variables (out of the 170-wide
// CAM census) passing each of the four acceptance tests — Pearson ρ, the
// RMSZ ensemble test, the E_nmax ensemble test, and the bias test — for
// every compression variant, plus the "all" column.
//
// This is the heaviest harness: the bias column compresses the entire
// 101-member ensemble per (variable, variant). Use --vars=N or --no-bias
// for a preview.

#include <cstdio>

#include "common.h"
#include "core/export.h"
#include "core/report.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace cesm;
  const bench::Options options = bench::Options::parse(argc, argv);
  const climate::EnsembleGenerator ens = bench::make_ensemble(options);
  const std::vector<std::string> variables =
      bench::select_variables(ens, options.var_limit);

  std::printf("Table 6: Number of passes for all compression methods on %zu variables.\n",
              variables.size());
  std::printf("(grid: %zu columns x %zu levels, %zu members, bias %s)\n\n",
              ens.grid().columns(), ens.grid().levels(), options.members,
              options.run_bias ? "on" : "OFF");

  Stopwatch sw;
  const core::SuiteResults results =
      core::run_suite(ens, bench::suite_config(options), variables);

  core::TextTable table({"Comp. Method", "rho", "RMSZ ens.", "E_nmax ens.", "bias", "all"});
  for (const core::MethodTally& row : results.tally()) {
    table.add_row({row.codec, std::to_string(row.rho), std::to_string(row.rmsz),
                   std::to_string(row.enmax), std::to_string(row.bias),
                   std::to_string(row.all)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nsuite wall time: %.1f s\n", sw.seconds());

  // Machine-readable export alongside the table (suite_results.csv in cwd).
  core::write_text_file("table6_suite_results.csv", core::suite_results_csv(results));
  std::printf("per-(variable,variant) details written to table6_suite_results.csv\n");
  std::printf(
      "\nPaper shape checks: pass counts fall as compression rises within each\n"
      "family (APAX-2 > APAX-4 > APAX-5; fpzip-24 > fpzip-16; ISA-0.1 > ISA-0.5 >\n"
      "ISA-1.0); fpzip-24 and APAX-2 are the safest variants; no method passes\n"
      "every variable, motivating the per-variable hybrid of Table 7.\n");
  bench::write_profile(options);
  return 0;
}
