// Reproduces paper Table 4: maximum relative (normalized) pointwise errors
// e_nmax (and compression ratio) between the original and reconstructed
// datasets for U, FSDSC, Z3 and CCN3.

#include <cstdio>
#include <map>

#include "common.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace cesm;
  const bench::Options options = bench::Options::parse(argc, argv, /*paper_scale=*/true);
  const climate::EnsembleGenerator eval_ens = bench::make_ensemble(options);

  bench::Options tuning_options = options;
  tuning_options.grid = climate::GridSpec::reduced();
  const climate::EnsembleGenerator tuning_ens = bench::make_ensemble(tuning_options);

  std::printf(
      "Table 4: Maximum normalized pointwise errors e_nmax (and CR) between the\n"
      "original and reconstructed datasets.\n");
  std::printf("(grid: %zu columns x %zu levels, member 1)\n\n", eval_ens.grid().columns(),
              eval_ens.grid().levels());

  std::map<std::string, std::map<std::string, bench::VariantOutcome>> cells;
  for (const char* variable : climate::kSpotlightVariables) {
    for (bench::VariantOutcome& out :
         bench::evaluate_variants(eval_ens, tuning_ens, variable, 1)) {
      cells[variable][out.variant] = out;
    }
  }

  core::TextTable table({"Comp. Method", "U", "FSDSC", "Z3", "CCN3"});
  for (const std::string& variant : bench::variant_order()) {
    std::vector<std::string> row = {variant};
    for (const char* variable : climate::kSpotlightVariables) {
      const bench::VariantOutcome& out = cells[variable][variant];
      row.push_back(core::format_sci(out.metrics.e_nmax) + " (" + bench::paper_cr(out.cr) +
                    ")");
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nPaper shape check: e_nmax roughly tracks NRMSE one order of magnitude higher\n"
      "(compare against table3_nrmse output).\n");
  bench::write_profile(options);
  return 0;
}
