// Reproduces paper Table 1: "Algorithm properties" — the capability matrix
// of the four candidate methods against the §3.1 selection criteria.

#include <cstdio>

#include "compress/variants.h"
#include "core/report.h"

int main() {
  using namespace cesm;

  std::printf("Table 1: Algorithm properties.\n\n");
  core::TextTable table({"Method", "lossless mode", "special values", "freely avail.",
                         "fixed quality", "fixed CR", "32- & 64-bit"});

  struct Row {
    const char* label;
    const char* variant;
  };
  // Capability flags describe the *method*, so query unwrapped variants.
  const Row rows[] = {
      {"GRIB2 + jpeg2000", "GRIB2:4"},
      {"APAX", "APAX-2"},
      {"fpzip", "fpzip-24"},
      {"ISABELA", "ISA-0.5"},
  };

  const auto yn = [](bool b) { return b ? "Y" : "N"; };
  for (const Row& row : rows) {
    const comp::CodecPtr codec = comp::make_variant(row.variant);
    const comp::Capabilities c = codec->capabilities();
    table.add_row({row.label, yn(c.lossless_mode), yn(c.special_values),
                   yn(c.freely_available), yn(c.fixed_quality), yn(c.fixed_rate),
                   yn(c.handles_64bit)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nNotes: APAX lossless mode is 32-bit only (paper footnote 1); methods without\n"
      "native special-value support gain it through the library's pre/post-processing\n"
      "wrapper (SpecialValueCodec), as the paper anticipates in §5.4.\n");
  return 0;
}
