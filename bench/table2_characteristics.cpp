// Reproduces paper Table 2: characteristics of the datasets for the four
// spotlight variables U, FSDSC, Z3 and CCN3 — min, max, mean, standard
// deviation, and the NetCDF-4 lossless compression ratio (§4.1).

#include <cstdio>

#include "common.h"
#include "core/metrics.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace cesm;
  const bench::Options options = bench::Options::parse(argc, argv, /*paper_scale=*/true);
  const climate::EnsembleGenerator ens = bench::make_ensemble(options);

  std::printf("Table 2: Characteristics of the datasets for variables U, FSDSC, Z3, CCN3.\n");
  std::printf("(grid: %zu columns x %zu levels, member 1)\n\n", ens.grid().columns(),
              ens.grid().levels());

  core::TextTable table({"Variable", "units", "x_min", "x_max", "mu_X", "sigma_X", "CR"});
  for (const char* name : climate::kSpotlightVariables) {
    const climate::VariableSpec& spec = ens.variable(name);
    const climate::Field field = ens.field(spec, 1);
    const core::Characterization c = core::characterize(field);
    table.add_row({spec.name, spec.units, core::format_sci(c.summary.min, 3),
                   core::format_sci(c.summary.max, 3), core::format_sci(c.summary.mean, 3),
                   core::format_sci(c.summary.stddev, 3),
                   core::format_fixed(c.lossless_cr, 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nPaper reference (CAM ne30 data):      U [-2.56e1, 5.45e1] mu 6.39 sd 1.22e1 CR .75\n"
      "  FSDSC [1.24e2, 3.26e2] mu 2.43e2 sd 4.83e1 CR .66 | Z3 [4.12e1, 3.77e4] CR .58\n"
      "  CCN3 [3.37e-5, 1.24e3] mu 2.66e1 sd 5.57e1 CR .71\n");
  bench::write_profile(options);
  return 0;
}
