// Microbenchmark: fused stats kernels vs the legacy scalar two-pass loops.
//
// Measures the four §4 hot-path kernels (summarize moments, Pearson
// co-moments, RMSZ z-score sums, error norms) on a Z3-like large-offset
// field, unmasked and with a realistic ocean-basin mask, and reports the
// fused/legacy speedup. Output: a table on stdout and BENCH_kernels.json
// (override with --out=PATH). --quick shrinks the field and repeat count
// for CI smoke runs.
//
// The legacy side calls the stats::kernels::reference implementations —
// the seed's exact algorithms, compiled in the same TU with the same
// flags as the fused kernels, so the comparison isolates the algorithmic
// restructuring (blocking, lanes, mask hoisting) rather than compiler
// settings.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "stats/kernels.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace cesm;
namespace k = cesm::stats::kernels;

/// Sink defeating dead-code elimination of the measured calls.
volatile double g_sink = 0.0;

struct BenchResult {
  std::string name;
  double legacy_seconds = 0.0;
  double fused_seconds = 0.0;
  std::size_t elements = 0;

  [[nodiscard]] double speedup() const { return legacy_seconds / fused_seconds; }
  [[nodiscard]] double fused_melems() const {
    return static_cast<double>(elements) / fused_seconds * 1e-6;
  }
  [[nodiscard]] double legacy_melems() const {
    return static_cast<double>(elements) / legacy_seconds * 1e-6;
  }
};

/// Best-of-`reps` wall time of one repeated call (one warmup pass first).
double best_of(int reps, const std::function<double()>& run) {
  g_sink = g_sink + run();  // warmup: page in, prime caches
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    g_sink = g_sink + run();
    best = std::min(best, sw.seconds());
  }
  return best;
}

/// Z3-like field: geopotential-height magnitude with small variation —
/// the adversarial case for single-pass moment accuracy and the typical
/// magnitude regime of the paper's 3D variables.
std::vector<float> make_field(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(37000.0 + rng.uniform(-5.0, 5.0));
  return v;
}

/// Ocean-style mask: contiguous invalid basins plus scattered fill points
/// (~30% invalid), exercising the per-block all-valid fast path and both
/// slow paths.
std::vector<std::uint8_t> make_mask(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> mask(n, 1);
  Pcg32 rng(seed);
  std::size_t i = 0;
  while (i < n) {
    i += 3000 + rng.bounded(9000);                    // land run
    const std::size_t basin = 1500 + rng.bounded(5000);  // ocean run
    for (std::size_t j = i; j < std::min(n, i + basin); ++j) mask[j] = 0;
    i += basin;
  }
  return mask;
}

void json_escape_free_write(std::ofstream& out, const std::vector<BenchResult>& results,
                            std::size_t n, bool quick, double suite_seconds) {
  out << "{\n"
      << "  \"bench\": \"kernels\",\n"
      << "  \"elements\": " << n << ",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"peak_rss_bytes\": " << util::peak_rss_bytes() << ",\n"
      << "  \"suite_seconds\": " << suite_seconds << ",\n"
      << "  \"benches\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", "
        << "\"legacy_seconds\": " << r.legacy_seconds << ", "
        << "\"fused_seconds\": " << r.fused_seconds << ", "
        << "\"speedup\": " << r.speedup() << ", "
        << "\"legacy_melems_per_s\": " << r.legacy_melems() << ", "
        << "\"fused_melems_per_s\": " << r.fused_melems() << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr,
                   "usage: bench_kernels [--quick] [--out=BENCH_kernels.json]\n");
      return arg == "--help" ? 0 : 2;
    }
  }

  // Default: one 3D variable's worth of points (48602-point fv0.9x1.25
  // horizontal grid x 30 levels, rounded). Quick keeps CI under a second.
  const std::size_t n = quick ? 48672 * 4 : 48672 * 30;
  const int reps = quick ? 3 : 7;

  const std::vector<float> x = make_field(n, 0xBE5C);
  std::vector<float> y = x;
  {
    Pcg32 rng(0xBE5D);
    for (auto& v : y) v += static_cast<float>(rng.uniform(-0.01, 0.01));
  }
  const std::vector<std::uint8_t> mask = make_mask(n, 0xBE5E);

  // RMSZ sufficient statistics for a 101-member ensemble whose per-point
  // mean tracks the field with unit spread.
  const double members = 101.0;
  std::vector<double> sum(n), sum_sq(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mu = static_cast<double>(x[i]);
    sum[i] = members * mu;
    sum_sq[i] = members * (mu * mu + 1.0);
  }

  const Stopwatch suite_clock;
  std::vector<BenchResult> results;
  auto bench = [&](const std::string& name, const std::function<double()>& legacy,
                   const std::function<double()>& fused) {
    BenchResult r;
    r.name = name;
    r.elements = n;
    r.legacy_seconds = best_of(reps, legacy);
    r.fused_seconds = best_of(reps, fused);
    results.push_back(r);
  };

  // The headline benches run with an all-ones validity mask: that is what
  // the verify loop actually passes for fill-free variables (EnsembleStats
  // materializes Field::valid_mask(), a ones-vector). The legacy loops pay
  // a per-element mask load + branch for it; the fused kernels hoist it to
  // one memchr per block. The "-ocean" variants use a realistic ~30%
  // invalid basin mask.
  const std::vector<std::uint8_t> all_ones(n, 1);
  const std::span<const float> xs(x);
  const std::span<const float> ys(y);

  for (const bool ocean : {false, true}) {
    const std::span<const std::uint8_t> m = ocean ? std::span<const std::uint8_t>(mask)
                                                  : std::span<const std::uint8_t>(all_ones);
    const std::string suffix = ocean ? "-ocean" : "";
    bench("summarize" + suffix,
          [&, m] { return k::reference::summarize_two_pass(xs, m).m2; },
          [&, m] { return k::moments(xs, m).m2; });
    bench("pearson" + suffix,
          [&, m] { return k::reference::comoments_two_pass(xs, ys, m).sxy; },
          [&, m] { return k::comoments(xs, ys, m).sxy; });
    bench("rmsz" + suffix,
          [&, m] {
            return k::reference::zscore_sums_scalar(ys, xs, sum, sum_sq, m, members, 3e-7)
                .sum_z2;
          },
          [&, m] {
            return k::zscore_sums(ys, xs, sum, sum_sq, m, members, 3e-7).sum_z2;
          });
    bench("error-norms" + suffix,
          [&, m] { return k::reference::error_norms_scalar(xs, ys, m).sum_sq; },
          [&, m] { return k::error_norms(xs, ys, m).sum_sq; });
  }

  const double suite_seconds = suite_clock.seconds();

  std::printf("%-18s %12s %12s %9s %14s\n", "kernel", "legacy (ms)", "fused (ms)",
              "speedup", "fused Melem/s");
  for (const BenchResult& r : results) {
    std::printf("%-18s %12.3f %12.3f %8.2fx %14.1f\n", r.name.c_str(),
                r.legacy_seconds * 1e3, r.fused_seconds * 1e3, r.speedup(),
                r.fused_melems());
  }
  std::printf("suite wall-clock: %.3f s (n=%zu, reps=%d%s)\n", suite_seconds, n, reps,
              quick ? ", quick" : "");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  json_escape_free_write(out, results, n, quick, suite_seconds);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
