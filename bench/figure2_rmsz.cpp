// Reproduces paper Figure 2: for each spotlight variable (U, Z3, FSDSC,
// CCN3), the histogram of the 101 ensemble RMSZ scores with markers for
// the RMSZ of one member's reconstruction under every compression variant
// (the black circle of the paper = the original member's score).

#include <cstdio>

#include "common.h"
#include "compress/grib2/grib2.h"
#include "compress/variants.h"
#include "core/ensemble_cache.h"
#include "core/grib_tuning.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace cesm;
  const bench::Options options = bench::Options::parse(argc, argv);
  const climate::EnsembleGenerator ens = bench::make_ensemble(options);

  std::printf("Figure 2: Ensemble RMSZ plots for U, Z3, FSDSC, CCN3.\n");
  std::printf("(grid: %zu columns x %zu levels, %zu members)\n\n", ens.grid().columns(),
              ens.grid().levels(), options.members);

  // Paper presentation order for this figure.
  for (const char* name : {"U", "Z3", "FSDSC", "CCN3"}) {
    const climate::VariableSpec& spec = ens.variable(name);
    const std::optional<float> fill =
        spec.has_fill ? std::optional<float>(climate::kFillValue) : std::nullopt;
    const auto stats_ptr = core::EnsembleCache::global().stats(ens, spec);
    const core::EnsembleStats& stats = *stats_ptr;
    const core::PvtVerifier verifier(stats);

    const std::vector<std::size_t> members =
        core::PvtVerifier::pick_members(1, stats.member_count(),
                                        options.seed ^ spec.stream);
    const std::size_t member = members.front();

    const core::GribTuning tuning = core::rmsz_guided_decimal_scale(
        stats, fill, members);

    std::vector<core::Marker> markers;
    markers.push_back({"original", stats.rmsz(member)});
    for (const comp::CodecPtr& codec :
         comp::paper_variants(tuning.decimal_scale, fill)) {
      const core::MemberEvaluation eval = verifier.evaluate_member(*codec, member);
      markers.push_back({codec->name(), eval.rmsz_reconstructed});
    }
    {
      // The paper's CCN3 outlier (Fig. 2d) predates RMSZ-guided tuning:
      // show GRIB2 at the magnitude-heuristic D as well.
      const auto s = stats::summarize(
          std::span<const float>(stats.member(member).data),
          stats.member(member).valid_mask());
      const int d0 = comp::choose_decimal_scale(s.min, s.max, 4);
      if (d0 != tuning.decimal_scale) {
        const comp::Grib2Codec heuristic(d0, fill);
        const core::MemberEvaluation eval =
            verifier.evaluate_member(heuristic, member);
        markers.push_back({"GRIB2(untuned)", eval.rmsz_reconstructed});
      }
    }

    std::printf("RMSZ-Ensemble test: %s (member %zu, GRIB2 D=%d)\n", name, member,
                tuning.decimal_scale);
    const stats::Histogram hist =
        stats::Histogram::from_data(stats.rmsz_distribution(), 12);
    std::fputs(core::render_histogram(hist, markers).c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Paper shape checks: all methods sit inside the distribution for U; the\n"
      "aggressive variants drift on Z3; GRIB2's marker is the outlier for CCN3.\n");
  bench::write_profile(options);
  return 0;
}
