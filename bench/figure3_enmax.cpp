// Reproduces paper Figure 3: for each spotlight variable, the box plot of
// the ensemble E_nmax distribution (eq. 10) in the leftmost column, with
// the e_nmax of one member's reconstruction under every compression
// variant alongside (eq. 2).

#include <cstdio>

#include "common.h"
#include "compress/variants.h"
#include "core/ensemble_cache.h"
#include "core/grib_tuning.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace cesm;
  const bench::Options options = bench::Options::parse(argc, argv);
  const climate::EnsembleGenerator ens = bench::make_ensemble(options);

  std::printf("Figure 3: Ensemble E_nmax plots for U, FSDSC, Z3, CCN3.\n");
  std::printf("(grid: %zu columns x %zu levels, %zu members)\n\n", ens.grid().columns(),
              ens.grid().levels(), options.members);

  for (const char* name : climate::kSpotlightVariables) {
    const climate::VariableSpec& spec = ens.variable(name);
    const std::optional<float> fill =
        spec.has_fill ? std::optional<float>(climate::kFillValue) : std::nullopt;
    const auto stats_ptr = core::EnsembleCache::global().stats(ens, spec);
    const core::EnsembleStats& stats = *stats_ptr;
    const core::PvtVerifier verifier(stats);

    const std::vector<std::size_t> members = core::PvtVerifier::pick_members(
        1, stats.member_count(), options.seed ^ spec.stream);
    const std::size_t member = members.front();
    const core::GribTuning tuning =
        core::rmsz_guided_decimal_scale(stats, fill, members);

    std::printf("Max-Error-Ensemble test: %s (member %zu)\n", name, member);
    const stats::BoxSummary ens_box = stats::box_summary(stats.enmax_distribution());
    std::printf("  ensemble E_nmax distribution: min %s / q1 %s / median %s / q3 %s / max %s\n",
                core::format_sci(ens_box.lo).c_str(), core::format_sci(ens_box.q1).c_str(),
                core::format_sci(ens_box.median).c_str(),
                core::format_sci(ens_box.q3).c_str(), core::format_sci(ens_box.hi).c_str());

    core::TextTable table({"method", "e_nmax", "vs ensemble range", "eq.(11)"});
    for (const comp::CodecPtr& codec :
         comp::paper_variants(tuning.decimal_scale, fill)) {
      const core::MemberEvaluation eval = verifier.evaluate_member(*codec, member);
      table.add_row({codec->name(), core::format_sci(eval.metrics.e_nmax),
                     core::format_sci(eval.enmax_ratio),
                     eval.enmax_pass ? "pass" : "FAIL"});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Paper shape checks: all methods do well on U; ISABELA shows the larger\n"
      "errors on FSDSC; several methods struggle with Z3; GRIB2 is the CCN3\n"
      "outlier.\n");
  bench::write_profile(options);
  return 0;
}
