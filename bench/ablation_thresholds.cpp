// Threshold-sensitivity ablation for the acceptance tests.
//
// The paper flags its own knobs as provisional: eq. (9)'s 0.05 slope
// tolerance "may be stricter than necessary, and we plan to explore the
// detection of bias further"; eq. (8)'s 1/10 and eq. (11)'s 1/10 are
// round numbers. This harness sweeps each threshold and reports how the
// Table-6 "all pass" counts respond, showing which rules actually bind.
//
// Usage: ablation_thresholds [--vars=N] [--members=N]  (default 24 / 31)

#include <cstdio>

#include "common.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace cesm;
  bench::Options options = bench::Options::parse(argc, argv);
  if (options.var_limit == 0) options.var_limit = 24;
  if (options.members == 101) options.members = 31;
  const climate::EnsembleGenerator ens = bench::make_ensemble(options);
  const std::vector<std::string> variables =
      bench::select_variables(ens, options.var_limit);

  std::printf("Acceptance-threshold sensitivity (%zu variables, %zu members)\n\n",
              variables.size(), options.members);

  struct Sweep {
    const char* name;
    std::vector<double> values;
    void (*apply)(core::PvtThresholds&, double);
  };
  const Sweep sweeps[] = {
      {"eq.(8) RMSZ diff limit (paper 0.10)",
       {0.02, 0.05, 0.10, 0.20, 0.50},
       [](core::PvtThresholds& t, double v) { t.rmsz_diff_max = v; }},
      {"eq.(11) E_nmax ratio limit (paper 0.10)",
       {0.02, 0.05, 0.10, 0.20, 0.50},
       [](core::PvtThresholds& t, double v) { t.enmax_ratio_max = v; }},
      {"rho threshold nines (paper 0.99999)",
       {0.999, 0.9999, 0.99999, 0.999999},
       [](core::PvtThresholds& t, double v) { t.pearson_min = v; }},
  };

  for (const Sweep& sweep : sweeps) {
    std::printf("%s\n", sweep.name);
    core::TextTable table({"threshold", "GRIB2", "APAX-2", "APAX-4", "fpzip-24",
                           "fpzip-16", "ISA-0.1", "ISA-1.0"});
    for (double value : sweep.values) {
      core::SuiteConfig cfg = bench::suite_config(options);
      cfg.run_bias = false;  // isolate the member tests being swept
      sweep.apply(cfg.thresholds, value);
      const core::SuiteResults results = core::run_suite(ens, cfg, variables);
      std::vector<std::string> row = {core::format_fixed(value, 6)};
      for (const char* variant :
           {"GRIB2", "APAX-2", "APAX-4", "fpzip-24", "fpzip-16", "ISA-0.1", "ISA-1.0"}) {
        std::size_t all = 0;
        for (const auto& tally : results.tally()) {
          if (tally.codec == variant) all = tally.all;
        }
        row.push_back(std::to_string(all));
      }
      table.add_row(std::move(row));
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Reading: pass counts should be monotone in each threshold; the rho test\n"
      "binds the aggressive variants (the paper's five-nines bar is the strict\n"
      "one), while eq. (8) and eq. (11) mostly confirm what rho already decided.\n");
  bench::write_profile(options);
  return 0;
}
