#pragma once
// Shared infrastructure for the table/figure reproduction harnesses.
//
// Every bench accepts:
//   --scale=reduced|paper   grid size (default depends on the bench)
//   --members=N             ensemble size (default 101, the paper's)
//   --vars=N                limit the variable census (0 = all 170)
//   --no-bias               skip the all-member bias sweep (fast preview)
//   --seed=N                test-member selection seed
//   --threads=N             worker count for the global scheduler (default:
//                           CESM_THREADS env, then hardware concurrency)
//   --quick                 CI smoke mode (each bench shrinks its workload)
//   --out=PATH              override the bench's JSON output path
//   --profile=out.json      enable cesm::trace, write the JSON span tree
//                           to out.json and a text tree to stderr

#include <cstdint>
#include <string>
#include <vector>

#include "climate/ensemble.h"
#include "core/suite.h"

namespace cesm::bench {

struct Options {
  climate::GridSpec grid = climate::GridSpec::reduced();
  bool paper_scale = false;
  std::size_t members = 101;
  std::size_t var_limit = 0;  ///< 0 = whole catalog
  bool run_bias = true;
  std::uint64_t seed = 0x73575eedull;
  std::size_t threads = 0;   ///< 0 = CESM_THREADS env, then hardware concurrency
  std::size_t variant_jobs = 1;  ///< SuiteConfig::variant_jobs (1 = serial sweep)
  bool quick = false;        ///< CI smoke mode
  bool full_grid = false;    ///< bench_suite: run the out-of-core full-grid leg
  std::string out_path;      ///< empty = the bench's default output file
  std::string profile_path;  ///< empty = tracing stays disabled

  /// Parse argv; prints usage and exits on --help or bad arguments.
  /// --profile=PATH additionally enables cesm::trace collection.
  static Options parse(int argc, char** argv,
                       bool default_paper_scale = false);
};

/// Ensemble generator for the chosen options (shared latent settings).
climate::EnsembleGenerator make_ensemble(const Options& options);

/// First `limit` variable names of the catalog (all when limit == 0),
/// always including the four spotlight variables.
std::vector<std::string> select_variables(const climate::EnsembleGenerator& ens,
                                          std::size_t limit);

/// Suite configuration matching the options.
core::SuiteConfig suite_config(const Options& options);

/// When --profile was given: publish the scheduler's work-distribution
/// counters (sched.*), write the JSON profile to the requested path, and
/// print the span tree to stderr. No-op otherwise. Call at the end of a
/// bench's main().
void write_profile(const Options& options);

/// The paper's variant display order.
const std::vector<std::string>& variant_order();

/// CR in the paper's table style: ".50" for 0.50 (full form when >= 1).
std::string paper_cr(double cr);

/// One variant's outcome on one member field (Tables 3-5 cell data).
struct VariantOutcome {
  std::string variant;
  core::ErrorMetrics metrics;
  double cr = 1.0;
  double compress_seconds = 0.0;
  double reconstruct_seconds = 0.0;
};

/// Round-trip all nine paper variants on `member`'s field of `variable`
/// from `eval_ens`. The GRIB2 decimal scale is tuned with the RMSZ-guided
/// procedure on `tuning_ens` (a reduced-grid ensemble keeps that cheap —
/// D depends on the variable's range, not the resolution).
/// `timing_repeats` > 0 additionally measures median wall times.
std::vector<VariantOutcome> evaluate_variants(const climate::EnsembleGenerator& eval_ens,
                                              const climate::EnsembleGenerator& tuning_ens,
                                              const std::string& variable,
                                              std::uint32_t member,
                                              int timing_repeats = 0);

}  // namespace cesm::bench
