// End-to-end suite benchmark: run_suite under three scheduler shapes.
//
//   fifo_baseline  N workers, serialize_nested — the seed thread pool's
//                  behaviour (outer variable loop parallel, every nested
//                  loop serial on the worker that entered it);
//   sched_serial   1 worker — the plain serial reference;
//   sched_full     N workers with nested work-stealing parallelism.
//
// Each timed repetition is truly end-to-end: it synthesizes a fresh
// ensemble and runs the whole §4 methodology over the selected variables,
// so the speedup covers synthesis, stats builds, GRIB tuning, PVT verify
// and the chunked codec paths together. After timing, one traced pass
// under sched_full produces the per-phase breakdown, and the three
// configurations' results are cross-checked bitwise — a speedup that
// changed a verdict would be a bug, not a feature.
//
// Output: a table on stdout and BENCH_suite.json (override with
// --out=PATH). --quick shrinks members/variables for CI smoke runs;
// --threads=N pins the worker count (default: CESM_THREADS env, then
// hardware concurrency; clamped to the hardware).
//
// --full-grid adds the out-of-core leg: one paper-scale 3-D variable is
// streamed chunk-by-chunk under the CESM_MEM_MB budget, then re-run
// through the in-core pipeline on the same chunk partition. The JSON
// records both peak RSS figures, the streaming phase breakdown, and a
// bitwise-parity flag the CI gate (and the exit code) require to hold.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "core/ensemble_cache.h"
#include "core/export.h"
#include "core/ooc.h"
#include "core/suite.h"
#include "util/cache.h"
#include "util/memory.h"
#include "util/scheduler.h"
#include "util/signals.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace {

using namespace cesm;

struct ConfigResult {
  std::string name;
  double seconds = 0.0;  ///< best-of-reps end-to-end wall time
  SchedulerStats sched;  ///< accumulated over all reps
  core::SuiteResults results;  ///< from the last rep (determinism check)
};

/// One timed configuration: `threads` workers (0 = default resolution),
/// optionally reproducing the seed FIFO pool's nested-serial shape.
ConfigResult run_config(const std::string& name, std::size_t threads,
                        bool serialize_nested, int reps,
                        const bench::Options& options,
                        const std::vector<std::string>& variables) {
  ConfigResult out;
  out.name = name;
  ScopedScheduler scoped(threads);
  scoped.scheduler().set_serialize_nested(serialize_nested);
  scoped.scheduler().reset_stats();
  out.seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    const climate::EnsembleGenerator ensemble = bench::make_ensemble(options);
    out.results = core::run_suite(ensemble, bench::suite_config(options), variables);
    out.seconds = std::min(out.seconds, sw.seconds());
  }
  out.sched = scoped.scheduler().stats();
  return out;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Bitwise cross-check of two configurations' suite outputs. Returns
/// false (after printing the first divergence) when any verdict, ratio,
/// or tally differs — the scheduler's determinism contract says none may.
bool identical_results(const core::SuiteResults& x, const core::SuiteResults& y,
                       const std::string& xn, const std::string& yn) {
  const auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "DETERMINISM FAILURE: %s differs between %s and %s\n",
                 what.c_str(), xn.c_str(), yn.c_str());
    return false;
  };
  if (x.variant_names != y.variant_names) return fail("variant_names");
  if (x.variables.size() != y.variables.size()) return fail("variable count");
  for (std::size_t i = 0; i < x.variables.size(); ++i) {
    const core::VariableResult& a = x.variables[i];
    const core::VariableResult& b = y.variables[i];
    if (a.variable != b.variable) return fail("variable order");
    if (a.test_members != b.test_members) return fail(a.variable + " test_members");
    if (a.grib_decimal_scale != b.grib_decimal_scale)
      return fail(a.variable + " grib_decimal_scale");
    if (!same_bits(a.netcdf4_cr, b.netcdf4_cr)) return fail(a.variable + " netcdf4_cr");
    if (!same_bits(a.fpzip32_cr, b.fpzip32_cr)) return fail(a.variable + " fpzip32_cr");
    if (a.verdicts.size() != b.verdicts.size()) return fail(a.variable + " verdicts");
    for (std::size_t v = 0; v < a.verdicts.size(); ++v) {
      const core::VariableVerdict& va = a.verdicts[v];
      const core::VariableVerdict& vb = b.verdicts[v];
      if (va.rho_pass != vb.rho_pass || va.rmsz_pass != vb.rmsz_pass ||
          va.enmax_pass != vb.enmax_pass || va.bias_pass != vb.bias_pass)
        return fail(a.variable + "/" + va.codec + " pass flags");
      if (!same_bits(va.mean_cr, vb.mean_cr))
        return fail(a.variable + "/" + va.codec + " mean_cr");
      if (va.members.size() != vb.members.size())
        return fail(a.variable + "/" + va.codec + " member count");
      for (std::size_t m = 0; m < va.members.size(); ++m) {
        if (!same_bits(va.members[m].cr, vb.members[m].cr) ||
            !same_bits(va.members[m].metrics.pearson, vb.members[m].metrics.pearson) ||
            !same_bits(va.members[m].rmsz_reconstructed,
                       vb.members[m].rmsz_reconstructed))
          return fail(a.variable + "/" + va.codec + " member metrics");
      }
    }
  }
  return true;
}

struct PhaseRow {
  std::string label;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
};

/// The memoization phase: the same suite slice timed with the cache off,
/// cold (first run under a fresh cache, which also warms the optional
/// CESM_CACHE_DIR disk tier) and warm (second run against the tiers the
/// cold run filled). All three must be bit-identical.
struct CacheBench {
  double off_seconds = 0.0;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  util::CacheStats mem;  ///< memory-tier counters over cold + warm
  bool parity = false;
  bool disk_tier = false;

  [[nodiscard]] double warm_speedup() const {
    return warm_seconds > 0.0 ? off_seconds / warm_seconds : 0.0;
  }
  [[nodiscard]] double hit_rate() const {
    const double total = static_cast<double>(mem.hits + mem.misses);
    return total > 0.0 ? static_cast<double>(mem.hits) / total : 0.0;
  }
};

CacheBench run_cache_phase(const bench::Options& options,
                           const std::vector<std::string>& variables,
                           const std::string& csv_path) {
  CacheBench bench;
  ScopedScheduler scoped(options.threads);
  const climate::EnsembleGenerator ensemble = bench::make_ensemble(options);
  core::EnsembleCache& cache = core::EnsembleCache::global();

  util::CacheConfig off = util::CacheConfig::from_env();
  off.enabled = false;
  // The cache bench measures the cache: honour CESM_CACHE_MB/_DIR from
  // the environment but run the cold/warm legs enabled regardless of
  // CESM_CACHE (the off leg is the disabled measurement).
  util::CacheConfig on = util::CacheConfig::from_env();
  on.enabled = true;

  cache.configure(off);
  Stopwatch sw_off;
  const core::SuiteResults r_off =
      core::run_suite(ensemble, bench::suite_config(options), variables);
  bench.off_seconds = sw_off.seconds();

  cache.configure(on);
  bench.disk_tier = cache.has_disk_tier();
  Stopwatch sw_cold;
  const core::SuiteResults r_cold =
      core::run_suite(ensemble, bench::suite_config(options), variables);
  bench.cold_seconds = sw_cold.seconds();

  Stopwatch sw_warm;
  const core::SuiteResults r_warm =
      core::run_suite(ensemble, bench::suite_config(options), variables);
  bench.warm_seconds = sw_warm.seconds();
  bench.mem = cache.memory_stats();

  bench.parity = identical_results(r_off, r_cold, "cache_off", "cache_cold") &&
                 identical_results(r_cold, r_warm, "cache_cold", "cache_warm");

  // The warm run's full results table, for cross-process parity gates: two
  // bench_suite processes sharing one CESM_CACHE_DIR must emit identical
  // CSVs whether their entries were computed or read back from disk.
  core::write_text_file(csv_path, core::suite_results_csv(r_warm));

  // Leave the cache in its environment-default state for write_profile
  // and any embedding harness.
  cache.configure(util::CacheConfig::from_env());
  return bench;
}

/// --full-grid: the out-of-core leg. One 3-D variable at the paper's
/// ne30-scale grid is streamed chunk-by-chunk under the CESM_MEM_MB
/// logical budget, then the same variable runs through the in-core
/// pipeline with the same chunk partition. The two results must be
/// bit-identical (CSV bytes and every verdict field), and the streaming
/// peak RSS is recorded next to the in-core peak so the CI gate can hold
/// the "bounded memory" promise to measured numbers.
struct FullGridBench {
  bool enabled = false;
  std::string variable;
  std::size_t members = 0;
  std::uint64_t elems_per_member = 0;
  std::size_t chunk_elems = 0;
  std::uint64_t budget_cap_bytes = 0;  ///< CESM_MEM_MB (0 = uncapped)
  bool rss_reset_supported = false;    ///< kernel accepted the HWM reset
  core::OocPhaseStats phases;
  double streaming_seconds = 0.0;
  double incore_seconds = 0.0;
  std::uint64_t streaming_peak_rss = 0;
  std::uint64_t incore_peak_rss = 0;
  bool parity = false;
};

FullGridBench run_full_grid_phase(const bench::Options& options) {
  FullGridBench fg;
  fg.enabled = true;
  fg.variable = "U";  // 3-D spotlight: the largest per-member field
  ScopedScheduler scoped(options.threads);

  // Always the paper's grid — that is the point of the mode. --quick only
  // shrinks the member count (still big enough that the in-core twin's
  // resident ensemble dwarfs the streaming working set).
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec::paper();
  spec.members = options.quick ? 57 : 101;
  fg.members = spec.members;
  const climate::EnsembleGenerator ensemble(spec);
  const climate::VariableSpec& var = ensemble.variable(fg.variable);
  fg.elems_per_member = ensemble.field_elems(var);

  core::OocConfig ooc;
  ooc.chunk_elems = 1 << 16;
  if (const char* dir = std::getenv("CESM_SPILL_DIR")) ooc.spill_dir = dir;
  ooc.memory_budget_bytes = util::memory_budget_bytes().value_or(0);
  ooc.suite = bench::suite_config(options);
  // The bias sweep round-trips every member through every variant; the
  // full-grid leg bounds itself to the three PVT tests (bias parity is
  // covered bit-for-bit by the unit tests on a small grid).
  ooc.suite.run_bias = false;
  ooc.suite.test_member_count = options.quick ? 2 : 3;
  // The in-core twin must measure through the identical chunk partition.
  ooc.suite.chunk_elems = ooc.chunk_elems;
  fg.chunk_elems = ooc.chunk_elems;
  fg.budget_cap_bytes = ooc.memory_budget_bytes;

  // Streaming leg first, from a fresh high-water mark: its peak RSS must
  // not inherit another phase's allocations. When the kernel cannot reset
  // the HWM the number can only over-report the streaming leg — gate-safe.
  fg.rss_reset_supported = util::reset_peak_rss();
  Stopwatch sw;
  core::SuiteResults streaming;
  streaming.variables.push_back(
      core::run_variable_streaming(ensemble, var, ooc, &fg.phases));
  core::derive_variant_names(streaming);
  fg.streaming_seconds = sw.seconds();
  fg.streaming_peak_rss = util::peak_rss_bytes();

  util::reset_peak_rss();
  sw.restart();
  core::SuiteResults incore;
  incore.variables.push_back(core::run_variable(ensemble, var, ooc.suite));
  core::derive_variant_names(incore);
  fg.incore_seconds = sw.seconds();
  fg.incore_peak_rss = util::peak_rss_bytes();

  fg.parity =
      identical_results(streaming, incore, "full_grid_streaming",
                        "full_grid_incore") &&
      core::suite_results_csv(streaming) == core::suite_results_csv(incore);
  return fg;
}

void write_json(std::ostream& out, const std::vector<ConfigResult>& configs,
                const std::vector<PhaseRow>& phases, const CacheBench& cache,
                const FullGridBench& fg, const bench::Options& options,
                std::size_t threads, std::size_t n_vars, int reps,
                bool deterministic, double speedup_vs_fifo,
                double speedup_vs_serial) {
  // `threads` is the configured worker count; when it exceeds the core
  // count the workers time-slice and any reported "parallel speedup" is
  // bounded by the cores, not the worker count. Record both the effective
  // parallelism and an explicit oversubscription flag so downstream tooling
  // does not misread an oversubscribed run as a scaling regression.
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t effective_workers =
      hw == 0 ? threads : std::min<std::size_t>(threads, hw);
  const bool oversubscribed = hw != 0 && threads > hw;
  // --full-grid resets the kernel HWM between its legs, so the current
  // reading alone would under-report the process peak; fold the phase
  // peaks back in.
  const std::uint64_t peak_rss =
      std::max<std::uint64_t>(util::peak_rss_bytes(),
                              std::max(fg.streaming_peak_rss, fg.incore_peak_rss));
  out << "{\n"
      << "  \"bench\": \"suite\",\n"
      << "  \"quick\": " << (options.quick ? "true" : "false") << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"hardware_concurrency\": " << hw << ",\n"
      << "  \"effective_workers\": " << effective_workers << ",\n"
      << "  \"oversubscribed\": " << (oversubscribed ? "true" : "false") << ",\n"
      << "  \"members\": " << options.members << ",\n"
      << "  \"variables\": " << n_vars << ",\n"
      << "  \"peak_rss_bytes\": " << peak_rss << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false") << ",\n"
      << "  \"speedup_vs_fifo\": " << speedup_vs_fifo << ",\n"
      << "  \"speedup_vs_serial\": " << speedup_vs_serial << ",\n"
      << "  \"configs\": [\n";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ConfigResult& c = configs[i];
    out << "    {\"name\": \"" << c.name << "\", "
        << "\"seconds\": " << c.seconds << ", "
        << "\"tasks_spawned\": " << c.sched.spawned << ", "
        << "\"tasks_stolen\": " << c.sched.stolen << ", "
        << "\"tasks_popped\": " << c.sched.popped << ", "
        << "\"tasks_injected\": " << c.sched.injected << ", "
        << "\"tasks_helped_in_wait\": " << c.sched.helped << ", "
        << "\"steal_ratio\": " << c.sched.steal_ratio() << ", "
        << "\"busy_ns\": " << c.sched.total_busy_ns() << "}"
        << (i + 1 < configs.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"full_grid\": {\n"
      << "    \"enabled\": " << (fg.enabled ? "true" : "false");
  if (fg.enabled) {
    out << ",\n"
        << "    \"variable\": \"" << fg.variable << "\",\n"
        << "    \"members\": " << fg.members << ",\n"
        << "    \"elems_per_member\": " << fg.elems_per_member << ",\n"
        << "    \"chunk_elems\": " << fg.chunk_elems << ",\n"
        << "    \"budget_cap_bytes\": " << fg.budget_cap_bytes << ",\n"
        << "    \"rss_reset_supported\": " << (fg.rss_reset_supported ? "true" : "false")
        << ",\n"
        << "    \"parity\": " << (fg.parity ? "true" : "false") << ",\n"
        << "    \"streaming_seconds\": " << fg.streaming_seconds << ",\n"
        << "    \"streaming_peak_rss_bytes\": " << fg.streaming_peak_rss << ",\n"
        << "    \"stage_seconds\": " << fg.phases.stage_seconds << ",\n"
        << "    \"stats_seconds\": " << fg.phases.stats_seconds << ",\n"
        << "    \"verify_seconds\": " << fg.phases.verify_seconds << ",\n"
        << "    \"bytes_spilled\": " << fg.phases.bytes_spilled << ",\n"
        << "    \"peak_logical_bytes\": " << fg.phases.peak_logical_bytes << ",\n"
        << "    \"incore_seconds\": " << fg.incore_seconds << ",\n"
        << "    \"incore_peak_rss_bytes\": " << fg.incore_peak_rss;
  }
  out << "\n  },\n"
      << "  \"cache\": {\n"
      << "    \"off_seconds\": " << cache.off_seconds << ",\n"
      << "    \"cold_seconds\": " << cache.cold_seconds << ",\n"
      << "    \"warm_seconds\": " << cache.warm_seconds << ",\n"
      << "    \"warm_speedup_vs_off\": " << cache.warm_speedup() << ",\n"
      << "    \"mem_hits\": " << cache.mem.hits << ",\n"
      << "    \"mem_misses\": " << cache.mem.misses << ",\n"
      << "    \"mem_evictions\": " << cache.mem.evictions << ",\n"
      << "    \"mem_resident_bytes\": " << cache.mem.resident_bytes << ",\n"
      << "    \"hit_rate\": " << cache.hit_rate() << ",\n"
      << "    \"disk_tier\": " << (cache.disk_tier ? "true" : "false") << ",\n"
      << "    \"parity\": " << (cache.parity ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    out << "    {\"label\": \"" << phases[i].label << "\", "
        << "\"count\": " << phases[i].count << ", "
        << "\"total_seconds\": " << phases[i].total_seconds << "}"
        << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options options = bench::Options::parse(argc, argv);
  // SIGINT/SIGTERM drain: finish the current leg and write the outputs
  // atomically instead of leaving a torn BENCH_suite.json behind.
  util::install_signal_drain();
  // The full catalog at 101 members takes minutes; the bench's default is
  // a representative slice, and --quick shrinks it to a CI smoke run.
  // Explicit --members/--vars always win.
  if (options.members == 101) options.members = options.quick ? 7 : 15;
  if (options.var_limit == 0) options.var_limit = options.quick ? 4 : 8;
  const int reps = options.quick ? 1 : 2;

  const std::vector<std::string> variables = bench::select_variables(
      bench::make_ensemble(options), options.var_limit);

  // The scheduler configurations measure end-to-end *recomputation*;
  // with memoization live, every rep after the first would skip exactly
  // the synthesis/stats work those timings exist to cover. The cache gets
  // its own phase below.
  {
    util::CacheConfig off = util::CacheConfig::from_env();
    off.enabled = false;
    core::EnsembleCache::global().configure(off);
  }

  // The full-grid leg goes first so its streaming peak-RSS measurement
  // starts from a near-pristine high-water mark even on kernels that
  // cannot reset it.
  FullGridBench full_grid;
  if (options.full_grid) full_grid = run_full_grid_phase(options);

  std::vector<ConfigResult> configs;
  configs.push_back(run_config("fifo_baseline", options.threads,
                               /*serialize_nested=*/true, reps, options, variables));
  configs.push_back(run_config("sched_serial", 1,
                               /*serialize_nested=*/false, reps, options, variables));
  configs.push_back(run_config("sched_full", options.threads,
                               /*serialize_nested=*/false, reps, options, variables));
  const ConfigResult& fifo = configs[0];
  const ConfigResult& serial = configs[1];
  const ConfigResult& full = configs[2];

  const bool deterministic =
      identical_results(serial.results, full.results, serial.name, full.name) &&
      identical_results(serial.results, fifo.results, serial.name, fifo.name);

  // Per-phase breakdown: one traced pass under the full scheduler.
  std::vector<PhaseRow> phases;
  std::size_t threads = 0;
  {
    const bool had_trace = trace::enabled();
    trace::reset();
    trace::set_enabled(true);
    ScopedScheduler scoped(options.threads);
    threads = scoped.scheduler().thread_count();
    const climate::EnsembleGenerator ensemble = bench::make_ensemble(options);
    const core::SuiteResults traced =
        core::run_suite(ensemble, bench::suite_config(options), variables);
    if (traced.variables.empty()) return 1;  // and keep `traced` observable
    scoped.scheduler().publish_trace_counters();
    for (const auto& [label, stats] : trace::aggregate_by_label()) {
      phases.push_back({label, stats.count, stats.total_seconds()});
    }
    std::sort(phases.begin(), phases.end(), [](const PhaseRow& a, const PhaseRow& b) {
      return a.total_seconds > b.total_seconds;
    });
    if (!had_trace) trace::set_enabled(false);
  }

  const double speedup_vs_fifo = fifo.seconds / full.seconds;
  const double speedup_vs_serial = serial.seconds / full.seconds;

  const std::string out_path =
      options.out_path.empty() ? "BENCH_suite.json" : options.out_path;
  std::string csv_path = out_path;
  if (csv_path.size() > 5 && csv_path.rfind(".json") == csv_path.size() - 5) {
    csv_path.resize(csv_path.size() - 5);
  }
  csv_path += ".csv";
  const CacheBench cache_bench = run_cache_phase(options, variables, csv_path);

  std::printf("%-14s %10s %10s %9s %9s %8s %12s\n", "config", "seconds", "spawned",
              "stolen", "helped", "steal%", "busy (ms)");
  for (const ConfigResult& c : configs) {
    std::printf("%-14s %10.3f %10llu %9llu %9llu %7.1f%% %12.1f\n", c.name.c_str(),
                c.seconds, static_cast<unsigned long long>(c.sched.spawned),
                static_cast<unsigned long long>(c.sched.stolen),
                static_cast<unsigned long long>(c.sched.helped),
                c.sched.steal_ratio() * 100.0,
                static_cast<double>(c.sched.total_busy_ns()) * 1e-6);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("threads=%zu (hw=%u)  members=%zu vars=%zu reps=%d%s\n", threads, hw,
              options.members, variables.size(), reps, options.quick ? " quick" : "");
  if (hw != 0 && threads > hw) {
    std::printf("note: %zu workers oversubscribe %u cores; parallel speedups are "
                "bounded by the core count\n",
                threads, hw);
  }
  std::printf("speedup vs fifo_baseline: %.2fx   vs 1 thread: %.2fx\n",
              speedup_vs_fifo, speedup_vs_serial);
  std::printf("deterministic across configs: %s\n", deterministic ? "yes" : "NO");
  std::printf("cache phase: off %.3fs  cold %.3fs  warm %.3fs  (warm %.2fx vs off, "
              "hit rate %.0f%%, %llu hits/%llu misses%s)\n",
              cache_bench.off_seconds, cache_bench.cold_seconds,
              cache_bench.warm_seconds, cache_bench.warm_speedup(),
              cache_bench.hit_rate() * 100.0,
              static_cast<unsigned long long>(cache_bench.mem.hits),
              static_cast<unsigned long long>(cache_bench.mem.misses),
              cache_bench.disk_tier ? ", disk tier on" : "");
  std::printf("cache parity (off == cold == warm, bitwise): %s\n",
              cache_bench.parity ? "yes" : "NO");
  if (full_grid.enabled) {
    std::printf("full grid: %s x%zu members (%llu elems each), chunk %zu\n",
                full_grid.variable.c_str(), full_grid.members,
                static_cast<unsigned long long>(full_grid.elems_per_member),
                full_grid.chunk_elems);
    std::printf("  streaming %.3fs (stage %.3f, stats %.3f, verify %.3f)  "
                "peak RSS %.1f MB  logical %.1f MB%s\n",
                full_grid.streaming_seconds, full_grid.phases.stage_seconds,
                full_grid.phases.stats_seconds, full_grid.phases.verify_seconds,
                static_cast<double>(full_grid.streaming_peak_rss) / 1048576.0,
                static_cast<double>(full_grid.phases.peak_logical_bytes) / 1048576.0,
                full_grid.budget_cap_bytes == 0 ? "  (no CESM_MEM_MB cap)" : "");
    if (full_grid.budget_cap_bytes != 0) {
      std::printf("  budget cap %.1f MB (CESM_MEM_MB)\n",
                  static_cast<double>(full_grid.budget_cap_bytes) / 1048576.0);
    }
    std::printf("  in-core   %.3fs  peak RSS %.1f MB\n", full_grid.incore_seconds,
                static_cast<double>(full_grid.incore_peak_rss) / 1048576.0);
    std::printf("  streaming == in-core (bitwise): %s\n",
                full_grid.parity ? "yes" : "NO");
  }
  if (!phases.empty()) {
    std::printf("top phases (traced pass):\n");
    const std::size_t shown = std::min<std::size_t>(phases.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      std::printf("  %-24s %8.3f s  x%llu\n", phases[i].label.c_str(),
                  phases[i].total_seconds,
                  static_cast<unsigned long long>(phases[i].count));
    }
  }

  // Buffer + atomic write: a bench killed between legs must not leave a
  // half-written JSON for the CI gate to parse.
  std::ostringstream out;
  write_json(out, configs, phases, cache_bench, full_grid, options, threads,
             variables.size(), reps, deterministic, speedup_vs_fifo,
             speedup_vs_serial);
  core::write_text_file(out_path, out.str());
  std::printf("wrote %s and %s\n", out_path.c_str(), csv_path.c_str());

  bench::write_profile(options);
  const bool full_grid_ok = !full_grid.enabled || full_grid.parity;
  return deterministic && cache_bench.parity && full_grid_ok ? 0 : 1;
}
