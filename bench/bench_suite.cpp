// End-to-end suite benchmark: run_suite under three scheduler shapes.
//
//   fifo_baseline  N workers, serialize_nested — the seed thread pool's
//                  behaviour (outer variable loop parallel, every nested
//                  loop serial on the worker that entered it);
//   sched_serial   1 worker — the plain serial reference;
//   sched_full     N workers with nested work-stealing parallelism.
//
// Each timed repetition is truly end-to-end: it synthesizes a fresh
// ensemble and runs the whole §4 methodology over the selected variables,
// so the speedup covers synthesis, stats builds, GRIB tuning, PVT verify
// and the chunked codec paths together. After timing, one traced pass
// under sched_full produces the per-phase breakdown, and the three
// configurations' results are cross-checked bitwise — a speedup that
// changed a verdict would be a bug, not a feature.
//
// Output: a table on stdout and BENCH_suite.json (override with
// --out=PATH). --quick shrinks members/variables for CI smoke runs;
// --threads=N pins the worker count (default: CESM_THREADS env, then
// hardware concurrency; clamped to the hardware).
//
// --full-grid adds three out-of-core legs:
//   multi_var    several paper-scale 2-D variables streamed as concurrent
//                jobs under ONE shared CESM_MEM_MB budget, serial
//                (1 job) vs parallel (4 jobs) vs in-core — all three must
//                be bitwise identical, and the parallel leg's peak RSS
//                and logical high-water mark are recorded for the CI
//                budget gate;
//   spill_reuse  the same variables run cold then warm against a
//                content-addressed spill store (--reuse-spill semantics):
//                the warm run must show ZERO ensemble.synthesize spans
//                and an identical CSV;
//   full_grid    one paper-scale 3-D variable streamed chunk-by-chunk
//                under the budget, then re-run through the in-core
//                pipeline on the same chunk partition.
// The JSON records peak RSS figures, phase breakdowns, and bitwise-parity
// flags the CI gates (and the exit code) require to hold.
//
// The variant_sweep phase times the variant-sweep engine itself: the same
// warmed suite slice swept direct-serial (plans off, variant_jobs=1),
// plan-serial (shared encode-prep plans on), and plan-parallel (one
// scheduler task per variant), with byte-parity of every plan-driven
// stream and nonzero plan reuse baked into the exit code.

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "compress/prep.h"
#include "compress/variants.h"
#include "core/ensemble_cache.h"
#include "core/export.h"
#include "core/ooc.h"
#include "core/suite.h"
#include "util/cache.h"
#include "util/memory.h"
#include "util/scheduler.h"
#include "util/signals.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace {

using namespace cesm;

struct ConfigResult {
  std::string name;
  double seconds = 0.0;  ///< best-of-reps end-to-end wall time
  SchedulerStats sched;  ///< accumulated over all reps
  core::SuiteResults results;  ///< from the last rep (determinism check)
};

/// One timed configuration: `threads` workers (0 = default resolution),
/// optionally reproducing the seed FIFO pool's nested-serial shape.
ConfigResult run_config(const std::string& name, std::size_t threads,
                        bool serialize_nested, int reps,
                        const bench::Options& options,
                        const std::vector<std::string>& variables) {
  ConfigResult out;
  out.name = name;
  ScopedScheduler scoped(threads);
  scoped.scheduler().set_serialize_nested(serialize_nested);
  scoped.scheduler().reset_stats();
  out.seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    const climate::EnsembleGenerator ensemble = bench::make_ensemble(options);
    out.results = core::run_suite(ensemble, bench::suite_config(options), variables);
    out.seconds = std::min(out.seconds, sw.seconds());
  }
  out.sched = scoped.scheduler().stats();
  return out;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Bitwise cross-check of two configurations' suite outputs. Returns
/// false (after printing the first divergence) when any verdict, ratio,
/// or tally differs — the scheduler's determinism contract says none may.
bool identical_results(const core::SuiteResults& x, const core::SuiteResults& y,
                       const std::string& xn, const std::string& yn) {
  const auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "DETERMINISM FAILURE: %s differs between %s and %s\n",
                 what.c_str(), xn.c_str(), yn.c_str());
    return false;
  };
  if (x.variant_names != y.variant_names) return fail("variant_names");
  if (x.variables.size() != y.variables.size()) return fail("variable count");
  for (std::size_t i = 0; i < x.variables.size(); ++i) {
    const core::VariableResult& a = x.variables[i];
    const core::VariableResult& b = y.variables[i];
    if (a.variable != b.variable) return fail("variable order");
    if (a.test_members != b.test_members) return fail(a.variable + " test_members");
    if (a.grib_decimal_scale != b.grib_decimal_scale)
      return fail(a.variable + " grib_decimal_scale");
    if (!same_bits(a.netcdf4_cr, b.netcdf4_cr)) return fail(a.variable + " netcdf4_cr");
    if (!same_bits(a.fpzip32_cr, b.fpzip32_cr)) return fail(a.variable + " fpzip32_cr");
    if (a.verdicts.size() != b.verdicts.size()) return fail(a.variable + " verdicts");
    for (std::size_t v = 0; v < a.verdicts.size(); ++v) {
      const core::VariableVerdict& va = a.verdicts[v];
      const core::VariableVerdict& vb = b.verdicts[v];
      if (va.rho_pass != vb.rho_pass || va.rmsz_pass != vb.rmsz_pass ||
          va.enmax_pass != vb.enmax_pass || va.bias_pass != vb.bias_pass)
        return fail(a.variable + "/" + va.codec + " pass flags");
      if (!same_bits(va.mean_cr, vb.mean_cr))
        return fail(a.variable + "/" + va.codec + " mean_cr");
      if (va.members.size() != vb.members.size())
        return fail(a.variable + "/" + va.codec + " member count");
      for (std::size_t m = 0; m < va.members.size(); ++m) {
        if (!same_bits(va.members[m].cr, vb.members[m].cr) ||
            !same_bits(va.members[m].metrics.pearson, vb.members[m].metrics.pearson) ||
            !same_bits(va.members[m].rmsz_reconstructed,
                       vb.members[m].rmsz_reconstructed))
          return fail(a.variable + "/" + va.codec + " member metrics");
      }
    }
  }
  return true;
}

struct PhaseRow {
  std::string label;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
};

/// The memoization phase: the same suite slice timed with the cache off,
/// cold (first run under a fresh cache, which also warms the optional
/// CESM_CACHE_DIR disk tier) and warm (second run against the tiers the
/// cold run filled). All three must be bit-identical.
struct CacheBench {
  double off_seconds = 0.0;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  util::CacheStats mem;  ///< memory-tier counters over cold + warm
  bool parity = false;
  bool disk_tier = false;

  [[nodiscard]] double warm_speedup() const {
    return warm_seconds > 0.0 ? off_seconds / warm_seconds : 0.0;
  }
  [[nodiscard]] double hit_rate() const {
    const double total = static_cast<double>(mem.hits + mem.misses);
    return total > 0.0 ? static_cast<double>(mem.hits) / total : 0.0;
  }
};

CacheBench run_cache_phase(const bench::Options& options,
                           const std::vector<std::string>& variables,
                           const std::string& csv_path) {
  CacheBench bench;
  ScopedScheduler scoped(options.threads);
  const climate::EnsembleGenerator ensemble = bench::make_ensemble(options);
  core::EnsembleCache& cache = core::EnsembleCache::global();

  util::CacheConfig off = util::CacheConfig::from_env();
  off.enabled = false;
  // The cache bench measures the cache: honour CESM_CACHE_MB/_DIR from
  // the environment but run the cold/warm legs enabled regardless of
  // CESM_CACHE (the off leg is the disabled measurement).
  util::CacheConfig on = util::CacheConfig::from_env();
  on.enabled = true;

  cache.configure(off);
  Stopwatch sw_off;
  const core::SuiteResults r_off =
      core::run_suite(ensemble, bench::suite_config(options), variables);
  bench.off_seconds = sw_off.seconds();

  cache.configure(on);
  bench.disk_tier = cache.has_disk_tier();
  Stopwatch sw_cold;
  const core::SuiteResults r_cold =
      core::run_suite(ensemble, bench::suite_config(options), variables);
  bench.cold_seconds = sw_cold.seconds();

  Stopwatch sw_warm;
  const core::SuiteResults r_warm =
      core::run_suite(ensemble, bench::suite_config(options), variables);
  bench.warm_seconds = sw_warm.seconds();
  bench.mem = cache.memory_stats();

  bench.parity = identical_results(r_off, r_cold, "cache_off", "cache_cold") &&
                 identical_results(r_cold, r_warm, "cache_cold", "cache_warm");

  // The warm run's full results table, for cross-process parity gates: two
  // bench_suite processes sharing one CESM_CACHE_DIR must emit identical
  // CSVs whether their entries were computed or read back from disk.
  core::write_text_file(csv_path, core::suite_results_csv(r_warm));

  // Leave the cache in its environment-default state for write_profile
  // and any embedding harness.
  cache.configure(util::CacheConfig::from_env());
  return bench;
}

/// --full-grid: the out-of-core leg. One 3-D variable at the paper's
/// ne30-scale grid is streamed chunk-by-chunk under the CESM_MEM_MB
/// logical budget, then the same variable runs through the in-core
/// pipeline with the same chunk partition. The two results must be
/// bit-identical (CSV bytes and every verdict field), and the streaming
/// peak RSS is recorded next to the in-core peak so the CI gate can hold
/// the "bounded memory" promise to measured numbers.
struct FullGridBench {
  bool enabled = false;
  std::string variable;
  std::size_t members = 0;
  std::uint64_t elems_per_member = 0;
  std::size_t chunk_elems = 0;
  std::uint64_t budget_cap_bytes = 0;  ///< CESM_MEM_MB (0 = uncapped)
  bool rss_reset_supported = false;    ///< kernel accepted the HWM reset
  core::OocPhaseStats phases;
  double streaming_seconds = 0.0;
  double incore_seconds = 0.0;
  std::uint64_t streaming_peak_rss = 0;
  std::uint64_t incore_peak_rss = 0;
  bool parity = false;
};

FullGridBench run_full_grid_phase(const bench::Options& options) {
  FullGridBench fg;
  fg.enabled = true;
  fg.variable = "U";  // 3-D spotlight: the largest per-member field
  ScopedScheduler scoped(options.threads);

  // Always the paper's grid — that is the point of the mode. --quick only
  // shrinks the member count (still big enough that the in-core twin's
  // resident ensemble dwarfs the streaming working set).
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec::paper();
  spec.members = options.quick ? 57 : 101;
  fg.members = spec.members;
  const climate::EnsembleGenerator ensemble(spec);
  const climate::VariableSpec& var = ensemble.variable(fg.variable);
  fg.elems_per_member = ensemble.field_elems(var);

  core::OocConfig ooc;
  ooc.chunk_elems = 1 << 16;
  if (const char* dir = std::getenv("CESM_SPILL_DIR")) ooc.spill_dir = dir;
  ooc.memory_budget_bytes = util::memory_budget_bytes().value_or(0);
  ooc.suite = bench::suite_config(options);
  // The bias sweep round-trips every member through every variant; the
  // full-grid leg bounds itself to the three PVT tests (bias parity is
  // covered bit-for-bit by the unit tests on a small grid).
  ooc.suite.run_bias = false;
  ooc.suite.test_member_count = options.quick ? 2 : 3;
  // The in-core twin must measure through the identical chunk partition.
  ooc.suite.chunk_elems = ooc.chunk_elems;
  fg.chunk_elems = ooc.chunk_elems;
  fg.budget_cap_bytes = ooc.memory_budget_bytes;

  // Streaming leg first, from a fresh high-water mark: its peak RSS must
  // not inherit another phase's allocations. When the kernel cannot reset
  // the HWM the number can only over-report the streaming leg — gate-safe.
  fg.rss_reset_supported = util::reset_peak_rss();
  Stopwatch sw;
  core::SuiteResults streaming;
  streaming.variables.push_back(
      core::run_variable_streaming(ensemble, var, ooc, &fg.phases));
  core::derive_variant_names(streaming);
  fg.streaming_seconds = sw.seconds();
  fg.streaming_peak_rss = util::peak_rss_bytes();

  util::reset_peak_rss();
  sw.restart();
  core::SuiteResults incore;
  incore.variables.push_back(core::run_variable(ensemble, var, ooc.suite));
  core::derive_variant_names(incore);
  fg.incore_seconds = sw.seconds();
  fg.incore_peak_rss = util::peak_rss_bytes();

  fg.parity =
      identical_results(streaming, incore, "full_grid_streaming",
                        "full_grid_incore") &&
      core::suite_results_csv(streaming) == core::suite_results_csv(incore);
  return fg;
}

/// Shared setup for the 2-D multi-variable legs: a paper-scale ensemble
/// and the first `count` 2-D catalog variables (each one's working set is
/// a few MiB, so several fit side by side under the CI's CESM_MEM_MB cap
/// while the in-core twin of the 3-D spotlight would not).
std::vector<std::string> surface_variables(const climate::EnsembleGenerator& ens,
                                           std::size_t count) {
  std::vector<std::string> names;
  for (const climate::VariableSpec& v : ens.catalog()) {
    if (v.is_3d) continue;
    names.push_back(v.name);
    if (names.size() == count) break;
  }
  return names;
}

core::OocConfig surface_ooc_config(const bench::Options& options) {
  core::OocConfig ooc;
  ooc.chunk_elems = 1 << 16;
  if (const char* dir = std::getenv("CESM_SPILL_DIR")) ooc.spill_dir = dir;
  ooc.memory_budget_bytes = util::memory_budget_bytes().value_or(0);
  ooc.suite = bench::suite_config(options);
  ooc.suite.run_bias = false;
  ooc.suite.test_member_count = options.quick ? 2 : 3;
  ooc.suite.chunk_elems = ooc.chunk_elems;
  return ooc;
}

/// --full-grid: the multi-variable contention leg. Four paper-scale 2-D
/// variables are streamed under one shared CESM_MEM_MB budget three ways:
/// serially (1 job), as 4 concurrent jobs, and through the in-core
/// pipeline. All three must be bitwise identical — concurrency must not
/// be observable in the results — and the parallel leg's peak RSS plus
/// the shared budget's logical high-water mark and reserve-wait count are
/// recorded so the CI gate can hold "hard cap under contention" to
/// measured numbers.
struct MultiVarBench {
  bool enabled = false;
  std::vector<std::string> variables;
  std::size_t members = 0;
  std::size_t chunk_elems = 0;
  std::size_t parallel_jobs = 4;
  std::size_t workers = 0;             ///< scheduler width the legs ran at
  std::uint64_t budget_cap_bytes = 0;  ///< CESM_MEM_MB (0 = uncapped)
  bool rss_reset_supported = false;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  double incore_seconds = 0.0;
  std::uint64_t serial_peak_rss = 0;
  std::uint64_t parallel_peak_rss = 0;
  std::uint64_t parallel_peak_logical = 0;  ///< shared-budget high-water mark
  std::uint64_t reserve_waits = 0;          ///< admissions that had to park
  std::uint64_t leaked_bytes = 0;           ///< shared-budget balance after the run
  bool parity = false;

  [[nodiscard]] double speedup() const {
    return parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  }
};

MultiVarBench run_multi_var_phase(const bench::Options& options) {
  MultiVarBench mv;
  mv.enabled = true;
  ScopedScheduler scoped(options.threads);
  mv.workers = scoped.scheduler().thread_count();

  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec::paper();
  spec.members = options.quick ? 57 : 101;
  mv.members = spec.members;
  const climate::EnsembleGenerator ensemble(spec);
  mv.variables = surface_variables(ensemble, 4);

  core::OocConfig ooc = surface_ooc_config(options);
  mv.chunk_elems = ooc.chunk_elems;
  mv.budget_cap_bytes = ooc.memory_budget_bytes;

  // Serial streaming reference first, from a fresh high-water mark.
  mv.rss_reset_supported = util::reset_peak_rss();
  ooc.parallel_variables = 1;
  Stopwatch sw;
  const core::SuiteResults serial =
      core::run_suite_streaming(ensemble, ooc, mv.variables);
  mv.serial_seconds = sw.seconds();
  mv.serial_peak_rss = util::peak_rss_bytes();

  // Parallel leg under a caller-owned shared budget so the admission
  // behaviour (peak, waits, and a zero balance afterwards) is observable.
  util::reset_peak_rss();
  util::MemoryBudget shared(ooc.memory_budget_bytes);
  ooc.shared_budget = &shared;
  ooc.parallel_variables = mv.parallel_jobs;
  sw.restart();
  const core::SuiteResults parallel =
      core::run_suite_streaming(ensemble, ooc, mv.variables);
  mv.parallel_seconds = sw.seconds();
  mv.parallel_peak_rss = util::peak_rss_bytes();
  mv.parallel_peak_logical = shared.peak_logical_bytes();
  mv.reserve_waits = shared.reserve_waits();
  mv.leaked_bytes = shared.charged_bytes();
  ooc.shared_budget = nullptr;

  // In-core twin last: its resident ensembles must not inflate the
  // streaming legs' RSS readings through allocator retention.
  sw.restart();
  const core::SuiteResults incore =
      core::run_suite(ensemble, ooc.suite, mv.variables);
  mv.incore_seconds = sw.seconds();

  mv.parity =
      identical_results(serial, parallel, "multi_var_serial", "multi_var_parallel") &&
      identical_results(serial, incore, "multi_var_serial", "multi_var_incore") &&
      core::suite_results_csv(serial) == core::suite_results_csv(parallel) &&
      core::suite_results_csv(serial) == core::suite_results_csv(incore);
  return mv;
}

/// --full-grid: the spill-reuse leg. Two 2-D variables stream twice
/// against a private content-addressed spill store (OocConfig::reuse_spill):
/// the cold run stages and keeps the spills, the warm run must reuse them —
/// zero "ensemble.synthesize" spans, "ooc.spill_reused" hits for every
/// variable, and a byte-identical CSV. The store directory is created
/// fresh and removed afterwards so leftovers from another process can
/// neither satisfy nor poison the measurement.
struct SpillReuseBench {
  bool enabled = false;
  std::vector<std::string> variables;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  std::uint64_t cold_synthesize_spans = 0;
  std::uint64_t warm_synthesize_spans = 0;
  std::uint64_t warm_spills_reused = 0;
  bool parity = false;
};

SpillReuseBench run_spill_reuse_phase(const bench::Options& options) {
  SpillReuseBench sr;
  sr.enabled = true;
  ScopedScheduler scoped(options.threads);

  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec::paper();
  spec.members = options.quick ? 57 : 101;
  const climate::EnsembleGenerator ensemble(spec);
  sr.variables = surface_variables(ensemble, 2);

  core::OocConfig ooc = surface_ooc_config(options);
  std::string base = ooc.spill_dir;
  const std::string store =
      base + "/cesm-reuse-bench-" + std::to_string(static_cast<long>(getpid()));
  std::filesystem::create_directories(store);
  ooc.spill_dir = store;
  ooc.reuse_spill = true;
  ooc.parallel_variables = 1;

  const auto synth_spans = [] {
    const auto agg = trace::aggregate_by_label();
    const auto it = agg.find("ensemble.synthesize");
    return it == agg.end() ? std::uint64_t{0} : it->second.count;
  };

  const bool had_trace = trace::enabled();
  trace::reset();
  trace::set_enabled(true);
  Stopwatch sw;
  const core::SuiteResults cold =
      core::run_suite_streaming(ensemble, ooc, sr.variables);
  sr.cold_seconds = sw.seconds();
  sr.cold_synthesize_spans = synth_spans();

  trace::reset();
  sw.restart();
  const core::SuiteResults warm =
      core::run_suite_streaming(ensemble, ooc, sr.variables);
  sr.warm_seconds = sw.seconds();
  sr.warm_synthesize_spans = synth_spans();
  const auto counters = trace::counters();
  if (const auto it = counters.find("ooc.spill_reused"); it != counters.end()) {
    sr.warm_spills_reused = it->second;
  }
  trace::reset();
  if (!had_trace) trace::set_enabled(false);

  sr.parity = identical_results(cold, warm, "spill_cold", "spill_warm") &&
              core::suite_results_csv(cold) == core::suite_results_csv(warm);
  std::error_code ec;
  std::filesystem::remove_all(store, ec);
  return sr;
}

/// The variant-sweep engine leg: one warmed in-core suite slice swept
/// three ways —
///   direct_serial   variant_jobs=1, plan cache off: every variant encodes
///                   from scratch, one after another (the pre-engine shape);
///   plan_serial     plans on, still serial: isolates the shared
///                   encode-prep reuse (fpzip map, ISABELA sort, GRIB2 scans);
///   plan_parallel   variant_jobs=0: one scheduler task per variant, all
///                   tasks sharing one plan store.
/// The ensemble cache is warmed first so the timings cover the sweep
/// itself (GRIB tuning + nine variant verifications per variable), not
/// synthesis. All three sweeps must be bitwise identical, a traced pass
/// records the engine's counters, and every paper variant's plan-driven
/// stream is byte-compared against its direct encode on a real member
/// field — the contract the engine rests on, held in the exit code.
struct VariantSweepBench {
  std::size_t workers = 0;
  double direct_serial_seconds = 0.0;
  double plan_serial_seconds = 0.0;
  double plan_parallel_seconds = 0.0;
  std::uint64_t plans_built = 0;
  std::uint64_t plans_reused = 0;
  std::uint64_t variant_tasks = 0;
  bool stream_parity = false;  ///< plan vs direct bytes, every paper variant
  bool identical = false;      ///< three sweeps bitwise + CSV identical

  [[nodiscard]] double speedup() const {
    return plan_parallel_seconds > 0.0
               ? direct_serial_seconds / plan_parallel_seconds
               : 0.0;
  }
  [[nodiscard]] double plan_speedup() const {
    return plan_serial_seconds > 0.0
               ? direct_serial_seconds / plan_serial_seconds
               : 0.0;
  }
};

VariantSweepBench run_variant_sweep_phase(const bench::Options& options,
                                          const std::vector<std::string>& variables,
                                          int reps) {
  VariantSweepBench vs;
  ScopedScheduler scoped(options.threads);
  vs.workers = scoped.scheduler().thread_count();
  const climate::EnsembleGenerator ensemble = bench::make_ensemble(options);

  // Warm the memoization tier: with synthesis and stats builds served
  // from cache, the timed legs measure the sweep and nothing else.
  core::EnsembleCache& cache = core::EnsembleCache::global();
  util::CacheConfig on = util::CacheConfig::from_env();
  on.enabled = true;
  cache.configure(on);
  for (const std::string& name : variables) {
    (void)cache.stats(ensemble, ensemble.variable(name));
  }

  core::SuiteConfig direct_cfg = bench::suite_config(options);
  // The bias regression round-trips every member once per variant and is
  // identical across the legs; keep the timing on the sweep.
  direct_cfg.run_bias = false;
  direct_cfg.variant_jobs = 1;
  direct_cfg.plan_cache_bytes = 0;
  core::SuiteConfig plan_serial_cfg = direct_cfg;
  plan_serial_cfg.plan_cache_bytes = core::SuiteConfig{}.plan_cache_bytes;
  core::SuiteConfig plan_parallel_cfg = plan_serial_cfg;
  plan_parallel_cfg.variant_jobs = 0;  // one scheduler task per variant

  core::SuiteResults direct, plan_serial, plan_parallel;
  const auto timed = [&](const core::SuiteConfig& cfg, core::SuiteResults& out) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      Stopwatch sw;
      out = core::run_suite(ensemble, cfg, variables);
      best = std::min(best, sw.seconds());
    }
    return best;
  };
  vs.direct_serial_seconds = timed(direct_cfg, direct);
  vs.plan_serial_seconds = timed(plan_serial_cfg, plan_serial);
  vs.plan_parallel_seconds = timed(plan_parallel_cfg, plan_parallel);

  vs.identical =
      identical_results(direct, plan_serial, "sweep_direct", "sweep_plan_serial") &&
      identical_results(direct, plan_parallel, "sweep_direct",
                        "sweep_plan_parallel") &&
      core::suite_results_csv(direct) == core::suite_results_csv(plan_serial) &&
      core::suite_results_csv(direct) == core::suite_results_csv(plan_parallel);

  // Traced pass under the parallel config: the engine's own counters.
  {
    const bool had_trace = trace::enabled();
    trace::reset();
    trace::set_enabled(true);
    const core::SuiteResults traced =
        core::run_suite(ensemble, plan_parallel_cfg, variables);
    if (traced.variables.empty()) vs.identical = false;  // keep it observable
    const auto counters = trace::counters();
    const auto counter = [&](const char* key) {
      const auto it = counters.find(key);
      return it == counters.end() ? std::uint64_t{0} : it->second;
    };
    vs.plans_built = counter("prep.plan_built");
    vs.plans_reused = counter("prep.plan_reused");
    vs.variant_tasks = counter("sweep.variant_tasks");
    trace::reset();
    if (!had_trace) trace::set_enabled(false);
  }

  // Byte parity of the plan-driven streams on a real member field, for
  // every paper variant: build pass and reuse pass both.
  vs.stream_parity = true;
  const climate::VariableSpec& spec = ensemble.variable(variables.front());
  const auto stats = cache.stats(ensemble, spec);
  const climate::Field& field = stats->member(0);
  const std::optional<float> fill =
      spec.has_fill ? std::optional<float>(climate::kFillValue) : std::nullopt;
  comp::PlanStore plans(256ull << 20);
  for (const comp::CodecPtr& codec : comp::paper_variants(4, fill)) {
    const Bytes direct_stream = codec->encode(field.data, field.shape);
    if (plans.encode(*codec, field.data, field.shape, 0) != direct_stream ||
        plans.encode(*codec, field.data, field.shape, 0) != direct_stream) {
      std::fprintf(stderr, "PLAN PARITY FAILURE: %s plan stream != direct\n",
                   codec->name().c_str());
      vs.stream_parity = false;
    }
  }

  // Leave the cache in its environment-default state.
  cache.configure(util::CacheConfig::from_env());
  return vs;
}

void write_json(std::ostream& out, const std::vector<ConfigResult>& configs,
                const std::vector<PhaseRow>& phases, const CacheBench& cache,
                const FullGridBench& fg, const MultiVarBench& mv,
                const SpillReuseBench& sr, const VariantSweepBench& vs,
                const bench::Options& options,
                std::size_t threads, std::size_t n_vars, int reps,
                bool deterministic, double speedup_vs_fifo,
                double speedup_vs_serial) {
  // `threads` is the configured worker count; when it exceeds the core
  // count the workers time-slice and any reported "parallel speedup" is
  // bounded by the cores, not the worker count. Record both the effective
  // parallelism and an explicit oversubscription flag so downstream tooling
  // does not misread an oversubscribed run as a scaling regression.
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t effective_workers =
      hw == 0 ? threads : std::min<std::size_t>(threads, hw);
  const bool oversubscribed = hw != 0 && threads > hw;
  // --full-grid resets the kernel HWM between its legs, so the current
  // reading alone would under-report the process peak; fold the phase
  // peaks back in.
  std::uint64_t peak_rss =
      std::max<std::uint64_t>(util::peak_rss_bytes(),
                              std::max(fg.streaming_peak_rss, fg.incore_peak_rss));
  peak_rss = std::max(peak_rss, std::max(mv.serial_peak_rss, mv.parallel_peak_rss));
  out << "{\n"
      << "  \"bench\": \"suite\",\n"
      << "  \"quick\": " << (options.quick ? "true" : "false") << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"hardware_concurrency\": " << hw << ",\n"
      << "  \"effective_workers\": " << effective_workers << ",\n"
      << "  \"oversubscribed\": " << (oversubscribed ? "true" : "false") << ",\n"
      << "  \"members\": " << options.members << ",\n"
      << "  \"variables\": " << n_vars << ",\n"
      << "  \"peak_rss_bytes\": " << peak_rss << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false") << ",\n"
      << "  \"speedup_vs_fifo\": " << speedup_vs_fifo << ",\n"
      << "  \"speedup_vs_serial\": " << speedup_vs_serial << ",\n"
      << "  \"configs\": [\n";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ConfigResult& c = configs[i];
    out << "    {\"name\": \"" << c.name << "\", "
        << "\"seconds\": " << c.seconds << ", "
        << "\"tasks_spawned\": " << c.sched.spawned << ", "
        << "\"tasks_stolen\": " << c.sched.stolen << ", "
        << "\"tasks_popped\": " << c.sched.popped << ", "
        << "\"tasks_injected\": " << c.sched.injected << ", "
        << "\"tasks_helped_in_wait\": " << c.sched.helped << ", "
        << "\"steal_ratio\": " << c.sched.steal_ratio() << ", "
        << "\"busy_ns\": " << c.sched.total_busy_ns() << "}"
        << (i + 1 < configs.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"full_grid\": {\n"
      << "    \"enabled\": " << (fg.enabled ? "true" : "false");
  if (fg.enabled) {
    out << ",\n"
        << "    \"variable\": \"" << fg.variable << "\",\n"
        << "    \"members\": " << fg.members << ",\n"
        << "    \"elems_per_member\": " << fg.elems_per_member << ",\n"
        << "    \"chunk_elems\": " << fg.chunk_elems << ",\n"
        << "    \"budget_cap_bytes\": " << fg.budget_cap_bytes << ",\n"
        << "    \"rss_reset_supported\": " << (fg.rss_reset_supported ? "true" : "false")
        << ",\n"
        << "    \"parity\": " << (fg.parity ? "true" : "false") << ",\n"
        << "    \"streaming_seconds\": " << fg.streaming_seconds << ",\n"
        << "    \"streaming_peak_rss_bytes\": " << fg.streaming_peak_rss << ",\n"
        << "    \"stage_seconds\": " << fg.phases.stage_seconds << ",\n"
        << "    \"stats_seconds\": " << fg.phases.stats_seconds << ",\n"
        << "    \"verify_seconds\": " << fg.phases.verify_seconds << ",\n"
        << "    \"bytes_spilled\": " << fg.phases.bytes_spilled << ",\n"
        << "    \"peak_logical_bytes\": " << fg.phases.peak_logical_bytes << ",\n"
        << "    \"incore_seconds\": " << fg.incore_seconds << ",\n"
        << "    \"incore_peak_rss_bytes\": " << fg.incore_peak_rss;
  }
  out << "\n  },\n"
      << "  \"multi_var\": {\n"
      << "    \"enabled\": " << (mv.enabled ? "true" : "false");
  if (mv.enabled) {
    out << ",\n    \"variables\": [";
    for (std::size_t i = 0; i < mv.variables.size(); ++i) {
      out << "\"" << mv.variables[i] << "\""
          << (i + 1 < mv.variables.size() ? ", " : "");
    }
    out << "],\n"
        << "    \"members\": " << mv.members << ",\n"
        << "    \"chunk_elems\": " << mv.chunk_elems << ",\n"
        << "    \"parallel_jobs\": " << mv.parallel_jobs << ",\n"
        << "    \"workers\": " << mv.workers << ",\n"
        << "    \"budget_cap_bytes\": " << mv.budget_cap_bytes << ",\n"
        << "    \"rss_reset_supported\": "
        << (mv.rss_reset_supported ? "true" : "false") << ",\n"
        << "    \"serial_seconds\": " << mv.serial_seconds << ",\n"
        << "    \"parallel_seconds\": " << mv.parallel_seconds << ",\n"
        << "    \"incore_seconds\": " << mv.incore_seconds << ",\n"
        << "    \"speedup_parallel_vs_serial\": " << mv.speedup() << ",\n"
        << "    \"serial_peak_rss_bytes\": " << mv.serial_peak_rss << ",\n"
        << "    \"parallel_peak_rss_bytes\": " << mv.parallel_peak_rss << ",\n"
        << "    \"parallel_peak_logical_bytes\": " << mv.parallel_peak_logical
        << ",\n"
        << "    \"reserve_waits\": " << mv.reserve_waits << ",\n"
        << "    \"leaked_bytes\": " << mv.leaked_bytes << ",\n"
        << "    \"parity\": " << (mv.parity ? "true" : "false");
  }
  out << "\n  },\n"
      << "  \"spill_reuse\": {\n"
      << "    \"enabled\": " << (sr.enabled ? "true" : "false");
  if (sr.enabled) {
    out << ",\n    \"variables\": [";
    for (std::size_t i = 0; i < sr.variables.size(); ++i) {
      out << "\"" << sr.variables[i] << "\""
          << (i + 1 < sr.variables.size() ? ", " : "");
    }
    out << "],\n"
        << "    \"cold_seconds\": " << sr.cold_seconds << ",\n"
        << "    \"warm_seconds\": " << sr.warm_seconds << ",\n"
        << "    \"cold_synthesize_spans\": " << sr.cold_synthesize_spans << ",\n"
        << "    \"warm_synthesize_spans\": " << sr.warm_synthesize_spans << ",\n"
        << "    \"warm_spills_reused\": " << sr.warm_spills_reused << ",\n"
        << "    \"parity\": " << (sr.parity ? "true" : "false");
  }
  out << "\n  },\n"
      << "  \"cache\": {\n"
      << "    \"off_seconds\": " << cache.off_seconds << ",\n"
      << "    \"cold_seconds\": " << cache.cold_seconds << ",\n"
      << "    \"warm_seconds\": " << cache.warm_seconds << ",\n"
      << "    \"warm_speedup_vs_off\": " << cache.warm_speedup() << ",\n"
      << "    \"mem_hits\": " << cache.mem.hits << ",\n"
      << "    \"mem_misses\": " << cache.mem.misses << ",\n"
      << "    \"mem_evictions\": " << cache.mem.evictions << ",\n"
      << "    \"mem_resident_bytes\": " << cache.mem.resident_bytes << ",\n"
      << "    \"hit_rate\": " << cache.hit_rate() << ",\n"
      << "    \"disk_tier\": " << (cache.disk_tier ? "true" : "false") << ",\n"
      << "    \"parity\": " << (cache.parity ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"variant_sweep\": {\n"
      << "    \"workers\": " << vs.workers << ",\n"
      << "    \"direct_serial_seconds\": " << vs.direct_serial_seconds << ",\n"
      << "    \"plan_serial_seconds\": " << vs.plan_serial_seconds << ",\n"
      << "    \"plan_parallel_seconds\": " << vs.plan_parallel_seconds << ",\n"
      << "    \"speedup_plan_parallel_vs_direct\": " << vs.speedup() << ",\n"
      << "    \"speedup_plan_serial_vs_direct\": " << vs.plan_speedup() << ",\n"
      << "    \"plans_built\": " << vs.plans_built << ",\n"
      << "    \"plans_reused\": " << vs.plans_reused << ",\n"
      << "    \"variant_tasks\": " << vs.variant_tasks << ",\n"
      << "    \"stream_parity\": " << (vs.stream_parity ? "true" : "false") << ",\n"
      << "    \"parity\": " << (vs.identical ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    out << "    {\"label\": \"" << phases[i].label << "\", "
        << "\"count\": " << phases[i].count << ", "
        << "\"total_seconds\": " << phases[i].total_seconds << "}"
        << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options options = bench::Options::parse(argc, argv);
  // SIGINT/SIGTERM drain: finish the current leg and write the outputs
  // atomically instead of leaving a torn BENCH_suite.json behind.
  util::install_signal_drain();
  // The full catalog at 101 members takes minutes; the bench's default is
  // a representative slice, and --quick shrinks it to a CI smoke run.
  // Explicit --members/--vars always win.
  if (options.members == 101) options.members = options.quick ? 7 : 15;
  if (options.var_limit == 0) options.var_limit = options.quick ? 4 : 8;
  const int reps = options.quick ? 1 : 2;

  const std::vector<std::string> variables = bench::select_variables(
      bench::make_ensemble(options), options.var_limit);

  // The scheduler configurations measure end-to-end *recomputation*;
  // with memoization live, every rep after the first would skip exactly
  // the synthesis/stats work those timings exist to cover. The cache gets
  // its own phase below.
  {
    util::CacheConfig off = util::CacheConfig::from_env();
    off.enabled = false;
    core::EnsembleCache::global().configure(off);
  }

  // The out-of-core legs go first so their streaming peak-RSS measurements
  // start from a near-pristine high-water mark even on kernels that cannot
  // reset it. The multi-variable legs (a few MiB of working set each) run
  // before the 3-D spotlight, whose in-core twin leaves hundreds of MiB of
  // allocator retention behind.
  MultiVarBench multi_var;
  SpillReuseBench spill_reuse;
  FullGridBench full_grid;
  if (options.full_grid) {
    multi_var = run_multi_var_phase(options);
    spill_reuse = run_spill_reuse_phase(options);
    full_grid = run_full_grid_phase(options);
  }

  std::vector<ConfigResult> configs;
  configs.push_back(run_config("fifo_baseline", options.threads,
                               /*serialize_nested=*/true, reps, options, variables));
  configs.push_back(run_config("sched_serial", 1,
                               /*serialize_nested=*/false, reps, options, variables));
  configs.push_back(run_config("sched_full", options.threads,
                               /*serialize_nested=*/false, reps, options, variables));
  const ConfigResult& fifo = configs[0];
  const ConfigResult& serial = configs[1];
  const ConfigResult& full = configs[2];

  const bool deterministic =
      identical_results(serial.results, full.results, serial.name, full.name) &&
      identical_results(serial.results, fifo.results, serial.name, fifo.name);

  // Per-phase breakdown: one traced pass under the full scheduler.
  std::vector<PhaseRow> phases;
  std::size_t threads = 0;
  {
    const bool had_trace = trace::enabled();
    trace::reset();
    trace::set_enabled(true);
    ScopedScheduler scoped(options.threads);
    threads = scoped.scheduler().thread_count();
    const climate::EnsembleGenerator ensemble = bench::make_ensemble(options);
    const core::SuiteResults traced =
        core::run_suite(ensemble, bench::suite_config(options), variables);
    if (traced.variables.empty()) return 1;  // and keep `traced` observable
    scoped.scheduler().publish_trace_counters();
    for (const auto& [label, stats] : trace::aggregate_by_label()) {
      phases.push_back({label, stats.count, stats.total_seconds()});
    }
    std::sort(phases.begin(), phases.end(), [](const PhaseRow& a, const PhaseRow& b) {
      return a.total_seconds > b.total_seconds;
    });
    if (!had_trace) trace::set_enabled(false);
  }

  const double speedup_vs_fifo = fifo.seconds / full.seconds;
  const double speedup_vs_serial = serial.seconds / full.seconds;

  const std::string out_path =
      options.out_path.empty() ? "BENCH_suite.json" : options.out_path;
  std::string csv_path = out_path;
  if (csv_path.size() > 5 && csv_path.rfind(".json") == csv_path.size() - 5) {
    csv_path.resize(csv_path.size() - 5);
  }
  csv_path += ".csv";
  const CacheBench cache_bench = run_cache_phase(options, variables, csv_path);
  const VariantSweepBench variant_sweep =
      run_variant_sweep_phase(options, variables, reps);

  std::printf("%-14s %10s %10s %9s %9s %8s %12s\n", "config", "seconds", "spawned",
              "stolen", "helped", "steal%", "busy (ms)");
  for (const ConfigResult& c : configs) {
    std::printf("%-14s %10.3f %10llu %9llu %9llu %7.1f%% %12.1f\n", c.name.c_str(),
                c.seconds, static_cast<unsigned long long>(c.sched.spawned),
                static_cast<unsigned long long>(c.sched.stolen),
                static_cast<unsigned long long>(c.sched.helped),
                c.sched.steal_ratio() * 100.0,
                static_cast<double>(c.sched.total_busy_ns()) * 1e-6);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("threads=%zu (hw=%u)  members=%zu vars=%zu reps=%d%s\n", threads, hw,
              options.members, variables.size(), reps, options.quick ? " quick" : "");
  if (hw != 0 && threads > hw) {
    std::printf("note: %zu workers oversubscribe %u cores; parallel speedups are "
                "bounded by the core count\n",
                threads, hw);
  }
  std::printf("speedup vs fifo_baseline: %.2fx   vs 1 thread: %.2fx\n",
              speedup_vs_fifo, speedup_vs_serial);
  std::printf("deterministic across configs: %s\n", deterministic ? "yes" : "NO");
  std::printf("cache phase: off %.3fs  cold %.3fs  warm %.3fs  (warm %.2fx vs off, "
              "hit rate %.0f%%, %llu hits/%llu misses%s)\n",
              cache_bench.off_seconds, cache_bench.cold_seconds,
              cache_bench.warm_seconds, cache_bench.warm_speedup(),
              cache_bench.hit_rate() * 100.0,
              static_cast<unsigned long long>(cache_bench.mem.hits),
              static_cast<unsigned long long>(cache_bench.mem.misses),
              cache_bench.disk_tier ? ", disk tier on" : "");
  std::printf("cache parity (off == cold == warm, bitwise): %s\n",
              cache_bench.parity ? "yes" : "NO");
  std::printf("variant sweep: direct-serial %.3fs  plan-serial %.3fs (%.2fx)  "
              "plan-parallel %.3fs (%.2fx, %zu workers)\n",
              variant_sweep.direct_serial_seconds,
              variant_sweep.plan_serial_seconds, variant_sweep.plan_speedup(),
              variant_sweep.plan_parallel_seconds, variant_sweep.speedup(),
              variant_sweep.workers);
  std::printf("  plans built %llu, reused %llu; %llu variant tasks\n",
              static_cast<unsigned long long>(variant_sweep.plans_built),
              static_cast<unsigned long long>(variant_sweep.plans_reused),
              static_cast<unsigned long long>(variant_sweep.variant_tasks));
  std::printf("  plan streams == direct streams (bytes): %s   "
              "three sweeps identical (bitwise): %s\n",
              variant_sweep.stream_parity ? "yes" : "NO",
              variant_sweep.identical ? "yes" : "NO");
  if (full_grid.enabled) {
    std::printf("full grid: %s x%zu members (%llu elems each), chunk %zu\n",
                full_grid.variable.c_str(), full_grid.members,
                static_cast<unsigned long long>(full_grid.elems_per_member),
                full_grid.chunk_elems);
    std::printf("  streaming %.3fs (stage %.3f, stats %.3f, verify %.3f)  "
                "peak RSS %.1f MB  logical %.1f MB%s\n",
                full_grid.streaming_seconds, full_grid.phases.stage_seconds,
                full_grid.phases.stats_seconds, full_grid.phases.verify_seconds,
                static_cast<double>(full_grid.streaming_peak_rss) / 1048576.0,
                static_cast<double>(full_grid.phases.peak_logical_bytes) / 1048576.0,
                full_grid.budget_cap_bytes == 0 ? "  (no CESM_MEM_MB cap)" : "");
    if (full_grid.budget_cap_bytes != 0) {
      std::printf("  budget cap %.1f MB (CESM_MEM_MB)\n",
                  static_cast<double>(full_grid.budget_cap_bytes) / 1048576.0);
    }
    std::printf("  in-core   %.3fs  peak RSS %.1f MB\n", full_grid.incore_seconds,
                static_cast<double>(full_grid.incore_peak_rss) / 1048576.0);
    std::printf("  streaming == in-core (bitwise): %s\n",
                full_grid.parity ? "yes" : "NO");
  }
  if (multi_var.enabled) {
    std::printf("multi-var: %zu surface variables x%zu members, %zu jobs vs serial "
                "(%zu workers)\n",
                multi_var.variables.size(), multi_var.members,
                multi_var.parallel_jobs, multi_var.workers);
    std::printf("  serial   %.3fs  peak RSS %.1f MB\n", multi_var.serial_seconds,
                static_cast<double>(multi_var.serial_peak_rss) / 1048576.0);
    std::printf("  parallel %.3fs  peak RSS %.1f MB  logical %.1f MB  "
                "(%.2fx, %llu waits)\n",
                multi_var.parallel_seconds,
                static_cast<double>(multi_var.parallel_peak_rss) / 1048576.0,
                static_cast<double>(multi_var.parallel_peak_logical) / 1048576.0,
                multi_var.speedup(),
                static_cast<unsigned long long>(multi_var.reserve_waits));
    std::printf("  in-core  %.3fs\n", multi_var.incore_seconds);
    if (multi_var.budget_cap_bytes != 0) {
      std::printf("  budget cap %.1f MB (CESM_MEM_MB), balance after run %llu B\n",
                  static_cast<double>(multi_var.budget_cap_bytes) / 1048576.0,
                  static_cast<unsigned long long>(multi_var.leaked_bytes));
    }
    std::printf("  serial == parallel == in-core (bitwise): %s\n",
                multi_var.parity ? "yes" : "NO");
  }
  if (spill_reuse.enabled) {
    std::printf("spill reuse: cold %.3fs (%llu synthesize spans)  warm %.3fs "
                "(%llu spans, %llu spills reused)\n",
                spill_reuse.cold_seconds,
                static_cast<unsigned long long>(spill_reuse.cold_synthesize_spans),
                spill_reuse.warm_seconds,
                static_cast<unsigned long long>(spill_reuse.warm_synthesize_spans),
                static_cast<unsigned long long>(spill_reuse.warm_spills_reused));
    std::printf("  cold == warm (bitwise): %s\n", spill_reuse.parity ? "yes" : "NO");
  }
  if (!phases.empty()) {
    std::printf("top phases (traced pass):\n");
    const std::size_t shown = std::min<std::size_t>(phases.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      std::printf("  %-24s %8.3f s  x%llu\n", phases[i].label.c_str(),
                  phases[i].total_seconds,
                  static_cast<unsigned long long>(phases[i].count));
    }
  }

  // Buffer + atomic write: a bench killed between legs must not leave a
  // half-written JSON for the CI gate to parse.
  std::ostringstream out;
  write_json(out, configs, phases, cache_bench, full_grid, multi_var, spill_reuse,
             variant_sweep, options, threads, variables.size(), reps, deterministic,
             speedup_vs_fifo, speedup_vs_serial);
  core::write_text_file(out_path, out.str());
  std::printf("wrote %s and %s\n", out_path.c_str(), csv_path.c_str());

  bench::write_profile(options);
  const bool full_grid_ok = !full_grid.enabled || full_grid.parity;
  // Multi-variable concurrency must be invisible in the results, the shared
  // budget must balance back to zero, and a warm spill store must satisfy
  // every staging (no synthesis) while the cold run proves the counter works.
  const bool multi_var_ok =
      !multi_var.enabled || (multi_var.parity && multi_var.leaked_bytes == 0);
  const bool spill_reuse_ok =
      !spill_reuse.enabled ||
      (spill_reuse.parity && spill_reuse.warm_synthesize_spans == 0 &&
       spill_reuse.cold_synthesize_spans > 0 && spill_reuse.warm_spills_reused > 0);
  // The variant-sweep engine's contract: plan-driven streams byte-equal
  // to direct encodes, bit-identical results at every scheduling shape,
  // and plans actually shared (nonzero reuse across variants/tasks).
  const bool variant_sweep_ok =
      variant_sweep.identical && variant_sweep.stream_parity &&
      variant_sweep.plans_reused > 0 && variant_sweep.variant_tasks > 0;
  return deterministic && cache_bench.parity && full_grid_ok && multi_var_ok &&
                 spill_reuse_ok && variant_sweep_ok
             ? 0
             : 1;
}
