#include "common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "compress/variants.h"
#include "core/ensemble_cache.h"
#include "core/profile_report.h"
#include "util/error.h"
#include "util/scheduler.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace cesm::bench {

namespace {

[[noreturn]] void usage_and_exit(const char* prog) {
  std::printf(
      "usage: %s [--scale=reduced|paper] [--members=N] [--vars=N] [--no-bias] [--seed=N]\n"
      "          [--threads=N] [--variant-jobs=N] [--quick] [--full-grid] [--out=PATH]\n"
      "          [--profile=out.json]\n"
      "  --scale=reduced  3,456 columns x 8 levels (default for ensemble benches)\n"
      "  --scale=paper    48,672 columns x 30 levels (the paper's ne30-scale grid)\n"
      "  --members=N      perturbation ensemble size (paper: 101)\n"
      "  --vars=N         limit the variable census (0 = all 170)\n"
      "  --no-bias        skip the all-member bias regression (fast preview)\n"
      "  --seed=N         seed for the random test-member choice\n"
      "  --threads=N      scheduler worker count (default: CESM_THREADS env,\n"
      "                   then hardware concurrency; clamped to the hardware)\n"
      "  --variant-jobs=N concurrent variant-sweep tasks per variable\n"
      "                   (1 = serial sweep [default], 0 = one task per\n"
      "                   variant; results are bit-identical at any setting)\n"
      "  --quick          CI smoke mode (shrinks the bench's workload)\n"
      "  --full-grid      (bench_suite) out-of-core full-grid leg: stream one\n"
      "                   paper-scale variable under the CESM_MEM_MB budget and\n"
      "                   cross-check it bitwise against the in-core pipeline\n"
      "  --out=PATH       override the bench's JSON output path\n"
      "  --profile=PATH   enable per-stage tracing; write the JSON span tree\n"
      "                   to PATH and a readable tree to stderr\n",
      prog);
  std::exit(2);
}

}  // namespace

Options Options::parse(int argc, char** argv, bool default_paper_scale) {
  Options o;
  o.paper_scale = default_paper_scale;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage_and_exit(argv[0]);
    if (arg == "--scale=paper") {
      o.paper_scale = true;
    } else if (arg == "--scale=reduced") {
      o.paper_scale = false;
    } else if (arg.rfind("--members=", 0) == 0) {
      o.members = static_cast<std::size_t>(std::strtoull(arg.c_str() + 10, nullptr, 10));
      if (o.members < 3) usage_and_exit(argv[0]);
    } else if (arg.rfind("--vars=", 0) == 0) {
      o.var_limit = static_cast<std::size_t>(std::strtoull(arg.c_str() + 7, nullptr, 10));
    } else if (arg == "--no-bias") {
      o.run_bias = false;
    } else if (arg.rfind("--seed=", 0) == 0) {
      o.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      o.threads = static_cast<std::size_t>(std::strtoull(arg.c_str() + 10, nullptr, 10));
      if (o.threads == 0) usage_and_exit(argv[0]);
    } else if (arg.rfind("--variant-jobs=", 0) == 0) {
      o.variant_jobs =
          static_cast<std::size_t>(std::strtoull(arg.c_str() + 15, nullptr, 10));
    } else if (arg == "--quick") {
      o.quick = true;
    } else if (arg == "--full-grid") {
      o.full_grid = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      o.out_path = arg.substr(6);
      if (o.out_path.empty()) usage_and_exit(argv[0]);
    } else if (arg.rfind("--profile=", 0) == 0) {
      o.profile_path = arg.substr(10);
      if (o.profile_path.empty()) usage_and_exit(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage_and_exit(argv[0]);
    }
  }
  o.grid = o.paper_scale ? climate::GridSpec::paper() : climate::GridSpec::reduced();
  if (o.threads != 0) {
    // Oversubscribing the machine only adds context-switch noise to the
    // timings, so an over-large request is clamped (loudly): the recorded
    // numbers should describe workers that actually ran in parallel.
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (o.threads > hw) {
      std::fprintf(stderr,
                   "warning: --threads=%zu exceeds the %zu hardware thread%s "
                   "available; clamping to %zu\n",
                   o.threads, hw, hw == 1 ? "" : "s", hw);
      o.threads = hw;
    }
    // Before the lazily-built global scheduler exists; CESM_THREADS (and
    // hardware concurrency) yield to an explicit flag.
    Scheduler::set_default_threads(o.threads);
  }
  if (!o.profile_path.empty()) {
    // Fail fast on an unwritable path: a bench run can take minutes and
    // the profile is the whole point of passing the flag.
    try {
      core::write_profile_json(o.profile_path);
    } catch (const IoError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(2);
    }
    trace::set_enabled(true);
  }
  return o;
}

void write_profile(const Options& options) {
  if (options.profile_path.empty()) return;
  // Mirror the scheduler's work-distribution counters into the trace
  // report so the profile shows where the parallelism landed.
  Scheduler::global().publish_trace_counters();
  std::fputs(core::profile_text().c_str(), stderr);
  try {
    core::write_profile_json(options.profile_path);
    std::fprintf(stderr, "profile written to %s\n", options.profile_path.c_str());
  } catch (const IoError& e) {
    // The path was probed at parse time; losing the file mid-run is
    // worth a message, not an abort that hides the bench's results.
    std::fprintf(stderr, "%s\n", e.what());
  }
}

climate::EnsembleGenerator make_ensemble(const Options& options) {
  climate::EnsembleSpec spec;
  spec.grid = options.grid;
  spec.members = options.members;
  return climate::EnsembleGenerator(spec);
}

std::vector<std::string> select_variables(const climate::EnsembleGenerator& ens,
                                          std::size_t limit) {
  std::vector<std::string> names;
  for (const climate::VariableSpec& v : ens.catalog()) names.push_back(v.name);
  if (limit == 0 || limit >= names.size()) return names;

  std::vector<std::string> chosen(names.begin(),
                                  names.begin() + static_cast<std::ptrdiff_t>(limit));
  for (const char* spotlight : climate::kSpotlightVariables) {
    if (std::find(chosen.begin(), chosen.end(), spotlight) == chosen.end()) {
      chosen.push_back(spotlight);
    }
  }
  return chosen;
}

core::SuiteConfig suite_config(const Options& options) {
  core::SuiteConfig cfg;
  cfg.run_bias = options.run_bias;
  cfg.member_seed = options.seed;
  cfg.variant_jobs = options.variant_jobs;
  return cfg;
}

const std::vector<std::string>& variant_order() {
  static const std::vector<std::string> kOrder = {
      "GRIB2",    "APAX-2", "APAX-4",  "APAX-5", "fpzip-24",
      "fpzip-16", "ISA-0.1", "ISA-0.5", "ISA-1.0"};
  return kOrder;
}

std::string paper_cr(double cr) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", cr);
  std::string s(buf);
  if (s.rfind("0.", 0) == 0) s.erase(0, 1);
  return s;
}

std::vector<VariantOutcome> evaluate_variants(const climate::EnsembleGenerator& eval_ens,
                                              const climate::EnsembleGenerator& tuning_ens,
                                              const std::string& variable,
                                              std::uint32_t member,
                                              int timing_repeats) {
  const climate::VariableSpec& spec = eval_ens.variable(variable);
  const std::optional<float> fill =
      spec.has_fill ? std::optional<float>(climate::kFillValue) : std::nullopt;

  // RMSZ-guided GRIB2 decimal scale on the (cheap) tuning ensemble;
  // memoized, so every variant evaluation shares one tuning synthesis.
  const auto tuning_stats_ptr = core::EnsembleCache::global().stats(
      tuning_ens, tuning_ens.variable(variable));
  const core::EnsembleStats& tuning_stats = *tuning_stats_ptr;
  const std::vector<std::size_t> probes =
      core::PvtVerifier::pick_members(3, tuning_stats.member_count(), spec.stream);
  const core::GribTuning tuning =
      core::rmsz_guided_decimal_scale(tuning_stats, fill, probes);

  const climate::Field field = eval_ens.field(spec, member);
  std::vector<VariantOutcome> outcomes;
  for (const comp::CodecPtr& codec :
       comp::paper_variants(tuning.decimal_scale, fill)) {
    VariantOutcome out;
    out.variant = codec->name();
    const comp::RoundTrip rt = comp::round_trip(*codec, field.data, field.shape);
    out.cr = rt.cr;
    out.metrics = core::compare_fields(field, rt.reconstructed);

    if (timing_repeats > 0) {
      std::vector<double> enc_times, dec_times;
      for (int r = 0; r < timing_repeats; ++r) {
        Stopwatch sw;
        const Bytes stream = codec->encode(field.data, field.shape);
        enc_times.push_back(sw.seconds());
        sw.restart();
        const std::vector<float> recon = codec->decode(stream);
        dec_times.push_back(sw.seconds());
        // Fold the result into the timing so the calls are not elided.
        if (recon.empty() || stream.empty()) std::abort();
      }
      std::sort(enc_times.begin(), enc_times.end());
      std::sort(dec_times.begin(), dec_times.end());
      out.compress_seconds = enc_times[enc_times.size() / 2];
      out.reconstruct_seconds = dec_times[dec_times.size() / 2];
    }
    outcomes.push_back(std::move(out));
  }
  return outcomes;
}

}  // namespace cesm::bench
