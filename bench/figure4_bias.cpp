// Reproduces paper Figure 4: the bias plots — for each spotlight variable,
// every variant's 95% confidence rectangle in (slope, intercept) space
// from regressing the reconstructed ensemble's RMSZ scores on the
// original's, with the eq. (9) acceptance verdict.

#include <cstdio>

#include "common.h"
#include "compress/variants.h"
#include "core/ensemble_cache.h"
#include "core/grib_tuning.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace cesm;
  const bench::Options options = bench::Options::parse(argc, argv);
  const climate::EnsembleGenerator ens = bench::make_ensemble(options);

  std::printf("Figure 4: Bias plots (slope vs intercept, 95%% confidence) for U, Z3,\n"
              "FSDSC, CCN3 — all data compression methods.\n");
  std::printf("(grid: %zu columns x %zu levels, %zu members)\n\n", ens.grid().columns(),
              ens.grid().levels(), options.members);

  for (const char* name : {"U", "Z3", "FSDSC", "CCN3"}) {
    const climate::VariableSpec& spec = ens.variable(name);
    const std::optional<float> fill =
        spec.has_fill ? std::optional<float>(climate::kFillValue) : std::nullopt;
    const auto stats_ptr = core::EnsembleCache::global().stats(ens, spec);
    const core::EnsembleStats& stats = *stats_ptr;
    const core::PvtVerifier verifier(stats);

    const std::vector<std::size_t> probes = core::PvtVerifier::pick_members(
        3, stats.member_count(), options.seed ^ spec.stream);
    const core::GribTuning tuning =
        core::rmsz_guided_decimal_scale(stats, fill, probes);

    std::printf("Bias: %s (GRIB2 D=%d)\n", name, tuning.decimal_scale);
    std::vector<core::LabelledRect> rects;
    for (const comp::CodecPtr& codec :
         comp::paper_variants(tuning.decimal_scale, fill)) {
      const std::vector<double> recon = verifier.reconstructed_rmsz(*codec);
      const core::BiasResult bias =
          core::bias_test(stats.rmsz_distribution(), recon);
      rects.push_back(core::LabelledRect{codec->name(), bias.rect, bias.pass});
    }
    std::fputs(core::render_bias_rects(rects).c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Paper shape checks: near-transparent variants hug (1, 0) with tiny\n"
      "rectangles; tiny off-origin rectangles (uniform but insignificant bias)\n"
      "still pass eq. (9); large-uncertainty rectangles fail even at slope ~ 1;\n"
      "GRIB2 on CCN3 is far off the plot, as in the paper.\n");
  bench::write_profile(options);
  return 0;
}
