// The paper's §6 roadmap, realized: for each compression variant on each
// spotlight variable report
//   * the SSIM index of the reconstructed lat-lon imagery (visualization
//     quality),
//   * the worst gradient correlation (field-gradient fidelity),
//   * the global energy-budget drift vs the ensemble's own spread,
//   * a two-sample KS test RMSZ(E) vs RMSZ(E~) — "statistically
//     indistinguishable" made literal.

#include <cstdio>

#include "common.h"
#include "compress/variants.h"
#include "core/energy.h"
#include "core/ensemble_cache.h"
#include "core/gradients.h"
#include "core/report.h"
#include "core/ssim.h"
#include "stats/kstest.h"

int main(int argc, char** argv) {
  using namespace cesm;
  bench::Options options = bench::Options::parse(argc, argv);
  if (options.members > 41) options.members = 41;  // KS sweep is expensive
  const climate::EnsembleGenerator ens = bench::make_ensemble(options);
  const std::size_t nlat = ens.grid().spec().nlat;
  const std::size_t nlon = ens.grid().spec().nlon;

  std::printf("Future-work metrics (paper §6): SSIM, gradients, energy budget, KS.\n");
  std::printf("(grid: %zu columns x %zu levels, %zu members)\n\n", ens.grid().columns(),
              ens.grid().levels(), options.members);

  for (const char* name : {"U", "FSDSC", "Z3", "CCN3"}) {
    const climate::VariableSpec& spec = ens.variable(name);
    const std::optional<float> fill =
        spec.has_fill ? std::optional<float>(climate::kFillValue) : std::nullopt;
    const auto stats_ptr = core::EnsembleCache::global().stats(ens, spec);
    const core::EnsembleStats& stats = *stats_ptr;
    const core::PvtVerifier verifier(stats);
    const climate::Field field = stats.member(1);

    std::printf("variable %s\n", name);
    core::TextTable table(
        {"method", "SSIM", "grad rho", "budget drift/spread", "KS p", "KS verdict"});
    for (const comp::CodecPtr& codec : comp::paper_variants(4, fill)) {
      const comp::RoundTrip rt = comp::round_trip(*codec, field.data, field.shape);
      const double ssim = core::ssim_field(field, rt.reconstructed, nlat, nlon);
      const core::GradientMetrics grads =
          core::compare_gradients(field, rt.reconstructed, ens.grid());

      const core::BudgetDriftResult budget =
          core::energy_budget_drift(ens, *codec, 1, 8);
      const double drift_ratio = budget.ensemble_spread > 0.0
                                     ? budget.imbalance_drift / budget.ensemble_spread
                                     : 0.0;

      const std::vector<double> recon_rmsz = verifier.reconstructed_rmsz(*codec);
      const stats::KsResult ks =
          stats::ks_two_sample(stats.rmsz_distribution(), recon_rmsz);

      table.add_row({codec->name(), core::format_fixed(ssim, 5),
                     core::format_fixed(grads.worst_pearson(), 5),
                     core::format_sci(drift_ratio),
                     core::format_fixed(ks.p_value, 3),
                     ks.distinguishable() ? "DISTINGUISHABLE" : "indistinguishable"});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Shape checks: SSIM and gradient correlation fall with compression level;\n"
      "gentle variants leave the RMSZ distribution KS-indistinguishable while the\n"
      "harsh ones shift it; budget drift stays small relative to ensemble spread\n"
      "for every variant that passes the paper's main tests.\n");
  bench::write_profile(options);
  return 0;
}
