// Reproduces paper Table 5: compression and reconstruction timings (in
// seconds) and compression ratios for variables U (3-D) and FSDSC (2-D).
// The (*) marker flags variants whose reconstruction did not pass the
// paper's quality tests for that variable, as in the original table.

#include <cstdio>
#include <map>

#include "common.h"
#include "core/report.h"
#include "core/suite.h"

int main(int argc, char** argv) {
  using namespace cesm;
  const bench::Options options = bench::Options::parse(argc, argv, /*paper_scale=*/true);
  const climate::EnsembleGenerator eval_ens = bench::make_ensemble(options);

  bench::Options tuning_options = options;
  tuning_options.grid = climate::GridSpec::reduced();
  const climate::EnsembleGenerator tuning_ens = bench::make_ensemble(tuning_options);

  std::printf(
      "Table 5: Compression and reconstruction timings (seconds) and CRs for\n"
      "variables U (3-D) and FSDSC (2-D). (*) = failed the quality tests.\n");
  std::printf("(grid: %zu columns x %zu levels, member 1, median of 3 runs)\n\n",
              eval_ens.grid().columns(), eval_ens.grid().levels());

  // Quality pass/fail per variant from the reduced-grid ensemble suite.
  core::SuiteConfig cfg = bench::suite_config(options);
  const core::SuiteResults suite = core::run_suite(tuning_ens, cfg, {"U", "FSDSC"});

  std::map<std::string, std::vector<bench::VariantOutcome>> outcomes;
  for (const char* variable : {"U", "FSDSC"}) {
    outcomes[variable] =
        bench::evaluate_variants(eval_ens, tuning_ens, variable, 1, /*timing_repeats=*/3);
  }

  core::TextTable table({"Comp. Method", "U comp.", "U reconst.", "U CR", "FSDSC comp.",
                         "FSDSC reconst.", "FSDSC CR"});
  for (std::size_t vi = 0; vi < bench::variant_order().size(); ++vi) {
    const std::string& variant = bench::variant_order()[vi];
    std::vector<std::string> row = {variant};
    for (const char* variable : {"U", "FSDSC"}) {
      const bench::VariantOutcome& out = outcomes[variable][vi];
      const core::VariableVerdict& verdict =
          suite.variable(variable).verdicts[suite.variant_index(variant)];
      row.push_back(core::format_fixed(out.compress_seconds, 3));
      row.push_back(core::format_fixed(out.reconstruct_seconds, 3));
      row.push_back(bench::paper_cr(out.cr) + (verdict.all_pass() ? "" : "(*)"));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nPaper shape checks: APAX is the fastest method (sometimes by orders of\n"
      "magnitude); ISABELA is the slowest (windowed sorting + spline fitting);\n"
      "the 3-D U costs more than the 2-D FSDSC.\n");
  bench::write_profile(options);
  return 0;
}
