// Reproduces paper Table 8: the number of variables assigned to each
// variant of each compression method when forming the Table 7 hybrids
// (counts sum to the variable census per family).

#include <cstdio>

#include "common.h"
#include "core/hybrid.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace cesm;
  const bench::Options options = bench::Options::parse(argc, argv);
  const climate::EnsembleGenerator ens = bench::make_ensemble(options);
  const std::vector<std::string> variables =
      bench::select_variables(ens, options.var_limit);

  std::printf(
      "Table 8: Number of variables (out of %zu) that each variant of each\n"
      "compression method uses to form the hybrid methods of Table 7.\n",
      variables.size());
  std::printf("(grid: %zu columns x %zu levels, %zu members)\n\n", ens.grid().columns(),
              ens.grid().levels(), options.members);

  const core::SuiteResults results =
      core::run_suite(ens, bench::suite_config(options), variables);

  core::TextTable table({"Method", "Variant", "Number of Variables"});
  for (const char* family : {"GRIB2", "ISABELA", "fpzip", "APAX"}) {
    const core::HybridSummary h = core::build_hybrid(results, family);
    bool first = true;
    // Print lossy variants most-aggressive-first, lossless fallback last,
    // matching the paper's table layout.
    std::vector<std::string> order;
    if (h.family == "GRIB2") order = {"GRIB2", "NetCDF-4"};
    if (h.family == "ISABELA") order = {"ISA-1.0", "ISA-0.5", "ISA-0.1", "NetCDF-4"};
    if (h.family == "fpzip") order = {"fpzip-16", "fpzip-24", "fpzip-32"};
    if (h.family == "APAX") order = {"APAX-5", "APAX-4", "APAX-2", "NetCDF-4"};
    for (const std::string& variant : order) {
      const auto it = h.variant_counts.find(variant);
      const std::size_t count = it == h.variant_counts.end() ? 0 : it->second;
      table.add_row({first ? family : "", variant, std::to_string(count)});
      first = false;
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nPaper shape checks: each family's counts sum to the census; most\n"
      "variables use the most aggressive variant that passes, a minority need\n"
      "the lossless fallback (NetCDF-4 / fpzip-32).\n");
  bench::write_profile(options);
  return 0;
}
