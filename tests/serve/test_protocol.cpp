// Wire-protocol serialization: exact round-trips and hostile payloads.
//
// The parity guarantee of the whole serving tier rests on
// serialize_variable_result being a bijection on the structs run_suite
// produces: round-trip then re-serialize must reproduce the input bytes
// exactly (bit-stable through the f64 paths). The parsers also face the
// network, so truncations and corruptions of every message type must
// surface as FormatError, never UB or silent misreads.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace cesm::serve {
namespace {

VerifyRequest sample_request() {
  VerifyRequest request;
  request.ensemble.grid = climate::GridSpec{12, 18, 3};
  request.ensemble.members = 9;
  request.ensemble.latent.k = 48;
  request.ensemble.latent.forcing = 7.75;
  request.ensemble.latent.dt = 0.025;
  request.ensemble.latent.spinup_steps = 200;
  request.ensemble.latent.average_steps = 400;
  request.ensemble.latent.seed = 0xFEEDFACEull;
  request.variable = "CCN3";
  request.config.test_member_count = 2;
  request.config.member_seed = 0xABCDEFull;
  request.config.run_bias = false;
  request.config.thresholds.pearson_min = 0.9999;
  request.config.grib_max_extra_digits = 3;
  request.config.variable_retry_limit = 2;
  request.variants = {"fpzip-24", "GRIB2"};
  return request;
}

/// A VariableResult with every field group populated with asymmetric
/// values (so a swapped read order cannot round-trip by accident).
core::VariableResult sample_result() {
  core::VariableResult result;
  result.variable = "CCN3";
  result.is_3d = true;
  result.fill = 1.0e35f;
  result.character.summary = {-3.5, 1250.25, 42.125, 17.0625, 648};
  result.character.lossless_cr = 0.53125;
  result.grib_decimal_scale = 5;
  result.grib_tuning_passed = true;
  result.netcdf4_cr = 0.515625;
  result.fpzip32_cr = 0.4375;
  result.test_members = {3, 7};
  result.error_message = "partial, with a \"quote\"";

  core::VariableVerdict verdict;
  verdict.variable = "CCN3";
  verdict.codec = "fpzip-24";
  verdict.bias_evaluated = true;
  verdict.mean_cr = 0.359375;
  verdict.rho_pass = true;
  verdict.rmsz_pass = false;
  verdict.enmax_pass = true;
  verdict.bias_pass = true;
  verdict.bias.fit = {1.0078125, -0.001953125, 0.00390625, 0.0009765625, 0.03125,
                      0.99609375, 9};
  verdict.bias.rect = {0.9921875, 1.0234375, -0.0078125, 0.00390625};
  verdict.bias.slope_distance = 0.015625;
  verdict.bias.pass = true;
  verdict.bias.contains_ideal = true;

  core::MemberEvaluation eval;
  eval.member = 7;
  eval.cr = 0.34375;
  eval.metrics = {1.5e-3, 7.5e-7, 3.25e-4, 1.625e-7, 96.5, 0.999998, 648};
  eval.rmsz_original = 0.8125;
  eval.rmsz_reconstructed = 0.828125;
  eval.rmsz_diff = 0.015625;
  eval.rmsz_in_distribution = true;
  eval.enmax_ratio = 0.046875;
  eval.rho_pass = true;
  eval.rmsz_pass = true;
  eval.enmax_pass = false;
  verdict.members.push_back(eval);
  result.verdicts.push_back(verdict);

  core::VariableVerdict failed;
  failed.variable = "CCN3";
  failed.codec = "GRIB2";
  failed.codec_error = true;
  failed.error_message = "injected fault at failpoint grib2.decode";
  failed.fallback_codec = "NetCDF-4";
  result.verdicts.push_back(failed);
  return result;
}

TEST(Protocol, VerifyRequestRoundTripsExactly) {
  const VerifyRequest request = sample_request();
  const Bytes bytes = serialize_verify_request(request);
  const VerifyRequest back = parse_verify_request(bytes);
  // Re-serialization is the equality oracle: it covers every field
  // without a hand-written operator== that could drift from the schema.
  EXPECT_EQ(serialize_verify_request(back), bytes);
  EXPECT_EQ(back.variable, "CCN3");
  EXPECT_EQ(back.variants, (std::vector<std::string>{"fpzip-24", "GRIB2"}));
  EXPECT_EQ(back.ensemble.latent.forcing, 7.75);
  EXPECT_FALSE(back.config.run_bias);
}

TEST(Protocol, VariableResultRoundTripsExactly) {
  const core::VariableResult result = sample_result();
  const Bytes bytes = serialize_variable_result(result);
  const core::VariableResult back = parse_variable_result(bytes);
  EXPECT_EQ(serialize_variable_result(back), bytes);
  ASSERT_EQ(back.verdicts.size(), 2u);
  EXPECT_EQ(back.fill, result.fill);
  EXPECT_EQ(back.verdicts[0].members.at(0).metrics.pearson, 0.999998);
  EXPECT_TRUE(back.verdicts[1].codec_error);
  EXPECT_EQ(back.verdicts[1].fallback_codec, "NetCDF-4");
}

TEST(Protocol, ErrorAndCountersRoundTrip) {
  const ErrorInfo error{ErrorCode::kQueueFull, "8 computations already in flight"};
  const ErrorInfo back = parse_error(serialize_error(error));
  EXPECT_EQ(back.code, ErrorCode::kQueueFull);
  EXPECT_EQ(back.message, error.message);

  const std::map<std::string, std::uint64_t> counters = {
      {"serve.requests", 17}, {"serve.coalesced_joins", 7}, {"serve.flights", 2}};
  EXPECT_EQ(parse_counters(serialize_counters(counters)), counters);
}

TEST(Protocol, TruncationAtEveryPrefixIsFormatError) {
  // Chop the serialized forms at every length: each prefix must parse to
  // FormatError (the bounds-checked reader), never crash or misread.
  const Bytes request = serialize_verify_request(sample_request());
  for (std::size_t n = 0; n < request.size(); ++n) {
    EXPECT_THROW((void)parse_verify_request({request.data(), n}), FormatError)
        << "request prefix " << n;
  }
  const Bytes result = serialize_variable_result(sample_result());
  for (std::size_t n = 0; n < result.size(); ++n) {
    EXPECT_THROW((void)parse_variable_result({result.data(), n}), FormatError)
        << "result prefix " << n;
  }
}

TEST(Protocol, TrailingGarbageIsFormatError) {
  Bytes bytes = serialize_verify_request(sample_request());
  bytes.push_back(0x00);
  EXPECT_THROW((void)parse_verify_request(bytes), FormatError);
}

TEST(Protocol, WrongVersionIsRejected) {
  Bytes bytes = serialize_verify_request(sample_request());
  bytes[0] = static_cast<std::uint8_t>(kProtocolVersion + 1);
  EXPECT_THROW((void)parse_verify_request(bytes), FormatError);
}

TEST(Protocol, HostileDeclaredCountIsRejectedWithoutAllocation) {
  // A verdict count of ~4 billion in a 50-byte payload must be rejected
  // by the count-vs-remaining guard, not attempted.
  Bytes bytes = serialize_variable_result(sample_result());
  bytes.resize(60);
  for (std::size_t i = 52; i < 60; ++i) bytes[i] = 0xFF;
  EXPECT_THROW((void)parse_variable_result(bytes), FormatError);
}

TEST(Protocol, CoalescingKeyIgnoresVariantFilterOnly) {
  const VerifyRequest base = sample_request();
  VerifyRequest other = base;
  other.variants = {};  // different filter, same computation
  EXPECT_EQ(coalescing_key(base), coalescing_key(other));

  VerifyRequest different_var = base;
  different_var.variable = "U";
  EXPECT_NE(coalescing_key(base), coalescing_key(different_var));

  VerifyRequest different_seed = base;
  different_seed.ensemble.latent.seed ^= 1;
  EXPECT_NE(coalescing_key(base), coalescing_key(different_seed));

  VerifyRequest different_cfg = base;
  different_cfg.config.run_bias = !base.config.run_bias;
  EXPECT_NE(coalescing_key(base), coalescing_key(different_cfg));

  VerifyRequest different_grid = base;
  different_grid.ensemble.grid.nlev += 1;
  EXPECT_NE(coalescing_key(base), coalescing_key(different_grid));
}

TEST(Protocol, FilterResultSelectsInRequestOrder) {
  const core::VariableResult result = sample_result();
  const core::VariableResult filtered =
      filter_result(result, {"GRIB2", "fpzip-24"});
  ASSERT_EQ(filtered.verdicts.size(), 2u);
  EXPECT_EQ(filtered.verdicts[0].codec, "GRIB2");
  EXPECT_EQ(filtered.verdicts[1].codec, "fpzip-24");
  // Non-verdict fields survive filtering untouched.
  EXPECT_EQ(filtered.grib_decimal_scale, result.grib_decimal_scale);

  const core::VariableResult all = filter_result(result, {});
  EXPECT_EQ(serialize_variable_result(all), serialize_variable_result(result));

  EXPECT_THROW((void)filter_result(result, {"no-such-codec"}), InvalidArgument);
}

}  // namespace
}  // namespace cesm::serve
