// cesmd server: the acceptance surface of the serving tier.
//
// Three load-bearing guarantees from ISSUE 7, each pinned here:
//   1. Parity — a response's bytes equal serialize_variable_result of an
//      in-process run_suite for the same request, under >= 8 concurrent
//      clients (memcmp, not tolerance).
//   2. Single-flight — concurrent requests sharing a coalescing key run
//      exactly ONE suite computation; observed via the
//      ensemble.synthesize span count with the EnsembleCache disabled
//      (the cache permits concurrent duplicate builds; only the server's
//      single-flight prevents them).
//   3. Typed protocol hostility — malformed, oversized, truncated and
//      version-skewed frames each produce their distinct error code, and
//      none of them harm other connections or the daemon itself.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "climate/ensemble.h"
#include "core/ensemble_cache.h"
#include "core/suite.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "util/bytes.h"
#include "util/net.h"
#include "util/trace.h"

namespace cesm::serve {
namespace {

climate::EnsembleSpec tiny_spec(std::uint64_t seed_salt = 0) {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{12, 18, 3};
  spec.members = 9;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 200;
  spec.latent.average_steps = 400;
  spec.latent.seed ^= seed_salt;
  return spec;
}

core::SuiteConfig fast_config() {
  core::SuiteConfig cfg;
  cfg.test_member_count = 2;
  cfg.grib_max_extra_digits = 3;
  cfg.run_bias = false;
  return cfg;
}

VerifyRequest tiny_request(const std::string& variable,
                           std::uint64_t seed_salt = 0) {
  VerifyRequest request;
  request.ensemble = tiny_spec(seed_salt);
  request.variable = variable;
  request.config = fast_config();
  return request;
}

/// A server bound to an ephemeral loopback port, stopped on destruction.
struct TcpServer {
  Server server;
  explicit TcpServer(ServerConfig cfg = {}) : server(std::move(cfg)) {
    server.start();
  }
  ~TcpServer() { server.stop(); }
  [[nodiscard]] Client client() const {
    return Client::connect_tcp("127.0.0.1", server.port());
  }
};

/// The bytes an in-process caller would compute for `request`: run_suite
/// on a locally constructed generator, filtered, canonically serialized.
Bytes local_expected(const VerifyRequest& request) {
  const climate::EnsembleGenerator ensemble(request.ensemble);
  const core::SuiteResults results =
      core::run_suite(ensemble, request.config, {request.variable});
  return serialize_variable_result(
      filter_result(results.variables.at(0), request.variants));
}

TEST(Serve, PingAndStats) {
  TcpServer s;
  Client client = s.client();
  client.ping();
  client.ping();
  const auto stats = client.stats();
  EXPECT_EQ(stats.at("serve.pings"), 2u);
  EXPECT_EQ(stats.at("serve.connections"), 1u);
  EXPECT_EQ(stats.at("serve.flights"), 0u);
}

TEST(Serve, EightConcurrentClientsGetBitIdenticalResults) {
  TcpServer s;
  // Mixed workload: two distinct computations (different variables), one
  // of them additionally requested with a variant filter — exercising
  // coalescing, the shared generator map, and respond-time filtering at
  // once. Every response must memcmp-equal the local serialization.
  std::vector<VerifyRequest> requests;
  for (int i = 0; i < 8; ++i) {
    VerifyRequest request = tiny_request(i % 2 == 0 ? "U" : "FSDSC");
    if (i >= 6) request.variants = {"GRIB2", "fpzip-24"};
    requests.push_back(std::move(request));
  }

  std::vector<Bytes> responses(requests.size());
  std::vector<std::string> errors(requests.size());
  std::vector<std::thread> threads;
  threads.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        Client client = s.client();
        responses[i] = client.verify_raw(requests[i]);
      } catch (const std::exception& e) {
        errors[i] = e.what();
      } catch (...) {
        errors[i] = "non-std exception";
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < errors.size(); ++i) {
    ASSERT_TRUE(errors[i].empty()) << "client " << i << ": " << errors[i];
  }

  const Bytes expected_u = local_expected(requests[0]);
  const Bytes expected_fsdsc = local_expected(requests[1]);
  const Bytes expected_filtered_u = local_expected(requests[6]);
  const Bytes expected_filtered_fsdsc = local_expected(requests[7]);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Bytes& expected = i >= 6 ? (i % 2 == 0 ? expected_filtered_u
                                                 : expected_filtered_fsdsc)
                                   : (i % 2 == 0 ? expected_u : expected_fsdsc);
    ASSERT_EQ(responses[i].size(), expected.size()) << "client " << i;
    EXPECT_EQ(std::memcmp(responses[i].data(), expected.data(), expected.size()),
              0)
        << "client " << i << ": response bytes differ from in-process run_suite";
  }

  // The filtered responses really are filtered (2 verdicts, not 9),
  // in request order (GRIB2 first, unlike the suite's native order).
  const core::VariableResult filtered = parse_variable_result(responses[6]);
  ASSERT_EQ(filtered.verdicts.size(), 2u);
  EXPECT_EQ(filtered.verdicts[0].codec, "GRIB2");
  EXPECT_EQ(filtered.verdicts[1].codec, "fpzip-24");
}

TEST(Serve, ConcurrentSameKeyRequestsRunExactlyOneSynthesis) {
  // Disable the ensemble cache so every run_suite would synthesize: any
  // duplicate computation becomes a second ensemble.synthesize span.
  util::CacheConfig disabled;
  disabled.enabled = false;
  core::EnsembleCache::global().configure(disabled);

  // Baseline: spans one in-process run of this request emits. A fresh
  // seed salt keeps the server's generator map and any warm state of
  // earlier tests out of the measurement.
  const VerifyRequest request = tiny_request("CCN3", /*seed_salt=*/0x5EED);
  trace::reset();
  trace::set_enabled(true);
  const Bytes expected = local_expected(request);
  const auto baseline = trace::aggregate_by_label()["ensemble.synthesize"].count;
  ASSERT_GE(baseline, 1u);

  TcpServer s;
  trace::reset();
  std::vector<Bytes> responses(8);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (std::size_t i = 0; i < responses.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        Client client = s.client();
        responses[i] = client.verify_raw(request);
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  trace::set_enabled(false);
  core::EnsembleCache::global().configure(util::CacheConfig::from_env());

  ASSERT_EQ(failures.load(), 0);
  for (const Bytes& response : responses) {
    ASSERT_EQ(response.size(), expected.size());
    EXPECT_EQ(std::memcmp(response.data(), expected.data(), expected.size()), 0);
  }
  // Exactly one flight's worth of synthesis for all eight clients.
  const auto synth = trace::aggregate_by_label()["ensemble.synthesize"].count;
  EXPECT_EQ(synth, baseline)
      << "coalescing failed: " << synth << " syntheses for 8 same-key requests"
      << " (one in-process run does " << baseline << ")";

  const auto stats = s.client().stats();
  EXPECT_EQ(stats.at("serve.flights") + stats.at("serve.coalesced_joins"), 8u);
  EXPECT_GE(stats.at("serve.coalesced_joins"), 1u)
      << "no request ever joined an in-flight computation";
}

TEST(Serve, ZeroInflightBudgetRejectsWithQueueFull) {
  ServerConfig cfg;
  cfg.max_inflight = 0;  // admission control rejects every new flight
  TcpServer s(cfg);
  Client client = s.client();
  try {
    (void)client.verify(tiny_request("U"));
    FAIL() << "expected RemoteError(kQueueFull)";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kQueueFull);
  }
  // The rejection is an answer, not a failure: the connection still works.
  client.ping();
  EXPECT_EQ(s.client().stats().at("serve.rejected_queue_full"), 1u);
}

TEST(Serve, UnknownVariantIsBadRequest) {
  TcpServer s;
  Client client = s.client();
  VerifyRequest request = tiny_request("U");
  request.variants = {"no-such-codec"};
  try {
    (void)client.verify(request);
    FAIL() << "expected RemoteError(kBadRequest)";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
}

TEST(Serve, UnknownVariableIsBadRequest) {
  TcpServer s;
  Client client = s.client();
  try {
    (void)client.verify(tiny_request("NO_SUCH_VARIABLE"));
    FAIL() << "expected RemoteError(kBadRequest)";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
}

// --- protocol hostility, straight onto the socket ---------------------------

ErrorInfo read_error_frame(const util::Socket& sock) {
  const auto frame = util::read_frame(sock);
  EXPECT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, static_cast<std::uint8_t>(MessageType::kErrorResponse));
  return parse_error(frame->payload);
}

TEST(Serve, BadMagicGetsMalformedFrameThenDisconnect) {
  TcpServer s;
  util::Socket sock = util::connect_tcp("127.0.0.1", s.server.port());
  const Bytes junk = {0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x00, 0x00, 0x00, 0x00};
  util::send_all(sock, junk.data(), junk.size());
  EXPECT_EQ(read_error_frame(sock).code, ErrorCode::kMalformedFrame);
  // Framing is unrecoverable — the server closes after answering.
  EXPECT_FALSE(util::read_frame(sock).has_value());
}

TEST(Serve, OversizedDeclaredPayloadGetsTypedReject) {
  ServerConfig cfg;
  cfg.max_frame_bytes = 1024;
  TcpServer s(cfg);
  util::Socket sock = util::connect_tcp("127.0.0.1", s.server.port());
  Bytes header;
  {
    ByteWriter w(header);
    w.u32(util::kFrameMagic);
    w.u8(static_cast<std::uint8_t>(MessageType::kVerifyRequest));
    w.u32(4096);  // over the 1 KiB server limit; payload never sent
  }
  util::send_all(sock, header.data(), header.size());
  EXPECT_EQ(read_error_frame(sock).code, ErrorCode::kOversizedFrame);
  EXPECT_FALSE(util::read_frame(sock).has_value());
}

TEST(Serve, UnknownMessageTypeKeepsConnectionAlive) {
  TcpServer s;
  util::Socket sock = util::connect_tcp("127.0.0.1", s.server.port());
  util::write_frame(sock, 99, Bytes{1, 2, 3});
  EXPECT_EQ(read_error_frame(sock).code, ErrorCode::kUnsupportedType);
  // A well-formed frame of unknown type is answerable — the stream is
  // still in sync, so the connection survives and serves a ping.
  util::write_frame(sock, static_cast<std::uint8_t>(MessageType::kPing), {});
  const auto pong = util::read_frame(sock);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, static_cast<std::uint8_t>(MessageType::kPong));
}

TEST(Serve, WrongProtocolVersionIsTypedReject) {
  TcpServer s;
  util::Socket sock = util::connect_tcp("127.0.0.1", s.server.port());
  Bytes payload = serialize_verify_request(tiny_request("U"));
  payload[0] = static_cast<std::uint8_t>(kProtocolVersion + 1);
  util::write_frame(sock, static_cast<std::uint8_t>(MessageType::kVerifyRequest),
                    payload);
  EXPECT_EQ(read_error_frame(sock).code, ErrorCode::kUnsupportedVersion);
}

TEST(Serve, TruncatedRequestPayloadIsMalformed) {
  TcpServer s;
  util::Socket sock = util::connect_tcp("127.0.0.1", s.server.port());
  Bytes payload = serialize_verify_request(tiny_request("U"));
  payload.resize(payload.size() / 2);  // well-framed, half a request inside
  util::write_frame(sock, static_cast<std::uint8_t>(MessageType::kVerifyRequest),
                    payload);
  EXPECT_EQ(read_error_frame(sock).code, ErrorCode::kMalformedFrame);
}

TEST(Serve, MidFrameDisconnectDoesNotHarmTheDaemon) {
  TcpServer s;
  {
    util::Socket sock = util::connect_tcp("127.0.0.1", s.server.port());
    Bytes header;
    ByteWriter w(header);
    w.u32(util::kFrameMagic);
    w.u8(static_cast<std::uint8_t>(MessageType::kVerifyRequest));
    w.u32(64);  // promise 64 payload bytes...
    util::send_all(sock, header.data(), header.size());
    // ...deliver 3, vanish.
    const Bytes partial = {0x01, 0x02, 0x03};
    util::send_all(sock, partial.data(), partial.size());
  }
  // The daemon shrugs: a fresh connection is served normally.
  Client client = s.client();
  client.ping();
  EXPECT_GE(client.stats().at("serve.connections"), 2u);
}

TEST(Serve, UnixSocketServesAndStopUnlinksThePath) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "cesm_test_server.sock")
          .string();
  ServerConfig cfg;
  cfg.unix_path = path;
  Server server(cfg);
  server.start();
  ASSERT_TRUE(std::filesystem::exists(path));
  Client client = Client::connect_unix(path);
  client.ping();
  server.stop();
  EXPECT_FALSE(std::filesystem::exists(path))
      << "stop() must unlink the unix socket for clean restarts";
}

TEST(Serve, StopIsIdempotentAndRefusesNewConnections) {
  ServerConfig cfg;
  TcpServer s(cfg);
  const std::uint16_t port = s.server.port();
  s.client().ping();
  s.server.stop();
  s.server.stop();  // second stop is a no-op
  EXPECT_THROW((void)Client::connect_tcp("127.0.0.1", port), IoError);
}

}  // namespace
}  // namespace cesm::serve
