// Socket + frame layer: the three hostile-input surfaces.
//
// read_frame's contract distinguishes clean EOF at a boundary (nullopt),
// malformed framing (FormatError before any payload allocation), and a
// peer dying mid-frame (IoError). The cesmd server maps each to a
// different response, so the distinction itself is under test here, on
// loopback socketpairs with hand-built byte sequences.

#include "util/net.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <filesystem>
#include <thread>

#include "util/bytes.h"

namespace cesm::util {
namespace {

/// A connected unix-domain socket pair.
struct Pair {
  Socket a, b;
  Pair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Socket(fds[0]);
    b = Socket(fds[1]);
  }
};

Bytes frame_bytes(std::uint32_t magic, std::uint8_t type, std::uint32_t declared_len,
                  const Bytes& payload) {
  Bytes out;
  ByteWriter w(out);
  w.u32(magic);
  w.u8(type);
  w.u32(declared_len);
  w.raw(payload.data(), payload.size());
  return out;
}

TEST(Frame, RoundTripsTypeAndPayload) {
  Pair p;
  const Bytes payload = {1, 2, 3, 250, 251, 252};
  write_frame(p.a, 7, payload);
  const auto frame = read_frame(p.b);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, 7);
  EXPECT_EQ(frame->payload, payload);
}

TEST(Frame, EmptyPayloadIsLegal) {
  Pair p;
  write_frame(p.a, 1, {});
  const auto frame = read_frame(p.b);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, 1);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(Frame, CleanEofAtBoundaryIsEndOfStream) {
  Pair p;
  write_frame(p.a, 3, Bytes{9});
  p.a.close();
  EXPECT_TRUE(read_frame(p.b).has_value());   // the queued frame drains
  EXPECT_FALSE(read_frame(p.b).has_value());  // then clean EOF
}

TEST(Frame, BadMagicIsFormatError) {
  Pair p;
  const Bytes bytes = frame_bytes(0xDEADBEEF, 1, 0, {});
  send_all(p.a, bytes.data(), bytes.size());
  EXPECT_THROW((void)read_frame(p.b), FormatError);
}

TEST(Frame, OversizedDeclaredLengthIsRejectedBeforeAllocation) {
  Pair p;
  // Declares 4 GiB-ish; only the header is ever sent. The reader must
  // throw from the length check, not sit waiting for a payload (or try
  // to allocate one).
  const Bytes bytes = frame_bytes(kFrameMagic, 1, 0xFFFFFFF0u, {});
  send_all(p.a, bytes.data(), bytes.size());
  EXPECT_THROW((void)read_frame(p.b), FrameTooLarge);
}

TEST(Frame, CustomLimitIsEnforced) {
  Pair p;
  write_frame(p.a, 1, Bytes(64, 0xAB));
  EXPECT_THROW((void)read_frame(p.b, 16), FrameTooLarge);
}

TEST(Frame, TruncatedHeaderIsIoError) {
  Pair p;
  const Bytes partial = {0x43, 0x53, 0x4D};  // 3 of 9 header bytes
  send_all(p.a, partial.data(), partial.size());
  p.a.close();
  EXPECT_THROW((void)read_frame(p.b), IoError);
}

TEST(Frame, TruncatedPayloadIsIoError) {
  Pair p;
  // Declares 8 payload bytes, delivers 2, then disconnects mid-frame.
  const Bytes bytes = frame_bytes(kFrameMagic, 1, 8, {0xAA, 0xBB});
  send_all(p.a, bytes.data(), bytes.size());
  p.a.close();
  EXPECT_THROW((void)read_frame(p.b), IoError);
}

TEST(Frame, SendToClosedPeerIsIoErrorNotSigpipe) {
  Pair p;
  p.b.close();
  const Bytes big(1 << 16, 0x55);
  // MSG_NOSIGNAL: the dead peer surfaces as an exception on this thread,
  // never as a process-killing SIGPIPE.
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) send_all(p.a, big.data(), big.size());
      },
      IoError);
}

TEST(Net, TcpListenerReportsEphemeralPortAndAccepts) {
  std::uint16_t port = 0;
  Socket listener = listen_tcp(0, &port);
  ASSERT_GT(port, 0);

  std::thread server([&] {
    Socket conn = accept_connection(listener);
    ASSERT_TRUE(conn.valid());
    const auto frame = read_frame(conn);
    ASSERT_TRUE(frame.has_value());
    write_frame(conn, frame->type + 1, frame->payload);
  });

  Socket client = connect_tcp("127.0.0.1", port);
  write_frame(client, 10, Bytes{42});
  const auto reply = read_frame(client);
  server.join();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, 11);
  EXPECT_EQ(reply->payload, Bytes{42});
}

TEST(Net, UnixListenerAcceptsOnFilesystemPath) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "cesm_test_net.sock").string();
  Socket listener = listen_unix(path);

  std::thread server([&] {
    Socket conn = accept_connection(listener);
    ASSERT_TRUE(conn.valid());
    const auto frame = read_frame(conn);
    ASSERT_TRUE(frame.has_value());
    write_frame(conn, frame->type, frame->payload);
  });

  Socket client = connect_unix(path);
  write_frame(client, 5, Bytes{1, 2, 3});
  const auto reply = read_frame(client);
  server.join();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->payload, (Bytes{1, 2, 3}));
  listener.close();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cesm::util
