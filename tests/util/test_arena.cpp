#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "util/trace.h"

namespace cesm::util {
namespace {

/// Scoped tracing: counters only record while enabled; always disable on
/// the way out so other tests see the global default.
struct TraceGuard {
  TraceGuard() {
    trace::set_enabled(true);
    trace::reset();
  }
  ~TraceGuard() { trace::set_enabled(false); }
};

std::uint64_t grow_count() {
  const auto counters = trace::counters();
  const auto it = counters.find("arena.grow");
  return it == counters.end() ? 0 : it->second;
}

TEST(ScratchArena, FirstGetGrowsThenSteadyStateIsAllocationFree) {
  ScratchArena arena;
  TraceGuard guard;

  auto s1 = arena.get<double>(0, 1000);
  EXPECT_EQ(s1.size(), 1000u);
  EXPECT_EQ(grow_count(), 1u);

  // Same slot, same or smaller size: no growth, storage reused.
  trace::reset();
  for (int i = 0; i < 100; ++i) {
    auto s = arena.get<double>(0, 1000);
    EXPECT_EQ(s.size(), 1000u);
    auto smaller = arena.get<double>(0, 10);
    EXPECT_EQ(smaller.size(), 10u);
  }
  EXPECT_EQ(grow_count(), 0u);
}

TEST(ScratchArena, SlotsAreIndependent) {
  ScratchArena arena;
  auto a = arena.get<double>(0, 64);
  auto b = arena.get<std::uint32_t>(1, 64);
  EXPECT_EQ(arena.slot_count(), 2u);

  // Writes through one slot must not disturb the other (distinct storage).
  std::iota(a.begin(), a.end(), 0.0);
  for (auto& v : b) v = 0xDEADBEEF;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], static_cast<double>(i));
  }
}

TEST(ScratchArena, GrowthIsGeometric) {
  ScratchArena arena;
  TraceGuard guard;

  arena.get<double>(0, 100);
  const std::size_t after_first = arena.reserved_bytes();
  EXPECT_EQ(after_first, 100 * sizeof(double));

  // A bump to 101 doubles reserves 2x, so the next several bumps are free.
  arena.get<double>(0, 101);
  EXPECT_EQ(arena.reserved_bytes(), 200 * sizeof(double));
  trace::reset();
  arena.get<double>(0, 150);
  arena.get<double>(0, 200);
  EXPECT_EQ(grow_count(), 0u);
}

TEST(ScratchArena, GrowBytesCounterTracksDeficit) {
  ScratchArena arena;
  TraceGuard guard;

  arena.get<std::uint8_t>(0, 1024);
  const auto counters = trace::counters();
  EXPECT_EQ(counters.at("arena.grow"), 1u);
  EXPECT_EQ(counters.at("arena.grow_bytes"), 1024u);
}

TEST(ScratchArena, ReleaseDropsStorage) {
  ScratchArena arena;
  arena.get<double>(0, 4096);
  EXPECT_GT(arena.reserved_bytes(), 0u);
  arena.release();
  EXPECT_EQ(arena.reserved_bytes(), 0u);
  EXPECT_EQ(arena.slot_count(), 0u);

  TraceGuard guard;
  arena.get<double>(0, 4096);  // grows again after release
  EXPECT_EQ(grow_count(), 1u);
}

TEST(ScratchArena, UntracedGrowthRecordsNothing) {
  // Counters must stay silent while tracing is disabled (production mode).
  trace::set_enabled(true);
  trace::reset();
  trace::set_enabled(false);
  ScratchArena arena;
  arena.get<double>(0, 512);
  trace::set_enabled(true);
  EXPECT_EQ(grow_count(), 0u);
  trace::set_enabled(false);
}

}  // namespace
}  // namespace cesm::util
