#include "util/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

#include "util/error.h"

namespace cesm {
namespace {

TEST(Scheduler, TaskGroupExecutesEveryTask) {
  Scheduler sched(4);
  std::atomic<int> counter{0};
  struct CountTask : Task {
    std::atomic<int>* counter = nullptr;
    static void run(Task* t) { static_cast<CountTask*>(t)->counter->fetch_add(1); }
  };
  std::vector<CountTask> tasks(100);
  TaskGroup group(sched);
  for (CountTask& t : tasks) {
    t.invoke = &CountTask::run;
    t.counter = &counter;
    group.spawn(t);
  }
  group.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(Scheduler, WaitOnEmptyGroupReturnsImmediately) {
  Scheduler sched(2);
  TaskGroup group(sched);
  group.wait();  // must not hang
  SUCCEED();
}

TEST(Scheduler, GroupPropagatesTaskExceptionAndStaysUsable) {
  Scheduler sched(2);
  struct ThrowTask : Task {
    static void run(Task*) { throw Error("boom"); }
  };
  struct NopTask : Task {
    bool* ran = nullptr;
    static void run(Task* t) { *static_cast<NopTask*>(t)->ran = true; }
  };
  TaskGroup group(sched);
  ThrowTask bad;
  bad.invoke = &ThrowTask::run;
  group.spawn(bad);
  EXPECT_THROW(group.wait(), Error);
  // Group and scheduler remain usable after an exception.
  bool ran = false;
  NopTask ok;
  ok.invoke = &NopTask::run;
  ok.ran = &ran;
  group.spawn(ok);
  group.wait();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, ScopedSchedulerOverridesGlobal) {
  Scheduler& before = Scheduler::global();
  {
    ScopedScheduler scoped(3);
    EXPECT_EQ(&Scheduler::global(), &scoped.scheduler());
    EXPECT_EQ(Scheduler::global().thread_count(), 3u);
  }
  EXPECT_EQ(&Scheduler::global(), &before);
}

TEST(Scheduler, GlobalSchedulerIsSingleton) {
  EXPECT_EQ(&Scheduler::global(), &Scheduler::global());
  EXPECT_GE(Scheduler::global().thread_count(), 1u);
}

TEST(Scheduler, CesmThreadsEnvControlsDefaultWorkerCount) {
  ASSERT_EQ(setenv("CESM_THREADS", "3", 1), 0);
  const Scheduler sched(0);
  EXPECT_EQ(sched.thread_count(), 3u);
  ASSERT_EQ(setenv("CESM_THREADS", "not-a-number", 1), 0);
  const Scheduler fallback(0);
  EXPECT_GE(fallback.thread_count(), 1u);  // malformed env is ignored
  ASSERT_EQ(unsetenv("CESM_THREADS"), 0);
}

TEST(Scheduler, SetDefaultThreadsBeatsEnv) {
  ASSERT_EQ(setenv("CESM_THREADS", "7", 1), 0);
  Scheduler::set_default_threads(2);
  const Scheduler sched(0);
  EXPECT_EQ(sched.thread_count(), 2u);
  Scheduler::set_default_threads(0);  // restore resolution order
  ASSERT_EQ(unsetenv("CESM_THREADS"), 0);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ScopedScheduler scoped(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  parallel_for(7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, ComputesCorrectSum) {
  ScopedScheduler scoped(4);
  std::vector<double> values(10000);
  parallel_for(0, values.size(),
               [&](std::size_t i) { values[i] = static_cast<double>(i); });
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 10000.0 * 9999.0 / 2.0);
}

TEST(ParallelFor, GrainBoundsTaskDecomposition) {
  ScopedScheduler scoped(4);
  Scheduler& sched = scoped.scheduler();
  sched.reset_stats();
  parallel_for(0, 100, [](std::size_t) {}, 25);
  // 100 indices at grain 25 -> 4 chunks: one runs inline, three spawn.
  const SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.spawned, 3u);
  EXPECT_EQ(stats.inline_chunks, 1u);
}

TEST(ParallelFor, NestedLoopsSpawnRealSubtasks) {
  ScopedScheduler scoped(4);
  Scheduler& sched = scoped.scheduler();
  sched.reset_stats();
  std::atomic<int> counter{0};
  parallel_for(0, 16, [&](std::size_t) {
    parallel_for(0, 16, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 256);
  // The seed pool degraded nested calls to serial (zero inner submissions).
  // Here the outer loop spawns 15 tasks and every inner loop spawns 15
  // more, from worker context as well as from the caller.
  const SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.spawned, 15u + 16u * 15u);
  EXPECT_EQ(stats.spawned,
            stats.popped + stats.stolen + stats.injected);  // all consumed
  EXPECT_EQ(stats.inline_chunks, 1u + 16u);
}

TEST(ParallelFor, SerializeNestedRestoresSeedPoolShape) {
  ScopedScheduler scoped(4);
  Scheduler& sched = scoped.scheduler();
  sched.set_serialize_nested(true);
  sched.reset_stats();
  std::atomic<int> counter{0};
  parallel_for(0, 8, [&](std::size_t) {
    parallel_for(0, 8, [&](std::size_t) { counter.fetch_add(1); });
  });
  sched.set_serialize_nested(false);
  EXPECT_EQ(counter.load(), 64);
  // Outer spawns 7; inner loops run serial when entered from a worker.
  // Only inner loops entered from the calling (non-worker) thread may
  // still spawn, exactly like the seed FIFO pool.
  const SchedulerStats stats = sched.stats();
  EXPECT_LE(stats.spawned, 7u + 8u * 7u);
  EXPECT_GE(stats.spawned, 7u);
}

TEST(ParallelFor, PropagatesBodyException) {
  ScopedScheduler scoped(2);
  EXPECT_THROW(parallel_for(0, 100,
                            [](std::size_t i) {
                              if (i == 50) throw Error("body failure");
                            }),
               Error);
  // Scheduler still works after the failed loop.
  std::atomic<int> counter{0};
  parallel_for(0, 64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelFor, ConcurrentTopLevelLoopsDoNotInterfere) {
  // Two external threads drive independent loops on one scheduler. The
  // seed pool joined both through a single global idle barrier; the
  // scheduler gives each loop its own TaskGroup join.
  ScopedScheduler scoped(4);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread ta([&] {
    parallel_for(0, 64, [&](std::size_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      a.fetch_add(1);
    });
  });
  std::thread tb([&] {
    parallel_for(0, 64, [&](std::size_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      b.fetch_add(1);
    });
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), 64);
  EXPECT_EQ(b.load(), 64);
}

TEST(ParallelFor, DeepNestingCompletesWithinHelpDepthCap) {
  ScopedScheduler scoped(4);
  std::atomic<int> counter{0};
  // Four levels of nesting, 3^4 = 81 leaf increments; exercises the
  // help-first join recursion and its depth bookkeeping.
  std::function<void(int)> nest = [&](int depth) {
    if (depth == 0) {
      counter.fetch_add(1);
      return;
    }
    parallel_for(0, 3, [&](std::size_t) { nest(depth - 1); });
  };
  nest(4);
  EXPECT_EQ(counter.load(), 81);
}

/// Adversarial float inputs for reduction-order tests: values spanning 30
/// orders of magnitude with alternating signs, so any reassociation of the
/// serial fold changes the result bitwise.
std::vector<double> adversarial_values(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, static_cast<double>(i % 31) - 15.0);
    v[i] = (i % 2 == 0 ? 1.0 : -1.0) * mag * (1.0 + 1e-13 * static_cast<double>(i));
  }
  return v;
}

double reduce_sum(const std::vector<double>& v, std::size_t grain) {
  return parallel_reduce(
      0, v.size(), 0.0,
      [&](std::size_t lo, std::size_t hi, double acc) {
        for (std::size_t i = lo; i < hi; ++i) acc += v[i];
        return acc;
      },
      [](double a, double b) { return a + b; }, grain);
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  const std::vector<double> v = adversarial_values(100000);
  constexpr std::size_t kGrain = 1024;
  double expected;
  {
    ScopedScheduler scoped(1);
    expected = reduce_sum(v, kGrain);
  }
  for (const std::size_t threads : {2u, 4u, 8u}) {
    ScopedScheduler scoped(threads);
    for (int rep = 0; rep < 3; ++rep) {  // steal interleavings vary per run
      const double got = reduce_sum(v, kGrain);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
                std::bit_cast<std::uint64_t>(expected))
          << "threads=" << threads << " rep=" << rep;
    }
  }
}

TEST(ParallelReduce, MatchesExplicitChunkedFold) {
  // The contract: left fold over per-chunk partials in ascending chunk
  // order, each seeded from `init`. Verify against a hand-rolled copy.
  const std::vector<double> v = adversarial_values(10000);
  constexpr std::size_t kGrain = 512;
  double expected = 0.0;
  bool first = true;
  for (std::size_t lo = 0; lo < v.size(); lo += kGrain) {
    const std::size_t hi = std::min(v.size(), lo + kGrain);
    double partial = 0.0;
    for (std::size_t i = lo; i < hi; ++i) partial += v[i];
    expected = first ? partial : expected + partial;
    first = false;
  }
  ScopedScheduler scoped(4);
  const double got = reduce_sum(v, kGrain);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got), std::bit_cast<std::uint64_t>(expected));
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  EXPECT_EQ(parallel_reduce(
                3, 3, 42.0,
                [](std::size_t, std::size_t, double acc) { return acc + 1.0; },
                [](double a, double b) { return a + b; }),
            42.0);
}

TEST(ParallelReduce, MaxReduction) {
  std::vector<double> v(5000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>((i * 2654435761u) % 100000);
  }
  ScopedScheduler scoped(4);
  const double got = parallel_reduce(
      0, v.size(), 0.0,
      [&](std::size_t lo, std::size_t hi, double acc) {
        for (std::size_t i = lo; i < hi; ++i) acc = std::max(acc, v[i]);
        return acc;
      },
      [](double a, double b) { return std::max(a, b); });
  EXPECT_EQ(got, *std::max_element(v.begin(), v.end()));
}

TEST(SchedulerStats, StealRatioAndBusyTimeArePopulated) {
  ScopedScheduler scoped(4);
  Scheduler& sched = scoped.scheduler();
  sched.reset_stats();
  std::atomic<int> counter{0};
  parallel_for(0, 64, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    counter.fetch_add(1);
  });
  const SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.spawned, 63u);
  EXPECT_GT(stats.total_busy_ns(), 0u);
  EXPECT_EQ(stats.worker_busy_ns.size(), 4u);
  EXPECT_GE(stats.steal_ratio(), 0.0);
  EXPECT_LE(stats.steal_ratio(), 1.0);
}

}  // namespace
}  // namespace cesm
