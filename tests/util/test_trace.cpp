#include "util/trace.h"

#include <gtest/gtest.h>

#include <thread>

namespace cesm::trace {
namespace {

/// Every test starts and ends with a clean, disabled trace state; the
/// subsystem is process-global.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TEST_F(TraceTest, DisabledByDefaultAndRecordsNothing) {
  EXPECT_FALSE(enabled());
  {
    Span s("should.not.appear");
    counter_add("ghost", 42);
  }
  const ReportNode root = collect_tree();
  EXPECT_TRUE(root.children.empty());
  EXPECT_EQ(root.stats.count, 0u);
  EXPECT_TRUE(counters().empty());
}

TEST_F(TraceTest, RecordsNestedSpansAsATree) {
  set_enabled(true);
  {
    Span outer("outer");
    {
      Span inner("inner");
      Span leaf("leaf");
    }
    { Span inner("inner"); }
  }
  const ReportNode root = collect_tree();
  const ReportNode* outer = root.child("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->stats.count, 1u);
  const ReportNode* inner = outer->child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->stats.count, 2u);  // same label, same position: merged
  const ReportNode* leaf = inner->child("leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->stats.count, 1u);
  // Nesting is positional: "leaf" is NOT a child of "outer".
  EXPECT_EQ(outer->child("leaf"), nullptr);
}

TEST_F(TraceTest, TimingIsMonotoneAndContained) {
  set_enabled(true);
  {
    Span outer("outer");
    Span inner("inner");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const ReportNode root = collect_tree();
  const ReportNode* outer = root.child("outer");
  ASSERT_NE(outer, nullptr);
  const ReportNode* inner = outer->child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(inner->stats.total_ns, 1'000'000u);          // slept >= 1ms
  EXPECT_GE(outer->stats.total_ns, inner->stats.total_ns);  // child contained
  EXPECT_EQ(outer->stats.max_ns, outer->stats.total_ns);    // single sample
  EXPECT_NEAR(outer->stats.mean_seconds(), outer->stats.total_seconds(), 1e-12);
}

TEST_F(TraceTest, CountersAccumulateAcrossCalls) {
  set_enabled(true);
  counter_add("bytes", 100);
  counter_add("bytes", 23);
  counter_add("calls", 1);
  const auto snapshot = counters();
  EXPECT_EQ(snapshot.at("bytes"), 123u);
  EXPECT_EQ(snapshot.at("calls"), 1u);
}

TEST_F(TraceTest, SpansFromWorkerThreadsMergeByLabel) {
  set_enabled(true);
  { Span s("work"); }
  std::thread t1([] { Span s("work"); });
  std::thread t2([] {
    Span outer("work");
    Span inner("sub");
  });
  t1.join();
  t2.join();
  const ReportNode root = collect_tree();
  const ReportNode* work = root.child("work");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->stats.count, 3u);  // one per thread, merged by label
  ASSERT_NE(work->child("sub"), nullptr);
  EXPECT_EQ(work->child("sub")->stats.count, 1u);
}

TEST_F(TraceTest, AggregateByLabelSumsAcrossTreePositions) {
  set_enabled(true);
  {
    Span a("a");
    { Span x("x"); }
  }
  {
    Span b("b");
    { Span x("x"); }
    { Span x("x"); }
  }
  const auto agg = aggregate_by_label();
  ASSERT_TRUE(agg.count("x"));
  EXPECT_EQ(agg.at("x").count, 3u);  // both positions summed
  EXPECT_EQ(agg.at("a").count, 1u);
  EXPECT_EQ(agg.at("b").count, 1u);
}

TEST_F(TraceTest, ResetDropsSpansAndCounters) {
  set_enabled(true);
  { Span s("gone"); }
  counter_add("gone", 7);
  reset();
  EXPECT_TRUE(collect_tree().children.empty());
  EXPECT_TRUE(counters().empty());
}

TEST_F(TraceTest, SpanOpenAcrossDisableStillCloses) {
  set_enabled(true);
  {
    Span s("closing");
    set_enabled(false);
  }
  const ReportNode root = collect_tree();
  ASSERT_NE(root.child("closing"), nullptr);
  EXPECT_EQ(root.child("closing")->stats.count, 1u);
}

TEST_F(TraceTest, DisabledSpanConstructionIsCheap) {
  // The contract is "one relaxed atomic load"; assert the observable
  // half: a million disabled spans leave no trace and finish promptly.
  for (int i = 0; i < 1'000'000; ++i) {
    Span s("hot");
    counter_add("hot", 1);
  }
  EXPECT_TRUE(collect_tree().children.empty());
  EXPECT_TRUE(counters().empty());
}

}  // namespace
}  // namespace cesm::trace
