#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace cesm {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, NoObviousCollisions) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      seen.insert(hash_combine(a, b));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(Pcg32, DeterministicStream) {
  Pcg32 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(123);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Pcg32, BoundedIsInRange) {
  Pcg32 rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(1), 0u);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Pcg32, BoundedCoversAllValues) {
  Pcg32 rng(5);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(NormalSampler, MomentsMatchStandardNormal) {
  NormalSampler n(2024);
  constexpr int kN = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = n.next();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(NormalSampler, ShiftAndScale) {
  NormalSampler n(11);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += n.next(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

}  // namespace
}  // namespace cesm
