#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.h"

namespace cesm {
namespace {

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(pool.wait_idle(), Error);
  // Pool remains usable after an exception.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  parallel_for(7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, ComputesCorrectSum) {
  std::vector<double> values(10000);
  parallel_for(0, values.size(), [&](std::size_t i) {
    values[i] = static_cast<double>(i);
  });
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 10000.0 * 9999.0 / 2.0);
}

TEST(ParallelFor, NestedCallsDegradeToSerialWithoutDeadlock) {
  std::atomic<int> counter{0};
  parallel_for(0, 16, [&](std::size_t) {
    parallel_for(0, 16, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 256);
}

TEST(ParallelFor, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 50) throw Error("body failure");
                   }),
      Error);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().thread_count(), 1u);
}

}  // namespace
}  // namespace cesm
