#include "util/cache.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "util/error.h"

namespace cesm::util {
namespace {

// ---------------------------------------------------------------------------
// KeyHasher
// ---------------------------------------------------------------------------

TEST(KeyHasher, DeterministicAcrossInstances) {
  const auto digest = [] {
    KeyHasher h;
    h.u64(7).f64(3.25).str("CCN3").boolean(true).i64(-9);
    return h.digest();
  };
  EXPECT_EQ(digest(), digest());
}

TEST(KeyHasher, FieldOrderMatters) {
  KeyHasher a, b;
  a.u64(1).u64(2);
  b.u64(2).u64(1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(KeyHasher, StringsAreLengthPrefixed) {
  // Without length prefixes ("ab","c") and ("a","bc") would concatenate to
  // the same byte stream and collide.
  KeyHasher a, b;
  a.str("ab").str("c");
  b.str("a").str("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(KeyHasher, SingleBitInputChangeFlipsDigest) {
  KeyHasher a, b;
  a.u64(0x10);
  b.u64(0x11);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(KeyHasher, NegativeZeroAndPositiveZeroDiffer) {
  // The hash is content-addressed on exact bits, matching the cache's
  // exact-bit reproducibility contract.
  KeyHasher a, b;
  a.f64(0.0);
  b.f64(-0.0);
  EXPECT_NE(a.digest(), b.digest());
}

// ---------------------------------------------------------------------------
// LruCache
// ---------------------------------------------------------------------------

std::shared_ptr<const int> boxed(int v) { return std::make_shared<const int>(v); }

TEST(LruCache, MissThenHit) {
  LruCache<int> cache(1024);
  EXPECT_EQ(cache.get(1), nullptr);
  cache.put(1, boxed(42), 8);
  const auto hit = cache.get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.resident_bytes, 8u);
}

TEST(LruCache, EvictsLeastRecentlyUsedWithinBudget) {
  LruCache<int> cache(100);
  cache.put(1, boxed(1), 40);
  cache.put(2, boxed(2), 40);
  (void)cache.get(1);           // refresh key 1: key 2 is now the LRU victim
  cache.put(3, boxed(3), 40);   // over budget -> evict key 2
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.resident_bytes, 100u);
}

TEST(LruCache, ResidentBytesNeverExceedBudget) {
  LruCache<int> cache(100);
  for (int i = 0; i < 16; ++i) cache.put(static_cast<std::uint64_t>(i), boxed(i), 30);
  EXPECT_LE(cache.stats().resident_bytes, 100u);
}

TEST(LruCache, OversizedEntryBypassesInsteadOfEvictingEverything) {
  LruCache<int> cache(100);
  cache.put(1, boxed(1), 40);
  cache.put(2, boxed(2), 40);

  // A value larger than the whole budget would evict both residents and
  // still thrash; the insert is bypassed and counted instead.
  cache.put(99, boxed(99), 500);
  EXPECT_EQ(cache.get(99), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(2), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.oversize, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.resident_bytes, 80u);

  // Exactly at budget is still admissible.
  LruCache<int> exact(100);
  exact.put(7, boxed(7), 100);
  EXPECT_NE(exact.get(7), nullptr);
  EXPECT_EQ(exact.stats().oversize, 0u);
}

TEST(LruCache, FirstInsertWins) {
  LruCache<int> cache(1024);
  cache.put(7, boxed(1), 8);
  cache.put(7, boxed(2), 8);  // losing duplicate build: dropped
  const auto hit = cache.get(7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().resident_bytes, 8u);
}

TEST(LruCache, ValueOutlivesEviction) {
  LruCache<int> cache(10);
  cache.put(1, boxed(11), 10);
  const auto held = cache.get(1);
  cache.put(2, boxed(22), 10);  // evicts key 1
  EXPECT_EQ(cache.get(1), nullptr);
  ASSERT_NE(held, nullptr);     // shared_ptr keeps the evicted value alive
  EXPECT_EQ(*held, 11);
}

TEST(LruCache, ClearDropsEntriesButKeepsCumulativeCounters) {
  LruCache<int> cache(1024);
  cache.put(1, boxed(1), 16);
  (void)cache.get(1);
  cache.clear();
  EXPECT_EQ(cache.get(1), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.inserted_bytes, 16u);
}

// ---------------------------------------------------------------------------
// DiskCache
// ---------------------------------------------------------------------------

class DiskCacheTest : public ::testing::Test {
 protected:
  // Each gtest case runs as its own ctest process (possibly in parallel
  // with its siblings), so the scratch directory must be per-test.
  DiskCacheTest()
      : dir_(std::filesystem::path(::testing::TempDir()) /
             (std::string("cesm_disk_cache_test_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name())) {
    std::filesystem::remove_all(dir_);
  }
  ~DiskCacheTest() override { std::filesystem::remove_all(dir_); }

  static Bytes payload() { return Bytes{1, 2, 3, 4, 5, 250, 251, 252}; }

  std::filesystem::path dir_;
};

TEST_F(DiskCacheTest, RoundTrip) {
  const DiskCache cache(dir_, "t");
  const std::uint64_t key = 0xabcdef0123456789ull;
  EXPECT_EQ(cache.read(key), std::nullopt);
  cache.write(key, payload());
  const auto got = cache.read(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload());
}

TEST_F(DiskCacheTest, DistinctKeysGetDistinctFiles) {
  const DiskCache cache(dir_, "t");
  cache.write(1, Bytes{1});
  cache.write(2, Bytes{2});
  EXPECT_NE(cache.entry_path(1), cache.entry_path(2));
  EXPECT_EQ(*cache.read(1), Bytes{1});
  EXPECT_EQ(*cache.read(2), Bytes{2});
}

TEST_F(DiskCacheTest, TruncatedEntryReadsAsMissAndIsDeleted) {
  const DiskCache cache(dir_, "t");
  cache.write(3, payload());
  const std::filesystem::path path = cache.entry_path(3);
  // Chop the file mid-payload, as a crash or disk-full rot would.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 3);
  EXPECT_EQ(cache.read(3), std::nullopt);
  EXPECT_FALSE(std::filesystem::exists(path)) << "corrupt entry must be deleted";
  // The regenerated value replaces it cleanly.
  cache.write(3, payload());
  EXPECT_EQ(*cache.read(3), payload());
}

void flip_byte_at(const std::filesystem::path& path, std::size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST_F(DiskCacheTest, PayloadBitRotFailsChecksumAndReadsAsMiss) {
  const DiskCache cache(dir_, "t");
  cache.write(4, payload());
  const std::filesystem::path path = cache.entry_path(4);
  const std::size_t header = 4 + 4 + 8 + 8 + 8;  // magic,version,key,size,checksum
  flip_byte_at(path, header + 2);
  EXPECT_EQ(cache.read(4), std::nullopt);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(DiskCacheTest, HeaderVersionMismatchReadsAsMiss) {
  const DiskCache cache(dir_, "t");
  cache.write(5, payload());
  flip_byte_at(cache.entry_path(5), 4);  // first byte of the format version
  EXPECT_EQ(cache.read(5), std::nullopt);
}

TEST_F(DiskCacheTest, KeyEchoMismatchReadsAsMiss) {
  // A file renamed (or hash-colliding) onto another key's path carries the
  // wrong key echo and must not be trusted.
  const DiskCache cache(dir_, "t");
  cache.write(6, payload());
  std::filesystem::rename(cache.entry_path(6), cache.entry_path(7));
  EXPECT_EQ(cache.read(7), std::nullopt);
}

TEST_F(DiskCacheTest, EmptyFileReadsAsMiss) {
  const DiskCache cache(dir_, "t");
  { std::ofstream f(cache.entry_path(8), std::ios::binary); }
  EXPECT_EQ(cache.read(8), std::nullopt);
}

TEST_F(DiskCacheTest, OversizedPayloadBypassesWrite) {
  const DiskCache cache(dir_, "t", /*max_payload_bytes=*/4);
  cache.write(10, payload());  // 8 bytes > the 4-byte budget
  EXPECT_EQ(cache.read(10), std::nullopt);
  EXPECT_FALSE(std::filesystem::exists(cache.entry_path(10)));
  cache.write(11, Bytes{1, 2, 3, 4});  // exactly at budget: admitted
  EXPECT_EQ(*cache.read(11), (Bytes{1, 2, 3, 4}));
}

TEST_F(DiskCacheTest, OverwriteReplacesEntry) {
  const DiskCache cache(dir_, "t");
  cache.write(9, Bytes{1, 1, 1});
  cache.write(9, Bytes{2, 2});
  EXPECT_EQ(*cache.read(9), (Bytes{2, 2}));
}

TEST_F(DiskCacheTest, UnusableDirectoryThrowsIoError) {
  // A path whose parent is a regular file can never become a directory.
  const std::filesystem::path file = dir_;
  std::filesystem::create_directories(file.parent_path());
  { std::ofstream f(file, std::ios::binary); }
  EXPECT_THROW(DiskCache(file / "sub", "t"), IoError);
}

// ---------------------------------------------------------------------------
// evict_directory_to_budget + the DiskCache total-byte budget
// ---------------------------------------------------------------------------

/// Write `bytes` zeros at dir/name and stamp an mtime `age_rank` hours in
/// the past, so eviction order is deterministic regardless of filesystem
/// timestamp resolution.
void put_file(const std::filesystem::path& dir, const char* name,
              std::size_t bytes, int age_rank) {
  const std::filesystem::path path = dir / name;
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    const std::string zeros(bytes, '\0');
    f.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now() -
                std::chrono::hours(age_rank));
}

TEST_F(DiskCacheTest, EvictDirectoryRemovesOldestFirstAndOnlyMatching) {
  std::filesystem::create_directories(dir_);
  put_file(dir_, "a.cnk1", 100, 3);  // oldest
  put_file(dir_, "b.cnk1", 100, 2);
  put_file(dir_, "c.cnk1", 100, 1);  // newest
  put_file(dir_, "d.other", 100, 4);  // wrong extension: invisible to eviction

  const EvictionResult result = evict_directory_to_budget(dir_, ".cnk1", 150);
  EXPECT_EQ(result.files_removed, 2u);
  EXPECT_EQ(result.bytes_removed, 200u);
  EXPECT_FALSE(std::filesystem::exists(dir_ / "a.cnk1"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "b.cnk1"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "c.cnk1"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "d.other"));
}

TEST_F(DiskCacheTest, EvictDirectorySkipsProtectedPaths) {
  std::filesystem::create_directories(dir_);
  put_file(dir_, "a.cnk1", 100, 3);  // oldest, but in active use
  put_file(dir_, "b.cnk1", 100, 2);
  put_file(dir_, "c.cnk1", 100, 1);

  const std::string protect[] = {(dir_ / "a.cnk1").string()};
  const EvictionResult result = evict_directory_to_budget(dir_, ".cnk1", 100, protect);
  EXPECT_EQ(result.files_removed, 2u);
  EXPECT_TRUE(std::filesystem::exists(dir_ / "a.cnk1"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "b.cnk1"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "c.cnk1"));
}

TEST_F(DiskCacheTest, EvictDirectoryIsNoOpUnderBudget) {
  std::filesystem::create_directories(dir_);
  put_file(dir_, "a.cnk1", 100, 1);
  const EvictionResult result = evict_directory_to_budget(dir_, ".cnk1", 100);
  EXPECT_EQ(result.files_removed, 0u);
  EXPECT_EQ(result.bytes_removed, 0u);
  EXPECT_TRUE(std::filesystem::exists(dir_ / "a.cnk1"));
}

TEST_F(DiskCacheTest, EvictMissingDirectoryIsNotFatal) {
  const EvictionResult result =
      evict_directory_to_budget(dir_ / "never_created", ".cnk1", 0);
  EXPECT_EQ(result.files_removed, 0u);
  EXPECT_EQ(result.bytes_removed, 0u);
}

TEST_F(DiskCacheTest, TotalByteBudgetEvictsOldestEntriesAfterWrite) {
  // Entries are 32 header + 8 payload = 40 bytes; a 100-byte directory
  // budget holds two. The entry just written is always protected.
  const DiskCache cache(dir_, "t", 0, 100);
  cache.write(1, payload());
  cache.write(2, payload());
  // Backdate the first two so the third write's eviction pass has an
  // unambiguous oldest victim.
  std::filesystem::last_write_time(
      cache.entry_path(1), std::filesystem::file_time_type::clock::now() -
                               std::chrono::hours(2));
  std::filesystem::last_write_time(
      cache.entry_path(2), std::filesystem::file_time_type::clock::now() -
                               std::chrono::hours(1));
  cache.write(3, payload());

  EXPECT_EQ(cache.read(1), std::nullopt);  // evicted: oldest
  ASSERT_TRUE(cache.read(2).has_value());
  ASSERT_TRUE(cache.read(3).has_value());
}

TEST_F(DiskCacheTest, ZeroTotalBudgetMeansUnlimited) {
  const DiskCache cache(dir_, "t", 0, 0);
  for (std::uint64_t k = 1; k <= 8; ++k) cache.write(k, payload());
  for (std::uint64_t k = 1; k <= 8; ++k) EXPECT_TRUE(cache.read(k).has_value());
}

// ---------------------------------------------------------------------------
// CacheConfig::from_env
// ---------------------------------------------------------------------------

class CacheConfigEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("CESM_CACHE");
    ::unsetenv("CESM_CACHE_MB");
    ::unsetenv("CESM_CACHE_DIR");
    ::unsetenv("CESM_CACHE_DISK_MB");
  }
};

TEST_F(CacheConfigEnvTest, Defaults) {
  const CacheConfig cfg = CacheConfig::from_env();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.max_bytes, 256ull << 20);
  EXPECT_TRUE(cfg.disk_dir.empty());
}

TEST_F(CacheConfigEnvTest, DisableAndSize) {
  ::setenv("CESM_CACHE", "off", 1);
  ::setenv("CESM_CACHE_MB", "64", 1);
  ::setenv("CESM_CACHE_DIR", "/tmp/cesm-cache-env-test", 1);
  const CacheConfig cfg = CacheConfig::from_env();
  EXPECT_FALSE(cfg.enabled);
  EXPECT_EQ(cfg.max_bytes, 64ull << 20);
  EXPECT_EQ(cfg.disk_dir, "/tmp/cesm-cache-env-test");
}

TEST_F(CacheConfigEnvTest, GarbageSizeIgnored) {
  ::setenv("CESM_CACHE_MB", "lots", 1);
  EXPECT_EQ(CacheConfig::from_env().max_bytes, 256ull << 20);
}

TEST_F(CacheConfigEnvTest, DiskBudgetParsedAndGuarded) {
  EXPECT_EQ(CacheConfig::from_env().disk_max_bytes, 0u);  // default: unlimited
  ::setenv("CESM_CACHE_DISK_MB", "12", 1);
  EXPECT_EQ(CacheConfig::from_env().disk_max_bytes, 12ull << 20);
  ::setenv("CESM_CACHE_DISK_MB", "99999999999999999999", 1);  // overflows u64 MiB
  EXPECT_EQ(CacheConfig::from_env().disk_max_bytes, 0u);
  ::setenv("CESM_CACHE_DISK_MB", "-1", 1);  // signs rejected by env_u64
  EXPECT_EQ(CacheConfig::from_env().disk_max_bytes, 0u);
}

}  // namespace
}  // namespace cesm::util
