// Strict env parsing: the CESM_CACHE_MB "-1" wraparound bug class.
//
// parse_env_u64 is the policy chokepoint for every numeric CESM_*
// variable; these tests pin the reject set (signs, garbage, overflow)
// and the accept set (plain digits, surrounding whitespace) so a future
// "convenience" relaxation cannot quietly reintroduce strtoull
// semantics.

#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

namespace cesm::util {
namespace {

TEST(EnvParse, AcceptsPlainDigits) {
  EXPECT_EQ(parse_env_u64("X", "0"), std::uint64_t{0});
  EXPECT_EQ(parse_env_u64("X", "64"), std::uint64_t{64});
  EXPECT_EQ(parse_env_u64("X", "18446744073709551615"), UINT64_MAX);
}

TEST(EnvParse, AcceptsSurroundingWhitespace) {
  EXPECT_EQ(parse_env_u64("X", "  42"), std::uint64_t{42});
  EXPECT_EQ(parse_env_u64("X", "42\t "), std::uint64_t{42});
  EXPECT_EQ(parse_env_u64("X", " 42 "), std::uint64_t{42});
}

TEST(EnvParse, RejectsNegativeInsteadOfWrapping) {
  // strtoull("-1") == UINT64_MAX: the bug this parser exists to kill.
  EXPECT_EQ(parse_env_u64("CESM_CACHE_MB", "-1"), std::nullopt);
  EXPECT_EQ(parse_env_u64("CESM_CACHE_MB", "-9999"), std::nullopt);
}

TEST(EnvParse, RejectsSignsGarbageAndEmpty) {
  EXPECT_EQ(parse_env_u64("X", "+5"), std::nullopt);
  EXPECT_EQ(parse_env_u64("X", "abc"), std::nullopt);
  EXPECT_EQ(parse_env_u64("X", "64abc"), std::nullopt);  // trailing garbage
  EXPECT_EQ(parse_env_u64("X", "6 4"), std::nullopt);    // interior space
  EXPECT_EQ(parse_env_u64("X", ""), std::nullopt);
  EXPECT_EQ(parse_env_u64("X", "   "), std::nullopt);
  EXPECT_EQ(parse_env_u64("X", "0x10"), std::nullopt);   // no hex
  EXPECT_EQ(parse_env_u64("X", "1e3"), std::nullopt);    // no exponents
  EXPECT_EQ(parse_env_u64("X", nullptr), std::nullopt);
}

TEST(EnvParse, RejectsOverflowInsteadOfTruncating) {
  EXPECT_EQ(parse_env_u64("X", "18446744073709551616"), std::nullopt);  // 2^64
  EXPECT_EQ(parse_env_u64("X", "99999999999999999999999"), std::nullopt);
}

TEST(EnvParse, EnvLookupReadsAndRejectsLikeTheParser) {
  ::setenv("CESM_TEST_ENV_U64", "128", 1);
  EXPECT_EQ(env_u64("CESM_TEST_ENV_U64"), std::uint64_t{128});
  ::setenv("CESM_TEST_ENV_U64", "-1", 1);
  EXPECT_EQ(env_u64("CESM_TEST_ENV_U64"), std::nullopt);
  ::setenv("CESM_TEST_ENV_U64", "", 1);
  EXPECT_EQ(env_u64("CESM_TEST_ENV_U64"), std::nullopt);
  ::unsetenv("CESM_TEST_ENV_U64");
  EXPECT_EQ(env_u64("CESM_TEST_ENV_U64"), std::nullopt);
}

}  // namespace
}  // namespace cesm::util
