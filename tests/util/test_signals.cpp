// Signal-drain helper: record-and-continue semantics.
//
// These tests raise real SIGTERM/SIGINT at the process (the handler is
// async-signal-safe and merely records), then check the drain surface:
// the flag, the recorded signal, the 128+signum exit code, and the
// self-pipe becoming readable so poll loops wake. The "second signal
// kills" escalation path is intentionally NOT raised here — it would
// kill the test runner; its logic lives in the handler's
// compare_exchange and is exercised manually.

#include "util/signals.h"

#include <gtest/gtest.h>
#include <poll.h>

#include <csignal>

namespace cesm::util {
namespace {

class SignalDrain : public ::testing::Test {
 protected:
  void SetUp() override {
    install_signal_drain();
    clear_interrupt_for_tests();
  }
  void TearDown() override { clear_interrupt_for_tests(); }
};

TEST_F(SignalDrain, InstallIsIdempotent) {
  install_signal_drain();
  install_signal_drain();
  EXPECT_FALSE(interrupt_requested());
  EXPECT_EQ(interrupt_signal(), 0);
  EXPECT_EQ(interrupt_exit_code(), 0);
}

TEST_F(SignalDrain, SigtermIsRecordedNotFatal) {
  ASSERT_EQ(::raise(SIGTERM), 0);
  // Still alive — that is the point. The drain surface reflects it.
  EXPECT_TRUE(interrupt_requested());
  EXPECT_EQ(interrupt_signal(), SIGTERM);
  EXPECT_EQ(interrupt_exit_code(), 128 + SIGTERM);
}

TEST_F(SignalDrain, SelfPipeWakesPollers) {
  ASSERT_GE(interrupt_fd(), 0);
  pollfd pfd = {interrupt_fd(), POLLIN, 0};
  EXPECT_EQ(::poll(&pfd, 1, 0), 0);  // idle: nothing readable

  ASSERT_EQ(::raise(SIGINT), 0);
  pfd.revents = 0;
  EXPECT_EQ(::poll(&pfd, 1, 1000), 1);
  EXPECT_NE(pfd.revents & POLLIN, 0);
  EXPECT_EQ(interrupt_signal(), SIGINT);
}

TEST_F(SignalDrain, FirstSignalWinsUntilCleared) {
  ASSERT_EQ(::raise(SIGTERM), 0);
  EXPECT_EQ(interrupt_signal(), SIGTERM);
  // clear + re-raise re-arms recording (the handler's one-shot
  // compare_exchange starts from 0 again).
  clear_interrupt_for_tests();
  EXPECT_FALSE(interrupt_requested());
  ASSERT_EQ(::raise(SIGINT), 0);
  EXPECT_EQ(interrupt_signal(), SIGINT);
}

TEST_F(SignalDrain, ClearDrainsThePipe) {
  ASSERT_EQ(::raise(SIGTERM), 0);
  clear_interrupt_for_tests();
  pollfd pfd = {interrupt_fd(), POLLIN, 0};
  EXPECT_EQ(::poll(&pfd, 1, 0), 0) << "stale wake byte left in the self-pipe";
}

}  // namespace
}  // namespace cesm::util
