#include "util/bytes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace cesm {
namespace {

TEST(Bytes, RoundTripsAllScalarTypes) {
  Bytes buf;
  ByteWriter w(buf);
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f32(3.14159f);
  w.f64(-2.718281828459045);
  w.str("hello world");

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_FLOAT_EQ(r.f32(), 3.14159f);
  EXPECT_DOUBLE_EQ(r.f64(), -2.718281828459045);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, LittleEndianLayout) {
  Bytes buf;
  ByteWriter w(buf);
  w.u32(0x01020304u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(Bytes, FloatBitPatternsSurviveExactly) {
  Bytes buf;
  ByteWriter w(buf);
  w.f32(-0.0f);
  w.f32(std::numeric_limits<float>::infinity());
  w.f64(std::numeric_limits<double>::denorm_min());
  ByteReader r(buf);
  const float neg_zero = r.f32();
  EXPECT_EQ(std::signbit(neg_zero), true);
  EXPECT_EQ(neg_zero, 0.0f);
  EXPECT_EQ(r.f32(), std::numeric_limits<float>::infinity());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

TEST(Bytes, ReaderThrowsOnTruncation) {
  Bytes buf;
  ByteWriter w(buf);
  w.u16(7);
  ByteReader r(buf);
  EXPECT_THROW(r.u32(), FormatError);
}

TEST(Bytes, StringWithEmbeddedNulRoundTrips) {
  Bytes buf;
  ByteWriter w(buf);
  const std::string s("a\0b", 3);
  w.str(s);
  ByteReader r(buf);
  EXPECT_EQ(r.str(), s);
}

TEST(Bytes, TruncatedStringThrows) {
  Bytes buf;
  ByteWriter w(buf);
  w.u32(100);  // claims 100 bytes follow
  buf.push_back('x');
  ByteReader r(buf);
  EXPECT_THROW(r.str(), FormatError);
}

TEST(Bytes, RawSpanAccess) {
  Bytes buf;
  ByteWriter w(buf);
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  w.raw(payload, 5);
  ByteReader r(buf);
  auto s = r.raw(3);
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[2], 3);
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_THROW(r.raw(3), FormatError);
}

}  // namespace
}  // namespace cesm
