#include "util/memory.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.h"

namespace cesm::util {
namespace {

using namespace std::chrono_literals;

/// Spin until `pred` holds or ~5s elapse (far beyond any real contention
/// window; the bound only exists so a regression fails instead of hanging).
template <typename Pred>
bool eventually(Pred&& pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

TEST(MemoryBudget, ChargeAccumulatesAndTracksPeak) {
  MemoryBudget budget;  // no cap: account only
  budget.charge("a", 100);
  budget.charge("b", 50);
  EXPECT_EQ(budget.charged_bytes(), 150u);
  budget.release(120);
  budget.charge("c", 10);
  EXPECT_EQ(budget.charged_bytes(), 40u);
  EXPECT_EQ(budget.peak_logical_bytes(), 150u);
}

TEST(MemoryBudget, ChargeStaysFailFastUnderCap) {
  MemoryBudget budget(100);
  budget.charge("a", 60);
  EXPECT_THROW(budget.charge("b", 50), Error);
  // The rejected charge must not be recorded.
  EXPECT_EQ(budget.charged_bytes(), 60u);
  EXPECT_NO_THROW(budget.charge("b", 40));
}

TEST(MemoryBudget, ReleaseClampsAtZero) {
  MemoryBudget budget(100);
  budget.charge("a", 30);
  budget.release(1000);  // release after a partial unwind must not underflow
  EXPECT_EQ(budget.charged_bytes(), 0u);
  EXPECT_NO_THROW(budget.charge("b", 100));
}

TEST(MemoryBudget, ReserveLargerThanCapThrowsInsteadOfParking) {
  MemoryBudget budget(100);
  // Parking a reservation that can never fit would hang forever.
  EXPECT_THROW(budget.reserve("whale", 101), Error);
  EXPECT_EQ(budget.charged_bytes(), 0u);
  EXPECT_EQ(budget.reserve_waits(), 0u);
}

TEST(MemoryBudget, UncappedReserveNeverBlocks) {
  MemoryBudget budget;  // cap 0
  budget.reserve("a", 1ull << 40);
  budget.reserve("b", 1ull << 40);
  EXPECT_EQ(budget.reserve_waits(), 0u);
  budget.release(1ull << 40);
  budget.release(1ull << 40);
}

TEST(MemoryBudget, ReserveParksUntilRelease) {
  MemoryBudget budget(100);
  budget.reserve("holder", 60);

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    budget.reserve("waiter", 60);  // 120 > 100: must park
    admitted.store(true);
  });

  // The waiter must be parked, not admitted and not dead.
  ASSERT_TRUE(eventually([&] { return budget.reserve_waits() == 1; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(budget.charged_bytes(), 60u);

  budget.release(60);
  ASSERT_TRUE(eventually([&] { return admitted.load(); }));
  waiter.join();
  EXPECT_EQ(budget.charged_bytes(), 60u);
  // The cap held throughout: both tenants never coexisted.
  EXPECT_LE(budget.peak_logical_bytes(), 100u);
  budget.release(60);
}

TEST(MemoryBudget, FifoAdmissionPreventsStarvationOfLargeReservations) {
  MemoryBudget budget(100);
  budget.reserve("holder", 80);

  // A large reservation parks first; a small one that *would* fit arrives
  // behind it. FIFO admission means the small one must not overtake —
  // otherwise a stream of small tenants could starve the large one forever.
  std::mutex order_mu;
  std::vector<int> order;
  std::thread large([&] {
    budget.reserve("large", 90);
    {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(90);
    }
  });
  ASSERT_TRUE(eventually([&] { return budget.reserve_waits() == 1; }));

  std::thread small([&] {
    budget.reserve("small", 20);  // fits today, but queued behind "large"
    {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(20);
    }
  });
  ASSERT_TRUE(eventually([&] { return budget.reserve_waits() == 2; }));

  // Nobody admitted yet; the holder still owns 80 of 100.
  {
    std::lock_guard<std::mutex> lock(order_mu);
    EXPECT_TRUE(order.empty());
  }

  budget.release(80);  // large (90) fits now; small must follow, not lead
  ASSERT_TRUE(eventually([&] {
    std::lock_guard<std::mutex> lock(order_mu);
    return order.size() == 1;
  }));
  {
    std::lock_guard<std::mutex> lock(order_mu);
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], 90);
  }

  budget.release(90);  // now the small one fits too
  ASSERT_TRUE(eventually([&] {
    std::lock_guard<std::mutex> lock(order_mu);
    return order.size() == 2;
  }));
  large.join();
  small.join();
  EXPECT_LE(budget.peak_logical_bytes(), 100u);
  budget.release(20);
  EXPECT_EQ(budget.charged_bytes(), 0u);
}

TEST(MemoryBudget, ManyTenantsRacingASmallCapAllComplete) {
  // Deadlock/starvation smoke: 8 threads make 25 all-or-nothing
  // reservations each against a cap that fits only two at a time.
  MemoryBudget budget(100);
  std::atomic<int> completed{0};
  std::vector<std::thread> tenants;
  for (int t = 0; t < 8; ++t) {
    tenants.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        MemoryReservation r(budget, "tenant", 40);
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : tenants) t.join();
  EXPECT_EQ(completed.load(), 200);
  EXPECT_EQ(budget.charged_bytes(), 0u);
  EXPECT_LE(budget.peak_logical_bytes(), 100u);
}

TEST(MemoryReservation, ReleasesOnScopeExitIncludingUnwind) {
  MemoryBudget budget(100);
  {
    const MemoryReservation r(budget, "scope", 70);
    EXPECT_EQ(budget.charged_bytes(), 70u);
    EXPECT_EQ(r.bytes(), 70u);
  }
  EXPECT_EQ(budget.charged_bytes(), 0u);

  try {
    const MemoryReservation r(budget, "unwind", 70);
    throw Error("boom");
  } catch (const Error&) {
  }
  EXPECT_EQ(budget.charged_bytes(), 0u);
}

}  // namespace
}  // namespace cesm::util
