// Trigger semantics, configuration parsing, and counter bookkeeping of
// the cesm::fail fault-injection registry. The integration coverage that
// fires every *production* site lives in
// tests/integration/test_failpoint_sites.cpp.

#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace cesm::fail {
namespace {

// One compiled-in site the tests can hit at will. The macro's static
// site-reference binds to the first name it sees, so each helper pins its
// own name. "sched.task" is a real registered site; hitting it here only
// adds to its counters.
void poke() { CESM_FAILPOINT("sched.task"); }

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(FailpointTest, DisabledByDefaultAndZeroHitAccounting) {
  EXPECT_FALSE(enabled());
  poke();  // gated out entirely: not even the hit counter moves
  EXPECT_EQ(hit_count("sched.task"), 0u);
  EXPECT_EQ(fire_count("sched.task"), 0u);
}

TEST_F(FailpointTest, AlwaysFiresEveryHit) {
  arm("sched.task", Trigger::always());
  EXPECT_TRUE(enabled());
  EXPECT_THROW(poke(), InjectedFault);
  EXPECT_THROW(poke(), InjectedFault);
  EXPECT_EQ(hit_count("sched.task"), 2u);
  EXPECT_EQ(fire_count("sched.task"), 2u);
  disarm("sched.task");
  EXPECT_FALSE(enabled());
  poke();  // disarmed again: clean pass-through
}

TEST_F(FailpointTest, OnceFiresExactlyOnceThenDisarms) {
  arm("sched.task", Trigger::once());
  EXPECT_THROW(poke(), InjectedFault);
  EXPECT_FALSE(enabled()) << "one-shot trigger must disarm itself";
  poke();
  poke();
  EXPECT_EQ(fire_count("sched.task"), 1u);
}

TEST_F(FailpointTest, NthFiresOnExactlyTheNthArmedHit) {
  arm("sched.task", Trigger::nth(3));
  poke();
  poke();
  EXPECT_THROW(poke(), InjectedFault);
  EXPECT_EQ(fire_count("sched.task"), 1u);
  EXPECT_FALSE(enabled());
}

TEST_F(FailpointTest, InjectedFaultCarriesSiteAndIsACesmError) {
  arm("sched.task", Trigger::once());
  try {
    poke();
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "sched.task");
    EXPECT_NE(std::string(e.what()).find("sched.task"), std::string::npos);
    const Error* base = &e;  // must travel the ordinary error unwind path
    EXPECT_NE(base, nullptr);
  }
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  const auto pattern = [&](std::uint64_t seed) {
    reset();
    arm("sched.task", Trigger::with_probability(0.3, seed));
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      bool f = false;
      try {
        poke();
      } catch (const InjectedFault&) {
        f = true;
      }
      fired.push_back(f);
    }
    return fired;
  };
  const auto a = pattern(42);
  const auto b = pattern(42);
  const auto c = pattern(43);
  EXPECT_EQ(a, b) << "same seed must fire at the same hit indices";
  EXPECT_NE(a, c) << "different seeds should differ somewhere in 200 hits";
  const auto fires = static_cast<double>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires / 200.0, 0.15);
  EXPECT_LT(fires / 200.0, 0.45);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFiresProbabilityOneAlwaysFires) {
  arm("sched.task", Trigger::with_probability(0.0, 7));
  for (int i = 0; i < 50; ++i) poke();
  EXPECT_EQ(fire_count("sched.task"), 0u);
  arm("sched.task", Trigger::with_probability(1.0, 7));
  for (int i = 0; i < 10; ++i) EXPECT_THROW(poke(), InjectedFault);
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    ScopedFailpoint fp("sched.task", Trigger::always());
    EXPECT_TRUE(enabled());
    EXPECT_THROW(poke(), InjectedFault);
  }
  EXPECT_FALSE(enabled());
  poke();
  EXPECT_EQ(fire_count("sched.task"), 1u);
}

TEST_F(FailpointTest, ArmRejectsUnknownSite) {
  EXPECT_THROW(arm("no.such.site", Trigger::always()), InvalidArgument);
  EXPECT_FALSE(is_registered("no.such.site"));
  EXPECT_TRUE(is_registered("sched.task"));
}

TEST_F(FailpointTest, RegistryListsEveryCompiledInSite) {
  const std::vector<std::string> sites = all_sites();
  ASSERT_GE(sites.size(), 17u);
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  for (const char* expected :
       {"apax.decode", "chunked.decode", "deflate.decode", "fpc.decode", "fpz.decode",
        "grib2.decode", "isabela.decode", "isobar.decode", "mafisc.decode", "ncio.read",
        "ncio.read_file", "ncio.write", "ncio.write_file", "sched.task", "special.decode",
        "suite.variable", "suite.verify_variant"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end()) << expected;
  }
}

TEST_F(FailpointTest, ConfigureParsesMultipleEntriesAndWhitespace) {
  configure(" fpz.decode = once , grib2.decode=nth:4 ; ncio.read=prob:0.5:99 ");
  EXPECT_TRUE(enabled());
  // All three armed: firing fpz disarms only that one.
  disarm("grib2.decode");
  disarm("ncio.read");
  EXPECT_TRUE(enabled());
  disarm("fpz.decode");
  EXPECT_FALSE(enabled());
}

TEST_F(FailpointTest, ConfigureRejectsMalformedSpecs) {
  EXPECT_THROW(configure("fpz.decode"), InvalidArgument);
  EXPECT_THROW(configure("=always"), InvalidArgument);
  EXPECT_THROW(configure("fpz.decode="), InvalidArgument);
  EXPECT_THROW(configure("fpz.decode=nth:0"), InvalidArgument);
  EXPECT_THROW(configure("fpz.decode=nth:x"), InvalidArgument);
  EXPECT_THROW(configure("fpz.decode=prob:1.5"), InvalidArgument);
  EXPECT_THROW(configure("fpz.decode=prob:0.5:zz"), InvalidArgument);
  EXPECT_THROW(configure("fpz.decode=sometimes"), InvalidArgument);
  EXPECT_THROW(configure("no.such.site=always"), InvalidArgument);
  EXPECT_FALSE(enabled());
}

TEST_F(FailpointTest, ConfigureFromEnvAppliesAndSurvivesGarbage) {
  ASSERT_EQ(setenv("CESM_FAILPOINTS", "sched.task=nth:2", 1), 0);
  EXPECT_TRUE(configure_from_env());
  EXPECT_TRUE(enabled());
  poke();
  EXPECT_THROW(poke(), InjectedFault);

  ASSERT_EQ(setenv("CESM_FAILPOINTS", "total garbage", 1), 0);
  EXPECT_FALSE(configure_from_env()) << "malformed env must warn, not throw";

  ASSERT_EQ(unsetenv("CESM_FAILPOINTS"), 0);
  EXPECT_FALSE(configure_from_env());
}

TEST_F(FailpointTest, ResetClearsCountersAndTriggers) {
  arm("sched.task", Trigger::always());
  EXPECT_THROW(poke(), InjectedFault);
  reset();
  EXPECT_FALSE(enabled());
  EXPECT_EQ(hit_count("sched.task"), 0u);
  EXPECT_EQ(fire_count("sched.task"), 0u);
  const auto counts = fire_counts();
  for (const auto& [site, fires] : counts) EXPECT_EQ(fires, 0u) << site;
  EXPECT_EQ(counts.size(), all_sites().size());
}

TEST_F(FailpointTest, CountersThrowForUnknownSite) {
  EXPECT_THROW(hit_count("no.such.site"), InvalidArgument);
  EXPECT_THROW(fire_count("no.such.site"), InvalidArgument);
}

}  // namespace
}  // namespace cesm::fail
