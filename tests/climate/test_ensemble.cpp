#include "climate/ensemble.h"

#include <gtest/gtest.h>

#include "climate/history.h"

namespace cesm::climate {
namespace {

EnsembleSpec tiny_spec(std::size_t members = 8) {
  EnsembleSpec spec;
  spec.grid = GridSpec{12, 18, 3};
  spec.members = members;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 200;
  spec.latent.average_steps = 400;
  return spec;
}

TEST(Ensemble, FieldShapesMatchVariableKind) {
  const EnsembleGenerator ens(tiny_spec());
  const Field f2 = ens.field("FSDSC", 0);
  EXPECT_EQ(f2.shape.rank(), 1u);
  EXPECT_EQ(f2.shape.dims[0], 12u * 18u);
  const Field f3 = ens.field("U", 0);
  EXPECT_EQ(f3.shape.rank(), 2u);
  EXPECT_EQ(f3.shape.dims[0], 3u);
  EXPECT_EQ(f3.shape.dims[1], 12u * 18u);
}

TEST(Ensemble, FieldsAreReproducible) {
  const EnsembleGenerator ens(tiny_spec());
  EXPECT_EQ(ens.field("U", 2).data, ens.field("U", 2).data);
}

TEST(Ensemble, MembersDifferButShareClimate) {
  const EnsembleGenerator ens(tiny_spec());
  const Field a = ens.field("T", 0);
  const Field b = ens.field("T", 5);
  EXPECT_NE(a.data, b.data);
  // Same climate: spatial means within a few K of each other.
  double ma = 0.0, mb = 0.0;
  for (float x : a.data) ma += x;
  for (float x : b.data) mb += x;
  ma /= static_cast<double>(a.data.size());
  mb /= static_cast<double>(b.data.size());
  EXPECT_NEAR(ma, mb, 10.0);
}

TEST(Ensemble, EnsembleFieldsReturnsAllMembers) {
  const EnsembleGenerator ens(tiny_spec(6));
  const auto fields = ens.ensemble_fields(ens.variable("PS"));
  ASSERT_EQ(fields.size(), 6u);
  for (const Field& f : fields) EXPECT_EQ(f.size(), 12u * 18u);
  EXPECT_EQ(fields[3].data, ens.field("PS", 3).data);
}

TEST(Ensemble, ExtraMembersBeyondBaseAreSupported) {
  const EnsembleGenerator ens(tiny_spec(4));
  const Field f = ens.field("U", 10);  // "new machine" run
  EXPECT_EQ(f.size(), 3u * 12u * 18u);
  EXPECT_EQ(f.data, ens.field("U", 10).data);
}

TEST(History, RoundTripsThroughDataset) {
  const EnsembleGenerator ens(tiny_spec(3));
  const ncio::Dataset ds =
      make_history(ens, 1, {"U", "FSDSC", "SST"}, ncio::Storage::kDeflate);
  ASSERT_EQ(ds.variables().size(), 3u);

  const Field u = field_from_history(ds, "U");
  EXPECT_EQ(u.data, ens.field("U", 1).data);
  EXPECT_EQ(u.shape.rank(), 2u);

  const Field sst = field_from_history(ds, "SST");
  ASSERT_TRUE(sst.fill.has_value());
  EXPECT_EQ(*sst.fill, kFillValue);

  const ncio::Dataset back = ncio::Dataset::deserialize(ds.serialize());
  EXPECT_EQ(field_from_history(back, "FSDSC").data, ens.field("FSDSC", 1).data);
}

TEST(History, FullCatalogHistoryHas170Variables) {
  const EnsembleGenerator ens(tiny_spec(3));
  const ncio::Dataset ds = make_history(ens, 0);
  EXPECT_EQ(ds.variables().size(), 170u);
}

TEST(History, UnknownVariableThrows) {
  const EnsembleGenerator ens(tiny_spec(3));
  const ncio::Dataset ds = make_history(ens, 0, {"U"});
  EXPECT_THROW(field_from_history(ds, "MISSING"), InvalidArgument);
}

}  // namespace
}  // namespace cesm::climate
