#include "climate/variables.h"

#include <gtest/gtest.h>

#include <set>

#include "util/error.h"

namespace cesm::climate {
namespace {

TEST(Catalog, CensusMatchesPaper) {
  const auto catalog = build_catalog();
  std::size_t n2 = 0, n3 = 0;
  for (const auto& v : catalog) (v.is_3d ? n3 : n2) += 1;
  EXPECT_EQ(catalog.size(), 170u);  // §5.1
  EXPECT_EQ(n2, 83u);
  EXPECT_EQ(n3, 87u);
}

TEST(Catalog, NamesAreUnique) {
  const auto catalog = build_catalog();
  std::set<std::string> names;
  for (const auto& v : catalog) names.insert(v.name);
  EXPECT_EQ(names.size(), catalog.size());
}

TEST(Catalog, StreamsAreUnique) {
  const auto catalog = build_catalog();
  std::set<std::uint64_t> streams;
  for (const auto& v : catalog) streams.insert(v.stream);
  EXPECT_EQ(streams.size(), catalog.size());
}

TEST(Catalog, SpotlightVariablesPresentWithPaperShapes) {
  const auto catalog = build_catalog();
  const VariableSpec& u = find_variable(catalog, "U");
  EXPECT_TRUE(u.is_3d);
  EXPECT_EQ(u.units, "m/s");
  const VariableSpec& fsdsc = find_variable(catalog, "FSDSC");
  EXPECT_FALSE(fsdsc.is_3d);  // "FSDSC is a 2D field and the rest are 3D"
  EXPECT_TRUE(find_variable(catalog, "Z3").is_3d);
  EXPECT_TRUE(find_variable(catalog, "CCN3").is_3d);
  EXPECT_EQ(find_variable(catalog, "CCN3").transform, TransformKind::kLogNormal);
}

TEST(Catalog, MagnitudeDiversitySpansPaperExamples) {
  // §3.1: SO2 max is O(1e-8), CCN3 max is O(1e3).
  const auto catalog = build_catalog();
  const VariableSpec& so2 = find_variable(catalog, "SO2");
  EXPECT_EQ(so2.transform, TransformKind::kLogNormal);
  EXPECT_LT(so2.log_mu, -20.0);
  const VariableSpec& ccn3 = find_variable(catalog, "CCN3");
  EXPECT_GT(ccn3.log_sigma, 1.0);
}

TEST(Catalog, ContainsFillValuedVariables) {
  const auto catalog = build_catalog();
  std::size_t with_fill = 0;
  for (const auto& v : catalog) {
    if (v.has_fill) ++with_fill;
  }
  EXPECT_GE(with_fill, 3u);
  EXPECT_TRUE(find_variable(catalog, "SST").has_fill);
}

TEST(Catalog, CoversAllTransformKinds) {
  const auto catalog = build_catalog();
  std::set<TransformKind> kinds;
  for (const auto& v : catalog) kinds.insert(v.transform);
  EXPECT_EQ(kinds.size(), 4u);
}

TEST(Catalog, IsDeterministic) {
  const auto a = build_catalog();
  const auto b = build_catalog();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].stream, b[i].stream);
    EXPECT_EQ(a[i].center, b[i].center);
  }
}

TEST(FindVariable, ThrowsOnUnknownName) {
  const auto catalog = build_catalog();
  EXPECT_THROW(find_variable(catalog, "NO_SUCH_VAR"), InvalidArgument);
}

}  // namespace
}  // namespace cesm::climate
