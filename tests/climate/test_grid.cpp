#include "climate/grid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace cesm::climate {
namespace {

TEST(Grid, ReducedSpecDimensions) {
  const Grid grid(GridSpec::reduced());
  EXPECT_EQ(grid.columns(), 48u * 72u);
  EXPECT_EQ(grid.levels(), 8u);
}

TEST(Grid, PaperSpecApproximatesNe30) {
  const GridSpec spec = GridSpec::paper();
  // ne30 has 48,602 columns and 30 levels (§5.1); our lat-lon match is
  // within 0.2 %.
  EXPECT_NEAR(static_cast<double>(spec.columns()), 48602.0, 100.0);
  EXPECT_EQ(spec.nlev, 30u);
}

TEST(Grid, LatitudesAvoidPolesAndCoverRange) {
  const Grid grid(GridSpec{8, 16, 1});
  constexpr double half_pi = std::numbers::pi / 2.0;
  for (std::size_t c = 0; c < grid.columns(); ++c) {
    EXPECT_GT(grid.latitude(c), -half_pi);
    EXPECT_LT(grid.latitude(c), half_pi);
  }
  EXPECT_LT(grid.latitude(0), 0.0);                       // southern row first
  EXPECT_GT(grid.latitude(grid.columns() - 1), 0.0);      // northern row last
}

TEST(Grid, LongitudesWrapOnceAroundGlobe) {
  const Grid grid(GridSpec{4, 8, 1});
  EXPECT_DOUBLE_EQ(grid.longitude(0), 0.0);
  EXPECT_LT(grid.longitude(7), 2.0 * std::numbers::pi);
}

TEST(Grid, AreaWeightsNormalizedAndPolarSmaller) {
  const Grid grid(GridSpec{16, 32, 1});
  const auto& w = grid.area_weights();
  double total = 0.0;
  for (double x : w) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // A polar-row column weighs less than an equatorial one.
  EXPECT_LT(w[0], w[grid.columns() / 2]);
}

TEST(Grid, LevelFractionSpansZeroToOne) {
  const Grid grid(GridSpec{4, 4, 10});
  EXPECT_DOUBLE_EQ(grid.level_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(grid.level_fraction(9), 1.0);
  EXPECT_THROW(grid.level_fraction(10), InvalidArgument);
}

TEST(Grid, SingleLevelFractionIsMid) {
  const Grid grid(GridSpec{4, 4, 1});
  EXPECT_DOUBLE_EQ(grid.level_fraction(0), 0.5);
}

TEST(Grid, RejectsDegenerateSpecs) {
  EXPECT_THROW(Grid(GridSpec{0, 10, 1}), InvalidArgument);
  EXPECT_THROW(Grid(GridSpec{10, 2, 1}), InvalidArgument);
  EXPECT_THROW(Grid(GridSpec{10, 10, 0}), InvalidArgument);
}

}  // namespace
}  // namespace cesm::climate
