#include "climate/synthesis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"

namespace cesm::climate {
namespace {

struct Fixture {
  Fixture() : grid(GridSpec{24, 36, 4}), model(make_spec()) {}

  static Lorenz96Spec make_spec() {
    Lorenz96Spec s;
    s.k = 64;
    s.spinup_steps = 300;
    s.average_steps = 600;
    return s;
  }

  Field make(const VariableSpec& var, std::uint32_t member) {
    const FieldSynthesizer synth(grid, var, model);
    return synth.synthesize(model.member_time_means(member), member);
  }

  Grid grid;
  Lorenz96 model;
};

VariableSpec linear_var() {
  VariableSpec v;
  v.name = "TESTLIN";
  v.is_3d = false;
  v.transform = TransformKind::kLinear;
  v.center = 100.0;
  v.scale = 10.0;
  v.stream = 1234;
  return v;
}

TEST(Synthesis, DeterministicPerMemberAndVariable) {
  Fixture f;
  const Field a = f.make(linear_var(), 3);
  const Field b = f.make(linear_var(), 3);
  EXPECT_EQ(a.data, b.data);
}

TEST(Synthesis, MembersDiffer) {
  Fixture f;
  const Field a = f.make(linear_var(), 1);
  const Field b = f.make(linear_var(), 2);
  EXPECT_NE(a.data, b.data);
}

TEST(Synthesis, LinearTransformHitsTargetMagnitude) {
  Fixture f;
  const Field field = f.make(linear_var(), 1);
  const auto s = stats::summarize(std::span<const float>(field.data));
  EXPECT_NEAR(s.mean, 100.0, 30.0);
  EXPECT_GT(s.stddev, 2.0);
  EXPECT_LT(s.stddev, 60.0);
}

TEST(Synthesis, PositiveTransformNeverNegative) {
  Fixture f;
  VariableSpec v = linear_var();
  v.name = "TESTPOS";
  v.transform = TransformKind::kPositive;
  v.center = 5.0;
  v.scale = 10.0;  // would frequently dip below zero if unclamped
  const Field field = f.make(v, 1);
  for (float x : field.data) EXPECT_GE(x, 0.0f);
}

TEST(Synthesis, LogNormalSpansDecades) {
  Fixture f;
  VariableSpec v = linear_var();
  v.name = "TESTLOG";
  v.transform = TransformKind::kLogNormal;
  v.log_mu = 0.0;
  v.log_sigma = 2.0;
  const Field field = f.make(v, 1);
  const auto s = stats::summarize(std::span<const float>(field.data));
  EXPECT_GT(s.min, 0.0);
  EXPECT_GT(s.max / s.min, 1e3);
}

TEST(Synthesis, BoundedTransformStaysInBounds) {
  Fixture f;
  VariableSpec v = linear_var();
  v.name = "TESTB";
  v.transform = TransformKind::kBounded01;
  v.bound_lo = 0.0;
  v.bound_hi = 100.0;
  const Field field = f.make(v, 2);
  for (float x : field.data) {
    EXPECT_GE(x, 0.0f);
    EXPECT_LE(x, 100.0f);
  }
}

TEST(Synthesis, ThreeDFieldsHaveVerticalStructure) {
  Fixture f;
  VariableSpec v = linear_var();
  v.name = "TESTZ";
  v.is_3d = true;
  v.vertical_gradient = 1000.0;
  const Field field = f.make(v, 1);
  ASSERT_EQ(field.shape.rank(), 2u);
  EXPECT_EQ(field.shape.dims[0], 4u);
  const std::size_t ncol = f.grid.columns();
  // Level 0 (top, level_fraction 0) carries the full vertical gradient.
  const auto top = stats::summarize(std::span<const float>(field.data.data(), ncol));
  const auto bottom =
      stats::summarize(std::span<const float>(field.data.data() + 3 * ncol, ncol));
  EXPECT_GT(top.mean, bottom.mean + 500.0);
}

TEST(Synthesis, FillVariablesCarryLandMask) {
  Fixture f;
  VariableSpec v = linear_var();
  v.name = "TESTFILL";
  v.has_fill = true;
  const Field field = f.make(v, 1);
  ASSERT_TRUE(field.fill.has_value());
  const auto mask = field.valid_mask();
  std::size_t land = 0;
  for (auto m : mask) {
    if (!m) ++land;
  }
  EXPECT_GT(land, mask.size() / 20);        // some land
  EXPECT_LT(land, mask.size() * 19 / 20);   // some ocean
  // Land mask must match the shared static mask.
  const auto expected = FieldSynthesizer::land_mask(f.grid);
  for (std::size_t c = 0; c < mask.size(); ++c) {
    EXPECT_EQ(mask[c] == 0, expected[c] == 1);
  }
}

TEST(Synthesis, SmoothnessControlsNeighbourCorrelation) {
  Fixture f;
  VariableSpec smooth = linear_var();
  smooth.name = "SMOOTH";
  smooth.smoothness = 3.0;
  smooth.noise_frac = 0.02;
  VariableSpec rough = linear_var();
  rough.name = "ROUGH";
  rough.smoothness = 0.8;
  rough.noise_frac = 0.45;

  const auto lag1_corr = [&](const Field& field) {
    double num = 0.0, den = 0.0, mean = 0.0;
    for (float x : field.data) mean += x;
    mean /= static_cast<double>(field.data.size());
    for (std::size_t i = 0; i + 1 < field.data.size(); ++i) {
      num += (field.data[i] - mean) * (field.data[i + 1] - mean);
      den += (field.data[i] - mean) * (field.data[i] - mean);
    }
    return num / den;
  };
  EXPECT_GT(lag1_corr(f.make(smooth, 1)), lag1_corr(f.make(rough, 1)));
}

}  // namespace
}  // namespace cesm::climate
