#include "climate/lorenz.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cesm::climate {
namespace {

Lorenz96Spec fast_spec() {
  Lorenz96Spec spec;
  spec.k = 40;
  spec.spinup_steps = 400;
  spec.average_steps = 800;
  return spec;
}

TEST(Lorenz96, MemberMeansAreDeterministic) {
  const Lorenz96 model(fast_spec());
  const auto a = model.member_time_means(5);
  const auto b = model.member_time_means(5);
  EXPECT_EQ(a, b);
}

TEST(Lorenz96, TinyPerturbationFullyDecorrelatesMembers) {
  // The PVT premise: O(1e-14) IC differences produce completely different
  // trajectories (weather) with the same statistics (climate).
  const Lorenz96 model(fast_spec());
  const auto m1 = model.member_time_means(1);
  const auto m2 = model.member_time_means(2);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < m1.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(m1[i] - m2[i]));
  }
  EXPECT_GT(max_diff, 1e-3);  // not bit-for-bit — chaos has amplified 1e-14
}

TEST(Lorenz96, MembersShareClimatology) {
  const Lorenz96 model(fast_spec());
  const auto& clim = model.climatology();
  // Every member's time means must sit within a few climatological sigmas.
  for (std::uint32_t m = 1; m <= 6; ++m) {
    const auto means = model.member_time_means(m);
    for (std::size_t i = 0; i < means.size(); ++i) {
      const double z = (means[i] - clim.mean[i]) / clim.stddev[i];
      EXPECT_LT(std::fabs(z), 8.0) << "member " << m << " component " << i;
    }
  }
}

TEST(Lorenz96, ClimatologyHasPositiveSpread) {
  const Lorenz96 model(fast_spec());
  for (double s : model.climatology().stddev) EXPECT_GT(s, 0.0);
}

TEST(Lorenz96, TimeMeansNearTheoreticalAttractorMean) {
  // For F = 8 the long-run mean of each component is ~2.3.
  const Lorenz96 model(fast_spec());
  const auto& clim = model.climatology();
  double avg = 0.0;
  for (double m : clim.mean) avg += m;
  avg /= static_cast<double>(clim.mean.size());
  EXPECT_NEAR(avg, 2.3, 0.5);
}

TEST(Lorenz96, MemberZeroIsUnperturbedBase) {
  const Lorenz96 model(fast_spec());
  const auto base = model.member_time_means(0);
  const auto again = model.member_time_means(0);
  EXPECT_EQ(base, again);
}

}  // namespace
}  // namespace cesm::climate
