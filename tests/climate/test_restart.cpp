#include "climate/restart.h"

#include <gtest/gtest.h>

namespace cesm::climate {
namespace {

EnsembleSpec tiny_spec() {
  EnsembleSpec spec;
  spec.grid = GridSpec{8, 24, 3};
  spec.members = 3;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 150;
  spec.latent.average_steps = 300;
  return spec;
}

TEST(Restart, CarriesPrognosticStateInFullPrecision) {
  const EnsembleGenerator ens(tiny_spec());
  const ncio::Dataset ds = make_restart(ens, 1);
  for (const std::string& name : restart_variables()) {
    const ncio::Variable* v = ds.find_variable(name);
    ASSERT_NE(v, nullptr) << name;
    EXPECT_EQ(v->dtype, ncio::DataType::kFloat64);
    EXPECT_FALSE(v->f64.empty());
  }
  EXPECT_NE(ds.find_variable("latent_state"), nullptr);
}

TEST(Restart, StateHasSubFloat32Tail) {
  const EnsembleGenerator ens(tiny_spec());
  const ncio::Dataset ds = make_restart(ens, 1);
  const ncio::Variable* t = ds.find_variable("T");
  // At least some values must differ from their float32 truncation: the
  // restart carries genuine double-precision content.
  std::size_t differ = 0;
  for (double v : t->f64) {
    if (static_cast<double>(static_cast<float>(v)) != v) ++differ;
  }
  EXPECT_GT(differ, t->f64.size() / 2);
}

TEST(Restart, RoundTripsLosslesslyThroughSerialization) {
  const EnsembleGenerator ens(tiny_spec());
  const ncio::Dataset ds = make_restart(ens, 2, ncio::Storage::kDeflate);
  const ncio::Dataset back = ncio::Dataset::deserialize(ds.serialize());
  for (const std::string& name : restart_variables()) {
    EXPECT_EQ(back.find_variable(name)->f64, ds.find_variable(name)->f64) << name;
  }
}

TEST(Restart, IsDeterministicPerMember) {
  const EnsembleGenerator ens(tiny_spec());
  const ncio::Dataset a = make_restart(ens, 1);
  const ncio::Dataset b = make_restart(ens, 1);
  EXPECT_EQ(a.find_variable("U")->f64, b.find_variable("U")->f64);
  const ncio::Dataset c = make_restart(ens, 2);
  EXPECT_NE(c.find_variable("U")->f64, a.find_variable("U")->f64);
}

TEST(Restart, RejectsLossyStorage) {
  const EnsembleGenerator ens(tiny_spec());
  EXPECT_THROW(make_restart(ens, 0, ncio::Storage::kCodec), InvalidArgument);
}

}  // namespace
}  // namespace cesm::climate
