#pragma once
// Seeded field generators for tests (cesm::testgen).
//
// Every generator is a pure function of its seed (util/rng.h engines), so
// any failing assertion can be replayed exactly by re-running with the
// seed the test printed. Wrap test bodies that use these in
//
//   SCOPED_TRACE(cesm::testgen::seed_banner(seed));
//
// so gtest reprints the seed alongside the failure.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cesm::testgen {

/// "seed=0x1234abcd" — attach via SCOPED_TRACE so failures are replayable.
inline std::string seed_banner(std::uint64_t seed) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seed=0x%llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

/// Smooth climate-like field: a few low-frequency sinusoidal modes with
/// seeded phases/amplitudes plus a small seeded noise floor. Looks like a
/// (flattened) geophysical field: large-scale structure, local texture.
inline std::vector<float> smooth_field(std::size_t n, std::uint64_t seed,
                                       double base = 100.0, double amplitude = 50.0) {
  Pcg32 rng(seed);
  NormalSampler noise(hash_combine(seed, 0x5f0e));
  double phase[3], freq[3], amp[3];
  for (int m = 0; m < 3; ++m) {
    phase[m] = rng.uniform(0.0, 6.28318530717958647692);
    freq[m] = rng.uniform(0.002, 0.05) * (m + 1);
    amp[m] = amplitude / (1 << m);
  }
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = base;
    for (int m = 0; m < 3; ++m) v += amp[m] * std::sin(freq[m] * static_cast<double>(i) + phase[m]);
    v += noise.next() * amplitude * 1e-3;
    data[i] = static_cast<float>(v);
  }
  return data;
}

/// White noise, uniform in [lo, hi) — the hardest regime for predictors.
inline std::vector<float> noisy_field(std::size_t n, std::uint64_t seed,
                                      double lo = -30.0, double hi = 70.0) {
  Pcg32 rng(seed);
  std::vector<float> data(n);
  for (float& v : data) v = static_cast<float>(rng.uniform(lo, hi));
  return data;
}

/// Log-normal positive field with a long tail (precipitation-like).
inline std::vector<float> lognormal_field(std::size_t n, std::uint64_t seed,
                                          double sigma = 2.0) {
  NormalSampler normal(seed);
  std::vector<float> data(n);
  for (float& v : data) v = static_cast<float>(std::exp(normal.next() * sigma));
  return data;
}

/// Every point the same value.
inline std::vector<float> constant_field(std::size_t n, float value = 42.5f) {
  return std::vector<float>(n, value);
}

/// Gaussian noise scaled to ~1e-9: tiny but normal magnitudes.
inline std::vector<float> tiny_field(std::size_t n, std::uint64_t seed) {
  NormalSampler normal(seed);
  std::vector<float> data(n);
  for (float& v : data) v = static_cast<float>(normal.next() * 1e-9);
  return data;
}

/// Field built from subnormal floats (plus exact zeros): exercises the
/// exponent-handling corners of every float transform.
inline std::vector<float> denormal_field(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> data(n);
  for (float& v : data) {
    // Mantissa-only bit patterns are subnormal by construction.
    const std::uint32_t mantissa = rng.next_u32() & 0x007fffffu;
    const std::uint32_t sign = (rng.next_u32() & 1u) << 31;
    v = std::bit_cast<float>(sign | mantissa);
  }
  return data;
}

/// Overwrite a seeded fraction of points with NaN / +inf / -inf.
/// `fraction` of points are salted, split evenly among the three.
inline void salt_specials(std::vector<float>& data, std::uint64_t seed,
                          double fraction = 0.01) {
  Pcg32 rng(seed);
  const auto count = static_cast<std::size_t>(static_cast<double>(data.size()) * fraction);
  constexpr float kSpecials[3] = {std::numeric_limits<float>::quiet_NaN(),
                                  std::numeric_limits<float>::infinity(),
                                  -std::numeric_limits<float>::infinity()};
  for (std::size_t k = 0; k < count && !data.empty(); ++k) {
    const std::size_t i = rng.bounded(static_cast<std::uint32_t>(data.size()));
    data[i] = kSpecials[k % 3];
  }
}

/// Run-structured validity mask (like land/ocean coastlines): alternating
/// valid/masked runs with seeded lengths. Returns one byte per point,
/// 1 = valid, 0 = masked. At least one point of each kind when n >= 2.
inline std::vector<std::uint8_t> fill_mask(std::size_t n, std::uint64_t seed,
                                           std::size_t mean_run = 37) {
  Pcg32 rng(seed);
  std::vector<std::uint8_t> mask(n, 1);
  bool valid = true;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t run =
        1 + rng.bounded(static_cast<std::uint32_t>(std::max<std::size_t>(2 * mean_run, 2)));
    const std::size_t end = std::min(n, i + run);
    if (!valid) std::fill(mask.begin() + static_cast<std::ptrdiff_t>(i),
                          mask.begin() + static_cast<std::ptrdiff_t>(end), std::uint8_t{0});
    valid = !valid;
    i = end;
  }
  if (n >= 2) {
    mask[0] = 1;      // guarantee both populations exist regardless of seed
    mask[n / 2] = 0;
  }
  return mask;
}

/// Stamp `fill` into every masked point of `data`.
inline void apply_fill(std::vector<float>& data, const std::vector<std::uint8_t>& mask,
                       float fill) {
  for (std::size_t i = 0; i < data.size() && i < mask.size(); ++i) {
    if (mask[i] == 0) data[i] = fill;
  }
}

}  // namespace cesm::testgen
