#include "core/grib_tuning.h"

#include <gtest/gtest.h>

#include <cmath>

#include "compress/grib2/grib2.h"
#include "util/rng.h"

namespace cesm::core {
namespace {

std::vector<climate::Field> members_with_scale(std::size_t members, std::size_t n,
                                               double offset, double amplitude,
                                               double spread, std::uint64_t seed) {
  std::vector<climate::Field> fields(members);
  for (std::size_t m = 0; m < members; ++m) {
    NormalSampler rng(hash_combine(seed, m));
    fields[m].name = "X";
    fields[m].shape = comp::Shape::d1(n);
    fields[m].data.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      fields[m].data[i] = static_cast<float>(offset + amplitude * std::sin(i * 0.05) +
                                             spread * rng.next());
    }
  }
  return fields;
}

TEST(GribTuning, FindsPassingScaleForBenignVariable) {
  const EnsembleStats stats(members_with_scale(15, 600, 100.0, 20.0, 1.0, 0x1));
  const std::vector<std::size_t> probes = {2, 9};
  const GribTuning t = rmsz_guided_decimal_scale(stats, std::nullopt, probes);
  EXPECT_TRUE(t.passed);

  // The chosen D must actually pass the member tests.
  const PvtVerifier verifier(stats);
  const comp::Grib2Codec codec(t.decimal_scale, std::nullopt);
  for (std::size_t m : probes) {
    const MemberEvaluation e = verifier.evaluate_member(codec, m);
    EXPECT_TRUE(e.rho_pass && e.rmsz_pass && e.enmax_pass);
  }
}

TEST(GribTuning, StartsFromMagnitudeHeuristicAndRefines) {
  // Tight ensemble spread forces a finer D than the 4-digit heuristic.
  const EnsembleStats stats(members_with_scale(15, 600, 0.0, 50.0, 1e-4, 0x2));
  const std::vector<std::size_t> probes = {4};
  const GribTuning t =
      rmsz_guided_decimal_scale(stats, std::nullopt, probes, PvtThresholds{});
  const climate::Field& probe = stats.member(4);
  const auto s = stats::summarize(std::span<const float>(probe.data));
  const int d0 = comp::choose_decimal_scale(s.min, s.max, 4);
  EXPECT_GE(t.decimal_scale, d0);
  EXPECT_GT(t.attempts, 1);
}

TEST(GribTuning, ReportsFailureWhenSearchBudgetExhausted) {
  // Huge range, tiny genuine spread: the heuristic D quantizes far coarser
  // than the ensemble sigma, and with no extra digits allowed the tuner
  // must report failure while keeping the finest D it tried.
  const EnsembleStats stats(members_with_scale(15, 400, 0.0, 1.0e4, 0.05, 0x3));
  const std::vector<std::size_t> probes = {1};
  const GribTuning t = rmsz_guided_decimal_scale(stats, std::nullopt, probes,
                                                 PvtThresholds{}, 4, 0);
  EXPECT_FALSE(t.passed);
  EXPECT_EQ(t.attempts, 1);
}

TEST(GribTuning, TunedScaleIsDeterministic) {
  const EnsembleStats stats(members_with_scale(12, 500, 50.0, 10.0, 0.5, 0x4));
  const std::vector<std::size_t> probes = {0, 5};
  const GribTuning a = rmsz_guided_decimal_scale(stats, std::nullopt, probes);
  const GribTuning b = rmsz_guided_decimal_scale(stats, std::nullopt, probes);
  EXPECT_EQ(a.decimal_scale, b.decimal_scale);
  EXPECT_EQ(a.passed, b.passed);
}

}  // namespace
}  // namespace cesm::core
