#include "core/rmsz.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace cesm::core {
namespace {

std::vector<climate::Field> make_members(std::size_t members, std::size_t n,
                                          std::uint64_t seed, double spread = 1.0) {
  std::vector<climate::Field> fields(members);
  for (std::size_t m = 0; m < members; ++m) {
    NormalSampler rng(hash_combine(seed, m));
    fields[m].name = "X";
    fields[m].shape = comp::Shape::d1(n);
    fields[m].data.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Shared spatial pattern + member-specific anomaly.
      fields[m].data[i] =
          static_cast<float>(std::sin(i * 0.1) * 10.0 + spread * rng.next());
    }
  }
  return fields;
}

/// Naive O(N*M) reference for the leave-one-out z-score of member m.
double naive_rmsz(const std::vector<climate::Field>& members, std::size_t m,
                  std::span<const float> data) {
  const std::size_t n = members[0].data.size();
  double sum_z2 = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double mu = 0.0;
    std::size_t cnt = 0;
    for (std::size_t k = 0; k < members.size(); ++k) {
      if (k == m) continue;
      mu += members[k].data[i];
      ++cnt;
    }
    mu /= static_cast<double>(cnt);
    double var = 0.0;
    for (std::size_t k = 0; k < members.size(); ++k) {
      if (k == m) continue;
      const double d = members[k].data[i] - mu;
      var += d * d;
    }
    var /= static_cast<double>(cnt);
    if (var <= 0.0) continue;
    const double z = (data[i] - mu) / std::sqrt(var);
    sum_z2 += z * z;
    ++used;
  }
  return used ? std::sqrt(sum_z2 / static_cast<double>(used)) : 0.0;
}

TEST(EnsembleStats, RmszMatchesNaiveReference) {
  const auto members = make_members(12, 200, 0xabc);
  const EnsembleStats stats(members);
  for (std::size_t m = 0; m < members.size(); ++m) {
    EXPECT_NEAR(stats.rmsz(m), naive_rmsz(members, m, members[m].data), 1e-8);
  }
}

TEST(EnsembleStats, RmszOfForeignDataMatchesNaive) {
  const auto members = make_members(10, 150, 0xdef);
  const EnsembleStats stats(members);
  // Perturb member 4's data as a stand-in "reconstruction".
  std::vector<float> recon = members[4].data;
  for (std::size_t i = 0; i < recon.size(); i += 3) recon[i] += 0.01f;
  EXPECT_NEAR(stats.rmsz_of(4, recon), naive_rmsz(members, 4, recon), 1e-8);
}

TEST(EnsembleStats, RmszNearOneForExchangeableMembers) {
  // Gaussian anomalies: each member is statistically exchangeable with the
  // rest, so RMSZ ~ 1 with slight inflation from the leave-one-out.
  const auto members = make_members(40, 3000, 0x123);
  const EnsembleStats stats(members);
  for (std::size_t m = 0; m < members.size(); ++m) {
    EXPECT_GT(stats.rmsz(m), 0.7);
    EXPECT_LT(stats.rmsz(m), 1.5);
  }
}

TEST(EnsembleStats, IdenticalDataGivesIdenticalRmsz) {
  const auto members = make_members(8, 100, 0x77);
  const EnsembleStats stats(members);
  EXPECT_DOUBLE_EQ(stats.rmsz_of(3, members[3].data), stats.rmsz(3));
}

TEST(EnsembleStats, PerturbationRaisesRmszDiff) {
  const auto members = make_members(20, 500, 0x88);
  const EnsembleStats stats(members);
  std::vector<float> recon = members[7].data;
  for (auto& v : recon) v += 5.0f;  // huge shift vs spread 1.0
  EXPECT_GT(stats.rmsz_of(7, recon) - stats.rmsz(7), 1.0);
}

TEST(EnsembleStats, EnmaxDistributionMatchesNaive) {
  const auto members = make_members(9, 120, 0x99);
  const EnsembleStats stats(members);
  for (std::size_t m = 0; m < members.size(); ++m) {
    // Naive eq. (10).
    double worst = 0.0;
    for (std::size_t i = 0; i < members[0].data.size(); ++i) {
      for (std::size_t k = 0; k < members.size(); ++k) {
        if (k == m) continue;
        worst = std::max(worst, std::fabs(static_cast<double>(members[m].data[i]) -
                                          static_cast<double>(members[k].data[i])));
      }
    }
    const double expected = worst / stats.member_range(m);
    EXPECT_NEAR(stats.enmax(m), expected, 1e-9);
  }
}

TEST(EnsembleStats, EnmaxRangeIsPositive) {
  const auto members = make_members(15, 300, 0xaa);
  const EnsembleStats stats(members);
  EXPECT_GT(stats.enmax_range(), 0.0);
}

TEST(EnsembleStats, FillValuesExcludedEverywhere) {
  auto members = make_members(6, 50, 0xbb);
  for (auto& f : members) {
    f.fill = 1e35f;
    f.data[10] = 1e35f;
    f.data[20] = 1e35f;
  }
  const EnsembleStats stats(members);
  EXPECT_EQ(stats.point_count(), 48u);
  // RMSZ must be finite and sane despite the fills.
  for (std::size_t m = 0; m < members.size(); ++m) {
    EXPECT_TRUE(std::isfinite(stats.rmsz(m)));
    EXPECT_TRUE(std::isfinite(stats.enmax(m)));
  }
}

TEST(EnsembleStats, GlobalMeansTrackMemberData) {
  const auto members = make_members(5, 100, 0xcc);
  const EnsembleStats stats(members);
  for (std::size_t m = 0; m < members.size(); ++m) {
    double mean = 0.0;
    for (float v : members[m].data) mean += v;
    mean /= static_cast<double>(members[m].data.size());
    EXPECT_NEAR(stats.global_mean(m), mean, 1e-9);
  }
}

TEST(EnsembleStats, DegenerateSpreadPointsAreSkipped) {
  // One grid point identical across members: its sub-ensemble variance is
  // zero and it must not poison RMSZ with NaN/Inf.
  auto members = make_members(6, 20, 0xdd);
  for (auto& f : members) f.data[5] = 3.14f;
  const EnsembleStats stats(members);
  for (std::size_t m = 0; m < members.size(); ++m) {
    EXPECT_TRUE(std::isfinite(stats.rmsz(m)));
  }
}

TEST(EnsembleStats, RequiresAtLeastThreeMembers) {
  EXPECT_THROW(EnsembleStats(make_members(2, 10, 1)), InvalidArgument);
}

TEST(EnsembleStats, RejectsMismatchedFillPatterns) {
  // Member 0's mask is applied to every member; a member whose fill
  // pattern differs would leak fill values into sum_/sum_sq_, so the
  // constructor must refuse it (regression: it used to accept silently).
  auto members = make_members(5, 40, 0xee);
  for (auto& f : members) {
    f.fill = 1e35f;
    f.data[7] = 1e35f;
  }
  members[3].data[22] = 1e35f;  // extra fill point only in member 3
  EXPECT_THROW(EnsembleStats{members}, InvalidArgument);
}

TEST(EnsembleStats, AcceptsFillValueThatNeverOccurs) {
  // A member whose declared fill value never appears has an all-valid
  // mask; that must compare equal to members with no fill value at all.
  auto members = make_members(4, 30, 0xff);
  members[2].fill = 1e35f;  // set, but no point equals it
  const EnsembleStats stats(members);
  EXPECT_EQ(stats.point_count(), 30u);
}

}  // namespace
}  // namespace cesm::core
