#include "core/gradients.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "compress/variants.h"

namespace cesm::core {
namespace {

climate::Grid small_grid() { return climate::Grid(climate::GridSpec{16, 32, 1}); }

TEST(Gradients, ZonalWaveHasKnownDerivative) {
  const climate::Grid grid = small_grid();
  std::vector<float> data(grid.columns());
  for (std::size_t c = 0; c < data.size(); ++c) {
    data[c] = static_cast<float>(std::sin(2.0 * grid.longitude(c)));
  }
  const GradientFields g = compute_gradients(data, grid);
  // d/dlon sin(2 lon) = 2 cos(2 lon); centred differences approximate it.
  for (std::size_t c = 0; c < data.size(); ++c) {
    const double expected = 2.0 * std::cos(2.0 * grid.longitude(c));
    EXPECT_NEAR(g.zonal[c], expected, 0.1) << c;
  }
}

TEST(Gradients, ConstantFieldHasZeroGradients) {
  const climate::Grid grid = small_grid();
  std::vector<float> data(grid.columns(), 7.5f);
  const GradientFields g = compute_gradients(data, grid);
  for (std::size_t c = 0; c < data.size(); ++c) {
    EXPECT_EQ(g.zonal[c], 0.0f);
    EXPECT_EQ(g.meridional[c], 0.0f);
  }
}

TEST(Gradients, MeridionalRampHasUniformGradient) {
  const climate::Grid grid = small_grid();
  std::vector<float> data(grid.columns());
  for (std::size_t c = 0; c < data.size(); ++c) {
    data[c] = static_cast<float>(3.0 * grid.latitude(c));
  }
  const GradientFields g = compute_gradients(data, grid);
  // Interior rows: centred difference of a linear ramp is exact.
  const std::size_t nlon = grid.spec().nlon;
  for (std::size_t c = nlon; c + nlon < data.size(); ++c) {
    EXPECT_NEAR(g.meridional[c], 3.0, 1e-4);
  }
}

TEST(Gradients, FillPointsPropagateToNeighbours) {
  const climate::Grid grid = small_grid();
  std::vector<float> data(grid.columns(), 1.0f);
  const std::size_t nlon = grid.spec().nlon;
  data[5 * nlon + 10] = 1e35f;
  const GradientFields g = compute_gradients(data, grid, 1e35f);
  ASSERT_FALSE(g.valid.empty());
  EXPECT_EQ(g.valid[5 * nlon + 10], 0);   // itself
  EXPECT_EQ(g.valid[5 * nlon + 11], 0);   // east neighbour
  EXPECT_EQ(g.valid[4 * nlon + 10], 0);   // south neighbour
  EXPECT_EQ(g.valid[5 * nlon + 13], 1);   // far point untouched
}

TEST(Gradients, PerfectReconstructionScoresPerfectly) {
  const climate::Grid grid = small_grid();
  climate::Field f;
  f.name = "X";
  f.shape = comp::Shape::d1(grid.columns());
  f.data.resize(grid.columns());
  for (std::size_t c = 0; c < f.data.size(); ++c) {
    f.data[c] = static_cast<float>(std::sin(grid.longitude(c)) * std::cos(grid.latitude(c)));
  }
  const GradientMetrics m = compare_gradients(f, f.data, grid);
  EXPECT_DOUBLE_EQ(m.worst_pearson(), 1.0);
  EXPECT_EQ(m.zonal.e_max, 0.0);
}

TEST(Gradients, CompressionDegradesGradientsMoreThanValues) {
  // Gradients amplify quantization noise: the gradient correlation must
  // be no better than (and typically worse than) the value correlation.
  const climate::Grid grid = small_grid();
  climate::Field f;
  f.name = "X";
  f.shape = comp::Shape::d1(grid.columns());
  f.data.resize(grid.columns());
  for (std::size_t c = 0; c < f.data.size(); ++c) {
    f.data[c] = static_cast<float>(100.0 + 30.0 * std::sin(2.0 * grid.longitude(c)) *
                                               std::cos(grid.latitude(c)));
  }
  const comp::CodecPtr codec = comp::make_variant("APAX-5");
  const comp::RoundTrip rt = comp::round_trip(*codec, f.data, f.shape);
  const ErrorMetrics values = compare_fields(f, rt.reconstructed);
  const GradientMetrics grads = compare_gradients(f, rt.reconstructed, grid);
  EXPECT_LE(grads.worst_pearson(), values.pearson + 1e-12);
  EXPECT_LT(grads.worst_pearson(), 1.0);
}

}  // namespace
}  // namespace cesm::core
