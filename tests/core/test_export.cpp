#include "core/export.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace cesm::core {
namespace {

SuiteResults small_results() {
  const climate::EnsembleSpec spec = [] {
    climate::EnsembleSpec s;
    s.grid = climate::GridSpec{8, 24, 2};
    s.members = 7;
    s.latent.k = 48;
    s.latent.spinup_steps = 150;
    s.latent.average_steps = 300;
    return s;
  }();
  const climate::EnsembleGenerator ens(spec);
  SuiteConfig cfg;
  cfg.test_member_count = 2;
  return run_suite(ens, cfg, {"U", "PS"});
}

TEST(Export, SuiteCsvHasHeaderAndAllRows) {
  const SuiteResults results = small_results();
  const std::string csv = suite_results_csv(results);
  std::istringstream in(csv);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  // header + 2 variables x 9 variants
  EXPECT_EQ(lines, 1u + 2u * 9u);
  EXPECT_NE(csv.find("variable,is_3d,variant"), std::string::npos);
  EXPECT_NE(csv.find("U,1,fpzip-24"), std::string::npos);
  EXPECT_NE(csv.find("PS,0,APAX-2"), std::string::npos);
}

TEST(Export, CsvFieldEscapesPerRfc4180) {
  // Plain values pass through verbatim.
  EXPECT_EQ(csv_field("fpzip-24"), "fpzip-24");
  EXPECT_EQ(csv_field(""), "");
  // The separator, quotes, and line breaks force quoting with doubled
  // inner quotes.
  EXPECT_EQ(csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_field("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(csv_field("cr\rhere"), "\"cr\rhere\"");
}

TEST(Export, HostileErrorMessageCannotShearTheRow) {
  // A codec-error verdict whose message carries the separator, quotes,
  // and a newline — the shape a real exception produces ("expected 4,
  // got 2") and the exact input that used to split one row into several.
  SuiteResults results;
  results.variant_names = {"fpzip-24"};
  VariableResult var;
  var.variable = "U";
  var.is_3d = true;
  VariableVerdict verdict;
  verdict.variable = "U";
  verdict.codec = "fpzip-24";
  verdict.codec_error = true;
  verdict.error_message = "format error: expected 4, got 2,\n\"stream\" torn";
  verdict.fallback_codec = "fpzip-32";
  var.verdicts.push_back(verdict);
  results.variables.push_back(var);

  const std::string csv = suite_results_csv(results);
  std::istringstream in(csv);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  // Header + one row; the row's embedded newline is inside quotes, so an
  // RFC 4180 reader sees 2 records. (getline splits on the raw newline —
  // 3 physical lines — but the quote count proves the field is intact.)
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(csv.find("\"format error: expected 4, got 2,\n\"\"stream\"\" torn\""),
            std::string::npos);
  // The hostile message never manufactures extra columns in its record:
  // commas inside the quoted field don't count as separators.
  std::size_t unquoted_commas = 0;
  bool in_quotes = false;
  for (std::size_t i = csv.find('\n') + 1; i < csv.size(); ++i) {
    if (csv[i] == '"') in_quotes = !in_quotes;
    if (csv[i] == ',' && !in_quotes) ++unquoted_commas;
  }
  EXPECT_EQ(unquoted_commas, 19u);  // 20 columns = 19 separators
}

TEST(Export, HybridCsvCoversAllFamilies) {
  const SuiteResults results = small_results();
  const auto hybrids = build_all_hybrids(results);
  const std::string csv = hybrid_selections_csv(hybrids);
  EXPECT_NE(csv.find("family,variable,variant"), std::string::npos);
  EXPECT_NE(csv.find("fpzip,U,"), std::string::npos);
  EXPECT_NE(csv.find("NetCDF-4,PS,NetCDF-4"), std::string::npos);
  std::istringstream in(csv);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1u + 5u * 2u);  // header + 5 families x 2 variables
}

TEST(Export, WriteTextFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cesmcomp_export_test.csv").string();
  write_text_file(path, "a,b\n1,2\n");
  std::ifstream f(path);
  std::stringstream back;
  back << f.rdbuf();
  EXPECT_EQ(back.str(), "a,b\n1,2\n");
  std::filesystem::remove(path);
}

TEST(Export, WriteToInvalidPathThrows) {
  EXPECT_THROW(write_text_file("/nonexistent_dir_xyz/file.csv", "x"), IoError);
}

}  // namespace
}  // namespace cesm::core
