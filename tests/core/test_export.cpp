#include "core/export.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace cesm::core {
namespace {

SuiteResults small_results() {
  const climate::EnsembleSpec spec = [] {
    climate::EnsembleSpec s;
    s.grid = climate::GridSpec{8, 24, 2};
    s.members = 7;
    s.latent.k = 48;
    s.latent.spinup_steps = 150;
    s.latent.average_steps = 300;
    return s;
  }();
  const climate::EnsembleGenerator ens(spec);
  SuiteConfig cfg;
  cfg.test_member_count = 2;
  return run_suite(ens, cfg, {"U", "PS"});
}

TEST(Export, SuiteCsvHasHeaderAndAllRows) {
  const SuiteResults results = small_results();
  const std::string csv = suite_results_csv(results);
  std::istringstream in(csv);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  // header + 2 variables x 9 variants
  EXPECT_EQ(lines, 1u + 2u * 9u);
  EXPECT_NE(csv.find("variable,is_3d,variant"), std::string::npos);
  EXPECT_NE(csv.find("U,1,fpzip-24"), std::string::npos);
  EXPECT_NE(csv.find("PS,0,APAX-2"), std::string::npos);
}

TEST(Export, HybridCsvCoversAllFamilies) {
  const SuiteResults results = small_results();
  const auto hybrids = build_all_hybrids(results);
  const std::string csv = hybrid_selections_csv(hybrids);
  EXPECT_NE(csv.find("family,variable,variant"), std::string::npos);
  EXPECT_NE(csv.find("fpzip,U,"), std::string::npos);
  EXPECT_NE(csv.find("NetCDF-4,PS,NetCDF-4"), std::string::npos);
  std::istringstream in(csv);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1u + 5u * 2u);  // header + 5 families x 2 variables
}

TEST(Export, WriteTextFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cesmcomp_export_test.csv").string();
  write_text_file(path, "a,b\n1,2\n");
  std::ifstream f(path);
  std::stringstream back;
  back << f.rdbuf();
  EXPECT_EQ(back.str(), "a,b\n1,2\n");
  std::filesystem::remove(path);
}

TEST(Export, WriteToInvalidPathThrows) {
  EXPECT_THROW(write_text_file("/nonexistent_dir_xyz/file.csv", "x"), IoError);
}

}  // namespace
}  // namespace cesm::core
