#include "core/energy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "compress/deflate/deflate.h"
#include "compress/variants.h"

namespace cesm::core {
namespace {

climate::EnsembleSpec tiny_spec() {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{12, 36, 3};
  spec.members = 8;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 200;
  spec.latent.average_steps = 400;
  return spec;
}

TEST(Energy, GlobalMeanWeightedMatchesConstantField) {
  const climate::Grid grid(climate::GridSpec{8, 16, 1});
  climate::Field f;
  f.name = "X";
  f.shape = comp::Shape::d1(grid.columns());
  f.data.assign(grid.columns(), 5.0f);
  EXPECT_NEAR(global_mean_weighted(f, grid), 5.0, 1e-12);
}

TEST(Energy, GlobalMeanSkipsFillValues) {
  const climate::Grid grid(climate::GridSpec{8, 16, 1});
  climate::Field f;
  f.name = "X";
  f.shape = comp::Shape::d1(grid.columns());
  f.data.assign(grid.columns(), 2.0f);
  f.fill = 1e35f;
  f.data[0] = 1e35f;
  f.data[50] = 1e35f;
  EXPECT_NEAR(global_mean_weighted(f, grid), 2.0, 1e-9);
}

TEST(Energy, BudgetHasPlausibleMagnitudes) {
  const climate::EnsembleGenerator ens(tiny_spec());
  const EnergyBudget b = energy_budget(ens, 1);
  // FSNT/FLNT catalog centers are ~240/235 W/m2.
  EXPECT_GT(b.fsnt, 100.0);
  EXPECT_LT(b.fsnt, 400.0);
  EXPECT_GT(b.flnt, 100.0);
  EXPECT_LT(b.flnt, 400.0);
  EXPECT_LT(std::fabs(b.imbalance()), 150.0);
}

TEST(Energy, LosslessCompressionHasZeroDrift) {
  const climate::EnsembleGenerator ens(tiny_spec());
  const comp::DeflateCodec codec;
  const BudgetDriftResult r = energy_budget_drift(ens, codec, 2, 6);
  EXPECT_DOUBLE_EQ(r.imbalance_drift, 0.0);
  EXPECT_TRUE(r.pass);
  EXPECT_GT(r.ensemble_spread, 0.0);
}

TEST(Energy, GentleLossyCompressionPasses) {
  const climate::EnsembleGenerator ens(tiny_spec());
  const comp::CodecPtr codec = comp::make_variant("fpzip-24");
  const BudgetDriftResult r = energy_budget_drift(ens, *codec, 2, 6);
  EXPECT_TRUE(r.pass) << "drift " << r.imbalance_drift << " spread " << r.ensemble_spread;
}

TEST(Energy, CrushingCompressionFails) {
  const climate::EnsembleGenerator ens(tiny_spec());
  // 3-bit mantissas shift flux means by O(1) W/m2 — budget-unsafe.
  const comp::CodecPtr codec = comp::make_variant("APAX-q3");
  const BudgetDriftResult r = energy_budget_drift(ens, *codec, 2, 6, 0.01);
  EXPECT_GT(r.imbalance_drift, 0.0);
  EXPECT_FALSE(r.pass);
}

}  // namespace
}  // namespace cesm::core
