#include "core/ssim.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compress/variants.h"
#include "util/rng.h"

namespace cesm::core {
namespace {

std::vector<float> image(std::size_t rows, std::size_t cols) {
  std::vector<float> img(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      img[r * cols + c] =
          static_cast<float>(std::sin(r * 0.2) * 50.0 + std::cos(c * 0.1) * 30.0 + 100.0);
    }
  }
  return img;
}

TEST(Ssim, IdenticalImagesScoreOne) {
  const auto img = image(32, 64);
  EXPECT_DOUBLE_EQ(ssim_2d(img, img, 32, 64), 1.0);
}

TEST(Ssim, SmallNoiseScoresBelowOneButHigh) {
  const auto img = image(32, 64);
  std::vector<float> noisy = img;
  Pcg32 rng(1);
  for (auto& v : noisy) v += static_cast<float>(rng.uniform(-0.5, 0.5));
  const double s = ssim_2d(img, noisy, 32, 64);
  EXPECT_LT(s, 1.0);
  EXPECT_GT(s, 0.98);
}

TEST(Ssim, HeavyDistortionScoresLow) {
  const auto img = image(32, 64);
  std::vector<float> bad = img;
  Pcg32 rng(2);
  for (auto& v : bad) v = static_cast<float>(rng.uniform(0.0, 200.0));
  EXPECT_LT(ssim_2d(img, bad, 32, 64), 0.5);
}

TEST(Ssim, MonotoneInNoiseLevel) {
  const auto img = image(40, 40);
  double prev = 1.0;
  for (double amp : {0.1, 1.0, 5.0, 20.0}) {
    std::vector<float> noisy = img;
    Pcg32 rng(3);
    for (auto& v : noisy) v += static_cast<float>(rng.uniform(-amp, amp));
    const double s = ssim_2d(img, noisy, 40, 40);
    EXPECT_LT(s, prev) << "amp " << amp;
    prev = s;
  }
}

TEST(Ssim, InsensitiveToGlobalScaleOfTheField) {
  // SSIM's constants scale with the dynamic range: scaling both images by
  // 1e6 must not change the score materially.
  const auto img = image(24, 48);
  std::vector<float> noisy = img;
  Pcg32 rng(4);
  for (auto& v : noisy) v += static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> img_big = img, noisy_big = noisy;
  for (auto& v : img_big) v *= 1e6f;
  for (auto& v : noisy_big) v *= 1e6f;
  EXPECT_NEAR(ssim_2d(img, noisy, 24, 48), ssim_2d(img_big, noisy_big, 24, 48), 1e-3);
}

TEST(Ssim, FieldOverloadAveragesLevels) {
  climate::Field f;
  f.name = "X";
  f.shape = comp::Shape::d2(2, 24 * 24);
  const auto level = image(24, 24);
  f.data = level;
  f.data.insert(f.data.end(), level.begin(), level.end());
  const double s = ssim_field(f, f.data, 24, 24);
  EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(Ssim, RanksCompressionAggressiveness) {
  // More aggressive variants must not score better — the image-quality
  // use case of §6.
  const auto img = image(48, 72);
  const comp::Shape shape = comp::Shape::d1(img.size());
  double prev = 1.1;
  for (const char* variant : {"fpzip-24", "APAX-4", "APAX-5"}) {
    const comp::CodecPtr codec = comp::make_variant(variant);
    const comp::RoundTrip rt = comp::round_trip(*codec, img, shape);
    const double s = ssim_2d(img, rt.reconstructed, 48, 72);
    EXPECT_LE(s, prev + 1e-9) << variant;
    EXPECT_GT(s, 0.5) << variant;
    prev = s;
  }
}

}  // namespace
}  // namespace cesm::core
