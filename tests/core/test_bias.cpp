#include "core/bias.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace cesm::core {
namespace {

std::vector<double> rmsz_like_scores(std::size_t n, std::uint64_t seed) {
  NormalSampler rng(seed);
  std::vector<double> scores(n);
  for (auto& s : scores) s = 1.0 + 0.1 * rng.next();  // paper: RMSZ ~ O(1)
  return scores;
}

TEST(BiasTest, PerfectReconstructionPasses) {
  const auto orig = rmsz_like_scores(101, 1);
  const BiasResult r = bias_test(orig, orig);
  EXPECT_TRUE(r.pass);
  EXPECT_NEAR(r.fit.slope, 1.0, 1e-12);
  EXPECT_NEAR(r.fit.intercept, 0.0, 1e-12);
  EXPECT_TRUE(r.contains_ideal);
  EXPECT_LT(r.slope_distance, 1e-9);
}

TEST(BiasTest, TinyUnbiasedNoisePasses) {
  const auto orig = rmsz_like_scores(101, 2);
  NormalSampler noise(3);
  std::vector<double> recon = orig;
  for (auto& s : recon) s += 1e-4 * noise.next();
  EXPECT_TRUE(bias_test(orig, recon).pass);
}

TEST(BiasTest, SlopeBiasFails) {
  const auto orig = rmsz_like_scores(101, 4);
  std::vector<double> recon;
  for (double s : orig) recon.push_back(0.8 * s);  // systematic shrink
  const BiasResult r = bias_test(orig, recon);
  EXPECT_FALSE(r.pass);
  EXPECT_GT(r.slope_distance, 0.15);
}

TEST(BiasTest, UniformInterceptShiftKeepsSlopeButMovesRect) {
  // Paper: "if the line of best fit has slope ~1 and small uncertainty but
  // a non-zero intercept, bias has been introduced uniformly" — eq. (9)
  // alone passes; the rectangle must reveal it.
  const auto orig = rmsz_like_scores(101, 5);
  std::vector<double> recon;
  for (double s : orig) recon.push_back(s + 0.3);
  const BiasResult r = bias_test(orig, recon);
  EXPECT_TRUE(r.pass);                // slope is still 1
  EXPECT_FALSE(r.contains_ideal);     // but (1, 0) is excluded
}

TEST(BiasTest, LargeUncertaintyFailsEvenWithUnitSlope) {
  // Paper: "if the uncertainty is relatively large, then even if the
  // slope is close to one" the method is unacceptable.
  const auto orig = rmsz_like_scores(101, 6);
  NormalSampler noise(7);
  std::vector<double> recon;
  for (double s : orig) recon.push_back(s + 0.15 * noise.next());
  const BiasResult r = bias_test(orig, recon);
  EXPECT_GT(r.slope_distance, kBiasSlopeTolerance);
  EXPECT_FALSE(r.pass);
}

TEST(BiasTest, SlopeDistanceUsesWorstCaseBound) {
  const auto orig = rmsz_like_scores(101, 8);
  const BiasResult r = bias_test(orig, orig);
  EXPECT_GE(r.slope_distance, std::fabs(1.0 - r.rect.slope_lo) - 1e-15);
  EXPECT_GE(r.slope_distance, std::fabs(1.0 - r.rect.slope_hi) - 1e-15);
}

}  // namespace
}  // namespace cesm::core
