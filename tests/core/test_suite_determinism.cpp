// Bit-identical suite outputs across scheduler sizes.
//
// The paper's methodology is a reproducibility argument: a verdict that
// depends on how many cores evaluated it is worthless. The scheduler's
// contract (disjoint-slot parallel_for writes, fixed-chunk-order
// parallel_reduce, point-sliced ensemble accumulation) promises that
// run_suite is a pure function of its inputs — these tests pin that down
// by comparing every float, flag, and tally bitwise across worker counts
// 1, 2, and hardware concurrency, steal interleavings and all.

#include "core/suite.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <thread>

#include "util/scheduler.h"

namespace cesm::core {
namespace {

climate::EnsembleSpec tiny_spec() {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{12, 18, 3};
  spec.members = 9;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 200;
  spec.latent.average_steps = 400;
  return spec;
}

SuiteConfig fast_config() {
  SuiteConfig cfg;
  cfg.test_member_count = 2;
  cfg.grib_max_extra_digits = 3;
  return cfg;
}

/// Bitwise double comparison with a location message.
#define EXPECT_SAME_BITS(a, b)                                        \
  EXPECT_EQ(std::bit_cast<std::uint64_t>(static_cast<double>(a)),     \
            std::bit_cast<std::uint64_t>(static_cast<double>(b)))     \
      << #a " differs from " #b

void expect_identical(const SuiteResults& x, const SuiteResults& y) {
  ASSERT_EQ(x.variant_names, y.variant_names);
  ASSERT_EQ(x.variables.size(), y.variables.size());
  for (std::size_t i = 0; i < x.variables.size(); ++i) {
    const VariableResult& a = x.variables[i];
    const VariableResult& b = y.variables[i];
    EXPECT_EQ(a.variable, b.variable);
    EXPECT_EQ(a.test_members, b.test_members);
    EXPECT_EQ(a.grib_decimal_scale, b.grib_decimal_scale);
    EXPECT_EQ(a.grib_tuning_passed, b.grib_tuning_passed);
    EXPECT_SAME_BITS(a.netcdf4_cr, b.netcdf4_cr);
    EXPECT_SAME_BITS(a.fpzip32_cr, b.fpzip32_cr);
    ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
    for (std::size_t v = 0; v < a.verdicts.size(); ++v) {
      const VariableVerdict& va = a.verdicts[v];
      const VariableVerdict& vb = b.verdicts[v];
      EXPECT_EQ(va.codec, vb.codec);
      EXPECT_EQ(va.rho_pass, vb.rho_pass);
      EXPECT_EQ(va.rmsz_pass, vb.rmsz_pass);
      EXPECT_EQ(va.enmax_pass, vb.enmax_pass);
      EXPECT_EQ(va.bias_pass, vb.bias_pass);
      EXPECT_SAME_BITS(va.mean_cr, vb.mean_cr);
      ASSERT_EQ(va.members.size(), vb.members.size());
      for (std::size_t m = 0; m < va.members.size(); ++m) {
        const MemberEvaluation& ma = va.members[m];
        const MemberEvaluation& mb = vb.members[m];
        EXPECT_EQ(ma.member, mb.member);
        EXPECT_SAME_BITS(ma.cr, mb.cr);
        EXPECT_SAME_BITS(ma.metrics.pearson, mb.metrics.pearson);
        EXPECT_SAME_BITS(ma.metrics.e_nmax, mb.metrics.e_nmax);
        EXPECT_SAME_BITS(ma.rmsz_original, mb.rmsz_original);
        EXPECT_SAME_BITS(ma.rmsz_reconstructed, mb.rmsz_reconstructed);
        EXPECT_SAME_BITS(ma.enmax_ratio, mb.enmax_ratio);
        EXPECT_EQ(ma.rho_pass, mb.rho_pass);
        EXPECT_EQ(ma.rmsz_pass, mb.rmsz_pass);
        EXPECT_EQ(ma.enmax_pass, mb.enmax_pass);
      }
    }
  }
  // Tallies are derived, but compare them anyway: they are the paper's
  // Table 6 and the most visible output.
  const auto tx = x.tally();
  const auto ty = y.tally();
  ASSERT_EQ(tx.size(), ty.size());
  for (std::size_t i = 0; i < tx.size(); ++i) {
    EXPECT_EQ(tx[i].codec, ty[i].codec);
    EXPECT_EQ(tx[i].all, ty[i].all);
    EXPECT_EQ(tx[i].rho, ty[i].rho);
    EXPECT_EQ(tx[i].rmsz, ty[i].rmsz);
    EXPECT_EQ(tx[i].enmax, ty[i].enmax);
    EXPECT_EQ(tx[i].bias, ty[i].bias);
  }
}

SuiteResults run_with_threads(std::size_t threads, const SuiteConfig& cfg = fast_config()) {
  ScopedScheduler scoped(threads);
  // A fresh generator per run: ensemble synthesis itself uses the
  // scheduler, so this also checks that the synthesized inputs are
  // thread-count independent.
  const climate::EnsembleGenerator ensemble(tiny_spec());
  return run_suite(ensemble, cfg, {"U", "SST", "CLDLOW"});
}

TEST(SuiteDeterminism, BitIdenticalAcrossSchedulerSizes) {
  const SuiteResults serial = run_with_threads(1);
  const SuiteResults two = run_with_threads(2);
  expect_identical(serial, two);
  const std::size_t hw =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());
  const SuiteResults wide = run_with_threads(hw);
  expect_identical(serial, wide);
}

TEST(SuiteDeterminism, RepeatedWideRunsAgree) {
  // Same thread count, different steal interleavings.
  const SuiteResults a = run_with_threads(4);
  const SuiteResults b = run_with_threads(4);
  expect_identical(a, b);
}

TEST(SuiteDeterminism, BitIdenticalAcrossVariantJobsSettings) {
  // The variant-sweep engine's scheduling knob must be invisible in the
  // results: serial catalog order (jobs=1), about-4-task splitting
  // (jobs=4) and one-task-per-variant (jobs=0) all land verdicts in the
  // same fixed slots with the same bits.
  const SuiteResults serial = run_with_threads(4);  // variant_jobs = 1 default
  SuiteConfig four = fast_config();
  four.variant_jobs = 4;
  expect_identical(serial, run_with_threads(4, four));
  SuiteConfig full = fast_config();
  full.variant_jobs = 0;
  expect_identical(serial, run_with_threads(4, full));
}

TEST(SuiteDeterminism, BitIdenticalWithPlanCacheDisabled) {
  // Shared encode-prep plans are pure memoization: a run with the plan
  // cache off (every encode direct) must be bit-identical to the default.
  const SuiteResults planned = run_with_threads(2);
  SuiteConfig direct = fast_config();
  direct.plan_cache_bytes = 0;
  expect_identical(planned, run_with_threads(2, direct));
  // And the parallel sweep with plans matches the direct serial run too.
  SuiteConfig parallel_planned = fast_config();
  parallel_planned.variant_jobs = 0;
  expect_identical(planned, run_with_threads(2, parallel_planned));
}

}  // namespace
}  // namespace cesm::core
