#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cesm::core {
namespace {

TEST(CompareFields, ExactReconstructionIsZeroErrorPerfectCorrelation) {
  const std::vector<float> x = {1.0f, 2.0f, 3.0f, 4.0f};
  const ErrorMetrics m = compare_fields(x, x);
  EXPECT_EQ(m.e_max, 0.0);
  EXPECT_EQ(m.rmse, 0.0);
  EXPECT_EQ(m.nrmse, 0.0);
  EXPECT_DOUBLE_EQ(m.pearson, 1.0);
  EXPECT_TRUE(std::isinf(m.psnr));
}

TEST(CompareFields, HandComputedErrors) {
  const std::vector<float> x = {0.0f, 10.0f};
  const std::vector<float> y = {1.0f, 10.0f};
  const ErrorMetrics m = compare_fields(x, y);
  EXPECT_DOUBLE_EQ(m.e_max, 1.0);
  EXPECT_DOUBLE_EQ(m.e_nmax, 0.1);                 // eq. (2): / R_X = 10
  EXPECT_NEAR(m.rmse, std::sqrt(0.5), 1e-12);      // eq. (3)
  EXPECT_NEAR(m.nrmse, std::sqrt(0.5) / 10.0, 1e-12);  // eq. (4)
  EXPECT_EQ(m.points, 2u);
}

TEST(CompareFields, ExplicitRangeOverridesDataRange) {
  const std::vector<float> x = {0.0f, 1.0f};
  const std::vector<float> y = {0.5f, 1.0f};
  const ErrorMetrics m = compare_fields(x, y, {}, 100.0);
  EXPECT_DOUBLE_EQ(m.e_nmax, 0.5 / 100.0);
}

TEST(CompareFields, MaskExcludesFillPoints) {
  const std::vector<float> x = {1.0f, 1e35f, 2.0f};
  const std::vector<float> y = {1.0f, 0.0f, 2.5f};  // fill destroyed, ignored
  const std::vector<std::uint8_t> mask = {1, 0, 1};
  const ErrorMetrics m = compare_fields(x, y, mask);
  EXPECT_DOUBLE_EQ(m.e_max, 0.5);
  EXPECT_EQ(m.points, 2u);
}

TEST(CompareFields, FieldOverloadUsesFillMask) {
  climate::Field f;
  f.name = "X";
  f.shape = comp::Shape::d1(3);
  f.data = {1.0f, 1e35f, 3.0f};
  f.fill = 1e35f;
  const std::vector<float> recon = {1.0f, 1e35f, 3.0f};
  const ErrorMetrics m = compare_fields(f, recon);
  EXPECT_EQ(m.points, 2u);
  EXPECT_EQ(m.e_max, 0.0);
}

TEST(CompareFields, ConstantFieldDegradesGracefully) {
  const std::vector<float> x = {5.0f, 5.0f};
  const std::vector<float> y = {5.5f, 5.5f};
  const ErrorMetrics m = compare_fields(x, y);
  EXPECT_DOUBLE_EQ(m.e_max, 0.5);
  EXPECT_DOUBLE_EQ(m.e_nmax, 0.5);  // unnormalized fallback
}

TEST(Characterize, ComputesSummaryAndLosslessCr) {
  climate::Field f;
  f.name = "Z";
  f.shape = comp::Shape::d1(10000);
  f.data.resize(10000);
  for (std::size_t i = 0; i < f.data.size(); ++i) {
    f.data[i] = static_cast<float>(std::sin(i * 0.001) * 100.0);
  }
  const Characterization c = characterize(f);
  EXPECT_NEAR(c.summary.min, -100.0, 1.0);
  EXPECT_NEAR(c.summary.max, 100.0, 1.0);
  EXPECT_GT(c.lossless_cr, 0.0);
  EXPECT_LT(c.lossless_cr, 1.0);  // smooth data must compress
}

TEST(Characterize, FillValuesExcludedFromSummary) {
  climate::Field f;
  f.name = "SST";
  f.shape = comp::Shape::d1(4);
  f.data = {1e35f, 280.0f, 290.0f, 1e35f};
  f.fill = 1e35f;
  const Characterization c = characterize(f);
  EXPECT_DOUBLE_EQ(c.summary.max, 290.0);
  EXPECT_EQ(c.summary.count, 2u);
}

}  // namespace
}  // namespace cesm::core
