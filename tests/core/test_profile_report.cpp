#include "core/profile_report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace cesm::core {
namespace {

class ProfileReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::reset();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::reset();
  }

  static void record_sample_activity() {
    trace::set_enabled(true);
    {
      trace::Span suite("suite.variable");
      { trace::Span enc("encode:fpzip-24"); }
      { trace::Span enc("encode:fpzip-24"); }
      { trace::Span dec("decode:fpzip-24"); }
    }
    trace::counter_add("codec.bytes_out", 4096);
    trace::set_enabled(false);
  }
};

TEST_F(ProfileReportTest, JsonCarriesSchemaTreeAggregatesAndCounters) {
  record_sample_activity();
  const std::string json = profile_json();
  EXPECT_NE(json.find("\"schema\": \"cesmcomp-profile-1\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"profile\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"suite.variable\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"encode:fpzip-24\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);  // two encodes merged
  EXPECT_NE(json.find("\"codec.bytes_out\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"aggregates\":"), std::string::npos);
  EXPECT_NE(json.find("\"total_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"mean_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"max_s\":"), std::string::npos);
}

TEST_F(ProfileReportTest, JsonBracesAndBracketsBalance) {
  record_sample_activity();
  const std::string json = profile_json();
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(ProfileReportTest, EscapesHostileLabels) {
  trace::set_enabled(true);
  { trace::Span s("bad\"label\\with\nnoise"); }
  trace::set_enabled(false);
  const std::string json = profile_json();
  EXPECT_NE(json.find("bad\\\"label\\\\with\\nnoise"), std::string::npos);
}

TEST_F(ProfileReportTest, TextTreeIndentsChildrenAndListsCounters) {
  record_sample_activity();
  const std::string text = profile_text();
  EXPECT_NE(text.find("profile"), std::string::npos);
  EXPECT_NE(text.find("  suite.variable"), std::string::npos);
  EXPECT_NE(text.find("    encode:fpzip-24"), std::string::npos);
  EXPECT_NE(text.find("count=2"), std::string::npos);
  EXPECT_NE(text.find("codec.bytes_out = 4096"), std::string::npos);
}

TEST_F(ProfileReportTest, WritesJsonFile) {
  record_sample_activity();
  const std::string path = ::testing::TempDir() + "cesm_profile_test.json";
  write_profile_json(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), profile_json());
  std::remove(path.c_str());
}

TEST_F(ProfileReportTest, UnwritablePathThrowsIoError) {
  EXPECT_THROW(write_profile_json("/nonexistent-dir/none/profile.json"), IoError);
}

}  // namespace
}  // namespace cesm::core
