#include "core/suite.h"

#include <gtest/gtest.h>

#include "core/hybrid.h"

namespace cesm::core {
namespace {

climate::EnsembleSpec tiny_spec() {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{12, 18, 3};
  spec.members = 9;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 200;
  spec.latent.average_steps = 400;
  return spec;
}

SuiteConfig fast_config() {
  SuiteConfig cfg;
  cfg.test_member_count = 2;
  cfg.grib_max_extra_digits = 3;
  return cfg;
}

class SuiteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ensemble_ = new climate::EnsembleGenerator(tiny_spec());
    results_ = new SuiteResults(
        run_suite(*ensemble_, fast_config(), {"U", "FSDSC", "CCN3", "SST", "CLDLOW"}));
  }
  static void TearDownTestSuite() {
    delete results_;
    delete ensemble_;
    results_ = nullptr;
    ensemble_ = nullptr;
  }

  static climate::EnsembleGenerator* ensemble_;
  static SuiteResults* results_;
};

climate::EnsembleGenerator* SuiteTest::ensemble_ = nullptr;
SuiteResults* SuiteTest::results_ = nullptr;

TEST_F(SuiteTest, ProducesNineVerdictsPerVariable) {
  ASSERT_EQ(results_->variant_names.size(), 9u);
  ASSERT_EQ(results_->variables.size(), 5u);
  for (const VariableResult& var : results_->variables) {
    ASSERT_EQ(var.verdicts.size(), 9u);
    for (const VariableVerdict& v : var.verdicts) {
      EXPECT_EQ(v.members.size(), 2u);
      EXPECT_TRUE(v.bias_evaluated);
    }
  }
}

TEST_F(SuiteTest, CharacterizationIsPopulated) {
  const VariableResult& u = results_->variable("U");
  EXPECT_GT(u.character.summary.range(), 0.0);
  EXPECT_GT(u.netcdf4_cr, 0.0);
  EXPECT_LE(u.netcdf4_cr, 1.05);
  EXPECT_GT(u.fpzip32_cr, 0.0);
}

TEST_F(SuiteTest, FillVariableCarriesFill) {
  const VariableResult& sst = results_->variable("SST");
  ASSERT_TRUE(sst.fill.has_value());
  EXPECT_EQ(*sst.fill, climate::kFillValue);
}

TEST_F(SuiteTest, TallyCountsAreConsistent) {
  const auto tally = results_->tally();
  ASSERT_EQ(tally.size(), 9u);
  for (const MethodTally& row : tally) {
    EXPECT_LE(row.all, row.rho);
    EXPECT_LE(row.all, row.rmsz);
    EXPECT_LE(row.all, row.enmax);
    EXPECT_LE(row.all, row.bias);
    EXPECT_LE(row.rho, results_->variables.size());
  }
}

TEST_F(SuiteTest, GentlerVariantsPassAtLeastAsOften) {
  // APAX-2 must never do worse than APAX-5; fpzip-24 never worse than
  // fpzip-16 (the paper's monotonicity: more compression, fewer passes).
  const auto tally = results_->tally();
  const auto find = [&](const std::string& name) -> const MethodTally& {
    for (const auto& t : tally) {
      if (t.codec == name) return t;
    }
    throw std::runtime_error("missing " + name);
  };
  EXPECT_GE(find("APAX-2").all, find("APAX-5").all);
  EXPECT_GE(find("fpzip-24").all, find("fpzip-16").all);
  EXPECT_GE(find("ISA-0.1").rho, find("ISA-1.0").rho);
}

TEST_F(SuiteTest, ApaxHitsItsFixedRates) {
  // The tiny test grid makes the fixed container header a visible
  // fraction of the stream; at paper-scale fields the rates are exact
  // (see ApaxFixedRate.AchievesAdvertisedRatio).
  for (const VariableResult& var : results_->variables) {
    EXPECT_NEAR(var.verdicts[results_->variant_index("APAX-2")].mean_cr, 0.50, 0.12);
    EXPECT_NEAR(var.verdicts[results_->variant_index("APAX-4")].mean_cr, 0.25, 0.12);
    EXPECT_NEAR(var.verdicts[results_->variant_index("APAX-5")].mean_cr, 0.20, 0.12);
  }
}

TEST_F(SuiteTest, HybridSelectionsCoverEveryVariable) {
  const auto hybrids = build_all_hybrids(*results_);
  ASSERT_EQ(hybrids.size(), 5u);
  for (const HybridSummary& h : hybrids) {
    EXPECT_EQ(h.selections.size(), results_->variables.size());
    std::size_t total = 0;
    for (const auto& [variant, count] : h.variant_counts) total += count;
    EXPECT_EQ(total, results_->variables.size());  // Table 8 sums to census
    EXPECT_LE(h.best_cr, h.avg_cr);
    EXPECT_GE(h.worst_cr, h.avg_cr);
    EXPECT_LE(h.avg_pearson, 1.0);
  }
}

TEST_F(SuiteTest, HybridChoosesPassingVariantsOnly) {
  const HybridSummary fpz = build_hybrid(*results_, "fpzip");
  for (const HybridSelection& sel : fpz.selections) {
    if (sel.lossless_fallback) {
      EXPECT_EQ(sel.variant, "fpzip-32");
      continue;
    }
    const VariableResult& var = results_->variable(sel.variable);
    const VariableVerdict& verdict = var.verdicts[results_->variant_index(sel.variant)];
    EXPECT_TRUE(verdict.all_pass());
  }
}

TEST_F(SuiteTest, NetCdfHybridIsAllLossless) {
  const HybridSummary nc = build_hybrid(*results_, "NetCDF-4");
  EXPECT_DOUBLE_EQ(nc.avg_pearson, 1.0);
  EXPECT_DOUBLE_EQ(nc.avg_nrmse, 0.0);
  for (const HybridSelection& sel : nc.selections) {
    EXPECT_EQ(sel.variant, "NetCDF-4");
  }
}

TEST(SuiteSingleVariable, RunVariableMatchesSuiteEntry) {
  const climate::EnsembleGenerator ens(tiny_spec());
  const SuiteConfig cfg = fast_config();
  const VariableResult direct = run_variable(ens, ens.variable("U"), cfg);
  const SuiteResults via_suite = run_suite(ens, cfg, {"U"});
  ASSERT_EQ(via_suite.variables.size(), 1u);
  EXPECT_EQ(direct.grib_decimal_scale, via_suite.variables[0].grib_decimal_scale);
  EXPECT_EQ(direct.verdicts[0].all_pass(), via_suite.variables[0].verdicts[0].all_pass());
  EXPECT_DOUBLE_EQ(direct.verdicts[3].mean_cr, via_suite.variables[0].verdicts[3].mean_cr);
}

}  // namespace
}  // namespace cesm::core
