// The memoization layer's determinism contract: a suite run with a warm
// cache (memory or disk tier), a cold cache, or the cache disabled must
// produce bit-identical results — at any thread count — and the warm run
// must actually skip the ensemble synthesis / stats build (hit counters
// prove it, not wall clock).

#include "core/ensemble_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "climate/ensemble.h"
#include "core/export.h"
#include "core/suite.h"
#include "util/scheduler.h"
#include "util/trace.h"

namespace cesm::core {
namespace {

climate::EnsembleSpec tiny_spec() {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{12, 18, 3};
  spec.members = 9;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 200;
  spec.latent.average_steps = 400;
  return spec;
}

SuiteConfig fast_config() {
  SuiteConfig cfg;
  cfg.test_member_count = 2;
  cfg.grib_max_extra_digits = 3;
  return cfg;
}

std::string suite_csv(const climate::EnsembleGenerator& ens) {
  return suite_results_csv(run_suite(ens, fast_config(), {"U", "FSDSC"}));
}

util::CacheConfig memory_only() {
  util::CacheConfig cfg;
  cfg.enabled = true;
  return cfg;
}

util::CacheConfig disabled() {
  util::CacheConfig cfg;
  cfg.enabled = false;
  return cfg;
}

/// Every test leaves the global cache in its default (env-derived) state
/// so sibling tests — which also run through EnsembleCache::global() —
/// see consistent behaviour regardless of execution order.
class EnsembleCacheTest : public ::testing::Test {
 protected:
  // Per-test scratch dir: sibling cases may run as parallel ctest
  // processes and must not clobber each other's disk tier.
  EnsembleCacheTest()
      : dir_(std::filesystem::path(::testing::TempDir()) /
             (std::string("cesm_ens_cache_test_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name())) {
    std::filesystem::remove_all(dir_);
  }
  ~EnsembleCacheTest() override {
    EnsembleCache::global().configure(util::CacheConfig::from_env());
    std::filesystem::remove_all(dir_);
    trace::set_enabled(false);
  }

  util::CacheConfig with_disk() {
    util::CacheConfig cfg = memory_only();
    cfg.disk_dir = dir_.string();
    return cfg;
  }

  static std::uint64_t counter(const std::map<std::string, std::uint64_t>& c,
                               const std::string& name) {
    const auto it = c.find(name);
    return it == c.end() ? 0 : it->second;
  }

  std::filesystem::path dir_;
};

TEST_F(EnsembleCacheTest, KeyIsStableAndDiscriminating) {
  const climate::EnsembleSpec spec = tiny_spec();
  const climate::EnsembleGenerator ens(spec);
  const climate::VariableSpec& u = ens.variable("U");
  const climate::VariableSpec& fsdsc = ens.variable("FSDSC");

  EXPECT_EQ(EnsembleCache::key(spec, u), EnsembleCache::key(spec, u));
  EXPECT_NE(EnsembleCache::key(spec, u), EnsembleCache::key(spec, fsdsc));

  climate::EnsembleSpec more_members = spec;
  more_members.members = 11;
  EXPECT_NE(EnsembleCache::key(spec, u), EnsembleCache::key(more_members, u));

  climate::EnsembleSpec other_seed = spec;
  other_seed.latent.seed ^= 1;
  EXPECT_NE(EnsembleCache::key(spec, u), EnsembleCache::key(other_seed, u));

  climate::EnsembleSpec other_grid = spec;
  other_grid.grid.nlon += 1;
  EXPECT_NE(EnsembleCache::key(spec, u), EnsembleCache::key(other_grid, u));
}

TEST_F(EnsembleCacheTest, MemoryTierServesRepeatedRequests) {
  const climate::EnsembleGenerator ens(tiny_spec());
  EnsembleCache cache(memory_only());
  const auto a = cache.stats(ens, ens.variable("U"));
  const auto b = cache.stats(ens, ens.variable("U"));
  EXPECT_EQ(a.get(), b.get()) << "second request must be served from the cache";
  EXPECT_EQ(cache.memory_stats().hits, 1u);
  EXPECT_EQ(cache.memory_stats().misses, 1u);
}

TEST_F(EnsembleCacheTest, DisabledCacheBuildsFreshEveryTime) {
  const climate::EnsembleGenerator ens(tiny_spec());
  EnsembleCache cache(disabled());
  const auto a = cache.stats(ens, ens.variable("U"));
  const auto b = cache.stats(ens, ens.variable("U"));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.memory_stats().hits, 0u);
  // Identical products nonetheless: builds are deterministic.
  EXPECT_EQ(a->rmsz_distribution(), b->rmsz_distribution());
}

TEST_F(EnsembleCacheTest, SnapshotRoundTripsExactBits) {
  const climate::EnsembleGenerator ens(tiny_spec());
  EnsembleCache cache(disabled());
  const auto built = cache.stats(ens, ens.variable("CCN3"));

  Bytes payload;
  ByteWriter w(payload);
  built->serialize(w);
  ByteReader r(payload);
  const EnsembleStats restored = EnsembleStats::deserialize(r);
  EXPECT_TRUE(r.exhausted());

  ASSERT_EQ(restored.member_count(), built->member_count());
  EXPECT_EQ(restored.point_count(), built->point_count());
  EXPECT_EQ(restored.rmsz_distribution(), built->rmsz_distribution());
  EXPECT_EQ(restored.enmax_distribution(), built->enmax_distribution());
  EXPECT_EQ(restored.global_means(), built->global_means());
  EXPECT_EQ(restored.rmsz_range(), built->rmsz_range());
  EXPECT_EQ(restored.enmax_range(), built->enmax_range());
  for (std::size_t m = 0; m < built->member_count(); ++m) {
    EXPECT_EQ(restored.member(m).data, built->member(m).data) << "member " << m;
    EXPECT_EQ(restored.member(m).name, built->member(m).name);
    EXPECT_EQ(restored.member(m).fill, built->member(m).fill);
    EXPECT_EQ(restored.member_range(m), built->member_range(m));
  }
  // Derived leave-one-out scoring agrees bit for bit.
  EXPECT_EQ(restored.rmsz_of(0, built->member(0).data),
            built->rmsz_of(0, built->member(0).data));
}

TEST_F(EnsembleCacheTest, TruncatedSnapshotThrowsFormatError) {
  const climate::EnsembleGenerator ens(tiny_spec());
  EnsembleCache cache(disabled());
  const auto built = cache.stats(ens, ens.variable("U"));
  Bytes payload;
  ByteWriter w(payload);
  built->serialize(w);
  payload.resize(payload.size() / 2);
  ByteReader r(payload);
  EXPECT_THROW((void)EnsembleStats::deserialize(r), FormatError);
}

TEST_F(EnsembleCacheTest, DiskTierSurvivesMemoryReset) {
  const climate::EnsembleGenerator ens(tiny_spec());
  EnsembleCache cache(with_disk());
  trace::set_enabled(true);
  trace::reset();
  const auto built = cache.stats(ens, ens.variable("U"));
  // Simulates a new process sharing CESM_CACHE_DIR: memory tier gone,
  // disk files still there.
  cache.configure(with_disk());
  const auto restored = cache.stats(ens, ens.variable("U"));
  const auto counters = trace::counters();
  trace::set_enabled(false);

  EXPECT_GE(counter(counters, "cache.disk_write"), 1u);
  EXPECT_GE(counter(counters, "cache.disk_hit"), 1u);
  EXPECT_NE(built.get(), restored.get());
  EXPECT_EQ(built->rmsz_distribution(), restored->rmsz_distribution());
  EXPECT_EQ(built->enmax_distribution(), restored->enmax_distribution());
  for (std::size_t m = 0; m < built->member_count(); ++m) {
    EXPECT_EQ(built->member(m).data, restored->member(m).data);
  }
}

TEST_F(EnsembleCacheTest, CorruptDiskEntryIsRegeneratedNeverTrusted) {
  const climate::EnsembleGenerator ens(tiny_spec());
  EnsembleCache cache(with_disk());
  const auto built = cache.stats(ens, ens.variable("U"));
  const std::uint64_t key = EnsembleCache::key(ens.spec(), ens.variable("U"));

  // Flip one payload byte of the on-disk entry.
  const util::DiskCache disk(dir_.string(), "stats");
  const std::filesystem::path path = disk.entry_path(key);
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    const char x = 0x7f;
    f.write(&x, 1);
  }

  cache.configure(with_disk());  // drop the memory tier, forcing a disk read
  trace::set_enabled(true);
  trace::reset();
  const auto regenerated = cache.stats(ens, ens.variable("U"));
  const auto counters = trace::counters();
  trace::set_enabled(false);

  EXPECT_GE(counter(counters, "cache.disk_corrupt"), 1u);
  EXPECT_EQ(built->rmsz_distribution(), regenerated->rmsz_distribution());
  for (std::size_t m = 0; m < built->member_count(); ++m) {
    EXPECT_EQ(built->member(m).data, regenerated->member(m).data);
  }
  // The rebuilt entry was re-persisted and is valid again.
  cache.configure(with_disk());
  trace::set_enabled(true);
  trace::reset();
  (void)cache.stats(ens, ens.variable("U"));
  const auto counters2 = trace::counters();
  trace::set_enabled(false);
  EXPECT_GE(counter(counters2, "cache.disk_hit"), 1u);
}

// The tentpole acceptance test: cold / warm / disabled suite runs are
// bit-identical at 1 and 4 threads, and the warm run performs no
// synthesis or stats build at all.
TEST_F(EnsembleCacheTest, SuiteParityColdWarmDisabledAcrossThreadCounts) {
  const climate::EnsembleGenerator ens(tiny_spec());

  EnsembleCache::global().configure(disabled());
  const std::string baseline = suite_csv(ens);
  EXPECT_FALSE(baseline.empty());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ScopedScheduler scoped(threads);

    EnsembleCache::global().configure(disabled());
    EXPECT_EQ(suite_csv(ens), baseline) << "disabled, threads=" << threads;

    EnsembleCache::global().configure(memory_only());
    EXPECT_EQ(suite_csv(ens), baseline) << "cold cache, threads=" << threads;

    // Warm run: identical bits, zero synthesis/stats work.
    trace::set_enabled(true);
    trace::reset();
    const std::string warm = suite_csv(ens);
    const auto counters = trace::counters();
    const auto spans = trace::aggregate_by_label();
    trace::set_enabled(false);

    EXPECT_EQ(warm, baseline) << "warm cache, threads=" << threads;
    EXPECT_GE(counter(counters, "cache.hit"), 2u) << "threads=" << threads;
    EXPECT_EQ(spans.count("ensemble.synthesize"), 0u)
        << "warm run re-synthesized the ensemble (threads=" << threads << ")";
    EXPECT_EQ(spans.count("stats.build"), 0u)
        << "warm run rebuilt EnsembleStats (threads=" << threads << ")";
  }
}

TEST_F(EnsembleCacheTest, SuiteParityAcrossDiskTierReload) {
  const climate::EnsembleGenerator ens(tiny_spec());

  EnsembleCache::global().configure(disabled());
  const std::string baseline = suite_csv(ens);

  EnsembleCache::global().configure(with_disk());
  EXPECT_EQ(suite_csv(ens), baseline) << "cold disk-backed run";

  // "Second process": fresh memory tier, entries come back from disk.
  EnsembleCache::global().configure(with_disk());
  trace::set_enabled(true);
  trace::reset();
  const std::string from_disk = suite_csv(ens);
  const auto counters = trace::counters();
  const auto spans = trace::aggregate_by_label();
  trace::set_enabled(false);

  EXPECT_EQ(from_disk, baseline) << "disk-tier reload run";
  EXPECT_GE(counter(counters, "cache.disk_hit"), 2u);
  EXPECT_EQ(spans.count("ensemble.synthesize"), 0u);
  EXPECT_EQ(spans.count("stats.build"), 0u);
}

}  // namespace
}  // namespace cesm::core
