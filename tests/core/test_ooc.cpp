#include "core/ooc.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <span>
#include <vector>

#include "core/export.h"
#include "core/rmsz.h"
#include "stats/descriptive.h"
#include "util/error.h"
#include "util/memory.h"
#include "util/scheduler.h"

namespace cesm::core {
namespace {

/// Grid sized so a 2-D variable (1025 columns) splits into a full chunk
/// plus a 1-element tail at chunk_elems = 1024, and a 3-D variable has
/// slice-aligned chunks that don't divide the kernel block — the
/// partition edge cases the streaming kernels must absorb.
climate::EnsembleSpec small_spec() {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{25, 41, 3};
  spec.members = 9;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 200;
  spec.latent.average_steps = 400;
  return spec;
}

OocConfig ooc_config() {
  OocConfig cfg;
  cfg.chunk_elems = 1024;
  cfg.spill_dir = ::testing::TempDir();
  cfg.suite.test_member_count = 2;
  cfg.suite.grib_max_extra_digits = 3;
  // The in-core twin must measure through the same chunk partition.
  cfg.suite.chunk_elems = 1024;
  return cfg;
}

void expect_summary_eq(const stats::Summary& a, const stats::Summary& b) {
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.count, b.count);
}

void expect_eval_eq(const MemberEvaluation& a, const MemberEvaluation& b) {
  EXPECT_EQ(a.member, b.member);
  EXPECT_EQ(a.cr, b.cr);
  EXPECT_EQ(a.metrics.rmse, b.metrics.rmse);
  EXPECT_EQ(a.metrics.nrmse, b.metrics.nrmse);
  EXPECT_EQ(a.metrics.e_max, b.metrics.e_max);
  EXPECT_EQ(a.metrics.e_nmax, b.metrics.e_nmax);
  EXPECT_EQ(a.metrics.psnr, b.metrics.psnr);
  EXPECT_EQ(a.metrics.pearson, b.metrics.pearson);
  EXPECT_EQ(a.metrics.points, b.metrics.points);
  EXPECT_EQ(a.rmsz_original, b.rmsz_original);
  EXPECT_EQ(a.rmsz_reconstructed, b.rmsz_reconstructed);
  EXPECT_EQ(a.rmsz_diff, b.rmsz_diff);
  EXPECT_EQ(a.rmsz_in_distribution, b.rmsz_in_distribution);
  EXPECT_EQ(a.enmax_ratio, b.enmax_ratio);
  EXPECT_EQ(a.rho_pass, b.rho_pass);
  EXPECT_EQ(a.rmsz_pass, b.rmsz_pass);
  EXPECT_EQ(a.enmax_pass, b.enmax_pass);
}

void expect_verdict_eq(const VariableVerdict& a, const VariableVerdict& b) {
  EXPECT_EQ(a.variable, b.variable);
  EXPECT_EQ(a.codec, b.codec);
  EXPECT_EQ(a.mean_cr, b.mean_cr);
  EXPECT_EQ(a.rho_pass, b.rho_pass);
  EXPECT_EQ(a.rmsz_pass, b.rmsz_pass);
  EXPECT_EQ(a.enmax_pass, b.enmax_pass);
  EXPECT_EQ(a.bias_pass, b.bias_pass);
  EXPECT_EQ(a.bias_evaluated, b.bias_evaluated);
  EXPECT_EQ(a.bias.pass, b.bias.pass);
  EXPECT_EQ(a.bias.slope_distance, b.bias.slope_distance);
  EXPECT_EQ(a.bias.fit.slope, b.bias.fit.slope);
  EXPECT_EQ(a.bias.fit.intercept, b.bias.fit.intercept);
  EXPECT_EQ(a.codec_error, b.codec_error);
  EXPECT_EQ(a.fallback_codec, b.fallback_codec);
  ASSERT_EQ(a.members.size(), b.members.size());
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    SCOPED_TRACE("member slot " + std::to_string(i));
    expect_eval_eq(a.members[i], b.members[i]);
  }
}

void expect_variable_eq(const VariableResult& a, const VariableResult& b) {
  SCOPED_TRACE("variable " + a.variable);
  EXPECT_EQ(a.variable, b.variable);
  EXPECT_EQ(a.is_3d, b.is_3d);
  EXPECT_EQ(a.fill, b.fill);
  expect_summary_eq(a.character.summary, b.character.summary);
  EXPECT_EQ(a.character.lossless_cr, b.character.lossless_cr);
  EXPECT_EQ(a.netcdf4_cr, b.netcdf4_cr);
  EXPECT_EQ(a.fpzip32_cr, b.fpzip32_cr);
  EXPECT_EQ(a.grib_decimal_scale, b.grib_decimal_scale);
  EXPECT_EQ(a.grib_tuning_passed, b.grib_tuning_passed);
  EXPECT_EQ(a.test_members, b.test_members);
  EXPECT_EQ(a.processing_failed, b.processing_failed);
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t v = 0; v < a.verdicts.size(); ++v) {
    SCOPED_TRACE("variant " + a.verdicts[v].codec);
    expect_verdict_eq(a.verdicts[v], b.verdicts[v]);
  }
}

class OocTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ensemble_ = new climate::EnsembleGenerator(small_spec());
    const OocConfig cfg = ooc_config();
    incore_ = new SuiteResults(run_suite(*ensemble_, cfg.suite, {"U", "SST"}));
    streaming_ = new SuiteResults(run_suite_streaming(*ensemble_, cfg, {"U", "SST"}));
  }
  static void TearDownTestSuite() {
    delete streaming_;
    delete incore_;
    delete ensemble_;
    streaming_ = nullptr;
    incore_ = nullptr;
    ensemble_ = nullptr;
  }

  static climate::EnsembleGenerator* ensemble_;
  static SuiteResults* incore_;
  static SuiteResults* streaming_;
};

climate::EnsembleGenerator* OocTest::ensemble_ = nullptr;
SuiteResults* OocTest::incore_ = nullptr;
SuiteResults* OocTest::streaming_ = nullptr;

TEST_F(OocTest, StreamingStatsMatchesEnsembleStatsBitwise) {
  for (const char* name : {"U", "SST"}) {
    SCOPED_TRACE(name);
    const climate::VariableSpec& spec = ensemble_->variable(name);
    const EnsembleStats stats(ensemble_->ensemble_fields(spec));

    util::MemoryBudget budget;
    const std::string path =
        stage_variable(*ensemble_, spec, ::testing::TempDir(), 1024, budget);
    const ncio::ChunkStoreReader store(path);
    const StreamingStats streaming(store, budget);

    ASSERT_EQ(streaming.member_count(), stats.member_count());
    EXPECT_EQ(streaming.point_count(), stats.point_count());
    EXPECT_TRUE(std::equal(streaming.mask().begin(), streaming.mask().end(),
                           stats.mask().begin(), stats.mask().end()));
    EXPECT_EQ(streaming.rmsz_distribution(), stats.rmsz_distribution());
    EXPECT_EQ(streaming.enmax_distribution(), stats.enmax_distribution());
    EXPECT_EQ(streaming.rmsz_range(), stats.rmsz_range());
    EXPECT_EQ(streaming.enmax_range(), stats.enmax_range());
    EXPECT_EQ(streaming.global_means(), stats.global_means());
    for (std::size_t m = 0; m < stats.member_count(); ++m) {
      EXPECT_EQ(streaming.member_range(m), stats.member_range(m));
      const stats::Summary expected = stats::summarize(
          std::span<const float>(stats.member(m).data), stats.mask());
      expect_summary_eq(streaming.member_summary(m), expected);
    }
    std::filesystem::remove(path);
  }
}

TEST_F(OocTest, SuiteCsvIsByteIdenticalToInCore) {
  EXPECT_EQ(suite_results_csv(*streaming_), suite_results_csv(*incore_));
}

TEST_F(OocTest, SuiteResultsMatchInCoreBitwise) {
  EXPECT_EQ(streaming_->variant_names, incore_->variant_names);
  ASSERT_EQ(streaming_->variables.size(), incore_->variables.size());
  for (std::size_t i = 0; i < streaming_->variables.size(); ++i) {
    expect_variable_eq(streaming_->variables[i], incore_->variables[i]);
  }
}

TEST_F(OocTest, StreamingIsWorkerCountInvariant) {
  const OocConfig cfg = ooc_config();
  const climate::VariableSpec& spec = ensemble_->variable("SST");
  VariableResult serial;
  VariableResult parallel;
  {
    ScopedScheduler sched(1);
    serial = run_variable_streaming(*ensemble_, spec, cfg);
  }
  {
    ScopedScheduler sched(4);
    parallel = run_variable_streaming(*ensemble_, spec, cfg);
  }
  expect_variable_eq(serial, parallel);
  expect_variable_eq(serial, incore_->variable("SST"));
}

TEST_F(OocTest, PhaseStatsAreRecorded) {
  const OocConfig cfg = ooc_config();
  const climate::VariableSpec& spec = ensemble_->variable("U");
  OocPhaseStats phases;
  const VariableResult result = run_variable_streaming(*ensemble_, spec, cfg, &phases);
  EXPECT_FALSE(result.processing_failed);
  EXPECT_GE(phases.stage_seconds, 0.0);
  EXPECT_GE(phases.stats_seconds, 0.0);
  EXPECT_GT(phases.verify_seconds, 0.0);
  // U is 3-D: 3 levels x 1025 columns x 9 members x 4 bytes.
  EXPECT_EQ(phases.bytes_spilled, 3ull * 1025 * 9 * 4);
  EXPECT_GT(phases.peak_logical_bytes, 0u);
  EXPECT_EQ(phases.budget_cap_bytes, 0u);
}

TEST_F(OocTest, MemoryBudgetCapRejectsOversizedWorkingSet) {
  OocConfig cfg = ooc_config();
  cfg.suite.variable_retry_limit = 0;
  cfg.suite.continue_on_variable_error = false;
  cfg.memory_budget_bytes = 10'000;  // far below the per-point arrays alone
  const climate::VariableSpec& spec = ensemble_->variable("U");
  EXPECT_THROW(run_variable_streaming(*ensemble_, spec, cfg), Error);
}

TEST_F(OocTest, FieldRangeMatchesFullSynthesis) {
  const climate::VariableSpec& spec = ensemble_->variable("SST");
  const std::size_t n = ensemble_->field_elems(spec);
  const climate::Field full = ensemble_->field(spec, 4);
  ASSERT_EQ(full.data.size(), n);
  // Deliberately odd split points, including a 1-element range.
  const std::size_t cuts[] = {0, 1, 511, 512, 1023, n};
  for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
    const std::size_t lo = cuts[c];
    const std::size_t hi = cuts[c + 1];
    std::vector<float> out(hi - lo);
    ensemble_->field_range(spec, 4, lo, hi, out);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), full.data.begin() + lo))
        << "range [" << lo << ", " << hi << ")";
  }
}

}  // namespace
}  // namespace cesm::core
