#include "core/ooc.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/export.h"
#include "core/rmsz.h"
#include "ncio/chunkstore.h"
#include "stats/descriptive.h"
#include "support/generators.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/memory.h"
#include "util/scheduler.h"
#include "util/trace.h"

namespace cesm::core {
namespace {

/// Grid sized so a 2-D variable (1025 columns) splits into a full chunk
/// plus a 1-element tail at chunk_elems = 1024, and a 3-D variable has
/// slice-aligned chunks that don't divide the kernel block — the
/// partition edge cases the streaming kernels must absorb.
climate::EnsembleSpec small_spec() {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{25, 41, 3};
  spec.members = 9;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 200;
  spec.latent.average_steps = 400;
  return spec;
}

OocConfig ooc_config() {
  OocConfig cfg;
  cfg.chunk_elems = 1024;
  cfg.spill_dir = ::testing::TempDir();
  cfg.suite.test_member_count = 2;
  cfg.suite.grib_max_extra_digits = 3;
  // The in-core twin must measure through the same chunk partition.
  cfg.suite.chunk_elems = 1024;
  return cfg;
}

void expect_summary_eq(const stats::Summary& a, const stats::Summary& b) {
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.count, b.count);
}

void expect_eval_eq(const MemberEvaluation& a, const MemberEvaluation& b) {
  EXPECT_EQ(a.member, b.member);
  EXPECT_EQ(a.cr, b.cr);
  EXPECT_EQ(a.metrics.rmse, b.metrics.rmse);
  EXPECT_EQ(a.metrics.nrmse, b.metrics.nrmse);
  EXPECT_EQ(a.metrics.e_max, b.metrics.e_max);
  EXPECT_EQ(a.metrics.e_nmax, b.metrics.e_nmax);
  EXPECT_EQ(a.metrics.psnr, b.metrics.psnr);
  EXPECT_EQ(a.metrics.pearson, b.metrics.pearson);
  EXPECT_EQ(a.metrics.points, b.metrics.points);
  EXPECT_EQ(a.rmsz_original, b.rmsz_original);
  EXPECT_EQ(a.rmsz_reconstructed, b.rmsz_reconstructed);
  EXPECT_EQ(a.rmsz_diff, b.rmsz_diff);
  EXPECT_EQ(a.rmsz_in_distribution, b.rmsz_in_distribution);
  EXPECT_EQ(a.enmax_ratio, b.enmax_ratio);
  EXPECT_EQ(a.rho_pass, b.rho_pass);
  EXPECT_EQ(a.rmsz_pass, b.rmsz_pass);
  EXPECT_EQ(a.enmax_pass, b.enmax_pass);
}

void expect_verdict_eq(const VariableVerdict& a, const VariableVerdict& b) {
  EXPECT_EQ(a.variable, b.variable);
  EXPECT_EQ(a.codec, b.codec);
  EXPECT_EQ(a.mean_cr, b.mean_cr);
  EXPECT_EQ(a.rho_pass, b.rho_pass);
  EXPECT_EQ(a.rmsz_pass, b.rmsz_pass);
  EXPECT_EQ(a.enmax_pass, b.enmax_pass);
  EXPECT_EQ(a.bias_pass, b.bias_pass);
  EXPECT_EQ(a.bias_evaluated, b.bias_evaluated);
  EXPECT_EQ(a.bias.pass, b.bias.pass);
  EXPECT_EQ(a.bias.slope_distance, b.bias.slope_distance);
  EXPECT_EQ(a.bias.fit.slope, b.bias.fit.slope);
  EXPECT_EQ(a.bias.fit.intercept, b.bias.fit.intercept);
  EXPECT_EQ(a.codec_error, b.codec_error);
  EXPECT_EQ(a.fallback_codec, b.fallback_codec);
  ASSERT_EQ(a.members.size(), b.members.size());
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    SCOPED_TRACE("member slot " + std::to_string(i));
    expect_eval_eq(a.members[i], b.members[i]);
  }
}

void expect_variable_eq(const VariableResult& a, const VariableResult& b) {
  SCOPED_TRACE("variable " + a.variable);
  EXPECT_EQ(a.variable, b.variable);
  EXPECT_EQ(a.is_3d, b.is_3d);
  EXPECT_EQ(a.fill, b.fill);
  expect_summary_eq(a.character.summary, b.character.summary);
  EXPECT_EQ(a.character.lossless_cr, b.character.lossless_cr);
  EXPECT_EQ(a.netcdf4_cr, b.netcdf4_cr);
  EXPECT_EQ(a.fpzip32_cr, b.fpzip32_cr);
  EXPECT_EQ(a.grib_decimal_scale, b.grib_decimal_scale);
  EXPECT_EQ(a.grib_tuning_passed, b.grib_tuning_passed);
  EXPECT_EQ(a.test_members, b.test_members);
  EXPECT_EQ(a.processing_failed, b.processing_failed);
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t v = 0; v < a.verdicts.size(); ++v) {
    SCOPED_TRACE("variant " + a.verdicts[v].codec);
    expect_verdict_eq(a.verdicts[v], b.verdicts[v]);
  }
}

class OocTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ensemble_ = new climate::EnsembleGenerator(small_spec());
    const OocConfig cfg = ooc_config();
    incore_ = new SuiteResults(run_suite(*ensemble_, cfg.suite, {"U", "SST"}));
    streaming_ = new SuiteResults(run_suite_streaming(*ensemble_, cfg, {"U", "SST"}));
  }
  static void TearDownTestSuite() {
    delete streaming_;
    delete incore_;
    delete ensemble_;
    streaming_ = nullptr;
    incore_ = nullptr;
    ensemble_ = nullptr;
  }

  static climate::EnsembleGenerator* ensemble_;
  static SuiteResults* incore_;
  static SuiteResults* streaming_;
};

climate::EnsembleGenerator* OocTest::ensemble_ = nullptr;
SuiteResults* OocTest::incore_ = nullptr;
SuiteResults* OocTest::streaming_ = nullptr;

TEST_F(OocTest, StreamingStatsMatchesEnsembleStatsBitwise) {
  for (const char* name : {"U", "SST"}) {
    SCOPED_TRACE(name);
    const climate::VariableSpec& spec = ensemble_->variable(name);
    const EnsembleStats stats(ensemble_->ensemble_fields(spec));

    util::MemoryBudget budget;
    const std::string path =
        stage_variable(*ensemble_, spec, ::testing::TempDir(), 1024, budget);
    const ncio::ChunkStoreReader store(path);
    const StreamingStats streaming(store, budget);

    ASSERT_EQ(streaming.member_count(), stats.member_count());
    EXPECT_EQ(streaming.point_count(), stats.point_count());
    EXPECT_TRUE(std::equal(streaming.mask().begin(), streaming.mask().end(),
                           stats.mask().begin(), stats.mask().end()));
    EXPECT_EQ(streaming.rmsz_distribution(), stats.rmsz_distribution());
    EXPECT_EQ(streaming.enmax_distribution(), stats.enmax_distribution());
    EXPECT_EQ(streaming.rmsz_range(), stats.rmsz_range());
    EXPECT_EQ(streaming.enmax_range(), stats.enmax_range());
    EXPECT_EQ(streaming.global_means(), stats.global_means());
    for (std::size_t m = 0; m < stats.member_count(); ++m) {
      EXPECT_EQ(streaming.member_range(m), stats.member_range(m));
      const stats::Summary expected = stats::summarize(
          std::span<const float>(stats.member(m).data), stats.mask());
      expect_summary_eq(streaming.member_summary(m), expected);
    }
    std::filesystem::remove(path);
  }
}

TEST_F(OocTest, SuiteCsvIsByteIdenticalToInCore) {
  EXPECT_EQ(suite_results_csv(*streaming_), suite_results_csv(*incore_));
}

TEST_F(OocTest, SuiteResultsMatchInCoreBitwise) {
  EXPECT_EQ(streaming_->variant_names, incore_->variant_names);
  ASSERT_EQ(streaming_->variables.size(), incore_->variables.size());
  for (std::size_t i = 0; i < streaming_->variables.size(); ++i) {
    expect_variable_eq(streaming_->variables[i], incore_->variables[i]);
  }
}

TEST_F(OocTest, StreamingIsWorkerCountInvariant) {
  const OocConfig cfg = ooc_config();
  const climate::VariableSpec& spec = ensemble_->variable("SST");
  VariableResult serial;
  VariableResult parallel;
  {
    ScopedScheduler sched(1);
    serial = run_variable_streaming(*ensemble_, spec, cfg);
  }
  {
    ScopedScheduler sched(4);
    parallel = run_variable_streaming(*ensemble_, spec, cfg);
  }
  expect_variable_eq(serial, parallel);
  expect_variable_eq(serial, incore_->variable("SST"));
}

TEST_F(OocTest, PhaseStatsAreRecorded) {
  const OocConfig cfg = ooc_config();
  const climate::VariableSpec& spec = ensemble_->variable("U");
  OocPhaseStats phases;
  const VariableResult result = run_variable_streaming(*ensemble_, spec, cfg, &phases);
  EXPECT_FALSE(result.processing_failed);
  EXPECT_GE(phases.stage_seconds, 0.0);
  EXPECT_GE(phases.stats_seconds, 0.0);
  EXPECT_GT(phases.verify_seconds, 0.0);
  // U is 3-D: 3 levels x 1025 columns x 9 members x 4 bytes.
  EXPECT_EQ(phases.bytes_spilled, 3ull * 1025 * 9 * 4);
  EXPECT_GT(phases.peak_logical_bytes, 0u);
  EXPECT_EQ(phases.budget_cap_bytes, 0u);
}

TEST_F(OocTest, MemoryBudgetCapRejectsOversizedWorkingSet) {
  OocConfig cfg = ooc_config();
  cfg.suite.variable_retry_limit = 0;
  cfg.suite.continue_on_variable_error = false;
  cfg.memory_budget_bytes = 10'000;  // far below the per-point arrays alone
  const climate::VariableSpec& spec = ensemble_->variable("U");
  EXPECT_THROW(run_variable_streaming(*ensemble_, spec, cfg), Error);
}

// ---------------------------------------------------------------------------
// Multi-variable concurrency under one shared budget.

TEST_F(OocTest, SharedBudgetContentionIsDeadlockFreeAndInvisible) {
  // Eight variables race a cap sized for roughly two of the largest
  // working sets, at scheduler widths 1 and 4. The run must complete (no
  // deadlock), hold the cap as a hard bound, park at least one admission,
  // balance the budget back to zero, and produce byte-identical results
  // to the serial schedule.
  std::vector<std::string> vars;
  for (const climate::VariableSpec& v : ensemble_->catalog()) {
    vars.push_back(v.name);
    if (vars.size() == 8) break;
  }
  ASSERT_EQ(vars.size(), 8u);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    ScopedScheduler sched(workers);

    // The working-set bound depends on the scheduler width (verify lane
    // buffers), so size the cap inside the scope that runs the jobs.
    std::uint64_t max_ws = 0;
    for (const std::string& name : vars) {
      max_ws = std::max(max_ws, ooc_working_set_bytes(
                                    *ensemble_, ensemble_->variable(name), 1024));
    }
    OocConfig cfg = ooc_config();
    cfg.memory_budget_bytes = 2 * max_ws;

    cfg.parallel_variables = 1;
    const SuiteResults serial = run_suite_streaming(*ensemble_, cfg, vars);

    util::MemoryBudget shared(cfg.memory_budget_bytes);
    cfg.shared_budget = &shared;
    cfg.parallel_variables = 8;
    const SuiteResults parallel = run_suite_streaming(*ensemble_, cfg, vars);

    EXPECT_LE(shared.peak_logical_bytes(), cfg.memory_budget_bytes);
    EXPECT_EQ(shared.charged_bytes(), 0u);
    EXPECT_GT(shared.reserve_waits(), 0u);

    ASSERT_EQ(parallel.variables.size(), serial.variables.size());
    for (std::size_t i = 0; i < serial.variables.size(); ++i) {
      ASSERT_FALSE(serial.variables[i].processing_failed)
          << serial.variables[i].variable;
      ASSERT_FALSE(parallel.variables[i].processing_failed)
          << parallel.variables[i].variable;
      expect_variable_eq(parallel.variables[i], serial.variables[i]);
    }
    EXPECT_EQ(suite_results_csv(parallel), suite_results_csv(serial));
  }
}

TEST_F(OocTest, OversizedReservationStillFailsFastUnderSharedBudget) {
  // A working set larger than the whole cap can never be admitted;
  // parking it would hang the suite, so it must throw (and with retries
  // and containment off, propagate).
  OocConfig cfg = ooc_config();
  cfg.suite.variable_retry_limit = 0;
  cfg.suite.continue_on_variable_error = false;
  cfg.parallel_variables = 2;
  cfg.memory_budget_bytes = 10'000;  // far below any working set
  EXPECT_THROW(run_suite_streaming(*ensemble_, cfg, {"U", "SST"}), Error);
}

// ---------------------------------------------------------------------------
// Content-addressed spill reuse.

std::string fresh_store_dir(const char* name) {
  const std::filesystem::path dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::vector<std::filesystem::path> spill_files(const std::string& dir) {
  std::vector<std::filesystem::path> files;
  for (const auto& de : std::filesystem::directory_iterator(dir)) {
    if (de.is_regular_file() && de.path().extension() == ".cnk1") {
      files.push_back(de.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Runs `fn` with tracing freshly enabled and returns the counters it
/// produced, restoring the previous trace state afterwards.
template <typename Fn>
std::map<std::string, std::uint64_t> traced_counters(Fn&& fn) {
  const bool had_trace = trace::enabled();
  trace::reset();
  trace::set_enabled(true);
  fn();
  const std::map<std::string, std::uint64_t> counters = trace::counters();
  trace::set_enabled(had_trace);
  trace::reset();
  return counters;
}

TEST_F(OocTest, SpillReuseWarmRunSkipsSynthesisAndMatchesBitwise) {
  OocConfig cfg = ooc_config();
  cfg.reuse_spill = true;
  cfg.spill_dir = fresh_store_dir("reuse_warm");

  const SuiteResults cold = run_suite_streaming(*ensemble_, cfg, {"U", "SST"});
  EXPECT_EQ(spill_files(cfg.spill_dir).size(), 2u);

  SuiteResults warm;
  std::uint64_t synth_spans = 1;
  const auto counters = traced_counters([&] {
    warm = run_suite_streaming(*ensemble_, cfg, {"U", "SST"});
    const auto agg = trace::aggregate_by_label();
    const auto it = agg.find("ensemble.synthesize");
    synth_spans = it == agg.end() ? 0 : it->second.count;
  });

  // Every variable reused its spill; nothing was synthesized or staged.
  EXPECT_EQ(counters.count("ooc.spill_reused") ? counters.at("ooc.spill_reused") : 0, 2u);
  EXPECT_EQ(counters.count("ooc.chunks_written"), 0u);
  EXPECT_EQ(synth_spans, 0u);

  ASSERT_EQ(warm.variables.size(), cold.variables.size());
  for (std::size_t i = 0; i < cold.variables.size(); ++i) {
    expect_variable_eq(warm.variables[i], cold.variables[i]);
  }
  EXPECT_EQ(suite_results_csv(warm), suite_results_csv(cold));
  EXPECT_EQ(suite_results_csv(warm), suite_results_csv(*incore_));
}

TEST_F(OocTest, RottenSpillHeaderIsDetectedAtProbeDeletedAndRestaged) {
  OocConfig cfg = ooc_config();
  cfg.reuse_spill = true;
  cfg.spill_dir = fresh_store_dir("reuse_rot_header");
  const SuiteResults cold = run_suite_streaming(*ensemble_, cfg, {"SST"});

  const auto files = spill_files(cfg.spill_dir);
  ASSERT_EQ(files.size(), 1u);
  {
    // Flip one bit inside the checksummed header region: the reuse probe
    // must reject the store before trusting anything in it.
    std::fstream f(files[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(20);
    char b = 0;
    f.get(b);
    f.seekp(20);
    f.put(static_cast<char>(b ^ 0x10));
  }

  SuiteResults warm;
  const auto counters = traced_counters(
      [&] { warm = run_suite_streaming(*ensemble_, cfg, {"SST"}); });

  EXPECT_EQ(counters.count("ooc.spill_corrupt") ? counters.at("ooc.spill_corrupt") : 0, 1u);
  EXPECT_EQ(counters.count("ooc.spill_reused"), 0u);
  ASSERT_FALSE(warm.variables[0].processing_failed);
  expect_variable_eq(warm.variables[0], cold.variables[0]);

  // The restaged spill is valid again and satisfies the next run.
  const auto restaged = spill_files(cfg.spill_dir);
  ASSERT_EQ(restaged.size(), 1u);
  EXPECT_NO_THROW(ncio::ChunkStoreReader(restaged[0].string()));
}

TEST_F(OocTest, ReusedSpillFailingMidRunIsInvalidatedAndRestagedByRetry) {
  OocConfig cfg = ooc_config();
  cfg.reuse_spill = true;
  cfg.spill_dir = fresh_store_dir("reuse_rot_payload");
  const SuiteResults cold = run_suite_streaming(*ensemble_, cfg, {"SST"});

  const auto files = spill_files(cfg.spill_dir);
  ASSERT_EQ(files.size(), 1u);
  {
    // Header and table stay valid, so the probe accepts the reuse; the
    // payload checksum mismatch then surfaces mid-run, which must
    // invalidate (delete + count) the spill and succeed via the guarded
    // retry's fresh staging.
    const ncio::ChunkStoreReader reader(files[0].string());
    const std::streamoff payload_at = static_cast<std::streamoff>(
        reader.header_bytes() + reader.table_bytes());
    std::fstream f(files[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(payload_at);
    char b = 0;
    f.get(b);
    f.seekp(payload_at);
    f.put(static_cast<char>(b ^ 0x01));
  }

  SuiteResults warm;
  const auto counters = traced_counters(
      [&] { warm = run_suite_streaming(*ensemble_, cfg, {"SST"}); });

  EXPECT_EQ(counters.count("ooc.spill_reused") ? counters.at("ooc.spill_reused") : 0, 1u);
  EXPECT_EQ(counters.count("ooc.spill_invalidated") ? counters.at("ooc.spill_invalidated") : 0,
            1u);
  EXPECT_EQ(counters.count("suite.variable_retries") ? counters.at("suite.variable_retries") : 0,
            1u);
  ASSERT_FALSE(warm.variables[0].processing_failed);
  expect_variable_eq(warm.variables[0], cold.variables[0]);
}

TEST_F(OocTest, ReadChunkFaultOnReusedSpillInvalidatesAndRetries) {
  OocConfig cfg = ooc_config();
  cfg.reuse_spill = true;
  cfg.spill_dir = fresh_store_dir("reuse_failpoint");
  const SuiteResults cold = run_suite_streaming(*ensemble_, cfg, {"SST"});
  ASSERT_EQ(spill_files(cfg.spill_dir).size(), 1u);

  // An injected one-shot read fault on a *reused* spill must travel the
  // same invalidation path as real rot: delete, count, restage, succeed.
  SuiteResults warm;
  const auto counters = traced_counters([&] {
    fail::ScopedFailpoint fp("ncio.read_chunk", fail::Trigger::once());
    warm = run_suite_streaming(*ensemble_, cfg, {"SST"});
  });

  EXPECT_EQ(counters.count("ooc.spill_reused") ? counters.at("ooc.spill_reused") : 0, 1u);
  EXPECT_EQ(counters.count("ooc.spill_invalidated") ? counters.at("ooc.spill_invalidated") : 0,
            1u);
  ASSERT_FALSE(warm.variables[0].processing_failed);
  expect_variable_eq(warm.variables[0], cold.variables[0]);
}

TEST_F(OocTest, SpillStoreEvictsOldestBeyondByteBudget) {
  OocConfig cfg = ooc_config();
  cfg.reuse_spill = true;
  cfg.spill_dir = fresh_store_dir("reuse_evict");

  // Stage two spills, then re-run with a budget that only fits one: the
  // eviction pass after each variable must delete the older spill and
  // keep the one just used.
  const SuiteResults cold = run_suite_streaming(*ensemble_, cfg, {"U", "SST"});
  ASSERT_EQ(spill_files(cfg.spill_dir).size(), 2u);

  std::uint64_t largest = 0;
  for (const auto& f : spill_files(cfg.spill_dir)) {
    largest = std::max<std::uint64_t>(largest, std::filesystem::file_size(f));
  }
  cfg.spill_budget_bytes = largest;
  const SuiteResults warm = run_suite_streaming(*ensemble_, cfg, {"SST"});
  ASSERT_FALSE(warm.variables[0].processing_failed);
  expect_variable_eq(warm.variables[0], cold.variables[1]);

  const auto kept = spill_files(cfg.spill_dir);
  ASSERT_EQ(kept.size(), 1u);
  // The survivor is SST's spill (its name carries the variable).
  EXPECT_NE(kept[0].filename().string().find("SST"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SpillSession: per-run isolation of non-reusable spills.

TEST(SpillSession, UniquePerInstanceAndRemovedOnExit) {
  const std::string base = fresh_store_dir("session_unique");
  std::string d1, d2;
  {
    const SpillSession a(base);
    const SpillSession b(base);
    d1 = a.dir();
    d2 = b.dir();
    EXPECT_NE(d1, d2);
    EXPECT_TRUE(std::filesystem::is_directory(d1));
    EXPECT_TRUE(std::filesystem::is_directory(d2));
  }
  EXPECT_FALSE(std::filesystem::exists(d1));
  EXPECT_FALSE(std::filesystem::exists(d2));

  std::string kept;
  {
    const SpillSession keeper(base, /*keep=*/true);
    kept = keeper.dir();
  }
  EXPECT_TRUE(std::filesystem::is_directory(kept));
  std::filesystem::remove_all(kept);
}

/// Stage-and-verify one tiny store named `X.cnk1` inside a fresh
/// SpillSession under `base`. Returns 0 on success; used by both halves
/// of the two-process regression (the child must not touch gtest).
int stage_in_session(const std::string& base, std::uint64_t seed) {
  try {
    const SpillSession session(base);
    const std::string path = session.dir() + "/X.cnk1";
    const std::vector<std::size_t> offsets = {0, 64};
    const auto data = testgen::smooth_field(64, seed);
    ncio::ChunkStoreWriter writer(path, "X", comp::Shape::d1(64), std::nullopt, 1,
                                  offsets);
    writer.write_chunk(0, 0, data);
    writer.finish();
    const ncio::ChunkStoreReader reader(path);
    std::vector<float> got(64);
    reader.read_chunk(0, 0, got);
    return std::equal(got.begin(), got.end(), data.begin()) ? 0 : 1;
  } catch (...) {
    return 2;
  }
}

TEST(SpillSession, TwoProcessesShareOneSpillDirWithoutCollision) {
  // The regression this pins: before per-run session directories, two
  // processes staging the same variable into one spill_dir raced on the
  // same "<dir>/X.cnk1" final name, and one process could read (or
  // delete) the other's bytes. Each process now stages into its own
  // "cesm-spill-<pid>-<token>" subdirectory.
  const std::string base = fresh_store_dir("session_two_proc");
  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    // Child: plain syscalls + library code only, result via exit status.
    _exit(stage_in_session(base, 0xc411d));
  }
  EXPECT_EQ(stage_in_session(base, 0x9a9e47), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  // Both sessions cleaned up after themselves.
  EXPECT_TRUE(std::filesystem::is_empty(base));
}

TEST_F(OocTest, FieldRangeMatchesFullSynthesis) {
  const climate::VariableSpec& spec = ensemble_->variable("SST");
  const std::size_t n = ensemble_->field_elems(spec);
  const climate::Field full = ensemble_->field(spec, 4);
  ASSERT_EQ(full.data.size(), n);
  // Deliberately odd split points, including a 1-element range.
  const std::size_t cuts[] = {0, 1, 511, 512, 1023, n};
  for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
    const std::size_t lo = cuts[c];
    const std::size_t hi = cuts[c + 1];
    std::vector<float> out(hi - lo);
    ensemble_->field_range(spec, 4, lo, hi, out);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), full.data.begin() + lo))
        << "range [" << lo << ", " << hi << ")";
  }
}

}  // namespace
}  // namespace cesm::core
