#include "core/port_verification.h"

#include <gtest/gtest.h>

namespace cesm::core {
namespace {

climate::EnsembleSpec tiny_spec() {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{8, 36, 3};
  spec.members = 15;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 200;
  spec.latent.average_steps = 400;
  return spec;
}

TEST(PortVerification, ExchangeableNewRunsUsuallyPass) {
  const climate::EnsembleGenerator ens(tiny_spec());
  const std::vector<std::uint32_t> new_runs = {100, 101, 102};
  const auto verdicts = verify_port(ens, new_runs, {"U", "T", "PS", "FSDSC"});
  ASSERT_EQ(verdicts.size(), 4u);
  std::size_t passed = 0;
  for (const PortVerdict& v : verdicts) {
    if (v.pass()) ++passed;
    EXPECT_GT(v.worst_new_rmsz, 0.0);
    EXPECT_LT(v.rmsz_lo, v.rmsz_hi);
  }
  // New runs are statistically exchangeable with the trusted ensemble:
  // most variables must pass (tail events are possible at 15 members).
  EXPECT_GE(passed, 3u);
}

TEST(PortVerification, CorruptedRunFailsRmsz) {
  const climate::EnsembleGenerator ens(tiny_spec());
  const climate::VariableSpec& spec = ens.variable("T");
  const EnsembleStats stats(ens.ensemble_fields(spec));

  climate::Field bad = ens.field(spec, 100);
  // A "climate-changing" bug: uniform warming of several ensemble sigmas.
  for (float& v : bad.data) v += 5.0f;

  const PortVerdict verdict =
      verify_port_variable(stats, std::span<const climate::Field>(&bad, 1));
  EXPECT_FALSE(verdict.rmsz_pass);
  EXPECT_FALSE(verdict.global_mean_pass);
  EXPECT_FALSE(verdict.pass());
}

TEST(PortVerification, SmallMeanShiftCaughtByRangeCheck) {
  const climate::EnsembleGenerator ens(tiny_spec());
  const climate::VariableSpec& spec = ens.variable("PS");
  const EnsembleStats stats(ens.ensemble_fields(spec));

  climate::Field shifted = ens.field(spec, 100);
  // Shift just past the trusted global-mean range plus tolerance.
  const auto& gmeans = stats.global_means();
  const double range = *std::max_element(gmeans.begin(), gmeans.end()) -
                       *std::min_element(gmeans.begin(), gmeans.end());
  for (float& v : shifted.data) v += static_cast<float>(2.0 * range);

  PortVerificationOptions options;
  options.mean_shift_tolerance = 0.25;
  const PortVerdict verdict =
      verify_port_variable(stats, std::span<const climate::Field>(&shifted, 1), options);
  EXPECT_FALSE(verdict.global_mean_pass);
}

TEST(PortVerification, DefaultsLimitVariableCount) {
  const climate::EnsembleGenerator ens(tiny_spec());
  const std::vector<std::uint32_t> new_runs = {50};
  const auto verdicts = verify_port(ens, new_runs, {}, 5);
  EXPECT_EQ(verdicts.size(), 5u);
}

TEST(PortVerification, RejectsEmptyNewRuns) {
  const climate::EnsembleGenerator ens(tiny_spec());
  EXPECT_THROW(verify_port(ens, {}, {"U"}), InvalidArgument);
}

}  // namespace
}  // namespace cesm::core
