#include "core/pvt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "compress/deflate/deflate.h"
#include "compress/fpz/fpz.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/trace.h"

namespace cesm::core {
namespace {

/// Codec stub that injects a controlled distortion (for exercising the
/// acceptance logic without depending on real codec behaviour).
class DistortionCodec final : public comp::Codec {
 public:
  explicit DistortionCodec(float offset, float noise = 0.0f)
      : offset_(offset), noise_(noise) {}

  [[nodiscard]] std::string name() const override { return "distort"; }
  [[nodiscard]] std::string family() const override { return "test"; }
  [[nodiscard]] bool is_lossless() const override { return false; }
  [[nodiscard]] comp::Capabilities capabilities() const override { return {}; }

  [[nodiscard]] Bytes encode(std::span<const float> data,
                             const comp::Shape& shape) const override {
    Bytes out;
    ByteWriter w(out);
    comp::wire::write_header(w, 0x54534554, shape);
    Pcg32 rng(42);
    for (float v : data) {
      w.f32(v + offset_ + noise_ * static_cast<float>(rng.uniform(-1.0, 1.0)));
    }
    return out;
  }

  [[nodiscard]] std::vector<float> decode(
      std::span<const std::uint8_t> stream) const override {
    ByteReader r(stream);
    const comp::Shape shape = comp::wire::read_header(r, 0x54534554);
    std::vector<float> data(shape.count());
    for (auto& v : data) v = r.f32();
    return data;
  }

 private:
  float offset_;
  float noise_;
};

std::vector<climate::Field> gaussian_members(std::size_t members, std::size_t n,
                                             std::uint64_t seed) {
  std::vector<climate::Field> fields(members);
  for (std::size_t m = 0; m < members; ++m) {
    NormalSampler rng(hash_combine(seed, m));
    fields[m].name = "X";
    fields[m].shape = comp::Shape::d1(n);
    fields[m].data.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      fields[m].data[i] = static_cast<float>(100.0 + std::sin(i * 0.05) * 20.0 + rng.next());
    }
  }
  return fields;
}

class PvtTest : public ::testing::Test {
 protected:
  PvtTest() : stats_(gaussian_members(21, 800, 0xfeed)), verifier_(stats_) {}

  EnsembleStats stats_;
  PvtVerifier verifier_;
  std::vector<std::size_t> members_{1, 7, 15};
};

TEST_F(PvtTest, LosslessCodecPassesEverything) {
  const comp::DeflateCodec codec;
  const VariableVerdict v = verifier_.verify(codec, members_);
  EXPECT_TRUE(v.rho_pass);
  EXPECT_TRUE(v.rmsz_pass);
  EXPECT_TRUE(v.enmax_pass);
  EXPECT_TRUE(v.bias_pass);
  EXPECT_TRUE(v.all_pass());
  for (const MemberEvaluation& e : v.members) {
    EXPECT_DOUBLE_EQ(e.rmsz_diff, 0.0);
    EXPECT_DOUBLE_EQ(e.metrics.e_max, 0.0);
  }
}

TEST_F(PvtTest, NearLosslessCodecPasses) {
  const comp::FpzCodec codec(24);
  const VariableVerdict v = verifier_.verify(codec, members_);
  EXPECT_TRUE(v.all_pass()) << "rho=" << v.rho_pass << " rmsz=" << v.rmsz_pass
                            << " enmax=" << v.enmax_pass << " bias=" << v.bias_pass;
}

TEST_F(PvtTest, LargeUniformShiftFailsRmsz) {
  // Shift of 3 sigma: RMSZ of the reconstructed member jumps ~3.
  const DistortionCodec codec(3.0f);
  const VariableVerdict v = verifier_.verify(codec, members_, /*run_bias=*/false);
  EXPECT_FALSE(v.rmsz_pass);
}

TEST_F(PvtTest, SmallShiftPassesRmszButMatchesEquation8) {
  const DistortionCodec codec(0.02f);  // 2% of sigma
  const MemberEvaluation e = verifier_.evaluate_member(codec, 3);
  EXPECT_LE(e.rmsz_diff, 0.1);
  EXPECT_TRUE(e.rmsz_in_distribution);
}

TEST_F(PvtTest, HeavyNoiseFailsRhoTest) {
  const DistortionCodec codec(0.0f, 15.0f);
  const MemberEvaluation e = verifier_.evaluate_member(codec, 5);
  EXPECT_LT(e.metrics.pearson, kPearsonThreshold);
  EXPECT_FALSE(e.rho_pass);
}

TEST_F(PvtTest, EnmaxTestComparesToEnsembleRange) {
  // The ensemble's own E_nmax spread is O(sigma/range); a pointwise error
  // far beyond it must fail eq. (11).
  const DistortionCodec codec(0.0f, 8.0f);
  const MemberEvaluation e = verifier_.evaluate_member(codec, 2);
  EXPECT_GT(e.enmax_ratio, 0.1);
  EXPECT_FALSE(e.enmax_pass);
}

TEST_F(PvtTest, ReconstructedRmszHasOneScorePerMember) {
  const comp::FpzCodec codec(32);
  const auto scores = verifier_.reconstructed_rmsz(codec);
  ASSERT_EQ(scores.size(), stats_.member_count());
  for (std::size_t m = 0; m < scores.size(); ++m) {
    EXPECT_DOUBLE_EQ(scores[m], stats_.rmsz(m));  // lossless => identical
  }
}

TEST_F(PvtTest, BiasSkippedWhenRequested) {
  const comp::FpzCodec codec(24);
  const VariableVerdict v = verifier_.verify(codec, members_, /*run_bias=*/false);
  EXPECT_FALSE(v.bias_evaluated);
  EXPECT_TRUE(v.bias_pass);  // not evaluated: no veto
}

TEST_F(PvtTest, SteadyStateVerifyLoopIsAllocationFree) {
  // First verify warms the scratch arena to its high-water mark; every
  // subsequent verify on the same verifier must reuse it without growing
  // (the "arena.grow" trace counter stays at zero). This pins the
  // zero-allocation contract documented on PvtVerifier::verify().
  const comp::FpzCodec fpz24(24);
  const comp::DeflateCodec deflate;
  (void)verifier_.verify(fpz24, members_, /*run_bias=*/true);

  trace::set_enabled(true);
  trace::reset();
  (void)verifier_.verify(fpz24, members_, /*run_bias=*/true);
  (void)verifier_.verify(deflate, members_, /*run_bias=*/true);
  const auto counters = trace::counters();
  trace::set_enabled(false);

  const auto it = counters.find("arena.grow");
  EXPECT_TRUE(it == counters.end() || it->second == 0)
      << "steady-state verify grew the arena " << it->second << " time(s)";
}

TEST_F(PvtTest, BiasSweepReusesTestMemberScoresWithoutRecompressing) {
  // Each verify(run_bias=true) must round-trip every member exactly once:
  // the bias sweep reuses the test members' reconstructed RMSZ from
  // evaluate_member instead of compressing them a second time. Counted
  // two independent ways — the pvt.member_roundtrips trace counter and
  // the fpz.decode failpoint hit count (armed with prob:0.0 so it counts
  // without ever firing).
  const comp::FpzCodec codec(24);
  (void)verifier_.verify(codec, members_, /*run_bias=*/true);  // warm arena

  fail::reset();
  fail::ScopedFailpoint count_decodes("fpz.decode",
                                      fail::Trigger::with_probability(0.0));
  trace::set_enabled(true);
  trace::reset();
  (void)verifier_.verify(codec, members_, /*run_bias=*/true);
  const auto counters = trace::counters();
  trace::set_enabled(false);
  const std::uint64_t decodes = fail::hit_count("fpz.decode");
  fail::reset();

  const std::uint64_t member_count = stats_.member_count();  // 21
  const auto roundtrips = counters.find("pvt.member_roundtrips");
  ASSERT_NE(roundtrips, counters.end());
  EXPECT_EQ(roundtrips->second, member_count)
      << "expected one round trip per member; the old pipeline did "
      << member_count + members_.size() << " (test members compressed twice)";
  EXPECT_EQ(decodes, member_count);
  const auto reused = counters.find("pvt.bias_reused");
  ASSERT_NE(reused, counters.end());
  EXPECT_EQ(reused->second, members_.size());
}

TEST_F(PvtTest, BiasSweepWithReuseMatchesFullSweepBitForBit) {
  // The reused scores must be indistinguishable from recomputed ones:
  // verify()'s bias verdict equals the one derived from the standalone
  // full sweep (which round-trips every member itself).
  const comp::FpzCodec codec(16);
  const VariableVerdict v = verifier_.verify(codec, members_, /*run_bias=*/true);
  ASSERT_TRUE(v.bias_evaluated);

  const std::vector<double> full = verifier_.reconstructed_rmsz(codec);
  const BiasResult expected =
      bias_test(stats_.rmsz_distribution(), full,
                verifier_.thresholds().bias_confidence);
  EXPECT_EQ(v.bias.pass, expected.pass);
  EXPECT_EQ(v.bias.fit.slope, expected.fit.slope);          // bitwise: same
  EXPECT_EQ(v.bias.fit.intercept, expected.fit.intercept);  // inputs, same
  EXPECT_EQ(v.bias.slope_distance, expected.slope_distance);  // arithmetic
  // And the test members' sweep scores equal their evaluate_member scores.
  for (const MemberEvaluation& e : v.members) {
    EXPECT_EQ(full[e.member], e.rmsz_reconstructed) << "member " << e.member;
  }
}

TEST_F(PvtTest, RmszRangeAccessorMatchesDistributionScan) {
  const auto& dist = stats_.rmsz_distribution();
  const auto [lo, hi] = std::minmax_element(dist.begin(), dist.end());
  const auto [min, max] = stats_.rmsz_range();
  EXPECT_EQ(min, *lo);
  EXPECT_EQ(max, *hi);
  EXPECT_LE(min, max);
}

TEST(PickMembers, DeterministicSortedUnique) {
  const auto a = PvtVerifier::pick_members(3, 101, 9);
  const auto b = PvtVerifier::pick_members(3, 101, 9);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_LT(a[0], a[1]);
  EXPECT_LT(a[1], a[2]);
  EXPECT_LT(a[2], 101u);
}

TEST(PickMembers, DifferentSeedsDiffer) {
  EXPECT_NE(PvtVerifier::pick_members(3, 101, 1), PvtVerifier::pick_members(3, 101, 2));
}

TEST(PickMembers, CountEqualsPopulation) {
  const auto all = PvtVerifier::pick_members(5, 5, 3);
  EXPECT_EQ(all, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace cesm::core
