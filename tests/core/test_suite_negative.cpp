// Negative-path coverage for the suite/hybrid layer.

#include <gtest/gtest.h>

#include "core/hybrid.h"
#include "core/suite.h"

namespace cesm::core {
namespace {

SuiteResults tiny_results() {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{8, 24, 2};
  spec.members = 5;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 100;
  spec.latent.average_steps = 200;
  const climate::EnsembleGenerator ens(spec);
  SuiteConfig cfg;
  cfg.test_member_count = 1;
  cfg.run_bias = false;
  return run_suite(ens, cfg, {"U"});
}

TEST(SuiteNegative, UnknownVariantIndexThrows) {
  const SuiteResults r = tiny_results();
  EXPECT_THROW(r.variant_index("zfp"), InvalidArgument);
  EXPECT_EQ(r.variant_index("fpzip-24"), 4u);
}

TEST(SuiteNegative, UnknownVariableThrows) {
  const SuiteResults r = tiny_results();
  EXPECT_THROW(r.variable("NOPE"), InvalidArgument);
  EXPECT_EQ(r.variable("U").variable, "U");
}

TEST(SuiteNegative, UnknownHybridFamilyThrows) {
  const SuiteResults r = tiny_results();
  EXPECT_THROW(build_hybrid(r, "zstd"), InvalidArgument);
}

TEST(SuiteNegative, BiasSkippedVerdictsDoNotVeto) {
  const SuiteResults r = tiny_results();
  for (const VariableVerdict& v : r.variables[0].verdicts) {
    EXPECT_FALSE(v.bias_evaluated);
    EXPECT_TRUE(v.bias_pass);  // unevaluated => no veto
  }
}

TEST(SuiteNegative, UnknownVariableInRunSuiteThrows) {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{8, 24, 2};
  spec.members = 4;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 100;
  spec.latent.average_steps = 200;
  const climate::EnsembleGenerator ens(spec);
  EXPECT_THROW(run_suite(ens, SuiteConfig{}, {"NOT_A_VAR"}), InvalidArgument);
}

}  // namespace
}  // namespace cesm::core
