// Negative-path coverage for the suite/hybrid layer.

#include <gtest/gtest.h>

#include "core/hybrid.h"
#include "core/suite.h"

namespace cesm::core {
namespace {

SuiteResults tiny_results() {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{8, 24, 2};
  spec.members = 5;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 100;
  spec.latent.average_steps = 200;
  const climate::EnsembleGenerator ens(spec);
  SuiteConfig cfg;
  cfg.test_member_count = 1;
  cfg.run_bias = false;
  return run_suite(ens, cfg, {"U"});
}

TEST(SuiteNegative, UnknownVariantIndexThrows) {
  const SuiteResults r = tiny_results();
  EXPECT_THROW(r.variant_index("zfp"), InvalidArgument);
  EXPECT_EQ(r.variant_index("fpzip-24"), 4u);
}

TEST(SuiteNegative, UnknownVariableThrows) {
  const SuiteResults r = tiny_results();
  EXPECT_THROW(r.variable("NOPE"), InvalidArgument);
  EXPECT_EQ(r.variable("U").variable, "U");
}

TEST(SuiteNegative, UnknownHybridFamilyThrows) {
  const SuiteResults r = tiny_results();
  EXPECT_THROW(build_hybrid(r, "zstd"), InvalidArgument);
}

TEST(SuiteNegative, BiasSkippedVerdictsDoNotVeto) {
  const SuiteResults r = tiny_results();
  for (const VariableVerdict& v : r.variables[0].verdicts) {
    EXPECT_FALSE(v.bias_evaluated);
    EXPECT_TRUE(v.bias_pass);  // unevaluated => no veto
  }
}

// Hand-built results pin down tally()'s exact arithmetic without paying
// for an ensemble run.
SuiteResults hand_built_results() {
  SuiteResults r;
  r.variant_names = {"A", "B"};

  VariableVerdict pass;
  pass.rho_pass = pass.rmsz_pass = pass.enmax_pass = pass.bias_pass = true;
  VariableVerdict rho_only;
  rho_only.rho_pass = true;
  rho_only.rmsz_pass = rho_only.enmax_pass = rho_only.bias_pass = false;
  VariableVerdict all_fail;
  all_fail.rho_pass = all_fail.rmsz_pass = all_fail.enmax_pass = all_fail.bias_pass = false;

  VariableResult v1;
  v1.variable = "X";
  v1.verdicts = {pass, rho_only};  // variant A passes all, B only rho
  VariableResult v2;
  v2.variable = "Y";
  v2.verdicts = {pass, all_fail};
  r.variables = {v1, v2};
  return r;
}

TEST(SuiteTally, CountsExactlyPerVariant) {
  const SuiteResults r = hand_built_results();
  const std::vector<MethodTally> tally = r.tally();
  ASSERT_EQ(tally.size(), 2u);

  EXPECT_EQ(tally[0].codec, "A");
  EXPECT_EQ(tally[0].rho, 2u);
  EXPECT_EQ(tally[0].rmsz, 2u);
  EXPECT_EQ(tally[0].enmax, 2u);
  EXPECT_EQ(tally[0].bias, 2u);
  EXPECT_EQ(tally[0].all, 2u);

  EXPECT_EQ(tally[1].codec, "B");
  EXPECT_EQ(tally[1].rho, 1u);
  EXPECT_EQ(tally[1].rmsz, 0u);
  EXPECT_EQ(tally[1].enmax, 0u);
  EXPECT_EQ(tally[1].bias, 0u);
  EXPECT_EQ(tally[1].all, 0u);
}

TEST(SuiteTally, EmptyResultsTallyToNothing) {
  SuiteResults r;
  EXPECT_TRUE(r.tally().empty());
  EXPECT_THROW(r.variant_index("A"), InvalidArgument);
  EXPECT_THROW(r.variable("X"), InvalidArgument);
}

TEST(SuiteTally, VariantIndexAndVariableLookUpHandBuiltEntries) {
  const SuiteResults r = hand_built_results();
  EXPECT_EQ(r.variant_index("A"), 0u);
  EXPECT_EQ(r.variant_index("B"), 1u);
  EXPECT_THROW(r.variant_index("a"), InvalidArgument);  // lookups are exact
  EXPECT_EQ(r.variable("Y").variable, "Y");
  EXPECT_THROW(r.variable("Z"), InvalidArgument);
}

TEST(SuiteNegative, UnknownVariableInRunSuiteThrows) {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{8, 24, 2};
  spec.members = 4;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 100;
  spec.latent.average_steps = 200;
  const climate::EnsembleGenerator ens(spec);
  EXPECT_THROW(run_suite(ens, SuiteConfig{}, {"NOT_A_VAR"}), InvalidArgument);
}

TEST(SuiteNegative, ZeroTestMembersThrowsInvalidArgument) {
  // Regression: test_member_count == 0 used to sail through pick_members
  // and dereference test_members.front() on an empty vector.
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{8, 24, 2};
  spec.members = 4;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 100;
  spec.latent.average_steps = 200;
  const climate::EnsembleGenerator ens(spec);
  SuiteConfig cfg;
  cfg.test_member_count = 0;
  cfg.run_bias = false;
  EXPECT_THROW(run_variable(ens, ens.variable("U"), cfg), InvalidArgument);
  EXPECT_THROW(run_suite(ens, cfg, {"U"}), InvalidArgument);
}

TEST(SuiteNegative, VariantNamesMatchRecordedVerdicts) {
  // variant_names must be derived from the verdicts actually recorded
  // (tally() pairs variant_names[v] with verdicts[v] by index), and the
  // order must remain the paper's canonical variant order.
  const SuiteResults r = tiny_results();
  ASSERT_FALSE(r.variables.empty());
  for (const VariableResult& var : r.variables) {
    ASSERT_EQ(var.verdicts.size(), r.variant_names.size());
    for (std::size_t v = 0; v < var.verdicts.size(); ++v) {
      EXPECT_EQ(var.verdicts[v].codec, r.variant_names[v]);
    }
  }
  const std::vector<std::string> expected = {
      "GRIB2",    "APAX-2",  "APAX-4",  "APAX-5", "fpzip-24",
      "fpzip-16", "ISA-0.1", "ISA-0.5", "ISA-1.0"};
  EXPECT_EQ(r.variant_names, expected);
}

}  // namespace
}  // namespace cesm::core
