#include "core/report.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace cesm::core {
namespace {

TEST(FormatSci, PaperStyleExponents) {
  EXPECT_EQ(format_sci(3.6e-4), "3.6e-4");
  EXPECT_EQ(format_sci(5.8e-7), "5.8e-7");
  EXPECT_EQ(format_sci(1.22e1, 3), "1.22e1");
  EXPECT_EQ(format_sci(-2.56e1, 3), "-2.56e1");
  EXPECT_EQ(format_sci(0.0), "0");
}

TEST(FormatFixed, Digits) {
  EXPECT_EQ(format_fixed(0.5, 2), "0.50");
  EXPECT_EQ(format_fixed(1.0 / 3.0, 3), "0.333");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"Variable", "CR"});
  t.add_row({"U", ".50"});
  t.add_row({"FSDSC", ".25"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Variable"), std::string::npos);
  EXPECT_NE(s.find("FSDSC"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
}

TEST(RenderBoxplot, ContainsLabelsAndQuartiles) {
  std::vector<LabelledBox> boxes;
  LabelledBox b;
  b.label = "APAX-2";
  b.box.lo = 1e-8;
  b.box.q1 = 1e-7;
  b.box.median = 1e-6;
  b.box.q3 = 1e-5;
  b.box.hi = 1e-4;
  b.box.count = 170;
  boxes.push_back(b);
  const std::string s = render_boxplot_log(boxes);
  EXPECT_NE(s.find("APAX-2"), std::string::npos);
  EXPECT_NE(s.find("M"), std::string::npos);  // median marker
  EXPECT_NE(s.find("1.0e-6"), std::string::npos);
}

TEST(RenderHistogram, ShowsBarsAndMarkers) {
  stats::Histogram h(0.0, 2.0, 4);
  for (double v : {0.9, 1.0, 1.1, 1.2, 0.4}) h.add(v);
  const std::string s = render_histogram(h, {Marker{"fpzip-24", 1.05}});
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("fpzip-24"), std::string::npos);
}

TEST(RenderBiasRects, MarksPassAndFail) {
  std::vector<LabelledRect> rects;
  rects.push_back(LabelledRect{"good", {0.99, 1.01, -0.01, 0.01}, true});
  rects.push_back(LabelledRect{"bad", {0.8, 0.9, 0.1, 0.2}, false});
  const std::string s = render_bias_rects(rects);
  EXPECT_NE(s.find("pass"), std::string::npos);
  EXPECT_NE(s.find("FAIL"), std::string::npos);
  EXPECT_NE(s.find("good"), std::string::npos);
}

}  // namespace
}  // namespace cesm::core
