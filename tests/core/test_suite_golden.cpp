// Golden-file regression for table6_suite_results.csv: a quick suite run
// compared cell-by-cell against tests/golden/suite_quick.csv, so metric
// drift (a changed verdict, a shifted CR, a retuned decimal scale) is
// caught by ctest instead of by eyeballing the published table.
//
// Regenerate after an *intended* metric change with:
//   CESM_UPDATE_GOLDEN=1 ./cesmcomp_tests --gtest_filter='SuiteGolden.*'
// and commit the diff.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "climate/ensemble.h"
#include "core/export.h"
#include "core/suite.h"

namespace cesm::core {
namespace {

#ifndef CESMCOMP_SOURCE_DIR
#error "CESMCOMP_SOURCE_DIR must be defined by the test build"
#endif

std::string golden_path() {
  return std::string(CESMCOMP_SOURCE_DIR) + "/tests/golden/suite_quick.csv";
}

/// The quick, fully deterministic suite slice the golden pins down.
std::string quick_suite_csv() {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{12, 18, 3};
  spec.members = 9;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 200;
  spec.latent.average_steps = 400;
  const climate::EnsembleGenerator ensemble(spec);

  SuiteConfig cfg;
  cfg.test_member_count = 2;
  cfg.grib_max_extra_digits = 3;
  const SuiteResults results = run_suite(ensemble, cfg, {"U", "FSDSC", "CCN3"});
  return suite_results_csv(results);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

bool parse_number(const std::string& cell, double& out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  out = std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size();
}

/// Tolerance-aware CSV comparison: numeric cells must agree to 1e-5
/// relative (1e-9 absolute floor, absorbing cross-platform libm jitter);
/// everything else — headers, names, pass/fail booleans, integer scales —
/// must match exactly.
void expect_csv_near(const std::string& golden, const std::string& actual) {
  const auto golden_lines = split(golden, '\n');
  const auto actual_lines = split(actual, '\n');
  ASSERT_EQ(actual_lines.size(), golden_lines.size()) << "row count drifted";
  for (std::size_t row = 0; row < golden_lines.size(); ++row) {
    const auto want = split(golden_lines[row], ',');
    const auto got = split(actual_lines[row], ',');
    ASSERT_EQ(got.size(), want.size()) << "column count drifted at row " << row;
    for (std::size_t col = 0; col < want.size(); ++col) {
      double w = 0.0, g = 0.0;
      if (parse_number(want[col], w) && parse_number(got[col], g)) {
        // Degenerate metrics (e.g. pearson of a zero-variance field) are
        // NaN on both sides; that's a match, not drift.
        if (std::isnan(w) && std::isnan(g)) continue;
        const double tol = 1e-9 + 1e-5 * std::max(std::fabs(w), std::fabs(g));
        EXPECT_NEAR(g, w, tol) << "row " << row << " col " << col << " ("
                               << golden_lines[0] << ")";
      } else {
        EXPECT_EQ(got[col], want[col]) << "row " << row << " col " << col;
      }
    }
  }
}

TEST(SuiteGolden, QuickSuiteMatchesCheckedInCsv) {
  const std::string actual = quick_suite_csv();
  if (std::getenv("CESM_UPDATE_GOLDEN") != nullptr) {
    write_text_file(golden_path(), actual);
    GTEST_SKIP() << "golden regenerated at " << golden_path() << " — commit the diff";
  }
  std::ifstream f(golden_path());
  ASSERT_TRUE(f) << "missing golden " << golden_path()
                 << " (generate with CESM_UPDATE_GOLDEN=1)";
  std::ostringstream buf;
  buf << f.rdbuf();
  expect_csv_near(buf.str(), actual);
}

}  // namespace
}  // namespace cesm::core
