// End-to-end integration: the full §4–§5 pipeline on a miniature ensemble
// — generate members, write/read a history file, compress with the paper
// variants, run all four acceptance tests, and check the paper-shape
// qualitative outcomes.

#include <gtest/gtest.h>

#include <filesystem>

#include "climate/ensemble.h"
#include "climate/history.h"
#include "compress/grib2/grib2.h"
#include "compress/variants.h"
#include "core/hybrid.h"
#include "core/suite.h"

namespace cesm {
namespace {

climate::EnsembleSpec mini_spec() {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{16, 24, 4};
  spec.members = 11;
  spec.latent.k = 64;
  spec.latent.spinup_steps = 300;
  spec.latent.average_steps = 600;
  return spec;
}

TEST(EndToEnd, HistoryFileCompressVerifyPipeline) {
  const climate::EnsembleGenerator ens(mini_spec());

  // 1. Write member 2's history file to disk and read it back.
  const std::string path =
      (std::filesystem::temp_directory_path() / "cesmcomp_e2e.cnc").string();
  make_history(ens, 2, {"U", "FSDSC", "Z3", "CCN3"}, ncio::Storage::kDeflate)
      .write_file(path);
  const ncio::Dataset ds = ncio::Dataset::read_file(path);
  std::remove(path.c_str());

  // 2. The history data must match the generator bit-for-bit (deflate is
  // lossless).
  const climate::Field u = climate::field_from_history(ds, "U");
  EXPECT_EQ(u.data, ens.field("U", 2).data);

  // 3. Compress the history field with every paper variant and check the
  // reconstruction against the §4.2 metrics.
  for (const comp::CodecPtr& codec : comp::paper_variants(5)) {
    const comp::RoundTrip rt = comp::round_trip(*codec, u.data, u.shape);
    const core::ErrorMetrics m = core::compare_fields(u, rt.reconstructed);
    EXPECT_GT(m.pearson, 0.99) << codec->name();
    EXPECT_LT(m.nrmse, 0.05) << codec->name();
  }
}

TEST(EndToEnd, SuiteReproducesPaperShapeOnSpotlightVariables) {
  const climate::EnsembleGenerator ens(mini_spec());
  core::SuiteConfig cfg;
  cfg.test_member_count = 2;
  const core::SuiteResults results =
      run_suite(ens, cfg, {"U", "FSDSC", "Z3", "CCN3"});

  // Paper shape 1: U is benign — the gentle variant of every family
  // passes its RMSZ test (the most aggressive variants legitimately fail
  // some variables even in the paper's Table 6).
  const core::VariableResult& u = results.variable("U");
  for (const char* gentle : {"GRIB2", "APAX-2", "fpzip-24", "ISA-0.1"}) {
    EXPECT_TRUE(u.verdicts[results.variant_index(gentle)].rmsz_pass) << gentle << " on U";
  }

  // Paper shape 2: GRIB2 struggles on the huge-range CCN3 (§5.3) — either
  // no decimal scale passes, or preserving the tiny values forces a much
  // worse compression ratio than on the benign FSDSC.
  const auto extra_digits = [&](const core::VariableResult& var) {
    const core::Characterization& c = var.character;
    const int d0 = comp::choose_decimal_scale(c.summary.min, c.summary.max, 4);
    return var.grib_decimal_scale - d0;
  };
  const core::VariableResult& ccn3 = results.variable("CCN3");
  const core::VariableResult& fsdsc = results.variable("FSDSC");
  const bool grib_worse_on_ccn3 =
      !ccn3.grib_tuning_passed || extra_digits(ccn3) > extra_digits(fsdsc);
  EXPECT_TRUE(grib_worse_on_ccn3)
      << "ccn3: tuned=" << ccn3.grib_tuning_passed << " extra=" << extra_digits(ccn3)
      << " | fsdsc: tuned=" << fsdsc.grib_tuning_passed
      << " extra=" << extra_digits(fsdsc);

  // Paper shape 3: APAX-2 (CR .5) passes everywhere it is tested here.
  const std::size_t apax2 = results.variant_index("APAX-2");
  for (const core::VariableResult& var : results.variables) {
    EXPECT_TRUE(var.verdicts[apax2].rho_pass) << var.variable;
  }

  // Paper shape 4: hybrids cover all variables and fpzip's average CR is
  // competitive (Table 7 has fpzip best overall).
  const auto hybrids = core::build_all_hybrids(results);
  const auto& nc = hybrids.back();
  EXPECT_EQ(nc.family, "NetCDF-4");
  for (const auto& h : hybrids) {
    EXPECT_LE(h.avg_cr, 1.05);
  }
}

TEST(EndToEnd, NewMachineMembersVerifyLikePaperPortingUseCase) {
  // The original PVT use case: members beyond the base ensemble act as
  // "runs on the new machine"; their RMSZ must fall inside the base
  // distribution (the architecture change is not climate-changing).
  const climate::EnsembleGenerator ens(mini_spec());
  const core::EnsembleStats stats(ens.ensemble_fields(ens.variable("T")));

  for (std::uint32_t new_member : {20u, 21u, 22u}) {
    const climate::Field f = ens.field("T", new_member);
    // Score the new run against each sub-ensemble; it should look like
    // any other member for at least one exclusion (use member 0's).
    const double rmsz = stats.rmsz_of(0, f.data);
    const auto& dist = stats.rmsz_distribution();
    const double lo = *std::min_element(dist.begin(), dist.end());
    const double hi = *std::max_element(dist.begin(), dist.end());
    EXPECT_GT(rmsz, lo * 0.5);
    EXPECT_LT(rmsz, hi * 2.0);
  }
}

}  // namespace
}  // namespace cesm
