// Every failpoint site compiled into the library, fired through its real
// production path — plus the suite-robustness acceptance scenarios: a
// poisoned decode must yield a codec-error verdict with lossless
// fallback, never a dead 170-variable sweep.
//
// The per-site coverage is a meta-test: the parameterized suite below is
// instantiated from fail::all_sites() itself, so adding a CESM_FAILPOINT
// to the library without adding a scenario here fails the new site's test
// with "no scenario fires failpoint site".

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "climate/ensemble.h"
#include "compress/apax/apax.h"
#include "compress/chunked.h"
#include "compress/deflate/deflate.h"
#include "compress/fpc/fpc.h"
#include "compress/fpz/fpz.h"
#include "compress/grib2/grib2.h"
#include "compress/isabela/isabela.h"
#include "compress/isobar.h"
#include "compress/mafisc.h"
#include "compress/prep.h"
#include "compress/special.h"
#include "core/ensemble_cache.h"
#include "core/export.h"
#include "core/suite.h"
#include "ncio/chunkstore.h"
#include "ncio/dataset.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/generators.h"
#include "util/failpoint.h"
#include "util/scheduler.h"

namespace cesm {
namespace {

climate::EnsembleSpec tiny_spec() {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{12, 18, 3};
  spec.members = 9;
  spec.latent.k = 48;
  spec.latent.spinup_steps = 200;
  spec.latent.average_steps = 400;
  return spec;
}

core::SuiteConfig fast_config() {
  core::SuiteConfig cfg;
  cfg.test_member_count = 2;
  cfg.grib_max_extra_digits = 3;
  cfg.run_bias = false;  // the robustness machinery is what's under test
  return cfg;
}

const climate::EnsembleGenerator& shared_ensemble() {
  static const climate::EnsembleGenerator ens(tiny_spec());
  return ens;
}

/// Round-trip a smooth field through `codec`; decode is where the armed
/// site lives, so the InjectedFault surfaces here.
void decode_roundtrip(const comp::Codec& codec) {
  const auto data = testgen::smooth_field(4096, 0xFA17ull);
  const Bytes stream = codec.encode(data, comp::Shape::d2(4, 1024));
  (void)codec.decode(stream);
}

ncio::Dataset small_dataset() {
  ncio::Dataset ds;
  const auto ncol = ds.add_dimension("ncol", 256);
  ncio::Variable v;
  v.name = "T";
  v.dim_ids = {ncol};
  v.f32 = testgen::smooth_field(256, 0xD5ull);
  ds.add_variable(std::move(v));
  return ds;
}

/// site name -> a call into the library that reaches that CESM_FAILPOINT
/// through its production path. Scenarios may let the InjectedFault
/// escape (callers assert a clean cesm::Error) or exercise a layer that
/// absorbs it into a recorded verdict; either way the site must fire.
const std::map<std::string, std::function<void()>>& site_scenarios() {
  static const auto* scenarios = new std::map<std::string, std::function<void()>>{
      {"apax.decode",
       [] { decode_roundtrip(comp::ApaxCodec(comp::ApaxCodec::fixed_rate(2))); }},
      {"cache.disk_read",
       [] {
         // A disk-tier cache read with entry validation. The injected
         // fault is absorbed by the corrupt-entry recovery path (count,
         // delete, regenerate), so the scenario completes either way —
         // the site must still fire.
         const std::filesystem::path dir =
             std::filesystem::path(::testing::TempDir()) / "cesm_failpoint_cache";
         util::CacheConfig cfg;
         cfg.disk_dir = dir.string();
         core::EnsembleCache& cache = core::EnsembleCache::global();
         const auto& ens = shared_ensemble();
         cache.configure(cfg);
         (void)cache.stats(ens, ens.variable("U"));  // build + persist
         cache.configure(cfg);                       // drop the memory tier
         (void)cache.stats(ens, ens.variable("U"));  // forces the disk read
         cache.configure(util::CacheConfig::from_env());
         std::filesystem::remove_all(dir);
       }},
      {"chunked.decode",
       [] {
         decode_roundtrip(
             comp::ChunkedCodec(std::make_shared<comp::DeflateCodec>(), 1024));
       }},
      {"comp.prep_plan",
       [] {
         // Absorbed by the plan store: a fault during plan build falls
         // back to the direct encode, so the scenario completes and the
         // stream must still come out byte-exact.
         comp::PlanStore plans(1 << 20);
         const comp::FpzCodec fpz(24);
         const auto data = testgen::smooth_field(4096, 0xFA17ull);
         const Bytes direct = fpz.encode(data, comp::Shape::d2(4, 1024));
         const Bytes planned = plans.encode(fpz, data, comp::Shape::d2(4, 1024), 0);
         if (planned != direct) {
           throw Error("prep-plan stream diverged from direct encode");
         }
       }},
      {"deflate.decode", [] { decode_roundtrip(comp::DeflateCodec()); }},
      {"fpc.decode", [] { decode_roundtrip(comp::FpcCodec()); }},
      {"fpz.decode", [] { decode_roundtrip(comp::FpzCodec(24)); }},
      {"grib2.decode", [] { decode_roundtrip(comp::Grib2Codec(3)); }},
      {"isabela.decode", [] { decode_roundtrip(comp::IsabelaCodec(0.5)); }},
      {"isobar.decode", [] { decode_roundtrip(comp::IsobarCodec()); }},
      {"mafisc.decode", [] { decode_roundtrip(comp::MafiscCodec()); }},
      {"special.decode",
       [] {
         decode_roundtrip(
             comp::SpecialValueCodec(std::make_shared<comp::DeflateCodec>(), 1.0e20f));
       }},
      {"ncio.write", [] { (void)small_dataset().serialize(); }},
      {"ncio.read",
       [] {
         const Bytes bytes = small_dataset().serialize();
         (void)ncio::Dataset::deserialize(bytes);
       }},
      {"ncio.write_file",
       [] { small_dataset().write_file("/tmp/cesm_failpoint_site_test.cnc"); }},
      {"ncio.read_file",
       [] {
         const std::string path = "/tmp/cesm_failpoint_site_test.cnc";
         small_dataset().write_file(path);
         (void)ncio::Dataset::read_file(path);
         std::remove(path.c_str());
       }},
      {"ncio.read_chunk",
       [] {
         const std::filesystem::path path =
             std::filesystem::path(::testing::TempDir()) / "cesm_failpoint_chunkstore.cnk";
         const std::vector<std::size_t> offsets = {0, 128, 256};
         ncio::ChunkStoreWriter writer(path.string(), "T", comp::Shape::d2(2, 128),
                                       std::nullopt, 1, offsets);
         const auto data = testgen::smooth_field(256, 0xC4ull);
         writer.write_chunk(0, 0, std::span(data).subspan(0, 128));
         writer.write_chunk(0, 1, std::span(data).subspan(128, 128));
         writer.finish();
         ncio::ChunkStoreReader reader(path.string());
         std::vector<float> out(128);
         reader.read_chunk(0, 0, out);
         std::filesystem::remove(path);
       }},
      {"sched.task",
       [] {
         // Task bodies only run through the scheduler when it has
         // workers; the 1-CPU serial fast path never spawns tasks.
         ScopedScheduler two(2);
         std::atomic<std::size_t> sum{0};
         parallel_for(0, 2048, [&](std::size_t i) {
           sum.fetch_add(i, std::memory_order_relaxed);
         });
       }},
      {"serve.request",
       [] {
         // Full wire round-trip through a live daemon: the armed fault is
         // converted to a typed kProcessingFailed error response, which
         // the client rethrows as a RemoteError (a cesm::Error) — the
         // daemon itself survives.
         const std::filesystem::path sock =
             std::filesystem::path(::testing::TempDir()) / "cesm_failpoint_serve.sock";
         serve::ServerConfig cfg;
         cfg.unix_path = sock.string();
         serve::Server server(cfg);
         server.start();
         serve::VerifyRequest request;
         request.ensemble = tiny_spec();
         request.variable = "U";
         request.config = fast_config();
         serve::Client client = serve::Client::connect_unix(sock.string());
         (void)client.verify_raw(request);
         server.stop();
       }},
      {"suite.variable",
       [] {
         const auto& ens = shared_ensemble();
         (void)core::run_variable(ens, ens.variable("U"), fast_config());
       }},
      {"suite.verify_variant",
       [] {
         // Absorbed by the fallback policy: run_variable completes and
         // records a codec-error verdict instead of throwing.
         const auto& ens = shared_ensemble();
         (void)core::run_variable(ens, ens.variable("U"), fast_config());
       }},
  };
  return *scenarios;
}

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class FailpointSite : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { fail::reset(); }
  void TearDown() override { fail::reset(); }
};

// The meta-test: one instance per *registered* site. A site with no
// scenario fails its instance; a scenario whose path no longer reaches
// the site fails the fire-count assertion.
TEST_P(FailpointSite, IsFiredThroughItsProductionPath) {
  const std::string& site = GetParam();
  const auto& scenarios = site_scenarios();
  const auto it = scenarios.find(site);
  ASSERT_NE(it, scenarios.end())
      << "no scenario fires failpoint site '" << site
      << "' — add one to site_scenarios() in " << __FILE__;

  // Unarmed dry run: the scenario must complete cleanly on its own.
  ASSERT_NO_THROW(it->second()) << site << " scenario fails without injection";

  fail::ScopedFailpoint fp(site, fail::Trigger::once());
  try {
    it->second();
  } catch (const Error&) {
    // A clean library error (usually the InjectedFault itself) is the
    // expected surface; anything else (crash, leak, foreign exception)
    // fails the test / the sanitizer presets.
  }
  EXPECT_GE(fail::fire_count(site), 1u)
      << "scenario for '" << site << "' no longer reaches its CESM_FAILPOINT";
}

// Stale-scenario guard: every scenario key must name a registered site.
TEST(FailpointRegistry, ScenariosMatchRegisteredSites) {
  const auto sites = fail::all_sites();
  for (const auto& [name, fn] : site_scenarios()) {
    EXPECT_TRUE(fail::is_registered(name))
        << "scenario '" << name << "' does not match any registered failpoint";
  }
  EXPECT_EQ(site_scenarios().size(), sites.size());
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredSites, FailpointSite,
                         ::testing::ValuesIn(fail::all_sites()),
                         [](const auto& info) { return sanitize(info.param); });

// ---------------------------------------------------------------------------
// Acceptance: run_suite survives injected faults (ISSUE 4 criteria).
// ---------------------------------------------------------------------------

class SuiteRobustness : public ::testing::Test {
 protected:
  void SetUp() override { fail::reset(); }
  void TearDown() override { fail::reset(); }
};

TEST_F(SuiteRobustness, LossyDecodeFailureGetsCodecErrorVerdictWithLosslessFallback) {
  fail::ScopedFailpoint fp("fpz.decode", fail::Trigger::once());
  const core::SuiteResults results =
      core::run_suite(shared_ensemble(), fast_config(), {"U", "FSDSC"});

  // The whole sweep completed: both variables, all nine verdicts each.
  ASSERT_EQ(results.variables.size(), 2u);
  EXPECT_EQ(results.failed_variable_count(), 0u);
  ASSERT_EQ(results.variant_names.size(), 9u);
  EXPECT_EQ(fail::fire_count("fpz.decode"), 1u);

  // Exactly one verdict took the hit; it is a codec-error with the §5
  // fpzip-family fallback (fpzip-32), and it never counts as a pass.
  std::size_t codec_errors = 0;
  for (const core::VariableResult& var : results.variables) {
    ASSERT_EQ(var.verdicts.size(), 9u);
    for (const core::VariableVerdict& v : var.verdicts) {
      if (!v.codec_error) continue;
      ++codec_errors;
      EXPECT_EQ(v.codec, "fpzip-24");
      EXPECT_EQ(v.fallback_codec, "fpzip-32");
      EXPECT_FALSE(v.all_pass());
      EXPECT_NE(v.error_message.find("fpz.decode"), std::string::npos);
      // The fallback actually ran: member metrics were re-scored
      // (losslessly, so the correlation is exact).
      ASSERT_EQ(v.members.size(), 2u);
      for (const core::MemberEvaluation& m : v.members) {
        EXPECT_DOUBLE_EQ(m.metrics.pearson, 1.0);
      }
    }
  }
  EXPECT_EQ(codec_errors, 1u);

  // The table layer reports the event instead of choking on it: the
  // codec_error flag, the fallback codec, and the thrown message all
  // appear in the row's trailing columns.
  const std::string csv = core::suite_results_csv(results);
  EXPECT_NE(csv.find(",1,fpzip-32,injected fault at failpoint fpz.decode\n"),
            std::string::npos);
  EXPECT_EQ(results.tally().size(), 9u);
}

TEST_F(SuiteRobustness, TransientVariableFailureIsRetriedToSuccess) {
  fail::ScopedFailpoint fp("suite.variable", fail::Trigger::once());
  const core::SuiteResults results =
      core::run_suite(shared_ensemble(), fast_config(), {"U", "FSDSC"});
  EXPECT_EQ(fail::fire_count("suite.variable"), 1u);
  EXPECT_EQ(results.failed_variable_count(), 0u);
  for (const core::VariableResult& var : results.variables) {
    EXPECT_EQ(var.verdicts.size(), 9u);
    EXPECT_FALSE(var.processing_failed);
  }
}

TEST_F(SuiteRobustness, ExhaustedRetriesQuarantineTheVariableNotTheSuite) {
  fail::ScopedFailpoint fp("suite.variable", fail::Trigger::always());
  const core::SuiteResults results =
      core::run_suite(shared_ensemble(), fast_config(), {"U", "FSDSC"});
  EXPECT_EQ(results.failed_variable_count(), 2u);
  ASSERT_EQ(results.variables.size(), 2u);
  for (const core::VariableResult& var : results.variables) {
    EXPECT_TRUE(var.processing_failed);
    EXPECT_FALSE(var.error_message.empty());
    EXPECT_TRUE(var.verdicts.empty());
  }
  // Aggregation and export still work with every variable quarantined.
  EXPECT_EQ(results.variant_names.size(), 9u);
  for (const core::MethodTally& row : results.tally()) EXPECT_EQ(row.all, 0u);
  const std::string csv = core::suite_results_csv(results);
  EXPECT_EQ(csv.find("\nU,"), std::string::npos);
}

TEST_F(SuiteRobustness, ContinueOnErrorOffRestoresThrowingBehavior) {
  fail::ScopedFailpoint fp("suite.variable", fail::Trigger::always());
  core::SuiteConfig cfg = fast_config();
  cfg.continue_on_variable_error = false;
  EXPECT_THROW(core::run_suite(shared_ensemble(), cfg, {"U"}), fail::InjectedFault);
}

TEST_F(SuiteRobustness, PrepPlanFaultFallsBackToDirectEncodeNotCodecError) {
  // Plans are pure memoization: a fault at every plan build just forces
  // the direct encode path, so the sweep completes with zero codec-error
  // verdicts — unlike a decode fault, nothing the suite measures is lost.
  fail::ScopedFailpoint fp("comp.prep_plan", fail::Trigger::always());
  const core::SuiteResults results =
      core::run_suite(shared_ensemble(), fast_config(), {"U"});
  EXPECT_GE(fail::fire_count("comp.prep_plan"), 1u);
  ASSERT_EQ(results.variables.size(), 1u);
  EXPECT_EQ(results.failed_variable_count(), 0u);
  ASSERT_EQ(results.variables[0].verdicts.size(), 9u);
  for (const core::VariableVerdict& v : results.variables[0].verdicts) {
    EXPECT_FALSE(v.codec_error) << v.codec;
  }
}

TEST_F(SuiteRobustness, FallbackDisabledStillRecordsCodecError) {
  // APAX is not touched by characterization or GRIB tuning, so the first
  // armed hit lands in the APAX-2 verify.
  fail::ScopedFailpoint fp("apax.decode", fail::Trigger::nth(1));
  core::SuiteConfig cfg = fast_config();
  cfg.lossless_fallback = false;
  const core::SuiteResults results = core::run_suite(shared_ensemble(), cfg, {"U"});
  ASSERT_EQ(results.variables.size(), 1u);
  std::size_t codec_errors = 0;
  for (const core::VariableVerdict& v : results.variables[0].verdicts) {
    if (v.codec_error) {
      ++codec_errors;
      EXPECT_EQ(v.codec, "APAX-2");
      EXPECT_TRUE(v.fallback_codec.empty());
      EXPECT_TRUE(v.members.empty());
      EXPECT_FALSE(v.all_pass());
    }
  }
  EXPECT_EQ(codec_errors, 1u);
}

}  // namespace
}  // namespace cesm
