// Bitwise-equality suite for the streaming kernel front ends: for ANY
// partition of the input — aligned chunks, chunk sizes that do not divide
// the array, 1-element tails, single-element feeds — the finished stream
// accumulator must equal the one-shot kernel result bit for bit, because
// the out-of-core pipeline's verdict parity rests on exactly this
// property. Mask patterns deliberately span partition boundaries.

#include "stats/kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/rng.h"

namespace cesm::stats::kernels {
namespace {

constexpr double kFloorRel = 3e-7;

std::vector<float> random_field(std::size_t n, std::uint64_t seed, float offset) {
  Pcg32 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = offset + static_cast<float>(rng.uniform() * 40.0 - 20.0);
  }
  return v;
}

/// Mask with multi-element invalid runs placed to straddle both kBlock
/// boundaries and the test partitions (runs start at pseudo-random offsets
/// and extend 1..97 elements).
std::vector<std::uint8_t> boundary_mask(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> mask(n, 1);
  Pcg32 rng(seed);
  for (std::size_t start = 0; start < n;) {
    start += rng.bounded(2 * static_cast<std::uint32_t>(kBlock));
    const std::size_t len = 1 + rng.bounded(97);
    for (std::size_t i = start; i < std::min(n, start + len); ++i) mask[i] = 0;
    start += len;
  }
  return mask;
}

/// Cover: aligned, non-dividing, 1-element tails, tiny feeds, whole-array.
const std::size_t kPartitions[] = {1, 7, 1000, kBlock, kBlock + 1, 100000};

template <typename Fn>
void for_each_piece(std::size_t n, std::size_t piece, const Fn& fn) {
  for (std::size_t lo = 0; lo < n; lo += piece) {
    fn(lo, std::min(n, lo + piece) - lo);
  }
}

bool bits_equal(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

class StreamKernels : public ::testing::TestWithParam<bool> {};

TEST_P(StreamKernels, MomentStreamMatchesOneShotBitwise) {
  const bool masked = GetParam();
  const std::size_t n = 2 * kBlock + 1234;  // non-multiple of kBlock
  const std::vector<float> data = random_field(n, 0xa11ce5, 500.0f);
  const std::vector<std::uint8_t> mask =
      masked ? boundary_mask(n, 0xfeed) : std::vector<std::uint8_t>{};
  const MomentAccum oneshot = moments(data, mask);
  for (std::size_t piece : kPartitions) {
    MomentStream stream(masked);
    for_each_piece(n, piece, [&](std::size_t lo, std::size_t len) {
      stream.feed(std::span(data).subspan(lo, len),
                  masked ? std::span<const std::uint8_t>(mask).subspan(lo, len)
                         : std::span<const std::uint8_t>{});
    });
    const MomentAccum got = stream.finish();
    EXPECT_TRUE(bits_equal(got.min, oneshot.min)) << "piece=" << piece;
    EXPECT_TRUE(bits_equal(got.max, oneshot.max)) << "piece=" << piece;
    EXPECT_TRUE(bits_equal(got.mean, oneshot.mean)) << "piece=" << piece;
    EXPECT_TRUE(bits_equal(got.m2, oneshot.m2)) << "piece=" << piece;
    EXPECT_EQ(got.count, oneshot.count) << "piece=" << piece;
  }
}

TEST_P(StreamKernels, CoMomentStreamMatchesOneShotBitwise) {
  const bool masked = GetParam();
  const std::size_t n = 3 * kBlock - 17;
  const std::vector<float> x = random_field(n, 1, -3.0f);
  std::vector<float> y = x;
  Pcg32 rng(2);
  for (float& v : y) v += static_cast<float>(rng.uniform() * 0.01);
  const std::vector<std::uint8_t> mask =
      masked ? boundary_mask(n, 0xbead) : std::vector<std::uint8_t>{};
  const CoMomentAccum oneshot = comoments(x, y, mask);
  for (std::size_t piece : kPartitions) {
    CoMomentStream stream(masked);
    for_each_piece(n, piece, [&](std::size_t lo, std::size_t len) {
      stream.feed(std::span(x).subspan(lo, len), std::span(y).subspan(lo, len),
                  masked ? std::span<const std::uint8_t>(mask).subspan(lo, len)
                         : std::span<const std::uint8_t>{});
    });
    const CoMomentAccum got = stream.finish();
    EXPECT_TRUE(bits_equal(got.mean_x, oneshot.mean_x)) << "piece=" << piece;
    EXPECT_TRUE(bits_equal(got.mean_y, oneshot.mean_y)) << "piece=" << piece;
    EXPECT_TRUE(bits_equal(got.sxx, oneshot.sxx)) << "piece=" << piece;
    EXPECT_TRUE(bits_equal(got.syy, oneshot.syy)) << "piece=" << piece;
    EXPECT_TRUE(bits_equal(got.sxy, oneshot.sxy)) << "piece=" << piece;
    EXPECT_EQ(got.count, oneshot.count) << "piece=" << piece;
  }
}

TEST_P(StreamKernels, ErrorNormStreamMatchesOneShotBitwise) {
  const bool masked = GetParam();
  const std::size_t n = 2 * kBlock + kBlock / 3;
  const std::vector<float> orig = random_field(n, 3, 1.0e4f);
  std::vector<float> recon = orig;
  Pcg32 rng(4);
  for (float& v : recon) v += static_cast<float>(rng.uniform() * 0.5 - 0.25);
  const std::vector<std::uint8_t> mask =
      masked ? boundary_mask(n, 0xcafe) : std::vector<std::uint8_t>{};
  const ErrorAccum oneshot = error_norms(orig, recon, mask);
  for (std::size_t piece : kPartitions) {
    ErrorNormStream stream(masked);
    for_each_piece(n, piece, [&](std::size_t lo, std::size_t len) {
      stream.feed(std::span(orig).subspan(lo, len), std::span(recon).subspan(lo, len),
                  masked ? std::span<const std::uint8_t>(mask).subspan(lo, len)
                         : std::span<const std::uint8_t>{});
    });
    const ErrorAccum got = stream.finish();
    EXPECT_TRUE(bits_equal(got.sum_sq, oneshot.sum_sq)) << "piece=" << piece;
    EXPECT_TRUE(bits_equal(got.max_abs, oneshot.max_abs)) << "piece=" << piece;
    EXPECT_EQ(got.count, oneshot.count) << "piece=" << piece;
  }
}

TEST_P(StreamKernels, ZScoreStreamMatchesOneShotBitwise) {
  const bool masked = GetParam();
  const std::size_t n = 2 * kBlock + 999;
  const double members = 7.0;
  const std::vector<float> orig = random_field(n, 5, 250.0f);
  std::vector<float> data = orig;
  Pcg32 rng(6);
  for (float& v : data) v += static_cast<float>(rng.uniform() * 0.2 - 0.1);
  // Synthetic per-point sufficient stats: sums over a fake 7-member spread.
  std::vector<double> sum(n), sum_sq(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mu = static_cast<double>(orig[i]);
    sum[i] = mu * members + rng.uniform();
    sum_sq[i] = mu * mu * members + std::fabs(mu) * rng.uniform() + 1.0;
  }
  // Sprinkle degenerate-spread points so the floor_rel skip path is hit.
  for (std::size_t i = 0; i < n; i += 101) {
    const double mu = static_cast<double>(orig[i]);
    sum[i] = mu * members;
    sum_sq[i] = (sum[i] / members) * (sum[i] / members) * members;
  }
  const std::vector<std::uint8_t> mask =
      masked ? boundary_mask(n, 0xd00d) : std::vector<std::uint8_t>{};
  const ZScoreAccum oneshot = zscore_sums(data, orig, sum, sum_sq, mask, members, kFloorRel);
  ASSERT_GT(oneshot.used, 0u);
  for (std::size_t piece : kPartitions) {
    ZScoreStream stream(members, kFloorRel, masked);
    for_each_piece(n, piece, [&](std::size_t lo, std::size_t len) {
      stream.feed(std::span(data).subspan(lo, len), std::span(orig).subspan(lo, len),
                  std::span(sum).subspan(lo, len), std::span(sum_sq).subspan(lo, len),
                  masked ? std::span<const std::uint8_t>(mask).subspan(lo, len)
                         : std::span<const std::uint8_t>{});
    });
    const ZScoreAccum got = stream.finish();
    EXPECT_TRUE(bits_equal(got.sum_z2, oneshot.sum_z2)) << "piece=" << piece;
    EXPECT_EQ(got.used, oneshot.used) << "piece=" << piece;
  }
}

INSTANTIATE_TEST_SUITE_P(MaskedAndDense, StreamKernels, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "masked" : "dense";
                         });

/// A masked stream fed an empty mask slice ("all valid here") must match
/// both the empty-mask one-shot call and the all-ones-mask one-shot call —
/// the all_valid fast path makes the three arithmetically identical.
TEST(StreamKernels, MaskedStreamAcceptsEmptySliceAsAllValid) {
  const std::size_t n = kBlock + 77;
  const std::vector<float> data = random_field(n, 7, 42.0f);
  const MomentAccum oneshot = moments(data);
  MomentStream stream(/*masked=*/true);
  stream.feed(std::span(data).first(100), {});
  std::vector<std::uint8_t> ones(n - 100, 1);
  stream.feed(std::span(data).subspan(100), ones);
  const MomentAccum got = stream.finish();
  EXPECT_TRUE(bits_equal(got.mean, oneshot.mean));
  EXPECT_TRUE(bits_equal(got.m2, oneshot.m2));
  EXPECT_EQ(got.count, oneshot.count);
}

/// All-invalid input: streams must finish to the same empty accumulators.
TEST(StreamKernels, AllMaskedFinishesEmpty) {
  const std::size_t n = kBlock / 2;
  const std::vector<float> data = random_field(n, 8, 0.0f);
  const std::vector<std::uint8_t> mask(n, 0);
  MomentStream ms(true);
  ms.feed(data, mask);
  EXPECT_EQ(ms.finish().count, 0u);
  ErrorNormStream es(true);
  es.feed(data, data, mask);
  const ErrorAccum ea = es.finish();
  EXPECT_EQ(ea.count, 0u);
  EXPECT_EQ(ea.sum_sq, 0.0);
}

}  // namespace
}  // namespace cesm::stats::kernels
