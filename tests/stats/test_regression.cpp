#include "stats/regression.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace cesm::stats {
namespace {

TEST(FitLinear, ExactLineRecovered) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y;
  for (double xi : x) y.push_back(2.5 * xi - 1.0);
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 2.5, 1e-12);
  EXPECT_NEAR(f.intercept, -1.0, 1e-12);
  EXPECT_NEAR(f.residual_sd, 0.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(FitLinear, RequiresVariationInX) {
  const std::vector<double> x = {2.0, 2.0, 2.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_THROW(fit_linear(x, y), InvalidArgument);
}

TEST(FitLinear, RequiresAtLeastThreePoints) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(fit_linear(x, y), InvalidArgument);
}

TEST(FitLinear, NoisyLineEstimatesWithinStandardErrors) {
  Pcg32 rng(31);
  NormalSampler noise(rng);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double xi = static_cast<double>(i) / 10.0;
    x.push_back(xi);
    y.push_back(1.0 + 0.5 * xi + 0.1 * noise.next());
  }
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 0.5, 4.0 * f.slope_se);
  EXPECT_NEAR(f.intercept, 1.0, 4.0 * f.intercept_se);
  EXPECT_GT(f.r2, 0.99);
}

TEST(ConfidenceRect, ContainsTruthForUnbiasedData) {
  // ~95 % coverage: with 40 independent replications, the true (slope,
  // intercept) should land inside the rectangle nearly always (both
  // marginal intervals at 95 % → joint miss rate <~ 10 %).
  int contained = 0;
  for (int rep = 0; rep < 40; ++rep) {
    NormalSampler noise(1000 + rep);
    std::vector<double> x, y;
    for (int i = 0; i < 101; ++i) {
      const double xi = 1.0 + 0.01 * i;
      x.push_back(xi);
      y.push_back(xi + 0.02 * noise.next());  // slope 1, intercept 0
    }
    const ConfidenceRect rect = confidence_rect(fit_linear(x, y), 0.95);
    if (rect.contains(1.0, 0.0)) ++contained;
  }
  EXPECT_GE(contained, 32);
}

TEST(ConfidenceRect, ExcludesIdealForBiasedData) {
  std::vector<double> x, y;
  NormalSampler noise(77);
  for (int i = 0; i < 101; ++i) {
    const double xi = 1.0 + 0.01 * i;
    x.push_back(xi);
    y.push_back(0.8 * xi + 0.3 + 0.001 * noise.next());  // strong bias
  }
  const ConfidenceRect rect = confidence_rect(fit_linear(x, y), 0.95);
  EXPECT_FALSE(rect.contains(1.0, 0.0));
}

TEST(ConfidenceRect, WidthShrinksWithLessNoise) {
  auto width_for = [](double noise_sd) {
    NormalSampler noise(5);
    std::vector<double> x, y;
    for (int i = 0; i < 101; ++i) {
      const double xi = 1.0 + 0.01 * i;
      x.push_back(xi);
      y.push_back(xi + noise_sd * noise.next());
    }
    const ConfidenceRect r = confidence_rect(fit_linear(x, y), 0.95);
    return r.slope_hi - r.slope_lo;
  };
  EXPECT_LT(width_for(0.001), width_for(0.1));
}

}  // namespace
}  // namespace cesm::stats
