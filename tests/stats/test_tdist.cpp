#include "stats/tdist.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace cesm::stats {
namespace {

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x (uniform distribution CDF).
  EXPECT_NEAR(incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-12);
  // I_x(2,2) = x^2 (3 - 2x).
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.25), 0.25 * 0.25 * 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(incomplete_beta(3.0, 4.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(3.0, 4.0, 1.0), 1.0);
}

TEST(TCdf, SymmetryAndMidpoint) {
  EXPECT_NEAR(t_cdf(0.0, 10.0), 0.5, 1e-12);
  EXPECT_NEAR(t_cdf(1.5, 7.0) + t_cdf(-1.5, 7.0), 1.0, 1e-12);
}

TEST(TCdf, MatchesTables) {
  // t_{0.95, 1} = 6.3138 (Cauchy).
  EXPECT_NEAR(t_cdf(6.3138, 1.0), 0.95, 1e-4);
  // t_{0.975, 10} = 2.2281.
  EXPECT_NEAR(t_cdf(2.2281, 10.0), 0.975, 1e-4);
}

TEST(TQuantile, InvertsCdf) {
  for (double df : {1.0, 5.0, 30.0, 99.0}) {
    for (double p : {0.05, 0.5, 0.9, 0.975, 0.999}) {
      const double t = t_quantile(p, df);
      EXPECT_NEAR(t_cdf(t, df), p, 1e-9) << "df=" << df << " p=" << p;
    }
  }
}

TEST(TQuantile, KnownCriticalValues) {
  EXPECT_NEAR(t_quantile(0.975, 10.0), 2.2281, 2e-4);
  EXPECT_NEAR(t_quantile(0.95, 1.0), 6.3138, 2e-3);
  // df = 99 ~ the paper's bias-regression dof (101 members - 2).
  EXPECT_NEAR(t_quantile(0.975, 99.0), 1.9842, 2e-4);
}

TEST(TQuantile, ApproachesNormalForLargeDf) {
  EXPECT_NEAR(t_quantile(0.975, 1e6), 1.95996, 1e-3);
}

TEST(TCritical, TwoSided95) {
  EXPECT_NEAR(t_critical(0.95, 99.0), t_quantile(0.975, 99.0), 1e-12);
}

TEST(TQuantile, RejectsBadArguments) {
  EXPECT_THROW(t_quantile(0.0, 5.0), InvalidArgument);
  EXPECT_THROW(t_quantile(1.0, 5.0), InvalidArgument);
  EXPECT_THROW(t_quantile(0.5, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace cesm::stats
