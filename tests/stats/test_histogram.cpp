#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/error.h"

namespace cesm::stats {
namespace {

TEST(Histogram, CountsFallInCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeValuesClampToEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, UpperBoundLandsInLastBin) {
  Histogram h(0.0, 1.0, 4);
  h.add(1.0);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, BinEdgesAreUniform) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 3.25);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, FromDataSpansDataRange) {
  const std::vector<double> data = {1.0, 2.0, 3.0, 4.0};
  const Histogram h = Histogram::from_data(data, 3);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 4.0);
}

TEST(Histogram, FromConstantDataDoesNotDivideByZero) {
  const std::vector<double> data = {5.0, 5.0, 5.0};
  const Histogram h = Histogram::from_data(data, 4);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 3u);
}

TEST(Histogram, MaxCount) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.2);
  h.add(0.9);
  EXPECT_EQ(h.max_count(), 2u);
}

TEST(Histogram, InfinitiesClampToEdgeBinsWithoutOverflow) {
  // Regression: casting the huge bin index of +inf (or any value far
  // above hi) to std::size_t was undefined behavior.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Histogram h(0.0, 1.0, 4);
  h.add(kInf);
  h.add(-kInf);
  h.add(1e300);  // finite but would overflow the index cast unclamped
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin_of(kInf), 3u);
  EXPECT_EQ(h.bin_of(-kInf), 0u);
  EXPECT_EQ(h.bin_of(1e300), 3u);
}

TEST(Histogram, NanIsRejectedAndCounted) {
  // Regression: NaN -> size_t was undefined behavior; now add() routes
  // NaN to the rejected() slot and bin_of() refuses it outright.
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  Histogram h(0.0, 1.0, 4);
  h.add(kNan);
  h.add(0.5);
  std::vector<double> values = {kNan, 0.25, kNan};
  h.add(values);
  EXPECT_EQ(h.rejected(), 3u);
  EXPECT_EQ(h.total(), 2u);  // NaNs never land in a bin or the total
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_THROW(h.bin_of(kNan), InvalidArgument);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), InvalidArgument);
}

}  // namespace
}  // namespace cesm::stats
