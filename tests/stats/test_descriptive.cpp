#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.h"

namespace cesm::stats {
namespace {

TEST(Summarize, BasicMoments) {
  const std::vector<float> data = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  const Summary s = summarize(data);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.range(), 4.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(Summarize, MaskExcludesFillPoints) {
  const std::vector<float> data = {1.0f, 1.0e35f, 3.0f};
  const std::vector<std::uint8_t> mask = {1, 0, 1};
  const Summary s = summarize(std::span<const float>(data), mask);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_EQ(s.count, 2u);
}

TEST(Summarize, EmptyInputGivesZeroCount) {
  const Summary s = summarize(std::span<const float>{});
  EXPECT_EQ(s.count, 0u);
}

TEST(Summarize, AllMaskedGivesZeroCount) {
  const std::vector<float> data = {1.0f, 2.0f};
  const std::vector<std::uint8_t> mask = {0, 0};
  EXPECT_EQ(summarize(std::span<const float>(data), mask).count, 0u);
}

TEST(Summarize, LargeOffsetFieldKeepsPrecision) {
  // Z3-like: values near 3.7e4 with tiny spread; naive E[x^2]-E[x]^2 loses
  // digits, the two-pass method must not.
  std::vector<float> data;
  for (int i = 0; i < 1000; ++i) data.push_back(37000.0f + 0.001f * static_cast<float>(i % 10));
  const Summary s = summarize(data);
  EXPECT_GT(s.stddev, 0.002);
  EXPECT_LT(s.stddev, 0.004);
}

TEST(QuantileSorted, Endpoints) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 4.0);
}

TEST(QuantileSorted, LinearInterpolation) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 5.0);
}

TEST(QuantileSorted, SingleElement) {
  const std::vector<double> v = {42.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.7), 42.0);
}

TEST(BoxSummary, MatchesManualQuartiles) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  const BoxSummary b = box_summary(v);
  EXPECT_DOUBLE_EQ(b.lo, 1.0);
  EXPECT_DOUBLE_EQ(b.hi, 5.0);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.q3, 4.0);
  EXPECT_EQ(b.count, 5u);
}

TEST(BoxSummary, EmptyThrows) {
  EXPECT_THROW(box_summary({}), InvalidArgument);
}

TEST(WeightedMean, WeightsApply) {
  const std::vector<float> data = {1.0f, 3.0f};
  const std::vector<double> weights = {3.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_mean(data, weights), 1.5);
}

TEST(WeightedMean, MaskedPointsIgnored) {
  const std::vector<float> data = {1.0f, 100.0f};
  const std::vector<double> weights = {1.0, 1.0};
  const std::vector<std::uint8_t> mask = {1, 0};
  EXPECT_DOUBLE_EQ(weighted_mean(data, weights, mask), 1.0);
}

}  // namespace
}  // namespace cesm::stats
