#include "stats/kstest.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace cesm::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, double mean, double sd,
                                  std::uint64_t seed) {
  NormalSampler rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next(mean, sd);
  return v;
}

TEST(KolmogorovQ, LimitingValues) {
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_NEAR(kolmogorov_q(10.0), 0.0, 1e-12);
  // Known point: Q(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(kolmogorov_q(1.36), 0.049, 0.002);
}

TEST(KolmogorovQ, MonotoneDecreasing) {
  double prev = 1.0;
  for (double l : {0.2, 0.5, 0.8, 1.1, 1.5, 2.0}) {
    const double q = kolmogorov_q(l);
    EXPECT_LE(q, prev);
    prev = q;
  }
}

TEST(KsTwoSample, IdenticalSamplesIndistinguishable) {
  const auto a = normal_sample(200, 0.0, 1.0, 1);
  const KsResult r = ks_two_sample(a, a);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_FALSE(r.distinguishable());
}

TEST(KsTwoSample, SameDistributionUsuallyPasses) {
  int distinguishable = 0;
  for (int rep = 0; rep < 20; ++rep) {
    const auto a = normal_sample(150, 1.0, 0.2, 100 + rep);
    const auto b = normal_sample(150, 1.0, 0.2, 900 + rep);
    if (ks_two_sample(a, b).distinguishable(0.05)) ++distinguishable;
  }
  EXPECT_LE(distinguishable, 4);  // ~5% false positive rate expected
}

TEST(KsTwoSample, ShiftedDistributionDetected) {
  const auto a = normal_sample(200, 0.0, 1.0, 7);
  const auto b = normal_sample(200, 1.0, 1.0, 8);
  const KsResult r = ks_two_sample(a, b);
  EXPECT_TRUE(r.distinguishable(0.01));
  EXPECT_GT(r.statistic, 0.3);
}

TEST(KsTwoSample, ScaleChangeDetected) {
  const auto a = normal_sample(400, 0.0, 1.0, 9);
  const auto b = normal_sample(400, 0.0, 3.0, 10);
  EXPECT_TRUE(ks_two_sample(a, b).distinguishable(0.01));
}

TEST(KsTwoSample, UnequalSampleSizesSupported) {
  const auto a = normal_sample(500, 0.0, 1.0, 11);
  const auto b = normal_sample(50, 0.0, 1.0, 12);
  const KsResult r = ks_two_sample(a, b);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(KsTwoSample, EmptySampleRejected) {
  const std::vector<double> a = {1.0};
  EXPECT_THROW(ks_two_sample(a, {}), InvalidArgument);
}

}  // namespace
}  // namespace cesm::stats
