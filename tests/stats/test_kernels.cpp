// Parity suite: the fused blocked kernels must reproduce the legacy scalar
// two-pass results within tight ULP bounds, including on adversarial
// inputs — large-offset fields (Z3-like), heavily masked ocean fields,
// single-element and all-masked spans, and block-boundary mask patterns.

#include "stats/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace cesm::stats::kernels {
namespace {

/// ULP distance between two doubles (0 when bit-identical; huge across
/// sign changes, which the assertions below never legitimately cross).
std::uint64_t ulp_distance(double a, double b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<std::uint64_t>::max();
  auto key = [](double v) {
    std::int64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    // Map the sign-magnitude double ordering onto a monotone integer line.
    return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
  };
  const std::int64_t ka = key(a);
  const std::int64_t kb = key(b);
  return ka > kb ? static_cast<std::uint64_t>(ka - kb)
                 : static_cast<std::uint64_t>(kb - ka);
}

void expect_ulp_near(double fused, double legacy, std::uint64_t max_ulps,
                     const char* what) {
  EXPECT_LE(ulp_distance(fused, legacy), max_ulps)
      << what << ": fused=" << fused << " legacy=" << legacy;
}

/// The summation kernels reassociate (blocks, lanes, Chan merges), so the
/// parity bound for accumulated quantities is a small relative tolerance
/// rather than exact ULP identity; 1e-11 relative is ~2e4 ULPs, orders of
/// magnitude tighter than any downstream threshold.
void expect_rel_near(double fused, double legacy, const char* what,
                     double rel = 1e-11) {
  const double scale = std::max({std::fabs(fused), std::fabs(legacy), 1e-300});
  EXPECT_LE(std::fabs(fused - legacy), rel * scale)
      << what << ": fused=" << fused << " legacy=" << legacy;
}

std::vector<float> random_field(std::size_t n, std::uint64_t seed, double lo = -1.0,
                                double hi = 1.0) {
  Pcg32 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

/// Contiguous "ocean basin" invalid runs plus scattered single invalid
/// points: exercises all-valid blocks, all-invalid blocks, and mixed ones.
std::vector<std::uint8_t> ocean_mask(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> mask(n, 1);
  Pcg32 rng(seed);
  std::size_t i = 0;
  while (i < n) {
    const std::size_t land = 500 + rng.bounded(6000);
    i += land;
    const std::size_t basin = 2000 + rng.bounded(8000);
    for (std::size_t j = i; j < std::min(n, i + basin); ++j) mask[j] = 0;
    i += basin;
  }
  for (int k = 0; k < 50 && n > 0; ++k) mask[rng.bounded(static_cast<std::uint32_t>(n))] = 0;
  return mask;
}

void check_moments_parity(std::span<const float> data,
                          std::span<const std::uint8_t> mask) {
  const MomentAccum fused = moments(data, mask);
  const reference::TwoPassSummary legacy = reference::summarize_two_pass(data, mask);
  ASSERT_EQ(fused.count, legacy.count);
  if (fused.count == 0) return;
  expect_ulp_near(fused.min, legacy.min, 0, "min");
  expect_ulp_near(fused.max, legacy.max, 0, "max");
  expect_rel_near(fused.mean, legacy.mean, "mean");
  expect_rel_near(fused.m2, legacy.m2, "m2", 1e-9);
}

TEST(KernelParity, MomentsRandomUnmasked) {
  const auto data = random_field(100'000, 0xA1, -50.0, 50.0);
  check_moments_parity(data, {});
}

TEST(KernelParity, MomentsLargeOffsetZ3Like) {
  // Z3-like: geopotential-height magnitudes with a spread of millimetres.
  std::vector<float> data(60'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 37000.0f + 0.001f * static_cast<float>(i % 17);
  }
  check_moments_parity(data, {});
  // Sanity: the fused single-pass path must not cancel catastrophically.
  const MomentAccum a = moments(std::span<const float>(data));
  EXPECT_GT(std::sqrt(a.m2 / static_cast<double>(a.count)), 0.003);
  EXPECT_LT(std::sqrt(a.m2 / static_cast<double>(a.count)), 0.007);
}

TEST(KernelParity, MomentsHeavilyMaskedOcean) {
  const auto data = random_field(90'000, 0xB2, 270.0, 305.0);
  const auto mask = ocean_mask(data.size(), 0xB3);
  check_moments_parity(data, mask);
}

TEST(KernelParity, MomentsSingleElement) {
  const std::vector<float> data = {42.5f};
  check_moments_parity(data, {});
  const MomentAccum a = moments(std::span<const float>(data));
  EXPECT_EQ(a.count, 1u);
  EXPECT_DOUBLE_EQ(a.mean, 42.5);
  EXPECT_DOUBLE_EQ(a.m2, 0.0);
}

TEST(KernelParity, MomentsAllMaskedSpan) {
  const auto data = random_field(5'000, 0xC1);
  const std::vector<std::uint8_t> mask(data.size(), 0);
  const MomentAccum a = moments(std::span<const float>(data), mask);
  EXPECT_EQ(a.count, 0u);
}

TEST(KernelParity, MomentsEmptySpan) {
  EXPECT_EQ(moments(std::span<const float>{}).count, 0u);
}

TEST(KernelParity, MomentsBlockBoundaryMaskPatterns) {
  // Exactly one all-valid block, one all-invalid block, one mixed block,
  // plus a ragged tail — every per-block path in one input.
  const std::size_t n = 3 * kBlock + 17;
  const auto data = random_field(n, 0xD4, -3.0, 3.0);
  std::vector<std::uint8_t> mask(n, 1);
  for (std::size_t i = kBlock; i < 2 * kBlock; ++i) mask[i] = 0;
  for (std::size_t i = 2 * kBlock; i < 3 * kBlock; i += 3) mask[i] = 0;
  check_moments_parity(data, mask);
}

TEST(KernelParity, ComomentsRandomAndMasked) {
  const auto x = random_field(80'000, 0xE1, -10.0, 10.0);
  auto y = x;
  Pcg32 rng(0xE2);
  for (auto& v : y) v += static_cast<float>(rng.uniform(-0.01, 0.01));

  for (const auto& mask :
       {std::vector<std::uint8_t>{}, ocean_mask(x.size(), 0xE3)}) {
    const CoMomentAccum fused =
        comoments(std::span<const float>(x), std::span<const float>(y), mask);
    const CoMomentAccum legacy = reference::comoments_two_pass(x, y, mask);
    ASSERT_EQ(fused.count, legacy.count);
    expect_rel_near(fused.mean_x, legacy.mean_x, "mean_x");
    expect_rel_near(fused.mean_y, legacy.mean_y, "mean_y");
    expect_rel_near(fused.sxx, legacy.sxx, "sxx", 1e-9);
    expect_rel_near(fused.syy, legacy.syy, "syy", 1e-9);
    expect_rel_near(fused.sxy, legacy.sxy, "sxy", 1e-9);
    // The derived correlation coefficient agrees far beyond the 1e-5
    // acceptance resolution of the rho test.
    const double rho_fused = fused.sxy / std::sqrt(fused.sxx * fused.syy);
    const double rho_legacy = legacy.sxy / std::sqrt(legacy.sxx * legacy.syy);
    EXPECT_NEAR(rho_fused, rho_legacy, 1e-12);
  }
}

TEST(KernelParity, ComomentsLargeOffset) {
  // Both series near 3.7e4: co-moment cancellation territory.
  std::vector<float> x(40'000), y(40'000);
  Pcg32 rng(0xF1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(37000.0 + rng.uniform(-0.5, 0.5));
    y[i] = x[i] + static_cast<float>(rng.uniform(-0.001, 0.001));
  }
  const CoMomentAccum fused =
      comoments(std::span<const float>(x), std::span<const float>(y));
  const CoMomentAccum legacy = reference::comoments_two_pass(x, y);
  expect_rel_near(fused.sxy, legacy.sxy, "sxy", 1e-8);
  expect_rel_near(fused.sxx, legacy.sxx, "sxx", 1e-8);
}

TEST(KernelParity, ErrorNormsMatchScalar) {
  const auto x = random_field(70'000, 0xAB, -100.0, 100.0);
  auto y = x;
  Pcg32 rng(0xAC);
  for (auto& v : y) v += static_cast<float>(rng.uniform(-0.5, 0.5));

  for (const auto& mask :
       {std::vector<std::uint8_t>{}, ocean_mask(x.size(), 0xAD)}) {
    const ErrorAccum fused =
        error_norms(std::span<const float>(x), std::span<const float>(y), mask);
    const ErrorAccum legacy = reference::error_norms_scalar(x, y, mask);
    ASSERT_EQ(fused.count, legacy.count);
    expect_ulp_near(fused.max_abs, legacy.max_abs, 0, "max_abs");
    expect_rel_near(fused.sum_sq, legacy.sum_sq, "sum_sq");
  }
}

TEST(KernelParity, ZScoreSumsMatchScalar) {
  // Build per-point sufficient statistics from a synthetic 12-member
  // ensemble, then compare the fused and scalar leave-one-out kernels.
  const std::size_t n = 30'000;
  const std::size_t members = 12;
  std::vector<std::vector<float>> ens(members);
  for (std::size_t m = 0; m < members; ++m) {
    NormalSampler rng(hash_combine(0x5EED, m));
    ens[m].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      ens[m][i] = static_cast<float>(std::sin(i * 0.01) * 5.0 + rng.next());
    }
  }
  // A handful of degenerate points (identical across members) to exercise
  // the spread floor on both sides.
  for (std::size_t m = 0; m < members; ++m) {
    for (std::size_t i = 0; i < n; i += 997) ens[m][i] = 3.14f;
  }
  std::vector<double> sum(n, 0.0), sum_sq(n, 0.0);
  for (std::size_t m = 0; m < members; ++m) {
    accumulate_sum_sq(ens[m], {}, sum, sum_sq);
  }

  std::vector<float> recon = ens[4];
  for (std::size_t i = 0; i < n; i += 5) recon[i] += 0.02f;

  for (const auto& mask : {std::vector<std::uint8_t>{}, ocean_mask(n, 0xAE)}) {
    const ZScoreAccum fused = zscore_sums(recon, ens[4], sum, sum_sq, mask,
                                          static_cast<double>(members), 3e-7);
    const ZScoreAccum legacy = reference::zscore_sums_scalar(
        recon, ens[4], sum, sum_sq, mask, static_cast<double>(members), 3e-7);
    EXPECT_EQ(fused.used, legacy.used);
    expect_rel_near(fused.sum_z2, legacy.sum_z2, "sum_z2", 1e-10);
  }
}

TEST(KernelParity, AccumulateSumSqBitwiseIdentical) {
  // Element-wise updates are not reassociated: results must be bit-exact
  // against the naive loop.
  const auto x = random_field(2 * kBlock + 100, 0xBC, -5.0, 5.0);
  const auto mask = ocean_mask(x.size(), 0xBD);
  std::vector<double> sum_a(x.size(), 1.0), sq_a(x.size(), 2.0);
  std::vector<double> sum_b = sum_a, sq_b = sq_a;

  accumulate_sum_sq(x, mask, sum_a, sq_a);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!mask[i]) continue;
    const double v = static_cast<double>(x[i]);
    sum_b[i] += v;
    sq_b[i] += v * v;
  }
  EXPECT_EQ(sum_a, sum_b);
  EXPECT_EQ(sq_a, sq_b);
}

TEST(KernelParity, UpdateExtremesMatchesScalar) {
  const std::size_t n = kBlock + 333;
  const auto mask = ocean_mask(n, 0xCE);
  constexpr float inf = std::numeric_limits<float>::infinity();
  std::vector<float> max1(n, -inf), max2(n, -inf), min1(n, inf), min2(n, inf);
  std::vector<std::uint32_t> argmax(n, 0), argmin(n, 0);
  auto ref_max1 = max1;
  auto ref_max2 = max2;
  auto ref_min1 = min1;
  auto ref_min2 = min2;
  auto ref_argmax = argmax;
  auto ref_argmin = argmin;

  for (std::uint32_t m = 0; m < 9; ++m) {
    const auto x = random_field(n, 0xD000 + m, -20.0, 20.0);
    update_extremes(x, mask, m, max1, max2, argmax, min1, min2, argmin);
    for (std::size_t i = 0; i < n; ++i) {
      if (!mask[i]) continue;
      const float v = x[i];
      if (v > ref_max1[i]) {
        ref_max2[i] = ref_max1[i];
        ref_max1[i] = v;
        ref_argmax[i] = m;
      } else if (v > ref_max2[i]) {
        ref_max2[i] = v;
      }
      if (v < ref_min1[i]) {
        ref_min2[i] = ref_min1[i];
        ref_min1[i] = v;
        ref_argmin[i] = m;
      } else if (v < ref_min2[i]) {
        ref_min2[i] = v;
      }
    }
  }
  EXPECT_EQ(max1, ref_max1);
  EXPECT_EQ(max2, ref_max2);
  EXPECT_EQ(min1, ref_min1);
  EXPECT_EQ(min2, ref_min2);
  EXPECT_EQ(argmax, ref_argmax);
  EXPECT_EQ(argmin, ref_argmin);
}

TEST(KernelHelpers, AllValidAndCountValid) {
  EXPECT_TRUE(all_valid({}));
  const std::vector<std::uint8_t> ones(1000, 1);
  EXPECT_TRUE(all_valid(ones));
  std::vector<std::uint8_t> holed = ones;
  holed[999] = 0;
  EXPECT_FALSE(all_valid(holed));
  EXPECT_EQ(count_valid(ones), 1000u);
  EXPECT_EQ(count_valid(holed), 999u);
  EXPECT_EQ(count_valid({}, 77), 77u);  // empty mask: everything valid
}

TEST(KernelHelpers, MergeIsOrderInsensitiveWithinTolerance) {
  const auto data = random_field(3 * kBlock, 0xEF, -7.0, 7.0);
  // Whole-span result vs. merging three sub-span results in reverse order.
  const MomentAccum whole = moments(std::span<const float>(data));
  MomentAccum merged;
  for (int b = 2; b >= 0; --b) {
    merged.merge(moments(std::span<const float>(data).subspan(
        static_cast<std::size_t>(b) * kBlock, kBlock)));
  }
  EXPECT_EQ(whole.count, merged.count);
  EXPECT_NEAR(whole.mean, merged.mean, 1e-12);
  EXPECT_NEAR(whole.m2, merged.m2, 1e-7 * whole.m2 + 1e-12);
  EXPECT_DOUBLE_EQ(whole.min, merged.min);
  EXPECT_DOUBLE_EQ(whole.max, merged.max);
}

}  // namespace
}  // namespace cesm::stats::kernels
