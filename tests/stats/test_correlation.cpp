#include "stats/correlation.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace cesm::stats {
namespace {

TEST(Pearson, PerfectPositiveCorrelation) {
  const std::vector<float> x = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> y = {2.0f, 4.0f, 6.0f, 8.0f};
  EXPECT_NEAR(pearson(std::span<const float>(x), std::span<const float>(y)), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegativeCorrelation) {
  const std::vector<float> x = {1.0f, 2.0f, 3.0f};
  const std::vector<float> y = {3.0f, 2.0f, 1.0f};
  EXPECT_NEAR(pearson(std::span<const float>(x), std::span<const float>(y)), -1.0, 1e-12);
}

TEST(Pearson, IndependentSeriesNearZero) {
  Pcg32 rng(3);
  std::vector<float> x(20000), y(20000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.uniform());
    y[i] = static_cast<float>(rng.uniform());
  }
  EXPECT_NEAR(pearson(std::span<const float>(x), std::span<const float>(y)), 0.0, 0.03);
}

TEST(Pearson, IdenticalConstantSeriesIsOne) {
  const std::vector<float> x = {5.0f, 5.0f, 5.0f};
  EXPECT_DOUBLE_EQ(pearson(std::span<const float>(x), std::span<const float>(x)), 1.0);
}

TEST(Pearson, DifferentConstantSeriesIsZero) {
  const std::vector<float> x = {5.0f, 5.0f};
  const std::vector<float> y = {7.0f, 7.0f};
  EXPECT_DOUBLE_EQ(pearson(std::span<const float>(x), std::span<const float>(y)), 0.0);
}

TEST(Pearson, MaskRemovesOutlierInfluence) {
  const std::vector<float> x = {1.0f, 2.0f, 3.0f, 1e30f};
  const std::vector<float> y = {2.0f, 4.0f, 6.0f, -1e30f};
  const std::vector<std::uint8_t> mask = {1, 1, 1, 0};
  EXPECT_NEAR(pearson(std::span<const float>(x), std::span<const float>(y), mask), 1.0,
              1e-12);
}

TEST(Covariance, MatchesHandComputation) {
  const std::vector<float> x = {1.0f, 2.0f, 3.0f};
  const std::vector<float> y = {2.0f, 4.0f, 6.0f};
  // cov = E[(x - 2)(y - 4)] = (2 + 0 + 2) / 3
  EXPECT_NEAR(covariance(std::span<const float>(x), std::span<const float>(y)), 4.0 / 3.0,
              1e-12);
}

TEST(Pearson, NearIdenticalReconstructionScoresAboveThreshold) {
  // Mimics the paper's 0.99999 acceptance bar: a tiny perturbation should
  // stay above it; a large one should not.
  Pcg32 rng(17);
  std::vector<float> x(10000), tiny(10000), big(10000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.uniform(0.0, 100.0));
    tiny[i] = x[i] + static_cast<float>(rng.uniform(-1e-3, 1e-3));
    big[i] = x[i] + static_cast<float>(rng.uniform(-30.0, 30.0));
  }
  EXPECT_GT(pearson(std::span<const float>(x), std::span<const float>(tiny)), 0.99999);
  EXPECT_LT(pearson(std::span<const float>(x), std::span<const float>(big)), 0.99999);
}

}  // namespace
}  // namespace cesm::stats
