#include "stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compress/grib2/grib2.h"
#include "util/rng.h"

namespace cesm::stats {
namespace {

TEST(Pearson, PerfectPositiveCorrelation) {
  const std::vector<float> x = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> y = {2.0f, 4.0f, 6.0f, 8.0f};
  EXPECT_NEAR(pearson(std::span<const float>(x), std::span<const float>(y)), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegativeCorrelation) {
  const std::vector<float> x = {1.0f, 2.0f, 3.0f};
  const std::vector<float> y = {3.0f, 2.0f, 1.0f};
  EXPECT_NEAR(pearson(std::span<const float>(x), std::span<const float>(y)), -1.0, 1e-12);
}

TEST(Pearson, IndependentSeriesNearZero) {
  Pcg32 rng(3);
  std::vector<float> x(20000), y(20000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.uniform());
    y[i] = static_cast<float>(rng.uniform());
  }
  EXPECT_NEAR(pearson(std::span<const float>(x), std::span<const float>(y)), 0.0, 0.03);
}

TEST(Pearson, IdenticalConstantSeriesIsOne) {
  const std::vector<float> x = {5.0f, 5.0f, 5.0f};
  EXPECT_DOUBLE_EQ(pearson(std::span<const float>(x), std::span<const float>(x)), 1.0);
}

TEST(Pearson, DifferentConstantSeriesIsZero) {
  const std::vector<float> x = {5.0f, 5.0f};
  const std::vector<float> y = {7.0f, 7.0f};
  EXPECT_DOUBLE_EQ(pearson(std::span<const float>(x), std::span<const float>(y)), 0.0);
}

TEST(Pearson, MaskRemovesOutlierInfluence) {
  const std::vector<float> x = {1.0f, 2.0f, 3.0f, 1e30f};
  const std::vector<float> y = {2.0f, 4.0f, 6.0f, -1e30f};
  const std::vector<std::uint8_t> mask = {1, 1, 1, 0};
  EXPECT_NEAR(pearson(std::span<const float>(x), std::span<const float>(y), mask), 1.0,
              1e-12);
}

TEST(Covariance, MatchesHandComputation) {
  const std::vector<float> x = {1.0f, 2.0f, 3.0f};
  const std::vector<float> y = {2.0f, 4.0f, 6.0f};
  // cov = E[(x - 2)(y - 4)] = (2 + 0 + 2) / 3
  EXPECT_NEAR(covariance(std::span<const float>(x), std::span<const float>(y)), 4.0 / 3.0,
              1e-12);
}

TEST(Pearson, ConstantFieldSurvivesLossyRoundTrip) {
  // Regression: the constant-series branch used exact float equality on
  // the two means, so a constant field pushed through a lossy codec —
  // whose reconstruction is constant but off by one quantization step —
  // scored rho = 0 and spuriously failed the 0.99999 acceptance bar.
  const std::vector<float> x(5000, 1234.5678f);
  const comp::Grib2Codec grib(4);
  const comp::RoundTrip rt =
      comp::round_trip(grib, x, comp::Shape::d1(x.size()));
  ASSERT_EQ(rt.reconstructed.size(), x.size());
  EXPECT_DOUBLE_EQ(
      pearson(std::span<const float>(x), std::span<const float>(rt.reconstructed)),
      1.0);
}

TEST(Pearson, ConstantSeriesWithTinyOffsetIsOne) {
  // One float quantization step apart at this magnitude: well inside the
  // mean tolerance, must count as the same constant.
  const std::vector<float> x(100, 1234.5678f);
  const std::vector<float> y(100, std::nextafter(1234.5678f, 2000.0f));
  EXPECT_DOUBLE_EQ(pearson(std::span<const float>(x), std::span<const float>(y)), 1.0);
}

TEST(Pearson, ConstantVsNonConstantSeriesIsZero) {
  const std::vector<float> x(64, 5.0f);
  std::vector<float> y(64);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<float>(i);
  EXPECT_DOUBLE_EQ(pearson(std::span<const float>(x), std::span<const float>(y)), 0.0);
  EXPECT_DOUBLE_EQ(pearson(std::span<const float>(y), std::span<const float>(x)), 0.0);
}

TEST(Pearson, EffectivelyConstantBelowFloatNoiseIsTreatedAsConstant) {
  // Spread far below float32 representation noise of the mean (ulp of
  // 3.7e4 is ~4e-3): indistinguishable from a stored constant.
  std::vector<float> x(1000, 37000.0f);
  std::vector<float> y(1000);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = 37000.0f + ((i % 2 == 0) ? 1e-4f : -1e-4f);  // absorbed by rounding
  }
  EXPECT_DOUBLE_EQ(pearson(std::span<const float>(x), std::span<const float>(y)), 1.0);
}

TEST(Pearson, NearIdenticalReconstructionScoresAboveThreshold) {
  // Mimics the paper's 0.99999 acceptance bar: a tiny perturbation should
  // stay above it; a large one should not.
  Pcg32 rng(17);
  std::vector<float> x(10000), tiny(10000), big(10000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.uniform(0.0, 100.0));
    tiny[i] = x[i] + static_cast<float>(rng.uniform(-1e-3, 1e-3));
    big[i] = x[i] + static_cast<float>(rng.uniform(-30.0, 30.0));
  }
  EXPECT_GT(pearson(std::span<const float>(x), std::span<const float>(tiny)), 0.99999);
  EXPECT_LT(pearson(std::span<const float>(x), std::span<const float>(big)), 0.99999);
}

}  // namespace
}  // namespace cesm::stats
