// Slow (label: slow) heavyweight property sweeps: multi-seed conformance
// over every variant, and the chunked wrapper composed over each variant.
// The fast single-seed versions live in
// tests/compress/test_roundtrip_property.cpp; these widen the net for the
// scheduled CI job.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "compress/chunked.h"
#include "compress/variants.h"
#include "support/generators.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

constexpr std::uint64_t kSweepSeeds[] = {0x51ee9ull, 0x51eebull, 0x51eedull,
                                         0x51ef1ull, 0x51ef3ull};

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

bool bits_equal(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

class LosslessSweepSlow : public ::testing::TestWithParam<std::string> {};

// Five seeds x five hostile regimes x a large field: lossless means every
// bit pattern, every time.
TEST_P(LosslessSweepSlow, BitExactAcrossSeedsAndRegimes) {
  const CodecPtr codec = make_variant(GetParam());
  ASSERT_TRUE(codec->is_lossless());
  for (std::uint64_t seed : kSweepSeeds) {
    SCOPED_TRACE(testgen::seed_banner(seed));
    std::vector<std::vector<float>> datasets;
    datasets.push_back(testgen::smooth_field(65536, seed));
    datasets.push_back(testgen::noisy_field(65536, hash_combine(seed, 1)));
    datasets.push_back(testgen::denormal_field(65536, hash_combine(seed, 2)));
    datasets.push_back(testgen::tiny_field(65536, hash_combine(seed, 3)));
    {
      auto salted = testgen::lognormal_field(65536, hash_combine(seed, 4));
      testgen::salt_specials(salted, hash_combine(seed, 5), 0.02);
      datasets.push_back(std::move(salted));
    }
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      const auto& data = datasets[d];
      const RoundTrip rt = round_trip(*codec, data, Shape::d2(16, data.size() / 16));
      EXPECT_TRUE(bits_equal(data, rt.reconstructed))
          << GetParam() << " dataset " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLossless, LosslessSweepSlow,
                         ::testing::Values("NetCDF-4", "fpzip-32", "ISOBAR", "MAFISC",
                                           "FPC"),
                         [](const auto& info) { return sanitize(info.param); });

class IsabelaBoundSweepSlow : public ::testing::TestWithParam<double> {};

// ISABELA's error contract across seeds and field shapes. The codec
// corrects to half a step of eps * max(|spline estimate|, floor), so the
// *absolute* error is bounded by eps times the field scale everywhere,
// while the per-point *relative* bound can be exceeded where the estimate
// overshoots |x| (window edges, zero crossings) — tolerate a tiny rate.
TEST_P(IsabelaBoundSweepSlow, ErrorContractHoldsAcrossRegimes) {
  const double eps = GetParam() / 100.0;
  char name[16];
  std::snprintf(name, sizeof name, "ISA-%.1f", GetParam());
  const CodecPtr codec = make_variant(name);
  for (std::uint64_t seed : kSweepSeeds) {
    SCOPED_TRACE(testgen::seed_banner(seed));
    for (const auto& data : {testgen::smooth_field(50000, seed),
                             testgen::noisy_field(50000, hash_combine(seed, 1)),
                             testgen::lognormal_field(50000, hash_combine(seed, 2))}) {
      const RoundTrip rt = round_trip(*codec, data, Shape::d1(data.size()));
      double field_max = 0.0;
      for (float v : data) field_max = std::max(field_max, std::fabs(static_cast<double>(v)));
      std::size_t rel_violations = 0;
      for (std::size_t i = 0; i < data.size(); ++i) {
        const double err = std::fabs(data[i] - rt.reconstructed[i]);
        ASSERT_LE(err, 2.0 * eps * field_max + 1e-6)
            << name << " absolute error escaped the field-scale bound at " << i;
        const double rel = err / std::max(1e-6, std::fabs(static_cast<double>(data[i])));
        if (rel > 2.0 * eps) ++rel_violations;
      }
      EXPECT_LE(rel_violations, data.size() / 500)
          << name << " relative bound violated too often";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperVariants, IsabelaBoundSweepSlow,
                         ::testing::Values(0.1, 0.5, 1.0));

class ChunkedComposesSlow : public ::testing::TestWithParam<std::string> {};

// The CHK2 wrapper must preserve each inner variant's contract: lossless
// stays bit-exact, everything preserves fill-masked points, and nothing
// emits non-finite values from finite input.
TEST_P(ChunkedComposesSlow, WrapperPreservesInnerContract) {
  constexpr float kFill = 1.0e20f;
  constexpr std::uint64_t kSeed = 0xC4A2ull;
  SCOPED_TRACE(testgen::seed_banner(kSeed));
  const CodecPtr inner = make_variant(GetParam(), kFill);
  const ChunkedCodec chunked(inner, 1 << 12);

  auto data = testgen::smooth_field(60000, kSeed);
  const auto mask = testgen::fill_mask(data.size(), hash_combine(kSeed, 1));
  testgen::apply_fill(data, mask, kFill);
  const Shape shape = Shape::d2(30, data.size() / 30);

  const RoundTrip rt = round_trip(chunked, data, shape);
  ASSERT_EQ(rt.reconstructed.size(), data.size());
  if (inner->is_lossless()) {
    EXPECT_TRUE(bits_equal(data, rt.reconstructed)) << GetParam();
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (mask[i] == 0) {
      ASSERT_EQ(rt.reconstructed[i], kFill) << GetParam() << " index " << i;
    } else {
      ASSERT_TRUE(std::isfinite(rt.reconstructed[i])) << GetParam() << " index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ChunkedComposesSlow,
                         ::testing::Values("NetCDF-4", "fpzip-32", "fpzip-24", "ISA-0.5",
                                           "APAX-4", "GRIB2:3"),
                         [](const auto& info) { return sanitize(info.param); });

}  // namespace
}  // namespace cesm::comp
