// Slow (label: slow) robustness sweeps for run_suite under fault
// injection. The scheduled CI job runs this both plainly and with a
// CESM_FAILPOINTS smoke matrix; SurvivesEnvFailpointMatrix re-applies the
// environment spec so every matrix entry exercises a real armed run.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "climate/ensemble.h"
#include "core/suite.h"
#include "util/failpoint.h"

namespace cesm::core {
namespace {

const climate::EnsembleGenerator& shared_ensemble() {
  static const climate::EnsembleGenerator* ens = [] {
    climate::EnsembleSpec spec;
    spec.grid = climate::GridSpec{12, 18, 3};
    spec.members = 9;
    spec.latent.k = 48;
    spec.latent.spinup_steps = 200;
    spec.latent.average_steps = 400;
    return new climate::EnsembleGenerator(spec);
  }();
  return *ens;
}

SuiteConfig quick_config() {
  SuiteConfig cfg;
  cfg.test_member_count = 2;
  cfg.grib_max_extra_digits = 3;
  cfg.run_bias = false;
  return cfg;
}

class SuiteRobustnessSlow : public ::testing::Test {
 protected:
  void SetUp() override { fail::reset(); }
  void TearDown() override { fail::reset(); }
};

// Every site the verification pipeline can actually reach, armed one-shot,
// must be absorbed by the retry/fallback policy: the suite finishes with
// zero quarantined variables. sched.task is deliberately absent — it can
// fire inside run_suite's own chunk tasks, outside the per-variable guard.
TEST_F(SuiteRobustnessSlow, OneShotFaultAtEachPipelineSiteIsAbsorbed) {
  const std::vector<std::string> sites = {
      "apax.decode",    "chunked.decode", "deflate.decode",      "fpc.decode",
      "fpz.decode",     "grib2.decode",   "isabela.decode",      "isobar.decode",
      "mafisc.decode",  "special.decode", "suite.verify_variant", "suite.variable",
  };
  for (const std::string& site : sites) {
    SCOPED_TRACE(site);
    fail::reset();
    fail::ScopedFailpoint fp(site, fail::Trigger::once());
    SuiteResults results;
    ASSERT_NO_THROW(results = run_suite(shared_ensemble(), quick_config(), {"U"}))
        << site << " escaped the robustness policy";
    ASSERT_EQ(results.variables.size(), 1u);
    EXPECT_EQ(results.failed_variable_count(), 0u)
        << site << " should be healed by retry or lossless fallback";
  }
}

// Sustained (probabilistic) decode failure may exhaust the retry budget;
// the suite must still complete every variable slot and produce a usable
// tally rather than aborting the run.
TEST_F(SuiteRobustnessSlow, SustainedDecodeFailureQuarantinesButCompletes) {
  fail::ScopedFailpoint fp("fpz.decode", fail::Trigger::with_probability(0.35, 2026));
  SuiteResults results;
  ASSERT_NO_THROW(results = run_suite(shared_ensemble(), quick_config(), {"U", "FSDSC"}));
  ASSERT_EQ(results.variables.size(), 2u);
  EXPECT_LE(results.failed_variable_count(), 2u);
  const auto rows = results.tally();  // must not throw on failed/fallback rows
  EXPECT_FALSE(rows.empty());
}

// The CI smoke matrix sets CESM_FAILPOINTS and runs this test. Triggers
// armed from the environment are re-applied here (earlier fixtures reset
// the registry), then a two-variable suite runs under them. Acceptable
// outcomes: a completed suite (possibly with quarantined variables), or —
// only when sched.task is armed, since it fires in run_suite's own chunk
// tasks — a cleanly typed cesm::Error.
TEST_F(SuiteRobustnessSlow, SurvivesEnvFailpointMatrix) {
  const bool armed = fail::configure_from_env();
  SCOPED_TRACE(armed ? "CESM_FAILPOINTS armed" : "no CESM_FAILPOINTS arming");
  try {
    const SuiteResults results = run_suite(shared_ensemble(), quick_config(), {"U", "FSDSC"});
    ASSERT_EQ(results.variables.size(), 2u);
    EXPECT_LE(results.failed_variable_count(), 2u);
  } catch (const Error& e) {
    EXPECT_TRUE(armed) << "unarmed suite must not throw: " << e.what();
  }
}

}  // namespace
}  // namespace cesm::core
