#include "compress/grib2/wavelet.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace cesm::comp {
namespace {

TEST(Wavelet1d, PerfectReconstructionSmallSizes) {
  Pcg32 rng(9);
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 17u, 31u, 1024u}) {
    std::vector<std::int64_t> in(n), out(n), back(n);
    for (auto& v : in) v = static_cast<std::int64_t>(rng.next_u32() % 100000) - 50000;
    dwt53_forward_1d(in, out);
    dwt53_inverse_1d(out, back);
    EXPECT_EQ(back, in) << "n=" << n;
  }
}

TEST(Wavelet1d, SmoothSignalConcentratesInLowPass) {
  constexpr std::size_t kN = 256;
  std::vector<std::int64_t> in(kN), out(kN);
  for (std::size_t i = 0; i < kN; ++i) in[i] = static_cast<std::int64_t>(i * 10);
  dwt53_forward_1d(in, out);
  // High-pass half of a linear ramp is ~zero (5/3 predicts linears exactly
  // away from boundaries).
  std::int64_t hp_energy = 0;
  for (std::size_t i = kN / 2 + 1; i < kN - 1; ++i) hp_energy += std::abs(out[i]);
  EXPECT_EQ(hp_energy, 0);
}

class Wavelet2dSizes : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(Wavelet2dSizes, PerfectReconstruction) {
  const auto [rows, cols] = GetParam();
  Pcg32 rng(static_cast<std::uint64_t>(rows * 1000 + cols));
  std::vector<std::int64_t> data(rows * cols);
  for (auto& v : data) v = static_cast<std::int64_t>(rng.next_u32() % 2000000) - 1000000;
  const std::vector<std::int64_t> original = data;
  const unsigned levels = dwt53_forward_2d(data, rows, cols, 5);
  EXPECT_NE(data, original);  // transform actually did something
  dwt53_inverse_2d(data, rows, cols, levels);
  EXPECT_EQ(data, original);
}

INSTANTIATE_TEST_SUITE_P(
    SizesSweep, Wavelet2dSizes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 64},
                      std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{3, 100},
                      std::pair<std::size_t, std::size_t>{30, 487},
                      std::pair<std::size_t, std::size_t>{17, 17},
                      std::pair<std::size_t, std::size_t>{64, 1},
                      std::pair<std::size_t, std::size_t>{101, 53}));

TEST(Wavelet2d, StopsBelowMinimumSide) {
  std::vector<std::int64_t> data(4 * 4, 7);
  const unsigned levels = dwt53_forward_2d(data, 4, 4, 5);
  EXPECT_EQ(levels, 0u);
  // With zero levels the data must be untouched.
  for (auto v : data) EXPECT_EQ(v, 7);
}

TEST(Wavelet2d, LevelCountReflectsEarlyStop) {
  std::vector<std::int64_t> data(8 * 8, 0);
  const unsigned levels = dwt53_forward_2d(data, 8, 8, 5);
  // 8 -> 4 after one level; both sides then < 8 so exactly one level runs.
  EXPECT_EQ(levels, 1u);
}

TEST(Wavelet1d, ConstantSignalStaysConstantLowPass) {
  std::vector<std::int64_t> in(64, 1000), out(64);
  dwt53_forward_1d(in, out);
  for (std::size_t i = 32; i < 64; ++i) EXPECT_EQ(out[i], 0);  // d coefficients
  std::vector<std::int64_t> back(64);
  dwt53_inverse_1d(out, back);
  EXPECT_EQ(back, in);
}

}  // namespace
}  // namespace cesm::comp
