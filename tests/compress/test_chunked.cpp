#include "compress/chunked.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "compress/apax/apax.h"
#include "compress/fpz/fpz.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

std::vector<float> field(std::size_t n) {
  Pcg32 rng(0xc4a2);
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(std::sin(i * 0.004) * 25.0 + rng.uniform(-1.0, 1.0));
  }
  return data;
}

TEST(ChunkedCodec, LosslessRoundTripAcrossChunkBoundaries) {
  const ChunkedCodec codec(std::make_shared<FpzCodec>(32), 1 << 12);
  const auto data = field(50000);
  const Shape shape = Shape::d1(data.size());
  EXPECT_GT(codec.chunk_offsets(shape).size(), 3u);  // actually chunked
  const Bytes stream = codec.encode(data, shape);
  EXPECT_EQ(codec.decode(stream), data);
}

TEST(ChunkedCodec, MultiDimChunksAlongSlowestDim) {
  const ChunkedCodec codec(std::make_shared<FpzCodec>(32), 4096);
  const Shape shape = Shape::d2(16, 2048);  // slice = 2048 elems
  const auto offsets = codec.chunk_offsets(shape);
  // target 4096 => 2 slices per chunk => 8 chunks.
  ASSERT_EQ(offsets.size(), 9u);
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_EQ((offsets[i] - offsets[i - 1]) % 2048, 0u);  // whole slices
  }
  const auto data = field(shape.count());
  EXPECT_EQ(codec.decode(codec.encode(data, shape)), data);
}

TEST(ChunkedCodec, LossyInnerStaysWithinQuality) {
  const ChunkedCodec codec(std::make_shared<ApaxCodec>(ApaxCodec::fixed_rate(4)), 8192);
  const auto data = field(40000);
  const Shape shape = Shape::d1(data.size());
  const RoundTrip rt = round_trip(codec, data, shape);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(rt.reconstructed[i], data[i], 1.0);
  }
  // Fixed-rate property survives chunking (header overhead small).
  EXPECT_NEAR(rt.cr, 0.25, 0.02);
}

TEST(ChunkedCodec, CostOfChunkingIsBounded) {
  // Chunking resets predictors: ratio degrades, but only modestly.
  const auto data = field(100000);
  const Shape shape = Shape::d1(data.size());
  const FpzCodec whole(32);
  const ChunkedCodec chunked(std::make_shared<FpzCodec>(32), 1 << 13);
  const std::size_t whole_size = whole.encode(data, shape).size();
  const std::size_t chunked_size = chunked.encode(data, shape).size();
  EXPECT_GT(chunked_size, whole_size);            // there is a cost...
  EXPECT_LT(chunked_size, whole_size * 12 / 10);  // ...but under 20%
}

TEST(ChunkedCodec, SingleChunkForSmallInputs) {
  const ChunkedCodec codec(std::make_shared<FpzCodec>(32), 1 << 16);
  const Shape shape = Shape::d1(100);
  EXPECT_EQ(codec.chunk_offsets(shape).size(), 2u);
  const auto data = field(100);
  EXPECT_EQ(codec.decode(codec.encode(data, shape)), data);
}

TEST(ChunkedCodec, CorruptStreamThrows) {
  const ChunkedCodec codec(std::make_shared<FpzCodec>(32), 4096);
  Bytes garbage(32, 0x7f);
  EXPECT_THROW(codec.decode(garbage), FormatError);
  // Truncated mid-payload.
  const auto data = field(20000);
  Bytes stream = codec.encode(data, Shape::d1(data.size()));
  stream.resize(stream.size() / 3);
  EXPECT_THROW(codec.decode(stream), FormatError);
}

// Hand-written "CHK2" stream with an attacker-controlled header: magic,
// rank-1 shape, chunk count, byte-size array, element-count array, payload.
Bytes crafted_stream(std::uint64_t dim, std::uint32_t chunks,
                     const std::vector<std::uint64_t>& sizes,
                     const std::vector<std::uint64_t>& elems,
                     std::size_t payload_bytes) {
  Bytes out;
  ByteWriter w(out);
  w.u32(0x324b4843);  // "CHK2"
  w.u8(1);
  w.u64(dim);
  w.u32(chunks);
  for (std::uint64_t s : sizes) w.u64(s);
  for (std::uint64_t e : elems) w.u64(e);
  for (std::size_t i = 0; i < payload_bytes; ++i) w.u8(0x5a);
  return out;
}

TEST(ChunkedCodec, HugeChunkSizeThrowsInsteadOfAllocating) {
  // Regression: a corrupt u64 chunk size used to reach reserve()/raw()
  // unchecked and could demand a multi-GB allocation before failing.
  const ChunkedCodec codec(std::make_shared<FpzCodec>(32), 4096);
  const Bytes stream = crafted_stream(2048, 1, {1ull << 40}, {2048}, 64);
  EXPECT_THROW(codec.decode(stream), FormatError);
}

TEST(ChunkedCodec, ChunkCountBeyondStreamLengthThrows) {
  // 2^24 - 1 claimed chunks owe ~256 MB of size + element-count entries
  // the 64-byte stream cannot contain; must throw before sizing any
  // allocation.
  const ChunkedCodec codec(std::make_shared<FpzCodec>(32), 4096);
  const Bytes stream = crafted_stream(1 << 20, (1u << 24) - 1, {}, {}, 64);
  EXPECT_THROW(codec.decode(stream), FormatError);
}

TEST(ChunkedCodec, MoreChunksThanElementsThrows) {
  const ChunkedCodec codec(std::make_shared<FpzCodec>(32), 4096);
  const Bytes stream = crafted_stream(4, 64, std::vector<std::uint64_t>(64, 8),
                                      std::vector<std::uint64_t>(64, 1), 512);
  EXPECT_THROW(codec.decode(stream), FormatError);
}

TEST(ChunkedCodec, ChunkSizesMustTilePayloadExactly) {
  const ChunkedCodec codec(std::make_shared<FpzCodec>(32), 4096);
  // Sizes sum to 32 but 64 payload bytes follow (and vice versa); the
  // element counts themselves tile the shape correctly.
  EXPECT_THROW(codec.decode(crafted_stream(2048, 2, {16, 16}, {1024, 1024}, 64)),
               FormatError);
  EXPECT_THROW(codec.decode(crafted_stream(2048, 2, {48, 48}, {1024, 1024}, 64)),
               FormatError);
}

TEST(ChunkedCodec, ChunkElementsMustTileShapeExactly) {
  const ChunkedCodec codec(std::make_shared<FpzCodec>(32), 4096);
  // Element counts under-, over-, and zero-fill the declared shape; all
  // must be rejected before any chunk is decoded into a slice.
  EXPECT_THROW(codec.decode(crafted_stream(2048, 2, {32, 32}, {1024, 512}, 64)),
               FormatError);
  EXPECT_THROW(codec.decode(crafted_stream(2048, 2, {32, 32}, {4096, 4096}, 64)),
               FormatError);
  EXPECT_THROW(codec.decode(crafted_stream(2048, 2, {32, 32}, {0, 2048}, 64)),
               FormatError);
}

TEST(ChunkedCodec, TamperedChunkSizeInValidStreamThrows) {
  const ChunkedCodec codec(std::make_shared<FpzCodec>(32), 1 << 12);
  const auto data = field(20000);
  Bytes stream = codec.encode(data, Shape::d1(data.size()));
  // Overwrite the first u64 chunk-size entry (after magic+rank+dim+count)
  // with an absurd length.
  const std::size_t size_offset = 4 + 1 + 8 + 4;
  for (int i = 0; i < 8; ++i) stream[size_offset + i] = 0xff;
  EXPECT_THROW(codec.decode(stream), FormatError);
}

TEST(ChunkedCodec, TamperedElementCountInValidStreamThrows) {
  const ChunkedCodec codec(std::make_shared<FpzCodec>(32), 1 << 12);
  const auto data = field(20000);
  const Shape shape = Shape::d1(data.size());
  Bytes stream = codec.encode(data, shape);
  const std::size_t chunks = codec.chunk_offsets(shape).size() - 1;
  // First u64 element-count entry sits after magic+rank+dim+count and the
  // byte-size array.
  const std::size_t elem_offset = 4 + 1 + 8 + 4 + 8 * chunks;
  for (int i = 0; i < 8; ++i) stream[elem_offset + i] = 0xff;
  EXPECT_THROW(codec.decode(stream), FormatError);
}

TEST(ChunkedCodec, DecodeIntoFillsCallerBufferWithoutIntermediates) {
  const ChunkedCodec codec(std::make_shared<FpzCodec>(32), 1 << 12);
  const auto data = field(50000);
  const Shape shape = Shape::d1(data.size());
  const Bytes stream = codec.encode(data, shape);
  std::vector<float> out(data.size());
  codec.decode_into(stream, out);
  EXPECT_EQ(out, data);
  // A mis-sized destination is a format error, not a partial write.
  std::vector<float> wrong(data.size() - 1);
  EXPECT_THROW(codec.decode_into(stream, wrong), FormatError);
}

TEST(ChunkedCodec, DecodeTilingComesFromStreamNotDecoderConfig) {
  // A decoder configured with a different chunk target must still decode
  // correctly: the slice layout is read from the stream header, never
  // recomputed from the decoder's own chunking policy.
  const ChunkedCodec enc(std::make_shared<FpzCodec>(32), 1 << 12);
  const ChunkedCodec dec(std::make_shared<FpzCodec>(32), 1 << 15);
  const auto data = field(50000);
  const Shape shape = Shape::d1(data.size());
  EXPECT_EQ(dec.decode(enc.encode(data, shape)), data);
}

TEST(ChunkedCodec, NameAdvertisesWrapping) {
  const ChunkedCodec codec(std::make_shared<FpzCodec>(24), 4096);
  EXPECT_EQ(codec.name(), "fpzip-24+chunked");
  EXPECT_EQ(codec.family(), "fpzip");
  EXPECT_FALSE(codec.is_lossless());
}

}  // namespace
}  // namespace cesm::comp
