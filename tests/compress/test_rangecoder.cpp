#include "compress/rangecoder.h"

#include <gtest/gtest.h>

#include <vector>

#include "compress/residual.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

TEST(RangeCoder, BitsRoundTripWithAdaptiveModel) {
  Pcg32 rng(1);
  std::vector<bool> bits;
  for (int i = 0; i < 20000; ++i) bits.push_back(rng.bounded(10) < 3);  // 30% ones

  Bytes buf;
  {
    RangeEncoder enc(buf);
    BitModel model;
    for (bool b : bits) enc.encode(model, b);
    enc.finish();
  }
  {
    RangeDecoder dec(buf);
    BitModel model;
    for (bool b : bits) ASSERT_EQ(dec.decode(model), b);
  }
}

TEST(RangeCoder, SkewedBitsCompressBelowOneBitPerSymbol) {
  // 5% ones: entropy ~0.29 bits/symbol; the adaptive coder should get
  // well under 1 bit/symbol.
  Pcg32 rng(2);
  std::vector<bool> bits;
  for (int i = 0; i < 50000; ++i) bits.push_back(rng.bounded(100) < 5);
  Bytes buf;
  RangeEncoder enc(buf);
  BitModel model;
  for (bool b : bits) enc.encode(model, b);
  enc.finish();
  EXPECT_LT(buf.size() * 8, bits.size() / 2);
}

TEST(RangeCoder, RawBitsRoundTrip) {
  Pcg32 rng(3);
  std::vector<std::pair<std::uint32_t, unsigned>> vals;
  Bytes buf;
  {
    RangeEncoder enc(buf);
    for (int i = 0; i < 5000; ++i) {
      const unsigned nbits = 1 + rng.bounded(32);
      const std::uint32_t v =
          static_cast<std::uint32_t>(rng.next_u64() & ((nbits == 32) ? 0xffffffffull
                                                                     : ((1ull << nbits) - 1)));
      vals.emplace_back(v, nbits);
      enc.encode_raw(v, nbits);
    }
    enc.finish();
  }
  {
    RangeDecoder dec(buf);
    for (const auto& [v, nbits] : vals) ASSERT_EQ(dec.decode_raw(nbits), v);
  }
}

TEST(RangeCoder, MixedModelAndRawStreams) {
  Pcg32 rng(4);
  std::vector<bool> bits;
  std::vector<std::uint32_t> raws;
  Bytes buf;
  {
    RangeEncoder enc(buf);
    BitModel model;
    for (int i = 0; i < 3000; ++i) {
      const bool b = rng.bounded(4) == 0;
      bits.push_back(b);
      enc.encode(model, b);
      const std::uint32_t v = rng.next_u32() & 0xfff;
      raws.push_back(v);
      enc.encode_raw(v, 12);
    }
    enc.finish();
  }
  {
    RangeDecoder dec(buf);
    BitModel model;
    for (int i = 0; i < 3000; ++i) {
      ASSERT_EQ(dec.decode(model), bits[static_cast<std::size_t>(i)]);
      ASSERT_EQ(dec.decode_raw(12), raws[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(ResidualCoder, MagnitudesRoundTrip) {
  std::vector<std::uint64_t> values = {0, 1, 2, 3, 127, 128, 65535, 1ull << 30,
                                       (1ull << 33) + 12345, ~0ull >> 1};
  Bytes buf;
  {
    RangeEncoder enc(buf);
    ResidualCoder coder;
    for (auto v : values) coder.encode(enc, v);
    enc.finish();
  }
  {
    RangeDecoder dec(buf);
    ResidualCoder coder;
    for (auto v : values) ASSERT_EQ(coder.decode(dec), v);
  }
}

TEST(ResidualCoder, SmallResidualsCompressTightly) {
  // Mostly-zero residual streams (the prediction success case) must cost
  // far less than a bit... well, than a byte per symbol.
  Pcg32 rng(5);
  Bytes buf;
  RangeEncoder enc(buf);
  ResidualCoder coder;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    coder.encode(enc, rng.bounded(50) == 0 ? rng.bounded(8) : 0);
  }
  enc.finish();
  EXPECT_LT(buf.size(), static_cast<std::size_t>(kN) / 8);
}

TEST(RangeCoder, EmptyStreamDecodesNothing) {
  Bytes buf;
  {
    RangeEncoder enc(buf);
    enc.finish();
  }
  RangeDecoder dec(buf);  // priming on a tiny stream must not crash
  SUCCEED();
}

}  // namespace
}  // namespace cesm::comp
