#include "compress/isabela/isabela.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compress/isabela/bspline.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

std::vector<float> noisy_field(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(std::sin(i * 0.003) * 40.0 + rng.uniform(-10.0, 10.0) + 60.0);
  }
  return data;
}

TEST(BSpline, FitsLineExactly) {
  std::vector<float> values(100);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = 2.0f * static_cast<float>(i) + 5.0f;
  const CubicBSpline spline = CubicBSpline::fit(values, 8);
  // Cubic B-splines reproduce linears exactly up to the stabilizing ridge
  // term, which perturbs at the ~1e-6 relative level.
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(spline.evaluate(i), values[i], 1e-4 * (1.0 + std::fabs(values[i])));
  }
}

TEST(BSpline, FitsSortedMonotoneCurveClosely) {
  Pcg32 rng(19);
  std::vector<float> values(1024);
  for (auto& v : values) v = static_cast<float>(rng.uniform(-100.0, 100.0));
  std::sort(values.begin(), values.end());
  const CubicBSpline spline = CubicBSpline::fit(values, 32);
  double worst = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    worst = std::max(worst, std::fabs(spline.evaluate(i) - values[i]));
  }
  // Sorted uniform noise is nearly linear; a 32-coefficient spline should
  // stay within a couple of percent of the 200-unit range.
  EXPECT_LT(worst, 5.0);
}

TEST(BSpline, CoefficientsRoundTripThroughConstructor) {
  std::vector<float> values(50);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<float>(i * i);
  const CubicBSpline fitted = CubicBSpline::fit(values, 10);
  const CubicBSpline rebuilt(fitted.coefficients(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(fitted.evaluate(i), rebuilt.evaluate(i));
  }
}

TEST(SolveBandedSpd, SolvesKnownSystem) {
  // Tridiagonal SPD system: A = diag(2) with -1 off-diagonals (bandwidth 1
  // stored in a bandwidth-3 layout like the spline fit uses).
  const std::size_t n = 5;
  std::vector<std::vector<double>> band(n, std::vector<double>(4, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    band[i][0] = 2.0;
    if (i + 1 < n) band[i][1] = -1.0;
  }
  std::vector<double> b = {1.0, 0.0, 0.0, 0.0, 1.0};
  solve_banded_spd(band, b, 3);
  // Solution of this classic system is symmetric with x0 = x4 = 1, x2 = 1.
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[2], 1.0, 1e-12);
  EXPECT_NEAR(b[4], 1.0, 1e-12);
}

class IsabelaErrorBound : public ::testing::TestWithParam<double> {};

TEST_P(IsabelaErrorBound, RelativeErrorRespectsRequest) {
  const double eps_percent = GetParam();
  const IsabelaCodec codec(eps_percent);
  const auto data = noisy_field(5000, 20);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  // Guarantee analysis: reconstruction error <= eps/2 * max(|estimate|,
  // floor); with |estimate| within a factor ~2 of |x| this stays below
  // eps * |x| for all but degenerate tiny values. Allow 2x headroom.
  std::size_t violations = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double rel = std::fabs(data[i] - rt.reconstructed[i]) /
                       std::max(1e-6, std::fabs(static_cast<double>(data[i])));
    if (rel > 2.0 * eps_percent / 100.0) ++violations;
  }
  EXPECT_EQ(violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(PaperVariants, IsabelaErrorBound, ::testing::Values(1.0, 0.5, 0.1));

TEST(IsabelaCodec, TighterErrorCostsMoreBits) {
  const auto data = noisy_field(20000, 21);
  const RoundTrip loose = round_trip(IsabelaCodec(1.0), data, Shape::d1(data.size()));
  const RoundTrip tight = round_trip(IsabelaCodec(0.1), data, Shape::d1(data.size()));
  EXPECT_LT(loose.cr, tight.cr);
}

TEST(IsabelaCodec, VariantCrsAreClose) {
  // Paper: "the difference between the three ISABELA variants is small
  // [at single precision] because the sort index dominates".
  const auto data = noisy_field(20000, 22);
  const RoundTrip a = round_trip(IsabelaCodec(1.0), data, Shape::d1(data.size()));
  const RoundTrip b = round_trip(IsabelaCodec(0.1), data, Shape::d1(data.size()));
  EXPECT_LT(b.cr - a.cr, 0.25);
}

TEST(IsabelaCodec, HandlesShortTailWindow) {
  const auto data = noisy_field(1024 + 37, 23);  // final window is tiny
  const IsabelaCodec codec(0.5);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  EXPECT_EQ(rt.reconstructed.size(), data.size());
}

TEST(IsabelaCodec, HandlesConstantData) {
  std::vector<float> data(4096, 3.5f);
  const IsabelaCodec codec(0.5);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  for (float v : rt.reconstructed) EXPECT_NEAR(v, 3.5f, 3.5f * 0.005);
}

TEST(IsabelaCodec, HandlesAllZeroData) {
  std::vector<float> data(2048, 0.0f);
  const IsabelaCodec codec(1.0);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  for (float v : rt.reconstructed) EXPECT_EQ(v, 0.0f);
}

TEST(IsabelaCodec, DoublePathRoundTrips) {
  Pcg32 rng(24);
  std::vector<double> data(3000);
  for (auto& v : data) v = rng.uniform(10.0, 20.0);
  const IsabelaCodec codec(0.5);
  const Bytes stream = codec.encode64(data, Shape::d1(data.size()));
  const auto out = codec.decode64(stream);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(out[i], data[i], data[i] * 0.02);
  }
}

TEST(IsabelaCodec, ThrowsOnCorruptStream) {
  const IsabelaCodec codec(0.5);
  Bytes garbage(32, 0xcd);
  EXPECT_THROW(codec.decode(garbage), FormatError);
}

TEST(IsabelaCodec, RejectsBadParameters) {
  EXPECT_THROW(IsabelaCodec(0.0), InvalidArgument);
  EXPECT_THROW(IsabelaCodec(-1.0), InvalidArgument);
  EXPECT_THROW(IsabelaCodec(0.5, 4), InvalidArgument);  // window too small
}

TEST(IsabelaCodec, RejectsParametersItsOwnDecoderWouldReject) {
  // decode() throws FormatError for coefficients < 4; encoding with such a
  // count would produce a stream no decoder accepts, so construction must
  // refuse it up front.
  EXPECT_THROW(IsabelaCodec(0.5, 1024, 3), InvalidArgument);
  EXPECT_THROW(IsabelaCodec(0.5, 1024, 0), InvalidArgument);
  // The header stores the count as u16: 65536 would truncate to 0 on the
  // wire and decode as "bad parameters" even though encode() succeeded.
  EXPECT_THROW(IsabelaCodec(0.5, 1u << 20, 1u << 16), InvalidArgument);
  // The widest storable count still round-trips.
  const IsabelaCodec codec(0.5, 1u << 17, 0xffff);
  const auto data = noisy_field(300, 77);
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  EXPECT_EQ(codec.decode(stream).size(), data.size());
}

TEST(IsabelaCodec, NamesMatchPaperTables) {
  EXPECT_EQ(IsabelaCodec(0.1).name(), "ISA-0.1");
  EXPECT_EQ(IsabelaCodec(0.5).name(), "ISA-0.5");
  EXPECT_EQ(IsabelaCodec(1.0).name(), "ISA-1.0");
}

}  // namespace
}  // namespace cesm::comp
