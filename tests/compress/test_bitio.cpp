#include "compress/bitio.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace cesm::comp {
namespace {

TEST(BitIo, SingleBitsRoundTrip) {
  Bytes buf;
  BitWriter w(buf);
  const bool pattern[] = {true, false, true, true, false, false, true, false, true};
  for (bool b : pattern) w.put_bit(b);
  w.align();
  BitReader r(buf);
  for (bool b : pattern) EXPECT_EQ(r.get_bit(), b);
}

TEST(BitIo, MultiBitFieldsRoundTrip) {
  Bytes buf;
  BitWriter w(buf);
  w.put(0x5, 3);
  w.put(0x1234, 16);
  w.put(0x1ffffffffull, 33);
  w.put(0, 1);
  w.align();
  BitReader r(buf);
  EXPECT_EQ(r.get(3), 0x5u);
  EXPECT_EQ(r.get(16), 0x1234u);
  EXPECT_EQ(r.get(33), 0x1ffffffffull);
  EXPECT_EQ(r.get(1), 0u);
}

TEST(BitIo, MsbFirstWithinByte) {
  Bytes buf;
  BitWriter w(buf);
  w.put_bit(true);
  w.align();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0x80);
}

TEST(BitIo, UnaryCodes) {
  Bytes buf;
  BitWriter w(buf);
  for (std::uint32_t n : {0u, 1u, 7u, 40u, 100u}) w.put_unary(n);
  w.align();
  BitReader r(buf);
  for (std::uint32_t n : {0u, 1u, 7u, 40u, 100u}) EXPECT_EQ(r.get_unary(), n);
}

TEST(BitIo, RandomizedRoundTrip) {
  Pcg32 rng(404);
  std::vector<std::pair<std::uint64_t, unsigned>> fields;
  Bytes buf;
  BitWriter w(buf);
  for (int i = 0; i < 5000; ++i) {
    const unsigned nbits = 1 + rng.bounded(57);
    const std::uint64_t value =
        rng.next_u64() & ((nbits == 64) ? ~0ull : ((1ull << nbits) - 1));
    fields.emplace_back(value, nbits);
    w.put(value, nbits);
  }
  w.align();
  BitReader r(buf);
  for (const auto& [value, nbits] : fields) {
    EXPECT_EQ(r.get(nbits), value);
  }
}

TEST(BitIo, ReaderThrowsPastEnd) {
  Bytes buf;
  BitWriter w(buf);
  w.put(0xff, 8);
  BitReader r(buf);
  r.get(8);
  EXPECT_THROW(r.get(1), FormatError);
}

TEST(BitIo, AlignSkipsToByteBoundary) {
  Bytes buf;
  BitWriter w(buf);
  w.put(0x3, 3);
  w.align();
  w.put(0xab, 8);
  w.align();
  BitReader r(buf);
  r.get(3);
  r.align();
  EXPECT_EQ(r.get(8), 0xabu);
}

TEST(BitIo, BitCountTracksPendingBits) {
  Bytes buf;
  BitWriter w(buf);
  EXPECT_EQ(w.bit_count(), 0u);
  w.put(1, 3);
  EXPECT_EQ(w.bit_count(), 3u);
  w.put(0x7f, 7);
  EXPECT_EQ(w.bit_count(), 10u);
}

}  // namespace
}  // namespace cesm::comp
