// Cross-codec property tests: every variant must decode what it encodes,
// deterministically, for every field shape and data regime the climate
// substrate produces — the invariant the whole verification methodology
// rests on.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "compress/variants.h"
#include "core/metrics.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

enum class Regime { kSmooth, kNoisy, kLogNormal, kTinyMagnitude, kConstant };

std::string regime_name(Regime r) {
  switch (r) {
    case Regime::kSmooth: return "Smooth";
    case Regime::kNoisy: return "Noisy";
    case Regime::kLogNormal: return "LogNormal";
    case Regime::kTinyMagnitude: return "Tiny";
    case Regime::kConstant: return "Constant";
  }
  return "?";
}

std::vector<float> generate(Regime regime, std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  NormalSampler normal(seed ^ 0xabcdef);
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (regime) {
      case Regime::kSmooth:
        data[i] = static_cast<float>(std::sin(i * 0.01) * 50.0 + 100.0);
        break;
      case Regime::kNoisy:
        data[i] = static_cast<float>(rng.uniform(-30.0, 70.0));
        break;
      case Regime::kLogNormal:
        data[i] = static_cast<float>(std::exp(normal.next() * 2.0));
        break;
      case Regime::kTinyMagnitude:
        data[i] = static_cast<float>(normal.next() * 1e-9);
        break;
      case Regime::kConstant:
        data[i] = 42.5f;
        break;
    }
  }
  return data;
}

using Case = std::tuple<std::string, Regime>;

class CodecRoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(CodecRoundTrip, DecodeInvertsEncodeWithinQuality) {
  const auto& [variant, regime] = GetParam();
  const CodecPtr codec = make_variant(variant);
  const auto data = generate(regime, 6000, 0x5eedull + static_cast<std::uint64_t>(regime));
  const Shape shape = Shape::d2(4, 1500);

  const RoundTrip rt = round_trip(*codec, data, shape);
  ASSERT_EQ(rt.reconstructed.size(), data.size());

  if (codec->is_lossless()) {
    EXPECT_EQ(rt.reconstructed, data);
  } else {
    // Lossy codecs must stay well-correlated on non-degenerate data.
    const core::ErrorMetrics m = core::compare_fields(data, rt.reconstructed);
    if (regime != Regime::kConstant && regime != Regime::kTinyMagnitude &&
        regime != Regime::kLogNormal) {
      EXPECT_GT(m.pearson, 0.99) << variant;
      EXPECT_LT(m.nrmse, 0.05) << variant;
    }
    // And must never produce NaN/Inf from finite input.
    for (float v : rt.reconstructed) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST_P(CodecRoundTrip, EncodeIsDeterministic) {
  const auto& [variant, regime] = GetParam();
  const CodecPtr codec = make_variant(variant);
  const auto data = generate(regime, 3000, 77);
  const Shape shape = Shape::d1(data.size());
  EXPECT_EQ(codec->encode(data, shape), codec->encode(data, shape));
}

TEST_P(CodecRoundTrip, TruncatedStreamNeverCrashes) {
  const auto& [variant, regime] = GetParam();
  const CodecPtr codec = make_variant(variant);
  const auto data = generate(regime, 2000, 88);
  Bytes stream = codec->encode(data, Shape::d1(data.size()));
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{11},
                           stream.size() / 2}) {
    Bytes cut(stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(keep));
    try {
      const auto out = codec->decode(cut);
      // Some coders tolerate truncation by zero-padding; output size must
      // still be consistent if no exception is raised.
      EXPECT_EQ(out.size(), keep == 0 ? out.size() : data.size());
    } catch (const Error&) {
      // Throwing FormatError (or any library error) is the expected path.
    }
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const char* variant : {"NetCDF-4", "fpzip-16", "fpzip-24", "fpzip-32", "ISA-0.1",
                              "ISA-0.5", "ISA-1.0", "APAX-2", "APAX-4", "APAX-5",
                              "GRIB2:6"}) {
    for (Regime regime : {Regime::kSmooth, Regime::kNoisy, Regime::kLogNormal,
                          Regime::kTinyMagnitude, Regime::kConstant}) {
      cases.emplace_back(variant, regime);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAllRegimes, CodecRoundTrip, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = std::get<0>(info.param) + "_" + regime_name(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace cesm::comp
