// Cross-codec property tests: every variant must decode what it encodes,
// deterministically, for every field shape and data regime the climate
// substrate produces — the invariant the whole verification methodology
// rests on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "compress/variants.h"
#include "core/metrics.h"
#include "support/generators.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

enum class Regime { kSmooth, kNoisy, kLogNormal, kTinyMagnitude, kConstant };

std::string regime_name(Regime r) {
  switch (r) {
    case Regime::kSmooth: return "Smooth";
    case Regime::kNoisy: return "Noisy";
    case Regime::kLogNormal: return "LogNormal";
    case Regime::kTinyMagnitude: return "Tiny";
    case Regime::kConstant: return "Constant";
  }
  return "?";
}

std::vector<float> generate(Regime regime, std::size_t n, std::uint64_t seed) {
  switch (regime) {
    case Regime::kSmooth: return testgen::smooth_field(n, seed);
    case Regime::kNoisy: return testgen::noisy_field(n, seed);
    case Regime::kLogNormal: return testgen::lognormal_field(n, seed);
    case Regime::kTinyMagnitude: return testgen::tiny_field(n, seed);
    case Regime::kConstant: return testgen::constant_field(n);
  }
  return {};
}

using Case = std::tuple<std::string, Regime>;

class CodecRoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(CodecRoundTrip, DecodeInvertsEncodeWithinQuality) {
  const auto& [variant, regime] = GetParam();
  const CodecPtr codec = make_variant(variant);
  const auto data = generate(regime, 6000, 0x5eedull + static_cast<std::uint64_t>(regime));
  const Shape shape = Shape::d2(4, 1500);

  const RoundTrip rt = round_trip(*codec, data, shape);
  ASSERT_EQ(rt.reconstructed.size(), data.size());

  if (codec->is_lossless()) {
    EXPECT_EQ(rt.reconstructed, data);
  } else {
    // Lossy codecs must stay well-correlated on non-degenerate data.
    const core::ErrorMetrics m = core::compare_fields(data, rt.reconstructed);
    if (regime != Regime::kConstant && regime != Regime::kTinyMagnitude &&
        regime != Regime::kLogNormal) {
      EXPECT_GT(m.pearson, 0.99) << variant;
      EXPECT_LT(m.nrmse, 0.05) << variant;
    }
    // And must never produce NaN/Inf from finite input.
    for (float v : rt.reconstructed) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST_P(CodecRoundTrip, EncodeIsDeterministic) {
  const auto& [variant, regime] = GetParam();
  const CodecPtr codec = make_variant(variant);
  const auto data = generate(regime, 3000, 77);
  const Shape shape = Shape::d1(data.size());
  EXPECT_EQ(codec->encode(data, shape), codec->encode(data, shape));
}

TEST_P(CodecRoundTrip, TruncatedStreamNeverCrashes) {
  const auto& [variant, regime] = GetParam();
  const CodecPtr codec = make_variant(variant);
  const auto data = generate(regime, 2000, 88);
  Bytes stream = codec->encode(data, Shape::d1(data.size()));
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{11},
                           stream.size() / 2}) {
    Bytes cut(stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(keep));
    try {
      const auto out = codec->decode(cut);
      // Some coders tolerate truncation by zero-padding; output size must
      // still be consistent if no exception is raised.
      EXPECT_EQ(out.size(), keep == 0 ? out.size() : data.size());
    } catch (const Error&) {
      // Throwing FormatError (or any library error) is the expected path.
    }
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const char* variant : {"NetCDF-4", "fpzip-16", "fpzip-24", "fpzip-32", "ISA-0.1",
                              "ISA-0.5", "ISA-1.0", "APAX-2", "APAX-4", "APAX-5",
                              "GRIB2:6"}) {
    for (Regime regime : {Regime::kSmooth, Regime::kNoisy, Regime::kLogNormal,
                          Regime::kTinyMagnitude, Regime::kConstant}) {
      cases.emplace_back(variant, regime);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAllRegimes, CodecRoundTrip, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = std::get<0>(info.param) + "_" + regime_name(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Conformance: each variant's *advertised contract*, checked per point.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kConformanceSeed = 0xC0DEC5EEDull;

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

/// Bit-pattern equality: NaNs compare equal to themselves, -0.0 != +0.0.
bool bits_equal(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

class LosslessConformance : public ::testing::TestWithParam<std::string> {};

// Lossless means lossless on *every* bit pattern, not just friendly data:
// subnormals, NaN/±inf salting, tiny magnitudes, constants.
TEST_P(LosslessConformance, BitExactOnHostileData) {
  const CodecPtr codec = make_variant(GetParam());
  ASSERT_TRUE(codec->is_lossless()) << GetParam();
  SCOPED_TRACE(testgen::seed_banner(kConformanceSeed));

  std::vector<std::vector<float>> datasets;
  datasets.push_back(testgen::denormal_field(4096, kConformanceSeed));
  datasets.push_back(testgen::tiny_field(4096, hash_combine(kConformanceSeed, 1)));
  datasets.push_back(testgen::constant_field(4096, -0.0f));
  {
    auto salted = testgen::smooth_field(4096, hash_combine(kConformanceSeed, 2));
    testgen::salt_specials(salted, hash_combine(kConformanceSeed, 3), 0.05);
    datasets.push_back(std::move(salted));
  }
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const auto& data = datasets[d];
    const RoundTrip rt = round_trip(*codec, data, Shape::d2(4, data.size() / 4));
    EXPECT_TRUE(bits_equal(data, rt.reconstructed))
        << GetParam() << " dataset " << d << " is not bit-exact";
  }
}

INSTANTIATE_TEST_SUITE_P(AllLossless, LosslessConformance,
                         ::testing::Values("NetCDF-4", "fpzip-32", "ISOBAR", "MAFISC",
                                           "FPC"),
                         [](const auto& info) { return sanitize(info.param); });

/// The advertised per-point bound of a lossy variant on `data`, or a
/// negative value when the variant advertises none (fixed-rate APAX).
double advertised_bound(const std::string& variant, double value,
                        double data_lo, double data_hi) {
  if (variant.rfind("ISA-", 0) == 0) {
    // ISABELA: per-point relative error <= eps%, 2x headroom for the
    // spline ridge term, 1e-6 floor for near-zero points (same model as
    // tests/compress/test_isabela.cpp).
    const double eps = std::stod(variant.substr(4)) / 100.0;
    return 2.0 * eps * std::max(1e-6, std::fabs(value));
  }
  if (variant.rfind("fpzip-", 0) == 0) {
    // fpzip-p keeps p of 32 bits: relative error ~2^-(p-8) on normal
    // floats (test_fpz uses 2^-15 for p=24).
    const int p = std::stoi(variant.substr(6));
    return std::ldexp(std::fabs(value), -(p - 9));
  }
  if (variant.rfind("GRIB2:", 0) == 0) {
    // GRIB2: absolute half-step of the quantization grid, where the
    // binary scale E grows until the integer range fits 2^28.
    const int d = std::stoi(variant.substr(6));
    const double dec_scale = std::pow(10.0, d);
    int binary_scale = 0;
    while (std::ldexp((data_hi - data_lo) * dec_scale, -binary_scale) >
           static_cast<double>(1ll << 28)) {
      ++binary_scale;
    }
    const double step = std::ldexp(1.0, binary_scale) / dec_scale;
    // The half-step plus slack for the float32 arithmetic of the decode
    // path itself (reference + q*step is evaluated in single precision).
    return 0.5 * step * (1.0 + 1e-4) + 1e-6 + std::fabs(value) * 4.0 * 0x1.0p-23;
  }
  return -1.0;  // no per-point contract
}

class LossyBoundConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(LossyBoundConformance, EveryPointWithinAdvertisedBound) {
  const std::string& variant = GetParam();
  const CodecPtr codec = make_variant(variant);
  ASSERT_FALSE(codec->is_lossless()) << variant;
  SCOPED_TRACE(testgen::seed_banner(kConformanceSeed));

  // Positive smooth field: the regime every lossy variant advertises its
  // bound for (fpzip's relative-error model needs same-sign data).
  const auto data = testgen::smooth_field(20000, kConformanceSeed);
  const auto [lo, hi] = std::minmax_element(data.begin(), data.end());
  const RoundTrip rt = round_trip(*codec, data, Shape::d1(data.size()));
  ASSERT_EQ(rt.reconstructed.size(), data.size());

  std::size_t violations = 0;
  double worst = 0.0;
  std::size_t worst_i = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double bound = advertised_bound(variant, data[i], *lo, *hi);
    ASSERT_GE(bound, 0.0) << variant << " has no advertised per-point bound";
    const double err = std::fabs(static_cast<double>(data[i]) - rt.reconstructed[i]);
    if (err > bound) {
      ++violations;
      if (err - bound > worst) {
        worst = err - bound;
        worst_i = i;
      }
    }
  }
  EXPECT_EQ(violations, 0u) << variant << ": worst excess " << worst << " at index "
                            << worst_i << " (value " << data[worst_i] << ")";
}

INSTANTIATE_TEST_SUITE_P(AdvertisedBounds, LossyBoundConformance,
                         ::testing::Values("ISA-0.1", "ISA-0.5", "ISA-1.0", "fpzip-24",
                                           "fpzip-16", "GRIB2:2", "GRIB2:4"),
                         [](const auto& info) { return sanitize(info.param); });

class FillPreservation : public ::testing::TestWithParam<std::string> {};

// No variant — lossy or not — may alter a fill-masked point: the paper's
// land/ocean masks must survive any round trip bit-for-bit.
TEST_P(FillPreservation, MaskedPointsSurviveExactly) {
  constexpr float kFill = 1.0e20f;
  const std::string& variant = GetParam();
  const CodecPtr codec = make_variant(variant, kFill);
  SCOPED_TRACE(testgen::seed_banner(kConformanceSeed));

  auto data = testgen::smooth_field(12000, hash_combine(kConformanceSeed, 17));
  const auto mask = testgen::fill_mask(data.size(), hash_combine(kConformanceSeed, 18));
  testgen::apply_fill(data, mask, kFill);

  const RoundTrip rt = round_trip(*codec, data, Shape::d2(6, data.size() / 6));
  ASSERT_EQ(rt.reconstructed.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (mask[i] == 0) {
      ASSERT_EQ(rt.reconstructed[i], kFill) << variant << " altered masked point " << i;
    } else {
      ASSERT_TRUE(std::isfinite(rt.reconstructed[i]))
          << variant << " corrupted valid point " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariantsWithFill, FillPreservation,
                         ::testing::Values("GRIB2:3", "APAX-2", "APAX-4", "APAX-5",
                                           "fpzip-24", "fpzip-16", "fpzip-32", "ISA-0.1",
                                           "ISA-0.5", "ISA-1.0", "NetCDF-4"),
                         [](const auto& info) { return sanitize(info.param); });

}  // namespace
}  // namespace cesm::comp
