#include "compress/fpz/fpz.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "compress/fpz/predictor.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

std::vector<float> smooth_field(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> data(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += rng.uniform(-1.0, 1.0);
    data[i] = static_cast<float>(std::sin(i * 0.01) * 50.0 + acc * 0.1);
  }
  return data;
}

TEST(OrderedMap, PreservesTotalOrder) {
  const float values[] = {-1e30f, -5.0f, -1e-30f, -0.0f, 0.0f, 1e-30f, 2.5f, 1e30f};
  for (std::size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LE(float_to_ordered(values[i]), float_to_ordered(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(OrderedMap, IsBijective) {
  Pcg32 rng(10);
  for (int i = 0; i < 10000; ++i) {
    const auto bits = rng.next_u32();
    const float f = std::bit_cast<float>(bits);
    if (std::isnan(f)) continue;
    EXPECT_EQ(std::bit_cast<std::uint32_t>(ordered_to_float(float_to_ordered(f))), bits);
  }
}

TEST(OrderedMap, DoubleVariantPreservesOrder) {
  EXPECT_LT(double_to_ordered(-3.0), double_to_ordered(-2.9));
  EXPECT_LT(double_to_ordered(-1e-300), double_to_ordered(1e-300));
  EXPECT_EQ(ordered_to_double(double_to_ordered(42.0)), 42.0);
}

TEST(Zigzag, SmallMagnitudesGetSmallCodes) {
  EXPECT_EQ(zigzag_encode<std::uint32_t>(0u), 0u);
  EXPECT_EQ(zigzag_encode<std::uint32_t>(static_cast<std::uint32_t>(-1)), 1u);
  EXPECT_EQ(zigzag_encode<std::uint32_t>(1u), 2u);
  for (std::int32_t v : {-1000, -3, 0, 7, 12345}) {
    const auto u = static_cast<std::uint32_t>(v);
    EXPECT_EQ(zigzag_decode(zigzag_encode(u)), u);
  }
}

TEST(FpzCodec, LosslessModeIsBitExact) {
  const FpzCodec codec(32);
  EXPECT_TRUE(codec.is_lossless());
  std::vector<float> data = smooth_field(10000, 11);
  data.push_back(-0.0f);
  data.push_back(std::numeric_limits<float>::infinity());
  data.push_back(1e35f);
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  const std::vector<float> out = codec.decode(stream);
  ASSERT_EQ(out.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(out[i]), std::bit_cast<std::uint32_t>(data[i]));
  }
}

TEST(FpzCodec, LosslessCompressesSmoothData) {
  const FpzCodec codec(32);
  const auto data = smooth_field(50000, 12);
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  EXPECT_LT(compression_ratio(stream.size(), data.size()), 0.7);
}

TEST(FpzCodec, PrecisionControlsErrorMonotonically) {
  const auto data = smooth_field(20000, 13);
  double prev_err = -1.0;
  double prev_cr = -1.0;
  for (unsigned prec : {16u, 24u, 32u}) {
    const FpzCodec codec(prec);
    const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
    double emax = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      emax = std::max(emax, std::fabs(static_cast<double>(data[i]) - rt.reconstructed[i]));
    }
    if (prev_err >= 0.0) {
      EXPECT_LE(emax, prev_err);  // more precision, less error
      EXPECT_GE(rt.cr, prev_cr);  // more precision, less compression
    }
    prev_err = emax;
    prev_cr = rt.cr;
  }
  EXPECT_NEAR(prev_err, 0.0, 0.0);  // 32-bit is exact
}

TEST(FpzCodec, TruncationBoundsRelativeError) {
  // Keeping 24 of 32 bits leaves 16 mantissa bits: relative error per
  // value is bounded by ~2^-16 (the ordered-int map truncates mantissa
  // bits for normal floats).
  const FpzCodec codec(24);
  std::vector<float> data;
  Pcg32 rng(14);
  for (int i = 0; i < 20000; ++i) data.push_back(static_cast<float>(rng.uniform(1.0, 2.0)));
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double rel = std::fabs(data[i] - rt.reconstructed[i]) / data[i];
    ASSERT_LT(rel, std::pow(2.0, -15));
  }
}

TEST(FpzCodec, MultiDimPredictorBeatsOneDim) {
  // A separable 2-D field is predicted far better by the 2-D Lorenzo
  // stencil than by a flat 1-D pass.
  constexpr std::size_t kRows = 64, kCols = 256;
  std::vector<float> data(kRows * kCols);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t c = 0; c < kCols; ++c) {
      data[r * kCols + c] =
          static_cast<float>(std::sin(r * 0.2) * 30.0 + std::cos(c * 0.05) * 20.0);
    }
  }
  const FpzCodec codec(32);
  const Bytes as2d = codec.encode(data, Shape::d2(kRows, kCols));
  const Bytes as1d = codec.encode(data, Shape::d1(data.size()));
  EXPECT_LT(as2d.size(), as1d.size());
}

TEST(FpzCodec, Rank3RoundTrip) {
  constexpr std::size_t kP = 4, kR = 16, kC = 32;
  std::vector<float> data(kP * kR * kC);
  Pcg32 rng(15);
  for (auto& v : data) v = static_cast<float>(rng.uniform(-10.0, 10.0));
  const FpzCodec codec(32);
  const Bytes stream = codec.encode(data, Shape::d3(kP, kR, kC));
  EXPECT_EQ(codec.decode(stream), data);
}

TEST(FpzCodec, DoubleLosslessRoundTrip) {
  const FpzCodec codec(64);
  std::vector<double> data(5000);
  Pcg32 rng(16);
  for (auto& v : data) v = rng.uniform(-1e100, 1e100);
  const Bytes stream = codec.encode64(data, Shape::d1(data.size()));
  EXPECT_EQ(codec.decode64(stream), data);
}

TEST(FpzCodec, DoubleLossyBoundsError) {
  const FpzCodec codec(40);  // keep 40 of 64 bits
  std::vector<double> data(5000);
  Pcg32 rng(17);
  for (auto& v : data) v = rng.uniform(1.0, 2.0);
  const Bytes stream = codec.encode64(data, Shape::d1(data.size()));
  const auto out = codec.decode64(stream);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LT(std::fabs(data[i] - out[i]) / data[i], std::pow(2.0, -25));
  }
}

TEST(FpzCodec, RejectsInvalidPrecision) {
  EXPECT_THROW(FpzCodec(12), InvalidArgument);
  EXPECT_THROW(FpzCodec(0), InvalidArgument);
  EXPECT_THROW(FpzCodec(72), InvalidArgument);
}

TEST(FpzCodec, ThrowsOnCorruptMagic) {
  const FpzCodec codec(32);
  Bytes garbage = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
  EXPECT_THROW(codec.decode(garbage), FormatError);
}

TEST(FpzCodec, ThrowsOnTruncatedStream) {
  const FpzCodec codec(32);
  const auto data = smooth_field(1000, 18);
  Bytes stream = codec.encode(data, Shape::d1(data.size()));
  stream.resize(10);
  EXPECT_THROW(codec.decode(stream), FormatError);
}

TEST(FpzCodec, NamesMatchPaperTables) {
  EXPECT_EQ(FpzCodec(16).name(), "fpzip-16");
  EXPECT_EQ(FpzCodec(24).name(), "fpzip-24");
  EXPECT_EQ(FpzCodec(32).name(), "fpzip-32");
}

}  // namespace
}  // namespace cesm::comp
