#include "compress/deflate/huffman.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/rng.h"

namespace cesm::comp {
namespace {

std::uint64_t kraft_sum_scaled(std::span<const std::uint8_t> lengths, unsigned max_len) {
  std::uint64_t k = 0;
  for (auto l : lengths) {
    if (l) k += 1ull << (max_len - l);
  }
  return k;
}

TEST(HuffmanLengths, RespectsKraftInequality) {
  std::vector<std::uint64_t> freqs = {100, 50, 25, 12, 6, 3, 1, 1};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_LE(kraft_sum_scaled(lengths, 15), 1ull << 15);
  for (std::size_t i = 0; i < freqs.size(); ++i) EXPECT_GT(lengths[i], 0u);
}

TEST(HuffmanLengths, MoreFrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freqs = {1000, 1, 1, 1};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_LT(lengths[0], lengths[1]);
}

TEST(HuffmanLengths, ZeroFrequencySymbolsGetNoCode) {
  std::vector<std::uint64_t> freqs = {10, 0, 5, 0};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_GT(lengths[0], 0u);
  EXPECT_EQ(lengths[1], 0u);
  EXPECT_EQ(lengths[3], 0u);
}

TEST(HuffmanLengths, SingleSymbolGetsLengthOne) {
  std::vector<std::uint64_t> freqs = {0, 42, 0};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_EQ(lengths[1], 1u);
}

TEST(HuffmanLengths, EnforcesLengthLimit) {
  // Fibonacci-like frequencies force deep trees; the limiter must clamp
  // to max_len while keeping a decodable (Kraft-valid) code.
  std::vector<std::uint64_t> freqs;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    const std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  const auto lengths = huffman_code_lengths(freqs, 15);
  for (auto l : lengths) EXPECT_LE(l, 15u);
  EXPECT_LE(kraft_sum_scaled(lengths, 15), 1ull << 15);
}

TEST(HuffmanCodec, RoundTripsSymbolStream) {
  Pcg32 rng(21);
  constexpr std::size_t kAlphabet = 64;
  std::vector<std::uint64_t> freqs(kAlphabet, 0);
  std::vector<unsigned> symbols;
  for (int i = 0; i < 20000; ++i) {
    // Geometric-ish distribution.
    unsigned s = 0;
    while (s + 1 < kAlphabet && rng.bounded(3) != 0) ++s;
    symbols.push_back(s);
    ++freqs[s];
  }
  const auto lengths = huffman_code_lengths(freqs);
  const HuffmanEncoder enc(lengths);
  const HuffmanDecoder dec(lengths);

  Bytes buf;
  BitWriter bw(buf);
  for (unsigned s : symbols) enc.put(bw, s);
  bw.align();

  BitReader br(buf);
  for (unsigned s : symbols) ASSERT_EQ(dec.get(br), s);
}

TEST(HuffmanCodec, CompressesSkewedDataNearEntropy) {
  // Two symbols at 87.5% / 12.5%: entropy 0.543 bits. Huffman floor is
  // 1 bit/symbol; check we hit exactly that.
  std::vector<std::uint64_t> freqs = {875, 125};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_EQ(lengths[0], 1u);
  EXPECT_EQ(lengths[1], 1u);
}

TEST(HuffmanDecoder, ThrowsOnOversubscribedCode) {
  std::vector<std::uint8_t> lengths = {1, 1, 1};  // Kraft sum 1.5 > 1
  EXPECT_THROW(HuffmanDecoder{lengths}, FormatError);
}

TEST(HuffmanDecoder, ThrowsOnInvalidCodeword) {
  // Lengths {1} leaves half the code space unassigned; reading a '1' bit
  // must fail rather than return garbage.
  std::vector<std::uint8_t> lengths = {1};
  const HuffmanDecoder dec(lengths);
  Bytes buf = {0xff};
  BitReader br(buf);
  EXPECT_THROW(dec.get(br), FormatError);
}

}  // namespace
}  // namespace cesm::comp
