#include "compress/codec.h"

#include <gtest/gtest.h>

#include "compress/fpz/fpz.h"

namespace cesm::comp {
namespace {

TEST(Shape, CountAndRank) {
  EXPECT_EQ(Shape::d1(10).count(), 10u);
  EXPECT_EQ(Shape::d2(3, 4).count(), 12u);
  EXPECT_EQ(Shape::d3(2, 3, 4).count(), 24u);
  EXPECT_EQ(Shape::d3(2, 3, 4).rank(), 3u);
  EXPECT_EQ(Shape{}.count(), 0u);
}

TEST(CompressionRatio, PaperDefinition) {
  // eq. (1): compressed / original, with float32 elements by default.
  EXPECT_DOUBLE_EQ(compression_ratio(200, 100), 0.5);
  EXPECT_DOUBLE_EQ(compression_ratio(400, 100), 1.0);
  EXPECT_DOUBLE_EQ(compression_ratio(400, 100, 8), 0.5);  // doubles
  EXPECT_THROW(compression_ratio(1, 0), InvalidArgument);
}

TEST(WireHeader, RoundTrips) {
  Bytes buf;
  ByteWriter w(buf);
  wire::write_header(w, 0x12345678, Shape::d2(7, 9));
  ByteReader r(buf);
  const Shape s = wire::read_header(r, 0x12345678);
  EXPECT_EQ(s.dims, (std::vector<std::size_t>{7, 9}));
}

TEST(WireHeader, RejectsWrongMagic) {
  Bytes buf;
  ByteWriter w(buf);
  wire::write_header(w, 0x11111111, Shape::d1(5));
  ByteReader r(buf);
  EXPECT_THROW(wire::read_header(r, 0x22222222), FormatError);
}

TEST(WireHeader, RejectsInsaneDimensions) {
  Bytes buf;
  ByteWriter w(buf);
  w.u32(0xabc);
  w.u8(1);
  w.u64(0);  // zero extent
  ByteReader r(buf);
  EXPECT_THROW(wire::read_header(r, 0xabc), FormatError);

  Bytes buf2;
  ByteWriter w2(buf2);
  w2.u32(0xabc);
  w2.u8(9);  // rank > 8
  ByteReader r2(buf2);
  EXPECT_THROW(wire::read_header(r2, 0xabc), FormatError);
}

TEST(RoundTripHelper, ReportsSizeAndRatio) {
  const FpzCodec codec(32);
  std::vector<float> data(1000, 1.5f);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  EXPECT_EQ(rt.reconstructed, data);
  EXPECT_GT(rt.compressed_bytes, 0u);
  EXPECT_DOUBLE_EQ(rt.cr, static_cast<double>(rt.compressed_bytes) / 4000.0);
  EXPECT_LT(rt.cr, 0.1);  // constant data compresses hard
}

TEST(Codec, Default64BitPathThrowsWhenUnsupported) {
  // Grib2Codec does not implement the double path (Table 1: 32/64 = N);
  // the base-class default must throw, not silently truncate.
  class MinimalCodec final : public Codec {
   public:
    [[nodiscard]] std::string name() const override { return "minimal"; }
    [[nodiscard]] std::string family() const override { return "test"; }
    [[nodiscard]] bool is_lossless() const override { return true; }
    [[nodiscard]] Capabilities capabilities() const override { return {}; }
    [[nodiscard]] Bytes encode(std::span<const float>, const Shape&) const override {
      return {};
    }
    [[nodiscard]] std::vector<float> decode(
        std::span<const std::uint8_t>) const override {
      return {};
    }
  };
  const MinimalCodec codec;
  const std::vector<double> data = {1.0};
  EXPECT_THROW((void)codec.encode64(data, Shape::d1(1)), InvalidArgument);
  EXPECT_THROW((void)codec.decode64({}), InvalidArgument);
}

}  // namespace
}  // namespace cesm::comp
