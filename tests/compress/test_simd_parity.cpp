// Scalar-reference vs vectorized codec-kernel parity (codec_kernels.h).
//
// The vectorized kernels are only admissible if they are bit-identical to
// the scalar reference on EVERY input, so each kernel is checked across
// hostile field regimes (subnormals, NaN/inf salting, fill-masked points)
// and across a dense sweep of buffer lengths covering every lane-tail
// remainder: for the widest lane width w in play (8 for f32 AVX2), the
// sweep hits every n mod w in {0..w-1} twice, plus the degenerate tiny
// lengths below one full lane.
//
// Stream-level tests close the loop: each codec family must emit
// byte-identical streams and decodes under simd::Mode::kScalar and kSimd.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "compress/codec_kernels.h"
#include "compress/fpz/predictor.h"
#include "compress/simd.h"
#include "compress/variants.h"
#include "support/generators.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

namespace k = kernels;

// Lengths exercising every tail remainder for lane widths up to 16, plus
// sub-lane degenerate sizes.
std::vector<std::size_t> tail_lengths() {
  std::vector<std::size_t> lens;
  for (std::size_t n = 0; n <= 17; ++n) lens.push_back(n);
  for (std::size_t n = 1013; n <= 1040; ++n) lens.push_back(n);
  return lens;
}

enum class Field { kSmooth, kDenormal, kSpecials, kFilled };

const char* field_name(Field f) {
  switch (f) {
    case Field::kSmooth: return "smooth";
    case Field::kDenormal: return "denormal";
    case Field::kSpecials: return "specials";
    case Field::kFilled: return "filled";
  }
  return "?";
}

std::vector<float> make_field(Field f, std::size_t n, std::uint64_t seed) {
  std::vector<float> data;
  switch (f) {
    case Field::kSmooth:
      data = testgen::smooth_field(n, seed);
      break;
    case Field::kDenormal:
      data = testgen::denormal_field(n, seed);
      break;
    case Field::kSpecials:
      data = testgen::smooth_field(n, seed);
      testgen::salt_specials(data, seed + 1, 0.05);
      break;
    case Field::kFilled:
      data = testgen::smooth_field(n, seed);
      testgen::apply_fill(data, testgen::fill_mask(n, seed + 2), 9.96921e36f);
      break;
  }
  return data;
}

std::vector<double> widen(const std::vector<float>& f) {
  std::vector<double> d(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) d[i] = static_cast<double>(f[i]);
  return d;
}

// memcmp is declared nonnull, and an empty vector's data() may be null —
// the n=0 sweep entries need a guard to stay UBSan-clean.
template <typename T>
bool same_bytes(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

bool skip_unless_simd() {
  if (!simd::simd_supported()) return true;
  return false;
}

#define REQUIRE_SIMD()                                                      \
  if (skip_unless_simd()) GTEST_SKIP() << "vectorized kernels unsupported " \
                                          "on this host"

constexpr Field kAllFields[] = {Field::kSmooth, Field::kDenormal, Field::kSpecials,
                                Field::kFilled};

TEST(SimdParity, OrderedMapFloat) {
  REQUIRE_SIMD();
  for (Field f : kAllFields) {
    for (std::size_t n : tail_lengths()) {
      SCOPED_TRACE(std::string(field_name(f)) + " n=" + std::to_string(n));
      const std::vector<float> data = make_field(f, n, 0xA1);
      for (unsigned shift : {0u, 8u, 15u}) {
        std::vector<std::uint32_t> qs(n), qv(n);
        k::scalar::ordered_from_f32(data.data(), qs.data(), n, shift);
        k::vec::ordered_from_f32(data.data(), qv.data(), n, shift);
        ASSERT_TRUE(same_bytes(qs, qv)) << "shift=" << shift;

        const std::uint32_t half = shift == 0 ? 0 : (1u << (shift - 1));
        std::vector<float> rs(n), rv(n);
        k::scalar::f32_from_ordered(qs.data(), rs.data(), n, shift, half);
        k::vec::f32_from_ordered(qs.data(), rv.data(), n, shift, half);
        ASSERT_TRUE(same_bytes(rs, rv)) << "shift=" << shift;
      }
    }
  }
}

TEST(SimdParity, OrderedMapDouble) {
  REQUIRE_SIMD();
  for (Field f : kAllFields) {
    for (std::size_t n : tail_lengths()) {
      SCOPED_TRACE(std::string(field_name(f)) + " n=" + std::to_string(n));
      const std::vector<double> data = widen(make_field(f, n, 0xA2));
      for (unsigned shift : {0u, 12u}) {
        std::vector<std::uint64_t> qs(n), qv(n);
        k::scalar::ordered_from_f64(data.data(), qs.data(), n, shift);
        k::vec::ordered_from_f64(data.data(), qv.data(), n, shift);
        ASSERT_TRUE(same_bytes(qs, qv));

        const std::uint64_t half = shift == 0 ? 0 : (1ull << (shift - 1));
        std::vector<double> rs(n), rv(n);
        k::scalar::f64_from_ordered(qs.data(), rs.data(), n, shift, half);
        k::vec::f64_from_ordered(qs.data(), rv.data(), n, shift, half);
        ASSERT_TRUE(same_bytes(rs, rv));
      }
    }
  }
}

// Shapes covering 1D tails, 2D with odd/even row widths, and 3D with every
// plane/row/col remainder class the row-blocked kernels branch on.
const k::Dims kLorenzoShapes[] = {
    {1, 1, 1},  {1, 1, 7},  {1, 1, 8},   {1, 1, 9},   {1, 1, 1021},
    {1, 2, 3},  {1, 7, 13}, {1, 16, 16}, {1, 31, 33}, {1, 5, 1024},
    {2, 3, 5},  {3, 7, 11}, {4, 8, 8},   {5, 9, 17},  {2, 16, 129},
};

TEST(SimdParity, LorenzoResidualsAndReconstruct32) {
  REQUIRE_SIMD();
  for (Field f : {Field::kSmooth, Field::kDenormal, Field::kSpecials}) {
    for (const k::Dims& d : kLorenzoShapes) {
      const std::size_t n = d.planes * d.rows * d.cols;
      SCOPED_TRACE(std::string(field_name(f)) + " dims=" + std::to_string(d.planes) +
                   "x" + std::to_string(d.rows) + "x" + std::to_string(d.cols));
      const std::vector<float> data = make_field(f, n, 0xA3);
      std::vector<std::uint32_t> q(n);
      k::scalar::ordered_from_f32(data.data(), q.data(), n, 4);

      std::vector<std::uint32_t> zs(n), zv(n);
      k::scalar::lorenzo_residuals_u32(q.data(), zs.data(), d);
      k::vec::lorenzo_residuals_u32(q.data(), zv.data(), d);
      ASSERT_TRUE(same_bytes(zs, zv));

      // Cross-check against the predictor directly: the residual must be
      // the zigzagged difference from LorenzoPredictor at every site.
      const LorenzoPredictor<std::uint32_t> pred(q, d.rows, d.cols, d.planes);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(zs[i], zigzag_encode(static_cast<std::uint32_t>(q[i] - pred.predict(i))))
            << "i=" << i;
      }

      std::vector<std::uint32_t> rs(n), rv(n);
      k::scalar::lorenzo_reconstruct_u32(rs.data(), zs.data(), d);
      k::vec::lorenzo_reconstruct_u32(rv.data(), zs.data(), d);
      ASSERT_TRUE(same_bytes(rs, rv));
      ASSERT_TRUE(same_bytes(rs, q)) << "reconstruct must invert residuals";
    }
  }
}

TEST(SimdParity, LorenzoResidualsAndReconstruct64) {
  REQUIRE_SIMD();
  for (const k::Dims& d : kLorenzoShapes) {
    const std::size_t n = d.planes * d.rows * d.cols;
    SCOPED_TRACE("dims=" + std::to_string(d.planes) + "x" + std::to_string(d.rows) +
                 "x" + std::to_string(d.cols));
    const std::vector<double> data = widen(make_field(Field::kSpecials, n, 0xA4));
    std::vector<std::uint64_t> q(n);
    k::scalar::ordered_from_f64(data.data(), q.data(), n, 4);

    std::vector<std::uint64_t> zs(n), zv(n);
    k::scalar::lorenzo_residuals_u64(q.data(), zs.data(), d);
    k::vec::lorenzo_residuals_u64(q.data(), zv.data(), d);
    ASSERT_TRUE(same_bytes(zs, zv));

    std::vector<std::uint64_t> rs(n), rv(n);
    k::scalar::lorenzo_reconstruct_u64(rs.data(), zs.data(), d);
    k::vec::lorenzo_reconstruct_u64(rv.data(), zs.data(), d);
    ASSERT_TRUE(same_bytes(rs, rv));
    ASSERT_TRUE(same_bytes(rs, q));
  }
}

TEST(SimdParity, SortPermutation) {
  REQUIRE_SIMD();
  for (Field f : kAllFields) {
    for (std::size_t n : tail_lengths()) {
      SCOPED_TRACE(std::string(field_name(f)) + " n=" + std::to_string(n));
      std::vector<float> data = make_field(f, n, 0xA5);
      // Duplicates and signed zeros stress the stability contract.
      if (n >= 8) {
        data[1] = data[0];
        data[n / 2] = 0.0f;
        data[n / 2 + 1] = -0.0f;
        data[n - 1] = data[0];
      }
      std::vector<std::uint32_t> ps(n), pv(n);
      k::scalar::sort_perm_f32(data.data(), ps.data(), n);
      k::vec::sort_perm_f32(data.data(), pv.data(), n);
      ASSERT_TRUE(same_bytes(ps, pv));

      const std::vector<double> wide = widen(data);
      std::vector<std::uint32_t> ds(n), dv(n);
      k::scalar::sort_perm_f64(wide.data(), ds.data(), n);
      k::vec::sort_perm_f64(wide.data(), dv.data(), n);
      ASSERT_TRUE(same_bytes(ds, dv));
    }
  }
}

TEST(SimdParity, ApaxQuantize) {
  REQUIRE_SIMD();
  for (Field f : kAllFields) {
    for (std::size_t n : tail_lengths()) {
      if (n == 0) continue;
      SCOPED_TRACE(std::string(field_name(f)) + " n=" + std::to_string(n));
      const std::vector<double> src = widen(make_field(f, n, 0xA6));
      double scale = 0.0;
      for (double v : src) {
        if (std::isfinite(v)) scale = std::max(scale, std::fabs(v));
      }
      if (scale == 0.0) scale = 1.0;
      for (unsigned bits : {2u, 7u, 16u}) {
        // `extra` sweeps the split between (bits+1)- and bits-wide samples.
        for (std::size_t extra : {std::size_t{0}, n / 3, n}) {
          std::vector<std::uint32_t> cs(n), cv(n);
          k::scalar::apax_quantize(src.data(), 0, n, scale, bits, extra, cs.data());
          k::vec::apax_quantize(src.data(), 0, n, scale, bits, extra, cv.data());
          ASSERT_TRUE(same_bytes(cs, cv)) << "bits=" << bits << " extra=" << extra;
        }
      }
    }
  }
}

TEST(SimdParity, Grib2Quantize) {
  REQUIRE_SIMD();
  for (Field f : kAllFields) {
    for (std::size_t n : tail_lengths()) {
      if (n == 0) continue;
      SCOPED_TRACE(std::string(field_name(f)) + " n=" + std::to_string(n));
      const std::vector<float> data = make_field(f, n, 0xA7);
      const std::vector<std::uint8_t> mask = testgen::fill_mask(n, 0xA8);
      for (const std::uint8_t* valid : {static_cast<const std::uint8_t*>(nullptr),
                                        mask.data()}) {
        std::vector<std::int64_t> qs(n), qv(n);
        k::scalar::grib2_quantize(data.data(), valid, qs.data(), n, -41.75, 0.03125);
        k::vec::grib2_quantize(data.data(), valid, qv.data(), n, -41.75, 0.03125);
        ASSERT_TRUE(same_bytes(qs, qv)) << (valid ? "masked" : "unmasked");
      }
    }
  }
}

TEST(SimdParity, Dwt53RowsAndCols) {
  REQUIRE_SIMD();
  Pcg32 rng(0xA9);
  // Row/column limits hitting odd/even splits and every blocked-column
  // remainder; `cols` (the stride) can exceed c_lim as in multi-level DWT.
  const struct { std::size_t rows, cols, r_lim, c_lim; } shapes[] = {
      {1, 8, 1, 8},    {2, 9, 2, 9},     {3, 8, 3, 5},    {8, 8, 8, 8},
      {9, 16, 9, 13},  {16, 17, 11, 17}, {31, 33, 31, 33}, {33, 40, 17, 21},
      {64, 65, 64, 65},
  };
  for (const auto& s : shapes) {
    SCOPED_TRACE("r_lim=" + std::to_string(s.r_lim) + " c_lim=" + std::to_string(s.c_lim));
    std::vector<std::int64_t> base(s.rows * s.cols);
    for (auto& v : base) {
      v = static_cast<std::int64_t>(rng.next_u32()) - (1ll << 31);
    }
    for (const bool inverse : {false, true}) {
      std::vector<std::int64_t> a = base, b = base;
      k::scalar::dwt53_rows(a.data(), s.cols, s.r_lim, s.c_lim, inverse);
      k::vec::dwt53_rows(b.data(), s.cols, s.r_lim, s.c_lim, inverse);
      ASSERT_EQ(a, b) << "rows inverse=" << inverse;

      a = base;
      b = base;
      k::scalar::dwt53_cols(a.data(), s.cols, s.r_lim, s.c_lim, inverse);
      k::vec::dwt53_cols(b.data(), s.cols, s.r_lim, s.c_lim, inverse);
      ASSERT_EQ(a, b) << "cols inverse=" << inverse;
    }
  }
}

// Stream-level closure: under forced kScalar and kSimd modes each codec
// family must produce byte-identical streams and bit-identical decodes.
TEST(SimdParity, CodecStreamsBitIdenticalAcrossModes) {
  REQUIRE_SIMD();
  const char* variants[] = {"fpzip-24", "fpzip-16", "ISA-0.5", "APAX-2", "GRIB2:3"};
  for (const char* variant : variants) {
    const CodecPtr codec = make_variant(variant);
    for (Field f : {Field::kSmooth, Field::kDenormal}) {
      for (std::size_t n : {std::size_t{1021}, std::size_t{4096}}) {
        SCOPED_TRACE(std::string(variant) + " " + field_name(f) + " n=" +
                     std::to_string(n));
        const std::vector<float> data = make_field(f, n, 0xAB);
        const Shape shape = n % 4 == 0 ? Shape::d2(4, n / 4) : Shape::d1(n);

        Bytes stream_scalar, stream_simd;
        std::vector<float> out_scalar, out_simd;
        {
          simd::ScopedMode scoped(simd::Mode::kScalar);
          stream_scalar = codec->encode(data, shape);
          out_scalar = codec->decode(stream_scalar);
        }
        {
          simd::ScopedMode scoped(simd::Mode::kSimd);
          stream_simd = codec->encode(data, shape);
          out_simd = codec->decode(stream_scalar);
        }
        ASSERT_EQ(stream_scalar, stream_simd);
        ASSERT_EQ(out_scalar.size(), out_simd.size());
        ASSERT_EQ(0, std::memcmp(out_scalar.data(), out_simd.data(),
                                 out_scalar.size() * sizeof(float)));
      }
    }
  }
}

TEST(SimdParity, ModeNamesAndOverride) {
  EXPECT_STREQ("scalar", simd::mode_name(simd::Mode::kScalar));
  EXPECT_STREQ("simd", simd::mode_name(simd::Mode::kSimd));
  const simd::Mode before = simd::active_mode();
  {
    simd::ScopedMode scoped(simd::Mode::kScalar);
    EXPECT_EQ(simd::Mode::kScalar, simd::active_mode());
  }
  EXPECT_EQ(before, simd::active_mode());
}

}  // namespace
}  // namespace cesm::comp
