#include "compress/apax/apax.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "compress/apax/profiler.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

std::vector<float> wavy_field(std::size_t n, std::uint64_t seed, double noise = 1.0) {
  Pcg32 rng(seed);
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(std::sin(i * 0.01) * 100.0 + rng.uniform(-noise, noise));
  }
  return data;
}

class ApaxFixedRate : public ::testing::TestWithParam<double> {};

TEST_P(ApaxFixedRate, AchievesAdvertisedRatio) {
  const double ratio = GetParam();
  const ApaxCodec codec = ApaxCodec::fixed_rate(ratio);
  const auto data = wavy_field(65536, 25);
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  const double cr = compression_ratio(stream.size(), data.size());
  // CR must equal 1/ratio up to the small container header.
  EXPECT_NEAR(cr, 1.0 / ratio, 0.01) << "ratio " << ratio;
}

INSTANTIATE_TEST_SUITE_P(PaperLadder, ApaxFixedRate, ::testing::Values(2.0, 4.0, 5.0, 6.0, 7.0));

TEST(ApaxCodec, HigherRateMeansHigherError) {
  const auto data = wavy_field(32768, 26);
  double prev = -1.0;
  for (double ratio : {2.0, 4.0, 5.0}) {
    const RoundTrip rt = round_trip(ApaxCodec::fixed_rate(ratio), data, Shape::d1(data.size()));
    double emax = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      emax = std::max(emax, std::fabs(static_cast<double>(data[i]) - rt.reconstructed[i]));
    }
    EXPECT_GT(emax, prev);
    prev = emax;
  }
}

TEST(ApaxCodec, Rate2IsNearTransparent) {
  // 16 bits/sample on block-FP data: errors tiny relative to block max.
  const auto data = wavy_field(32768, 27);
  const RoundTrip rt = round_trip(ApaxCodec::fixed_rate(2), data, Shape::d1(data.size()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Range is ±100; allow for worst-case integration drift in
    // derivative-filtered blocks.
    ASSERT_NEAR(rt.reconstructed[i], data[i], 0.05);
  }
}

TEST(ApaxCodec, BoundsAbsoluteErrorPerBlock) {
  // APAX quantizes against the block maximum: absolute error bounded by
  // scale / 2^(bits-1). Verify against the analytic bound.
  const ApaxCodec codec = ApaxCodec::fixed_rate(4);  // ~8 bits/sample
  const auto data = wavy_field(4096, 28, 50.0);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  // Block max <= 150; exponent <= 8 (scale 256); bits >= 7 => q = 63.
  const double bound = 256.0 / 63.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::fabs(data[i] - rt.reconstructed[i]), bound);
  }
}

TEST(ApaxCodec, ZeroBlocksAreExact) {
  std::vector<float> data(4096, 0.0f);
  const RoundTrip rt = round_trip(ApaxCodec::fixed_rate(5), data, Shape::d1(data.size()));
  for (float v : rt.reconstructed) EXPECT_EQ(v, 0.0f);
}

TEST(ApaxCodec, DerivativeFilterHelpsSmoothRamps) {
  // A steep smooth ramp has huge values but tiny deltas; with the
  // derivative pre-filter, fixed-rate quality should be much better than
  // the raw block max would allow.
  std::vector<float> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(i) * 10.0f;
  const RoundTrip rt = round_trip(ApaxCodec::fixed_rate(4), data, Shape::d1(data.size()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Without the filter, error bound would be ~blockmax/127 ≈ 645.
    ASSERT_NEAR(rt.reconstructed[i], data[i], 64.0);
  }
}

TEST(ApaxCodec, FixedQualityModeRateVaries) {
  const ApaxCodec hq = ApaxCodec::fixed_quality(20);
  const ApaxCodec lq = ApaxCodec::fixed_quality(6);
  const auto data = wavy_field(16384, 29);
  const Bytes s_hq = hq.encode(data, Shape::d1(data.size()));
  const Bytes s_lq = lq.encode(data, Shape::d1(data.size()));
  EXPECT_LT(s_lq.size(), s_hq.size());
  // Quality mode honours the mantissa width: reconstruction error scales.
  const auto r_hq = hq.decode(s_hq);
  double emax = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    emax = std::max(emax, std::fabs(static_cast<double>(data[i]) - r_hq[i]));
  }
  EXPECT_LT(emax, 0.01);
}

TEST(ApaxCodec, ShortTailBlockRoundTrips) {
  const auto data = wavy_field(256 * 3 + 17, 30);
  const RoundTrip rt = round_trip(ApaxCodec::fixed_rate(2), data, Shape::d1(data.size()));
  EXPECT_EQ(rt.reconstructed.size(), data.size());
}

TEST(ApaxCodec, RejectsBadParameters) {
  EXPECT_THROW(ApaxCodec::fixed_rate(1.0), InvalidArgument);
  EXPECT_THROW(ApaxCodec::fixed_rate(64.0), InvalidArgument);
  EXPECT_THROW(ApaxCodec::fixed_quality(1), InvalidArgument);
  EXPECT_THROW(ApaxCodec::fixed_quality(31), InvalidArgument);
}

TEST(ApaxCodec, NaNSamplesQuantizeDeterministically) {
  // Block-FP has no representation for NaN; the quantizer maps it to the
  // zero code, so encode must neither crash nor emit UB-dependent bytes
  // (the seed's llround(NaN) narrowing was implementation-defined), and
  // the stream must decode to finite values.
  auto data = wavy_field(4096, 29);
  data[3] = std::numeric_limits<float>::quiet_NaN();
  const ApaxCodec codec = ApaxCodec::fixed_rate(2);
  const Bytes a = codec.encode(data, Shape::d1(data.size()));
  const Bytes b = codec.encode(data, Shape::d1(data.size()));
  EXPECT_EQ(a, b);
  const auto out = codec.decode(a);
  ASSERT_EQ(out.size(), data.size());
  for (float v : out) ASSERT_TRUE(std::isfinite(v));
}

TEST(ApaxCodec, RejectsInfiniteData) {
  // An infinity forces the block scale to inf, and decode() rejects
  // non-finite scales — encode must refuse instead of emitting a stream
  // its own decoder throws on.
  auto data = wavy_field(4096, 30);
  data[1700] = std::numeric_limits<float>::infinity();
  const ApaxCodec codec = ApaxCodec::fixed_rate(2);
  EXPECT_THROW(codec.encode(data, Shape::d1(data.size())), InvalidArgument);
  data[1700] = -std::numeric_limits<float>::infinity();
  EXPECT_THROW(codec.encode(data, Shape::d1(data.size())), InvalidArgument);
}

TEST(ApaxCodec, ThrowsOnCorruptStream) {
  Bytes garbage(24, 0xee);
  EXPECT_THROW(ApaxCodec::fixed_rate(2).decode(garbage), FormatError);
}

TEST(ApaxCodec, NamesMatchPaperTables) {
  EXPECT_EQ(ApaxCodec::fixed_rate(2).name(), "APAX-2");
  EXPECT_EQ(ApaxCodec::fixed_rate(5).name(), "APAX-5");
  EXPECT_EQ(ApaxCodec::fixed_quality(12).name(), "APAX-q12");
}

TEST(ApaxProfiler, RecommendsMostAggressivePassingRate) {
  // Very smooth data: even high rates keep correlation near 1, so the
  // profiler should recommend a rate beyond 2.
  std::vector<float> data(16384);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(std::sin(i * 0.001) * 1000.0);
  }
  const ApaxProfile profile = apax_profile(data, Shape::d1(data.size()));
  ASSERT_EQ(profile.points.size(), 5u);
  ASSERT_TRUE(profile.recommended_ratio.has_value());
  EXPECT_GT(*profile.recommended_ratio, 2.0);
  for (const ApaxProfilePoint& p : profile.points) {
    EXPECT_NEAR(p.cr, 1.0 / p.ratio, 0.02);
  }
}

TEST(ApaxProfiler, RefusesWhenNothingPasses) {
  // White noise at rate >= 2 cannot hold five-nines correlation with only
  // ~16 bits/sample? It actually can; so demand an impossible threshold.
  const auto data = wavy_field(8192, 31, 100.0);
  const ApaxProfile profile = apax_profile(data, Shape::d1(data.size()), 1.0 + 1e-9);
  EXPECT_FALSE(profile.recommended_ratio.has_value());
}

}  // namespace
}  // namespace cesm::comp
