#include "compress/special.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "compress/apax/apax.h"
#include "compress/fpz/fpz.h"
#include "compress/isabela/isabela.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

constexpr float kFill = 1.0e35f;

std::vector<float> masked_field(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = (i % 5 == 2) ? kFill
                           : static_cast<float>(std::sin(i * 0.01) * 10.0 + rng.uniform());
  }
  return data;
}

TEST(PatchFillValues, ReplacesWithLastValid) {
  std::vector<float> data = {1.0f, kFill, kFill, 4.0f, kFill};
  const auto mask = patch_fill_values(data, kFill);
  EXPECT_EQ(data[1], 1.0f);
  EXPECT_EQ(data[2], 1.0f);
  EXPECT_EQ(data[4], 4.0f);
  EXPECT_EQ(mask, (std::vector<std::uint8_t>{1, 0, 0, 1, 0}));
}

TEST(PatchFillValues, LeadingFillUsesMean) {
  std::vector<float> data = {kFill, 2.0f, 4.0f};
  patch_fill_values(data, kFill);
  EXPECT_FLOAT_EQ(data[0], 3.0f);  // mean of valid values
}

TEST(PatchFillValues, AllFillBecomesZero) {
  std::vector<float> data = {kFill, kFill};
  patch_fill_values(data, kFill);
  EXPECT_EQ(data[0], 0.0f);
  EXPECT_EQ(data[1], 0.0f);
}

TEST(SpecialValueCodec, FillsSurviveLossyRoundTripExactly) {
  const SpecialValueCodec codec(std::make_shared<FpzCodec>(16), kFill);
  const auto data = masked_field(5000, 38);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 5 == 2) {
      ASSERT_EQ(rt.reconstructed[i], kFill);
    } else {
      // fpzip-16 keeps ~7 mantissa bits: |err| <~ 2^-8 * |value| ~ 0.04.
      ASSERT_NEAR(rt.reconstructed[i], data[i], 0.05);
    }
  }
}

TEST(SpecialValueCodec, InnerCodecNeverSeesFillMagnitude) {
  // With a fill of 1e35 leaking into APAX blocks, quantization of ±11
  // values would be catastrophic. Through the wrapper it must stay tight.
  const SpecialValueCodec codec(
      std::make_shared<ApaxCodec>(ApaxCodec::fixed_rate(2)), kFill);
  const auto data = masked_field(4096, 39);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 5 != 2) ASSERT_NEAR(rt.reconstructed[i], data[i], 0.05);
  }
}

TEST(SpecialValueCodec, NoFillDataPassesThrough) {
  const SpecialValueCodec codec(std::make_shared<FpzCodec>(32), kFill);
  std::vector<float> data(1000);
  Pcg32 rng(40);
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  EXPECT_EQ(rt.reconstructed, data);
}

TEST(SpecialValueCodec, CapabilitiesGainSpecialValues) {
  const SpecialValueCodec codec(std::make_shared<IsabelaCodec>(0.5), kFill);
  EXPECT_TRUE(codec.capabilities().special_values);
  EXPECT_EQ(codec.name(), "ISA-0.5");
  EXPECT_EQ(codec.family(), "ISABELA");
}

TEST(SpecialValueCodec, ThrowsOnCorruptWrapper) {
  const SpecialValueCodec codec(std::make_shared<FpzCodec>(32), kFill);
  Bytes garbage(16, 0x00);
  EXPECT_THROW(codec.decode(garbage), FormatError);
}

TEST(SpecialValueCodec, BitmapOverheadIsSmall) {
  // Long runs of fill compress to almost nothing via the RLE bitmap.
  std::vector<float> data(8192, kFill);
  for (std::size_t i = 0; i < 4096; ++i) data[i] = static_cast<float>(i % 100);
  const SpecialValueCodec codec(std::make_shared<FpzCodec>(32), kFill);
  const SpecialValueCodec dense(std::make_shared<FpzCodec>(32), -12345.0f);  // no fills
  const Bytes with_bitmap = codec.encode(data, Shape::d1(data.size()));
  // The bitmap (2 runs) should cost well under 100 bytes over the payload.
  const Bytes without = dense.encode(data, Shape::d1(data.size()));
  EXPECT_LT(with_bitmap.size(), without.size() + 4096);
}

}  // namespace
}  // namespace cesm::comp
