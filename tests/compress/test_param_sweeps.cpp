// Parameterized sweeps over codec parameter spaces — the "does the knob
// do what it says, everywhere" property tests.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "compress/apax/apax.h"
#include "compress/fpz/fpz.h"
#include "compress/isabela/isabela.h"
#include "compress/special.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

std::vector<float> test_field(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(std::sin(i * 0.02) * 30.0 + 50.0 + rng.uniform(-1.0, 1.0));
  }
  return data;
}

// ---------------------------------------------------------------- fpzip
using FpzCase = std::tuple<unsigned /*precision*/, int /*rank*/>;
class FpzSweep : public ::testing::TestWithParam<FpzCase> {};

TEST_P(FpzSweep, RoundTripsAndBoundsError) {
  const auto [precision, rank] = GetParam();
  const FpzCodec codec(precision);
  const std::size_t n = 6144;
  const auto data = test_field(n, precision * 100 + rank);
  Shape shape;
  switch (rank) {
    case 1: shape = Shape::d1(n); break;
    case 2: shape = Shape::d2(8, n / 8); break;
    default: shape = Shape::d3(4, 8, n / 32); break;
  }
  const RoundTrip rt = round_trip(codec, data, shape);
  ASSERT_EQ(rt.reconstructed.size(), n);
  if (precision == 32) {
    EXPECT_EQ(rt.reconstructed, data);
  } else {
    // Precision p keeps p-9 explicit mantissa bits: relative error bound
    // (with centring) is 2^-(p-8) of each value's magnitude.
    const double bound = std::pow(2.0, -static_cast<int>(precision) + 8);
    for (std::size_t i = 0; i < n; ++i) {
      const double rel = std::fabs(data[i] - rt.reconstructed[i]) /
                         std::max(1.0, std::fabs(static_cast<double>(data[i])));
      ASSERT_LE(rel, bound) << "precision " << precision;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PrecisionByRank, FpzSweep,
                         ::testing::Combine(::testing::Values(16u, 24u, 32u),
                                            ::testing::Values(1, 2, 3)));

// -------------------------------------------------------------- ISABELA
class IsabelaWindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IsabelaWindowSweep, WindowSizeIsQualityNeutral) {
  const std::size_t window = GetParam();
  const IsabelaCodec codec(0.5, window, std::min<std::size_t>(32, window / 2));
  const auto data = test_field(10000, window);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double rel = std::fabs(data[i] - rt.reconstructed[i]) /
                       std::max(1.0, std::fabs(static_cast<double>(data[i])));
    ASSERT_LE(rel, 0.01) << "window " << window;  // 0.5% requested, 2x slack
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, IsabelaWindowSweep,
                         ::testing::Values(64, 256, 1024, 4096));

// ----------------------------------------------------------------- APAX
class ApaxQualitySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ApaxQualitySweep, MantissaBitsBoundBlockError) {
  const unsigned bits = GetParam();
  const ApaxCodec codec = ApaxCodec::fixed_quality(bits);
  const auto data = test_field(8192, bits);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  // Block max is <= ~82; quantization error <= scale / (2^(b-1)-1).
  const double bound = 82.0 / static_cast<double>((1u << (bits - 1)) - 1);
  // Derivative-filtered blocks accumulate; allow the full random walk.
  const double walk = bound * 8.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::fabs(data[i] - rt.reconstructed[i]), walk) << "bits " << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(QualityLadder, ApaxQualitySweep,
                         ::testing::Values(6u, 8u, 12u, 16u, 20u));

// -------------------------------------------------- special-value density
class FillDensitySweep : public ::testing::TestWithParam<int> {};

TEST_P(FillDensitySweep, FillsAlwaysSurvive) {
  const int every = GetParam();
  const SpecialValueCodec codec(std::make_shared<FpzCodec>(24), 1e35f);
  auto data = test_field(4096, static_cast<std::uint64_t>(every));
  for (std::size_t i = 0; i < data.size(); i += static_cast<std::size_t>(every)) {
    data[i] = 1e35f;
  }
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % static_cast<std::size_t>(every) == 0) {
      ASSERT_EQ(rt.reconstructed[i], 1e35f);
    } else {
      ASSERT_NEAR(rt.reconstructed[i], data[i], 0.02);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, FillDensitySweep, ::testing::Values(2, 5, 17, 501));

}  // namespace
}  // namespace cesm::comp
