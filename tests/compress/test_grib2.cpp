#include "compress/grib2/grib2.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace cesm::comp {
namespace {

std::vector<float> field_with_range(std::size_t n, double lo, double hi, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double s = 0.5 + 0.5 * std::sin(i * 0.02);
    data[i] = static_cast<float>(lo + (hi - lo) * (0.7 * s + 0.3 * rng.uniform()));
  }
  return data;
}

class GribDecimalScale : public ::testing::TestWithParam<int> {};

TEST_P(GribDecimalScale, AbsoluteErrorBoundedByHalfStep) {
  const int d = GetParam();
  const Grib2Codec codec(d);
  const auto data = field_with_range(8192, -5.0, 5.0, 32);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  // Quantization step is 10^-D (binary scale stays 0 for this range);
  // bound is half a step plus float round-off.
  const double bound = 0.5 * std::pow(10.0, -d) * (1.0 + 1e-4) + 1e-6;
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::fabs(data[i] - rt.reconstructed[i]), bound) << "D=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(ScaleSweep, GribDecimalScale, ::testing::Values(1, 2, 3, 4, 5));

TEST(Grib2Codec, FinerScaleCostsMoreBits) {
  const auto data = field_with_range(16384, 0.0, 100.0, 33);
  const Bytes coarse = Grib2Codec(1).encode(data, Shape::d1(data.size()));
  const Bytes fine = Grib2Codec(5).encode(data, Shape::d1(data.size()));
  EXPECT_LT(coarse.size(), fine.size());
}

TEST(Grib2Codec, BinaryScaleEngagesForHugeIntegerRanges) {
  // Range 1e6 at D=8 would need 10^14 integer levels; the encoder must
  // engage the binary scale factor E instead of overflowing.
  const auto data = field_with_range(4096, 0.0, 1.0e6, 34);
  const Grib2Codec codec(8);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  // Precision is capped by E, so just require sane reconstruction.
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(rt.reconstructed[i], data[i], 1.0);
  }
}

TEST(Grib2Codec, MissingValuesRestoredExactly) {
  auto data = field_with_range(4096, 10.0, 20.0, 35);
  for (std::size_t i = 0; i < data.size(); i += 7) data[i] = 1.0e35f;
  const Grib2Codec codec(3, 1.0e35f);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 7 == 0) {
      ASSERT_EQ(rt.reconstructed[i], 1.0e35f);
    } else {
      ASSERT_NEAR(rt.reconstructed[i], data[i], 5.1e-4);
    }
  }
}

TEST(Grib2Codec, MissingValuesDoNotPolluteReference) {
  // Without bitmap support the 1e35 fill would destroy quantization of
  // the real values; with it, precision is unaffected.
  auto with_fill = field_with_range(2048, 0.0, 1.0, 36);
  auto without_fill = with_fill;
  with_fill[100] = 1.0e35f;
  const Grib2Codec codec(4, 1.0e35f);
  const RoundTrip rt = round_trip(codec, with_fill, Shape::d1(with_fill.size()));
  for (std::size_t i = 0; i < with_fill.size(); ++i) {
    if (i == 100) continue;
    ASSERT_NEAR(rt.reconstructed[i], without_fill[i], 5.1e-5);
  }
}

TEST(Grib2Codec, AllMissingFieldRoundTrips) {
  std::vector<float> data(512, 1.0e35f);
  const Grib2Codec codec(2, 1.0e35f);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  for (float v : rt.reconstructed) EXPECT_EQ(v, 1.0e35f);
}

TEST(Grib2Codec, SmoothFieldsCompressWell) {
  std::vector<float> data(32768);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(std::sin(i * 0.005) * 40.0 + 100.0);
  }
  const Grib2Codec codec(3);
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  EXPECT_LT(compression_ratio(stream.size(), data.size()), 0.35);
}

TEST(Grib2Codec, TwoDimensionalShapeUsesWavelet) {
  constexpr std::size_t kRows = 32, kCols = 512;
  std::vector<float> data(kRows * kCols);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t c = 0; c < kCols; ++c) {
      data[r * kCols + c] = static_cast<float>(std::sin(r * 0.3) * 10.0 + std::cos(c * 0.01) * 5.0);
    }
  }
  const Grib2Codec codec(3);
  const Bytes stream = codec.encode(data, Shape::d2(kRows, kCols));
  const auto out = codec.decode(stream);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(out[i], data[i], 5.1e-4);
  }
  EXPECT_LT(compression_ratio(stream.size(), data.size()), 0.5);
}

TEST(Grib2Codec, LargeRangeVariableLosesSmallValues) {
  // The CCN3 failure mode: with range ~1e3 and D chosen by magnitude, the
  // absolute step crushes the tiny values entirely.
  std::vector<float> data(4096);
  Pcg32 rng(37);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(std::exp(rng.uniform(-10.0, 7.0)));  // 4.5e-5 .. 1.1e3
  }
  const int d = choose_decimal_scale(0.0, 1100.0, 4);
  const Grib2Codec codec(d);
  const RoundTrip rt = round_trip(codec, data, Shape::d1(data.size()));
  double worst_rel = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] < 1e-2) {
      worst_rel = std::max(
          worst_rel, std::fabs(data[i] - rt.reconstructed[i]) / static_cast<double>(data[i]));
    }
  }
  EXPECT_GT(worst_rel, 0.5);  // small values essentially destroyed
}

TEST(ChooseDecimalScale, MagnitudeHeuristic) {
  // Range 100 with 4 digits -> step 1e-2 -> D = 2.
  EXPECT_EQ(choose_decimal_scale(0.0, 100.0, 4), 2);
  // Tiny range (SO2-like): D large and positive.
  EXPECT_GE(choose_decimal_scale(0.0, 1e-8, 4), 11);
  // Huge range (Z3-like): D can go negative? 4 - log10(4e4) = -0.6 -> 0.
  EXPECT_LE(choose_decimal_scale(0.0, 4e4, 4), 0);
  // Degenerate range falls back to the digit count.
  EXPECT_EQ(choose_decimal_scale(5.0, 5.0, 4), 4);
}

TEST(Grib2Codec, ThrowsOnCorruptStream) {
  Bytes garbage(40, 0x42);
  EXPECT_THROW(Grib2Codec(3).decode(garbage), FormatError);
}

TEST(Grib2Codec, RejectsInsaneDecimalScale) {
  EXPECT_THROW(Grib2Codec(99), InvalidArgument);
  EXPECT_THROW(Grib2Codec(-99), InvalidArgument);
}

TEST(Grib2Codec, RejectsNonFiniteData) {
  // An infinity would spin the binary-scale search forever and a NaN would
  // quantize to garbage the decoder cannot reproduce; encode must refuse
  // rather than emit an undecodable or lying stream.
  auto data = field_with_range(256, 0.0, 1.0, 36);
  const Grib2Codec codec(3);
  data[17] = std::numeric_limits<float>::infinity();
  EXPECT_THROW(codec.encode(data, Shape::d1(data.size())), InvalidArgument);
  data[17] = -std::numeric_limits<float>::infinity();
  EXPECT_THROW(codec.encode(data, Shape::d1(data.size())), InvalidArgument);
  data[17] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(codec.encode(data, Shape::d1(data.size())), InvalidArgument);
}

TEST(Grib2Codec, MissingSentinelExemptFromNonFiniteRejection) {
  // Points equal to the declared missing value are masked out before the
  // range scan, so a huge fill sentinel never trips the rejection even
  // though it would blow up the quantization range if treated as data.
  auto data = field_with_range(256, 0.0, 1.0, 38);
  data[5] = data[99] = 9.96921e36f;
  const Grib2Codec codec(3, 9.96921e36f);
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  const auto out = codec.decode(stream);
  EXPECT_EQ(out[5], 9.96921e36f);
  EXPECT_EQ(out[99], 9.96921e36f);
}

TEST(Grib2Codec, RejectsRangeTooWideForDecimalScale) {
  // A ~6e38 span at D=8 needs ~2^155 quantization levels; the binary scale
  // can absorb at most 62 of those bits, so the encoder must refuse rather
  // than emit a stream whose levels alias.
  std::vector<float> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = i % 2 == 0 ? -3.0e38f : 3.0e38f;
  }
  EXPECT_THROW(Grib2Codec(8).encode(data, Shape::d1(data.size())), InvalidArgument);
}

}  // namespace
}  // namespace cesm::comp
