#include "compress/mafisc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "compress/deflate/deflate.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

std::vector<float> smooth(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(std::sin(i * 0.002) * 200.0 + rng.uniform(-0.1, 0.1));
  }
  return data;
}

TEST(MafiscCodec, LosslessFloatRoundTrip) {
  const MafiscCodec codec;
  const auto data = smooth(30000, 1);
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  EXPECT_EQ(codec.decode(stream), data);
}

TEST(MafiscCodec, LosslessDoubleRoundTrip) {
  const MafiscCodec codec;
  Pcg32 rng(2);
  std::vector<double> data(8000);
  double acc = 1000.0;
  for (auto& v : data) {
    acc += rng.uniform(-0.01, 0.01);
    v = acc;
  }
  const Bytes stream = codec.encode64(data, Shape::d1(data.size()));
  EXPECT_EQ(codec.decode64(stream), data);
}

TEST(MafiscCodec, FilteringBeatsPlainDeflateOnVerySmoothData) {
  // MAFISC's pitch: adaptive pre-filters improve the standard back end.
  // On a noise-free smooth signal the delta filters collapse the ordered
  // integers to near-constants, which plain shuffle+deflate cannot.
  std::vector<float> data(60000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(std::sin(i * 0.0005) * 200.0 + 500.0);
  }
  const MafiscCodec mafisc;
  const DeflateCodec plain;
  const std::size_t filtered = mafisc.encode(data, Shape::d1(data.size())).size();
  const std::size_t baseline = plain.encode(data, Shape::d1(data.size())).size();
  EXPECT_LT(filtered, baseline);
}

TEST(MafiscCodec, NoisySmoothDataStaysCompetitive) {
  // With per-point noise the filters may not win, but the adaptive choice
  // (identity is always a candidate) keeps MAFISC within a few percent of
  // the plain back end.
  const auto data = smooth(60000, 3);
  const MafiscCodec mafisc;
  const DeflateCodec plain;
  const std::size_t filtered = mafisc.encode(data, Shape::d1(data.size())).size();
  const std::size_t baseline = plain.encode(data, Shape::d1(data.size())).size();
  EXPECT_LT(filtered, baseline * 11 / 10);
}

TEST(MafiscCodec, MultiDimDataUsesStrideFilter) {
  // A field constant along the slow dimension: stride delta zeroes whole
  // planes, which identity/delta cannot.
  constexpr std::size_t kRows = 64, kCols = 512;
  std::vector<float> data(kRows * kCols);
  Pcg32 rng(4);
  for (std::size_t c = 0; c < kCols; ++c) {
    const float v = static_cast<float>(rng.uniform(-100.0, 100.0));
    for (std::size_t r = 0; r < kRows; ++r) data[r * kCols + c] = v;
  }
  const MafiscCodec codec;
  const Bytes as2d = codec.encode(data, Shape::d2(kRows, kCols));
  EXPECT_EQ(codec.decode(as2d), data);
  EXPECT_LT(compression_ratio(as2d.size(), data.size()), 0.15);
}

TEST(MafiscCodec, RandomDataDegradesGracefully) {
  Pcg32 rng(5);
  std::vector<float> data(10000);
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1e6, 1e6));
  const MafiscCodec codec;
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  EXPECT_LT(stream.size(), data.size() * 4 + 1024);
  EXPECT_EQ(codec.decode(stream), data);
}

TEST(MafiscCodec, SpecialBitPatternsSurvive) {
  std::vector<float> data = {0.0f, -0.0f, 1e35f, -1e-35f,
                             std::numeric_limits<float>::infinity()};
  data.resize(4096, 1.0f);
  const MafiscCodec codec;
  const auto out = codec.decode(codec.encode(data, Shape::d1(data.size())));
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(out[i]), std::bit_cast<std::uint32_t>(data[i]));
  }
}

TEST(MafiscCodec, ShortTailBlockRoundTrips) {
  const auto data = smooth(4096 + 123, 6);
  const MafiscCodec codec;
  EXPECT_EQ(codec.decode(codec.encode(data, Shape::d1(data.size()))), data);
}

TEST(MafiscCodec, ThrowsOnCorruptStream) {
  Bytes garbage(40, 0x99);
  EXPECT_THROW(MafiscCodec().decode(garbage), FormatError);
}

TEST(MafiscCodec, RejectsBadBlock) {
  EXPECT_THROW(MafiscCodec(16), InvalidArgument);
}

}  // namespace
}  // namespace cesm::comp
