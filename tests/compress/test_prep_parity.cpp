// The variant-sweep engine's load-bearing contract (compress/prep.h): a
// plan-driven encode is byte-identical to the direct encode — same stream
// bytes, same thrown input-validation errors — for every paper variant,
// over the hostile-field generator zoo. The suite is free to parallelize
// and cache only because this holds; any divergence here is a correctness
// bug, not a tuning matter.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "compress/fpz/fpz.h"
#include "compress/grib2/grib2.h"
#include "compress/isabela/isabela.h"
#include "compress/prep.h"
#include "compress/variants.h"
#include "support/generators.h"
#include "util/error.h"
#include "util/memory.h"

namespace cesm {
namespace {

struct EncodeOutcome {
  Bytes stream;
  bool threw = false;
  bool invalid_argument = false;
};

EncodeOutcome direct_encode(const comp::Codec& codec, std::span<const float> data,
                            const comp::Shape& shape) {
  EncodeOutcome out;
  try {
    out.stream = codec.encode(data, shape);
  } catch (const InvalidArgument&) {
    out.threw = out.invalid_argument = true;
  } catch (const Error&) {
    out.threw = true;
  }
  return out;
}

EncodeOutcome planned_encode(comp::PlanStore& plans, const comp::Codec& codec,
                             std::span<const float> data, const comp::Shape& shape,
                             std::uint64_t block) {
  EncodeOutcome out;
  try {
    out.stream = plans.encode(codec, data, shape, block);
  } catch (const InvalidArgument&) {
    out.threw = out.invalid_argument = true;
  } catch (const Error&) {
    out.threw = true;
  }
  return out;
}

/// Plan path == direct path: same success/throw outcome, same error class,
/// same bytes — both on the build encode and on a reusing encode.
void expect_parity(comp::PlanStore& plans, const comp::Codec& codec,
                   std::span<const float> data, const comp::Shape& shape,
                   std::uint64_t block) {
  SCOPED_TRACE("codec=" + codec.name());
  const EncodeOutcome direct = direct_encode(codec, data, shape);
  const EncodeOutcome first = planned_encode(plans, codec, data, shape, block);
  ASSERT_EQ(direct.threw, first.threw);
  EXPECT_EQ(direct.invalid_argument, first.invalid_argument);
  if (direct.threw) return;
  ASSERT_EQ(direct.stream.size(), first.stream.size());
  EXPECT_TRUE(direct.stream == first.stream);
  // Second pass hits whatever the store cached for this block.
  const EncodeOutcome again = planned_encode(plans, codec, data, shape, block);
  ASSERT_FALSE(again.threw);
  EXPECT_TRUE(direct.stream == again.stream);
}

struct NamedField {
  std::string label;
  std::vector<float> data;
};

std::vector<NamedField> hostile_fields(std::size_t n, std::uint64_t seed) {
  std::vector<NamedField> fields;
  fields.push_back({"smooth", testgen::smooth_field(n, seed)});
  fields.push_back({"noisy", testgen::noisy_field(n, hash_combine(seed, 1))});
  fields.push_back({"lognormal", testgen::lognormal_field(n, hash_combine(seed, 2))});
  fields.push_back({"constant", testgen::constant_field(n)});
  fields.push_back({"tiny", testgen::tiny_field(n, hash_combine(seed, 3))});
  fields.push_back({"denormal", testgen::denormal_field(n, hash_combine(seed, 4))});
  return fields;
}

constexpr float kFill = 1.0e20f;
constexpr std::uint64_t kSeed = 0x9e37c0deull;

TEST(PrepParity, EveryPaperVariantOverHostileFieldsAndShapes) {
  SCOPED_TRACE(testgen::seed_banner(kSeed));
  constexpr std::size_t n = 6144;
  const comp::Shape shapes[] = {comp::Shape::d1(n), comp::Shape::d2(48, 128),
                                comp::Shape::d3(4, 24, 64)};
  for (const std::optional<float> fill :
       {std::optional<float>{}, std::optional<float>{kFill}}) {
    const std::vector<comp::CodecPtr> variants = comp::paper_variants(3, fill);
    for (const NamedField& field : hostile_fields(n, kSeed)) {
      std::vector<float> data = field.data;
      if (fill.has_value()) {
        testgen::apply_fill(data, testgen::fill_mask(n, hash_combine(kSeed, 9)), *fill);
      }
      for (const comp::Shape& shape : shapes) {
        SCOPED_TRACE(field.label + " rank=" + std::to_string(shape.rank()) +
                     (fill ? " fill" : ""));
        // Fresh store per (field, shape): parity must hold on the very
        // first (plan-building) encode, not only on warmed reuse.
        comp::PlanStore plans(256ull << 20);
        for (const comp::CodecPtr& codec : variants) {
          expect_parity(plans, *codec, data, shape, 11);
        }
      }
    }
  }
}

TEST(PrepParity, NonFiniteInputThrowParityForGrib2) {
  // GRIB2 rejects NaN/inf at the range scan, which runs inside the plan
  // build: the planned path must reject with the same error class and
  // leave the store usable.
  SCOPED_TRACE(testgen::seed_banner(kSeed));
  std::vector<float> data = testgen::smooth_field(4096, kSeed);
  testgen::salt_specials(data, hash_combine(kSeed, 5));
  const comp::Grib2Codec grib(4);
  comp::PlanStore plans(64ull << 20);
  const EncodeOutcome direct = direct_encode(grib, data, comp::Shape::d2(32, 128));
  const EncodeOutcome planned =
      planned_encode(plans, grib, data, comp::Shape::d2(32, 128), 0);
  ASSERT_TRUE(direct.threw);
  EXPECT_TRUE(direct.invalid_argument);
  EXPECT_EQ(direct.threw, planned.threw);
  EXPECT_EQ(direct.invalid_argument, planned.invalid_argument);
  // The store stays healthy for clean inputs afterwards.
  const std::vector<float> clean = testgen::smooth_field(4096, kSeed);
  expect_parity(plans, grib, clean, comp::Shape::d2(32, 128), 1);
}

TEST(PrepParity, PlanBuiltByOneVariantIsReusedByItsSiblings) {
  SCOPED_TRACE(testgen::seed_banner(kSeed));
  const std::vector<float> data = testgen::smooth_field(8192, kSeed);
  const comp::Shape shape = comp::Shape::d2(64, 128);
  {
    // ISABELA: the 0.1% variant builds the sort + spline plan, the 0.5%
    // and 1.0% variants reuse it — their eps only enters the correction
    // stage.
    comp::PlanStore plans(64ull << 20);
    expect_parity(plans, comp::IsabelaCodec(0.1), data, shape, 0);
    const std::uint64_t built = plans.plans_built();
    expect_parity(plans, comp::IsabelaCodec(0.5), data, shape, 0);
    expect_parity(plans, comp::IsabelaCodec(1.0), data, shape, 0);
    EXPECT_EQ(plans.plans_built(), built);
    EXPECT_GE(plans.plans_reused(), 4u);
  }
  {
    // fpzip: one ordered-map plan serves every precision.
    comp::PlanStore plans(64ull << 20);
    expect_parity(plans, comp::FpzCodec(32), data, shape, 0);
    const std::uint64_t built = plans.plans_built();
    expect_parity(plans, comp::FpzCodec(24), data, shape, 0);
    expect_parity(plans, comp::FpzCodec(16), data, shape, 0);
    EXPECT_EQ(plans.plans_built(), built);
    EXPECT_GE(plans.plans_reused(), 4u);
  }
  {
    // GRIB2: the bitmap/range scan is decimal-scale-invariant, so the
    // whole tuning ladder shares one plan (the per-scale lift is memoized
    // inside it).
    comp::PlanStore plans(64ull << 20);
    expect_parity(plans, comp::Grib2Codec(2), data, shape, 0);
    const std::uint64_t built = plans.plans_built();
    for (int d = 3; d <= 6; ++d) {
      expect_parity(plans, comp::Grib2Codec(d), data, shape, 0);
    }
    EXPECT_EQ(plans.plans_built(), built);
    EXPECT_GE(plans.plans_reused(), 8u);
  }
}

TEST(PrepParity, TracedAndBareCodecsShareOnePlan) {
  // The suite's GRIB2 tuning measures a bare Grib2Codec while the variant
  // catalog wraps it in TracedCodec; both must land on the same plan key
  // for tuning -> verify reuse to work.
  const std::vector<float> data = testgen::smooth_field(4096, kSeed);
  const comp::Shape shape = comp::Shape::d2(32, 128);
  comp::PlanStore plans(64ull << 20);
  const comp::Grib2Codec bare(4);
  const comp::CodecPtr traced = comp::traced(std::make_shared<comp::Grib2Codec>(4));
  EXPECT_EQ(bare.prep_key(), traced->prep_key());
  expect_parity(plans, bare, data, shape, 0);
  const std::uint64_t built = plans.plans_built();
  expect_parity(plans, *traced, data, shape, 0);
  EXPECT_EQ(plans.plans_built(), built);
  EXPECT_GE(plans.plans_reused(), 2u);
}

TEST(PlanStore, ZeroCapTakesTheDirectPathEntirely) {
  const std::vector<float> data = testgen::smooth_field(2048, kSeed);
  comp::PlanStore plans(0);
  const Bytes direct = comp::FpzCodec(24).encode(data, comp::Shape::d1(2048));
  const Bytes via = plans.encode(comp::FpzCodec(24), data, comp::Shape::d1(2048), 0);
  EXPECT_TRUE(direct == via);
  EXPECT_EQ(plans.plans_built(), 0u);
  EXPECT_EQ(plans.plans_reused(), 0u);
  EXPECT_EQ(plans.resident_bytes(), 0u);
}

TEST(PlanStore, UnplannableCodecIsPassedThrough) {
  // DeflateCodec has no prep stage (empty prep_key): the store must not
  // cache anything for it.
  const std::vector<float> data = testgen::noisy_field(2048, kSeed);
  comp::PlanStore plans(64ull << 20);
  const comp::CodecPtr deflate = comp::make_variant("NetCDF-4");
  const Bytes direct = deflate->encode(data, comp::Shape::d1(2048));
  const Bytes via = plans.encode(*deflate, data, comp::Shape::d1(2048), 0);
  EXPECT_TRUE(direct == via);
  EXPECT_EQ(plans.plans_built(), 0u);
  EXPECT_EQ(plans.resident_bytes(), 0u);
}

TEST(PlanStore, DistinctBlocksGetDistinctPlans) {
  const std::vector<float> a = testgen::smooth_field(2048, kSeed);
  const std::vector<float> b = testgen::smooth_field(2048, hash_combine(kSeed, 1));
  comp::PlanStore plans(64ull << 20);
  (void)plans.encode(comp::FpzCodec(24), a, comp::Shape::d1(2048), 0);
  (void)plans.encode(comp::FpzCodec(24), b, comp::Shape::d1(2048), 1);
  EXPECT_EQ(plans.plans_built(), 2u);
  EXPECT_EQ(plans.plans_reused(), 0u);
  EXPECT_GT(plans.resident_bytes(), 0u);
  plans.clear();
  EXPECT_EQ(plans.resident_bytes(), 0u);
}

TEST(PlanStore, LruEvictionUnderTightCapKeepsOutputsExact) {
  const std::vector<float> a = testgen::smooth_field(4096, kSeed);
  const std::vector<float> b = testgen::smooth_field(4096, hash_combine(kSeed, 2));
  const comp::FpzCodec fpz(24);
  const comp::Shape shape = comp::Shape::d1(4096);

  // Size the cap off a probe store so it holds exactly one plan.
  std::size_t one_plan = 0;
  {
    comp::PlanStore probe(256ull << 20);
    (void)probe.encode(fpz, a, shape, 0);
    one_plan = probe.resident_bytes();
    ASSERT_GT(one_plan, 0u);
  }

  comp::PlanStore plans(one_plan + one_plan / 2);
  const Bytes a0 = plans.encode(fpz, a, shape, 0);
  const Bytes b0 = plans.encode(fpz, b, shape, 1);  // evicts block 0
  EXPECT_LE(plans.resident_bytes(), one_plan + one_plan / 2);
  const Bytes a1 = plans.encode(fpz, a, shape, 0);  // rebuilt, not corrupt
  EXPECT_EQ(plans.plans_built(), 3u);
  EXPECT_TRUE(a0 == a1);
  EXPECT_TRUE(b0 == plans.encode(fpz, b, shape, 1));
}

TEST(PlanStore, PlanTooBigForCapIsUsedOnceUncached) {
  const std::vector<float> data = testgen::smooth_field(4096, kSeed);
  comp::PlanStore plans(1);  // nonzero: planning enabled, nothing fits
  const Bytes direct = comp::FpzCodec(24).encode(data, comp::Shape::d1(4096));
  EXPECT_TRUE(direct == plans.encode(comp::FpzCodec(24), data, comp::Shape::d1(4096), 0));
  EXPECT_TRUE(direct == plans.encode(comp::FpzCodec(24), data, comp::Shape::d1(4096), 0));
  EXPECT_EQ(plans.plans_built(), 2u);  // never cached, rebuilt per call
  EXPECT_EQ(plans.plans_reused(), 0u);
  EXPECT_EQ(plans.resident_bytes(), 0u);
}

TEST(PlanStore, BudgetRejectionMeansUncachedNotFailure) {
  const std::vector<float> data = testgen::smooth_field(4096, kSeed);
  util::MemoryBudget budget(16);  // nothing real fits
  comp::PlanStore plans(64ull << 20, &budget);
  const Bytes direct = comp::FpzCodec(24).encode(data, comp::Shape::d1(4096));
  EXPECT_TRUE(direct == plans.encode(comp::FpzCodec(24), data, comp::Shape::d1(4096), 0));
  EXPECT_EQ(plans.resident_bytes(), 0u);
  EXPECT_EQ(budget.charged_bytes(), 0u);
}

TEST(PlanStore, BudgetChargesTrackResidencyAndRelease) {
  const std::vector<float> data = testgen::smooth_field(4096, kSeed);
  util::MemoryBudget budget(0);  // account-only
  {
    comp::PlanStore plans(64ull << 20, &budget);
    (void)plans.encode(comp::FpzCodec(24), data, comp::Shape::d1(4096), 0);
    EXPECT_EQ(budget.charged_bytes(), plans.resident_bytes());
    EXPECT_GT(budget.charged_bytes(), 0u);
  }
  EXPECT_EQ(budget.charged_bytes(), 0u);  // destructor released everything
}

}  // namespace
}  // namespace cesm
