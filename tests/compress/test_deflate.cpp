#include "compress/deflate/deflate.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "compress/deflate/lz77.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

std::vector<std::uint8_t> to_bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Lz77, TokenizeReconstructIdentity) {
  const auto input = to_bytes(
      "the quick brown fox jumps over the lazy dog. "
      "the quick brown fox jumps over the lazy dog again and again and again.");
  const auto tokens = lz77_tokenize(input);
  const auto output = lz77_reconstruct(tokens, input.size());
  EXPECT_EQ(output, input);
}

TEST(Lz77, FindsRepeats) {
  std::vector<std::uint8_t> input;
  for (int rep = 0; rep < 50; ++rep) {
    for (const char c : std::string("abcdefgh")) input.push_back(static_cast<std::uint8_t>(c));
  }
  const auto tokens = lz77_tokenize(input);
  // Strong repetition: token count must be far below input size.
  EXPECT_LT(tokens.size(), input.size() / 4);
}

TEST(Lz77, OverlappingMatchReconstruction) {
  // Run-length case: "aaaa..." uses distance 1, length > 1 copies.
  std::vector<std::uint8_t> input(500, 'a');
  const auto tokens = lz77_tokenize(input);
  EXPECT_EQ(lz77_reconstruct(tokens, input.size()), input);
}

TEST(Lz77, RejectsCorruptDistance) {
  std::vector<Lz77Token> tokens = {Lz77Token{5, 10, 0}};  // distance 10 into empty output
  EXPECT_THROW(lz77_reconstruct(tokens, 5), FormatError);
}

TEST(Deflate, RoundTripsText) {
  const auto input = to_bytes(std::string(2000, 'x') + "hello" + std::string(2000, 'y'));
  const Bytes packed = deflate_compress(input);
  EXPECT_LT(packed.size(), input.size() / 4);
  EXPECT_EQ(deflate_decompress(packed), input);
}

TEST(Deflate, RoundTripsEmptyInput) {
  const std::vector<std::uint8_t> input;
  const Bytes packed = deflate_compress(input);
  EXPECT_TRUE(deflate_decompress(packed).empty());
}

TEST(Deflate, RandomBytesFallBackToStored) {
  Pcg32 rng(6);
  std::vector<std::uint8_t> input(4096);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_u32());
  const Bytes packed = deflate_compress(input);
  // Incompressible: stored mode caps expansion at the small header.
  EXPECT_LE(packed.size(), input.size() + 16);
  EXPECT_EQ(deflate_decompress(packed), input);
}

TEST(Deflate, RoundTripsEveryEffortLevel) {
  const auto input = to_bytes(
      "compression effort sweep compression effort sweep compression effort sweep");
  for (int effort = 1; effort <= 9; ++effort) {
    const Bytes packed = deflate_compress(input, effort);
    EXPECT_EQ(deflate_decompress(packed), input) << "effort " << effort;
  }
}

TEST(Deflate, ThrowsOnTruncatedStream) {
  const auto input = to_bytes("some payload that compresses fine fine fine fine fine");
  Bytes packed = deflate_compress(input);
  packed.resize(packed.size() / 2);
  EXPECT_THROW(deflate_decompress(packed), FormatError);
}

TEST(Deflate, ThrowsOnGarbage) {
  Bytes garbage = {1, 2, 3};
  EXPECT_THROW(deflate_decompress(garbage), FormatError);
}

TEST(Shuffle, RoundTripsAndTransposes) {
  const std::vector<std::uint8_t> input = {0, 1, 2, 3, 10, 11, 12, 13};
  const Bytes shuffled = shuffle_bytes(input, 4);
  EXPECT_EQ(shuffled[0], 0);
  EXPECT_EQ(shuffled[1], 10);  // byte 0 of element 1
  EXPECT_EQ(unshuffle_bytes(shuffled, 4), input);
}

TEST(Shuffle, ImprovesFloatCompression) {
  // Smooth float sequence: shuffle groups the nearly-constant exponent
  // bytes, which must help deflate substantially.
  std::vector<float> values(8192);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 100.0f + 0.001f * static_cast<float>(i);
  }
  std::vector<std::uint8_t> raw(values.size() * 4);
  std::memcpy(raw.data(), values.data(), raw.size());
  const std::size_t plain = deflate_compress(raw).size();
  const std::size_t shuffled = deflate_compress(shuffle_bytes(raw, 4)).size();
  EXPECT_LT(shuffled, plain);
}

TEST(DeflateCodec, LosslessFloatRoundTrip) {
  Pcg32 rng(7);
  std::vector<float> data(5000);
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1e6, 1e6));
  const DeflateCodec codec;
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  EXPECT_EQ(codec.decode(stream), data);
}

TEST(DeflateCodec, LosslessDoubleRoundTrip) {
  Pcg32 rng(8);
  std::vector<double> data(2000);
  for (auto& v : data) v = rng.uniform(-1e12, 1e12);
  const DeflateCodec codec;
  const Bytes stream = codec.encode64(data, Shape::d1(data.size()));
  EXPECT_EQ(codec.decode64(stream), data);
}

TEST(DeflateCodec, SmoothFieldCompresses) {
  std::vector<float> data(20000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(static_cast<float>(i) * 0.01f) * 100.0f;
  }
  const DeflateCodec codec;
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  EXPECT_LT(compression_ratio(stream.size(), data.size()), 0.8);
}

}  // namespace
}  // namespace cesm::comp
