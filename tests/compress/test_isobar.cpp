#include "compress/isobar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "compress/deflate/deflate.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

std::vector<float> cam_like(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(std::sin(i * 0.01) * 40.0 + 100.0 + rng.uniform(-1.0, 1.0));
  }
  return data;
}

TEST(AnalyzeColumns, SeparatesExponentFromMantissaBytes) {
  const auto data = cam_like(20000, 1);
  std::vector<std::uint8_t> raw(data.size() * 4);
  std::memcpy(raw.data(), data.data(), raw.size());
  const ColumnPlan plan = analyze_columns(raw, 4);
  ASSERT_EQ(plan.entropy.size(), 4u);
  // Little-endian float32: byte 3 holds sign + high exponent — almost
  // constant on this data; byte 0 holds low mantissa — near-random.
  EXPECT_LT(plan.entropy[3], 2.0);
  EXPECT_GT(plan.entropy[0], 6.5);
  EXPECT_TRUE(plan.compressible[3]);
  EXPECT_FALSE(plan.compressible[0]);
}

TEST(AnalyzeColumns, ConstantDataFullyCompressible) {
  std::vector<std::uint8_t> raw(4000, 0x7b);
  const ColumnPlan plan = analyze_columns(raw, 4);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(plan.entropy[c], 0.0);
    EXPECT_TRUE(plan.compressible[c]);
  }
}

TEST(IsobarCodec, LosslessFloatRoundTrip) {
  const IsobarCodec codec;
  const auto data = cam_like(30000, 2);
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  EXPECT_EQ(codec.decode(stream), data);
}

TEST(IsobarCodec, LosslessDoubleRoundTrip) {
  const IsobarCodec codec;
  Pcg32 rng(3);
  std::vector<double> data(8000);
  for (auto& v : data) v = 250.0 + rng.uniform(-5.0, 5.0);
  const Bytes stream = codec.encode64(data, Shape::d1(data.size()));
  EXPECT_EQ(codec.decode64(stream), data);
}

TEST(IsobarCodec, CompressesAtLeastAsWellAsExpected) {
  // The low-entropy byte columns (roughly half of a float32 on smooth
  // data) deflate to near nothing, so the total must be well under raw.
  const IsobarCodec codec;
  const auto data = cam_like(40000, 4);
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  EXPECT_LT(compression_ratio(stream.size(), data.size()), 0.8);
}

TEST(IsobarCodec, RandomDataDegradesGracefully) {
  // Pure noise: every column is incompressible; overhead stays tiny
  // because nothing is routed through the back end.
  const IsobarCodec codec;
  Pcg32 rng(5);
  std::vector<float> data(10000);
  for (auto& v : data) {
    const std::uint32_t bits = (rng.next_u32() & 0x007fffff) | 0x3f800000;
    v = std::bit_cast<float>(bits);  // random mantissa, fixed exponent
  }
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  EXPECT_LT(stream.size(), data.size() * 4 + 256);
  EXPECT_EQ(codec.decode(stream), data);
}

TEST(IsobarCodec, ThresholdControlsRouting) {
  const auto data = cam_like(10000, 6);
  // Threshold ~0: nothing compressible; threshold 8: everything.
  const Bytes none = IsobarCodec(0.01).encode(data, Shape::d1(data.size()));
  const Bytes all = IsobarCodec(8.0).encode(data, Shape::d1(data.size()));
  EXPECT_EQ(IsobarCodec(0.01).decode(none), data);
  EXPECT_EQ(IsobarCodec(8.0).decode(all), data);
  // Routing everything through deflate can't beat routing the noise out
  // by much on this data, but both must be valid; the selective default
  // should not be worse than the store-all route by more than overhead.
  const Bytes selective = IsobarCodec().encode(data, Shape::d1(data.size()));
  EXPECT_LE(selective.size(), none.size());
}

TEST(IsobarCodec, ThrowsOnCorruptStream) {
  Bytes garbage(24, 0x3c);
  EXPECT_THROW(IsobarCodec().decode(garbage), FormatError);
}

TEST(IsobarCodec, RejectsBadThreshold) {
  EXPECT_THROW(IsobarCodec(0.0), InvalidArgument);
  EXPECT_THROW(IsobarCodec(9.0), InvalidArgument);
}

}  // namespace
}  // namespace cesm::comp
