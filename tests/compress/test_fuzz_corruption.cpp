// Corruption fuzzing: random byte flips in valid streams must never
// crash, hang, or invoke UB — every codec either throws a library error
// or returns a (garbage but well-formed) buffer. This is the safety
// property an archive system needs when media rot meets old files.

#include <gtest/gtest.h>

#include <cmath>

#include "compress/variants.h"
#include "util/rng.h"

namespace cesm::comp {
namespace {

class CorruptionFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(CorruptionFuzz, ByteFlipsNeverCrash) {
  const CodecPtr codec = make_variant(GetParam());
  std::vector<float> data(3000);
  Pcg32 data_rng(1);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(std::sin(i * 0.01) * 40.0 + data_rng.uniform(-1.0, 1.0));
  }
  const Bytes original = codec->encode(data, Shape::d1(data.size()));

  Pcg32 rng(0xf022);
  int decoded_ok = 0, threw = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Bytes corrupted = original;
    const int flips = 1 + static_cast<int>(rng.bounded(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.bounded(static_cast<std::uint32_t>(corrupted.size()));
      corrupted[pos] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    }
    try {
      const std::vector<float> out = codec->decode(corrupted);
      // Garbage data is acceptable; a wrong element count is not, unless
      // the flip hit the header's own count fields — in which case the
      // decoder believed a different (validated) size.
      EXPECT_LE(out.size(), wire::kMaxDecodeElements);
      ++decoded_ok;
    } catch (const Error&) {
      ++threw;  // expected path
    }
  }
  // Both outcomes legal; the assertion is that we reached this line 200
  // times without UB/crash. Record the split for the curious.
  RecordProperty("decoded_ok", decoded_ok);
  RecordProperty("threw", threw);
  EXPECT_EQ(decoded_ok + threw, 200);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, CorruptionFuzz,
                         ::testing::Values("NetCDF-4", "fpzip-24", "fpzip-32", "APAX-4",
                                           "ISA-0.5", "GRIB2:3"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace cesm::comp
