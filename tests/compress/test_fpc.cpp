#include "compress/fpc/fpc.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.h"

namespace cesm::comp {
namespace {

std::vector<double> smooth_doubles(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<double> data(n);
  double acc = 100.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += rng.uniform(-0.01, 0.01);
    data[i] = acc + std::sin(i * 0.001) * 10.0;
  }
  return data;
}

TEST(FpcCodec, LosslessDoubleRoundTrip) {
  const FpcCodec codec;
  const auto data = smooth_doubles(20000, 1);
  const Bytes stream = codec.encode64(data, Shape::d1(data.size()));
  EXPECT_EQ(codec.decode64(stream), data);
}

TEST(FpcCodec, BitPatternsSurviveExactly) {
  const FpcCodec codec;
  std::vector<double> data = {0.0, -0.0, std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity(),
                              std::numeric_limits<double>::denorm_min(), 1e308, -1e-308};
  const Bytes stream = codec.encode64(data, Shape::d1(data.size()));
  const auto out = codec.decode64(stream);
  ASSERT_EQ(out.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]), std::bit_cast<std::uint64_t>(data[i]));
  }
}

TEST(FpcCodec, CompressesSmoothDoubles) {
  const FpcCodec codec;
  const auto data = smooth_doubles(50000, 2);
  const Bytes stream = codec.encode64(data, Shape::d1(data.size()));
  // FPC removes the shared sign/exponent/top-mantissa bytes.
  EXPECT_LT(compression_ratio(stream.size(), data.size(), 8), 0.85);
}

TEST(FpcCodec, RandomDoublesDoNotExplode) {
  const FpcCodec codec;
  Pcg32 rng(3);
  std::vector<double> data(10000);
  for (auto& v : data) v = std::bit_cast<double>(rng.next_u64() | (1ull << 52));
  const Bytes stream = codec.encode64(data, Shape::d1(data.size()));
  // Worst case: 4 flag bits + 8 bytes per value plus header.
  EXPECT_LT(stream.size(), data.size() * 9 + 64);
  // Compare bit patterns: random exponents include NaNs, for which
  // operator== would report false even on an exact round trip.
  const auto out = codec.decode64(stream);
  ASSERT_EQ(out.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(out[i]), std::bit_cast<std::uint64_t>(data[i]));
  }
}

TEST(FpcCodec, FloatPathRoundTripsExactly) {
  const FpcCodec codec;
  Pcg32 rng(4);
  std::vector<float> data(10000);
  for (auto& v : data) v = static_cast<float>(std::sin(rng.uniform()) * 1e4);
  const Bytes stream = codec.encode(data, Shape::d1(data.size()));
  EXPECT_EQ(codec.decode(stream), data);
}

TEST(FpcCodec, LargerTablesNeverHurtMuch) {
  const auto data = smooth_doubles(30000, 5);
  const Bytes small = FpcCodec(8).encode64(data, Shape::d1(data.size()));
  const Bytes large = FpcCodec(20).encode64(data, Shape::d1(data.size()));
  // More context usually helps; at worst it is a wash on this data.
  EXPECT_LT(large.size(), small.size() * 11 / 10);
}

TEST(FpcCodec, RepeatedValuesCompressExtremelyWell) {
  std::vector<double> data(20000, 3.14159);
  const FpcCodec codec;
  const Bytes stream = codec.encode64(data, Shape::d1(data.size()));
  EXPECT_LT(compression_ratio(stream.size(), data.size(), 8), 0.1);
}

TEST(FpcCodec, ThrowsOnCorruptStream) {
  const FpcCodec codec;
  Bytes garbage(16, 0x55);
  EXPECT_THROW(codec.decode64(garbage), FormatError);
}

TEST(FpcCodec, RejectsBadTableBits) {
  EXPECT_THROW(FpcCodec(0), InvalidArgument);
  EXPECT_THROW(FpcCodec(27), InvalidArgument);
}

TEST(FpcCodec, NameAndCapabilities) {
  const FpcCodec codec(12);
  EXPECT_EQ(codec.name(), "FPC-12");
  EXPECT_TRUE(codec.is_lossless());
  EXPECT_TRUE(codec.capabilities().handles_64bit);
}

}  // namespace
}  // namespace cesm::comp
