#include "compress/variants.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace cesm::comp {
namespace {

TEST(Variants, PaperVariantsInTableOrder) {
  const auto v = paper_variants(4);
  ASSERT_EQ(v.size(), 9u);
  EXPECT_EQ(v[0]->name(), "GRIB2");
  EXPECT_EQ(v[1]->name(), "APAX-2");
  EXPECT_EQ(v[2]->name(), "APAX-4");
  EXPECT_EQ(v[3]->name(), "APAX-5");
  EXPECT_EQ(v[4]->name(), "fpzip-24");
  EXPECT_EQ(v[5]->name(), "fpzip-16");
  EXPECT_EQ(v[6]->name(), "ISA-0.1");
  EXPECT_EQ(v[7]->name(), "ISA-0.5");
  EXPECT_EQ(v[8]->name(), "ISA-1.0");
}

TEST(Variants, Table1CapabilityMatrix) {
  // Reproduces paper Table 1 row by row.
  const auto v = paper_variants(4);
  const Capabilities grib = v[0]->capabilities();
  EXPECT_FALSE(grib.lossless_mode);
  EXPECT_TRUE(grib.special_values);
  EXPECT_TRUE(grib.freely_available);
  EXPECT_FALSE(grib.fixed_quality);
  EXPECT_FALSE(grib.fixed_rate);
  EXPECT_FALSE(grib.handles_64bit);

  const Capabilities apax = v[1]->capabilities();
  EXPECT_TRUE(apax.lossless_mode);
  EXPECT_FALSE(apax.freely_available);
  EXPECT_TRUE(apax.fixed_quality);
  EXPECT_TRUE(apax.fixed_rate);
  EXPECT_TRUE(apax.handles_64bit);

  const Capabilities fpz = v[4]->capabilities();
  EXPECT_TRUE(fpz.lossless_mode);
  EXPECT_FALSE(fpz.special_values);
  EXPECT_TRUE(fpz.freely_available);
  EXPECT_FALSE(fpz.fixed_quality);
  EXPECT_FALSE(fpz.fixed_rate);
  EXPECT_TRUE(fpz.handles_64bit);

  const Capabilities isa = v[6]->capabilities();
  EXPECT_FALSE(isa.lossless_mode);
  EXPECT_FALSE(isa.special_values);
  EXPECT_TRUE(isa.freely_available);
  EXPECT_TRUE(isa.handles_64bit);
}

TEST(Variants, FillHandlingWrapsOnlyWhereNeeded) {
  // GRIB2 has native support: no wrapper; fpzip does not: wrapper adds it.
  const auto with_fill = paper_variants(4, 1.0e35f);
  for (const auto& codec : with_fill) {
    EXPECT_TRUE(codec->capabilities().special_values) << codec->name();
  }
}

TEST(MakeVariant, ResolvesAllTableNames) {
  for (const char* name :
       {"NetCDF-4", "fpzip-16", "fpzip-24", "fpzip-32", "ISA-0.1", "ISA-0.5", "ISA-1.0",
        "APAX-2", "APAX-4", "APAX-5", "APAX-q12", "GRIB2:4", "FPC", "FPC-12", "ISOBAR",
        "MAFISC"}) {
    const CodecPtr codec = make_variant(name);
    ASSERT_NE(codec, nullptr) << name;
  }
  EXPECT_EQ(make_variant("GRIB2:4")->name(), "GRIB2");
  EXPECT_EQ(make_variant("NC")->name(), "NetCDF-4");
}

TEST(MakeVariant, RejectsUnknownNames) {
  EXPECT_THROW(make_variant("zfp"), InvalidArgument);
  EXPECT_THROW(make_variant("FPC-abc"), InvalidArgument);
  EXPECT_THROW(make_variant("GRIB2:x"), InvalidArgument);
  EXPECT_THROW(make_variant(""), InvalidArgument);
}

TEST(FamilyLadder, OrderedMostCompressiveFirstWithLosslessTail) {
  const auto fpz = family_ladder("fpzip", 4);
  ASSERT_EQ(fpz.size(), 3u);
  EXPECT_EQ(fpz[0]->name(), "fpzip-16");
  EXPECT_EQ(fpz[2]->name(), "fpzip-32");
  EXPECT_TRUE(fpz[2]->is_lossless());

  const auto isa = family_ladder("ISABELA", 4);
  ASSERT_EQ(isa.size(), 4u);
  EXPECT_EQ(isa[0]->name(), "ISA-1.0");
  EXPECT_EQ(isa[3]->name(), "NetCDF-4");  // ISABELA cannot be lossless

  const auto apax = family_ladder("APAX", 4);
  ASSERT_EQ(apax.size(), 4u);
  EXPECT_EQ(apax[0]->name(), "APAX-5");

  const auto grib = family_ladder("GRIB2", 4);
  ASSERT_EQ(grib.size(), 2u);
  EXPECT_EQ(grib[1]->name(), "NetCDF-4");

  EXPECT_THROW(family_ladder("bogus", 4), InvalidArgument);
}

}  // namespace
}  // namespace cesm::comp
