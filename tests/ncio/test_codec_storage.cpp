// Codec-backed variable storage: lossy compression integrated into the
// I/O layer — the paper's stated end goal for CESM.

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.h"
#include "ncio/dataset.h"
#include "util/rng.h"

namespace cesm::ncio {
namespace {

Dataset with_codec_variable(const std::string& codec_spec,
                            std::optional<double> fill = std::nullopt) {
  Dataset ds;
  const auto lev = ds.add_dimension("lev", 4);
  const auto ncol = ds.add_dimension("ncol", 600);
  Variable v;
  v.name = "T";
  v.dim_ids = {lev, ncol};
  v.storage = Storage::kCodec;
  v.codec_spec = codec_spec;
  v.fill_value = fill;
  v.f32.resize(2400);
  Pcg32 rng(71);
  for (std::size_t i = 0; i < v.f32.size(); ++i) {
    v.f32[i] = static_cast<float>(250.0 + 20.0 * std::sin(i * 0.01) + rng.uniform(-0.5, 0.5));
  }
  if (fill) {
    for (std::size_t i = 0; i < v.f32.size(); i += 13) {
      v.f32[i] = static_cast<float>(*fill);
    }
  }
  ds.add_variable(std::move(v));
  return ds;
}

TEST(CodecStorage, LossyCodecRoundTripsWithinQuality) {
  const Dataset ds = with_codec_variable("fpzip-24");
  const std::vector<float> original = ds.find_variable("T")->f32;
  const Dataset back = Dataset::deserialize(ds.serialize());
  const Variable* t = back.find_variable("T");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->storage, Storage::kCodec);
  EXPECT_EQ(t->codec_spec, "fpzip-24");
  const core::ErrorMetrics m = core::compare_fields(original, t->f32);
  EXPECT_GT(m.pearson, 0.999999);
  EXPECT_LT(m.nrmse, 1e-4);
}

TEST(CodecStorage, LosslessCodecIsExact) {
  const Dataset ds = with_codec_variable("fpzip-32");
  const std::vector<float> original = ds.find_variable("T")->f32;
  const Dataset back = Dataset::deserialize(ds.serialize());
  EXPECT_EQ(back.find_variable("T")->f32, original);
}

TEST(CodecStorage, CompressionActuallyShrinksPayload) {
  const Dataset ds = with_codec_variable("APAX-4");
  EXPECT_NEAR(static_cast<double>(ds.stored_payload_bytes("T")) / (2400.0 * 4.0), 0.25,
              0.05);
}

TEST(CodecStorage, FillValuesSurviveLossyStorage) {
  const Dataset ds = with_codec_variable("fpzip-16", 1.0e35);
  const Dataset back = Dataset::deserialize(ds.serialize());
  const Variable* t = back.find_variable("T");
  for (std::size_t i = 0; i < t->f32.size(); i += 13) {
    ASSERT_EQ(t->f32[i], 1.0e35f);
  }
}

TEST(CodecStorage, EveryPaperVariantWorksAsStorage) {
  for (const char* spec : {"fpzip-16", "fpzip-24", "APAX-2", "APAX-5", "ISA-0.5",
                           "GRIB2:2", "NetCDF-4", "ISOBAR", "MAFISC", "FPC"}) {
    const Dataset ds = with_codec_variable(spec);
    const Dataset back = Dataset::deserialize(ds.serialize());
    EXPECT_EQ(back.find_variable("T")->f32.size(), 2400u) << spec;
  }
}

TEST(CodecStorage, MissingSpecIsRejected) {
  Dataset ds;
  const auto ncol = ds.add_dimension("ncol", 10);
  Variable v;
  v.name = "X";
  v.dim_ids = {ncol};
  v.storage = Storage::kCodec;  // codec_spec left empty
  v.f32.assign(10, 1.0f);
  ds.add_variable(std::move(v));
  EXPECT_THROW(ds.serialize(), InvalidArgument);
}

TEST(CodecStorage, UnknownSpecThrowsOnSerialize) {
  Dataset ds = with_codec_variable("fpzip-24");
  ds.find_variable("T")->codec_spec = "no-such-codec";
  EXPECT_THROW(ds.serialize(), InvalidArgument);
}

}  // namespace
}  // namespace cesm::ncio
