#include "ncio/timeseries.h"

#include <gtest/gtest.h>

#include "climate/ensemble.h"
#include "climate/history.h"

namespace cesm::ncio {
namespace {

std::vector<Dataset> make_slices(std::size_t count) {
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{8, 24, 3};
  spec.members = static_cast<std::size_t>(count);
  const climate::EnsembleGenerator ens(spec);
  std::vector<Dataset> slices;
  for (std::uint32_t t = 0; t < count; ++t) {
    // Each "time slice" is a member snapshot (weather evolves between
    // slices exactly like between members).
    slices.push_back(climate::make_history(ens, t, {"U", "PS", "SST"}));
  }
  return slices;
}

TEST(TimeSeries, ConcatenatesSlicesWithTimeDimension) {
  const auto slices = make_slices(4);
  const Dataset series = to_timeseries(slices, "U");
  const Variable* u = series.find_variable("U");
  ASSERT_NE(u, nullptr);
  ASSERT_GE(u->dim_ids.size(), 2u);
  EXPECT_EQ(series.dimension(u->dim_ids[0]).name, "time");
  EXPECT_EQ(series.dimension(u->dim_ids[0]).length, 4u);
  EXPECT_EQ(u->f32.size(), 4u * slices[0].find_variable("U")->f32.size());
}

TEST(TimeSeries, SliceExtractionInvertsConcatenation) {
  const auto slices = make_slices(3);
  const Dataset series = to_timeseries(slices, "PS");
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(timeseries_slice(series, "PS", t), slices[t].find_variable("PS")->f32);
  }
}

TEST(TimeSeries, FillValueCarriesThrough) {
  const auto slices = make_slices(2);
  const Dataset series = to_timeseries(slices, "SST");
  const Variable* sst = series.find_variable("SST");
  ASSERT_TRUE(sst->fill_value.has_value());
  EXPECT_FLOAT_EQ(static_cast<float>(*sst->fill_value), climate::kFillValue);
}

TEST(TimeSeries, CodecPolicyAppliesLossyStorage) {
  const auto slices = make_slices(3);
  StoragePolicy policy;
  policy.storage = Storage::kCodec;
  policy.codec_spec = "fpzip-24";
  const Dataset series = to_timeseries(slices, "U", policy);
  // Round-trip through bytes: reconstruction must stay close per slice.
  const Dataset back = Dataset::deserialize(series.serialize());
  const auto t0 = timeseries_slice(back, "U", 0);
  const auto& orig = slices[0].find_variable("U")->f32;
  ASSERT_EQ(t0.size(), orig.size());
  for (std::size_t i = 0; i < t0.size(); ++i) {
    ASSERT_NEAR(t0[i], orig[i], 2e-3);
  }
  // And the stored payload is smaller than raw.
  EXPECT_LT(series.stored_payload_bytes("U"),
            series.find_variable("U")->f32.size() * 4);
}

TEST(TimeSeries, AllVariablesConversion) {
  const auto slices = make_slices(2);
  const auto all = to_timeseries_all(slices, [](const Variable& v) {
    StoragePolicy p;
    p.storage = v.fill_value ? Storage::kDeflate : Storage::kCodec;
    p.codec_spec = v.fill_value ? "" : "fpzip-32";
    return p;
  });
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(all.at("U").find_variable("U")->codec_spec, "fpzip-32");
  EXPECT_EQ(all.at("SST").find_variable("SST")->storage, Storage::kDeflate);
}

TEST(TimeSeries, MissingVariableThrows) {
  const auto slices = make_slices(2);
  EXPECT_THROW(to_timeseries(slices, "NOPE"), InvalidArgument);
}

TEST(TimeSeries, InconsistentSlicesThrow) {
  auto slices = make_slices(2);
  slices[1].find_variable("U")->f32.pop_back();
  EXPECT_THROW(to_timeseries(slices, "U"), InvalidArgument);
}

}  // namespace
}  // namespace cesm::ncio
