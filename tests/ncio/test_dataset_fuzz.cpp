// Container-level corruption fuzzing: a damaged CNC1 file must never
// crash the reader — it either throws a library error or yields a
// well-formed dataset.

#include <gtest/gtest.h>

#include <cmath>

#include "ncio/dataset.h"
#include "util/rng.h"

namespace cesm::ncio {
namespace {

Dataset sample(Storage storage) {
  Dataset ds;
  ds.attrs()["title"] = std::string("fuzz target");
  const auto ncol = ds.add_dimension("ncol", 400);
  Variable v;
  v.name = "T";
  v.dim_ids = {ncol};
  v.storage = storage;
  if (storage == Storage::kCodec) v.codec_spec = "fpzip-24";
  v.f32.resize(400);
  for (std::size_t i = 0; i < v.f32.size(); ++i) {
    v.f32[i] = static_cast<float>(std::sin(i * 0.1) * 10.0);
  }
  ds.add_variable(std::move(v));
  return ds;
}

class DatasetFuzz : public ::testing::TestWithParam<Storage> {};

TEST_P(DatasetFuzz, ByteFlipsNeverCrash) {
  const Bytes original = sample(GetParam()).serialize();
  Pcg32 rng(0xdc);
  int ok = 0, threw = 0;
  for (int trial = 0; trial < 150; ++trial) {
    Bytes corrupted = original;
    for (int f = 0; f < 3; ++f) {
      const std::size_t pos = rng.bounded(static_cast<std::uint32_t>(corrupted.size()));
      corrupted[pos] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    }
    try {
      const Dataset back = Dataset::deserialize(corrupted);
      ++ok;
    } catch (const Error&) {
      ++threw;
    }
  }
  EXPECT_EQ(ok + threw, 150);
}

TEST_P(DatasetFuzz, TruncationAlwaysThrowsOrParses) {
  const Bytes original = sample(GetParam()).serialize();
  for (std::size_t keep : {std::size_t{0}, std::size_t{5}, original.size() / 4,
                           original.size() / 2, original.size() - 1}) {
    Bytes cut(original.begin(), original.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(Dataset::deserialize(cut), Error) << "keep=" << keep;
  }
}

INSTANTIATE_TEST_SUITE_P(Storages, DatasetFuzz,
                         ::testing::Values(Storage::kRaw, Storage::kDeflate,
                                           Storage::kCodec),
                         [](const ::testing::TestParamInfo<Storage>& info) {
                           switch (info.param) {
                             case Storage::kRaw: return "raw";
                             case Storage::kDeflate: return "deflate";
                             default: return "codec";
                           }
                         });

}  // namespace
}  // namespace cesm::ncio
