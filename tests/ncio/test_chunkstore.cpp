#include "ncio/chunkstore.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/generators.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace cesm::ncio {
namespace {

std::filesystem::path temp_store(const char* name) {
  return std::filesystem::path(::testing::TempDir()) / name;
}

/// Write a 3-member store with a deliberately uneven partition (including
/// a 1-element tail chunk) and return its path.
std::filesystem::path write_store(const char* name,
                                  std::optional<float> fill = std::nullopt) {
  const std::filesystem::path path = temp_store(name);
  const std::vector<std::size_t> offsets = {0, 1000, 2302, 2303};
  ChunkStoreWriter writer(path.string(), "TS", comp::Shape::d1(2303), fill, 3,
                          offsets);
  for (std::uint32_t m = 0; m < 3; ++m) {
    const auto data = testgen::smooth_field(2303, 0x57a7e + m);
    for (std::size_t c = 0; c + 1 < offsets.size(); ++c) {
      writer.write_chunk(
          m, c, std::span(data).subspan(offsets[c], offsets[c + 1] - offsets[c]));
    }
  }
  writer.finish();
  return path;
}

TEST(ChunkStore, RoundTripsEveryMemberAndChunk) {
  const std::filesystem::path path = write_store("cnk_roundtrip.cnk1");
  const ChunkStoreReader reader(path.string());

  EXPECT_EQ(reader.variable(), "TS");
  EXPECT_EQ(reader.member_count(), 3u);
  EXPECT_EQ(reader.total_elems(), 2303u);
  EXPECT_FALSE(reader.fill().has_value());
  ASSERT_EQ(reader.chunk_count(), 3u);
  EXPECT_EQ(reader.chunk_elems(0), 1000u);
  EXPECT_EQ(reader.chunk_elems(1), 1302u);
  EXPECT_EQ(reader.chunk_elems(2), 1u);  // 1-element tail

  for (std::uint32_t m = 0; m < 3; ++m) {
    const auto expected = testgen::smooth_field(2303, 0x57a7e + m);
    std::vector<float> got(2303);
    for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
      const std::size_t lo = reader.chunk_offsets()[c];
      reader.read_chunk(m, c, std::span(got).subspan(lo, reader.chunk_elems(c)));
    }
    EXPECT_EQ(got, expected) << "member " << m;
  }
  std::filesystem::remove(path);
}

TEST(ChunkStore, FillValueRoundTripsThroughHeader) {
  const std::filesystem::path path = write_store("cnk_fill.cnk1", 1.0e35f);
  const ChunkStoreReader reader(path.string());
  ASSERT_TRUE(reader.fill().has_value());
  EXPECT_EQ(*reader.fill(), 1.0e35f);
  std::filesystem::remove(path);
}

TEST(ChunkStore, WriterValidatesPartition) {
  const std::string path = temp_store("cnk_bad_layout.cnk1").string();
  const comp::Shape shape = comp::Shape::d1(100);
  // Partition must start at 0, end at the element count, and increase.
  EXPECT_THROW(ChunkStoreWriter(path, "T", shape, std::nullopt, 1,
                                std::vector<std::size_t>{10, 100}),
               Error);
  EXPECT_THROW(ChunkStoreWriter(path, "T", shape, std::nullopt, 1,
                                std::vector<std::size_t>{0, 99}),
               Error);
  EXPECT_THROW(ChunkStoreWriter(path, "T", shape, std::nullopt, 1,
                                std::vector<std::size_t>{0, 60, 60, 100}),
               Error);
  EXPECT_THROW(ChunkStoreWriter(path, "T", shape, std::nullopt, 0,
                                std::vector<std::size_t>{0, 100}),
               Error);
}

TEST(ChunkStore, WriteChunkValidatesArguments) {
  const std::filesystem::path path = temp_store("cnk_bad_write.cnk1");
  const std::vector<std::size_t> offsets = {0, 64, 100};
  ChunkStoreWriter writer(path.string(), "T", comp::Shape::d1(100), std::nullopt, 2,
                          offsets);
  std::vector<float> data(64, 1.0f);
  EXPECT_THROW(writer.write_chunk(2, 0, data), Error);                      // member
  EXPECT_THROW(writer.write_chunk(0, 2, data), Error);                      // chunk
  EXPECT_THROW(writer.write_chunk(0, 1, data), Error);                      // size
  EXPECT_NO_THROW(writer.write_chunk(0, 0, data));
}

TEST(ChunkStore, UnfinishedWriterLeavesNoFileBehind) {
  const std::filesystem::path path = temp_store("cnk_unfinished.cnk1");
  {
    ChunkStoreWriter writer(path.string(), "T", comp::Shape::d1(64), std::nullopt, 1,
                            std::vector<std::size_t>{0, 64});
    const std::vector<float> data(64, 2.0f);
    writer.write_chunk(0, 0, data);
    // no finish(): the dtor must clean up the temp file
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
}

TEST(ChunkStore, ReaderRejectsCorruptMagic) {
  const std::filesystem::path path = write_store("cnk_bad_magic.cnk1");
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.put('X');  // clobber the first magic byte
  }
  EXPECT_THROW(ChunkStoreReader(path.string()), FormatError);
  std::filesystem::remove(path);
}

TEST(ChunkStore, ReaderRejectsTruncatedPayload) {
  const std::filesystem::path path = write_store("cnk_truncated.cnk1");
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 8);
  EXPECT_THROW(ChunkStoreReader(path.string()), FormatError);
  std::filesystem::remove(path);
}

TEST(ChunkStore, ReadChunkValidatesArguments) {
  const std::filesystem::path path = write_store("cnk_bad_read.cnk1");
  const ChunkStoreReader reader(path.string());
  std::vector<float> out(1000);
  EXPECT_THROW(reader.read_chunk(3, 0, out), Error);  // member out of range
  EXPECT_THROW(reader.read_chunk(0, 3, out), Error);  // chunk out of range
  EXPECT_THROW(reader.read_chunk(0, 1, out), Error);  // wrong span size
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Hostility suite: a spill store that can outlive its writing process (spill
// reuse) must treat ANY damage — truncation at any byte prefix, any single
// bit flip in header, checksum table, or payload — as a typed FormatError,
// never as silently-wrong data, a crash, or UB. Mirrors the frame-hostility
// suite the serving protocol carries.

/// Read every chunk of every member, forcing every payload checksum check.
void read_everything(const ChunkStoreReader& reader) {
  std::vector<float> buf;
  for (std::uint32_t m = 0; m < reader.member_count(); ++m) {
    for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
      buf.resize(reader.chunk_elems(c));
      reader.read_chunk(m, c, buf);
    }
  }
}

std::vector<char> slurp(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

void spew(const std::filesystem::path& path, std::span<const char> bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Open-then-read-everything must throw FormatError; anything else (no
/// throw, a different exception type, a crash) fails the test.
void expect_typed_rejection(const std::filesystem::path& path,
                            const std::string& what) {
  try {
    const ChunkStoreReader reader(path.string());
    read_everything(reader);
    ADD_FAILURE() << what << ": damage was not detected";
  } catch (const FormatError&) {
    // expected: typed, catchable, attributable
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": wrong exception type: " << e.what();
  }
}

/// A small store (2 members, 3 chunks with a 1-element tail) whose whole
/// file is cheap to rewrite thousands of times.
std::filesystem::path write_hostility_store(const char* name) {
  const std::filesystem::path path = temp_store(name);
  const std::vector<std::size_t> offsets = {0, 64, 130, 131};
  ChunkStoreWriter writer(path.string(), "TS", comp::Shape::d1(131), 1.0e35f, 2,
                          offsets);
  for (std::uint32_t m = 0; m < 2; ++m) {
    const auto data = testgen::smooth_field(131, 0x57a7e + m);
    for (std::size_t c = 0; c + 1 < offsets.size(); ++c) {
      writer.write_chunk(
          m, c, std::span(data).subspan(offsets[c], offsets[c + 1] - offsets[c]));
    }
  }
  writer.finish();
  return path;
}

TEST(ChunkStoreHostility, TruncationAtEveryBytePrefixIsTyped) {
  const std::filesystem::path path = write_hostility_store("cnk_trunc_all.cnk1");
  const std::vector<char> pristine = slurp(path);
  ASSERT_GT(pristine.size(), 0u);
  const std::filesystem::path mutant = temp_store("cnk_trunc_all_mutant.cnk1");
  for (std::size_t n = 0; n < pristine.size(); ++n) {
    spew(mutant, std::span(pristine.data(), n));
    expect_typed_rejection(mutant, "truncated to " + std::to_string(n) + " bytes");
  }
  std::filesystem::remove(path);
  std::filesystem::remove(mutant);
}

/// The byte range of one file region, resolved from the pristine reader.
struct Region {
  const char* name;
  std::size_t lo = 0;
  std::size_t hi = 0;
};

class ChunkStoreHostility : public ::testing::TestWithParam<const char*> {};

TEST_P(ChunkStoreHostility, EverySingleBitFlipIsTyped) {
  // File names carry the param: ctest runs each instance as its own
  // process against the shared TempDir, so a common name would race.
  const std::string stem = std::string("cnk_flip_") + GetParam();
  const std::filesystem::path path = write_hostility_store((stem + ".cnk1").c_str());
  const std::vector<char> pristine = slurp(path);
  Region region{GetParam(), 0, 0};
  {
    const ChunkStoreReader reader(path.string());
    const std::size_t header = reader.header_bytes();
    const std::size_t table = reader.table_bytes();
    if (std::string_view(region.name) == "header") {
      region.hi = header;
    } else if (std::string_view(region.name) == "table") {
      region.lo = header;
      region.hi = header + table;
    } else {
      region.lo = header + table;
      region.hi = pristine.size();
    }
  }
  ASSERT_LT(region.lo, region.hi);
  ASSERT_LE(region.hi, pristine.size());

  const std::filesystem::path mutant = temp_store((stem + "_mutant.cnk1").c_str());
  std::vector<char> bytes = pristine;
  for (std::size_t pos = region.lo; pos < region.hi; ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << bit));
      spew(mutant, bytes);
      expect_typed_rejection(mutant, std::string(region.name) + " byte " +
                                         std::to_string(pos) + " bit " +
                                         std::to_string(bit));
      bytes[pos] = pristine[pos];  // restore for the next flip
    }
  }
  std::filesystem::remove(path);
  std::filesystem::remove(mutant);
}

INSTANTIATE_TEST_SUITE_P(Regions, ChunkStoreHostility,
                         ::testing::Values("header", "table", "payload"));

TEST(ChunkStoreHostility, RejectsVersionOneFiles) {
  // Spill reuse must never trust a pre-checksum (version 1) store: flip the
  // version field back and expect a typed rejection even though the rest of
  // the file is pristine.
  const std::filesystem::path path = write_hostility_store("cnk_v1.cnk1");
  std::vector<char> bytes = slurp(path);
  ASSERT_GE(bytes.size(), 8u);
  bytes[4] = 1;  // version word (little-endian u32 at offset 4)
  spew(path, bytes);
  expect_typed_rejection(path, "version 1 store");
  std::filesystem::remove(path);
}

TEST(ChunkStore, ReadChunkFailpointInjectsOnce) {
  const std::filesystem::path path = write_store("cnk_failpoint.cnk1");
  const ChunkStoreReader reader(path.string());
  std::vector<float> out(1000);
  {
    fail::ScopedFailpoint fp("ncio.read_chunk", fail::Trigger::once());
    EXPECT_THROW(reader.read_chunk(0, 0, out), fail::InjectedFault);
    EXPECT_NO_THROW(reader.read_chunk(0, 0, out));  // one-shot: clears itself
  }
  EXPECT_NO_THROW(reader.read_chunk(1, 0, out));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cesm::ncio
