#include "ncio/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/error.h"
#include "util/rng.h"

namespace cesm::ncio {
namespace {

Dataset sample_dataset(Storage storage = Storage::kRaw) {
  Dataset ds;
  ds.attrs()["title"] = std::string("test file");
  ds.attrs()["case_id"] = std::int64_t{17};
  ds.attrs()["dt"] = 0.25;

  const auto ncol = ds.add_dimension("ncol", 100);
  const auto lev = ds.add_dimension("lev", 4);

  Variable v2;
  v2.name = "PS";
  v2.dtype = DataType::kFloat32;
  v2.dim_ids = {ncol};
  v2.storage = storage;
  v2.attrs["units"] = std::string("Pa");
  cesm::Pcg32 rng(41);
  v2.f32.resize(100);
  for (auto& x : v2.f32) x = static_cast<float>(rng.uniform(9e4, 1e5));
  ds.add_variable(std::move(v2));

  Variable v3;
  v3.name = "T";
  v3.dtype = DataType::kFloat32;
  v3.dim_ids = {lev, ncol};
  v3.storage = storage;
  v3.fill_value = 1.0e35;
  v3.f32.resize(400);
  for (auto& x : v3.f32) x = static_cast<float>(rng.uniform(200.0, 300.0));
  ds.add_variable(std::move(v3));

  Variable v64;
  v64.name = "time_bounds";
  v64.dtype = DataType::kFloat64;
  v64.dim_ids = {};
  v64.f64 = {};
  // A scalar-rank variable is legal only if element count is 1; give it a
  // dimension instead.
  v64.dim_ids = {lev};
  v64.f64 = {0.0, 0.25, 0.5, 0.75};
  ds.add_variable(std::move(v64));
  return ds;
}

TEST(Dataset, SerializeDeserializeRoundTrip) {
  const Dataset ds = sample_dataset();
  const Dataset back = Dataset::deserialize(ds.serialize());

  ASSERT_EQ(back.dimensions().size(), 2u);
  EXPECT_EQ(back.dimension(0).name, "ncol");
  EXPECT_EQ(back.dimension(0).length, 100u);

  ASSERT_EQ(back.variables().size(), 3u);
  const Variable* ps = back.find_variable("PS");
  ASSERT_NE(ps, nullptr);
  EXPECT_EQ(ps->f32, ds.find_variable("PS")->f32);
  EXPECT_EQ(std::get<std::string>(ps->attrs.at("units")), "Pa");

  const Variable* t = back.find_variable("T");
  ASSERT_NE(t, nullptr);
  ASSERT_TRUE(t->fill_value.has_value());
  EXPECT_DOUBLE_EQ(*t->fill_value, 1.0e35);
  EXPECT_EQ(t->f32, ds.find_variable("T")->f32);

  const Variable* tb = back.find_variable("time_bounds");
  ASSERT_NE(tb, nullptr);
  EXPECT_EQ(tb->f64, (std::vector<double>{0.0, 0.25, 0.5, 0.75}));

  EXPECT_EQ(std::get<std::int64_t>(back.attrs().at("case_id")), 17);
  EXPECT_DOUBLE_EQ(std::get<double>(back.attrs().at("dt")), 0.25);
}

TEST(Dataset, DeflateStorageIsLosslessAndSmallerOnSmoothData) {
  Dataset ds;
  const auto ncol = ds.add_dimension("ncol", 20000);
  Variable v;
  v.name = "Z";
  v.dim_ids = {ncol};
  v.storage = Storage::kDeflate;
  v.f32.resize(20000);
  for (std::size_t i = 0; i < v.f32.size(); ++i) {
    v.f32[i] = static_cast<float>(std::sin(i * 0.001) * 1000.0);
  }
  const std::vector<float> original = v.f32;
  ds.add_variable(std::move(v));

  EXPECT_LT(ds.stored_payload_bytes("Z"), 20000u * 4u);
  const Dataset back = Dataset::deserialize(ds.serialize());
  EXPECT_EQ(back.find_variable("Z")->f32, original);
}

TEST(Dataset, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cesmcomp_test_ds.cnc").string();
  const Dataset ds = sample_dataset(Storage::kDeflate);
  ds.write_file(path);
  const Dataset back = Dataset::read_file(path);
  EXPECT_EQ(back.variables().size(), 3u);
  EXPECT_EQ(back.find_variable("T")->f32, ds.find_variable("T")->f32);
  std::remove(path.c_str());
}

TEST(Dataset, ReadMissingFileThrows) {
  EXPECT_THROW(Dataset::read_file("/nonexistent/path/file.cnc"), IoError);
}

TEST(Dataset, RejectsDuplicateNames) {
  Dataset ds;
  ds.add_dimension("ncol", 10);
  EXPECT_THROW(ds.add_dimension("ncol", 20), InvalidArgument);
  Variable v;
  v.name = "X";
  v.dim_ids = {0};
  v.f32.assign(10, 1.0f);
  ds.add_variable(v);
  EXPECT_THROW(ds.add_variable(v), InvalidArgument);
}

TEST(Dataset, RejectsShapeMismatch) {
  Dataset ds;
  ds.add_dimension("ncol", 10);
  Variable v;
  v.name = "X";
  v.dim_ids = {0};
  v.f32.assign(7, 1.0f);  // wrong size
  EXPECT_THROW(ds.add_variable(std::move(v)), InvalidArgument);
}

TEST(Dataset, ThrowsOnCorruptBytes) {
  Bytes garbage = {'n', 'o', 'p', 'e', 0, 0};
  EXPECT_THROW(Dataset::deserialize(garbage), FormatError);
}

TEST(Dataset, ThrowsOnTruncatedPayload) {
  const Dataset ds = sample_dataset();
  Bytes bytes = ds.serialize();
  bytes.resize(bytes.size() - 50);
  EXPECT_THROW(Dataset::deserialize(bytes), FormatError);
}

}  // namespace
}  // namespace cesm::ncio
