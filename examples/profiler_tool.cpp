// An APAX-profiler-style command-line tool (paper §3.2.4): sweep the
// fixed-rate ladder on a variable, report the quality at each rate, and
// recommend an encoding rate — the feature the paper singles out as what
// made APAX "considerably simpler" to operate than the other methods.
//
// Usage: ./build/examples/profiler_tool [variable] [min_pearson]
//        default: CCN3 0.99999

#include <cstdio>
#include <cstdlib>

#include "climate/ensemble.h"
#include "compress/apax/profiler.h"
#include "core/metrics.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace cesm;
  const std::string variable = argc > 1 ? argv[1] : "CCN3";
  const double min_pearson = argc > 2 ? std::strtod(argv[2], nullptr) : 0.99999;

  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec::reduced();
  spec.members = 3;
  const climate::EnsembleGenerator model(spec);

  const climate::Field field = model.field(variable, 1);
  std::printf("APAX profile of %s (%zu values), acceptance rho >= %g\n\n",
              variable.c_str(), field.size(), min_pearson);

  const comp::ApaxProfile profile =
      comp::apax_profile(field.data, field.shape, min_pearson);

  core::TextTable table({"rate", "CR", "pearson", "NRMSE", "max abs err"});
  for (const comp::ApaxProfilePoint& p : profile.points) {
    table.add_row({"APAX-" + core::format_fixed(p.ratio, 0), core::format_fixed(p.cr, 3),
                   core::format_fixed(p.pearson, 7), core::format_sci(p.nrmse),
                   core::format_sci(p.max_abs_err)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  if (profile.recommended_ratio) {
    std::printf("\nrecommended encoding rate: APAX-%g (CR %.2f)\n",
                *profile.recommended_ratio, 1.0 / *profile.recommended_ratio);
  } else {
    std::printf("\nno fixed rate meets the quality bar: use lossless treatment\n");
  }
  return 0;
}
