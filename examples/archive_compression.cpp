// The paper's motivating workflow (§1): a post-processing step that takes
// a CESM history file and compresses it for archival, choosing a
// compression treatment per variable.
//
// This example writes one member's full 170-variable history file, picks
// for each variable the most aggressive fpzip variant whose reconstruction
// keeps rho above the acceptance bar (falling back to lossless), and
// reports the storage the hybrid archive saves versus raw and versus
// all-lossless NetCDF-4 deflate.
//
// Usage: ./build/examples/archive_compression [vars]   (default: all 170)

#include <cstdio>
#include <cstdlib>
#include <map>

#include "climate/ensemble.h"
#include "climate/history.h"
#include "compress/variants.h"
#include "core/metrics.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace cesm;
  const std::size_t var_limit =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 0;

  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec::reduced();
  spec.members = 3;
  const climate::EnsembleGenerator model(spec);

  std::size_t raw_bytes = 0, nc_bytes = 0, hybrid_bytes = 0;
  std::map<std::string, std::size_t> variant_counts;
  std::size_t processed = 0;

  for (const climate::VariableSpec& var : model.catalog()) {
    if (var_limit && processed >= var_limit) break;
    ++processed;

    const climate::Field field = model.field(var, 1);
    raw_bytes += field.size() * sizeof(float);

    // All-lossless reference (what the site archives today).
    const comp::CodecPtr nc = comp::make_variant("NetCDF-4");
    nc_bytes += nc->encode(field.data, field.shape).size();

    // Hybrid: most aggressive fpzip variant that keeps rho at five nines.
    const comp::CodecPtr* chosen = nullptr;
    static const char* kLadder[] = {"fpzip-16", "fpzip-24", "fpzip-32"};
    comp::CodecPtr candidate;
    Bytes stream;
    for (const char* name : kLadder) {
      candidate = comp::make_variant(name, field.fill);
      stream = candidate->encode(field.data, field.shape);
      const std::vector<float> recon = candidate->decode(stream);
      const core::ErrorMetrics m = core::compare_fields(field, recon);
      if (m.pearson >= core::kPearsonThreshold) {
        chosen = &candidate;
        break;
      }
    }
    if (chosen == nullptr) {  // fall back to lossless container storage
      candidate = comp::make_variant("fpzip-32", field.fill);
      stream = candidate->encode(field.data, field.shape);
    }
    hybrid_bytes += stream.size();
    ++variant_counts[candidate->name()];
  }

  std::printf("Archive compression study over %zu variables (member 1):\n\n", processed);
  core::TextTable table({"storage", "bytes", "vs raw"});
  const auto pct = [&](std::size_t b) {
    return core::format_fixed(100.0 * static_cast<double>(b) /
                              static_cast<double>(raw_bytes), 1) + "%";
  };
  table.add_row({"raw float32", std::to_string(raw_bytes), "100.0%"});
  table.add_row({"NetCDF-4 deflate (lossless)", std::to_string(nc_bytes), pct(nc_bytes)});
  table.add_row({"per-variable fpzip hybrid", std::to_string(hybrid_bytes),
                 pct(hybrid_bytes)});
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nvariant usage:\n");
  for (const auto& [name, count] : variant_counts) {
    std::printf("  %-10s %zu variables\n", name.c_str(), count);
  }
  std::printf(
      "\nThe paper's conclusion in practice: treating variables individually\n"
      "achieves compression approaching 5:1 on amenable variables while the\n"
      "quality bar decides where lossless treatment is required.\n");
  return 0;
}
