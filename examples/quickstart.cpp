// Quickstart: generate a CAM-like field, compress it with several methods,
// and evaluate the reconstruction with the paper's §4.2 metrics.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "climate/ensemble.h"
#include "compress/variants.h"
#include "core/metrics.h"
#include "core/report.h"

int main() {
  using namespace cesm;

  // 1. A small synthetic climate model run (one ensemble member).
  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec::reduced();
  spec.members = 3;
  const climate::EnsembleGenerator model(spec);

  // 2. Pull one variable's data — zonal wind, a 3-D field.
  const climate::Field u = model.field("U", /*member=*/1);
  std::printf("variable %s: %zu values, shape rank %zu\n", u.name.c_str(), u.size(),
              u.shape.rank());

  // 3. Characterize it (paper §4.1): moments + lossless compressibility.
  const core::Characterization c = core::characterize(u);
  std::printf("min %.3g  max %.3g  mean %.3g  sd %.3g  lossless CR %.2f\n\n",
              c.summary.min, c.summary.max, c.summary.mean, c.summary.stddev,
              c.lossless_cr);

  // 4. Compress with a few methods and compare (paper §4.2).
  core::TextTable table({"codec", "CR", "NRMSE", "e_nmax", "pearson"});
  for (const char* variant : {"fpzip-24", "fpzip-16", "APAX-4", "ISA-0.5", "GRIB2:3",
                              "NetCDF-4"}) {
    const comp::CodecPtr codec = comp::make_variant(variant);
    const comp::RoundTrip rt = comp::round_trip(*codec, u.data, u.shape);
    const core::ErrorMetrics m = core::compare_fields(u, rt.reconstructed);
    table.add_row({codec->name(), core::format_fixed(rt.cr, 3),
                   core::format_sci(m.nrmse), core::format_sci(m.e_nmax),
                   core::format_fixed(m.pearson, 7)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf(
      "\nThe paper's acceptance bar for the correlation test is rho >= %.5f.\n"
      "Run the bench/ binaries to regenerate the paper's tables and figures.\n",
      core::kPearsonThreshold);
  return 0;
}
