// The CESM-PVT's original use case (paper §4.3): decide whether simulation
// results from a *new machine* are statistically distinguishable from the
// trusted ensemble — i.e. whether a port is "climate-changing".
//
// We model the new machine by running extra ensemble members (ids beyond
// the base ensemble): bit-level differences from compilers or math
// libraries act exactly like an initial-condition perturbation, which is
// the PVT's premise. The library API (core::verify_port) scores three new
// runs per variable: the RMSZ of each must fall within the base RMSZ
// distribution, and its global mean must not shift outside the base range.
//
// Usage: ./build/examples/port_verification [vars]   (default 12 variables)

#include <cstdio>
#include <cstdlib>

#include "core/port_verification.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace cesm;
  const std::size_t var_count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;

  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec::reduced();
  spec.members = 31;  // trusted ensemble (101 in production, smaller here)
  const climate::EnsembleGenerator model(spec);

  const std::vector<std::uint32_t> new_runs = {200, 201, 202};  // "new machine"

  std::printf("CESM-PVT port verification: %zu-member trusted ensemble, %zu new runs\n\n",
              spec.members, new_runs.size());

  const std::vector<core::PortVerdict> verdicts =
      core::verify_port(model, new_runs, {}, var_count);

  core::TextTable table({"variable", "RMSZ range (trusted)", "worst new RMSZ",
                         "mean shift", "verdict"});
  std::size_t passed = 0;
  for (const core::PortVerdict& v : verdicts) {
    if (v.pass()) ++passed;
    table.add_row({v.variable,
                   core::format_fixed(v.rmsz_lo, 3) + " - " + core::format_fixed(v.rmsz_hi, 3),
                   core::format_fixed(v.worst_new_rmsz, 3),
                   core::format_sci(v.worst_mean_shift), v.pass() ? "pass" : "FAIL"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n%zu/%zu variables pass: the port is %s.\n", passed, verdicts.size(),
              passed == verdicts.size() ? "not climate-changing" : "suspect — investigate");
  if (passed != verdicts.size()) {
    std::printf(
        "(With a small trusted ensemble the distribution extremes are poorly\n"
        "sampled, so occasional false alarms are expected — the production\n"
        "PVT uses 101 members and flags variables for human review.)\n");
  }
  return 0;
}
