// Lossless compression of restart-file-like data — the paper's deferred
// case (§1): "CESM also writes restart files in full precision (8-byte
// floating point)... we will examine lossless techniques for these data in
// the future". This example builds a synthetic restart file (full-precision
// prognostic state) and compares the library's lossless methods on it:
// fpzip-64, Burtscher's FPC, the ISOBAR preconditioner, and the NetCDF-4
// deflate baseline.
//
// Usage: ./build/examples/restart_compression

#include <cstdio>
#include <vector>

#include "climate/restart.h"
#include "compress/deflate/deflate.h"
#include "compress/fpc/fpc.h"
#include "compress/fpz/fpz.h"
#include "compress/isobar.h"
#include "compress/mafisc.h"
#include "core/report.h"

int main() {
  using namespace cesm;

  climate::EnsembleSpec spec;
  spec.grid = climate::GridSpec{24, 72, 6};
  spec.members = 3;
  const climate::EnsembleGenerator model(spec);
  const ncio::Dataset restart = climate::make_restart(model, 1, ncio::Storage::kRaw);

  // Concatenate the prognostic state into one stream, as an archiver would.
  std::vector<double> state;
  for (const std::string& name : climate::restart_variables()) {
    const auto& v = restart.find_variable(name)->f64;
    state.insert(state.end(), v.begin(), v.end());
  }
  const comp::Shape shape = comp::Shape::d1(state.size());
  std::printf("Restart-file compression study: %zu float64 values (%zu bytes)\n\n",
              state.size(), state.size() * 8);

  core::TextTable table({"method", "bytes", "CR", "exact"});
  const auto row = [&](const char* label, const comp::Codec& codec) {
    const Bytes s = codec.encode64(state, shape);
    const std::vector<double> back = codec.decode64(s);
    table.add_row({label, std::to_string(s.size()),
                   core::format_fixed(comp::compression_ratio(s.size(), state.size(), 8), 3),
                   back == state ? "yes" : "NO"});
  };
  row("fpzip-64", comp::FpzCodec(64));
  row("FPC-16 (Burtscher)", comp::FpcCodec(16));
  row("ISOBAR + deflate", comp::IsobarCodec());
  row("MAFISC + deflate", comp::MafiscCodec());
  row("NetCDF-4 deflate", comp::DeflateCodec());
  std::fputs(table.to_string().c_str(), stdout);

  std::printf(
      "\nAs the paper notes, lossless ratios on full-precision floating-point\n"
      "state are modest — the mantissa tail is close to random — which is why\n"
      "checkpoint compression was deferred and the storage win lives in lossy\n"
      "compression of the analysis data.\n");
  return 0;
}
