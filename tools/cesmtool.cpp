// cesmtool — command-line front end for the library's file workflow.
//
//   cesmtool generate <out.cnc> [--members=1] [--member=N] [--vars=N] [--scale=paper]
//       synthesize a CAM-like history file
//   cesmtool info <file.cnc>
//       list dimensions, variables, attributes and stored sizes
//   cesmtool compress <in.cnc> <out.cnc> --codec=NAME [--min-rho=0.99999]
//       per-variable codec storage; falls back to lossless when the
//       reconstruction misses the quality bar (paper §5.4's hybrid idea)
//   cesmtool decompress <in.cnc> <out.cnc>
//       rewrite every variable as raw float storage
//   cesmtool diff <a.cnc> <b.cnc>
//       §4.2 error metrics per shared variable
//   cesmtool suite [--full-grid] [--scale=paper] [--members=N] [--vars=N] ...
//       the §4 verification suite; --full-grid streams every variable
//       chunk-by-chunk under the CESM_MEM_MB budget instead of holding
//       the ensemble in memory

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "climate/ensemble.h"
#include "climate/history.h"
#include "compress/variants.h"
#include "core/export.h"
#include "core/metrics.h"
#include "core/ooc.h"
#include "core/report.h"
#include "core/suite.h"
#include "ncio/dataset.h"
#include "util/memory.h"
#include "util/signals.h"

namespace {

using namespace cesm;

int usage() {
  std::fprintf(stderr,
               "usage: cesmtool <generate|info|compress|decompress|diff|suite> ...\n"
               "  generate <out.cnc> [--member=N] [--vars=N] [--scale=paper]\n"
               "  info <file.cnc>\n"
               "  compress <in.cnc> <out.cnc> --codec=NAME [--min-rho=R]\n"
               "  decompress <in.cnc> <out.cnc>\n"
               "  diff <a.cnc> <b.cnc>\n"
               "  suite [--full-grid] [--scale=paper] [--members=N] [--vars=N]\n"
               "        [--chunk=N] [--spill-dir=DIR] [--jobs=N] [--reuse-spill]\n"
               "        [--spill-budget-mb=N] [--variant-jobs=N] [--no-bias]\n"
               "        [--out=results.csv]\n"
               "    --full-grid streams each variable chunk-by-chunk (out-of-core)\n"
               "    --jobs=N runs N variables concurrently under one shared\n"
               "    CESM_MEM_MB budget (0 = one per worker); --reuse-spill\n"
               "    content-addresses spill files so a later run skips synthesis\n"
               "    under the CESM_MEM_MB logical budget; verdicts are bitwise\n"
               "    identical to the in-core pipeline on the same chunk partition\n"
               "    --variant-jobs=N sweeps N codec variants concurrently per\n"
               "    variable (1 = serial, 0 = one task per variant); the CSV is\n"
               "    byte-identical at every setting\n");
  return 2;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::string opt_value(int argc, char** argv, const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, n) == 0) return argv[i] + n;
  }
  return "";
}

int cmd_generate(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string out = argv[2];
  const std::string member_s = opt_value(argc, argv, "--member=");
  const std::string vars_s = opt_value(argc, argv, "--vars=");
  const bool paper = opt_value(argc, argv, "--scale=") == "paper";

  climate::EnsembleSpec spec;
  spec.grid = paper ? climate::GridSpec::paper() : climate::GridSpec::reduced();
  spec.members = 3;
  const climate::EnsembleGenerator ens(spec);

  const auto member = static_cast<std::uint32_t>(
      member_s.empty() ? 1 : std::strtoul(member_s.c_str(), nullptr, 10));
  std::vector<std::string> vars;
  if (!vars_s.empty()) {
    const std::size_t limit = std::strtoull(vars_s.c_str(), nullptr, 10);
    for (const climate::VariableSpec& v : ens.catalog()) {
      if (vars.size() >= limit) break;
      vars.push_back(v.name);
    }
  }
  const ncio::Dataset ds = climate::make_history(ens, member, vars);
  ds.write_file(out);
  std::printf("wrote %s: %zu variables, member %u, %zu columns x %zu levels\n",
              out.c_str(), ds.variables().size(), member, ens.grid().columns(),
              ens.grid().levels());
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) return usage();
  const ncio::Dataset ds = ncio::Dataset::read_file(argv[2]);

  std::printf("attributes:\n");
  for (const auto& [name, value] : ds.attrs()) {
    if (const auto* s = std::get_if<std::string>(&value)) {
      std::printf("  %s = \"%s\"\n", name.c_str(), s->c_str());
    } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
      std::printf("  %s = %lld\n", name.c_str(), static_cast<long long>(*i));
    } else {
      std::printf("  %s = %g\n", name.c_str(), std::get<double>(value));
    }
  }
  std::printf("dimensions:\n");
  for (const ncio::Dimension& d : ds.dimensions()) {
    std::printf("  %s = %llu\n", d.name.c_str(), static_cast<unsigned long long>(d.length));
  }

  core::TextTable table({"variable", "dtype", "storage", "elements", "stored bytes", "CR"});
  for (const ncio::Variable& v : ds.variables()) {
    const std::size_t elems = v.element_count();
    const std::size_t raw = elems * (v.dtype == ncio::DataType::kFloat32 ? 4 : 8);
    const std::size_t stored = ds.stored_payload_bytes(v.name);
    const char* storage = v.storage == ncio::Storage::kRaw       ? "raw"
                          : v.storage == ncio::Storage::kDeflate ? "deflate"
                                                                 : v.codec_spec.c_str();
    table.add_row({v.name, v.dtype == ncio::DataType::kFloat32 ? "f32" : "f64", storage,
                   std::to_string(elems), std::to_string(stored),
                   core::format_fixed(static_cast<double>(stored) / static_cast<double>(raw), 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}

int cmd_compress(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string codec_spec = opt_value(argc, argv, "--codec=");
  if (codec_spec.empty()) return usage();
  const std::string rho_s = opt_value(argc, argv, "--min-rho=");
  const double min_rho = rho_s.empty() ? core::kPearsonThreshold
                                       : std::strtod(rho_s.c_str(), nullptr);

  ncio::Dataset ds = ncio::Dataset::read_file(argv[2]);
  std::size_t lossy = 0, lossless = 0;
  for (ncio::Variable& v : ds.variables()) {
    if (v.dtype != ncio::DataType::kFloat32) {
      v.storage = ncio::Storage::kDeflate;
      ++lossless;
      continue;
    }
    // Trial round trip against the quality bar.
    const std::optional<float> fill =
        v.fill_value ? std::optional<float>(static_cast<float>(*v.fill_value))
                     : std::nullopt;
    const comp::CodecPtr codec = comp::make_variant(codec_spec, fill);
    comp::Shape shape;
    for (std::uint32_t id : v.dim_ids) shape.dims.push_back(ds.dimension(id).length);
    if (shape.dims.empty()) shape.dims.push_back(v.f32.size());
    const comp::RoundTrip rt = comp::round_trip(*codec, v.f32, shape);
    std::vector<std::uint8_t> mask;
    if (fill) {
      mask.assign(v.f32.size(), 1);
      for (std::size_t i = 0; i < v.f32.size(); ++i) {
        if (v.f32[i] == *fill) mask[i] = 0;
      }
    }
    const core::ErrorMetrics m = core::compare_fields(v.f32, rt.reconstructed, mask);
    if (m.pearson >= min_rho) {
      v.storage = ncio::Storage::kCodec;
      v.codec_spec = codec_spec;
      ++lossy;
    } else {
      v.storage = ncio::Storage::kDeflate;
      v.codec_spec.clear();
      ++lossless;
    }
  }
  ds.attrs()["compression"] = codec_spec + " (rho >= " + core::format_fixed(min_rho, 5) + ")";
  ds.write_file(argv[3]);
  std::printf("wrote %s: %zu variables with %s, %zu lossless fallbacks\n", argv[3], lossy,
              codec_spec.c_str(), lossless);
  return 0;
}

int cmd_decompress(int argc, char** argv) {
  if (argc < 4) return usage();
  ncio::Dataset ds = ncio::Dataset::read_file(argv[2]);  // decodes all payloads
  for (ncio::Variable& v : ds.variables()) {
    v.storage = ncio::Storage::kRaw;
    v.codec_spec.clear();
  }
  ds.write_file(argv[3]);
  std::printf("wrote %s: %zu variables as raw float data\n", argv[3],
              ds.variables().size());
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc < 4) return usage();
  const ncio::Dataset a = ncio::Dataset::read_file(argv[2]);
  const ncio::Dataset b = ncio::Dataset::read_file(argv[3]);

  core::TextTable table({"variable", "e_nmax", "NRMSE", "pearson", "verdict"});
  std::size_t compared = 0;
  for (const ncio::Variable& va : a.variables()) {
    const ncio::Variable* vb = b.find_variable(va.name);
    if (vb == nullptr || va.dtype != ncio::DataType::kFloat32) continue;
    if (vb->f32.size() != va.f32.size()) continue;
    std::vector<std::uint8_t> mask;
    if (va.fill_value) {
      const auto fill = static_cast<float>(*va.fill_value);
      mask.assign(va.f32.size(), 1);
      for (std::size_t i = 0; i < va.f32.size(); ++i) {
        if (va.f32[i] == fill) mask[i] = 0;
      }
    }
    const core::ErrorMetrics m = core::compare_fields(va.f32, vb->f32, mask);
    table.add_row({va.name, core::format_sci(m.e_nmax), core::format_sci(m.nrmse),
                   core::format_fixed(m.pearson, 7),
                   m.pearson >= core::kPearsonThreshold ? "pass" : "FAIL"});
    ++compared;
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("%zu variables compared\n", compared);
  return 0;
}

int cmd_suite(int argc, char** argv) {
  const bool full_grid = has_flag(argc, argv, "--full-grid");
  const bool paper = opt_value(argc, argv, "--scale=") == "paper";
  const std::string members_s = opt_value(argc, argv, "--members=");
  const std::string vars_s = opt_value(argc, argv, "--vars=");
  const std::string chunk_s = opt_value(argc, argv, "--chunk=");
  const std::string spill_dir = opt_value(argc, argv, "--spill-dir=");
  const std::string jobs_s = opt_value(argc, argv, "--jobs=");
  const bool reuse_spill = has_flag(argc, argv, "--reuse-spill");
  const std::string spill_budget_s = opt_value(argc, argv, "--spill-budget-mb=");
  const std::string variant_jobs_s = opt_value(argc, argv, "--variant-jobs=");
  const std::string out = opt_value(argc, argv, "--out=");

  climate::EnsembleSpec espec;
  espec.grid = paper ? climate::GridSpec::paper() : climate::GridSpec::reduced();
  espec.members = members_s.empty()
                      ? 9
                      : std::strtoull(members_s.c_str(), nullptr, 10);
  const climate::EnsembleGenerator ens(espec);

  std::vector<std::string> vars;
  if (!vars_s.empty()) {
    const std::size_t limit = std::strtoull(vars_s.c_str(), nullptr, 10);
    for (const climate::VariableSpec& v : ens.catalog()) {
      if (vars.size() >= limit) break;
      vars.push_back(v.name);
    }
  }

  core::OocConfig cfg;
  if (!chunk_s.empty()) cfg.chunk_elems = std::strtoull(chunk_s.c_str(), nullptr, 10);
  if (!spill_dir.empty()) cfg.spill_dir = spill_dir;
  if (!jobs_s.empty()) {
    cfg.parallel_variables = std::strtoull(jobs_s.c_str(), nullptr, 10);
  }
  cfg.reuse_spill = reuse_spill;
  if (!spill_budget_s.empty()) {
    cfg.spill_budget_bytes =
        std::strtoull(spill_budget_s.c_str(), nullptr, 10) << 20;
  }
  cfg.memory_budget_bytes = util::memory_budget_bytes().value_or(0);
  cfg.suite.run_bias = !has_flag(argc, argv, "--no-bias");
  cfg.suite.chunk_elems = cfg.chunk_elems;
  if (!variant_jobs_s.empty()) {
    // Scheduling only: verdicts land in fixed catalog-order slots, so the
    // CSV is byte-identical at any setting (1 = serial, 0 = one task per
    // variant, N = about N concurrent tasks per variable).
    cfg.suite.variant_jobs = std::strtoull(variant_jobs_s.c_str(), nullptr, 10);
  }

  core::SuiteResults results;
  if (full_grid) {
    results = core::run_suite_streaming(ens, cfg, vars);
  } else {
    results = core::run_suite(ens, cfg.suite, vars);
  }

  core::TextTable table({"method", "rho", "RMSZ", "e_nmax", "bias", "all 4"});
  const std::size_t processed = results.variables.size() - results.failed_variable_count();
  for (const core::MethodTally& row : results.tally()) {
    table.add_row({row.codec, std::to_string(row.rho), std::to_string(row.rmsz),
                   std::to_string(row.enmax), std::to_string(row.bias),
                   std::to_string(row.all)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  for (const core::VariableResult& v : results.variables) {
    if (v.processing_failed) {
      std::fprintf(stderr, "variable %s failed: %s\n", v.variable.c_str(),
                   v.error_message.c_str());
    }
  }
  std::printf("%zu variables (%zu failed), %zu members%s\n", processed,
              results.failed_variable_count(), espec.members,
              full_grid ? ", out-of-core" : "");
  std::printf("peak RSS %.1f MB%s\n",
              static_cast<double>(util::peak_rss_bytes()) / 1048576.0,
              full_grid && cfg.memory_budget_bytes == 0 ? " (no CESM_MEM_MB cap)"
                                                        : "");
  if (!out.empty()) {
    core::write_text_file(out, core::suite_results_csv(results));
    std::printf("wrote %s\n", out.c_str());
  }
  return results.failed_variable_count() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  // Record-and-continue SIGINT/SIGTERM: dataset writes are temp+rename
  // atomic, so finishing the in-flight command and exiting 128+signum
  // beats dying mid-file. A second signal still kills immediately.
  util::install_signal_drain();
  const std::string cmd = argv[1];
  try {
    int rc = -1;
    if (cmd == "generate") rc = cmd_generate(argc, argv);
    else if (cmd == "info") rc = cmd_info(argc, argv);
    else if (cmd == "compress") rc = cmd_compress(argc, argv);
    else if (cmd == "decompress") rc = cmd_decompress(argc, argv);
    else if (cmd == "diff") rc = cmd_diff(argc, argv);
    else if (cmd == "suite") rc = cmd_suite(argc, argv);
    else return usage();
    if (util::interrupt_requested()) {
      std::fprintf(stderr, "cesmtool: interrupted by signal %d (output files are "
                           "complete: writes are atomic)\n",
                   util::interrupt_signal());
      return util::interrupt_exit_code();
    }
    return rc;
  } catch (const cesm::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
