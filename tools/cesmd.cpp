// cesmd — the verification-as-a-service daemon.
//
// Stands the §4 methodology up as a long-lived server: clients submit
// (ensemble spec, variable, suite options) requests over the cesm::serve
// wire protocol and receive the exact bytes an in-process run_suite
// would serialize. See docs/serving.md for the protocol, coalescing and
// admission-control semantics; bench/bench_serving.cpp is the reference
// client.
//
// Usage:
//   cesmd --socket=/tmp/cesmd.sock [--max-inflight=N]
//   cesmd --port=0 [--max-inflight=N]     (0 = ephemeral; bound port is
//                                          printed on stdout)
//
// Lifecycle: on SIGINT/SIGTERM the daemon drains — stops accepting,
// finishes every in-flight request and its response write, then exits
// 128+signum. A second signal kills it the conventional way.

#include <poll.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.h"
#include "util/error.h"
#include "util/signals.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket=PATH | --port=N) [--max-inflight=N]\n"
               "  --socket=PATH      listen on a unix-domain socket\n"
               "  --port=N           listen on loopback TCP (0 = ephemeral)\n"
               "  --max-inflight=N   concurrent computations admitted (default 8)\n",
               argv0);
}

bool parse_u64_arg(const char* text, unsigned long long* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || std::strchr(text, '-') != nullptr) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cesm::serve::ServerConfig config;
  bool have_transport = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      config.unix_path = arg.substr(9);
      have_transport = !config.unix_path.empty();
    } else if (arg.rfind("--port=", 0) == 0) {
      unsigned long long port = 0;
      if (!parse_u64_arg(arg.c_str() + 7, &port) || port > 65535) {
        std::fprintf(stderr, "cesmd: bad --port value: %s\n", arg.c_str() + 7);
        return 2;
      }
      config.tcp_port = static_cast<std::uint16_t>(port);
      have_transport = true;
    } else if (arg.rfind("--max-inflight=", 0) == 0) {
      unsigned long long n = 0;
      if (!parse_u64_arg(arg.c_str() + 15, &n)) {
        std::fprintf(stderr, "cesmd: bad --max-inflight value: %s\n", arg.c_str() + 15);
        return 2;
      }
      config.max_inflight = static_cast<std::size_t>(n);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "cesmd: unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (!have_transport) {
    usage(argv[0]);
    return 2;
  }

  cesm::util::install_signal_drain();

  try {
    cesm::serve::Server server(config);
    server.start();
    if (!config.unix_path.empty()) {
      std::printf("cesmd listening on unix:%s\n", config.unix_path.c_str());
    } else {
      // The bench/CI parse this line for the ephemeral port.
      std::printf("cesmd listening on tcp:127.0.0.1:%u\n",
                  static_cast<unsigned>(server.port()));
    }
    std::fflush(stdout);

    // Park until a drained signal arrives; the self-pipe makes a signal
    // delivered to any thread observable here.
    pollfd pfd = {cesm::util::interrupt_fd(), POLLIN, 0};
    while (!cesm::util::interrupt_requested()) {
      ::poll(&pfd, 1, 1000);
    }
    std::fprintf(stderr, "cesmd: draining on signal %d\n",
                 cesm::util::interrupt_signal());
    server.stop();
    return cesm::util::interrupt_exit_code();
  } catch (const cesm::Error& e) {
    std::fprintf(stderr, "cesmd: %s\n", e.what());
    return 1;
  }
}
