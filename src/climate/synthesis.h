#pragma once
// Field synthesis: latent Lorenz-96 weather -> gridded CAM-like fields.
//
// Each variable owns a fixed spatial basis (low-wavenumber harmonics with
// variable-specific spectral weights controlling smoothness), a fixed
// climatological pattern, and a coupling of its anomaly coefficients to
// the member's latent time-means. Members therefore differ exactly the way
// PVT ensemble members differ: same climate, chaotic weather.
//
// Pointwise ensemble statistics are analytically well-behaved: the
// ensemble variance at column x is  sum_j w_j^2 phi_j(x)^2 + noise^2 > 0,
// so Z-scores (paper eq. 6) are always defined.

#include <span>

#include "climate/field.h"
#include "climate/grid.h"
#include "climate/lorenz.h"
#include "climate/variables.h"

namespace cesm::climate {

class FieldSynthesizer {
 public:
  /// Number of anomaly basis modes per variable.
  static constexpr std::size_t kModes = 24;

  FieldSynthesizer(const Grid& grid, const VariableSpec& spec, const Lorenz96& latent);

  /// Synthesize the variable for one member given that member's latent
  /// time-means (from Lorenz96::member_time_means).
  [[nodiscard]] Field synthesize(std::span<const double> member_means,
                                 std::uint32_t member) const;

  /// Synthesize elements [elem_lo, elem_hi) of the row-major field into
  /// `out` (out.size() == elem_hi - elem_lo). Bit-identical to the same
  /// slice of synthesize() for ANY range: each level's noise stream is
  /// re-seeded per (member, level) and consumed from the level start (draws
  /// before elem_lo are burned), so the out-of-core pipeline can synthesize
  /// chunk-by-chunk without ever materializing the full member.
  void synthesize_range(std::span<const double> member_means, std::uint32_t member,
                        std::size_t elem_lo, std::size_t elem_hi,
                        std::span<float> out) const;

  /// Total elements of this variable's field (nlev * ncol; nlev = 1 for 2-D).
  [[nodiscard]] std::size_t element_count() const;

  [[nodiscard]] const VariableSpec& spec() const { return spec_; }

  /// The land mask shared by all fill-valued variables (1 = land = fill).
  static std::vector<std::uint8_t> land_mask(const Grid& grid);

 private:
  /// Standardized latent anomaly coefficients for a member.
  [[nodiscard]] std::vector<double> standardized(std::span<const double> means) const;

  /// Map the standardized signal g to physical units at level fraction lf.
  [[nodiscard]] float transform(double g, double level_fraction) const;

  const Grid& grid_;
  VariableSpec spec_;
  const Lorenz96::Climatology& clim_;
  std::vector<std::size_t> latent_idx_;          // kModes indices into latent state
  std::vector<double> mode_weight_;              // kModes spectral weights
  std::vector<double> basis_;                    // kModes x ncol spatial basis
  std::vector<double> pattern_coeff_;            // nlev x kModes fixed climatology
  std::vector<double> mix_angle_rate_;           // kModes vertical decorrelation rates
  std::vector<std::uint8_t> mask_;               // land mask when has_fill
};

}  // namespace cesm::climate
