#include "climate/grid.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace cesm::climate {

Grid::Grid(const GridSpec& spec) : spec_(spec) {
  CESM_REQUIRE(spec.nlat >= 4 && spec.nlon >= 4 && spec.nlev >= 1);
  lat_.resize(spec.nlat);
  lon_.resize(spec.nlon);
  constexpr double pi = std::numbers::pi;
  // Cell-centered latitudes avoid singular pole points.
  for (std::size_t j = 0; j < spec.nlat; ++j) {
    lat_[j] = -pi / 2.0 + pi * (static_cast<double>(j) + 0.5) / static_cast<double>(spec.nlat);
  }
  for (std::size_t i = 0; i < spec.nlon; ++i) {
    lon_[i] = 2.0 * pi * static_cast<double>(i) / static_cast<double>(spec.nlon);
  }
  weights_.resize(columns());
  double total = 0.0;
  for (std::size_t c = 0; c < columns(); ++c) {
    weights_[c] = std::cos(lat_[c / spec.nlon]);
    total += weights_[c];
  }
  for (double& w : weights_) w /= total;
}

double Grid::level_fraction(std::size_t l) const {
  CESM_REQUIRE(l < spec_.nlev);
  if (spec_.nlev == 1) return 0.5;
  return static_cast<double>(l) / static_cast<double>(spec_.nlev - 1);
}

}  // namespace cesm::climate
