#include "climate/variables.h"

#include <cmath>
#include <cstdio>

#include "util/error.h"
#include "util/rng.h"

namespace cesm::climate {

namespace {

VariableSpec make(std::string name, std::string units, std::string desc, bool is_3d,
                  TransformKind t) {
  VariableSpec v;
  v.name = std::move(name);
  v.units = std::move(units);
  v.description = std::move(desc);
  v.is_3d = is_3d;
  v.transform = t;
  return v;
}

/// Hand-crafted CAM variables. The four spotlight variables target the
/// magnitudes of paper Table 2:
///   U     [-25.6, 54.5]   mean 6.39   sd 12.2
///   FSDSC [124, 326]      mean 243    sd 48.3
///   Z3    [41.2, 37700]   mean 11200  sd 10100
///   CCN3  [3.4e-5, 1240]  mean 26.6   sd 55.7
std::vector<VariableSpec> named_variables() {
  std::vector<VariableSpec> cat;

  {  // Zonal wind: smooth, signed, level-dependent westerly maximum.
    VariableSpec v = make("U", "m/s", "zonal wind", true, TransformKind::kLinear);
    v.center = 2.0;
    v.scale = 7.5;
    v.vertical_gradient = 9.0;  // stronger aloft
    v.vertical_scale = 0.7;
    v.smoothness = 2.2;
    v.noise_frac = 0.015;
    cat.push_back(v);
  }
  {  // Clear-sky downwelling solar flux at surface (2-D, positive, smooth).
    VariableSpec v = make("FSDSC", "W/m2", "clearsky downwelling solar flux at surface",
                          false, TransformKind::kPositive);
    v.center = 243.0;
    v.scale = 26.0;
    v.smoothness = 2.5;
    v.noise_frac = 0.012;
    cat.push_back(v);
  }
  {  // Geopotential height: enormous vertical gradient dominates.
    VariableSpec v = make("Z3", "m", "geopotential height above sea level", true,
                          TransformKind::kLinear);
    v.center = 160.0;
    v.scale = 40.0;
    v.vertical_gradient = 37500.0;
    v.vertical_scale = 2.5;  // more spread aloft
    v.smoothness = 2.8;
    v.noise_frac = 0.006;
    cat.push_back(v);
  }
  {  // Cloud condensation nuclei concentration: log-normal, huge range.
    VariableSpec v = make("CCN3", "#/cm3", "CCN concentration at S=0.1%", true,
                          TransformKind::kLogNormal);
    // Paper Table 2: CCN3 spans [3.37e-5, 1.24e3] — nearly eight decades.
    // That huge range is precisely what defeats GRIB2's absolute
    // quantization in §5.3.
    v.log_mu = 0.3;
    v.log_sigma = 2.6;
    v.smoothness = 1.2;
    v.noise_frac = 0.06;
    cat.push_back(v);
  }
  {  // Sulfur dioxide: the paper's O(1e-8) magnitude example (§3.1).
    VariableSpec v = make("SO2", "kg/kg", "sulfur dioxide concentration", true,
                          TransformKind::kLogNormal);
    v.log_mu = -23.0;
    v.log_sigma = 1.8;
    v.smoothness = 1.1;
    v.noise_frac = 0.09;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("V", "m/s", "meridional wind", true, TransformKind::kLinear);
    v.center = 0.0;
    v.scale = 6.0;
    v.vertical_scale = 1.4;
    v.smoothness = 2.0;
    v.noise_frac = 0.02;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("T", "K", "temperature", true, TransformKind::kLinear);
    v.center = 212.0;
    v.scale = 9.0;
    v.vertical_gradient = 72.0;  // warm at the surface
    v.smoothness = 2.6;
    v.noise_frac = 0.01;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("Q", "kg/kg", "specific humidity", true, TransformKind::kLogNormal);
    v.log_mu = -7.5;
    v.log_sigma = 1.6;
    v.vertical_gradient = 0.0;
    v.smoothness = 1.8;
    v.noise_frac = 0.04;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("OMEGA", "Pa/s", "vertical pressure velocity", true,
                          TransformKind::kLinear);
    v.center = 0.0;
    v.scale = 0.12;
    v.smoothness = 1.0;
    v.noise_frac = 0.1;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("RELHUM", "percent", "relative humidity", true,
                          TransformKind::kBounded01);
    v.bound_lo = 0.0;
    v.bound_hi = 100.0;
    v.smoothness = 1.6;
    v.noise_frac = 0.06;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("CLOUD", "fraction", "cloud fraction", true,
                          TransformKind::kBounded01);
    v.smoothness = 1.3;
    v.noise_frac = 0.09;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("PS", "Pa", "surface pressure", false, TransformKind::kLinear);
    v.center = 98000.0;
    v.scale = 2500.0;
    v.smoothness = 2.7;
    v.noise_frac = 0.01;
    cat.push_back(v);
  }
  {  // Surface temperature with ocean-only validity (fill over land),
     // exercising the special-value path end to end.
    VariableSpec v = make("SST", "K", "sea surface temperature (fill over land)", false,
                          TransformKind::kLinear);
    v.center = 291.0;
    v.scale = 6.5;
    v.smoothness = 2.4;
    v.noise_frac = 0.015;
    v.has_fill = true;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("TS", "K", "surface (skin) temperature", false,
                          TransformKind::kLinear);
    v.center = 287.0;
    v.scale = 12.0;
    v.smoothness = 2.3;
    v.noise_frac = 0.02;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("PRECT", "m/s", "total precipitation rate", false,
                          TransformKind::kLogNormal);
    v.log_mu = -18.7;
    v.log_sigma = 1.4;
    v.smoothness = 1.1;
    v.noise_frac = 0.1;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("FLNT", "W/m2", "net longwave flux at top of model", false,
                          TransformKind::kPositive);
    v.center = 235.0;
    v.scale = 32.0;
    v.smoothness = 2.2;
    v.noise_frac = 0.025;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("FSNT", "W/m2", "net solar flux at top of model", false,
                          TransformKind::kPositive);
    v.center = 240.0;
    v.scale = 60.0;
    v.smoothness = 2.4;
    v.noise_frac = 0.02;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("LHFLX", "W/m2", "surface latent heat flux", false,
                          TransformKind::kPositive);
    v.center = 88.0;
    v.scale = 40.0;
    v.smoothness = 1.7;
    v.noise_frac = 0.05;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("SHFLX", "W/m2", "surface sensible heat flux", false,
                          TransformKind::kLinear);
    v.center = 18.0;
    v.scale = 16.0;
    v.smoothness = 1.7;
    v.noise_frac = 0.05;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("TAUX", "N/m2", "zonal surface stress (fill over land)", false,
                          TransformKind::kLinear);
    v.center = 0.0;
    v.scale = 0.08;
    v.smoothness = 1.9;
    v.noise_frac = 0.04;
    v.has_fill = true;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("CLDLOW", "fraction", "low cloud fraction", false,
                          TransformKind::kBounded01);
    v.smoothness = 1.4;
    v.noise_frac = 0.08;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("CLDHGH", "fraction", "high cloud fraction", false,
                          TransformKind::kBounded01);
    v.smoothness = 1.4;
    v.noise_frac = 0.08;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("TMQ", "kg/m2", "total precipitable water", false,
                          TransformKind::kPositive);
    v.center = 24.0;
    v.scale = 12.0;
    v.smoothness = 2.0;
    v.noise_frac = 0.025;
    cat.push_back(v);
  }
  {
    VariableSpec v = make("PBLH", "m", "planetary boundary layer height", false,
                          TransformKind::kPositive);
    v.center = 800.0;
    v.scale = 350.0;
    v.smoothness = 1.3;
    v.noise_frac = 0.08;
    cat.push_back(v);
  }
  return cat;
}

}  // namespace

std::vector<VariableSpec> build_catalog() {
  constexpr std::size_t kTarget2d = 83;
  constexpr std::size_t kTarget3d = 87;

  std::vector<VariableSpec> cat = named_variables();
  std::size_t n2 = 0, n3 = 0;
  for (const VariableSpec& v : cat) (v.is_3d ? n3 : n2) += 1;
  CESM_REQUIRE(n2 <= kTarget2d && n3 <= kTarget3d);

  // Procedural remainder: tracer ("TRC*") and diagnostic ("DGN*") fields
  // cycling through transform kinds, magnitudes spanning ~18 decades, a
  // spread of smoothness and noise levels, and periodic fill-masked
  // entries — mirroring the diversity axes of §3.1.
  std::size_t idx = 0;
  auto synth = [&idx](bool is_3d) {
    VariableSpec v;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%03zu", is_3d ? "TRC" : "DGN", idx);
    v.name = buf;
    v.is_3d = is_3d;
    SplitMix64 h(hash_combine(0x7a11bull, idx * 2 + (is_3d ? 1 : 0)));
    const std::uint64_t r0 = h.next();
    switch (r0 % 4) {
      case 0: {
        v.transform = TransformKind::kLinear;
        // Magnitudes 1e-6 .. 1e6 by index.
        const double mag = std::pow(10.0, static_cast<double>(static_cast<int>(idx % 13)) - 6.0);
        v.center = mag * (1.0 + 0.3 * static_cast<double>(h.next() % 100) / 100.0);
        v.scale = 0.25 * v.center + 1e-30;
        v.units = "arbitrary";
        v.description = "synthetic linear diagnostic";
        break;
      }
      case 1: {
        v.transform = TransformKind::kPositive;
        const double mag = std::pow(10.0, static_cast<double>(static_cast<int>(idx % 9)) - 3.0);
        v.center = mag * 2.0;
        v.scale = 0.4 * v.center;
        v.units = "arbitrary";
        v.description = "synthetic positive flux";
        break;
      }
      case 2: {
        v.transform = TransformKind::kLogNormal;
        v.log_mu = -24.0 + 3.0 * static_cast<double>(static_cast<int>(idx % 13));
        v.log_sigma = 1.0 + 0.15 * static_cast<double>(static_cast<int>(idx % 8));
        v.units = "kg/kg";
        v.description = "synthetic trace species";
        break;
      }
      default: {
        v.transform = TransformKind::kBounded01;
        v.bound_lo = 0.0;
        v.bound_hi = (idx % 3 == 0) ? 100.0 : 1.0;
        v.units = v.bound_hi > 1.0 ? "percent" : "fraction";
        v.description = "synthetic bounded fraction";
        break;
      }
    }
    v.smoothness = 0.9 + 0.25 * static_cast<double>(static_cast<int>(idx % 9));
    v.noise_frac = 0.01 + 0.015 * static_cast<double>(static_cast<int>(idx % 7));
    if (is_3d) {
      v.vertical_scale = 0.6 + 0.2 * static_cast<double>(static_cast<int>(idx % 6));
      if (v.transform == TransformKind::kLinear && idx % 4 == 0) {
        v.vertical_gradient = 10.0 * v.scale;
      }
    }
    // Every 12th synthetic 2-D variable is ocean-masked.
    if (!is_3d && idx % 12 == 5) v.has_fill = true;
    ++idx;
    return v;
  };

  while (n2 < kTarget2d) {
    cat.push_back(synth(false));
    ++n2;
  }
  while (n3 < kTarget3d) {
    cat.push_back(synth(true));
    ++n3;
  }

  // Assign deterministic stream ids.
  for (std::size_t i = 0; i < cat.size(); ++i) {
    cat[i].stream = hash_combine(0xca7a106ull, i);
  }
  CESM_REQUIRE(cat.size() == kTarget2d + kTarget3d);
  return cat;
}

const VariableSpec& find_variable(const std::vector<VariableSpec>& catalog,
                                  const std::string& name) {
  for (const VariableSpec& v : catalog) {
    if (v.name == name) return v;
  }
  throw InvalidArgument("unknown variable: " + name);
}

}  // namespace cesm::climate
