#pragma once
// History-file assembly: ensemble member fields -> an ncio::Dataset laid
// out like a CAM history file (dims "ncol" and "lev", per-variable units /
// description / fill attributes, optional NetCDF-4-style deflate storage).

#include <string>
#include <vector>

#include "climate/ensemble.h"
#include "ncio/dataset.h"

namespace cesm::climate {

/// Build a history file for `member` containing `variables` (all catalog
/// variables when empty). `storage` selects raw or deflate (the lossless
/// configuration whose CR the paper reports).
ncio::Dataset make_history(const EnsembleGenerator& ens, std::uint32_t member,
                           const std::vector<std::string>& variables = {},
                           ncio::Storage storage = ncio::Storage::kRaw);

/// Extract one variable from a history dataset as a Field.
Field field_from_history(const ncio::Dataset& ds, const std::string& name);

}  // namespace cesm::climate
