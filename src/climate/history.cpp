#include "climate/history.h"

#include "util/error.h"

namespace cesm::climate {

ncio::Dataset make_history(const EnsembleGenerator& ens, std::uint32_t member,
                           const std::vector<std::string>& variables,
                           ncio::Storage storage) {
  ncio::Dataset ds;
  ds.attrs()["title"] = std::string("synthetic CAM history file");
  ds.attrs()["member"] = static_cast<std::int64_t>(member);
  ds.attrs()["source"] = std::string("cesmcomp ensemble generator");

  const std::uint32_t ncol_dim =
      ds.add_dimension("ncol", ens.grid().columns());
  const std::uint32_t lev_dim = ds.add_dimension("lev", ens.grid().levels());

  const auto add_one = [&](const VariableSpec& spec) {
    Field f = ens.field(spec, member);
    ncio::Variable v;
    v.name = spec.name;
    v.dtype = ncio::DataType::kFloat32;
    v.storage = storage;
    if (spec.is_3d) {
      v.dim_ids = {lev_dim, ncol_dim};
    } else {
      v.dim_ids = {ncol_dim};
    }
    if (f.fill) v.fill_value = static_cast<double>(*f.fill);
    v.attrs["units"] = spec.units;
    v.attrs["long_name"] = spec.description;
    v.f32 = std::move(f.data);
    ds.add_variable(std::move(v));
  };

  if (variables.empty()) {
    for (const VariableSpec& spec : ens.catalog()) add_one(spec);
  } else {
    for (const std::string& name : variables) add_one(ens.variable(name));
  }
  return ds;
}

Field field_from_history(const ncio::Dataset& ds, const std::string& name) {
  const ncio::Variable* v = ds.find_variable(name);
  if (v == nullptr) throw InvalidArgument("variable not in history file: " + name);
  CESM_REQUIRE(v->dtype == ncio::DataType::kFloat32);

  Field f;
  f.name = v->name;
  f.data = v->f32;
  if (v->fill_value) f.fill = static_cast<float>(*v->fill_value);
  std::vector<std::size_t> dims;
  for (std::uint32_t id : v->dim_ids) dims.push_back(ds.dimension(id).length);
  f.shape = comp::Shape{dims};
  return f;
}

}  // namespace cesm::climate
