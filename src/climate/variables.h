#pragma once
// The CAM-like variable catalog.
//
// §5.1: the paper's CAM history files hold 170 variables (83 two- and 87
// three-dimensional) whose diversity — magnitudes from O(1e-8) (SO2) to
// O(1e3+) (CCN3), smooth winds next to noisy concentrations, special
// values such as the 1e35 fill — is the entire reason the methodology
// treats variables individually. This catalog reproduces that diversity:
// a hand-crafted set of named CAM variables (including the four spotlight
// variables U, FSDSC, Z3, CCN3 with Table 2's magnitude targets) plus
// procedurally varied tracer/diagnostic entries to reach the full 83+87
// census.

#include <cstdint>
#include <string>
#include <vector>

namespace cesm::climate {

/// How the standardized latent field is mapped to physical values.
enum class TransformKind : std::uint8_t {
  kLinear,     ///< y = center + scale * f              (winds, temperatures)
  kPositive,   ///< linear, clamped at zero             (fluxes, precipitation)
  kLogNormal,  ///< y = exp(log_mu + log_sigma * f)     (trace species, CCN)
  kBounded01,  ///< y = lo + (hi-lo) * logistic(f)      (cloud fraction, RH)
};

struct VariableSpec {
  std::string name;
  std::string units;
  std::string description;
  bool is_3d = false;
  TransformKind transform = TransformKind::kLinear;

  // Linear / positive parameters.
  double center = 0.0;
  double scale = 1.0;
  // Log-normal parameters.
  double log_mu = 0.0;
  double log_sigma = 1.0;
  // Bounded parameters.
  double bound_lo = 0.0;
  double bound_hi = 1.0;

  /// Spectral slope of the spatial basis weights; larger = smoother field.
  double smoothness = 1.5;
  /// Fraction of the standardized signal that is white small-scale noise.
  double noise_frac = 0.15;
  /// Member-to-member (interannual) spread as a fraction of the spatial
  /// anomaly scale. Real CAM ensembles vary far less between members than
  /// across the globe; this ratio is what makes the RMSZ/E_nmax tests
  /// discriminating (quantization error is measured against it).
  double anomaly_frac = 0.25;

  // 3-D vertical structure: center(level) = center + vertical_gradient *
  // (1 - level_fraction); scale(level) = scale * (1 + (vertical_scale-1) *
  // level_fraction).
  double vertical_gradient = 0.0;
  double vertical_scale = 1.0;

  /// Ocean/land-masked variables carry the CESM fill value at masked
  /// columns (the paper's 1e35 example, §3.1).
  bool has_fill = false;

  /// Deterministic stream id for basis/noise seeding.
  std::uint64_t stream = 0;
};

/// CESM's canonical fill value for undefined points.
inline constexpr float kFillValue = 1.0e35f;

/// Build the full 170-variable catalog (83 2-D + 87 3-D). Deterministic.
std::vector<VariableSpec> build_catalog();

/// Look up a variable by name in a catalog; throws InvalidArgument if absent.
const VariableSpec& find_variable(const std::vector<VariableSpec>& catalog,
                                  const std::string& name);

/// The paper's four spotlight variables, in table order.
inline const char* const kSpotlightVariables[4] = {"U", "FSDSC", "Z3", "CCN3"};

}  // namespace cesm::climate
