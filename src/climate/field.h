#pragma once
// A single variable's data for one ensemble member / history file.

#include <optional>
#include <string>
#include <vector>

#include "compress/codec.h"

namespace cesm::climate {

struct Field {
  std::string name;
  comp::Shape shape;         ///< {ncol} for 2-D, {nlev, ncol} for 3-D
  std::vector<float> data;   ///< row-major, level-major for 3-D
  std::optional<float> fill; ///< special value marking undefined points

  [[nodiscard]] std::size_t size() const { return data.size(); }

  /// 1 where the point is valid, 0 where it equals the fill value.
  /// Empty when the field has no fill value (all points valid).
  [[nodiscard]] std::vector<std::uint8_t> valid_mask() const {
    if (!fill) return {};
    std::vector<std::uint8_t> mask(data.size(), 1);
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data[i] == *fill) mask[i] = 0;
    }
    return mask;
  }
};

}  // namespace cesm::climate
