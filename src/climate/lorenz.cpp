#include "climate/lorenz.h"

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace cesm::climate {

Lorenz96::Lorenz96(const Lorenz96Spec& spec) : spec_(spec) {
  CESM_REQUIRE(spec.k >= 8);
  CESM_REQUIRE(spec.dt > 0.0 && spec.dt <= 0.2);
  CESM_REQUIRE(spec.average_steps > 0);

  // Base initial condition: the fixed point X = F with a deterministic kick
  // to leave it, then a long settle onto the attractor.
  base_ic_.assign(spec_.k, spec_.forcing);
  NormalSampler kick(hash_combine(spec_.seed, 0x1c0ffeeull));
  for (double& x : base_ic_) x += 0.01 * kick.next();
  {
    std::vector<double> state = base_ic_;
    std::vector<double> k1(spec_.k), k2(spec_.k), k3(spec_.k), k4(spec_.k), tmp(spec_.k);
    for (std::size_t s = 0; s < 2000; ++s) {
      // One RK4 step (inlined; integrate_means repeats this pattern).
      tendency(state, spec_.forcing, k1);
      for (std::size_t i = 0; i < spec_.k; ++i) tmp[i] = state[i] + 0.5 * spec_.dt * k1[i];
      tendency(tmp, spec_.forcing, k2);
      for (std::size_t i = 0; i < spec_.k; ++i) tmp[i] = state[i] + 0.5 * spec_.dt * k2[i];
      tendency(tmp, spec_.forcing, k3);
      for (std::size_t i = 0; i < spec_.k; ++i) tmp[i] = state[i] + spec_.dt * k3[i];
      tendency(tmp, spec_.forcing, k4);
      for (std::size_t i = 0; i < spec_.k; ++i) {
        state[i] += spec_.dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
      }
    }
    base_ic_ = state;
  }

  // Climatology from a sequence of independent control windows: integrate
  // 64 consecutive "years" from the settled state and pool their means.
  constexpr std::size_t kControlYears = 64;
  std::vector<std::vector<double>> control;
  control.reserve(kControlYears);
  {
    std::vector<double> state = base_ic_;
    for (std::size_t y = 0; y < kControlYears; ++y) {
      // Perturb microscopically so successive years decorrelate fully even
      // if average windows were short.
      NormalSampler bump(hash_combine(spec_.seed, 0xc0ffee00ull + y));
      for (double& x : state) x += 1e-10 * bump.next();
      control.push_back(integrate_means(state));
      // Continue from where the averaging window left the trajectory: we
      // re-integrate from the same state; advance deterministically by one
      // window using integrate_means' side-effect-free contract, so just
      // advance the state with a fresh integration below.
      std::vector<double> k1(spec_.k), k2(spec_.k), k3(spec_.k), k4(spec_.k), tmp(spec_.k);
      for (std::size_t s = 0; s < spec_.average_steps; ++s) {
        tendency(state, spec_.forcing, k1);
        for (std::size_t i = 0; i < spec_.k; ++i) tmp[i] = state[i] + 0.5 * spec_.dt * k1[i];
        tendency(tmp, spec_.forcing, k2);
        for (std::size_t i = 0; i < spec_.k; ++i) tmp[i] = state[i] + 0.5 * spec_.dt * k2[i];
        tendency(tmp, spec_.forcing, k3);
        for (std::size_t i = 0; i < spec_.k; ++i) tmp[i] = state[i] + spec_.dt * k3[i];
        tendency(tmp, spec_.forcing, k4);
        for (std::size_t i = 0; i < spec_.k; ++i) {
          state[i] += spec_.dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
      }
    }
  }
  climatology_.mean.assign(spec_.k, 0.0);
  climatology_.stddev.assign(spec_.k, 0.0);
  for (const auto& means : control) {
    for (std::size_t i = 0; i < spec_.k; ++i) climatology_.mean[i] += means[i];
  }
  for (double& m : climatology_.mean) m /= static_cast<double>(kControlYears);
  for (const auto& means : control) {
    for (std::size_t i = 0; i < spec_.k; ++i) {
      const double d = means[i] - climatology_.mean[i];
      climatology_.stddev[i] += d * d;
    }
  }
  for (double& s : climatology_.stddev) {
    s = std::sqrt(s / static_cast<double>(kControlYears - 1));
    if (s <= 0.0) s = 1.0;  // defensive; never happens in the chaotic regime
  }
}

void Lorenz96::tendency(const std::vector<double>& x, double forcing,
                        std::vector<double>& dxdt) {
  const std::size_t k = x.size();
  for (std::size_t i = 0; i < k; ++i) {
    const double xm1 = x[(i + k - 1) % k];
    const double xm2 = x[(i + k - 2) % k];
    const double xp1 = x[(i + 1) % k];
    dxdt[i] = -xm1 * (xm2 - xp1) - x[i] + forcing;
  }
}

std::vector<double> Lorenz96::integrate_means(std::vector<double> state) const {
  std::vector<double> k1(spec_.k), k2(spec_.k), k3(spec_.k), k4(spec_.k), tmp(spec_.k);
  std::vector<double> mean(spec_.k, 0.0);
  const std::size_t total = spec_.spinup_steps + spec_.average_steps;
  for (std::size_t s = 0; s < total; ++s) {
    tendency(state, spec_.forcing, k1);
    for (std::size_t i = 0; i < spec_.k; ++i) tmp[i] = state[i] + 0.5 * spec_.dt * k1[i];
    tendency(tmp, spec_.forcing, k2);
    for (std::size_t i = 0; i < spec_.k; ++i) tmp[i] = state[i] + 0.5 * spec_.dt * k2[i];
    tendency(tmp, spec_.forcing, k3);
    for (std::size_t i = 0; i < spec_.k; ++i) tmp[i] = state[i] + spec_.dt * k3[i];
    tendency(tmp, spec_.forcing, k4);
    for (std::size_t i = 0; i < spec_.k; ++i) {
      state[i] += spec_.dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    if (s >= spec_.spinup_steps) {
      for (std::size_t i = 0; i < spec_.k; ++i) mean[i] += state[i];
    }
  }
  for (double& m : mean) m /= static_cast<double>(spec_.average_steps);
  return mean;
}

std::vector<double> Lorenz96::member_time_means(std::uint32_t member) const {
  std::vector<double> state = base_ic_;
  if (member > 0) {
    // O(1e-14) perturbation, the magnitude the CESM-PVT applies to the
    // initial atmospheric temperature (§4.3).
    NormalSampler perturb(hash_combine(spec_.seed, 0xabcd0000ull + member));
    for (double& x : state) x += 1e-14 * perturb.next();
  }
  return integrate_means(state);
}

}  // namespace cesm::climate
