#include "climate/ensemble.h"

#include "util/scheduler.h"
#include "util/trace.h"

namespace cesm::climate {

EnsembleGenerator::EnsembleGenerator(const EnsembleSpec& spec)
    : spec_(spec), grid_(spec.grid), latent_(spec.latent), catalog_(build_catalog()) {
  base_means_.resize(spec_.members);
  parallel_for(0, spec_.members, [this](std::size_t m) {
    base_means_[m] = latent_.member_time_means(static_cast<std::uint32_t>(m));
  });
}

const FieldSynthesizer& EnsembleGenerator::synthesizer(const VariableSpec& var) const {
  std::lock_guard lock(mu_);
  auto it = synths_.find(var.name);
  if (it == synths_.end()) {
    it = synths_
             .emplace(var.name,
                      std::make_unique<FieldSynthesizer>(grid_, var, latent_))
             .first;
  }
  return *it->second;
}

const std::vector<double>& EnsembleGenerator::member_means(std::uint32_t member) const {
  if (member < base_means_.size()) return base_means_[member];
  std::lock_guard lock(mu_);
  auto it = extra_means_.find(member);
  if (it == extra_means_.end()) {
    it = extra_means_.emplace(member, latent_.member_time_means(member)).first;
  }
  return it->second;
}

Field EnsembleGenerator::field(const VariableSpec& var, std::uint32_t member) const {
  const FieldSynthesizer& synth = synthesizer(var);
  return synth.synthesize(member_means(member), member);
}

Field EnsembleGenerator::field(const std::string& name, std::uint32_t member) const {
  return field(variable(name), member);
}

void EnsembleGenerator::field_range(const VariableSpec& var, std::uint32_t member,
                                    std::size_t elem_lo, std::size_t elem_hi,
                                    std::span<float> out) const {
  const FieldSynthesizer& synth = synthesizer(var);
  synth.synthesize_range(member_means(member), member, elem_lo, elem_hi, out);
}

std::size_t EnsembleGenerator::field_elems(const VariableSpec& var) const {
  return synthesizer(var).element_count();
}

std::vector<Field> EnsembleGenerator::ensemble_fields(const VariableSpec& var) const {
  trace::Span span("ensemble.synthesize");
  (void)synthesizer(var);  // construct once before fanning out
  std::vector<Field> fields(spec_.members);
  parallel_for(0, spec_.members, [&](std::size_t m) {
    fields[m] = field(var, static_cast<std::uint32_t>(m));
  });
  trace::counter_add("ensemble.fields", fields.size());
  trace::counter_add("ensemble.elements",
                     fields.empty() ? 0 : fields.size() * fields.front().size());
  return fields;
}

}  // namespace cesm::climate
