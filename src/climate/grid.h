#pragma once
// Model grid description.
//
// The paper's CAM runs use the ne30 spectral-element grid: 48,602 horizontal
// columns and 30 vertical levels (§5.1). Our synthetic fields are generated
// on a regular lat-lon grid with a comparable column count; experiments can
// run either the paper-scale grid or a reduced grid that keeps the
// 101-member x 170-variable ensemble tractable on one machine (DESIGN.md §5
// explains why this preserves every statistical property the tests use).

#include <cstddef>
#include <vector>

namespace cesm::climate {

struct GridSpec {
  std::size_t nlat = 16;
  std::size_t nlon = 216;
  std::size_t nlev = 8;

  [[nodiscard]] std::size_t columns() const { return nlat * nlon; }

  /// Reduced grid for full-ensemble experiments: 3,456 columns x 8 levels.
  /// Zonally fine (1.7 degrees) so adjacent-column smoothness — which
  /// every codec's prediction/filter stage exploits — matches the paper's
  /// 1-degree data much better than a square reduction would.
  static GridSpec reduced() { return GridSpec{16, 216, 8}; }

  /// Paper-scale grid: 48,672 columns x 30 levels (ne30's 48,602 columns
  /// rounded to the nearest lat-lon factorization).
  static GridSpec paper() { return GridSpec{156, 312, 30}; }
};

/// Concrete grid with coordinates and quadrature (area) weights.
class Grid {
 public:
  explicit Grid(const GridSpec& spec);

  [[nodiscard]] const GridSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t columns() const { return spec_.columns(); }
  [[nodiscard]] std::size_t levels() const { return spec_.nlev; }

  /// Latitude (radians, -pi/2..pi/2) of column `c`.
  [[nodiscard]] double latitude(std::size_t c) const { return lat_[c / spec_.nlon]; }
  /// Longitude (radians, 0..2pi) of column `c`.
  [[nodiscard]] double longitude(std::size_t c) const { return lon_[c % spec_.nlon]; }

  /// Normalized area weights (sum to 1) for global means.
  [[nodiscard]] const std::vector<double>& area_weights() const { return weights_; }

  /// Fractional height of level l in [0, 1], 0 = model top.
  [[nodiscard]] double level_fraction(std::size_t l) const;

 private:
  GridSpec spec_;
  std::vector<double> lat_;      // per latitude row
  std::vector<double> lon_;      // per longitude column
  std::vector<double> weights_;  // per column, normalized
};

}  // namespace cesm::climate
