#pragma once
// Chaotic latent dynamics: the Lorenz-96 system.
//
// The CESM-PVT ensemble (§4.3) relies on one physical fact: an O(1e-14)
// perturbation of the initial state produces trajectories that diverge
// completely within the run yet share all statistical properties. Lorenz-96
// is the standard minimal atmosphere surrogate with exactly this behaviour
// (positive Lyapunov exponent ~ 1.7/t.u. at F = 8), so we use its
// time-averaged state ("annual means") as the latent weather driving the
// synthetic CAM fields.

#include <cstdint>
#include <vector>

namespace cesm::climate {

struct Lorenz96Spec {
  std::size_t k = 128;       ///< state dimension
  double forcing = 8.0;      ///< F; 8 is the classic chaotic regime
  double dt = 0.05;          ///< RK4 step
  std::size_t spinup_steps = 600;   ///< discarded transient
  std::size_t average_steps = 1600; ///< window for the "annual mean"
  std::uint64_t seed = 0x5eedc11ae5ull;  ///< base initial-condition seed
};

/// Integrates Lorenz-96 and reports time averages of the state.
class Lorenz96 {
 public:
  explicit Lorenz96(const Lorenz96Spec& spec);

  /// Time-averaged state for ensemble member `member`: the shared base
  /// initial condition plus an O(1e-14) Gaussian perturbation drawn from a
  /// member-specific stream (mirroring the PVT's temperature perturbation).
  /// member 0 uses the unperturbed base IC.
  [[nodiscard]] std::vector<double> member_time_means(std::uint32_t member) const;

  /// Climatological mean and standard deviation of each time-mean
  /// component, estimated once from a long control integration; used to
  /// standardize latent features independently of any particular ensemble.
  struct Climatology {
    std::vector<double> mean;
    std::vector<double> stddev;
  };
  [[nodiscard]] const Climatology& climatology() const { return climatology_; }

  [[nodiscard]] const Lorenz96Spec& spec() const { return spec_; }

 private:
  /// d/dt of the state (cyclic advection + damping + forcing).
  static void tendency(const std::vector<double>& x, double forcing,
                       std::vector<double>& dxdt);

  /// RK4 integration from `state` for `steps`, accumulating the running
  /// time mean over the final `average` steps.
  std::vector<double> integrate_means(std::vector<double> state) const;

  Lorenz96Spec spec_;
  std::vector<double> base_ic_;
  Climatology climatology_;
};

}  // namespace cesm::climate
