#include "climate/synthesis.h"

#include <cmath>
#include <numbers>

#include "util/error.h"
#include "util/rng.h"

namespace cesm::climate {

namespace {

constexpr double kPatternAmplitude = 1.6;  // climatology vs ensemble spread

}  // namespace

std::vector<std::uint8_t> FieldSynthesizer::land_mask(const Grid& grid) {
  std::vector<std::uint8_t> mask(grid.columns(), 0);
  for (std::size_t c = 0; c < grid.columns(); ++c) {
    const double lat = grid.latitude(c);
    const double lon = grid.longitude(c);
    const double continents = std::sin(2.0 * lat + 0.3) * std::cos(2.0 * lon + 1.1) +
                              0.5 * std::sin(3.0 * lon) * std::cos(3.0 * lat) +
                              0.3 * std::cos(lon - 0.7);
    mask[c] = continents > 0.35 ? 1 : 0;
  }
  return mask;
}

FieldSynthesizer::FieldSynthesizer(const Grid& grid, const VariableSpec& spec,
                                   const Lorenz96& latent)
    : grid_(grid), spec_(spec), clim_(latent.climatology()) {
  const std::size_t k_latent = clim_.mean.size();
  CESM_REQUIRE(k_latent >= kModes);

  SplitMix64 h(hash_combine(spec_.stream, 0xba515ull));

  latent_idx_.resize(kModes);
  for (std::size_t j = 0; j < kModes; ++j) {
    latent_idx_[j] = (h.next() + j * 5) % k_latent;
  }

  // Spectral weights: w_j ~ (1+j)^-smoothness, normalized so that
  // sum w^2 = 1 - noise^2 (the remaining variance is white noise).
  mode_weight_.resize(kModes);
  double sum2 = 0.0;
  for (std::size_t j = 0; j < kModes; ++j) {
    mode_weight_[j] = std::pow(1.0 + static_cast<double>(j), -spec_.smoothness);
    sum2 += mode_weight_[j] * mode_weight_[j];
  }
  const double target = 1.0 - spec_.noise_frac * spec_.noise_frac;
  CESM_REQUIRE(target > 0.0);
  const double norm = std::sqrt(target / sum2);
  for (double& w : mode_weight_) w *= norm;

  // Spatial basis: low-wavenumber spherical harmonics look-alikes with
  // deterministic phases; wavenumbers grow with mode index so the weight
  // spectrum directly controls smoothness.
  const std::size_t ncol = grid.columns();
  basis_.resize(kModes * ncol);
  constexpr double pi = std::numbers::pi;
  for (std::size_t j = 0; j < kModes; ++j) {
    const auto zonal = static_cast<double>(1 + j % 6 + j / 8);
    const auto merid = static_cast<double>(1 + j / 4);
    const double phase_lon = 2.0 * pi * static_cast<double>(h.next() % 1024) / 1024.0;
    const double phase_lat = 2.0 * pi * static_cast<double>(h.next() % 1024) / 1024.0;
    for (std::size_t c = 0; c < ncol; ++c) {
      const double lat = grid.latitude(c);
      const double lon = grid.longitude(c);
      // sqrt(2)-ish factors keep the spatial mean square near 1.
      basis_[j * ncol + c] = 2.0 * std::cos(zonal * lon + phase_lon) *
                             std::cos(merid * (lat + pi / 2.0) + phase_lat);
    }
  }

  // Fixed climatological pattern coefficients per level.
  const std::size_t nlev = spec_.is_3d ? grid.levels() : 1;
  pattern_coeff_.resize(nlev * kModes);
  NormalSampler pat(hash_combine(spec_.stream, 0xc11ae5ull));
  // Vertically coherent: level l pattern = base pattern slowly rotated.
  std::vector<double> base(kModes), alt(kModes);
  for (double& b : base) b = pat.next();
  for (double& a : alt) a = pat.next();
  for (std::size_t l = 0; l < nlev; ++l) {
    const double lf = nlev > 1 ? static_cast<double>(l) / static_cast<double>(nlev - 1) : 0.5;
    for (std::size_t j = 0; j < kModes; ++j) {
      const double theta = 0.8 * lf * (1.0 + static_cast<double>(j % 3));
      pattern_coeff_[l * kModes + j] =
          base[j] * std::cos(theta) + alt[j] * std::sin(theta);
    }
  }

  // Vertical decorrelation rates for the anomaly coefficients.
  mix_angle_rate_.resize(kModes);
  for (std::size_t j = 0; j < kModes; ++j) {
    mix_angle_rate_[j] = 0.5 + 1.5 * static_cast<double>(h.next() % 1024) / 1024.0;
  }

  if (spec_.has_fill) mask_ = land_mask(grid);
}

std::vector<double> FieldSynthesizer::standardized(std::span<const double> means) const {
  std::vector<double> z(kModes);
  for (std::size_t j = 0; j < kModes; ++j) {
    const std::size_t idx = latent_idx_[j];
    z[j] = (means[idx] - clim_.mean[idx]) / clim_.stddev[idx];
  }
  return z;
}

float FieldSynthesizer::transform(double g, double lf) const {
  switch (spec_.transform) {
    case TransformKind::kLinear: {
      const double center = spec_.center + spec_.vertical_gradient * (1.0 - lf);
      const double scale = spec_.scale * (1.0 + (spec_.vertical_scale - 1.0) * lf);
      return static_cast<float>(center + scale * g);
    }
    case TransformKind::kPositive: {
      const double center = spec_.center + spec_.vertical_gradient * (1.0 - lf);
      const double scale = spec_.scale * (1.0 + (spec_.vertical_scale - 1.0) * lf);
      return static_cast<float>(std::max(0.0, center + scale * g));
    }
    case TransformKind::kLogNormal: {
      return static_cast<float>(std::exp(spec_.log_mu + spec_.log_sigma * g));
    }
    case TransformKind::kBounded01: {
      const double s = 1.0 / (1.0 + std::exp(-1.2 * g));
      return static_cast<float>(spec_.bound_lo + (spec_.bound_hi - spec_.bound_lo) * s);
    }
  }
  throw InvalidArgument("unknown transform kind");
}

std::size_t FieldSynthesizer::element_count() const {
  return (spec_.is_3d ? grid_.levels() : 1) * grid_.columns();
}

Field FieldSynthesizer::synthesize(std::span<const double> member_means,
                                   std::uint32_t member) const {
  const std::size_t ncol = grid_.columns();
  const std::size_t nlev = spec_.is_3d ? grid_.levels() : 1;

  Field field;
  field.name = spec_.name;
  field.shape = spec_.is_3d ? comp::Shape::d2(nlev, ncol) : comp::Shape::d1(ncol);
  field.data.resize(nlev * ncol);
  if (spec_.has_fill) field.fill = kFillValue;

  synthesize_range(member_means, member, 0, field.data.size(), field.data);
  return field;
}

void FieldSynthesizer::synthesize_range(std::span<const double> member_means,
                                        std::uint32_t member, std::size_t elem_lo,
                                        std::size_t elem_hi,
                                        std::span<float> out) const {
  CESM_REQUIRE(member_means.size() == clim_.mean.size());
  const std::size_t ncol = grid_.columns();
  const std::size_t nlev = spec_.is_3d ? grid_.levels() : 1;
  CESM_REQUIRE(elem_lo <= elem_hi && elem_hi <= nlev * ncol);
  CESM_REQUIRE(out.size() == elem_hi - elem_lo);

  const std::vector<double> z = standardized(member_means);

  std::vector<double> coeff(kModes);
  for (std::size_t l = elem_lo / ncol; l * ncol < elem_hi; ++l) {
    const double lf = nlev > 1 ? static_cast<double>(l) / static_cast<double>(nlev - 1) : 0.5;
    // Level coefficients: climatological pattern + vertically rotated
    // member anomaly (pairs of latent features keep levels coherent but
    // not identical).
    for (std::size_t j = 0; j < kModes; ++j) {
      const double theta = mix_angle_rate_[j] * lf;
      const double zj = z[j] * std::cos(theta) + z[(j + 7) % kModes] * std::sin(theta);
      coeff[j] = kPatternAmplitude * mode_weight_[j] * pattern_coeff_[l * kModes + j] +
                 spec_.anomaly_frac * mode_weight_[j] * zj;
    }

    // Per-(member, variable, level) small-scale noise stream. The stream is
    // consumed column-sequentially from the level start, so a range that
    // enters the level mid-row burns the preceding draws — that keeps every
    // emitted value identical to the full-field synthesis regardless of how
    // the caller partitions the element range.
    NormalSampler noise(
        hash_combine(spec_.stream, hash_combine(0x4015eull + member, l)));

    const std::size_t c_lo = l * ncol < elem_lo ? elem_lo - l * ncol : 0;
    const std::size_t c_hi = std::min(ncol, elem_hi - l * ncol);
    for (std::size_t c = 0; c < c_lo; ++c) (void)noise.next();

    float* dst = out.data() + (l * ncol + c_lo - elem_lo);
    for (std::size_t c = c_lo; c < c_hi; ++c) {
      double g = 0.0;
      for (std::size_t j = 0; j < kModes; ++j) {
        g += coeff[j] * basis_[j * ncol + c];
      }
      g += spec_.anomaly_frac * spec_.noise_frac * noise.next();
      dst[c - c_lo] = transform(g, lf);
    }
    if (spec_.has_fill) {
      for (std::size_t c = c_lo; c < c_hi; ++c) {
        if (mask_[c]) dst[c - c_lo] = kFillValue;
      }
    }
  }
}

}  // namespace cesm::climate
