#pragma once
// Restart (checkpoint) file synthesis.
//
// Paper §1: CESM writes restart files in full 8-byte precision for
// continuing stopped simulations; the paper defers their (lossless)
// compression to future work. This module produces restart-like
// datasets — double-precision prognostic state with a genuine
// full-precision mantissa tail — so the lossless codecs (fpzip-64, FPC,
// ISOBAR, deflate) can be exercised on the deferred case.

#include "climate/ensemble.h"
#include "ncio/dataset.h"

namespace cesm::climate {

/// Build a restart dataset for `member`: the prognostic subset of the
/// catalog (one double-precision variable per named prognostic field)
/// plus the latent model state. `storage`/`codec_spec` select the
/// lossless treatment (Storage::kCodec with e.g. "fpzip-64"-equivalent
/// specs is validated by the caller; lossy codecs would corrupt a
/// checkpoint).
ncio::Dataset make_restart(const EnsembleGenerator& ens, std::uint32_t member,
                           ncio::Storage storage = ncio::Storage::kDeflate);

/// The prognostic variables a restart carries.
std::vector<std::string> restart_variables();

}  // namespace cesm::climate
