#include "climate/restart.h"

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace cesm::climate {

std::vector<std::string> restart_variables() {
  // The prognostic core of an atmosphere model: winds, temperature,
  // moisture, surface pressure.
  return {"U", "V", "T", "Q", "PS"};
}

ncio::Dataset make_restart(const EnsembleGenerator& ens, std::uint32_t member,
                           ncio::Storage storage) {
  CESM_REQUIRE(storage != ncio::Storage::kCodec);  // checkpoints must be exact

  ncio::Dataset ds;
  ds.attrs()["title"] = std::string("synthetic CESM restart file");
  ds.attrs()["member"] = static_cast<std::int64_t>(member);
  ds.attrs()["precision"] = std::string("float64");

  const std::uint32_t ncol_dim = ds.add_dimension("ncol", ens.grid().columns());
  const std::uint32_t lev_dim = ds.add_dimension("lev", ens.grid().levels());

  for (const std::string& name : restart_variables()) {
    const VariableSpec& spec = ens.variable(name);
    const Field f32_field = ens.field(spec, member);

    ncio::Variable v;
    v.name = name;
    v.dtype = ncio::DataType::kFloat64;
    v.storage = storage;
    v.dim_ids = spec.is_3d ? std::vector<std::uint32_t>{lev_dim, ncol_dim}
                           : std::vector<std::uint32_t>{ncol_dim};
    v.attrs["units"] = spec.units;

    // Widen to double and append a full-precision tail below float32's
    // resolution — restart state carries every bit the model computed,
    // unlike the truncated history files.
    v.f64.resize(f32_field.size());
    NormalSampler tail(hash_combine(spec.stream, 0x2e57a27ull + member));
    for (std::size_t i = 0; i < v.f64.size(); ++i) {
      const double base = static_cast<double>(f32_field.data[i]);
      const double ulp = std::max(std::fabs(base), 1e-30) * 1e-8;
      v.f64[i] = base + ulp * tail.next();
    }
    ds.add_variable(std::move(v));
  }

  // Latent model state (the actual integration state one would resume).
  const std::uint32_t k_dim = ds.add_dimension("latent_k", 128);
  ncio::Variable latent;
  latent.name = "latent_state";
  latent.dtype = ncio::DataType::kFloat64;
  latent.storage = storage;
  latent.dim_ids = {k_dim};
  // The time-means stand in for the state snapshot here.
  Lorenz96Spec lspec;
  const Lorenz96 model(lspec);
  latent.f64 = model.member_time_means(member);
  latent.f64.resize(128, 0.0);
  ds.add_variable(std::move(latent));
  return ds;
}

}  // namespace cesm::climate
