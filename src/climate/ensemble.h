#pragma once
// The perturbation ensemble (paper §4.3).
//
// Generates the CESM-PVT setup: `members` one-year simulations differing
// only in an O(1e-14) initial-condition perturbation. Fields for any
// (variable, member) pair are synthesized on demand — the full ensemble is
// far too large to keep resident, and the verification loops stream it
// variable by variable.
//
// Members beyond the base ensemble (ids >= members()) model the "runs on
// the new machine" of the original port-verification use case and are
// generated on demand the same way.

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "climate/field.h"
#include "climate/grid.h"
#include "climate/lorenz.h"
#include "climate/synthesis.h"
#include "climate/variables.h"

namespace cesm::climate {

struct EnsembleSpec {
  GridSpec grid = GridSpec::reduced();
  std::size_t members = 101;  ///< paper: 101 one-year runs
  Lorenz96Spec latent;
};

class EnsembleGenerator {
 public:
  explicit EnsembleGenerator(const EnsembleSpec& spec);

  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] const EnsembleSpec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<VariableSpec>& catalog() const { return catalog_; }
  [[nodiscard]] std::size_t members() const { return spec_.members; }

  /// Synthesize one variable for one member. Thread-safe.
  [[nodiscard]] Field field(const VariableSpec& var, std::uint32_t member) const;
  [[nodiscard]] Field field(const std::string& name, std::uint32_t member) const;

  /// All `members()` fields of one variable, synthesized in parallel.
  [[nodiscard]] std::vector<Field> ensemble_fields(const VariableSpec& var) const;

  /// Synthesize elements [elem_lo, elem_hi) of one member's variable into
  /// `out` — bit-identical to the same slice of field() for any range (see
  /// FieldSynthesizer::synthesize_range). Thread-safe; the out-of-core
  /// stage phase uses it to emit chunks in parallel without holding any
  /// full member.
  void field_range(const VariableSpec& var, std::uint32_t member,
                   std::size_t elem_lo, std::size_t elem_hi,
                   std::span<float> out) const;

  /// Element count of one variable's field (nlev * ncol).
  [[nodiscard]] std::size_t field_elems(const VariableSpec& var) const;

  [[nodiscard]] const VariableSpec& variable(const std::string& name) const {
    return find_variable(catalog_, name);
  }

 private:
  [[nodiscard]] const FieldSynthesizer& synthesizer(const VariableSpec& var) const;
  [[nodiscard]] const std::vector<double>& member_means(std::uint32_t member) const;

  EnsembleSpec spec_;
  Grid grid_;
  Lorenz96 latent_;
  std::vector<VariableSpec> catalog_;
  std::vector<std::vector<double>> base_means_;  // precomputed for members 0..members-1

  mutable std::mutex mu_;
  mutable std::map<std::string, std::unique_ptr<FieldSynthesizer>> synths_;
  mutable std::map<std::uint32_t, std::vector<double>> extra_means_;
};

}  // namespace cesm::climate
