// Vectorized codec kernels. Compiled with -mavx2 (and -ffp-contract=off)
// where the toolchain supports it; written as restructured portable C++ so
// the compiler can keep whole rows in vector lanes — no intrinsics, which
// keeps the TU correct (if slower) on any architecture.
//
// Every function here must produce output bit-identical to its
// kernels::scalar:: counterpart (see codec_kernels.h for the contract and
// the reasoning per kernel family).

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "compress/codec_kernels.h"
#include "compress/fpz/predictor.h"
#include "compress/grib2/wavelet.h"

namespace cesm::comp::kernels::vec {

// ---------------------------------------------------------------------------
// Ordered-integer maps: branch-free xor formulation of predictor.h's
// sign-conditional maps (identical bit results, vectorizes to cmp/xor).
// ---------------------------------------------------------------------------

void ordered_from_f32(const float* src, std::uint32_t* dst, std::size_t n,
                      unsigned shift) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t b;
    std::memcpy(&b, &src[i], sizeof b);
    // sign set: ~b == b ^ 0xffffffff; sign clear: b | 0x8000... == b ^ 0x8000...
    const std::uint32_t m =
        static_cast<std::uint32_t>(static_cast<std::int32_t>(b) >> 31) | 0x80000000u;
    dst[i] = (b ^ m) >> shift;
  }
}

void ordered_from_f64(const double* src, std::uint64_t* dst, std::size_t n,
                      unsigned shift) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t b;
    std::memcpy(&b, &src[i], sizeof b);
    const std::uint64_t m =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(b) >> 63) |
        0x8000000000000000ull;
    dst[i] = (b ^ m) >> shift;
  }
}

void f32_from_ordered(const std::uint32_t* q, float* dst, std::size_t n, unsigned shift,
                      std::uint32_t half) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t u = (q[i] << shift) | half;
    // sign set: clear it (u ^ 0x8000...); sign clear: ~u (u ^ 0xffffffff).
    const std::uint32_t m =
        ~static_cast<std::uint32_t>(static_cast<std::int32_t>(u) >> 31) | 0x80000000u;
    const std::uint32_t b = u ^ m;
    std::memcpy(&dst[i], &b, sizeof b);
  }
}

void f64_from_ordered(const std::uint64_t* q, double* dst, std::size_t n, unsigned shift,
                      std::uint64_t half) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t u = (q[i] << shift) | half;
    const std::uint64_t m =
        ~static_cast<std::uint64_t>(static_cast<std::int64_t>(u) >> 63) |
        0x8000000000000000ull;
    const std::uint64_t b = u ^ m;
    std::memcpy(&dst[i], &b, sizeof b);
  }
}

// ---------------------------------------------------------------------------
// Lorenzo prediction, row-blocked: the per-element div/mod index decomposition
// of LorenzoPredictor::predict is replaced by one loop nest per boundary
// case, so interior rows are straight-line neighbor arithmetic over
// contiguous lanes. All arithmetic is modular in U — exactly the predictor's
// semantics, case for case.
// ---------------------------------------------------------------------------

namespace {

template <typename U>
void lorenzo_residuals_impl(const U* q, U* zz, Dims d) {
  const std::size_t rows = d.rows, cols = d.cols, planes = d.planes;
  const std::size_t plane_size = rows * cols;
  for (std::size_t p = 0; p < planes; ++p) {
    const U* cp = q + p * plane_size;   // current plane
    const U* pp = cp - plane_size;      // previous plane (p > 0 only)
    U* z = zz + p * plane_size;
    // Row 0: first element predicts from the previous plane (or 0), the
    // rest from the left neighbor.
    z[0] = zigzag_encode(static_cast<U>(p > 0 ? cp[0] - pp[0] : cp[0]));
    for (std::size_t c = 1; c < cols; ++c) {
      z[c] = zigzag_encode(static_cast<U>(cp[c] - cp[c - 1]));
    }
    for (std::size_t r = 1; r < rows; ++r) {
      const U* cur = cp + r * cols;
      const U* up = cur - cols;
      U* zr = z + r * cols;
      zr[0] = zigzag_encode(static_cast<U>(cur[0] - up[0]));
      if (p == 0) {
        // 2-D Lorenzo: value - (left + up - upleft).
        for (std::size_t c = 1; c < cols; ++c) {
          zr[c] = zigzag_encode(
              static_cast<U>(cur[c] - cur[c - 1] - up[c] + up[c - 1]));
        }
      } else {
        // 3-D Lorenzo 7-neighbour corner.
        const U* bk = cur - plane_size;  // (p-1, r, .)
        const U* bu = bk - cols;         // (p-1, r-1, .)
        for (std::size_t c = 1; c < cols; ++c) {
          zr[c] = zigzag_encode(static_cast<U>(cur[c] - cur[c - 1] - up[c] +
                                               up[c - 1] - bk[c] + bk[c - 1] +
                                               bu[c] - bu[c - 1]));
        }
      }
    }
  }
}

/// Inverse. Row interiors collapse to a running prefix sum: with
/// e[c] = q[r][c] - q[r-1][c] the 2-D recurrence is e[c] = e[c-1] + dz[c],
/// and in 3-D the plane difference h = q[p] - q[p-1] obeys the 2-D
/// recurrence, so g[c] = h[r][c] - h[r-1][c] is again a prefix sum.
template <typename U>
void lorenzo_reconstruct_impl(U* q, const U* zz, Dims d) {
  const std::size_t rows = d.rows, cols = d.cols, planes = d.planes;
  const std::size_t plane_size = rows * cols;
  std::vector<U> hprev(planes > 1 ? cols : 0);
  for (std::size_t p = 0; p < planes; ++p) {
    U* cp = q + p * plane_size;
    const U* pp = cp - plane_size;
    const U* z = zz + p * plane_size;
    cp[0] = static_cast<U>((p > 0 ? pp[0] : U{0}) + zigzag_decode(z[0]));
    for (std::size_t c = 1; c < cols; ++c) {
      cp[c] = static_cast<U>(cp[c - 1] + zigzag_decode(z[c]));
    }
    if (p > 0) {
      for (std::size_t c = 0; c < cols; ++c) hprev[c] = static_cast<U>(cp[c] - pp[c]);
    }
    for (std::size_t r = 1; r < rows; ++r) {
      U* cur = cp + r * cols;
      const U* up = cur - cols;
      const U* zr = z + r * cols;
      cur[0] = static_cast<U>(up[0] + zigzag_decode(zr[0]));
      if (p == 0) {
        U e = static_cast<U>(cur[0] - up[0]);
        for (std::size_t c = 1; c < cols; ++c) {
          e = static_cast<U>(e + zigzag_decode(zr[c]));
          cur[c] = static_cast<U>(up[c] + e);
        }
      } else {
        const U* prev = pp + r * cols;
        U h0 = static_cast<U>(cur[0] - prev[0]);
        U g = static_cast<U>(h0 - hprev[0]);
        hprev[0] = h0;
        for (std::size_t c = 1; c < cols; ++c) {
          g = static_cast<U>(g + zigzag_decode(zr[c]));
          const U h = static_cast<U>(hprev[c] + g);
          hprev[c] = h;
          cur[c] = static_cast<U>(prev[c] + h);
        }
      }
    }
  }
}

}  // namespace

void lorenzo_residuals_u32(const std::uint32_t* q, std::uint32_t* zz, Dims d) {
  lorenzo_residuals_impl(q, zz, d);
}
void lorenzo_residuals_u64(const std::uint64_t* q, std::uint64_t* zz, Dims d) {
  lorenzo_residuals_impl(q, zz, d);
}
void lorenzo_reconstruct_u32(std::uint32_t* q, const std::uint32_t* zz, Dims d) {
  lorenzo_reconstruct_impl(q, zz, d);
}
void lorenzo_reconstruct_u64(std::uint64_t* q, const std::uint64_t* zz, Dims d) {
  lorenzo_reconstruct_impl(q, zz, d);
}

// ---------------------------------------------------------------------------
// ISABELA window sort: LSD radix over order-preserving keys. Equivalent to
// stable_sort by value because the key map is strictly monotone on non-NaN
// floats (with -0.0 canonicalized onto +0.0, matching operator< which treats
// them as equal) and LSD radix is stable, so ties keep input-index order.
// NaN does not admit a strict weak order under operator<; windows containing
// NaN defer to the reference path so both modes share one behavior.
// ---------------------------------------------------------------------------

namespace {

inline std::uint32_t radix_key(float v) { return float_to_ordered(v == 0.0f ? 0.0f : v); }
inline std::uint64_t radix_key(double v) { return double_to_ordered(v == 0.0 ? 0.0 : v); }

template <typename T>
void sort_perm_impl(const T* data, std::uint32_t* perm, std::size_t len) {
  bool has_nan = false;
  for (std::size_t i = 0; i < len; ++i) has_nan |= (data[i] != data[i]);
  if (has_nan || len <= 64) {
    // Tiny windows: radix setup costs more than it saves.
    if constexpr (std::is_same_v<T, float>) {
      scalar::sort_perm_f32(data, perm, len);
    } else {
      scalar::sort_perm_f64(data, perm, len);
    }
    return;
  }

  using K = decltype(radix_key(T{}));
  std::vector<K> keys(len), keys_tmp(len);
  std::vector<std::uint32_t> idx(len), idx_tmp(len);
  for (std::size_t i = 0; i < len; ++i) {
    keys[i] = radix_key(data[i]);
    idx[i] = static_cast<std::uint32_t>(i);
  }

  constexpr unsigned kPasses = sizeof(K);
  for (unsigned pass = 0; pass < kPasses; ++pass) {
    const unsigned shift = pass * 8;
    std::size_t count[256] = {};
    for (std::size_t i = 0; i < len; ++i) ++count[(keys[i] >> shift) & 0xff];
    const std::uint8_t first_byte = static_cast<std::uint8_t>((keys[0] >> shift) & 0xff);
    if (count[first_byte] == len) continue;  // all equal: pass is a no-op
    std::size_t offset = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      const std::size_t c = count[b];
      count[b] = offset;
      offset += c;
    }
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t dst = count[(keys[i] >> shift) & 0xff]++;
      keys_tmp[dst] = keys[i];
      idx_tmp[dst] = idx[i];
    }
    keys.swap(keys_tmp);
    idx.swap(idx_tmp);
  }
  std::memcpy(perm, idx.data(), len * sizeof(std::uint32_t));
}

}  // namespace

void sort_perm_f32(const float* data, std::uint32_t* perm, std::size_t len) {
  sort_perm_impl(data, perm, len);
}
void sort_perm_f64(const double* data, std::uint32_t* perm, std::size_t len) {
  sort_perm_impl(data, perm, len);
}

// ---------------------------------------------------------------------------
// APAX / GRIB2 quantization: branch-free exact llround.
//
// For |x| < 2^52, trunc(x) and x - trunc(x) are exact, so
//   m = trunc(x) + (frac >= 0.5) - (frac <= -0.5)
// reproduces llround's round-half-away-from-zero for every finite input.
// Non-finite lanes are detected with x - x == 0 (false for NaN/inf) and
// forced to 0 before any float->int conversion, matching the scalar kernels.
// ---------------------------------------------------------------------------

void apax_quantize(const double* src, std::size_t first, std::size_t len, double scale,
                   unsigned bits, std::size_t extra, std::uint32_t* codes) {
  const auto run = [&](std::size_t i0, std::size_t i1, unsigned b) {
    const double q = static_cast<double>((1u << (b - 1)) - 1);
    const auto limit = static_cast<std::int32_t>(q);
    for (std::size_t i = i0; i < i1; ++i) {
      const double dv = src[i] / scale * q;
      const bool finite = dv - dv == 0.0;
      const double ds = finite ? dv : 0.0;
      const double t = std::trunc(ds);
      const double f = ds - t;
      auto m = static_cast<std::int32_t>(t) + (f >= 0.5 ? 1 : 0) - (f <= -0.5 ? 1 : 0);
      m = std::min(std::max(m, -limit), limit);
      codes[i - first] = static_cast<std::uint32_t>(m + limit);
    }
  };
  const std::size_t split = first + std::min(extra, len - first);
  run(first, split, bits + 1);
  run(split, len, bits);
}

void grib2_quantize(const float* data, const std::uint8_t* valid, std::int64_t* q,
                    std::size_t n, double lo, double step) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dv = (static_cast<double>(data[i]) - lo) / step;
    const bool ok = (valid == nullptr || valid[i] != 0) && dv - dv == 0.0;
    const double ds = ok ? dv : 0.0;
    const double t = std::trunc(ds);
    const double f = ds - t;
    q[i] = static_cast<std::int64_t>(t) + (f >= 0.5 ? 1 : 0) - (f <= -0.5 ? 1 : 0);
  }
}

// ---------------------------------------------------------------------------
// 5/3 wavelet lifting. Row transforms reuse the reference 1-D lifting with
// one copy saved; column transforms are restructured to operate on whole
// rows at a time (each lifting step walks c contiguously), which turns the
// strided gather-per-column of the reference into vectorizable row
// arithmetic. Integer ops only — results are identical by construction.
// ---------------------------------------------------------------------------

void dwt53_rows(std::int64_t* data, std::size_t cols, std::size_t r_lim,
                std::size_t c_lim, bool inverse) {
  std::vector<std::int64_t> buf(c_lim);
  for (std::size_t r = 0; r < r_lim; ++r) {
    std::int64_t* row = data + r * cols;
    std::memcpy(buf.data(), row, c_lim * sizeof(std::int64_t));
    if (inverse) {
      dwt53_inverse_1d(buf, std::span<std::int64_t>(row, c_lim));
    } else {
      dwt53_forward_1d(buf, std::span<std::int64_t>(row, c_lim));
    }
  }
}

namespace {

void dwt53_cols_forward(std::int64_t* data, std::size_t cols, std::size_t r_lim,
                        std::size_t c_lim) {
  const std::size_t n = r_lim;
  const std::size_t ns = (n + 1) / 2, nd = n / 2;
  std::vector<std::int64_t> dbuf(nd * c_lim);
  // Predict: d[i] = x[2i+1] - ((x[2i] + x[2i+2]) >> 1), mirror at the edge.
  for (std::size_t i = 0; i < nd; ++i) {
    const std::int64_t* x0 = data + (2 * i) * cols;
    const std::int64_t* x1 = data + (2 * i + 1) * cols;
    const std::size_t r2 = 2 * i + 2 <= n - 1 ? 2 * i + 2 : n - 2;
    const std::int64_t* x2 = data + r2 * cols;
    std::int64_t* di = dbuf.data() + i * c_lim;
    for (std::size_t c = 0; c < c_lim; ++c) di[c] = x1[c] - ((x0[c] + x2[c]) >> 1);
  }
  // Update: s[i] = x[2i] + ((d[i-1] + d[i] + 2) >> 2), d clamped at edges.
  // Writing s into row i is safe: it only reads x rows 2i >= i, none of
  // which have been overwritten yet.
  for (std::size_t i = 0; i < ns; ++i) {
    const std::int64_t* x0 = data + (2 * i) * cols;
    const std::int64_t* dm =
        dbuf.data() + (i > 0 ? i - 1 : 0) * c_lim;
    const std::int64_t* d0 = dbuf.data() + std::min(i, nd - 1) * c_lim;
    std::int64_t* out = data + i * cols;
    for (std::size_t c = 0; c < c_lim; ++c) out[c] = x0[c] + ((dm[c] + d0[c] + 2) >> 2);
  }
  for (std::size_t i = 0; i < nd; ++i) {
    std::memcpy(data + (ns + i) * cols, dbuf.data() + i * c_lim,
                c_lim * sizeof(std::int64_t));
  }
}

void dwt53_cols_inverse(std::int64_t* data, std::size_t cols, std::size_t r_lim,
                        std::size_t c_lim) {
  const std::size_t n = r_lim;
  const std::size_t ns = (n + 1) / 2, nd = n / 2;
  std::vector<std::int64_t> ebuf(ns * c_lim);
  // Undo update: x[2i] = s[i] - ((d[i-1] + d[i] + 2) >> 2).
  for (std::size_t i = 0; i < ns; ++i) {
    const std::int64_t* si = data + i * cols;
    const std::int64_t* dm = data + (ns + (i > 0 ? i - 1 : 0)) * cols;
    const std::int64_t* d0 = data + (ns + std::min(i, nd - 1)) * cols;
    std::int64_t* ei = ebuf.data() + i * c_lim;
    for (std::size_t c = 0; c < c_lim; ++c) ei[c] = si[c] - ((dm[c] + d0[c] + 2) >> 2);
  }
  // Undo predict: x[2i+1] = d[i] + ((x[2i] + x[2i+2]) >> 1). Even samples
  // come from ebuf, so writing odd rows in place never clobbers an input
  // row before its read (the only overlap, 2i+1 == ns+i at the final step
  // of even n, is elementwise read-then-write).
  for (std::size_t i = 0; i < nd; ++i) {
    const std::int64_t* e0 = ebuf.data() + i * c_lim;
    const std::size_t r2 = 2 * i + 2 <= n - 1 ? 2 * i + 2 : n - 2;
    const std::int64_t* e2 = ebuf.data() + (r2 / 2) * c_lim;
    const std::int64_t* di = data + (ns + i) * cols;
    std::int64_t* odd = data + (2 * i + 1) * cols;
    for (std::size_t c = 0; c < c_lim; ++c) odd[c] = di[c] + ((e0[c] + e2[c]) >> 1);
  }
  for (std::size_t i = 0; i < ns; ++i) {
    std::memcpy(data + (2 * i) * cols, ebuf.data() + i * c_lim,
                c_lim * sizeof(std::int64_t));
  }
}

}  // namespace

void dwt53_cols(std::int64_t* data, std::size_t cols, std::size_t r_lim,
                std::size_t c_lim, bool inverse) {
  if (r_lim < 2) {
    return;  // single-row columns: the 1-D transform is the identity
  }
  if (inverse) {
    dwt53_cols_inverse(data, cols, r_lim, c_lim);
  } else {
    dwt53_cols_forward(data, cols, r_lim, c_lim);
  }
}

}  // namespace cesm::comp::kernels::vec
