#pragma once
// Canonical Huffman coding with limited code length.
//
// Used by the deflate-class lossless codec for its literal/length and
// distance alphabets. Codes are canonical (sorted by (length, symbol)) so
// only the code-length vector travels in the stream.

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitio.h"

namespace cesm::comp {

/// Build length-limited canonical Huffman code lengths from frequencies.
/// Symbols with zero frequency get length 0 (absent). If only one symbol
/// occurs it is assigned length 1. Lengths never exceed `max_len`.
std::vector<std::uint8_t> huffman_code_lengths(std::span<const std::uint64_t> freqs,
                                               unsigned max_len = 15);

/// Canonical encoder table: symbol -> (code, length).
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(std::span<const std::uint8_t> lengths);

  void put(BitWriter& bw, unsigned symbol) const {
    bw.put(codes_[symbol], lengths_[symbol]);
  }

  [[nodiscard]] unsigned length(unsigned symbol) const { return lengths_[symbol]; }

 private:
  std::vector<std::uint32_t> codes_;
  std::vector<std::uint8_t> lengths_;
};

/// Canonical decoder using per-length first-code offsets (O(length) per
/// symbol; lengths are <= 15 so this is fast enough for our data volumes).
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(std::span<const std::uint8_t> lengths);

  /// Decode one symbol; throws FormatError on an invalid code.
  [[nodiscard]] unsigned get(BitReader& br) const;

 private:
  static constexpr unsigned kMaxLen = 15;
  // first_code_[l]: canonical code value of the first code of length l.
  // offset_[l]: index into sorted_symbols_ of that first code.
  std::uint32_t first_code_[kMaxLen + 2] = {};
  std::uint32_t count_[kMaxLen + 1] = {};
  std::uint32_t offset_[kMaxLen + 1] = {};
  std::vector<std::uint32_t> sorted_symbols_;
};

}  // namespace cesm::comp
