#pragma once
// Deflate-class general-purpose lossless codec: LZ77 tokens entropy-coded
// with two canonical Huffman alphabets (literal/length + distance), RFC
// 1951-style symbol layout in a self-describing container of our own.
//
// This is the study's stand-in for the zlib codec inside NetCDF-4 (paper
// §4.1 uses NetCDF-4 lossless compression to characterize variables, and
// §5.4 falls back to it for variables no lossy method passes).

#include <cstdint>
#include <span>

#include "compress/codec.h"
#include "util/bytes.h"

namespace cesm::comp {

/// Compress an arbitrary byte buffer (single deflate block, with a stored
/// fallback when expansion would occur).
Bytes deflate_compress(std::span<const std::uint8_t> input, int effort = 6);

/// Inverse of deflate_compress. Throws FormatError on corrupt input.
std::vector<std::uint8_t> deflate_decompress(std::span<const std::uint8_t> stream);

/// Byte-transpose (shuffle) filter: groups byte k of every element
/// together, the HDF5 trick that makes float arrays deflate well.
Bytes shuffle_bytes(std::span<const std::uint8_t> input, std::size_t elem_size);
std::vector<std::uint8_t> unshuffle_bytes(std::span<const std::uint8_t> input,
                                          std::size_t elem_size);

/// "NetCDF-4" codec: optional shuffle + deflate over the raw IEEE bytes.
/// Exactly lossless; capability row "NetCDF-4" in the tables.
class DeflateCodec final : public Codec {
 public:
  explicit DeflateCodec(bool shuffle = true, int effort = 6)
      : shuffle_(shuffle), effort_(effort) {}

  [[nodiscard]] std::string name() const override { return "NetCDF-4"; }
  [[nodiscard]] std::string family() const override { return "NetCDF-4"; }
  [[nodiscard]] bool is_lossless() const override { return true; }

  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.lossless_mode = true,
                        .special_values = true,
                        .freely_available = true,
                        .fixed_quality = false,
                        .fixed_rate = false,
                        .handles_64bit = true};
  }

  [[nodiscard]] Bytes encode(std::span<const float> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<float> decode(std::span<const std::uint8_t> stream) const override;
  [[nodiscard]] Bytes encode64(std::span<const double> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<double> decode64(
      std::span<const std::uint8_t> stream) const override;

 private:
  bool shuffle_;
  int effort_;
};

}  // namespace cesm::comp
