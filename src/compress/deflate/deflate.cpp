#include "compress/deflate/deflate.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "compress/bitio.h"
#include "compress/deflate/huffman.h"
#include "compress/deflate/lz77.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace cesm::comp {

namespace {

// RFC 1951 length/distance code tables.
constexpr unsigned kNumLenCodes = 29;
constexpr std::array<std::uint16_t, kNumLenCodes> kLenBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<std::uint8_t, kNumLenCodes> kLenExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

constexpr unsigned kNumDistCodes = 30;
constexpr std::array<std::uint16_t, kNumDistCodes> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<std::uint8_t, kNumDistCodes> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,  5,  6,
    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

constexpr unsigned kEob = 256;
constexpr unsigned kLitLenSymbols = 257 + kNumLenCodes;  // 286
constexpr std::uint8_t kModeStored = 0;
constexpr std::uint8_t kModeHuffman = 1;

unsigned length_code(unsigned len) {
  CESM_ASSERT(len >= 3 && len <= 258);
  unsigned c = 0;
  while (c + 1 < kNumLenCodes && kLenBase[c + 1] <= len) ++c;
  return c;
}

unsigned distance_code(unsigned dist) {
  CESM_ASSERT(dist >= 1 && dist <= 32768);
  unsigned c = 0;
  while (c + 1 < kNumDistCodes && kDistBase[c + 1] <= dist) ++c;
  return c;
}

Lz77Params params_for_effort(int effort) {
  Lz77Params p;
  effort = std::clamp(effort, 1, 9);
  p.max_chain = 1u << (effort + 1);  // 4 .. 1024 probes
  p.lazy = effort >= 4;
  return p;
}

}  // namespace

Bytes deflate_compress(std::span<const std::uint8_t> input, int effort) {
  Bytes out;
  ByteWriter w(out);
  w.u64(input.size());

  if (input.empty()) {
    w.u8(kModeStored);
    return out;
  }

  const std::vector<Lz77Token> tokens = lz77_tokenize(input, params_for_effort(effort));

  // Gather symbol frequencies.
  std::vector<std::uint64_t> lit_freq(kLitLenSymbols, 0);
  std::vector<std::uint64_t> dist_freq(kNumDistCodes, 0);
  for (const Lz77Token& t : tokens) {
    if (t.length == 0) {
      ++lit_freq[t.literal];
    } else {
      ++lit_freq[257 + length_code(t.length)];
      ++dist_freq[distance_code(t.distance)];
    }
  }
  ++lit_freq[kEob];

  const auto lit_lens = huffman_code_lengths(lit_freq);
  const auto dist_lens = huffman_code_lengths(dist_freq);
  const HuffmanEncoder lit_enc(lit_lens);
  const HuffmanEncoder dist_enc(dist_lens);

  Bytes body;
  {
    // Code-length tables, 4 bits per symbol, then the token stream.
    BitWriter bw(body);
    for (auto l : lit_lens) bw.put(l, 4);
    for (auto l : dist_lens) bw.put(l, 4);
    for (const Lz77Token& t : tokens) {
      if (t.length == 0) {
        lit_enc.put(bw, t.literal);
      } else {
        const unsigned lc = length_code(t.length);
        lit_enc.put(bw, 257 + lc);
        if (kLenExtra[lc]) bw.put(t.length - kLenBase[lc], kLenExtra[lc]);
        const unsigned dc = distance_code(t.distance);
        dist_enc.put(bw, dc);
        if (kDistExtra[dc]) bw.put(t.distance - kDistBase[dc], kDistExtra[dc]);
      }
    }
    lit_enc.put(bw, kEob);
    bw.align();
  }

  if (body.size() >= input.size()) {
    // Entropy coding lost: store raw (mirrors deflate's stored blocks).
    w.u8(kModeStored);
    w.raw(input);
  } else {
    w.u8(kModeHuffman);
    w.raw(body);
  }
  return out;
}

std::vector<std::uint8_t> deflate_decompress(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const std::uint64_t raw_size = r.u64();
  if (raw_size > (1ull << 31)) throw FormatError("implausible deflate size");
  const std::uint8_t mode = r.u8();

  if (mode == kModeStored) {
    auto payload = r.raw(raw_size);
    return std::vector<std::uint8_t>(payload.begin(), payload.end());
  }
  if (mode != kModeHuffman) throw FormatError("unknown deflate mode");

  BitReader br(stream.subspan(r.position()));
  std::vector<std::uint8_t> lit_lens(kLitLenSymbols);
  std::vector<std::uint8_t> dist_lens(kNumDistCodes);
  for (auto& l : lit_lens) l = static_cast<std::uint8_t>(br.get(4));
  for (auto& l : dist_lens) l = static_cast<std::uint8_t>(br.get(4));
  const HuffmanDecoder lit_dec(lit_lens);
  const HuffmanDecoder dist_dec(dist_lens);

  std::vector<std::uint8_t> out;
  // Reserve conservatively: a corrupt header must not drive a huge
  // up-front allocation; genuine large outputs grow geometrically.
  out.reserve(std::min<std::uint64_t>(raw_size, 1u << 22));
  for (;;) {
    const unsigned sym = lit_dec.get(br);
    if (sym == kEob) break;
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    const unsigned lc = sym - 257;
    if (lc >= kNumLenCodes) throw FormatError("bad length code");
    const unsigned len =
        kLenBase[lc] + (kLenExtra[lc] ? static_cast<unsigned>(br.get(kLenExtra[lc])) : 0);
    const unsigned dc = dist_dec.get(br);
    if (dc >= kNumDistCodes) throw FormatError("bad distance code");
    const unsigned dist =
        kDistBase[dc] + (kDistExtra[dc] ? static_cast<unsigned>(br.get(kDistExtra[dc])) : 0);
    if (dist == 0 || dist > out.size()) throw FormatError("deflate distance out of range");
    const std::size_t start = out.size() - dist;
    for (unsigned k = 0; k < len; ++k) out.push_back(out[start + k]);
    if (out.size() > raw_size) throw FormatError("deflate output overrun");
  }
  if (out.size() != raw_size) throw FormatError("deflate size mismatch");
  return out;
}

Bytes shuffle_bytes(std::span<const std::uint8_t> input, std::size_t elem_size) {
  CESM_REQUIRE(elem_size > 0);
  CESM_REQUIRE(input.size() % elem_size == 0);
  const std::size_t n = input.size() / elem_size;
  Bytes out(input.size());
  for (std::size_t b = 0; b < elem_size; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      out[b * n + i] = input[i * elem_size + b];
    }
  }
  return out;
}

std::vector<std::uint8_t> unshuffle_bytes(std::span<const std::uint8_t> input,
                                          std::size_t elem_size) {
  CESM_REQUIRE(elem_size > 0);
  CESM_REQUIRE(input.size() % elem_size == 0);
  const std::size_t n = input.size() / elem_size;
  std::vector<std::uint8_t> out(input.size());
  for (std::size_t b = 0; b < elem_size; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i * elem_size + b] = input[b * n + i];
    }
  }
  return out;
}

namespace {

constexpr std::uint32_t kNcMagic = 0x315a434e;  // "NCZ1"

template <typename T>
Bytes nc_encode(std::span<const T> data, const Shape& shape, bool shuffle, int effort) {
  CESM_REQUIRE(shape.count() == data.size());
  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kNcMagic, shape);
  w.u8(shuffle ? 1 : 0);
  w.u8(sizeof(T));
  Bytes raw(data.size() * sizeof(T));
  std::memcpy(raw.data(), data.data(), raw.size());
  const Bytes filtered = shuffle ? shuffle_bytes(raw, sizeof(T)) : std::move(raw);
  const Bytes packed = deflate_compress(filtered, effort);
  w.u64(packed.size());
  w.raw(packed);
  return out;
}

template <typename T>
std::vector<T> nc_decode(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const Shape shape = wire::read_header(r, kNcMagic);
  const bool shuffled = r.u8() != 0;
  const std::size_t elem = r.u8();
  if (elem != sizeof(T)) throw FormatError("element size mismatch");
  const std::uint64_t packed_size = r.u64();
  auto packed = r.raw(packed_size);
  std::vector<std::uint8_t> raw = deflate_decompress(packed);
  if (shuffled) raw = unshuffle_bytes(raw, sizeof(T));
  if (raw.size() != shape.count() * sizeof(T)) throw FormatError("payload size mismatch");
  std::vector<T> data(shape.count());
  std::memcpy(data.data(), raw.data(), raw.size());
  return data;
}

}  // namespace

Bytes DeflateCodec::encode(std::span<const float> data, const Shape& shape) const {
  return nc_encode(data, shape, shuffle_, effort_);
}

std::vector<float> DeflateCodec::decode(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("deflate.decode");
  return nc_decode<float>(stream);
}

Bytes DeflateCodec::encode64(std::span<const double> data, const Shape& shape) const {
  return nc_encode(data, shape, shuffle_, effort_);
}

std::vector<double> DeflateCodec::decode64(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("deflate.decode");
  return nc_decode<double>(stream);
}

}  // namespace cesm::comp
