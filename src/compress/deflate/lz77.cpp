#include "compress/deflate/lz77.h"

#include <algorithm>

#include "util/error.h"

namespace cesm::comp {

namespace {

constexpr std::uint32_t kHashBits = 16;
constexpr std::uint32_t kHashSize = 1u << kHashBits;

inline std::uint32_t hash4(const std::uint8_t* p) {
  // 4-byte multiplicative hash; floats share exponent bytes so 4-byte
  // context beats deflate's classic 3-byte hash on this data.
  std::uint32_t v = static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
                    (static_cast<std::uint32_t>(p[2]) << 16) |
                    (static_cast<std::uint32_t>(p[3]) << 24);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<Lz77Token> lz77_tokenize(std::span<const std::uint8_t> input,
                                     const Lz77Params& params) {
  CESM_REQUIRE(params.min_match >= 4);
  CESM_REQUIRE(params.window <= 1u << 15);
  std::vector<Lz77Token> tokens;
  tokens.reserve(input.size() / 3 + 16);

  const std::size_t n = input.size();
  if (n == 0) return tokens;

  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(n, -1);

  auto find_match = [&](std::size_t pos) -> Lz77Token {
    Lz77Token best{};
    if (pos + params.min_match > n) return best;
    const std::size_t limit = std::min(params.max_match, n - pos);
    std::int64_t cand = head[hash4(&input[pos])];
    std::size_t chain = params.max_chain;
    while (cand >= 0 && chain-- > 0) {
      const auto cpos = static_cast<std::size_t>(cand);
      if (cpos >= pos) {  // self or future entries carry no information
        cand = prev[cpos];
        continue;
      }
      if (pos - cpos > params.window) break;
      // Quick reject on the byte one past the current best length.
      if (best.length == 0 || (cpos + best.length < n &&
                               input[cpos + best.length] == input[pos + best.length])) {
        std::size_t len = 0;
        while (len < limit && input[cpos + len] == input[pos + len]) ++len;
        if (len >= params.min_match && len > best.length) {
          best.length = static_cast<std::uint16_t>(len);
          best.distance = static_cast<std::uint16_t>(pos - cpos);
          if (len == limit) break;
        }
      }
      cand = prev[cpos];
    }
    return best;
  };

  auto insert = [&](std::size_t pos) {
    if (pos + 4 <= n) {
      const std::uint32_t h = hash4(&input[pos]);
      prev[pos] = head[h];
      head[h] = static_cast<std::int64_t>(pos);
    }
  };

  // Every position enters the dictionary exactly once, via advance_to().
  std::size_t inserted = 0;
  auto advance_to = [&](std::size_t to) {
    for (; inserted < to; ++inserted) insert(inserted);
  };

  std::size_t pos = 0;
  while (pos < n) {
    advance_to(pos + 1);  // current position must be findable by pos+1 probes
    Lz77Token match = find_match(pos);
    if (params.lazy && match.length != 0 && pos + 1 < n) {
      // One-step lazy matching: prefer a strictly longer match at pos+1.
      advance_to(pos + 2);
      const Lz77Token next = find_match(pos + 1);
      if (next.length > match.length) {
        tokens.push_back(Lz77Token{0, 0, input[pos]});
        ++pos;
        match = next;
      }
    }
    if (match.length != 0) {
      advance_to(pos + match.length);
      tokens.push_back(match);
      pos += match.length;
    } else {
      tokens.push_back(Lz77Token{0, 0, input[pos]});
      ++pos;
    }
  }
  return tokens;
}

std::vector<std::uint8_t> lz77_reconstruct(std::span<const Lz77Token> tokens,
                                           std::size_t expected_size) {
  std::vector<std::uint8_t> out;
  out.reserve(expected_size);
  for (const Lz77Token& t : tokens) {
    if (t.length == 0) {
      out.push_back(t.literal);
    } else {
      if (t.distance == 0 || t.distance > out.size()) {
        throw FormatError("lz77 distance out of range");
      }
      const std::size_t start = out.size() - t.distance;
      for (std::size_t k = 0; k < t.length; ++k) {
        out.push_back(out[start + k]);  // overlapping copies are intentional
      }
    }
  }
  if (out.size() != expected_size) throw FormatError("lz77 size mismatch");
  return out;
}

}  // namespace cesm::comp
