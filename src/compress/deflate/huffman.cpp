#include "compress/deflate/huffman.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/error.h"

namespace cesm::comp {

namespace {

struct Node {
  std::uint64_t freq;
  int left = -1;    // child indices; -1 marks a leaf
  int right = -1;
  unsigned symbol = 0;
};

// Depth-first code-length assignment over the tree built by the heap.
void assign_depths(const std::vector<Node>& nodes, int idx, unsigned depth,
                   std::vector<std::uint8_t>& lengths) {
  const Node& n = nodes[static_cast<std::size_t>(idx)];
  if (n.left < 0) {
    lengths[n.symbol] = static_cast<std::uint8_t>(std::max(1u, depth));
    return;
  }
  assign_depths(nodes, n.left, depth + 1, lengths);
  assign_depths(nodes, n.right, depth + 1, lengths);
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(std::span<const std::uint64_t> freqs,
                                               unsigned max_len) {
  CESM_REQUIRE(max_len >= 2 && max_len <= 15);
  std::vector<std::uint8_t> lengths(freqs.size(), 0);

  std::vector<Node> nodes;
  nodes.reserve(freqs.size() * 2);
  using HeapItem = std::pair<std::uint64_t, int>;  // (freq, node index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] == 0) continue;
    nodes.push_back(Node{freqs[s], -1, -1, static_cast<unsigned>(s)});
    heap.emplace(freqs[s], static_cast<int>(nodes.size()) - 1);
  }
  if (heap.empty()) return lengths;
  if (heap.size() == 1) {
    lengths[nodes[0].symbol] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    auto [fa, a] = heap.top();
    heap.pop();
    auto [fb, b] = heap.top();
    heap.pop();
    nodes.push_back(Node{fa + fb, a, b, 0});
    heap.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
  }
  assign_depths(nodes, heap.top().second, 0, lengths);

  // Enforce the length limit by repeatedly flattening over-long codes: the
  // standard "lazy" fix preserves the Kraft inequality by borrowing from
  // shorter codes. Simple and optimal enough for our alphabets.
  unsigned longest = *std::max_element(lengths.begin(), lengths.end());
  if (longest > max_len) {
    // Count codes per length, clamp, then repair Kraft sum.
    std::vector<std::uint32_t> bl_count(max_len + 1, 0);
    for (auto& l : lengths) {
      if (l == 0) continue;
      if (l > max_len) l = static_cast<std::uint8_t>(max_len);
      ++bl_count[l];
    }
    // Kraft sum scaled by 2^max_len must be <= 2^max_len.
    std::uint64_t kraft = 0;
    for (unsigned l = 1; l <= max_len; ++l) {
      kraft += static_cast<std::uint64_t>(bl_count[l]) << (max_len - l);
    }
    const std::uint64_t budget = 1ull << max_len;
    while (kraft > budget) {
      // Demote one code from the longest non-empty length below max_len...
      // i.e. take a code of length max_len and pair it under a code of
      // length l < max_len (increasing that one). The cheapest repair:
      // find a symbol at max_len and one at the largest l < max_len, but
      // the standard trick is simpler: move one max_len code to max_len
      // (no-op) — instead increment a shorter code's length.
      unsigned l = max_len - 1;
      while (l > 0 && bl_count[l] == 0) --l;
      CESM_REQUIRE(l > 0);
      --bl_count[l];
      ++bl_count[l + 1];
      kraft -= (1ull << (max_len - l)) - (1ull << (max_len - l - 1));
    }
    // Reassign lengths: shortest lengths to most frequent symbols.
    std::vector<std::size_t> order;
    for (std::size_t s = 0; s < freqs.size(); ++s) {
      if (freqs[s] > 0) order.push_back(s);
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return freqs[a] > freqs[b]; });
    std::size_t idx = 0;
    for (unsigned l = 1; l <= max_len; ++l) {
      for (std::uint32_t c = 0; c < bl_count[l]; ++c) {
        lengths[order[idx++]] = static_cast<std::uint8_t>(l);
      }
    }
    CESM_REQUIRE(idx == order.size());
  }
  return lengths;
}

HuffmanEncoder::HuffmanEncoder(std::span<const std::uint8_t> lengths)
    : codes_(lengths.size(), 0), lengths_(lengths.begin(), lengths.end()) {
  // Canonical code assignment (RFC 1951 §3.2.2, MSB-first).
  std::uint32_t bl_count[16] = {};
  for (auto l : lengths_) {
    CESM_REQUIRE(l <= 15);
    if (l) ++bl_count[l];
  }
  std::uint32_t next_code[16] = {};
  std::uint32_t code = 0;
  for (unsigned l = 1; l <= 15; ++l) {
    code = (code + bl_count[l - 1]) << 1;
    next_code[l] = code;
  }
  for (std::size_t s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s]) codes_[s] = next_code[lengths_[s]]++;
  }
}

HuffmanDecoder::HuffmanDecoder(std::span<const std::uint8_t> lengths) {
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > kMaxLen) throw FormatError("huffman length > 15");
    if (lengths[s]) ++count_[lengths[s]];
  }
  std::uint64_t kraft = 0;
  for (unsigned l = 1; l <= kMaxLen; ++l) {
    kraft += static_cast<std::uint64_t>(count_[l]) << (kMaxLen - l);
  }
  if (kraft > (1ull << kMaxLen)) throw FormatError("oversubscribed huffman code");

  std::uint32_t code = 0;
  std::uint32_t offset = 0;
  for (unsigned l = 1; l <= kMaxLen; ++l) {
    code = (code + count_[l - 1]) << 1;
    first_code_[l] = code;
    offset_[l] = offset;
    offset += count_[l];
  }
  first_code_[kMaxLen + 1] = 0xffffffffu;  // sentinel

  sorted_symbols_.resize(offset);
  std::uint32_t fill[kMaxLen + 1] = {};
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const unsigned l = lengths[s];
    if (l) sorted_symbols_[offset_[l] + fill[l]++] = static_cast<std::uint32_t>(s);
  }
}

unsigned HuffmanDecoder::get(BitReader& br) const {
  std::uint32_t code = 0;
  for (unsigned l = 1; l <= kMaxLen; ++l) {
    code = (code << 1) | static_cast<std::uint32_t>(br.get(1));
    if (count_[l] != 0 && code < first_code_[l] + count_[l] && code >= first_code_[l]) {
      return sorted_symbols_[offset_[l] + (code - first_code_[l])];
    }
  }
  throw FormatError("invalid huffman code");
}

}  // namespace cesm::comp
