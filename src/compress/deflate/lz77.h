#pragma once
// LZ77 string matching with hash chains (the dictionary stage of the
// deflate-class codec).

#include <cstdint>
#include <span>
#include <vector>

namespace cesm::comp {

/// One LZ77 token: either a literal byte or a (length, distance) match.
struct Lz77Token {
  std::uint16_t length = 0;    ///< 0 => literal
  std::uint16_t distance = 0;  ///< backward distance, 1..32768
  std::uint8_t literal = 0;
};

struct Lz77Params {
  std::size_t window = 32 * 1024;   ///< max backward distance
  std::size_t min_match = 4;        ///< shortest match worth emitting
  std::size_t max_match = 258;      ///< longest emitted match
  std::size_t max_chain = 64;       ///< hash-chain probes per position
  bool lazy = true;                 ///< one-step lazy matching
};

/// Tokenize `input` greedily (optionally with one-step lazy evaluation).
std::vector<Lz77Token> lz77_tokenize(std::span<const std::uint8_t> input,
                                     const Lz77Params& params = {});

/// Reconstruct the byte stream from tokens. `expected_size` reserves the
/// output and is validated against the result.
std::vector<std::uint8_t> lz77_reconstruct(std::span<const Lz77Token> tokens,
                                           std::size_t expected_size);

}  // namespace cesm::comp
