#pragma once
// Floating-point ordered-integer mapping and the Lorenzo predictor family
// used by the fpzip-class codec.
//
// The float -> unsigned map is order-preserving: compare as unsigned ==
// compare as float (NaNs excluded by the climate substrate). Prediction and
// residuals then live in integer space where truncation gives the paper's
// "bits of precision" semantics exactly.

#include <bit>
#include <cstdint>
#include <span>
#include <type_traits>

namespace cesm::comp {

/// Order-preserving map IEEE-754 binary32 -> uint32.
inline std::uint32_t float_to_ordered(float f) {
  const auto b = std::bit_cast<std::uint32_t>(f);
  return (b & 0x80000000u) ? ~b : (b | 0x80000000u);
}

inline float ordered_to_float(std::uint32_t u) {
  const std::uint32_t b = (u & 0x80000000u) ? (u & 0x7fffffffu) : ~u;
  return std::bit_cast<float>(b);
}

/// Order-preserving map IEEE-754 binary64 -> uint64.
inline std::uint64_t double_to_ordered(double d) {
  const auto b = std::bit_cast<std::uint64_t>(d);
  return (b & 0x8000000000000000ull) ? ~b : (b | 0x8000000000000000ull);
}

inline double ordered_to_double(std::uint64_t u) {
  const std::uint64_t b = (u & 0x8000000000000000ull) ? (u & 0x7fffffffffffffffull) : ~u;
  return std::bit_cast<double>(b);
}

/// Lorenzo predictor over a row-major array of ordered integers, evaluated
/// causally (only already-decoded neighbours participate). Rank 1 uses the
/// previous sample; rank 2 uses left + up - upleft; rank 3 adds the plane
/// dimension (7-neighbour parallelepiped corner).
///
/// All arithmetic is modular in U: the encoder transmits (value - predict)
/// mod 2^bits and the decoder inverts it exactly, so no overflow handling
/// is needed even for full-width 64-bit data.
///
/// Out-of-array neighbours contribute 0, which predicts the first sample as
/// 0 — harmless, the residual coder absorbs it.
template <typename U>
class LorenzoPredictor {
 public:
  LorenzoPredictor(std::span<const U> values, std::size_t rows, std::size_t cols,
                   std::size_t planes)
      : v_(values), rows_(rows), cols_(cols), planes_(planes) {}

  /// Modular prediction for linear index i (value at i not consulted).
  [[nodiscard]] U predict(std::size_t i) const {
    const std::size_t plane_size = rows_ * cols_;
    const std::size_t p = planes_ > 1 ? i / plane_size : 0;
    const std::size_t rem = planes_ > 1 ? i % plane_size : i;
    const std::size_t r = cols_ > 0 ? rem / cols_ : 0;
    const std::size_t c = cols_ > 0 ? rem % cols_ : 0;

    const auto at = [&](std::size_t pp, std::size_t rr, std::size_t cc) -> U {
      return v_[pp * plane_size + rr * cols_ + cc];
    };

    if (planes_ > 1 && p > 0 && r > 0 && c > 0) {
      // 3-D Lorenzo corner.
      return static_cast<U>(at(p, r, c - 1) + at(p, r - 1, c) + at(p - 1, r, c) -
                            at(p, r - 1, c - 1) - at(p - 1, r, c - 1) -
                            at(p - 1, r - 1, c) + at(p - 1, r - 1, c - 1));
    }
    if (r > 0 && c > 0) {
      return static_cast<U>(at(p, r, c - 1) + at(p, r - 1, c) - at(p, r - 1, c - 1));
    }
    if (c > 0) return at(p, r, c - 1);
    if (r > 0) return at(p, r - 1, c);
    if (p > 0) return at(p - 1, r, c);
    return 0;
  }

 private:
  std::span<const U> v_;
  std::size_t rows_, cols_, planes_;
};

/// Zig-zag fold of a modular difference into an unsigned magnitude code:
/// the difference is interpreted as two's-complement signed so that small
/// prediction errors of either sign yield small codes.
template <typename U>
U zigzag_encode(U diff) {
  using S = std::make_signed_t<U>;
  const S s = static_cast<S>(diff);
  return static_cast<U>((static_cast<U>(s) << 1) ^ static_cast<U>(s >> (sizeof(U) * 8 - 1)));
}

template <typename U>
U zigzag_decode(U z) {
  return static_cast<U>((z >> 1) ^ (~(z & 1) + 1));
}

}  // namespace cesm::comp
