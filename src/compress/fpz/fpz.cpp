#include "compress/fpz/fpz.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "compress/fpz/predictor.h"
#include "compress/rangecoder.h"
#include "compress/residual.h"
#include "util/failpoint.h"

namespace cesm::comp {

namespace {

constexpr std::uint32_t kFpzMagic = 0x315a5046;  // "FPZ1"

struct Dims3 {
  std::size_t planes = 1, rows = 1, cols = 1;
};

Dims3 to_dims3(const Shape& shape) {
  Dims3 d;
  switch (shape.rank()) {
    case 1:
      d.cols = shape.dims[0];
      break;
    case 2:
      d.rows = shape.dims[0];
      d.cols = shape.dims[1];
      break;
    case 3:
      d.planes = shape.dims[0];
      d.rows = shape.dims[1];
      d.cols = shape.dims[2];
      break;
    default:
      throw InvalidArgument("fpzip supports rank 1..3");
  }
  return d;
}

template <typename U, typename T, U (*ToOrdered)(T), T (*FromOrdered)(U)>
Bytes fpz_encode_impl(std::span<const T> data, const Shape& shape, unsigned prec) {
  CESM_REQUIRE(shape.count() == data.size());
  constexpr unsigned kTotalBits = sizeof(U) * 8;
  CESM_REQUIRE(prec >= 8 && prec <= kTotalBits && prec % 8 == 0);
  const unsigned shift = kTotalBits - prec;

  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kFpzMagic, shape);
  w.u8(static_cast<std::uint8_t>(prec));
  w.u8(sizeof(T));

  std::vector<U> q(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    q[i] = ToOrdered(data[i]) >> shift;
  }

  const Dims3 d = to_dims3(shape);
  LorenzoPredictor<U> pred(std::span<const U>(q), d.rows, d.cols, d.planes);

  RangeEncoder enc(out);
  ResidualCoder coder;
  for (std::size_t i = 0; i < q.size(); ++i) {
    const U residual = static_cast<U>(q[i] - pred.predict(i));
    coder.encode(enc, zigzag_encode(residual));
  }
  enc.finish();
  return out;
}

template <typename U, typename T, U (*ToOrdered)(T), T (*FromOrdered)(U)>
std::vector<T> fpz_decode_impl(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const Shape shape = wire::read_header(r, kFpzMagic);
  const unsigned prec = r.u8();
  const std::size_t elem = r.u8();
  if (elem != sizeof(T)) throw FormatError("fpz element size mismatch");
  constexpr unsigned kTotalBits = sizeof(U) * 8;
  if (prec < 8 || prec > kTotalBits || prec % 8 != 0) throw FormatError("fpz bad precision");
  const unsigned shift = kTotalBits - prec;

  const std::size_t n = shape.count();
  std::vector<U> q(n);
  const Dims3 d = to_dims3(shape);
  LorenzoPredictor<U> pred(std::span<const U>(q), d.rows, d.cols, d.planes);

  RangeDecoder dec(stream.subspan(r.position()));
  ResidualCoder coder;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t z = coder.decode(dec);
    if constexpr (kTotalBits < 64) {
      if ((z >> kTotalBits) != 0) throw FormatError("fpz residual out of range");
    }
    q[i] = static_cast<U>(pred.predict(i) + zigzag_decode(static_cast<U>(z)));
  }

  std::vector<T> data(n);
  const U half = shift > 0 ? (U{1} << (shift - 1)) : U{0};
  for (std::size_t i = 0; i < n; ++i) {
    // Re-centre within the truncated bin to halve the worst-case error.
    data[i] = FromOrdered(static_cast<U>((q[i] << shift) | half));
  }
  return data;
}

}  // namespace

FpzCodec::FpzCodec(unsigned precision_bits) : precision_bits_(precision_bits) {
  CESM_REQUIRE(precision_bits >= 8 && precision_bits <= 64 && precision_bits % 8 == 0);
}

std::string FpzCodec::name() const {
  return "fpzip-" + std::to_string(precision_bits_);
}

Bytes FpzCodec::encode(std::span<const float> data, const Shape& shape) const {
  CESM_REQUIRE(precision_bits_ <= 32);
  return fpz_encode_impl<std::uint32_t, float, float_to_ordered, ordered_to_float>(
      data, shape, precision_bits_);
}

std::vector<float> FpzCodec::decode(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("fpz.decode");
  return fpz_decode_impl<std::uint32_t, float, float_to_ordered, ordered_to_float>(stream);
}

Bytes FpzCodec::encode64(std::span<const double> data, const Shape& shape) const {
  return fpz_encode_impl<std::uint64_t, double, double_to_ordered, ordered_to_double>(
      data, shape, precision_bits_);
}

std::vector<double> FpzCodec::decode64(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("fpz.decode");
  return fpz_decode_impl<std::uint64_t, double, double_to_ordered, ordered_to_double>(stream);
}

}  // namespace cesm::comp
