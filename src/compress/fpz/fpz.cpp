#include "compress/fpz/fpz.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "compress/codec_kernels.h"
#include "compress/fpz/predictor.h"
#include "compress/rangecoder.h"
#include "compress/residual.h"
#include "util/failpoint.h"

namespace cesm::comp {

namespace {

constexpr std::uint32_t kFpzMagic = 0x315a5046;  // "FPZ1"

struct Dims3 {
  std::size_t planes = 1, rows = 1, cols = 1;
};

Dims3 to_dims3(const Shape& shape) {
  Dims3 d;
  switch (shape.rank()) {
    case 1:
      d.cols = shape.dims[0];
      break;
    case 2:
      d.rows = shape.dims[0];
      d.cols = shape.dims[1];
      break;
    case 3:
      d.planes = shape.dims[0];
      d.rows = shape.dims[1];
      d.cols = shape.dims[2];
      break;
    default:
      throw InvalidArgument("fpzip supports rank 1..3");
  }
  return d;
}

// Kernel shims keyed on element width (codec_kernels.h is not templated).
inline void ordered_from(const float* s, std::uint32_t* d, std::size_t n, unsigned sh) {
  kernels::ordered_from_f32(s, d, n, sh);
}
inline void ordered_from(const double* s, std::uint64_t* d, std::size_t n, unsigned sh) {
  kernels::ordered_from_f64(s, d, n, sh);
}
inline void from_ordered(const std::uint32_t* q, float* d, std::size_t n, unsigned sh,
                         std::uint32_t half) {
  kernels::f32_from_ordered(q, d, n, sh, half);
}
inline void from_ordered(const std::uint64_t* q, double* d, std::size_t n, unsigned sh,
                         std::uint64_t half) {
  kernels::f64_from_ordered(q, d, n, sh, half);
}
inline void lorenzo_residuals(const std::uint32_t* q, std::uint32_t* zz,
                              kernels::Dims d) {
  kernels::lorenzo_residuals_u32(q, zz, d);
}
inline void lorenzo_residuals(const std::uint64_t* q, std::uint64_t* zz,
                              kernels::Dims d) {
  kernels::lorenzo_residuals_u64(q, zz, d);
}
inline void lorenzo_reconstruct(std::uint32_t* q, const std::uint32_t* zz,
                                kernels::Dims d) {
  kernels::lorenzo_reconstruct_u32(q, zz, d);
}
inline void lorenzo_reconstruct(std::uint64_t* q, const std::uint64_t* zz,
                                kernels::Dims d) {
  kernels::lorenzo_reconstruct_u64(q, zz, d);
}

kernels::Dims to_kernel_dims(const Dims3& d) { return {d.planes, d.rows, d.cols}; }

template <typename U, typename T>
Bytes fpz_encode_impl(std::span<const T> data, const Shape& shape, unsigned prec) {
  CESM_REQUIRE(shape.count() == data.size());
  constexpr unsigned kTotalBits = sizeof(U) * 8;
  CESM_REQUIRE(prec >= 8 && prec <= kTotalBits && prec % 8 == 0);
  const unsigned shift = kTotalBits - prec;

  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kFpzMagic, shape);
  w.u8(static_cast<std::uint8_t>(prec));
  w.u8(sizeof(T));

  const Dims3 d = to_dims3(shape);
  std::vector<U> q(data.size());
  ordered_from(data.data(), q.data(), data.size(), shift);

  // Residual formation is a batch kernel; the entropy coder then runs over
  // a flat zig-zag buffer with no per-element index arithmetic.
  std::vector<U> zz(data.size());
  if (!q.empty()) lorenzo_residuals(q.data(), zz.data(), to_kernel_dims(d));

  RangeEncoder enc(out);
  ResidualCoder coder;
  for (std::size_t i = 0; i < zz.size(); ++i) {
    coder.encode(enc, zz[i]);
  }
  enc.finish();
  return out;
}

template <typename U, typename T>
std::vector<T> fpz_decode_impl(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const Shape shape = wire::read_header(r, kFpzMagic);
  const unsigned prec = r.u8();
  const std::size_t elem = r.u8();
  if (elem != sizeof(T)) throw FormatError("fpz element size mismatch");
  constexpr unsigned kTotalBits = sizeof(U) * 8;
  if (prec < 8 || prec > kTotalBits || prec % 8 != 0) throw FormatError("fpz bad precision");
  const unsigned shift = kTotalBits - prec;

  const std::size_t n = shape.count();
  const Dims3 d = to_dims3(shape);

  // Decode every residual symbol first (the adaptive models never consult
  // reconstructed values), then invert the Lorenzo transform as one batch.
  std::vector<U> zz(n);
  RangeDecoder dec(stream.subspan(r.position()));
  ResidualCoder coder;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t z = coder.decode(dec);
    if constexpr (kTotalBits < 64) {
      if ((z >> kTotalBits) != 0) throw FormatError("fpz residual out of range");
    }
    zz[i] = static_cast<U>(z);
  }

  std::vector<U> q(n);
  if (n > 0) lorenzo_reconstruct(q.data(), zz.data(), to_kernel_dims(d));

  std::vector<T> data(n);
  const U half = shift > 0 ? (U{1} << (shift - 1)) : U{0};
  // Re-centre within the truncated bin to halve the worst-case error.
  from_ordered(q.data(), data.data(), n, shift, half);
  return data;
}

// Variant-invariant stage of the float encode: the order-preserving
// integer map at full precision. ordered_from truncates as
// `ordered_map(v) >> shift`, so every precision variant's q is the plan's
// q0 right-shifted — the Lorenzo transform and entropy coder then see
// exactly the integers the direct path computes. (Lorenzo itself is not
// shift-commutative, so residual formation stays per-variant.)
struct FpzPlan final : PrepPlan {
  std::vector<std::uint32_t> q0;

  [[nodiscard]] std::size_t resident_bytes() const override {
    return q0.capacity() * sizeof(std::uint32_t) + sizeof(*this);
  }
};

Bytes fpz_encode_planned(std::span<const std::uint32_t> q0, const Shape& shape,
                         unsigned prec) {
  CESM_REQUIRE(shape.count() == q0.size());
  CESM_REQUIRE(prec >= 8 && prec <= 32 && prec % 8 == 0);
  const unsigned shift = 32 - prec;

  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kFpzMagic, shape);
  w.u8(static_cast<std::uint8_t>(prec));
  w.u8(sizeof(float));

  const Dims3 d = to_dims3(shape);
  std::vector<std::uint32_t> q(q0.size());
  for (std::size_t i = 0; i < q0.size(); ++i) q[i] = q0[i] >> shift;

  std::vector<std::uint32_t> zz(q.size());
  if (!q.empty()) lorenzo_residuals(q.data(), zz.data(), to_kernel_dims(d));

  RangeEncoder enc(out);
  ResidualCoder coder;
  for (std::size_t i = 0; i < zz.size(); ++i) {
    coder.encode(enc, zz[i]);
  }
  enc.finish();
  return out;
}

}  // namespace

FpzCodec::FpzCodec(unsigned precision_bits) : precision_bits_(precision_bits) {
  CESM_REQUIRE(precision_bits >= 8 && precision_bits <= 64 && precision_bits % 8 == 0);
}

std::string FpzCodec::name() const {
  return "fpzip-" + std::to_string(precision_bits_);
}

Bytes FpzCodec::encode(std::span<const float> data, const Shape& shape) const {
  CESM_REQUIRE(precision_bits_ <= 32);
  return fpz_encode_impl<std::uint32_t>(data, shape, precision_bits_);
}

std::vector<float> FpzCodec::decode(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("fpz.decode");
  return fpz_decode_impl<std::uint32_t, float>(stream);
}

std::string FpzCodec::prep_key() const {
  // The ordered map is element-width specific; only the float path is
  // plan-driven (the suite sweeps float fields). All float precisions
  // share one key — and therefore one plan per block.
  return precision_bits_ <= 32 ? "fpz" : std::string{};
}

PrepPlanPtr FpzCodec::build_prep(std::span<const float> data, const Shape& shape) const {
  if (precision_bits_ > 32) return nullptr;
  CESM_REQUIRE(shape.count() == data.size());
  (void)to_dims3(shape);  // same rank validation (and error) as encode()
  auto plan = std::make_shared<FpzPlan>();
  plan->q0.resize(data.size());
  ordered_from(data.data(), plan->q0.data(), data.size(), 0);
  return plan;
}

Bytes FpzCodec::encode_with_prep(const PrepPlan& plan, std::span<const float> data,
                                 const Shape& shape) const {
  CESM_REQUIRE(precision_bits_ <= 32);
  const auto* p = dynamic_cast<const FpzPlan*>(&plan);
  CESM_REQUIRE(p != nullptr && p->q0.size() == data.size());
  return fpz_encode_planned(p->q0, shape, precision_bits_);
}

Bytes FpzCodec::encode64(std::span<const double> data, const Shape& shape) const {
  return fpz_encode_impl<std::uint64_t>(data, shape, precision_bits_);
}

std::vector<double> FpzCodec::decode64(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("fpz.decode");
  return fpz_decode_impl<std::uint64_t, double>(stream);
}

}  // namespace cesm::comp
