#pragma once
// fpzip-class predictive floating-point codec.
//
// Faithful to the published fpzip design axes the paper exercises:
//   * lossless mode plus lossy modes keeping a multiple-of-8 number of
//     bits of precision (fpzip-16 / fpzip-24 / fpzip-32 in the tables);
//   * prediction (Lorenzo) on an order-preserving integer mapping of the
//     floats, residuals entropy-coded (adaptive range coder here);
//   * bounded *relative* error behaviour: truncation operates on the
//     floating-point representation, so the absolute error scales with
//     the magnitude of each value;
//   * 32- and 64-bit inputs.

#include "compress/codec.h"

namespace cesm::comp {

class FpzCodec final : public Codec {
 public:
  /// `precision_bits` must be 8, 16, 24 or 32 for floats (32 = lossless);
  /// up to 64 in steps of 8 for doubles (64 = lossless).
  explicit FpzCodec(unsigned precision_bits);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string family() const override { return "fpzip"; }
  [[nodiscard]] bool is_lossless() const override { return precision_bits_ >= 32; }

  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.lossless_mode = true,
                        .special_values = false,
                        .freely_available = true,
                        .fixed_quality = false,
                        .fixed_rate = false,
                        .handles_64bit = true};
  }

  [[nodiscard]] Bytes encode(std::span<const float> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<float> decode(std::span<const std::uint8_t> stream) const override;
  [[nodiscard]] Bytes encode64(std::span<const double> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<double> decode64(
      std::span<const std::uint8_t> stream) const override;

  /// Prep plan: the full-precision ordered-integer map, shared by every
  /// float precision variant (see the variant-sweep engine in prep.h).
  [[nodiscard]] std::string prep_key() const override;
  [[nodiscard]] PrepPlanPtr build_prep(std::span<const float> data,
                                       const Shape& shape) const override;
  [[nodiscard]] Bytes encode_with_prep(const PrepPlan& plan, std::span<const float> data,
                                       const Shape& shape) const override;

  [[nodiscard]] unsigned precision_bits() const { return precision_bits_; }

 private:
  unsigned precision_bits_;
};

}  // namespace cesm::comp
