#include "compress/special.h"

#include <bit>
#include <vector>

#include "compress/rangecoder.h"
#include "compress/residual.h"
#include "util/failpoint.h"

namespace cesm::comp {

namespace {
constexpr std::uint32_t kSpcMagic = 0x31435053;  // "SPC1"

// The wrapper's variant-invariant stage: the patched field, the complete
// stream prefix (magic + fill + RLE bitmap — none of it depends on the
// inner variant), and the inner codec's own plan over the patched data
// when it has one. APAX's three fixed-rate variants share the patch work
// even though the inner codec is unplannable.
struct SpecialPlan final : PrepPlan {
  std::vector<float> patched;
  Bytes prefix;
  PrepPlanPtr inner;

  [[nodiscard]] std::size_t resident_bytes() const override {
    return patched.capacity() * sizeof(float) + prefix.capacity() + sizeof(*this) +
           (inner ? inner->resident_bytes() : 0);
  }
};

}  // namespace

std::vector<std::uint8_t> patch_fill_values(std::span<float> data, float fill) {
  std::vector<std::uint8_t> valid(data.size(), 1);
  // First pass: mask and compute the mean of valid points (seed value for
  // leading fills).
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] == fill) {
      valid[i] = 0;
    } else {
      sum += static_cast<double>(data[i]);
      ++count;
    }
  }
  float last = count ? static_cast<float>(sum / static_cast<double>(count)) : 0.0f;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (valid[i]) {
      last = data[i];
    } else {
      data[i] = last;
    }
  }
  return valid;
}

SpecialValueCodec::SpecialValueCodec(CodecPtr inner, float fill_value)
    : inner_(std::move(inner)), fill_(fill_value) {
  CESM_REQUIRE(inner_ != nullptr);
}

namespace {

/// Emit the wrapper's stream prefix: magic, fill, and (when any point was
/// patched) the run-length-coded validity bitmap.
Bytes make_prefix(float fill, std::span<const std::uint8_t> valid) {
  bool any_missing = false;
  for (std::uint8_t v : valid) {
    if (!v) {
      any_missing = true;
      break;
    }
  }

  Bytes out;
  ByteWriter w(out);
  w.u32(kSpcMagic);
  w.f32(fill);
  w.u8(any_missing ? 1 : 0);
  if (any_missing) {
    // Alternating run lengths starting with a (possibly empty) valid run,
    // range-coded like the GRIB2 bitmap.
    Bytes bitmap;
    RangeEncoder enc(bitmap);
    ResidualCoder coder;
    std::size_t i = 0;
    bool current = true;
    while (i < valid.size()) {
      std::size_t run = 0;
      while (i + run < valid.size() && (valid[i + run] != 0) == current) ++run;
      coder.encode(enc, run);
      i += run;
      current = !current;
    }
    enc.finish();
    w.u64(valid.size());
    w.u64(bitmap.size());
    w.raw(bitmap);
  }
  return out;
}

}  // namespace

Bytes SpecialValueCodec::encode(std::span<const float> data, const Shape& shape) const {
  std::vector<float> patched(data.begin(), data.end());
  const std::vector<std::uint8_t> valid = patch_fill_values(patched, fill_);

  Bytes out = make_prefix(fill_, valid);
  ByteWriter w(out);
  const Bytes inner_stream = inner_->encode(patched, shape);
  w.raw(inner_stream);
  return out;
}

std::string SpecialValueCodec::prep_key() const {
  std::string key = "spc:f" + std::to_string(std::bit_cast<std::uint32_t>(fill_));
  const std::string inner_key = inner_->prep_key();
  if (!inner_key.empty()) key += '+' + inner_key;
  // With an unplannable inner codec the plan still carries the patched
  // field and prefix, which every such wrapper produces identically for
  // the same fill — so the bare key is safely shared across them.
  return key;
}

PrepPlanPtr SpecialValueCodec::build_prep(std::span<const float> data,
                                          const Shape& shape) const {
  auto plan = std::make_shared<SpecialPlan>();
  plan->patched.assign(data.begin(), data.end());
  const std::vector<std::uint8_t> valid = patch_fill_values(plan->patched, fill_);
  plan->prefix = make_prefix(fill_, valid);
  if (!inner_->prep_key().empty()) {
    plan->inner = inner_->build_prep(plan->patched, shape);
  }
  return plan;
}

Bytes SpecialValueCodec::encode_with_prep(const PrepPlan& plan,
                                          std::span<const float> data,
                                          const Shape& shape) const {
  const auto* p = dynamic_cast<const SpecialPlan*>(&plan);
  CESM_REQUIRE(p != nullptr && p->patched.size() == data.size());
  Bytes out = p->prefix;
  ByteWriter w(out);
  const Bytes inner_stream =
      p->inner != nullptr ? inner_->encode_with_prep(*p->inner, p->patched, shape)
                          : inner_->encode(p->patched, shape);
  w.raw(inner_stream);
  return out;
}

std::vector<float> SpecialValueCodec::decode(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("special.decode");
  ByteReader r(stream);
  if (r.u32() != kSpcMagic) throw FormatError("bad special-value wrapper magic");
  const float fill = r.f32();
  const bool any_missing = r.u8() != 0;

  std::vector<std::uint8_t> valid;
  if (any_missing) {
    const std::uint64_t n = r.u64();
    if (n > comp::wire::kMaxDecodeElements) throw FormatError("implausible bitmap size");
    const std::uint64_t bitmap_size = r.u64();
    RangeDecoder dec(r.raw(bitmap_size));
    ResidualCoder coder;
    valid.assign(n, 0);
    std::size_t i = 0;
    bool current = true;
    while (i < n) {
      const std::uint64_t run = coder.decode(dec);
      if (run > n - i) throw FormatError("bitmap run overflow");
      if (current) {
        std::fill(valid.begin() + static_cast<std::ptrdiff_t>(i),
                  valid.begin() + static_cast<std::ptrdiff_t>(i + run), std::uint8_t{1});
      }
      i += run;
      current = !current;
    }
  }

  std::vector<float> data = inner_->decode(stream.subspan(r.position()));
  if (any_missing) {
    if (valid.size() != data.size()) throw FormatError("bitmap/payload size mismatch");
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (!valid[i]) data[i] = fill;
    }
  }
  return data;
}

}  // namespace cesm::comp
