#include "compress/prep.h"

#include <utility>

#include "util/failpoint.h"
#include "util/trace.h"

namespace cesm::comp {

PlanStore::PlanStore(std::size_t cap_bytes, util::MemoryBudget* budget)
    : cap_bytes_(cap_bytes), budget_(budget) {}

PlanStore::~PlanStore() { clear(); }

Bytes PlanStore::encode(const Codec& codec, std::span<const float> data,
                        const Shape& shape, std::uint64_t block) {
  if (cap_bytes_ == 0) return codec.encode(data, shape);
  const std::string key = codec.prep_key();
  if (key.empty()) return codec.encode(data, shape);
  const std::string full = key + '#' + std::to_string(block);

  PrepPlanPtr plan = lookup(full);
  if (plan == nullptr) {
    try {
      CESM_FAILPOINT("comp.prep_plan");
      plan = codec.build_prep(data, shape);
    } catch (const InvalidArgument&) {
      // Exception parity: build_prep validates its input exactly like
      // encode() would, so the direct path is guaranteed to throw the
      // same error — propagate it rather than encoding twice.
      throw;
    } catch (const Error&) {
      // Injected plan-stage fault (or any other plan-only failure): the
      // sweep must not be poisoned — fall back to the direct encode.
      trace::counter_add("prep.plan_faults", 1);
      return codec.encode(data, shape);
    }
    if (plan == nullptr) return codec.encode(data, shape);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++built_;
    }
    trace::counter_add("prep.plan_built", 1);
    insert(full, plan);
  } else {
    trace::counter_add("prep.plan_reused", 1);
  }
  return codec.encode_with_prep(*plan, data, shape);
}

void PlanStore::clear() {
  std::size_t released = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    released = resident_;
    map_.clear();
    resident_ = 0;
  }
  if (budget_ != nullptr && released > 0) budget_->release(released);
}

std::uint64_t PlanStore::plans_built() const {
  std::lock_guard<std::mutex> lock(mu_);
  return built_;
}

std::uint64_t PlanStore::plans_reused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reused_;
}

std::size_t PlanStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_;
}

PrepPlanPtr PlanStore::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  it->second.last_use = ++tick_;
  ++reused_;
  return it->second.plan;
}

bool PlanStore::make_room(std::size_t need) {
  if (need > cap_bytes_) return false;
  while (resident_ + need > cap_bytes_) {
    auto victim = map_.end();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (victim == map_.end() || it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == map_.end()) return false;
    const std::size_t freed = victim->second.bytes;
    map_.erase(victim);
    resident_ -= freed;
    if (budget_ != nullptr) budget_->release(freed);
    trace::counter_add("prep.plan_evicted", 1);
  }
  return true;
}

void PlanStore::insert(const std::string& key, const PrepPlanPtr& plan) {
  const std::size_t bytes = plan->resident_bytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.count(key) != 0) return;  // lost a build race; keep the incumbent
  if (!make_room(bytes)) return;     // plan larger than the whole cap
  if (budget_ != nullptr) {
    try {
      budget_->charge("comp.prep_plan", bytes);
    } catch (const Error&) {
      // Out of budget headroom: stay uncached. The freshly built plan is
      // still used for the current encode, then dropped.
      trace::counter_add("prep.plan_overflow", 1);
      return;
    }
  }
  Entry& e = map_[key];
  e.plan = plan;
  e.bytes = bytes;
  e.last_use = ++tick_;
  resident_ += bytes;
}

RoundTrip planned_round_trip(PlanStore* plans, const Codec& codec,
                             std::span<const float> data, const Shape& shape,
                             std::uint64_t block) {
  if (plans == nullptr) return round_trip(codec, data, shape);
  RoundTrip rt;
  Bytes stream = plans->encode(codec, data, shape, block);
  rt.compressed_bytes = stream.size();
  rt.cr = compression_ratio(stream.size(), data.size());
  rt.reconstructed = codec.decode(stream);
  return rt;
}

}  // namespace cesm::comp
