#include "compress/mafisc.h"

#include <array>
#include <cmath>
#include <cstring>

#include "compress/deflate/deflate.h"
#include "compress/fpz/predictor.h"  // ordered-int maps
#include "util/failpoint.h"

namespace cesm::comp {

namespace {

constexpr std::uint32_t kMafiscMagic = 0x3146414d;  // "MAF1"

template <typename U>
void apply_filter(std::span<U> block, MafiscFilter filter, std::size_t stride) {
  // Filters run back-to-front so each step sees original predecessors.
  switch (filter) {
    case MafiscFilter::kIdentity:
      break;
    case MafiscFilter::kDelta:
      for (std::size_t i = block.size(); i-- > 1;) {
        block[i] = static_cast<U>(block[i] - block[i - 1]);
      }
      break;
    case MafiscFilter::kDelta2:
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = block.size(); i-- > 1;) {
          block[i] = static_cast<U>(block[i] - block[i - 1]);
        }
      }
      break;
    case MafiscFilter::kStrideDelta:
      for (std::size_t i = block.size(); i-- > stride;) {
        block[i] = static_cast<U>(block[i] - block[i - stride]);
      }
      break;
  }
}

template <typename U>
void invert_filter(std::span<U> block, MafiscFilter filter, std::size_t stride) {
  switch (filter) {
    case MafiscFilter::kIdentity:
      break;
    case MafiscFilter::kDelta:
      for (std::size_t i = 1; i < block.size(); ++i) {
        block[i] = static_cast<U>(block[i] + block[i - 1]);
      }
      break;
    case MafiscFilter::kDelta2:
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = 1; i < block.size(); ++i) {
          block[i] = static_cast<U>(block[i] + block[i - 1]);
        }
      }
      break;
    case MafiscFilter::kStrideDelta:
      for (std::size_t i = stride; i < block.size(); ++i) {
        block[i] = static_cast<U>(block[i] + block[i - stride]);
      }
      break;
  }
}

/// Cheap compressibility estimate: entropy of the high bytes (where the
/// filters act) plus zero-byte density of the whole representation.
template <typename U>
double filtered_cost(std::span<const U> block) {
  std::array<std::uint64_t, 256> hist{};
  std::size_t zero_bytes = 0;
  for (U v : block) {
    for (std::size_t b = 0; b < sizeof(U); ++b) {
      const auto byte = static_cast<std::uint8_t>(v >> (8 * b));
      if (byte == 0) ++zero_bytes;
      if (b == sizeof(U) - 1) ++hist[byte];
    }
  }
  double entropy = 0.0;
  const double n = static_cast<double>(block.size());
  for (std::uint64_t c : hist) {
    if (!c) continue;
    const double p = static_cast<double>(c) / n;
    entropy -= p * std::log2(p);
  }
  const double zero_frac =
      static_cast<double>(zero_bytes) / (n * static_cast<double>(sizeof(U)));
  return entropy - 8.0 * zero_frac;  // lower is better
}

template <typename U, typename T, U (*ToOrdered)(T), T (*FromOrdered)(U)>
Bytes mafisc_encode(std::span<const T> data, const Shape& shape, std::size_t block_size,
                    int effort) {
  CESM_REQUIRE(shape.count() == data.size());
  const std::size_t stride = shape.rank() > 1 ? shape.dims.back() : 1;

  std::vector<U> ordered(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) ordered[i] = ToOrdered(data[i]);

  Bytes filters;
  std::vector<U> best(data.size());
  std::vector<U> candidate;
  for (std::size_t lo = 0; lo < ordered.size(); lo += block_size) {
    const std::size_t len = std::min(block_size, ordered.size() - lo);
    MafiscFilter best_filter = MafiscFilter::kIdentity;
    double best_cost = 0.0;
    bool first = true;
    for (MafiscFilter f : {MafiscFilter::kIdentity, MafiscFilter::kDelta,
                           MafiscFilter::kDelta2, MafiscFilter::kStrideDelta}) {
      if (f == MafiscFilter::kStrideDelta && (stride <= 1 || stride >= len)) continue;
      candidate.assign(ordered.begin() + static_cast<std::ptrdiff_t>(lo),
                       ordered.begin() + static_cast<std::ptrdiff_t>(lo + len));
      apply_filter<U>(candidate, f, stride);
      const double cost = filtered_cost<U>(candidate);
      if (first || cost < best_cost) {
        best_cost = cost;
        best_filter = f;
        std::copy(candidate.begin(), candidate.end(),
                  best.begin() + static_cast<std::ptrdiff_t>(lo));
        first = false;
      }
    }
    filters.push_back(static_cast<std::uint8_t>(best_filter));
  }

  std::vector<std::uint8_t> raw(best.size() * sizeof(U));
  std::memcpy(raw.data(), best.data(), raw.size());
  const Bytes packed = deflate_compress(shuffle_bytes(raw, sizeof(U)), effort);

  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kMafiscMagic, shape);
  w.u8(sizeof(T));
  w.u64(block_size);
  w.u64(filters.size());
  w.raw(filters);
  w.u64(packed.size());
  w.raw(packed);
  return out;
}

template <typename U, typename T, U (*ToOrdered)(T), T (*FromOrdered)(U)>
std::vector<T> mafisc_decode(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const Shape shape = wire::read_header(r, kMafiscMagic);
  if (r.u8() != sizeof(T)) throw FormatError("mafisc element size mismatch");
  const std::uint64_t block_size = r.u64();
  if (block_size == 0 || block_size > wire::kMaxDecodeElements) {
    throw FormatError("mafisc bad block size");
  }
  const std::uint64_t filter_count = r.u64();
  const std::size_t n = shape.count();
  if (filter_count != (n + block_size - 1) / block_size) {
    throw FormatError("mafisc filter count mismatch");
  }
  auto filters = r.raw(filter_count);
  const std::uint64_t packed_size = r.u64();
  const std::vector<std::uint8_t> raw =
      unshuffle_bytes(deflate_decompress(r.raw(packed_size)), sizeof(U));
  if (raw.size() != n * sizeof(U)) throw FormatError("mafisc payload size mismatch");

  std::vector<U> ordered(n);
  std::memcpy(ordered.data(), raw.data(), raw.size());

  const std::size_t stride = shape.rank() > 1 ? shape.dims.back() : 1;
  for (std::size_t b = 0; b < filter_count; ++b) {
    if (filters[b] > 3) throw FormatError("mafisc unknown filter");
    const std::size_t lo = b * block_size;
    const std::size_t len = std::min<std::size_t>(block_size, n - lo);
    invert_filter<U>(std::span<U>(ordered).subspan(lo, len),
                     static_cast<MafiscFilter>(filters[b]), stride);
  }

  std::vector<T> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = FromOrdered(ordered[i]);
  return data;
}

}  // namespace

MafiscCodec::MafiscCodec(std::size_t block, int effort) : block_(block), effort_(effort) {
  CESM_REQUIRE(block >= 64 && block <= (1u << 20));
}

Bytes MafiscCodec::encode(std::span<const float> data, const Shape& shape) const {
  return mafisc_encode<std::uint32_t, float, float_to_ordered, ordered_to_float>(
      data, shape, block_, effort_);
}

std::vector<float> MafiscCodec::decode(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("mafisc.decode");
  return mafisc_decode<std::uint32_t, float, float_to_ordered, ordered_to_float>(stream);
}

Bytes MafiscCodec::encode64(std::span<const double> data, const Shape& shape) const {
  return mafisc_encode<std::uint64_t, double, double_to_ordered, ordered_to_double>(
      data, shape, block_, effort_);
}

std::vector<double> MafiscCodec::decode64(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("mafisc.decode");
  return mafisc_decode<std::uint64_t, double, double_to_ordered, ordered_to_double>(stream);
}

}  // namespace cesm::comp
