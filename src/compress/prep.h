#pragma once
// Shared encode-prep plans for the variant sweep.
//
// The paper's methodology round-trips every variable through ~9 codec
// variants that differ only in a tuning knob (fpzip precision bits,
// ISABELA error bound, GRIB2 decimal scale). The knob-invariant stage of
// each family's encode — fpzip's ordered-map transform, ISABELA's
// per-window sort + spline fit, GRIB2's valid bitmap + range scan and
// per-scale wavelet lift — is recomputed from scratch for each variant on
// the direct path. PlanStore memoizes that stage per (prep_key, block):
// the first variant of a family to encode a block builds the plan, and
// every later variant with the same prep_key reuses it.
//
// Contract (enforced by tests/compress/test_prep_parity.cpp and the
// bench_suite parity gate): a plan-driven encode is byte-identical to the
// direct encode, including which input-validation errors it throws. The
// store is therefore free to drop plans at any time — on LRU pressure, on
// a budget-charge rejection, or on a fault injected at the
// "comp.prep_plan" site — and fall back to the direct path without
// changing a single output byte.
//
// Memory accounting: plans are bounded by `cap_bytes` (LRU eviction) and,
// when a util::MemoryBudget is attached (the out-of-core path), every
// cached plan is charged to it. A charge that does not fit is not an
// error: the plan simply is not cached, so the CESM_MEM_MB guarantee
// holds with plan sharing enabled.
//
// Thread safety: all members are safe to call concurrently; the map is
// mutex-guarded and plan builds happen outside the lock (two threads may
// race to build the same plan; the loser's copy is dropped).

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "compress/codec.h"
#include "util/memory.h"

namespace cesm::comp {

class PlanStore {
 public:
  /// `cap_bytes` bounds the resident plan bytes (0 disables caching
  /// entirely — every encode takes the direct path). `budget`, when
  /// non-null, is charged for every cached plan and released on eviction.
  explicit PlanStore(std::size_t cap_bytes, util::MemoryBudget* budget = nullptr);
  ~PlanStore();

  PlanStore(const PlanStore&) = delete;
  PlanStore& operator=(const PlanStore&) = delete;

  /// Encode `data` through `codec`, reusing or building the family's prep
  /// plan for `block` (an opaque caller-chosen id: member index in-core,
  /// member * chunk_count + chunk out-of-core). Byte-identical to
  /// codec.encode(data, shape) in both output and thrown argument errors.
  [[nodiscard]] Bytes encode(const Codec& codec, std::span<const float> data,
                             const Shape& shape, std::uint64_t block);

  /// Drop every cached plan, releasing any budget charges.
  void clear();

  [[nodiscard]] std::uint64_t plans_built() const;
  [[nodiscard]] std::uint64_t plans_reused() const;
  [[nodiscard]] std::size_t resident_bytes() const;

 private:
  struct Entry {
    PrepPlanPtr plan;
    std::size_t bytes = 0;
    std::uint64_t last_use = 0;
  };

  [[nodiscard]] PrepPlanPtr lookup(const std::string& key);
  void insert(const std::string& key, const PrepPlanPtr& plan);
  /// Evict least-recently-used entries until `need` more bytes fit under
  /// the cap. Caller holds mu_. Returns false if `need` alone exceeds it.
  bool make_room(std::size_t need);

  const std::size_t cap_bytes_;
  util::MemoryBudget* budget_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::size_t resident_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t built_ = 0;
  std::uint64_t reused_ = 0;
};

/// Round-trip through `plans` when non-null (plan-driven encode, direct
/// decode), or the plain direct path when null. The decode side never
/// changes: plans only affect how the identical stream bytes are produced.
[[nodiscard]] RoundTrip planned_round_trip(PlanStore* plans, const Codec& codec,
                                           std::span<const float> data,
                                           const Shape& shape, std::uint64_t block);

}  // namespace cesm::comp
