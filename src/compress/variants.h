#pragma once
// The variant catalog: every (method, parameter) combination the paper's
// tables exercise, by its table name.
//
//   GRIB2        — per-variable decimal scale (see Grib2Codec)
//   APAX-2/4/5   — fixed compression rates (plus -6/-7, §5.4's follow-up)
//   fpzip-16/24  — bits of precision (fpzip-32 = lossless)
//   ISA-0.1/0.5/1.0 — per-point relative error (%), window 1024
//   NetCDF-4     — lossless deflate baseline

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "compress/codec.h"

namespace cesm::comp {

/// The nine lossy variants of Figure 1 / Tables 3-6, in table order:
/// GRIB2, APAX-2, APAX-4, APAX-5, fpzip-24, fpzip-16, ISA-0.1, ISA-0.5,
/// ISA-1.0. GRIB2 takes the given decimal scale and optional fill value.
std::vector<CodecPtr> paper_variants(int grib_decimal_scale,
                                     std::optional<float> fill_value = std::nullopt);

/// Look up a variant by table name (e.g. "fpzip-24", "ISA-0.5",
/// "APAX-4", "NetCDF-4"). GRIB2 requires the decimal scale: "GRIB2:D"
/// with D an integer (e.g. "GRIB2:4"). Throws InvalidArgument on unknown
/// names.
CodecPtr make_variant(const std::string& name,
                      std::optional<float> fill_value = std::nullopt);

/// Per-family "ladders" used by the hybrid construction of §5.4, ordered
/// most-compressive first, ending in the family's lossless option when it
/// has one (fpzip-32) or NetCDF-4 otherwise (paper: "because ISABELA and
/// GRIB2 cannot be lossless, we use NetCDF4 compression for any variable
/// that requires lossless treatment"). APAX also falls back to NetCDF-4
/// per Table 8.
std::vector<CodecPtr> family_ladder(const std::string& family, int grib_decimal_scale,
                                    std::optional<float> fill_value = std::nullopt);

/// Wrap `codec` so fill values survive the round trip when the codec has
/// no native special-value support; returns `codec` unchanged otherwise.
CodecPtr with_fill_handling(CodecPtr codec, std::optional<float> fill_value);

/// Shares the paper-variant codec instances across run_variable calls.
/// Only GRIB2 depends on the per-variable decimal scale; the other eight
/// variants are keyed on the fill value alone and built once per key, so
/// a suite run stops reconstructing (and re-tracing) the same stateless
/// codecs for every variable. Codecs are immutable and the pool is
/// mutex-guarded, so one pool serves concurrent run_variable calls.
class VariantPool {
 public:
  /// The same nine variants, in the same order, as paper_variants().
  [[nodiscard]] std::vector<CodecPtr> assemble(int grib_decimal_scale,
                                               std::optional<float> fill_value) const;

 private:
  mutable std::mutex mu_;
  /// Non-GRIB2 tail keyed by fill bits (the sentinel ~0ull means "no fill").
  mutable std::map<std::uint64_t, std::vector<CodecPtr>> tails_;
};

}  // namespace cesm::comp
