// Scalar reference codec kernels: the original per-element loops of the
// four codec families, verbatim. This TU is compiled with the project's
// base flags only (no vector ISA, no FMA) and is the ground truth the
// vectorized kernels must match bit for bit.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "compress/codec_kernels.h"
#include "compress/fpz/predictor.h"
#include "compress/grib2/wavelet.h"

namespace cesm::comp::kernels::scalar {

void ordered_from_f32(const float* src, std::uint32_t* dst, std::size_t n,
                      unsigned shift) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_ordered(src[i]) >> shift;
}

void ordered_from_f64(const double* src, std::uint64_t* dst, std::size_t n,
                      unsigned shift) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = double_to_ordered(src[i]) >> shift;
}

void f32_from_ordered(const std::uint32_t* q, float* dst, std::size_t n,
                      unsigned shift, std::uint32_t half) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = ordered_to_float(static_cast<std::uint32_t>((q[i] << shift) | half));
  }
}

void f64_from_ordered(const std::uint64_t* q, double* dst, std::size_t n,
                      unsigned shift, std::uint64_t half) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = ordered_to_double(static_cast<std::uint64_t>((q[i] << shift) | half));
  }
}

namespace {

template <typename U>
void lorenzo_residuals_impl(const U* q, U* zz, Dims d) {
  const std::size_t n = d.planes * d.rows * d.cols;
  const LorenzoPredictor<U> pred(std::span<const U>(q, n), d.rows, d.cols, d.planes);
  for (std::size_t i = 0; i < n; ++i) {
    zz[i] = zigzag_encode(static_cast<U>(q[i] - pred.predict(i)));
  }
}

template <typename U>
void lorenzo_reconstruct_impl(U* q, const U* zz, Dims d) {
  const std::size_t n = d.planes * d.rows * d.cols;
  const LorenzoPredictor<U> pred(std::span<const U>(q, n), d.rows, d.cols, d.planes);
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = static_cast<U>(pred.predict(i) + zigzag_decode(zz[i]));
  }
}

}  // namespace

void lorenzo_residuals_u32(const std::uint32_t* q, std::uint32_t* zz, Dims d) {
  lorenzo_residuals_impl(q, zz, d);
}
void lorenzo_residuals_u64(const std::uint64_t* q, std::uint64_t* zz, Dims d) {
  lorenzo_residuals_impl(q, zz, d);
}
void lorenzo_reconstruct_u32(std::uint32_t* q, const std::uint32_t* zz, Dims d) {
  lorenzo_reconstruct_impl(q, zz, d);
}
void lorenzo_reconstruct_u64(std::uint64_t* q, const std::uint64_t* zz, Dims d) {
  lorenzo_reconstruct_impl(q, zz, d);
}

namespace {

template <typename T>
void sort_perm_impl(const T* data, std::uint32_t* perm, std::size_t len) {
  std::iota(perm, perm + len, 0u);
  std::stable_sort(perm, perm + len,
                   [&](std::uint32_t a, std::uint32_t b) { return data[a] < data[b]; });
}

}  // namespace

void sort_perm_f32(const float* data, std::uint32_t* perm, std::size_t len) {
  sort_perm_impl(data, perm, len);
}
void sort_perm_f64(const double* data, std::uint32_t* perm, std::size_t len) {
  sort_perm_impl(data, perm, len);
}

void apax_quantize(const double* src, std::size_t first, std::size_t len, double scale,
                   unsigned bits, std::size_t extra, std::uint32_t* codes) {
  for (std::size_t i = first; i < len; ++i) {
    const unsigned b = bits + ((i - first) < extra ? 1 : 0);
    const double q = static_cast<double>((1u << (b - 1)) - 1);
    const auto limit = static_cast<std::int32_t>(q);
    const double d = src[i] / scale * q;
    // Non-finite samples reproduce llround's glibc INT64_MIN narrowed to 0.
    auto m = std::isfinite(d) ? static_cast<std::int32_t>(std::llround(d)) : 0;
    m = std::clamp(m, -limit, limit);
    codes[i - first] = static_cast<std::uint32_t>(m + limit);
  }
}

void grib2_quantize(const float* data, const std::uint8_t* valid, std::int64_t* q,
                    std::size_t n, double lo, double step) {
  for (std::size_t i = 0; i < n; ++i) {
    if (valid != nullptr && !valid[i]) {
      q[i] = 0;
      continue;
    }
    const double dv = (static_cast<double>(data[i]) - lo) / step;
    // Codecs reject non-finite data before quantizing; keep the kernel
    // total (and equal to the vectorized one) anyway.
    q[i] = std::isfinite(dv) ? std::llround(dv) : 0;
  }
}

void dwt53_rows(std::int64_t* data, std::size_t cols, std::size_t r_lim,
                std::size_t c_lim, bool inverse) {
  std::vector<std::int64_t> buf(c_lim), tmp(c_lim);
  for (std::size_t r = 0; r < r_lim; ++r) {
    for (std::size_t c = 0; c < c_lim; ++c) buf[c] = data[r * cols + c];
    if (inverse) {
      dwt53_inverse_1d(buf, tmp);
    } else {
      dwt53_forward_1d(buf, tmp);
    }
    for (std::size_t c = 0; c < c_lim; ++c) data[r * cols + c] = tmp[c];
  }
}

void dwt53_cols(std::int64_t* data, std::size_t cols, std::size_t r_lim,
                std::size_t c_lim, bool inverse) {
  std::vector<std::int64_t> buf(r_lim), tmp(r_lim);
  for (std::size_t c = 0; c < c_lim; ++c) {
    for (std::size_t r = 0; r < r_lim; ++r) buf[r] = data[r * cols + c];
    if (inverse) {
      dwt53_inverse_1d(buf, tmp);
    } else {
      dwt53_forward_1d(buf, tmp);
    }
    for (std::size_t r = 0; r < r_lim; ++r) data[r * cols + c] = tmp[r];
  }
}

}  // namespace cesm::comp::kernels::scalar
