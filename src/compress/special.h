#pragma once
// Special/missing-value pre- and post-processing.
//
// Most methods in the study cannot represent CESM fill values such as the
// ocean model's 1e35 land points (Table 1: only GRIB2 has native support).
// The paper assumes this "could be handled through our pre- and
// post-processing" (§5.4) — this wrapper is that handling: fill locations
// are recorded in a run-length-coded bitmap, the gaps are filled with the
// last valid value (keeping the stream smooth for the inner predictor),
// the inner codec runs on the patched field, and decode restores the fill
// values verbatim.

#include "compress/codec.h"

namespace cesm::comp {

class SpecialValueCodec final : public Codec {
 public:
  SpecialValueCodec(CodecPtr inner, float fill_value);

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] std::string family() const override { return inner_->family(); }
  [[nodiscard]] bool is_lossless() const override { return inner_->is_lossless(); }

  [[nodiscard]] Capabilities capabilities() const override {
    Capabilities c = inner_->capabilities();
    c.special_values = true;  // provided by this wrapper
    return c;
  }

  [[nodiscard]] Bytes encode(std::span<const float> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<float> decode(std::span<const std::uint8_t> stream) const override;

  /// Prep plan: patched field + bitmap prefix (inner-variant invariant),
  /// composed with the inner codec's own plan when it has one (prep.h).
  [[nodiscard]] std::string prep_key() const override;
  [[nodiscard]] PrepPlanPtr build_prep(std::span<const float> data,
                                       const Shape& shape) const override;
  [[nodiscard]] Bytes encode_with_prep(const PrepPlan& plan, std::span<const float> data,
                                       const Shape& shape) const override;

  [[nodiscard]] float fill_value() const { return fill_; }
  [[nodiscard]] const Codec& inner() const { return *inner_; }

 private:
  CodecPtr inner_;
  float fill_;
};

/// Replace every occurrence of `fill` with the most recent valid value
/// (the field mean when the series starts with fill). Returns the validity
/// mask; patches `data` in place.
std::vector<std::uint8_t> patch_fill_values(std::span<float> data, float fill);

}  // namespace cesm::comp
