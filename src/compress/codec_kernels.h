#pragma once
// Hot inner-loop kernels for the four codec families, with a scalar
// reference implementation and a vectorized implementation selected at
// runtime (simd.h).
//
// Contract: for every kernel, `scalar::` and `simd::` must produce
// bit-identical output for all inputs — the vectorized forms are
// restructurings (row-blocked recurrences, radix sorts, branch-free
// rounding), never approximations. The scalar namespace preserves the
// original per-element codec loops exactly, so CESM_SIMD=off reproduces
// historical streams byte for byte; tests/compress/test_simd_parity.cpp
// pins the equivalence across hostile fields and every lane-tail length.
//
// The integer kernels (ordered maps, Lorenzo, wavelet lifting) are exact by
// construction. The floating-point kernels (APAX/GRIB2 quantization) rely
// on two guarantees the vectorized TU must keep: no FMA contraction
// (-ffp-contract=off) and a round-half-away-from-zero formulation that
// matches std::llround for every finite input, with non-finite inputs
// mapped to the same value glibc's llround + int32 narrowing yields (0).

#include <cstddef>
#include <cstdint>

namespace cesm::comp::kernels {

// ---------------------------------------------------------------------------
// fpzip family: ordered-integer maps and Lorenzo prediction.
// ---------------------------------------------------------------------------

/// Row-major 3-D geometry for the Lorenzo kernels (rank 1/2 use unit dims).
struct Dims {
  std::size_t planes = 1;
  std::size_t rows = 1;
  std::size_t cols = 1;
};

#define CESM_DECLARE_CODEC_KERNELS                                                       \
  /* q[i] = ordered_map(data[i]) >> shift */                                             \
  void ordered_from_f32(const float* src, std::uint32_t* dst, std::size_t n,             \
                        unsigned shift);                                                 \
  void ordered_from_f64(const double* src, std::uint64_t* dst, std::size_t n,            \
                        unsigned shift);                                                 \
  /* data[i] = inverse_map((q[i] << shift) | half) */                                    \
  void f32_from_ordered(const std::uint32_t* q, float* dst, std::size_t n,               \
                        unsigned shift, std::uint32_t half);                             \
  void f64_from_ordered(const std::uint64_t* q, double* dst, std::size_t n,              \
                        unsigned shift, std::uint64_t half);                             \
  /* zz[i] = zigzag(q[i] - lorenzo_predict(q, i)), causal row-major order */             \
  void lorenzo_residuals_u32(const std::uint32_t* q, std::uint32_t* zz, Dims d);         \
  void lorenzo_residuals_u64(const std::uint64_t* q, std::uint64_t* zz, Dims d);         \
  /* inverse: q[i] = lorenzo_predict(q, i) + unzigzag(zz[i]) */                          \
  void lorenzo_reconstruct_u32(std::uint32_t* q, const std::uint32_t* zz, Dims d);       \
  void lorenzo_reconstruct_u64(std::uint64_t* q, const std::uint64_t* zz, Dims d);       \
  /* ISABELA window sort: perm st. data[perm[i]] ascending, stable in i */               \
  void sort_perm_f32(const float* data, std::uint32_t* perm, std::size_t len);           \
  void sort_perm_f64(const double* data, std::uint32_t* perm, std::size_t len);          \
  /* APAX block-float attenuation: codes[i] = clamp(round(src[i]/scale*q)) + limit,      \
     where q = 2^(bits(i)-1) - 1 and the first `extra` samples carry one extra           \
     mantissa bit. src has len - first samples starting at src[first]. */                \
  void apax_quantize(const double* src, std::size_t first, std::size_t len,              \
                     double scale, unsigned bits, std::size_t extra,                     \
                     std::uint32_t* codes);                                              \
  /* GRIB2 packing: q[i] = valid ? llround((data[i] - lo) / step) : 0 */                 \
  void grib2_quantize(const float* data, const std::uint8_t* valid /*nullable*/,         \
                      std::int64_t* q, std::size_t n, double lo, double step);           \
  /* 5/3 integer DWT over the top-left r_lim x c_lim window of a            \
     rows x cols row-major array (wavelet.h lifting, mirror boundaries) */               \
  void dwt53_rows(std::int64_t* data, std::size_t cols, std::size_t r_lim,               \
                  std::size_t c_lim, bool inverse);                                      \
  void dwt53_cols(std::int64_t* data, std::size_t cols, std::size_t r_lim,               \
                  std::size_t c_lim, bool inverse)

/// Reference kernels: the original per-element loops, compiled without any
/// vector ISA flags. Semantic ground truth for the parity tests.
namespace scalar {
CESM_DECLARE_CODEC_KERNELS;
}  // namespace scalar

/// Vectorized kernels (TU built with -mavx2 where available). Bit-identical
/// to scalar:: by contract.
namespace vec {
CESM_DECLARE_CODEC_KERNELS;
}  // namespace vec

/// Dispatched entry points: call scalar:: or simd:: per simd::active_mode().
CESM_DECLARE_CODEC_KERNELS;

#undef CESM_DECLARE_CODEC_KERNELS

}  // namespace cesm::comp::kernels
