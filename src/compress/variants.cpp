#include "compress/variants.h"

#include <bit>
#include <charconv>

#include "compress/apax/apax.h"
#include "compress/deflate/deflate.h"
#include "compress/fpz/fpz.h"
#include "compress/fpc/fpc.h"
#include "compress/grib2/grib2.h"
#include "compress/isabela/isabela.h"
#include "compress/isobar.h"
#include "compress/mafisc.h"
#include "compress/special.h"

namespace cesm::comp {

CodecPtr with_fill_handling(CodecPtr codec, std::optional<float> fill_value) {
  if (!fill_value || codec->capabilities().special_values) return codec;
  return std::make_shared<SpecialValueCodec>(std::move(codec), *fill_value);
}

std::vector<CodecPtr> paper_variants(int grib_decimal_scale,
                                     std::optional<float> fill_value) {
  std::vector<CodecPtr> v;
  v.push_back(std::make_shared<Grib2Codec>(grib_decimal_scale, fill_value));
  v.push_back(with_fill_handling(std::make_shared<ApaxCodec>(ApaxCodec::fixed_rate(2)), fill_value));
  v.push_back(with_fill_handling(std::make_shared<ApaxCodec>(ApaxCodec::fixed_rate(4)), fill_value));
  v.push_back(with_fill_handling(std::make_shared<ApaxCodec>(ApaxCodec::fixed_rate(5)), fill_value));
  v.push_back(with_fill_handling(std::make_shared<FpzCodec>(24), fill_value));
  v.push_back(with_fill_handling(std::make_shared<FpzCodec>(16), fill_value));
  v.push_back(with_fill_handling(std::make_shared<IsabelaCodec>(0.1), fill_value));
  v.push_back(with_fill_handling(std::make_shared<IsabelaCodec>(0.5), fill_value));
  v.push_back(with_fill_handling(std::make_shared<IsabelaCodec>(1.0), fill_value));
  // Trace every variant uniformly so --profile covers all nine methods.
  for (CodecPtr& codec : v) codec = traced(std::move(codec));
  return v;
}

std::vector<CodecPtr> VariantPool::assemble(int grib_decimal_scale,
                                            std::optional<float> fill_value) const {
  const std::uint64_t key =
      fill_value ? std::uint64_t{std::bit_cast<std::uint32_t>(*fill_value)} : ~0ull;
  std::vector<CodecPtr> v;
  v.reserve(9);
  // GRIB2 carries the per-variable tuned scale, so it is always fresh.
  v.push_back(traced(std::make_shared<Grib2Codec>(grib_decimal_scale, fill_value)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<CodecPtr>& tail = tails_[key];
    if (tail.empty()) {
      const std::vector<CodecPtr> all = paper_variants(grib_decimal_scale, fill_value);
      tail.assign(all.begin() + 1, all.end());
    }
    v.insert(v.end(), tail.begin(), tail.end());
  }
  return v;
}

namespace {

CodecPtr make_variant_impl(const std::string& name, std::optional<float> fill_value) {
  if (name == "NetCDF-4" || name == "NC") {
    return std::make_shared<DeflateCodec>();
  }
  // Lossless methods from the paper's related work (§2.1); being exact,
  // they need no fill handling.
  if (name == "ISOBAR") return std::make_shared<IsobarCodec>();
  if (name == "MAFISC") return std::make_shared<MafiscCodec>();
  if (name == "FPC") return std::make_shared<FpcCodec>();
  if (name.rfind("FPC-", 0) == 0) {
    unsigned bits = 0;
    const char* b = name.data() + 4;
    auto [p, ec] = std::from_chars(b, name.data() + name.size(), bits);
    if (ec != std::errc{} || p != name.data() + name.size()) {
      throw InvalidArgument("bad FPC variant: " + name);
    }
    return std::make_shared<FpcCodec>(bits);
  }
  if (name == "fpzip-16") return with_fill_handling(std::make_shared<FpzCodec>(16), fill_value);
  if (name == "fpzip-24") return with_fill_handling(std::make_shared<FpzCodec>(24), fill_value);
  if (name == "fpzip-32") return with_fill_handling(std::make_shared<FpzCodec>(32), fill_value);
  if (name == "ISA-0.1") return with_fill_handling(std::make_shared<IsabelaCodec>(0.1), fill_value);
  if (name == "ISA-0.5") return with_fill_handling(std::make_shared<IsabelaCodec>(0.5), fill_value);
  if (name == "ISA-1.0") return with_fill_handling(std::make_shared<IsabelaCodec>(1.0), fill_value);
  if (name.rfind("APAX-q", 0) == 0) {
    unsigned bits = 0;
    const char* b = name.data() + 6;
    auto [p, ec] = std::from_chars(b, name.data() + name.size(), bits);
    if (ec == std::errc{} && p == name.data() + name.size()) {
      return with_fill_handling(
          std::make_shared<ApaxCodec>(ApaxCodec::fixed_quality(bits)), fill_value);
    }
  }
  if (name.rfind("APAX-", 0) == 0) {
    double ratio = 0.0;
    try {
      ratio = std::stod(name.substr(5));
    } catch (...) {
      throw InvalidArgument("bad APAX variant: " + name);
    }
    return with_fill_handling(std::make_shared<ApaxCodec>(ApaxCodec::fixed_rate(ratio)),
                              fill_value);
  }
  if (name.rfind("GRIB2:", 0) == 0) {
    int d = 0;
    const char* b = name.data() + 6;
    auto [p, ec] = std::from_chars(b, name.data() + name.size(), d);
    if (ec != std::errc{} || p != name.data() + name.size()) {
      throw InvalidArgument("bad GRIB2 variant: " + name);
    }
    return std::make_shared<Grib2Codec>(d, fill_value);
  }
  throw InvalidArgument("unknown codec variant: " + name);
}

}  // namespace

CodecPtr make_variant(const std::string& name, std::optional<float> fill_value) {
  return traced(make_variant_impl(name, fill_value));
}

std::vector<CodecPtr> family_ladder(const std::string& family, int grib_decimal_scale,
                                    std::optional<float> fill_value) {
  std::vector<CodecPtr> ladder;
  const CodecPtr lossless = std::make_shared<DeflateCodec>();
  if (family == "GRIB2") {
    ladder.push_back(std::make_shared<Grib2Codec>(grib_decimal_scale, fill_value));
    ladder.push_back(lossless);
  } else if (family == "APAX") {
    for (double r : {5.0, 4.0, 2.0}) {
      ladder.push_back(
          with_fill_handling(std::make_shared<ApaxCodec>(ApaxCodec::fixed_rate(r)), fill_value));
    }
    ladder.push_back(lossless);
  } else if (family == "fpzip") {
    for (unsigned p : {16u, 24u, 32u}) {
      ladder.push_back(with_fill_handling(std::make_shared<FpzCodec>(p), fill_value));
    }
  } else if (family == "ISABELA") {
    for (double e : {1.0, 0.5, 0.1}) {
      ladder.push_back(with_fill_handling(std::make_shared<IsabelaCodec>(e), fill_value));
    }
    ladder.push_back(lossless);
  } else if (family == "NetCDF-4") {
    ladder.push_back(lossless);
  } else {
    throw InvalidArgument("unknown codec family: " + family);
  }
  for (CodecPtr& codec : ladder) codec = traced(std::move(codec));
  return ladder;
}

}  // namespace cesm::comp
