#pragma once
// Adaptive binary range coder (arithmetic-coding workhorse for the fpz
// residual stage and the GRIB2 bit-plane stage).
//
// Classic carry-propagating 32-bit range coder with 64-bit low register and
// 12-bit adaptive bit probabilities (LZMA-style shift-update models).
//
// The coder is the single hottest loop of every predictive codec (the
// BENCH_codecs breakdown puts >90% of fpzip/GRIB2 encode time here), so the
// inner operations are written branch-free where the branch would be
// data-dependent (the bit decision, the model update) and the equiprobable
// bypass path processes multi-bit batches between renormalizations instead
// of one bit per normalize() round trip. Every transformation below is
// byte-stream-preserving: the emitted/consumed streams are bit-identical to
// the straightforward one-bit-at-a-time formulation (pinned by
// tests/compress/test_rangecoder.cpp and the codec conformance digests).

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.h"
#include "util/error.h"

namespace cesm::comp {

/// Adaptive probability of a binary symbol, 12-bit precision.
class BitModel {
 public:
  static constexpr unsigned kBits = 12;
  static constexpr std::uint32_t kOne = 1u << kBits;
  static constexpr unsigned kMoveBits = 5;

  /// Probability (scaled by 2^12) that the next bit is 0.
  [[nodiscard]] std::uint32_t p0() const { return p0_; }

  void update(bool bit) {
    // Both shift-updates are computed unconditionally and selected, so the
    // data-dependent bit never becomes a branch (conditional moves only).
    const std::uint32_t on_one = p0_ - (p0_ >> kMoveBits);
    const std::uint32_t on_zero = p0_ + ((kOne - p0_) >> kMoveBits);
    p0_ = bit ? on_one : on_zero;
  }

 private:
  std::uint32_t p0_ = kOne / 2;
};

/// Range encoder producing a byte stream.
class RangeEncoder {
 public:
  explicit RangeEncoder(Bytes& out) : out_(out) {}

  /// Encode one bit under an adaptive model (model is updated).
  void encode(BitModel& model, bool bit) {
    const std::uint32_t bound = (range_ >> BitModel::kBits) * model.p0();
    // Branch-free interval selection: low_ += bit ? bound : 0 and the
    // matching range shrink compile to conditional moves.
    low_ += bit ? bound : 0u;
    range_ = bit ? range_ - bound : bound;
    model.update(bit);
    normalize();
  }

  /// Encode `nbits` raw (equiprobable) bits, MSB first.
  ///
  /// Batched renormalization: each bit halves the range, so while the range
  /// register has `m` bits of width above the 2^24 floor the next `m` bits
  /// cannot trigger a normalize. Run those through a tight branch-free loop
  /// (the data-dependent add compiles to a conditional move) and only fall
  /// back to the classic step-plus-normalize when the spare width is gone.
  void encode_raw(std::uint32_t value, unsigned nbits) {
    while (nbits > 0) {
      // range_ >= 2^24 between symbols, so the spare width is in [0, 7].
      unsigned m = static_cast<unsigned>(std::bit_width(range_)) - 25;
      if (m == 0) {
        --nbits;
        range_ >>= 1;
        low_ += ((value >> nbits) & 1u) ? range_ : 0u;
        normalize();
        continue;
      }
      if (m > nbits) m = nbits;
      for (unsigned j = 0; j < m; ++j) {
        --nbits;
        range_ >>= 1;
        low_ += ((value >> nbits) & 1u) ? range_ : 0u;
      }
      // range_ >= 2^24 still holds: no normalize needed inside the window.
    }
  }

  /// Flush the final state; must be called exactly once.
  void finish() {
    for (int i = 0; i < 5; ++i) shift_low();
  }

 private:
  void normalize() {
    while (range_ < (1u << 24)) {
      shift_low();
      range_ <<= 8;
    }
  }

  // Canonical LZMA-style carry propagation: the first emitted byte is a
  // constant 0 the decoder skips during its 5-byte prime.
  void shift_low() {
    if (static_cast<std::uint32_t>(low_) < 0xff000000u ||
        static_cast<std::uint32_t>(low_ >> 32) != 0) {
      std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32);
      do {
        out_.push_back(static_cast<std::uint8_t>(cache_ + carry));
        cache_ = 0xff;
      } while (--cache_size_ != 0);
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ << 8) & 0xffffffffull;
  }

  Bytes& out_;
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xffffffffu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
};

/// Range decoder mirroring RangeEncoder.
class RangeDecoder {
 public:
  explicit RangeDecoder(std::span<const std::uint8_t> data) : data_(data) {
    for (int i = 0; i < 5; ++i) code_ = (code_ << 8) | next_byte();
  }

  bool decode(BitModel& model) {
    const std::uint32_t bound = (range_ >> BitModel::kBits) * model.p0();
    // The bit decision is data-dependent and ~unpredictable on residual
    // streams; select both outcomes with conditional moves instead of
    // branching.
    const bool bit = static_cast<std::uint32_t>(code_) >= bound;
    code_ -= bit ? bound : 0u;
    range_ = bit ? range_ - bound : bound;
    model.update(bit);
    normalize();
    return bit;
  }

  std::uint32_t decode_raw(unsigned nbits) {
    std::uint32_t v = 0;
    while (nbits > 0) {
      unsigned m = static_cast<unsigned>(std::bit_width(range_)) - 25;
      if (m == 0) {
        --nbits;
        range_ >>= 1;
        const bool bit = static_cast<std::uint32_t>(code_) >= range_;
        code_ -= bit ? range_ : 0u;
        v = (v << 1) | (bit ? 1u : 0u);
        normalize();
        continue;
      }
      if (m > nbits) m = nbits;
      nbits -= m;
      for (unsigned j = 0; j < m; ++j) {
        range_ >>= 1;
        const bool bit = static_cast<std::uint32_t>(code_) >= range_;
        code_ -= bit ? range_ : 0u;
        v = (v << 1) | (bit ? 1u : 0u);
      }
      // range_ >= 2^24 still holds: no normalize needed inside the window.
    }
    return v;
  }

 private:
  void normalize() {
    while (range_ < (1u << 24)) {
      code_ = ((code_ << 8) | next_byte()) & 0xffffffffull;
      range_ <<= 8;
    }
  }

  std::uint8_t next_byte() {
    // Reading past the payload is legal during the final flush window; the
    // decoder never uses those bits to produce symbols.
    return pos_ < data_.size() ? data_[pos_++] : 0;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t code_ = 0;
  std::uint32_t range_ = 0xffffffffu;
};

}  // namespace cesm::comp
