#pragma once
// Adaptive binary range coder (arithmetic-coding workhorse for the fpz
// residual stage and the GRIB2 bit-plane stage).
//
// Classic carry-propagating 32-bit range coder with 64-bit low register and
// 12-bit adaptive bit probabilities (LZMA-style shift-update models).

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.h"
#include "util/error.h"

namespace cesm::comp {

/// Adaptive probability of a binary symbol, 12-bit precision.
class BitModel {
 public:
  static constexpr unsigned kBits = 12;
  static constexpr std::uint32_t kOne = 1u << kBits;
  static constexpr unsigned kMoveBits = 5;

  /// Probability (scaled by 2^12) that the next bit is 0.
  [[nodiscard]] std::uint32_t p0() const { return p0_; }

  void update(bool bit) {
    if (bit) {
      p0_ -= p0_ >> kMoveBits;
    } else {
      p0_ += (kOne - p0_) >> kMoveBits;
    }
  }

 private:
  std::uint32_t p0_ = kOne / 2;
};

/// Range encoder producing a byte stream.
class RangeEncoder {
 public:
  explicit RangeEncoder(Bytes& out) : out_(out) {}

  /// Encode one bit under an adaptive model (model is updated).
  void encode(BitModel& model, bool bit) {
    const std::uint32_t bound = (range_ >> BitModel::kBits) * model.p0();
    if (!bit) {
      range_ = bound;
    } else {
      low_ += bound;
      range_ -= bound;
    }
    model.update(bit);
    normalize();
  }

  /// Encode `nbits` raw (equiprobable) bits, MSB first.
  void encode_raw(std::uint32_t value, unsigned nbits) {
    for (unsigned i = nbits; i-- > 0;) {
      range_ >>= 1;
      if ((value >> i) & 1u) low_ += range_;
      normalize();
    }
  }

  /// Flush the final state; must be called exactly once.
  void finish() {
    for (int i = 0; i < 5; ++i) shift_low();
  }

 private:
  void normalize() {
    while (range_ < (1u << 24)) {
      shift_low();
      range_ <<= 8;
    }
  }

  // Canonical LZMA-style carry propagation: the first emitted byte is a
  // constant 0 the decoder skips during its 5-byte prime.
  void shift_low() {
    if (static_cast<std::uint32_t>(low_) < 0xff000000u ||
        static_cast<std::uint32_t>(low_ >> 32) != 0) {
      std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32);
      do {
        out_.push_back(static_cast<std::uint8_t>(cache_ + carry));
        cache_ = 0xff;
      } while (--cache_size_ != 0);
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ << 8) & 0xffffffffull;
  }

  Bytes& out_;
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xffffffffu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
};

/// Range decoder mirroring RangeEncoder.
class RangeDecoder {
 public:
  explicit RangeDecoder(std::span<const std::uint8_t> data) : data_(data) {
    for (int i = 0; i < 5; ++i) code_ = (code_ << 8) | next_byte();
  }

  bool decode(BitModel& model) {
    const std::uint32_t bound = (range_ >> BitModel::kBits) * model.p0();
    bool bit;
    if (static_cast<std::uint32_t>(code_) < bound) {
      range_ = bound;
      bit = false;
    } else {
      code_ -= bound;
      range_ -= bound;
      bit = true;
    }
    model.update(bit);
    normalize();
    return bit;
  }

  std::uint32_t decode_raw(unsigned nbits) {
    std::uint32_t v = 0;
    for (unsigned i = 0; i < nbits; ++i) {
      range_ >>= 1;
      std::uint32_t bit = 0;
      if (static_cast<std::uint32_t>(code_) >= range_) {
        code_ -= range_;
        bit = 1;
      }
      v = (v << 1) | bit;
      normalize();
    }
    return v;
  }

 private:
  void normalize() {
    while (range_ < (1u << 24)) {
      code_ = ((code_ << 8) | next_byte()) & 0xffffffffull;
      range_ <<= 8;
    }
  }

  std::uint8_t next_byte() {
    // Reading past the payload is legal during the final flush window; the
    // decoder never uses those bits to produce symbols.
    return pos_ < data_.size() ? data_[pos_++] : 0;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t code_ = 0;
  std::uint32_t range_ = 0xffffffffu;
};

}  // namespace cesm::comp
