#pragma once
// Parallel chunked compression.
//
// The paper's workflow compresses terabytes of history data in a post-
// processing step; single-stream codecs leave cores idle. ChunkedCodec
// splits a field into independent chunks along its slowest dimension,
// encodes them in parallel on the global scheduler, and concatenates the
// self-describing chunk streams behind a header that records each chunk's
// byte size AND element count. Decoding reads that tiling, presizes one
// output buffer, and decodes every chunk in parallel directly into its
// slice — no per-chunk temporaries, no concatenation pass.
//
// Chunking is semantically visible only at chunk boundaries (predictors
// and windows reset), costing a small amount of ratio in exchange for
// near-linear speedup — the classic HPC trade, measurable with
// bench/ablation_design.

#include "compress/codec.h"

namespace cesm::comp {

class ChunkedCodec final : public Codec {
 public:
  /// Wrap `inner`; each chunk carries about `target_chunk_elems` values
  /// (chunks are whole slices of the slowest dimension when rank > 1).
  ChunkedCodec(CodecPtr inner, std::size_t target_chunk_elems = 1 << 16);

  [[nodiscard]] std::string name() const override { return inner_->name() + "+chunked"; }
  [[nodiscard]] std::string family() const override { return inner_->family(); }
  [[nodiscard]] bool is_lossless() const override { return inner_->is_lossless(); }
  [[nodiscard]] Capabilities capabilities() const override {
    return inner_->capabilities();
  }

  [[nodiscard]] Bytes encode(std::span<const float> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<float> decode(std::span<const std::uint8_t> stream) const override;
  void decode_into(std::span<const std::uint8_t> stream,
                   std::span<float> out) const override;

  /// The chunk boundaries used for a given shape (element offsets).
  [[nodiscard]] std::vector<std::size_t> chunk_offsets(const Shape& shape) const;

  // Chunk-granular API for the out-of-core pipeline: callers that cannot
  // hold a full field encode chunk [lo, hi) with the wrapped codec under
  // chunk_shape(), track per-chunk stream sizes, and recover the exact
  // packed size the one-shot encode() would have produced — so a streaming
  // run reports bit-identical compression ratios without ever
  // concatenating the stream.

  /// The wrapped codec (for per-chunk encode/decode in streaming mode).
  [[nodiscard]] const CodecPtr& inner() const { return inner_; }

  /// Shape of the chunk covering element range [lo, hi) of `shape` — the
  /// same shape encode() hands the inner codec for that chunk. The range
  /// must be a whole number of slowest-dimension slices when rank > 1.
  [[nodiscard]] Shape chunk_shape(const Shape& shape, std::size_t lo,
                                  std::size_t hi) const;

  /// Exact byte size of the packed stream encode() would emit for `shape`
  /// given each chunk's encoded size (in chunk_offsets order).
  [[nodiscard]] std::size_t packed_stream_bytes(
      const Shape& shape, std::span<const std::size_t> chunk_sizes) const;

 private:
  /// Parse + validate the stream and decode every chunk into its slice of
  /// `out` (whose size must equal the stream's element count).
  void decode_chunks(std::span<const std::uint8_t> stream, std::span<float> out) const;

  CodecPtr inner_;
  std::size_t target_chunk_elems_;
};

}  // namespace cesm::comp
