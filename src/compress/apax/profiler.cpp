#include "compress/apax/profiler.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace cesm::comp {

ApaxProfile apax_profile(std::span<const float> data, const Shape& shape,
                         double min_pearson, std::span<const double> ratios) {
  static constexpr std::array<double, 5> kDefaultLadder = {2.0, 4.0, 5.0, 6.0, 7.0};
  if (ratios.empty()) ratios = kDefaultLadder;

  const stats::Summary summary = stats::summarize(data);
  const double range = summary.range() > 0.0 ? summary.range() : 1.0;

  ApaxProfile profile;
  for (double ratio : ratios) {
    const ApaxCodec codec = ApaxCodec::fixed_rate(ratio);
    const RoundTrip rt = round_trip(codec, data, shape);

    ApaxProfilePoint p;
    p.ratio = ratio;
    p.cr = rt.cr;
    p.pearson = stats::pearson(data, std::span<const float>(rt.reconstructed));
    double se = 0.0, emax = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double e = static_cast<double>(data[i]) - static_cast<double>(rt.reconstructed[i]);
      se += e * e;
      emax = std::max(emax, std::fabs(e));
    }
    p.nrmse = std::sqrt(se / static_cast<double>(data.size())) / range;
    p.max_abs_err = emax;
    profile.points.push_back(p);

    if (p.pearson >= min_pearson) {
      if (!profile.recommended_ratio || ratio > *profile.recommended_ratio) {
        profile.recommended_ratio = ratio;
      }
    }
  }
  return profile;
}

}  // namespace cesm::comp
