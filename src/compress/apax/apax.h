#pragma once
// APAX-class codec (Samplify's "APplications AXceleration" compressor,
// Wegener US 7,009,533: adaptive compression of bandlimited signals).
//
// APAX is commercial and closed; this reimplementation reproduces its
// published architecture and the two properties the paper leans on:
//   * block floating-point encoding: samples are grouped into blocks, an
//     adaptive pre-filter (identity or first derivative) is chosen per
//     block, samples are attenuated to a shared block exponent and packed
//     with a fixed number of mantissa bits — bounding the *absolute*
//     error per block (contrast fpzip's relative bound, §2.2);
//   * a *fixed-rate* mode (APAX-2/-4/-5 in the tables; we add -6/-7, which
//     the authors mention as untried) and a *fixed-quality* mode — the
//     only method in the study offering both;
//   * very high speed: encode is two passes of simple arithmetic per
//     block, no sorting, no entropy coder.

#include "compress/codec.h"

namespace cesm::comp {

class ApaxCodec final : public Codec {
 public:
  /// Fixed-rate variant: the encoded size is count * 32 / `ratio` bits
  /// (plus a tiny container header), i.e. CR = 1/ratio. Paper uses 2,4,5.
  static ApaxCodec fixed_rate(double ratio);

  /// Fixed-quality variant: every block keeps `mantissa_bits` significant
  /// bits; the rate falls where the data allow. (APAX's fixed-quality
  /// knob, unavailable in the other methods per Table 1.)
  static ApaxCodec fixed_quality(unsigned mantissa_bits);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string family() const override { return "APAX"; }
  [[nodiscard]] bool is_lossless() const override { return false; }

  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.lossless_mode = true,  // 32-bit only, per Table 1 footnote
                        .special_values = false,
                        .freely_available = false,  // commercial product
                        .fixed_quality = true,
                        .fixed_rate = true,
                        .handles_64bit = true};
  }

  [[nodiscard]] Bytes encode(std::span<const float> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<float> decode(std::span<const std::uint8_t> stream) const override;

  [[nodiscard]] bool is_fixed_rate() const { return fixed_rate_; }
  [[nodiscard]] double target_ratio() const { return ratio_; }
  [[nodiscard]] unsigned quality_bits() const { return quality_bits_; }

 private:
  ApaxCodec(bool fixed_rate, double ratio, unsigned quality_bits);

  bool fixed_rate_;
  double ratio_;           // fixed-rate: compression factor (2 => CR 0.5)
  unsigned quality_bits_;  // fixed-quality: mantissa bits per sample
  // Small blocks track the local signal magnitude closely (the patent
  // uses 32-64 sample groups), which is what keeps fixed-rate error low.
  std::size_t block_ = 64;
};

}  // namespace cesm::comp
