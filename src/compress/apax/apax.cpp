#include "compress/apax/apax.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "compress/bitio.h"
#include "compress/codec_kernels.h"
#include "util/failpoint.h"

namespace cesm::comp {

namespace {

constexpr std::uint32_t kApaxMagic = 0x31585041;  // "APX1"

// Per-block header layout (bits): zero flag (1) + filter flag (1) +
// f32 block scale (32) + mantissa width (6) [+ f32 seed when filtered].
// The exact-maxabs scale (instead of a power-of-two exponent) buys back
// up to one mantissa bit per sample.

struct BlockPlan {
  bool zero = false;
  bool derivative = false;
  float scale = 0.0f;    // block attenuator: max |sample| (rounded up)
  unsigned bits = 0;     // mantissa bits per sample
  float seed = 0.0f;     // first raw sample when derivative filtering
};

float block_scale(double maxabs) {
  // Round up so |sample| / scale never exceeds 1 after the f32 narrowing.
  float s = static_cast<float>(maxabs);
  while (static_cast<double>(s) < maxabs) s = std::nextafter(s, std::numeric_limits<float>::max());
  return s;
}

double block_maxabs(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace

ApaxCodec::ApaxCodec(bool fixed_rate, double ratio, unsigned quality_bits)
    : fixed_rate_(fixed_rate), ratio_(ratio), quality_bits_(quality_bits) {}

ApaxCodec ApaxCodec::fixed_rate(double ratio) {
  CESM_REQUIRE(ratio > 1.0 && ratio <= 32.0);
  return ApaxCodec(true, ratio, 0);
}

ApaxCodec ApaxCodec::fixed_quality(unsigned mantissa_bits) {
  CESM_REQUIRE(mantissa_bits >= 2 && mantissa_bits <= 30);
  return ApaxCodec(false, 0.0, mantissa_bits);
}

std::string ApaxCodec::name() const {
  if (fixed_rate_) {
    char buf[32];
    if (ratio_ == static_cast<double>(static_cast<int>(ratio_))) {
      std::snprintf(buf, sizeof(buf), "APAX-%d", static_cast<int>(ratio_));
    } else {
      std::snprintf(buf, sizeof(buf), "APAX-%.1f", ratio_);
    }
    return buf;
  }
  return "APAX-q" + std::to_string(quality_bits_);
}

Bytes ApaxCodec::encode(std::span<const float> data, const Shape& shape) const {
  CESM_REQUIRE(shape.count() == data.size());
  // Mirror decode()'s header checks so encode can never emit a stream its
  // own decoder rejects (the factories validate too; this guards against
  // future constructors or member tweaks reaching the wire unchecked).
  CESM_REQUIRE(block_ > 0 && block_ <= (1u << 20));
  if (fixed_rate_) CESM_REQUIRE(ratio_ > 1.0 && ratio_ <= 32.0);
  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kApaxMagic, shape);
  w.u8(fixed_rate_ ? 1 : 0);
  w.f64(ratio_);
  w.u8(static_cast<std::uint8_t>(quality_bits_));
  w.u32(static_cast<std::uint32_t>(block_));

  BitWriter bw(out);
  const std::size_t n = data.size();
  const double rate_bits = fixed_rate_ ? 32.0 / ratio_ : 0.0;

  std::vector<double> raw(block_), delta(block_);
  std::vector<std::uint32_t> codes(block_);
  for (std::size_t lo = 0; lo < n; lo += block_) {
    const std::size_t len = std::min(block_, n - lo);
    raw.resize(len);
    delta.resize(len);
    for (std::size_t i = 0; i < len; ++i) raw[i] = static_cast<double>(data[lo + i]);
    delta[0] = 0.0;
    for (std::size_t i = 1; i < len; ++i) delta[i] = raw[i] - raw[i - 1];

    const double max_raw = block_maxabs(raw);
    // Derivative pre-filter pays when the block is smooth: compare the
    // dynamic range the mantissas must cover (first sample travels as an
    // exact f32 seed, so it is excluded).
    const double max_delta =
        len > 1 ? block_maxabs(std::span<const double>(delta).subspan(1)) : max_raw;

    BlockPlan plan;
    plan.zero = max_raw == 0.0;
    plan.derivative = !plan.zero && len > 1 && max_delta < 0.5 * max_raw;
    plan.seed = data[lo];
    const double maxabs = plan.derivative ? max_delta : max_raw;
    plan.scale = block_scale(maxabs);
    // An infinite sample makes the block scale infinite, and decode()
    // rejects non-finite scales ("apax bad block scale") — refuse here
    // rather than emit a stream our own decoder cannot read. NaN samples
    // do not reach the scale (fabs ordering drops them) and quantize to
    // the zero code, so they stay encodable.
    if (!std::isfinite(plan.scale)) {
      throw InvalidArgument("apax cannot encode infinite data");
    }

    const std::size_t bits_before = bw.bit_count();
    const unsigned header_bits = 1 + 1 + 32 + 6 + (plan.derivative ? 32 : 0);
    const std::size_t mantissa_count = plan.derivative ? len - 1 : len;
    std::size_t budget_bits = 0;
    std::size_t extra = 0;  // leading samples carrying one extra bit
    if (fixed_rate_) {
      budget_bits = static_cast<std::size_t>(std::llround(rate_bits * static_cast<double>(len)));
      const std::size_t payload = budget_bits > header_bits ? budget_bits - header_bits : 0;
      plan.bits = static_cast<unsigned>(std::min<std::size_t>(30, payload / mantissa_count));
      if (plan.bits < 30) {
        extra = std::min(mantissa_count, payload - plan.bits * mantissa_count);
      }
    } else {
      plan.bits = quality_bits_;
    }

    bw.put_bit(plan.zero);
    bw.put_bit(plan.derivative);
    bw.put(std::bit_cast<std::uint32_t>(plan.scale), 32);
    bw.put(plan.bits, 6);
    if (plan.derivative) bw.put(std::bit_cast<std::uint32_t>(plan.seed), 32);

    if (!plan.zero && plan.bits > 0) {
      const double scale = static_cast<double>(plan.scale);
      const std::span<const double> src(plan.derivative ? delta : raw);
      const std::size_t first = plan.derivative ? 1 : 0;
      // Attenuate the whole block branch-free, then pack: the bit widths
      // only change once (after the first `extra` samples).
      kernels::apax_quantize(src.data(), first, len, scale, plan.bits, extra,
                             codes.data());
      for (std::size_t i = first; i < len; ++i) {
        const unsigned b = plan.bits + ((i - first) < extra ? 1 : 0);
        bw.put(codes[i - first], b);
      }
    }

    if (fixed_rate_) {
      // Pad to the exact block budget so the advertised rate is honored
      // even for zero or low-entropy blocks.
      std::size_t used = bw.bit_count() - bits_before;
      while (used < budget_bits) {
        const unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(32, budget_bits - used));
        bw.put(0, chunk);
        used += chunk;
      }
    }
  }
  bw.align();
  return out;
}

std::vector<float> ApaxCodec::decode(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("apax.decode");
  ByteReader r(stream);
  const Shape shape = wire::read_header(r, kApaxMagic);
  const bool fixed_rate = r.u8() != 0;
  const double ratio = r.f64();
  const unsigned quality_bits = r.u8();
  const std::size_t block = r.u32();
  if (block == 0 || block > (1u << 20)) throw FormatError("apax bad block size");
  if (fixed_rate && (ratio <= 1.0 || ratio > 32.0)) throw FormatError("apax bad ratio");

  BitReader br(stream.subspan(r.position()));
  const std::size_t n = shape.count();
  std::vector<float> out(n);
  const double rate_bits = fixed_rate ? 32.0 / ratio : 0.0;
  (void)quality_bits;

  for (std::size_t lo = 0; lo < n; lo += block) {
    const std::size_t len = std::min(block, n - lo);
    const std::size_t bits_before = br.bits_consumed();

    const bool zero = br.get_bit();
    const bool derivative = br.get_bit();
    const float scale_f = std::bit_cast<float>(static_cast<std::uint32_t>(br.get(32)));
    const unsigned bits = static_cast<unsigned>(br.get(6));
    if (bits > 30) throw FormatError("apax mantissa width out of range");
    if (!(scale_f >= 0.0f) || !std::isfinite(scale_f)) {
      throw FormatError("apax bad block scale");
    }
    float seed = 0.0f;
    if (derivative) seed = std::bit_cast<float>(static_cast<std::uint32_t>(br.get(32)));

    // Recompute the encoder's remainder-bit allocation.
    const unsigned header_bits = 1 + 1 + 32 + 6 + (derivative ? 32 : 0);
    const std::size_t mantissa_count = derivative ? len - 1 : len;
    std::size_t extra = 0;
    std::size_t budget_bits = 0;
    if (fixed_rate) {
      budget_bits =
          static_cast<std::size_t>(std::llround(rate_bits * static_cast<double>(len)));
      const std::size_t payload = budget_bits > header_bits ? budget_bits - header_bits : 0;
      const auto expected =
          static_cast<unsigned>(std::min<std::size_t>(30, payload / mantissa_count));
      if (expected < 30) extra = payload - expected * mantissa_count;
    }

    if (zero || bits == 0) {
      // Degenerate block: all zeros (or no mantissa budget: decode as the
      // seed-extended flat line).
      float fill = derivative ? seed : 0.0f;
      for (std::size_t i = 0; i < len; ++i) out[lo + i] = zero ? 0.0f : fill;
    } else {
      const double scale = static_cast<double>(scale_f);
      double acc = static_cast<double>(seed);
      const std::size_t first = derivative ? 1 : 0;
      if (derivative) out[lo] = seed;
      for (std::size_t i = first; i < len; ++i) {
        const unsigned b = bits + ((i - first) < extra ? 1 : 0);
        const double q = static_cast<double>((1u << (b - 1)) - 1);
        const auto limit = static_cast<std::int32_t>(q);
        const auto m = static_cast<std::int32_t>(br.get(b)) - limit;
        const double v = static_cast<double>(m) / q * scale;
        if (derivative) {
          acc += v;
          out[lo + i] = static_cast<float>(acc);
        } else {
          out[lo + i] = static_cast<float>(v);
        }
      }
    }

    if (fixed_rate) {
      const auto budget_bits =
          static_cast<std::size_t>(std::llround(rate_bits * static_cast<double>(len)));
      std::size_t used = br.bits_consumed() - bits_before;
      while (used < budget_bits) {
        const unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(32, budget_bits - used));
        br.get(chunk);
        used += chunk;
      }
    }
  }
  return out;
}

}  // namespace cesm::comp
