#pragma once
// APAX-style profiler.
//
// The paper (§3.2.4) highlights the APAX profiler as a practical advantage:
// it "illustrates the quality of the reconstructed data and recommends
// encoding rates". This reimplementation sweeps the fixed-rate ladder on a
// sample of the data, reports quality metrics per rate, and recommends the
// most aggressive rate whose Pearson correlation stays above a threshold
// (the paper adopts the profiler's own 0.99999 rule as its ρ test).

#include <optional>
#include <vector>

#include "compress/apax/apax.h"
#include "compress/codec.h"

namespace cesm::comp {

/// Quality achieved by one candidate rate.
struct ApaxProfilePoint {
  double ratio = 0.0;      ///< compression factor (2 => CR 0.5)
  double cr = 0.0;         ///< achieved compressed/original ratio
  double pearson = 0.0;    ///< correlation original vs reconstructed
  double nrmse = 0.0;      ///< RMSE normalized by data range
  double max_abs_err = 0.0;
};

struct ApaxProfile {
  std::vector<ApaxProfilePoint> points;            ///< one per rate tried
  std::optional<double> recommended_ratio;         ///< most aggressive passing rate
};

/// Profile `data` over `ratios` (default the paper ladder 2,4,5 plus the
/// untried 6 and 7) and recommend the largest ratio with
/// pearson >= `min_pearson`.
ApaxProfile apax_profile(std::span<const float> data, const Shape& shape,
                         double min_pearson = 0.99999,
                         std::span<const double> ratios = {});

}  // namespace cesm::comp
