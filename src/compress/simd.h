#pragma once
// Runtime selection between the scalar reference codec kernels and the
// vectorized ones (codec_kernels.h).
//
// Policy (mirrors the stats fused-kernel/reference split): the scalar
// kernels are the semantic ground truth, compiled unconditionally and
// byte-for-byte faithful to the original per-element codec loops; the
// vectorized kernels must produce bit-identical streams and are selected
// only when the host supports them. `CESM_SIMD` overrides detection:
//
//   CESM_SIMD=off|scalar|0   force the scalar reference path
//   CESM_SIMD=on|avx2|1      force the vectorized path (falls back to
//                            scalar with a warning when unsupported)
//   CESM_SIMD=auto / unset   use the vectorized path when the CPU has AVX2
//
// A malformed value warns once and behaves like `auto` — codec behavior
// must never depend on a typo aborting the process.

namespace cesm::comp::simd {

enum class Mode {
  kScalar,  ///< reference kernels only
  kSimd,    ///< vectorized kernels (AVX2 build of the kernel TU on x86)
};

/// Currently active kernel mode (env override or CPU detection, cached).
Mode active_mode();

/// True when the vectorized kernel TU was built for and can run on this CPU.
bool simd_supported();

const char* mode_name(Mode mode);

/// Test hook: force a mode for the current process (overrides env/detect).
void set_mode(Mode mode);

/// RAII mode override for tests (restores the previous mode on scope exit).
class ScopedMode {
 public:
  explicit ScopedMode(Mode mode) : prev_(active_mode()) { set_mode(mode); }
  ~ScopedMode() { set_mode(prev_); }
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode prev_;
};

}  // namespace cesm::comp::simd
