#pragma once
// Shared adaptive residual-magnitude coder.
//
// Encodes unsigned "zig-zagged" residuals: the bit-width class k is coded
// with a chain of adaptive binary models (cheap for the near-zero residuals
// prediction leaves behind), then the k-1 bits below the implicit leading
// one bit pass through the raw bypass path of the range coder.

#include <bit>
#include <cstdint>

#include "compress/rangecoder.h"
#include "util/error.h"

namespace cesm::comp {

class ResidualCoder {
 public:
  static constexpr unsigned kMaxClass = 68;

  void encode(RangeEncoder& enc, std::uint64_t z) {
    const unsigned k = z == 0 ? 0 : static_cast<unsigned>(std::bit_width(z));
    for (unsigned i = 0; i < k; ++i) enc.encode(models_[i], true);
    enc.encode(models_[k], false);
    if (k > 1) {
      const std::uint64_t rest = z & ((1ull << (k - 1)) - 1);
      if (k - 1 > 32) {
        enc.encode_raw(static_cast<std::uint32_t>(rest >> 32), k - 33);
        enc.encode_raw(static_cast<std::uint32_t>(rest), 32);
      } else {
        enc.encode_raw(static_cast<std::uint32_t>(rest), k - 1);
      }
    }
  }

  std::uint64_t decode(RangeDecoder& dec) {
    unsigned k = 0;
    while (dec.decode(models_[k])) {
      if (++k >= kMaxClass) throw FormatError("residual class overflow");
    }
    if (k == 0) return 0;
    std::uint64_t z = 1ull << (k - 1);
    if (k > 1) {
      if (k - 1 > 32) {
        z |= static_cast<std::uint64_t>(dec.decode_raw(k - 33)) << 32;
        z |= dec.decode_raw(32);
      } else {
        z |= dec.decode_raw(k - 1);
      }
    }
    return z;
  }

 private:
  BitModel models_[kMaxClass + 1];
};

}  // namespace cesm::comp
