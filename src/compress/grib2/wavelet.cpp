#include "compress/grib2/wavelet.h"

#include <algorithm>
#include <vector>

#include "compress/codec_kernels.h"
#include "util/error.h"

namespace cesm::comp {

namespace {

// Symmetric (half-sample) boundary extension index.
inline std::size_t mirror(std::ptrdiff_t i, std::size_t n) {
  if (n == 1) return 0;
  const auto period = static_cast<std::ptrdiff_t>(2 * n - 2);
  std::ptrdiff_t j = i % period;
  if (j < 0) j += period;
  if (j >= static_cast<std::ptrdiff_t>(n)) j = period - j;
  return static_cast<std::size_t>(j);
}

}  // namespace

void dwt53_forward_1d(std::span<const std::int64_t> in, std::span<std::int64_t> out) {
  const std::size_t n = in.size();
  CESM_REQUIRE(out.size() == n);
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  const std::size_t ns = (n + 1) / 2;  // low-pass count
  const std::size_t nd = n / 2;        // high-pass count

  const auto x = [&](std::ptrdiff_t i) { return in[mirror(i, n)]; };

  // Predict: d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2)
  std::vector<std::int64_t> d(nd);
  for (std::size_t i = 0; i < nd; ++i) {
    const auto k = static_cast<std::ptrdiff_t>(2 * i);
    d[i] = x(k + 1) - ((x(k) + x(k + 2)) >> 1);
  }
  // Update: s[i] = x[2i] + floor((d[i-1] + d[i] + 2) / 4)
  const auto dd = [&](std::ptrdiff_t i) -> std::int64_t {
    if (nd == 0) return 0;
    if (i < 0) i = 0;  // mirror of d at the left edge
    if (i >= static_cast<std::ptrdiff_t>(nd)) i = static_cast<std::ptrdiff_t>(nd) - 1;
    return d[static_cast<std::size_t>(i)];
  };
  for (std::size_t i = 0; i < ns; ++i) {
    const auto ii = static_cast<std::ptrdiff_t>(i);
    out[i] = in[2 * i] + ((dd(ii - 1) + dd(ii) + 2) >> 2);
  }
  for (std::size_t i = 0; i < nd; ++i) out[ns + i] = d[i];
}

void dwt53_inverse_1d(std::span<const std::int64_t> in, std::span<std::int64_t> out) {
  const std::size_t n = in.size();
  CESM_REQUIRE(out.size() == n);
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  const std::size_t ns = (n + 1) / 2;
  const std::size_t nd = n / 2;

  const auto dd = [&](std::ptrdiff_t i) -> std::int64_t {
    if (nd == 0) return 0;
    if (i < 0) i = 0;
    if (i >= static_cast<std::ptrdiff_t>(nd)) i = static_cast<std::ptrdiff_t>(nd) - 1;
    return in[ns + static_cast<std::size_t>(i)];
  };

  // Undo update: x[2i] = s[i] - floor((d[i-1] + d[i] + 2) / 4)
  for (std::size_t i = 0; i < ns; ++i) {
    const auto ii = static_cast<std::ptrdiff_t>(i);
    out[2 * i] = in[i] - ((dd(ii - 1) + dd(ii) + 2) >> 2);
  }
  // Undo predict: x[2i+1] = d[i] + floor((x[2i] + x[2i+2]) / 2)
  const auto xe = [&](std::ptrdiff_t k) -> std::int64_t {
    // Even reconstructed samples with mirror extension.
    const std::size_t m = mirror(k, n);
    CESM_ASSERT(m % 2 == 0 || m == n - 1);
    return out[m % 2 == 0 ? m : m - 1];  // defensive; mirror of even stays even
  };
  for (std::size_t i = 0; i < nd; ++i) {
    const auto k = static_cast<std::ptrdiff_t>(2 * i);
    out[2 * i + 1] = in[ns + i] + ((xe(k) + xe(k + 2)) >> 1);
  }
}

// The row/column sweeps are codec kernels (codec_kernels.h): the scalar
// reference keeps the historical gather-per-column loops, the vectorized
// path lifts whole rows at a time.

unsigned dwt53_forward_2d(std::span<std::int64_t> data, std::size_t rows, std::size_t cols,
                          unsigned levels) {
  CESM_REQUIRE(data.size() == rows * cols);
  std::size_t r_lim = rows, c_lim = cols;
  unsigned applied = 0;
  for (unsigned l = 0; l < levels; ++l) {
    if (r_lim < 8 && c_lim < 8) break;
    if (c_lim >= 8) kernels::dwt53_rows(data.data(), cols, r_lim, c_lim, false);
    if (r_lim >= 8) kernels::dwt53_cols(data.data(), cols, r_lim, c_lim, false);
    if (c_lim >= 8) c_lim = (c_lim + 1) / 2;
    if (r_lim >= 8) r_lim = (r_lim + 1) / 2;
    ++applied;
  }
  return applied;
}

void dwt53_inverse_2d(std::span<std::int64_t> data, std::size_t rows, std::size_t cols,
                      unsigned levels) {
  CESM_REQUIRE(data.size() == rows * cols);
  // Recompute the ladder of (r_lim, c_lim) the forward pass visited.
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  std::size_t r_lim = rows, c_lim = cols;
  for (unsigned l = 0; l < levels; ++l) {
    stack.emplace_back(r_lim, c_lim);
    if (c_lim >= 8) c_lim = (c_lim + 1) / 2;
    if (r_lim >= 8) r_lim = (r_lim + 1) / 2;
  }
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    auto [rl, cl] = *it;
    if (rl >= 8) kernels::dwt53_cols(data.data(), cols, rl, cl, true);
    if (cl >= 8) kernels::dwt53_rows(data.data(), cols, rl, cl, true);
  }
}

}  // namespace cesm::comp
