#include "compress/grib2/grib2.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <mutex>
#include <vector>

#include "compress/codec_kernels.h"
#include "compress/fpz/predictor.h"  // zigzag helpers
#include "compress/grib2/wavelet.h"
#include "compress/rangecoder.h"
#include "compress/residual.h"
#include "util/failpoint.h"

namespace cesm::comp {

namespace {

constexpr std::uint32_t kGribMagic = 0x32425247;  // "GRB2"
constexpr std::int64_t kMaxQuantized = 1ll << 28;  // before wavelet growth

struct Dims2 {
  std::size_t rows = 1, cols = 1;
};

Dims2 to_dims2(const Shape& shape) {
  Dims2 d;
  switch (shape.rank()) {
    case 1:
      d.cols = shape.dims[0];
      break;
    case 2:
      d.rows = shape.dims[0];
      d.cols = shape.dims[1];
      break;
    case 3:
      d.rows = shape.dims[0] * shape.dims[1];
      d.cols = shape.dims[2];
      break;
    default:
      throw InvalidArgument("grib2 supports rank 1..3");
  }
  return d;
}

/// Run-length encode the validity bitmap through the range coder.
void encode_bitmap(RangeEncoder& enc, ResidualCoder& coder,
                   std::span<const std::uint8_t> valid) {
  // Alternating run lengths, starting with the length of the initial
  // valid run (possibly zero).
  std::size_t i = 0;
  bool current = true;
  while (i < valid.size()) {
    std::size_t run = 0;
    while (i + run < valid.size() && (valid[i + run] != 0) == current) ++run;
    coder.encode(enc, run);
    i += run;
    current = !current;
  }
}

std::vector<std::uint8_t> decode_bitmap(RangeDecoder& dec, ResidualCoder& coder,
                                        std::size_t n) {
  std::vector<std::uint8_t> valid(n);
  std::size_t i = 0;
  bool current = true;
  while (i < n) {
    const std::uint64_t run = coder.decode(dec);
    if (run > n - i) throw FormatError("grib2 bitmap run overflow");
    std::fill(valid.begin() + static_cast<std::ptrdiff_t>(i),
              valid.begin() + static_cast<std::ptrdiff_t>(i + run),
              current ? std::uint8_t{1} : std::uint8_t{0});
    i += run;
    current = !current;
  }
  return valid;
}

// Variant-invariant stage: the validity bitmap and min/max scan never
// depend on the decimal scale, so one plan serves the whole scale ladder
// (the grib_tuning search plus the GRIB2 table variant). The quantize +
// wavelet lift does depend on the scale; the plan memoizes the most
// recent scale's lift behind its own lock, which turns the tuning
// pattern — every candidate scale re-encoding the same members, then the
// winning scale encoding them once more for the verdict — into one lift
// per (member, scale) with the winner's lift reused by the final verify.
// lift_q's capacity is reserved at build time so resident_bytes() stays
// constant while the memo is rewritten.
struct GribPlan final : PrepPlan {
  std::size_t n = 0;
  std::vector<std::uint8_t> valid;  // kept only when any_missing
  bool any_missing = false;
  double lo = 0.0, hi = 0.0;

  mutable std::mutex mu;
  mutable bool lift_cached = false;
  mutable int lift_d = 0;
  mutable int lift_bscale = 0;
  mutable unsigned lift_levels = 0;
  mutable std::vector<std::int64_t> lift_q;

  [[nodiscard]] std::size_t resident_bytes() const override {
    return valid.capacity() + lift_q.capacity() * sizeof(std::int64_t) + sizeof(*this);
  }
};

}  // namespace

Grib2Codec::Grib2Codec(int decimal_scale, std::optional<float> missing_value)
    : decimal_scale_(decimal_scale), missing_value_(missing_value) {
  CESM_REQUIRE(decimal_scale >= -30 && decimal_scale <= 30);
}

std::string Grib2Codec::name() const { return "GRIB2"; }

Bytes Grib2Codec::encode(std::span<const float> data, const Shape& shape) const {
  CESM_REQUIRE(shape.count() == data.size());
  const std::size_t n = data.size();

  // Validity bitmap (native GRIB2 missing-value support).
  std::vector<std::uint8_t> valid(n, 1);
  bool any_missing = false;
  if (missing_value_) {
    for (std::size_t i = 0; i < n; ++i) {
      if (data[i] == *missing_value_) {
        valid[i] = 0;
        any_missing = true;
      }
    }
  }

  // Reference value and quantization step. Non-finite points have no
  // quantized representation: an infinity would spin the binary-scale
  // search forever and a NaN would silently encode as garbage, so both are
  // rejected up front (the decoder could never reproduce them anyway).
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (!valid[i]) continue;
    if (!std::isfinite(data[i])) {
      throw InvalidArgument("grib2 cannot encode non-finite data");
    }
    lo = std::min(lo, static_cast<double>(data[i]));
    hi = std::max(hi, static_cast<double>(data[i]));
  }
  if (!(lo <= hi)) {  // entirely missing
    lo = 0.0;
    hi = 0.0;
  }

  const double dec_scale = std::pow(10.0, decimal_scale_);
  int binary_scale = 0;  // E: coarsen when the integer range would blow up
  while (std::ldexp((hi - lo) * dec_scale, -binary_scale) >
         static_cast<double>(kMaxQuantized)) {
    // decode() rejects binary scales above 62; refuse to emit one. (A float
    // range times 10^30 tops out near 10^68 ~ 2^226, far past 62 doublings.)
    if (++binary_scale > 62) {
      throw InvalidArgument("grib2 data range too wide for decimal scale");
    }
  }
  const double step = std::ldexp(1.0, binary_scale) / dec_scale;

  std::vector<std::int64_t> q(n);
  kernels::grib2_quantize(data.data(), any_missing ? valid.data() : nullptr, q.data(), n,
                          lo, step);

  const Dims2 dims = to_dims2(shape);
  const unsigned levels = dwt53_forward_2d(q, dims.rows, dims.cols, 5);

  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kGribMagic, shape);
  w.f64(lo);
  w.i32(decimal_scale_);
  w.i32(binary_scale);
  w.u8(levels);
  w.u8(any_missing ? 1 : 0);
  if (missing_value_) {
    w.u8(1);
    w.f32(*missing_value_);
  } else {
    w.u8(0);
    w.f32(0.0f);
  }

  RangeEncoder enc(out);
  ResidualCoder coder;
  if (any_missing) encode_bitmap(enc, coder, valid);
  ResidualCoder coeff_coder;
  for (std::size_t i = 0; i < n; ++i) {
    coeff_coder.encode(enc, zigzag_encode(static_cast<std::uint64_t>(q[i])));
  }
  enc.finish();
  return out;
}

std::vector<float> Grib2Codec::decode(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("grib2.decode");
  ByteReader r(stream);
  const Shape shape = wire::read_header(r, kGribMagic);
  const double lo = r.f64();
  const int dscale = r.i32();
  const int bscale = r.i32();
  const unsigned levels = r.u8();
  const bool any_missing = r.u8() != 0;
  const bool has_missing_value = r.u8() != 0;
  const float missing_value = r.f32();
  if (dscale < -30 || dscale > 30 || bscale < 0 || bscale > 62 || levels > 32) {
    throw FormatError("grib2 bad scales");
  }
  if (any_missing && !has_missing_value) throw FormatError("grib2 bitmap without fill");

  const std::size_t n = shape.count();
  RangeDecoder dec(stream.subspan(r.position()));
  ResidualCoder coder;
  std::vector<std::uint8_t> valid;
  if (any_missing) {
    valid = decode_bitmap(dec, coder, n);
  }
  ResidualCoder coeff_coder;
  std::vector<std::int64_t> q(n);
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = static_cast<std::int64_t>(zigzag_decode(coeff_coder.decode(dec)));
  }

  const Dims2 dims = to_dims2(shape);
  dwt53_inverse_2d(q, dims.rows, dims.cols, levels);

  const double step = std::ldexp(1.0, bscale) / std::pow(10.0, dscale);
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (any_missing && !valid[i]) {
      out[i] = missing_value;
    } else {
      out[i] = static_cast<float>(lo + static_cast<double>(q[i]) * step);
    }
  }
  return out;
}

std::string Grib2Codec::prep_key() const {
  if (!missing_value_) return "grib2:none";
  return "grib2:f" + std::to_string(std::bit_cast<std::uint32_t>(*missing_value_));
}

PrepPlanPtr Grib2Codec::build_prep(std::span<const float> data, const Shape& shape) const {
  CESM_REQUIRE(shape.count() == data.size());
  const std::size_t n = data.size();

  auto plan = std::make_shared<GribPlan>();
  plan->n = n;
  std::vector<std::uint8_t> valid(n, 1);
  if (missing_value_) {
    for (std::size_t i = 0; i < n; ++i) {
      if (data[i] == *missing_value_) {
        valid[i] = 0;
        plan->any_missing = true;
      }
    }
  }

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (!valid[i]) continue;
    if (!std::isfinite(data[i])) {
      throw InvalidArgument("grib2 cannot encode non-finite data");
    }
    lo = std::min(lo, static_cast<double>(data[i]));
    hi = std::max(hi, static_cast<double>(data[i]));
  }
  if (!(lo <= hi)) {  // entirely missing
    lo = 0.0;
    hi = 0.0;
  }
  plan->lo = lo;
  plan->hi = hi;
  // Rank validation after the finite scan, mirroring encode()'s error
  // precedence for inputs that are invalid in more than one way.
  (void)to_dims2(shape);
  if (plan->any_missing) plan->valid = std::move(valid);
  plan->lift_q.reserve(n);
  return plan;
}

Bytes Grib2Codec::encode_with_prep(const PrepPlan& plan, std::span<const float> data,
                                   const Shape& shape) const {
  const auto* p = dynamic_cast<const GribPlan*>(&plan);
  CESM_REQUIRE(p != nullptr && p->n == data.size());
  CESM_REQUIRE(shape.count() == data.size());
  const std::size_t n = data.size();

  std::lock_guard<std::mutex> lock(p->mu);
  if (!p->lift_cached || p->lift_d != decimal_scale_) {
    p->lift_cached = false;  // a throw below must not leave a stale memo
    const double dec_scale = std::pow(10.0, decimal_scale_);
    int binary_scale = 0;
    while (std::ldexp((p->hi - p->lo) * dec_scale, -binary_scale) >
           static_cast<double>(kMaxQuantized)) {
      if (++binary_scale > 62) {
        throw InvalidArgument("grib2 data range too wide for decimal scale");
      }
    }
    const double step = std::ldexp(1.0, binary_scale) / dec_scale;

    p->lift_q.resize(n);
    kernels::grib2_quantize(data.data(), p->any_missing ? p->valid.data() : nullptr,
                            p->lift_q.data(), n, p->lo, step);
    const Dims2 dims = to_dims2(shape);
    p->lift_levels = dwt53_forward_2d(p->lift_q, dims.rows, dims.cols, 5);
    p->lift_bscale = binary_scale;
    p->lift_d = decimal_scale_;
    p->lift_cached = true;
  }

  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kGribMagic, shape);
  w.f64(p->lo);
  w.i32(decimal_scale_);
  w.i32(p->lift_bscale);
  w.u8(static_cast<std::uint8_t>(p->lift_levels));
  w.u8(p->any_missing ? 1 : 0);
  if (missing_value_) {
    w.u8(1);
    w.f32(*missing_value_);
  } else {
    w.u8(0);
    w.f32(0.0f);
  }

  RangeEncoder enc(out);
  ResidualCoder coder;
  if (p->any_missing) encode_bitmap(enc, coder, p->valid);
  ResidualCoder coeff_coder;
  for (std::size_t i = 0; i < n; ++i) {
    coeff_coder.encode(enc, zigzag_encode(static_cast<std::uint64_t>(p->lift_q[i])));
  }
  enc.finish();
  return out;
}

int choose_decimal_scale(double min_value, double max_value, int significant_digits) {
  CESM_REQUIRE(significant_digits >= 1 && significant_digits <= 12);
  const double range = max_value - min_value;
  if (!(range > 0.0)) return significant_digits;
  const double d = static_cast<double>(significant_digits) - std::log10(range);
  return std::clamp(static_cast<int>(std::ceil(d)), -30, 30);
}

}  // namespace cesm::comp
