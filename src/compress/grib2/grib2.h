#pragma once
// GRIB2-class codec with a JPEG2000-style second stage.
//
// Mirrors the WMO GRIB2 data representation the paper evaluates:
//   * decimal scale factor D and binary scale factor E quantize the field
//     to integers:  q = round((y - R) * 10^D / 2^E)  with reference value
//     R = field minimum. Quantization is *absolute*-error bounded
//     (0.5 * 2^E / 10^D), the root cause of GRIB2's collapse on
//     huge-range variables like CCN3 in the paper's ensemble tests;
//   * a native missing-value bitmap (the only method in Table 1 with
//     special-value support);
//   * the integer field is then compressed losslessly with a reversible
//     CDF 5/3 wavelet + adaptive coder (the "JPEG2000 compression"
//     option of the GRIB2 standard) — so the format conversion is the
//     only lossy step, exactly as the paper describes;
//   * D must be customized per variable (§5: results were "quite poor"
//     with one global D); choose_decimal_scale() provides the
//     magnitude-based default the paper starts from, and the ensemble
//     tuner in core/ reproduces their RMSZ-guided refinement.

#include <optional>

#include "compress/codec.h"

namespace cesm::comp {

class Grib2Codec final : public Codec {
 public:
  /// `decimal_scale`: D in the GRIB2 sense — the field is kept to about
  /// 10^-D absolute precision. `missing_value`: values exactly equal are
  /// recorded in the bitmap and restored verbatim.
  explicit Grib2Codec(int decimal_scale,
                      std::optional<float> missing_value = std::nullopt);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string family() const override { return "GRIB2"; }
  [[nodiscard]] bool is_lossless() const override { return false; }

  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.lossless_mode = false,  // format conversion is lossy
                        .special_values = true,
                        .freely_available = true,
                        .fixed_quality = false,
                        .fixed_rate = false,
                        .handles_64bit = false};
  }

  [[nodiscard]] Bytes encode(std::span<const float> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<float> decode(std::span<const std::uint8_t> stream) const override;

  /// Prep plan: validity bitmap + min/max scan shared across the whole
  /// decimal-scale ladder, with the latest scale's quantize+wavelet lift
  /// memoized so the tuning winner's lift is reused by the final verify
  /// (see prep.h).
  [[nodiscard]] std::string prep_key() const override;
  [[nodiscard]] PrepPlanPtr build_prep(std::span<const float> data,
                                       const Shape& shape) const override;
  [[nodiscard]] Bytes encode_with_prep(const PrepPlan& plan, std::span<const float> data,
                                       const Shape& shape) const override;

  [[nodiscard]] int decimal_scale() const { return decimal_scale_; }

 private:
  int decimal_scale_;
  std::optional<float> missing_value_;
};

/// Magnitude-based default D for a field spanning [min, max]: keeps about
/// `significant_digits` digits across the range (the paper's starting
/// point before RMSZ-guided tuning).
int choose_decimal_scale(double min_value, double max_value, int significant_digits = 4);

}  // namespace cesm::comp
