#pragma once
// Reversible integer wavelet transform (CDF 5/3, the lossless JPEG2000
// filter), used as the "JPEG2000 stage" behind the GRIB2 quantizer.
//
// The lifting scheme operates on integers and is exactly invertible, so
// all loss in the GRIB2 codec comes from the decimal-scale quantization —
// matching the paper's observation that the GRIB2 *format conversion*
// itself is the lossy step.

#include <cstdint>
#include <span>
#include <vector>

namespace cesm::comp {

/// One level of forward CDF 5/3 lifting on a strided signal of length n.
/// Low-pass (s) coefficients land in positions 0..ceil(n/2)-1 and
/// high-pass (d) coefficients in the remaining positions of `out`.
void dwt53_forward_1d(std::span<const std::int64_t> in, std::span<std::int64_t> out);

/// Inverse of dwt53_forward_1d.
void dwt53_inverse_1d(std::span<const std::int64_t> in, std::span<std::int64_t> out);

/// Multi-level separable 2-D forward transform in place (row-major
/// rows x cols). `levels` halvings are applied to the low-pass quadrant;
/// the transform stops early once a side drops below 8 samples.
/// Returns the number of levels actually applied.
unsigned dwt53_forward_2d(std::span<std::int64_t> data, std::size_t rows, std::size_t cols,
                          unsigned levels);

/// Inverse multi-level 2-D transform; `levels` must be the value returned
/// by the forward call.
void dwt53_inverse_2d(std::span<std::int64_t> data, std::size_t rows, std::size_t cols,
                      unsigned levels);

}  // namespace cesm::comp
