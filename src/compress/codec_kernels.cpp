// Runtime dispatch between the scalar reference kernels and the vectorized
// ones. Codecs call the unqualified kernels::* entry points; the mode is a
// cached atomic read (simd.h), so dispatch cost is negligible next to the
// kernels themselves.

#include "compress/codec_kernels.h"

#include "compress/simd.h"

namespace cesm::comp::kernels {

namespace {

inline bool use_vec() { return simd::active_mode() == simd::Mode::kSimd; }

}  // namespace

void ordered_from_f32(const float* src, std::uint32_t* dst, std::size_t n,
                      unsigned shift) {
  (use_vec() ? vec::ordered_from_f32 : scalar::ordered_from_f32)(src, dst, n, shift);
}

void ordered_from_f64(const double* src, std::uint64_t* dst, std::size_t n,
                      unsigned shift) {
  (use_vec() ? vec::ordered_from_f64 : scalar::ordered_from_f64)(src, dst, n, shift);
}

void f32_from_ordered(const std::uint32_t* q, float* dst, std::size_t n, unsigned shift,
                      std::uint32_t half) {
  (use_vec() ? vec::f32_from_ordered : scalar::f32_from_ordered)(q, dst, n, shift, half);
}

void f64_from_ordered(const std::uint64_t* q, double* dst, std::size_t n, unsigned shift,
                      std::uint64_t half) {
  (use_vec() ? vec::f64_from_ordered : scalar::f64_from_ordered)(q, dst, n, shift, half);
}

void lorenzo_residuals_u32(const std::uint32_t* q, std::uint32_t* zz, Dims d) {
  (use_vec() ? vec::lorenzo_residuals_u32 : scalar::lorenzo_residuals_u32)(q, zz, d);
}

void lorenzo_residuals_u64(const std::uint64_t* q, std::uint64_t* zz, Dims d) {
  (use_vec() ? vec::lorenzo_residuals_u64 : scalar::lorenzo_residuals_u64)(q, zz, d);
}

void lorenzo_reconstruct_u32(std::uint32_t* q, const std::uint32_t* zz, Dims d) {
  (use_vec() ? vec::lorenzo_reconstruct_u32 : scalar::lorenzo_reconstruct_u32)(q, zz, d);
}

void lorenzo_reconstruct_u64(std::uint64_t* q, const std::uint64_t* zz, Dims d) {
  (use_vec() ? vec::lorenzo_reconstruct_u64 : scalar::lorenzo_reconstruct_u64)(q, zz, d);
}

void sort_perm_f32(const float* data, std::uint32_t* perm, std::size_t len) {
  (use_vec() ? vec::sort_perm_f32 : scalar::sort_perm_f32)(data, perm, len);
}

void sort_perm_f64(const double* data, std::uint32_t* perm, std::size_t len) {
  (use_vec() ? vec::sort_perm_f64 : scalar::sort_perm_f64)(data, perm, len);
}

void apax_quantize(const double* src, std::size_t first, std::size_t len, double scale,
                   unsigned bits, std::size_t extra, std::uint32_t* codes) {
  (use_vec() ? vec::apax_quantize : scalar::apax_quantize)(src, first, len, scale, bits,
                                                           extra, codes);
}

void grib2_quantize(const float* data, const std::uint8_t* valid, std::int64_t* q,
                    std::size_t n, double lo, double step) {
  (use_vec() ? vec::grib2_quantize : scalar::grib2_quantize)(data, valid, q, n, lo, step);
}

void dwt53_rows(std::int64_t* data, std::size_t cols, std::size_t r_lim,
                std::size_t c_lim, bool inverse) {
  (use_vec() ? vec::dwt53_rows : scalar::dwt53_rows)(data, cols, r_lim, c_lim, inverse);
}

void dwt53_cols(std::int64_t* data, std::size_t cols, std::size_t r_lim,
                std::size_t c_lim, bool inverse) {
  (use_vec() ? vec::dwt53_cols : scalar::dwt53_cols)(data, cols, r_lim, c_lim, inverse);
}

}  // namespace cesm::comp::kernels
