#include "compress/isabela/bspline.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace cesm::comp {

void bspline_weights(double u, double w[4]) {
  const double u2 = u * u;
  const double u3 = u2 * u;
  w[0] = (1.0 - 3.0 * u + 3.0 * u2 - u3) / 6.0;
  w[1] = (3.0 * u3 - 6.0 * u2 + 4.0) / 6.0;
  w[2] = (-3.0 * u3 + 3.0 * u2 + 3.0 * u + 1.0) / 6.0;
  w[3] = u3 / 6.0;
}

void solve_banded_spd(std::vector<std::vector<double>>& band, std::span<double> b,
                      std::size_t bw) {
  const std::size_t n = b.size();
  CESM_REQUIRE(band.size() == n);
  // In-place banded Cholesky: A = L Lᵀ with band[r][d] holding L(r+d, r)
  // after factorization (we reuse the upper-band storage symmetrically).
  for (std::size_t j = 0; j < n; ++j) {
    double diag = band[j][0];
    for (std::size_t k = (j > bw ? j - bw : 0); k < j; ++k) {
      const std::size_t d = j - k;
      if (d <= bw) diag -= band[k][d] * band[k][d];
    }
    if (diag <= 0.0) throw InvalidArgument("banded system not positive definite");
    const double ljj = std::sqrt(diag);
    band[j][0] = ljj;
    for (std::size_t d = 1; d <= bw && j + d < n; ++d) {
      double v = band[j][d];
      // L(j+d, j) = (A(j+d, j) - sum_k L(j+d,k) L(j,k)) / L(j,j)
      for (std::size_t k = (j + d > bw ? j + d - bw : 0); k < j; ++k) {
        const std::size_t d1 = j + d - k;
        const std::size_t d2 = j - k;
        if (d1 <= bw && d2 <= bw) v -= band[k][d1] * band[k][d2];
      }
      band[j][d] = v / ljj;
    }
  }
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t d = 1; d <= bw && d <= i; ++d) {
      v -= band[i - d][d] * b[i - d];
    }
    b[i] = v / band[i][0];
  }
  // Backward substitution Lᵀ x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t d = 1; d <= bw && ii + d < n; ++d) {
      v -= band[ii][d] * b[ii + d];
    }
    b[ii] = v / band[ii][0];
  }
}

void CubicBSpline::locate(std::size_t i, std::size_t& segment, double& u) const {
  const std::size_t segments = coeff_.size() - 3;
  const double t = n_ > 1
                       ? static_cast<double>(i) / static_cast<double>(n_ - 1) *
                             static_cast<double>(segments)
                       : 0.0;
  segment = std::min(static_cast<std::size_t>(t), segments - 1);
  u = t - static_cast<double>(segment);
}

CubicBSpline::CubicBSpline(std::vector<double> coefficients, std::size_t sample_count)
    : coeff_(std::move(coefficients)), n_(sample_count) {
  CESM_REQUIRE(coeff_.size() >= 4);
  CESM_REQUIRE(n_ >= 1);
}

double CubicBSpline::evaluate(std::size_t i) const {
  std::size_t seg;
  double u, w[4];
  locate(i, seg, u);
  bspline_weights(u, w);
  return w[0] * coeff_[seg] + w[1] * coeff_[seg + 1] + w[2] * coeff_[seg + 2] +
         w[3] * coeff_[seg + 3];
}

std::vector<double> CubicBSpline::evaluate_all() const {
  std::vector<double> out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = evaluate(i);
  return out;
}

CubicBSpline CubicBSpline::fit(std::span<const float> values, std::size_t coeff_count) {
  const std::size_t n = values.size();
  CESM_REQUIRE(n >= 1);
  coeff_count = std::max<std::size_t>(4, coeff_count);

  constexpr std::size_t kBandwidth = 3;
  CubicBSpline probe(std::vector<double>(coeff_count, 0.0), n);

  // Accumulate the banded normal equations N = AᵀA, rhs = Aᵀy.
  std::vector<std::vector<double>> band(coeff_count, std::vector<double>(kBandwidth + 1, 0.0));
  std::vector<double> rhs(coeff_count, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t seg;
    double u, w[4];
    probe.locate(i, seg, u);
    bspline_weights(u, w);
    const double y = static_cast<double>(values[i]);
    for (std::size_t a = 0; a < 4; ++a) {
      rhs[seg + a] += w[a] * y;
      for (std::size_t b = a; b < 4; ++b) {
        band[seg + a][b - a] += w[a] * w[b];
      }
    }
  }
  // Tiny ridge keeps the factorization stable when a coefficient has thin
  // support (short tail windows).
  double trace = 0.0;
  for (std::size_t j = 0; j < coeff_count; ++j) trace += band[j][0];
  const double ridge = 1e-9 * (trace / static_cast<double>(coeff_count)) + 1e-12;
  for (std::size_t j = 0; j < coeff_count; ++j) band[j][0] += ridge;

  solve_banded_spd(band, rhs, kBandwidth);
  return CubicBSpline(std::move(rhs), n);
}

}  // namespace cesm::comp
