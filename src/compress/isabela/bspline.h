#pragma once
// Uniform cubic B-spline least-squares fitting (ISABELA's curve stage).
//
// ISABELA sorts each window so the data become a smooth monotone curve,
// then approximates that curve with a low-order spline. We fit K control
// coefficients of a uniform cubic B-spline over [0, n-1] by ordinary least
// squares; the normal equations are banded (bandwidth 3) and solved with a
// banded Cholesky factorization.

#include <cstddef>
#include <span>
#include <vector>

namespace cesm::comp {

/// Fitted uniform cubic B-spline over sample indices 0..n-1.
class CubicBSpline {
 public:
  /// Fit `coeff_count` (>= 4) coefficients to `values` by least squares.
  static CubicBSpline fit(std::span<const float> values, std::size_t coeff_count);

  /// Construct from stored coefficients (decode path).
  CubicBSpline(std::vector<double> coefficients, std::size_t sample_count);

  /// Evaluate the spline at sample index i (0 <= i < sample_count).
  [[nodiscard]] double evaluate(std::size_t i) const;

  /// Evaluate at every sample index.
  [[nodiscard]] std::vector<double> evaluate_all() const;

  [[nodiscard]] const std::vector<double>& coefficients() const { return coeff_; }
  [[nodiscard]] std::size_t sample_count() const { return n_; }

 private:
  /// Map sample index to (segment, local parameter u in [0,1)).
  void locate(std::size_t i, std::size_t& segment, double& u) const;

  std::vector<double> coeff_;
  std::size_t n_;
};

/// The four cubic B-spline blending weights at local parameter u.
void bspline_weights(double u, double w[4]);

/// Solve the symmetric positive-definite banded system A x = b where A is
/// given in banded storage: band[r][d] = A(r, r+d) for d = 0..bandwidth.
/// Overwrites `b` with the solution. Throws InvalidArgument if A is not
/// positive definite.
void solve_banded_spd(std::vector<std::vector<double>>& band, std::span<double> b,
                      std::size_t bandwidth);

}  // namespace cesm::comp
