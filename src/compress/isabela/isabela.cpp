#include "compress/isabela/isabela.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "compress/bitio.h"
#include "compress/codec_kernels.h"
#include "compress/isabela/bspline.h"
#include "compress/rangecoder.h"
#include "compress/residual.h"
#include "compress/fpz/predictor.h"  // zigzag helpers
#include "util/failpoint.h"

namespace cesm::comp {

namespace {

constexpr std::uint32_t kIsaMagic = 0x31415349;  // "ISA1"

unsigned bits_for(std::size_t count) {
  return count <= 1 ? 1 : static_cast<unsigned>(std::bit_width(count - 1));
}

/// Per-point correction step: relative to the spline estimate, floored so
/// near-zero values cannot demand unbounded correction indices.
inline double correction_step(double estimate, double eps_frac, double floor_abs) {
  return eps_frac * std::max(std::fabs(estimate), floor_abs);
}

inline void sort_window(const float* data, std::uint32_t* perm, std::size_t len) {
  kernels::sort_perm_f32(data, perm, len);
}
inline void sort_window(const double* data, std::uint32_t* perm, std::size_t len) {
  kernels::sort_perm_f64(data, perm, len);
}

template <typename T>
Bytes isa_encode_impl(std::span<const T> data, const Shape& shape, double eps_frac,
                      std::size_t window, std::size_t coefficients) {
  CESM_REQUIRE(shape.count() == data.size());
  // Mirror the decoder's header checks: parameters that decode() would
  // reject (or that the u32/u16 header fields would truncate into a
  // rejectable value) must never produce a stream.
  CESM_REQUIRE(eps_frac > 0.0 && eps_frac < 1.0);
  CESM_REQUIRE(window > 0 && window <= (1u << 20));
  CESM_REQUIRE(coefficients >= 4 && coefficients <= 0xffff);
  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kIsaMagic, shape);
  w.u8(sizeof(T));
  w.f64(eps_frac);
  w.u32(static_cast<std::uint32_t>(window));
  w.u16(static_cast<std::uint16_t>(coefficients));

  const std::size_t n = data.size();
  const std::size_t nwin = (n + window - 1) / window;

  // Window payloads are concatenated; each is (coeffs, floor, permutation,
  // range-coded corrections) with a byte-length prefix for random access.
  for (std::size_t wi = 0; wi < nwin; ++wi) {
    const std::size_t lo = wi * window;
    const std::size_t len = std::min(window, n - lo);

    std::vector<std::uint32_t> perm(len);
    sort_window(data.data() + lo, perm.data(), len);

    std::vector<float> sorted(len);
    for (std::size_t i = 0; i < len; ++i) {
      sorted[i] = static_cast<float>(data[lo + perm[i]]);
    }

    const std::size_t ncoef = std::max<std::size_t>(4, std::min(coefficients, len));
    const CubicBSpline spline = CubicBSpline::fit(sorted, ncoef);
    const std::vector<double> estimate = spline.evaluate_all();

    double max_abs = 0.0;
    for (float v : sorted) max_abs = std::max(max_abs, std::fabs(static_cast<double>(v)));
    const double floor_abs = std::max(1e-7 * max_abs, 1e-300);

    Bytes payload;
    ByteWriter pw(payload);
    pw.u32(static_cast<std::uint32_t>(len));
    pw.u16(static_cast<std::uint16_t>(ncoef));
    pw.f64(floor_abs);
    for (double c : spline.coefficients()) pw.f64(c);

    {
      BitWriter bw(payload);
      const unsigned pbits = bits_for(len);
      for (std::uint32_t p : perm) bw.put(p, pbits);
      bw.align();
    }
    {
      RangeEncoder enc(payload);
      ResidualCoder coder;
      for (std::size_t i = 0; i < len; ++i) {
        const double step = correction_step(estimate[i], eps_frac, floor_abs);
        const double diff = static_cast<double>(sorted[i]) - estimate[i];
        const auto m = static_cast<std::int64_t>(std::llround(diff / step));
        coder.encode(enc, zigzag_encode(static_cast<std::uint64_t>(m)));
      }
      enc.finish();
    }

    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.raw(payload);
  }
  return out;
}

template <typename T>
std::vector<T> isa_decode_impl(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const Shape shape = wire::read_header(r, kIsaMagic);
  const std::size_t elem = r.u8();
  if (elem != sizeof(T)) throw FormatError("isabela element size mismatch");
  const double eps_frac = r.f64();
  const std::size_t window = r.u32();
  const std::size_t coefficients = r.u16();
  if (window == 0 || coefficients < 4) throw FormatError("isabela bad parameters");

  const std::size_t n = shape.count();
  std::vector<T> out(n);
  const std::size_t nwin = (n + window - 1) / window;
  for (std::size_t wi = 0; wi < nwin; ++wi) {
    const std::size_t lo = wi * window;
    const std::uint32_t payload_size = r.u32();
    ByteReader pr(r.raw(payload_size));

    const std::size_t len = pr.u32();
    if (len == 0 || len > window || lo + len > n) throw FormatError("isabela bad window");
    const std::size_t ncoef = pr.u16();
    if (ncoef < 4 || ncoef > len + 4) throw FormatError("isabela bad coefficient count");
    const double floor_abs = pr.f64();
    std::vector<double> coeff(ncoef);
    for (double& c : coeff) c = pr.f64();
    const CubicBSpline spline(std::move(coeff), len);
    const std::vector<double> estimate = spline.evaluate_all();

    const unsigned pbits = bits_for(len);
    const std::size_t perm_bytes = (len * pbits + 7) / 8;
    std::vector<std::uint32_t> perm(len);
    {
      BitReader br(pr.raw(perm_bytes));
      for (auto& p : perm) {
        p = static_cast<std::uint32_t>(br.get(pbits));
        if (p >= len) throw FormatError("isabela permutation out of range");
      }
    }

    RangeDecoder dec(pr.raw(pr.remaining()));
    ResidualCoder coder;
    for (std::size_t i = 0; i < len; ++i) {
      const auto m = static_cast<std::int64_t>(zigzag_decode(coder.decode(dec)));
      const double step = correction_step(estimate[i], eps_frac, floor_abs);
      const double value = estimate[i] + static_cast<double>(m) * step;
      out[lo + perm[i]] = static_cast<T>(value);
    }
  }
  return out;
}

// Variant-invariant stage of the float encode: ISABELA's dominant cost is
// the per-window sort + B-spline fit, and the error bound (eps) only
// enters the correction loop — so one plan serves every ISA-x.y variant.
// `sorted` keeps the float-precision values the direct path casts through,
// and `estimate` the spline evaluation over them, so the correction
// quantization sees bit-identical doubles.
struct IsaWindow {
  std::vector<std::uint32_t> perm;
  std::vector<float> sorted;
  std::vector<double> coeffs;
  std::vector<double> estimate;
  double floor_abs = 0.0;
};

struct IsaPlan final : PrepPlan {
  std::vector<IsaWindow> windows;
  std::size_t n = 0;
  std::size_t bytes = sizeof(IsaPlan);

  [[nodiscard]] std::size_t resident_bytes() const override { return bytes; }
};

}  // namespace

IsabelaCodec::IsabelaCodec(double rel_error_percent, std::size_t window,
                           std::size_t coefficients)
    : rel_error_percent_(rel_error_percent), window_(window), coefficients_(coefficients) {
  CESM_REQUIRE(rel_error_percent > 0.0 && rel_error_percent < 100.0);
  CESM_REQUIRE(window >= 16 && window <= (1u << 20));
  // The stream header stores the coefficient count as u16; anything wider
  // would truncate into a value decode() rejects.
  CESM_REQUIRE(coefficients >= 4 && coefficients <= window && coefficients <= 0xffff);
}

std::string IsabelaCodec::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ISA-%.1f", rel_error_percent_);
  return buf;
}

Bytes IsabelaCodec::encode(std::span<const float> data, const Shape& shape) const {
  return isa_encode_impl<float>(data, shape, rel_error_percent_ / 100.0, window_,
                                coefficients_);
}

std::vector<float> IsabelaCodec::decode(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("isabela.decode");
  return isa_decode_impl<float>(stream);
}

Bytes IsabelaCodec::encode64(std::span<const double> data, const Shape& shape) const {
  return isa_encode_impl<double>(data, shape, rel_error_percent_ / 100.0, window_,
                                 coefficients_);
}

std::vector<double> IsabelaCodec::decode64(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("isabela.decode");
  return isa_decode_impl<double>(stream);
}

std::string IsabelaCodec::prep_key() const {
  return "isa:w" + std::to_string(window_) + ":c" + std::to_string(coefficients_);
}

PrepPlanPtr IsabelaCodec::build_prep(std::span<const float> data,
                                     const Shape& shape) const {
  CESM_REQUIRE(shape.count() == data.size());
  const std::size_t n = data.size();
  const std::size_t nwin = (n + window_ - 1) / window_;

  auto plan = std::make_shared<IsaPlan>();
  plan->n = n;
  plan->windows.resize(nwin);
  for (std::size_t wi = 0; wi < nwin; ++wi) {
    const std::size_t lo = wi * window_;
    const std::size_t len = std::min(window_, n - lo);
    IsaWindow& win = plan->windows[wi];

    win.perm.resize(len);
    sort_window(data.data() + lo, win.perm.data(), len);

    win.sorted.resize(len);
    for (std::size_t i = 0; i < len; ++i) win.sorted[i] = data[lo + win.perm[i]];

    const std::size_t ncoef = std::max<std::size_t>(4, std::min(coefficients_, len));
    const CubicBSpline spline = CubicBSpline::fit(win.sorted, ncoef);
    win.coeffs = spline.coefficients();
    win.estimate = spline.evaluate_all();

    double max_abs = 0.0;
    for (float v : win.sorted) {
      max_abs = std::max(max_abs, std::fabs(static_cast<double>(v)));
    }
    win.floor_abs = std::max(1e-7 * max_abs, 1e-300);

    plan->bytes += sizeof(IsaWindow) + win.perm.capacity() * sizeof(std::uint32_t) +
                   win.sorted.capacity() * sizeof(float) +
                   (win.coeffs.capacity() + win.estimate.capacity()) * sizeof(double);
  }
  return plan;
}

Bytes IsabelaCodec::encode_with_prep(const PrepPlan& plan, std::span<const float> data,
                                     const Shape& shape) const {
  const auto* p = dynamic_cast<const IsaPlan*>(&plan);
  CESM_REQUIRE(p != nullptr && p->n == data.size());
  CESM_REQUIRE(shape.count() == data.size());
  const double eps_frac = rel_error_percent_ / 100.0;
  CESM_REQUIRE(eps_frac > 0.0 && eps_frac < 1.0);
  CESM_REQUIRE(window_ > 0 && window_ <= (1u << 20));
  CESM_REQUIRE(coefficients_ >= 4 && coefficients_ <= 0xffff);

  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kIsaMagic, shape);
  w.u8(sizeof(float));
  w.f64(eps_frac);
  w.u32(static_cast<std::uint32_t>(window_));
  w.u16(static_cast<std::uint16_t>(coefficients_));

  for (const IsaWindow& win : p->windows) {
    const std::size_t len = win.sorted.size();

    Bytes payload;
    ByteWriter pw(payload);
    pw.u32(static_cast<std::uint32_t>(len));
    pw.u16(static_cast<std::uint16_t>(win.coeffs.size()));
    pw.f64(win.floor_abs);
    for (double c : win.coeffs) pw.f64(c);

    {
      BitWriter bw(payload);
      const unsigned pbits = bits_for(len);
      for (std::uint32_t q : win.perm) bw.put(q, pbits);
      bw.align();
    }
    {
      RangeEncoder enc(payload);
      ResidualCoder coder;
      for (std::size_t i = 0; i < len; ++i) {
        const double step = correction_step(win.estimate[i], eps_frac, win.floor_abs);
        const double diff = static_cast<double>(win.sorted[i]) - win.estimate[i];
        const auto m = static_cast<std::int64_t>(std::llround(diff / step));
        coder.encode(enc, zigzag_encode(static_cast<std::uint64_t>(m)));
      }
      enc.finish();
    }

    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.raw(payload);
  }
  return out;
}

}  // namespace cesm::comp
