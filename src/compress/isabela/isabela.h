#pragma once
// ISABELA-class codec (Lakshminarasimhan et al., Euro-Par'11).
//
// Pipeline, faithful to the published design:
//   1. partition the stream into fixed windows (paper-recommended 1024);
//   2. sort each window ascending — sorting preconditions noisy data into
//      a smooth monotone curve;
//   3. approximate the sorted curve with a cubic B-spline (few dozen
//      coefficients per window);
//   4. store the sort permutation (the dominant cost at single precision,
//      which is why the paper's ISA variants have such similar CRs);
//   5. guarantee a per-point *relative* error by storing quantized
//      corrections against the spline.
//
// Windows decode independently, preserving ISABELA's random-access pitch.

#include "compress/codec.h"

namespace cesm::comp {

class IsabelaCodec final : public Codec {
 public:
  /// `rel_error_percent`: per-point relative error bound in percent (the
  /// paper runs 1.0, 0.5 and 0.1). `window`: sort window (default 1024).
  /// `coefficients`: B-spline coefficients per full window.
  explicit IsabelaCodec(double rel_error_percent, std::size_t window = 1024,
                        std::size_t coefficients = 32);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string family() const override { return "ISABELA"; }
  [[nodiscard]] bool is_lossless() const override { return false; }

  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.lossless_mode = false,
                        .special_values = false,
                        .freely_available = true,
                        .fixed_quality = false,
                        .fixed_rate = false,
                        .handles_64bit = true};
  }

  [[nodiscard]] Bytes encode(std::span<const float> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<float> decode(std::span<const std::uint8_t> stream) const override;
  [[nodiscard]] Bytes encode64(std::span<const double> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<double> decode64(
      std::span<const std::uint8_t> stream) const override;

  /// Prep plan: per-window sort permutation + spline fit, shared by every
  /// error-bound variant with the same window/coefficient parameters (the
  /// bound only enters the correction coding; see prep.h).
  [[nodiscard]] std::string prep_key() const override;
  [[nodiscard]] PrepPlanPtr build_prep(std::span<const float> data,
                                       const Shape& shape) const override;
  [[nodiscard]] Bytes encode_with_prep(const PrepPlan& plan, std::span<const float> data,
                                       const Shape& shape) const override;

  [[nodiscard]] double rel_error_percent() const { return rel_error_percent_; }
  [[nodiscard]] std::size_t window() const { return window_; }

 private:
  double rel_error_percent_;
  std::size_t window_;
  std::size_t coefficients_;
};

}  // namespace cesm::comp
