#pragma once
// Bit-level I/O used by every entropy-coding stage.
//
// Bits are packed MSB-first within each byte: the first bit written becomes
// the most significant bit of the first output byte. This ordering makes
// streams readable in a debugger and matches the GRIB2 packing convention.

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.h"
#include "util/error.h"

namespace cesm::comp {

/// MSB-first bit sink appending to a caller-owned byte vector.
class BitWriter {
 public:
  explicit BitWriter(Bytes& out) : out_(out) {}

  /// Write the low `nbits` bits of `value`, most significant first.
  void put(std::uint64_t value, unsigned nbits) {
    CESM_ASSERT(nbits <= 57);
    CESM_ASSERT(nbits == 64 || (value >> nbits) == 0);
    acc_ = (acc_ << nbits) | value;
    fill_ += nbits;
    while (fill_ >= 8) {
      fill_ -= 8;
      out_.push_back(static_cast<std::uint8_t>(acc_ >> fill_));
    }
  }

  void put_bit(bool bit) { put(bit ? 1u : 0u, 1); }

  /// Unary code: `n` zero bits then a one bit. Used by Rice coding.
  void put_unary(std::uint32_t n) {
    while (n >= 32) {
      put(0, 32);
      n -= 32;
    }
    put(1u, n + 1);
  }

  /// Flush a partial byte, zero-padding the tail. Idempotent per chunk.
  void align() {
    if (fill_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - fill_)));
      fill_ = 0;
      acc_ = 0;
    }
  }

  /// Bits written so far (including pending unflushed bits).
  [[nodiscard]] std::size_t bit_count() const { return out_.size() * 8 + fill_; }

 private:
  Bytes& out_;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

/// MSB-first bit source over a byte span; throws FormatError past the end.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint64_t get(unsigned nbits) {
    CESM_ASSERT(nbits <= 57);
    while (fill_ < nbits) {
      if (pos_ >= data_.size()) throw FormatError("bitstream exhausted");
      acc_ = (acc_ << 8) | data_[pos_++];
      fill_ += 8;
    }
    fill_ -= nbits;
    const std::uint64_t v = (acc_ >> fill_) & ((nbits == 64) ? ~0ull : ((1ull << nbits) - 1));
    return v;
  }

  bool get_bit() { return get(1) != 0; }

  std::uint32_t get_unary() {
    std::uint32_t n = 0;
    while (!get_bit()) {
      if (++n > (1u << 28)) throw FormatError("runaway unary code");
    }
    return n;
  }

  /// Discard bits to the next byte boundary.
  void align() { fill_ -= fill_ % 8; }

  [[nodiscard]] std::size_t bits_consumed() const { return pos_ * 8 - fill_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

}  // namespace cesm::comp
