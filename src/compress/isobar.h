#pragma once
// ISOBAR-style lossless preconditioner (Schendel et al., ICDE'12 —
// paper §2.1: "a preconditioner that operates on the data to be
// compressed in a manner that makes it more amenable to compression").
//
// The In-Situ Orthogonal Byte Aggregation idea: split the input into
// byte columns (byte k of every element), measure each column's
// compressibility, route the compressible columns through the lossless
// back end and store the incompressible (high-entropy mantissa) columns
// verbatim. On floating-point data this both improves ratio (the sign/
// exponent columns compress hard) and saves time (no effort wasted on
// random mantissa bytes).

#include "compress/codec.h"

namespace cesm::comp {

/// Per-byte-column analysis result.
struct ColumnPlan {
  std::vector<std::uint8_t> compressible;  ///< one flag per byte column
  std::vector<double> entropy;             ///< Shannon entropy, bits/byte
};

/// Classify each of the `elem_size` byte columns of `input` as
/// compressible (entropy below `entropy_threshold` bits) or not.
ColumnPlan analyze_columns(std::span<const std::uint8_t> input, std::size_t elem_size,
                           double entropy_threshold = 7.0);

/// ISOBAR-preconditioned lossless codec: byte columns are analyzed,
/// compressible ones deflate as one concatenated plane, the rest are
/// stored raw. Exactly lossless for float32 and float64 data.
class IsobarCodec final : public Codec {
 public:
  explicit IsobarCodec(double entropy_threshold = 7.0, int effort = 6);

  [[nodiscard]] std::string name() const override { return "ISOBAR"; }
  [[nodiscard]] std::string family() const override { return "ISOBAR"; }
  [[nodiscard]] bool is_lossless() const override { return true; }

  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.lossless_mode = true,
                        .special_values = true,  // lossless => trivially
                        .freely_available = true,
                        .fixed_quality = false,
                        .fixed_rate = false,
                        .handles_64bit = true};
  }

  [[nodiscard]] Bytes encode(std::span<const float> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<float> decode(std::span<const std::uint8_t> stream) const override;
  [[nodiscard]] Bytes encode64(std::span<const double> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<double> decode64(
      std::span<const std::uint8_t> stream) const override;

 private:
  double entropy_threshold_;
  int effort_;
};

}  // namespace cesm::comp
