#include "compress/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cesm::comp::simd {

namespace {

bool string_equal_ci(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    const char ca = (*a >= 'A' && *a <= 'Z') ? static_cast<char>(*a - 'A' + 'a') : *a;
    if (ca != *b) return false;
  }
  return *a == '\0' && *b == '\0';
}

Mode detect_mode() {
  const bool supported = simd_supported();
  const char* env = std::getenv("CESM_SIMD");
  if (env == nullptr || *env == '\0' || string_equal_ci(env, "auto")) {
    return supported ? Mode::kSimd : Mode::kScalar;
  }
  if (string_equal_ci(env, "off") || string_equal_ci(env, "scalar") ||
      string_equal_ci(env, "0")) {
    return Mode::kScalar;
  }
  if (string_equal_ci(env, "on") || string_equal_ci(env, "avx2") ||
      string_equal_ci(env, "simd") || string_equal_ci(env, "1")) {
    if (!supported) {
      std::fprintf(stderr,
                   "cesmcomp: CESM_SIMD=%s requested but this CPU lacks the "
                   "required ISA; using the scalar reference kernels\n",
                   env);
      return Mode::kScalar;
    }
    return Mode::kSimd;
  }
  std::fprintf(stderr,
               "cesmcomp: unrecognized CESM_SIMD value '%s' "
               "(expected off|scalar|on|avx2|auto); using auto-detection\n",
               env);
  return supported ? Mode::kSimd : Mode::kScalar;
}

// -1 = not yet resolved; otherwise holds a Mode. Codecs query the mode on
// every encode/decode, so keep the hot read a single relaxed atomic load.
std::atomic<int> g_mode{-1};

}  // namespace

bool simd_supported() {
#if defined(CESM_KERNELS_AVX2)
  // The vectorized kernel TU was built with -mavx2: gate on the host CPU.
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  // The vectorized TU was compiled without extra ISA flags; it is plain
  // portable C++ and always runnable (just not necessarily vector code).
  return true;
#endif
}

Mode active_mode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    const Mode detected = detect_mode();
    m = static_cast<int>(detected);
    int expected = -1;
    // First resolver wins; a concurrent set_mode() is preserved.
    g_mode.compare_exchange_strong(expected, m, std::memory_order_relaxed);
    m = g_mode.load(std::memory_order_relaxed);
  }
  return static_cast<Mode>(m);
}

void set_mode(Mode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

const char* mode_name(Mode mode) {
  return mode == Mode::kScalar ? "scalar" : "simd";
}

}  // namespace cesm::comp::simd
