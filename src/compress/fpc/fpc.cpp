#include "compress/fpc/fpc.h"

#include <bit>
#include <cstring>
#include <vector>

#include "compress/bitio.h"
#include "util/failpoint.h"

namespace cesm::comp {

namespace {

constexpr std::uint32_t kFpcMagic = 0x31435046;  // "FPC1"

/// The two FPC predictors, sharing update logic with the decoder so the
/// streams stay in lockstep.
class FpcPredictors {
 public:
  explicit FpcPredictors(unsigned table_bits)
      : mask_((1ull << table_bits) - 1),
        fcm_(mask_ + 1, 0),
        dfcm_(mask_ + 1, 0) {}

  [[nodiscard]] std::uint64_t predict_fcm() const { return fcm_[fcm_hash_]; }
  [[nodiscard]] std::uint64_t predict_dfcm() const {
    return dfcm_[dfcm_hash_] + last_;
  }

  void update(std::uint64_t truth) {
    fcm_[fcm_hash_] = truth;
    fcm_hash_ = ((fcm_hash_ << 6) ^ (truth >> 48)) & mask_;
    const std::uint64_t delta = truth - last_;
    dfcm_[dfcm_hash_] = delta;
    dfcm_hash_ = ((dfcm_hash_ << 2) ^ (delta >> 40)) & mask_;
    last_ = truth;
  }

 private:
  std::uint64_t mask_;
  std::vector<std::uint64_t> fcm_;
  std::vector<std::uint64_t> dfcm_;
  std::uint64_t fcm_hash_ = 0;
  std::uint64_t dfcm_hash_ = 0;
  std::uint64_t last_ = 0;
};

unsigned leading_zero_bytes(std::uint64_t v) {
  if (v == 0) return 8;
  return static_cast<unsigned>(std::countl_zero(v)) / 8;
}

Bytes fpc_encode64(std::span<const std::uint64_t> values, const Shape& shape,
                   unsigned table_bits) {
  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kFpcMagic, shape);
  w.u8(static_cast<std::uint8_t>(table_bits));

  BitWriter bw(out);
  FpcPredictors pred(table_bits);
  for (std::uint64_t truth : values) {
    const std::uint64_t xor_fcm = truth ^ pred.predict_fcm();
    const std::uint64_t xor_dfcm = truth ^ pred.predict_dfcm();
    const bool use_dfcm = leading_zero_bytes(xor_dfcm) > leading_zero_bytes(xor_fcm);
    const std::uint64_t residual = use_dfcm ? xor_dfcm : xor_fcm;
    unsigned lzb = leading_zero_bytes(residual);
    // FPC quirk: lzb 4 is rare (the exponent boundary), so the original
    // format maps {0..3,5..8} into 3 bits and stores 4 as 3. We keep the
    // same trick.
    if (lzb == 4) lzb = 3;
    const unsigned code = lzb > 4 ? lzb - 1 : lzb;  // 0..7
    bw.put_bit(use_dfcm);
    bw.put(code, 3);
    const unsigned bytes = 8 - lzb;
    for (unsigned b = bytes; b-- > 0;) {
      bw.put((residual >> (8 * b)) & 0xff, 8);
    }
    pred.update(truth);
  }
  bw.align();
  return out;
}

std::vector<std::uint64_t> fpc_decode64(std::span<const std::uint8_t> stream,
                                        Shape& shape_out) {
  ByteReader r(stream);
  shape_out = wire::read_header(r, kFpcMagic);
  const unsigned table_bits = r.u8();
  if (table_bits < 1 || table_bits > 26) throw FormatError("fpc bad table bits");

  BitReader br(stream.subspan(r.position()));
  FpcPredictors pred(table_bits);
  std::vector<std::uint64_t> values(shape_out.count());
  for (std::uint64_t& truth : values) {
    const bool use_dfcm = br.get_bit();
    const unsigned code = static_cast<unsigned>(br.get(3));
    const unsigned lzb = code > 3 ? code + 1 : code;  // invert the 4-skip
    const unsigned bytes = 8 - lzb;
    std::uint64_t residual = 0;
    for (unsigned b = 0; b < bytes; ++b) {
      residual = (residual << 8) | br.get(8);
    }
    const std::uint64_t prediction =
        use_dfcm ? pred.predict_dfcm() : pred.predict_fcm();
    truth = prediction ^ residual;
    pred.update(truth);
  }
  return values;
}

}  // namespace

FpcCodec::FpcCodec(unsigned table_bits) : table_bits_(table_bits) {
  CESM_REQUIRE(table_bits >= 1 && table_bits <= 26);
}

std::string FpcCodec::name() const { return "FPC-" + std::to_string(table_bits_); }

Bytes FpcCodec::encode64(std::span<const double> data, const Shape& shape) const {
  CESM_REQUIRE(shape.count() == data.size());
  std::vector<std::uint64_t> bits(data.size());
  std::memcpy(bits.data(), data.data(), data.size() * sizeof(double));
  return fpc_encode64(bits, shape, table_bits_);
}

std::vector<double> FpcCodec::decode64(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("fpc.decode");
  Shape shape;
  const std::vector<std::uint64_t> bits = fpc_decode64(stream, shape);
  std::vector<double> data(bits.size());
  std::memcpy(data.data(), bits.data(), bits.size() * sizeof(double));
  return data;
}

Bytes FpcCodec::encode(std::span<const float> data, const Shape& shape) const {
  CESM_REQUIRE(shape.count() == data.size());
  // Float path: widen bit patterns into the low 32 bits; the predictors
  // operate on the same 64-bit machinery (FPC targets doubles, but this
  // keeps the codec usable on history files).
  std::vector<std::uint64_t> bits(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    bits[i] = static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(data[i])) << 32;
  }
  return fpc_encode64(bits, shape, table_bits_);
}

std::vector<float> FpcCodec::decode(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("fpc.decode");
  Shape shape;
  const std::vector<std::uint64_t> bits = fpc_decode64(stream, shape);
  std::vector<float> data(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    data[i] = std::bit_cast<float>(static_cast<std::uint32_t>(bits[i] >> 32));
  }
  return data;
}

}  // namespace cesm::comp
