#pragma once
// FPC-class lossless compressor for double-precision data (Burtscher &
// Ratanaworabhan, DCC'07 / IEEE TC'09 — paper §2.1).
//
// FPC predicts each 64-bit value with two hash-table predictors — an FCM
// (finite context method) and a DFCM (differential FCM) — picks the
// better per value (1 flag bit), XORs prediction and truth, and stores
// the leading-zero-byte count (3 bits) plus the remaining bytes verbatim.
// It targets exactly the use case the paper defers to future work:
// losslessly compressing full-precision restart files at high speed.
//
// This implementation keeps the published format structure (flag +
// LZC + residual bytes) with a configurable table size, and adds a float32
// path using the same machinery on widened values.

#include "compress/codec.h"

namespace cesm::comp {

class FpcCodec final : public Codec {
 public:
  /// `table_bits`: log2 of the predictor table size (the FPC "level";
  /// the original paper sweeps 1..25). 16 gives 64Ki entries per table.
  explicit FpcCodec(unsigned table_bits = 16);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string family() const override { return "FPC"; }
  [[nodiscard]] bool is_lossless() const override { return true; }

  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.lossless_mode = true,
                        .special_values = true,  // lossless => trivially
                        .freely_available = true,
                        .fixed_quality = false,
                        .fixed_rate = false,
                        .handles_64bit = true};
  }

  [[nodiscard]] Bytes encode(std::span<const float> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<float> decode(std::span<const std::uint8_t> stream) const override;
  [[nodiscard]] Bytes encode64(std::span<const double> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<double> decode64(
      std::span<const std::uint8_t> stream) const override;

  [[nodiscard]] unsigned table_bits() const { return table_bits_; }

 private:
  unsigned table_bits_;
};

}  // namespace cesm::comp
