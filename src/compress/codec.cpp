#include "compress/codec.h"

namespace cesm::comp {

Bytes Codec::encode64(std::span<const double>, const Shape&) const {
  throw InvalidArgument(name() + " does not support 64-bit data");
}

std::vector<double> Codec::decode64(std::span<const std::uint8_t>) const {
  throw InvalidArgument(name() + " does not support 64-bit data");
}

RoundTrip round_trip(const Codec& codec, std::span<const float> data, const Shape& shape) {
  RoundTrip rt;
  Bytes stream = codec.encode(data, shape);
  rt.compressed_bytes = stream.size();
  rt.cr = compression_ratio(stream.size(), data.size());
  rt.reconstructed = codec.decode(stream);
  return rt;
}

namespace wire {

void write_header(ByteWriter& w, std::uint32_t magic, const Shape& shape) {
  w.u32(magic);
  w.u8(static_cast<std::uint8_t>(shape.rank()));
  for (std::size_t d : shape.dims) w.u64(d);
}

Shape read_header(ByteReader& r, std::uint32_t magic) {
  const std::uint32_t got = r.u32();
  if (got != magic) throw FormatError("bad stream magic");
  const unsigned rank = r.u8();
  if (rank == 0 || rank > 8) throw FormatError("bad rank");
  Shape s;
  s.dims.resize(rank);
  std::uint64_t count = 1;
  for (unsigned i = 0; i < rank; ++i) {
    s.dims[i] = r.u64();
    if (s.dims[i] == 0 || s.dims[i] > kMaxDecodeElements) {
      throw FormatError("bad dimension");
    }
    count *= s.dims[i];
    // A corrupt header must not drive a multi-gigabyte allocation: cap
    // the total decoded element count (see kMaxDecodeElements).
    if (count > kMaxDecodeElements) throw FormatError("implausible element count");
  }
  return s;
}

}  // namespace wire
}  // namespace cesm::comp
