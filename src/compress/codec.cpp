#include "compress/codec.h"

#include <algorithm>

#include "util/trace.h"

namespace cesm::comp {

namespace {

/// Transparent observability wrapper: forwards to `inner` under a trace
/// span and byte/element counters. Disabled tracing costs one relaxed
/// atomic load per call (see util/trace.h), keeping codec throughput
/// benchmarks honest.
class TracedCodec final : public Codec {
 public:
  explicit TracedCodec(CodecPtr inner)
      : inner_(std::move(inner)),
        encode_label_("encode:" + inner_->name()),
        decode_label_("decode:" + inner_->name()),
        prep_label_("prep:" + inner_->name()) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] std::string family() const override { return inner_->family(); }
  [[nodiscard]] bool is_lossless() const override { return inner_->is_lossless(); }
  [[nodiscard]] Capabilities capabilities() const override { return inner_->capabilities(); }

  [[nodiscard]] Bytes encode(std::span<const float> data, const Shape& shape) const override {
    trace::Span span(encode_label_);
    Bytes out = inner_->encode(data, shape);
    trace::counter_add("codec.encode_calls", 1);
    trace::counter_add("codec.elements_in", data.size());
    trace::counter_add("codec.bytes_out", out.size());
    return out;
  }

  [[nodiscard]] std::vector<float> decode(
      std::span<const std::uint8_t> stream) const override {
    trace::Span span(decode_label_);
    std::vector<float> out = inner_->decode(stream);
    trace::counter_add("codec.decode_calls", 1);
    trace::counter_add("codec.bytes_in", stream.size());
    trace::counter_add("codec.elements_out", out.size());
    return out;
  }

  void decode_into(std::span<const std::uint8_t> stream,
                   std::span<float> out) const override {
    trace::Span span(decode_label_);
    inner_->decode_into(stream, out);
    trace::counter_add("codec.decode_calls", 1);
    trace::counter_add("codec.bytes_in", stream.size());
    trace::counter_add("codec.elements_out", out.size());
  }

  [[nodiscard]] Bytes encode64(std::span<const double> data,
                               const Shape& shape) const override {
    trace::Span span(encode_label_);
    Bytes out = inner_->encode64(data, shape);
    trace::counter_add("codec.encode_calls", 1);
    trace::counter_add("codec.elements_in", data.size());
    trace::counter_add("codec.bytes_out", out.size());
    return out;
  }

  [[nodiscard]] std::vector<double> decode64(
      std::span<const std::uint8_t> stream) const override {
    trace::Span span(decode_label_);
    std::vector<double> out = inner_->decode64(stream);
    trace::counter_add("codec.decode_calls", 1);
    trace::counter_add("codec.bytes_in", stream.size());
    trace::counter_add("codec.elements_out", out.size());
    return out;
  }

  // Prep hooks forward transparently so a traced variant shares plans
  // with (and produces the same streams as) its bare codec. A plan-driven
  // encode carries the exact span and counters of a direct encode — the
  // sweep's profile stays comparable whether plans are on or off.
  [[nodiscard]] std::string prep_key() const override { return inner_->prep_key(); }

  [[nodiscard]] PrepPlanPtr build_prep(std::span<const float> data,
                                       const Shape& shape) const override {
    trace::Span span(prep_label_);
    return inner_->build_prep(data, shape);
  }

  [[nodiscard]] Bytes encode_with_prep(const PrepPlan& plan, std::span<const float> data,
                                       const Shape& shape) const override {
    trace::Span span(encode_label_);
    Bytes out = inner_->encode_with_prep(plan, data, shape);
    trace::counter_add("codec.encode_calls", 1);
    trace::counter_add("codec.elements_in", data.size());
    trace::counter_add("codec.bytes_out", out.size());
    return out;
  }

 private:
  CodecPtr inner_;
  std::string encode_label_;
  std::string decode_label_;
  std::string prep_label_;
};

}  // namespace

CodecPtr traced(CodecPtr codec) {
  CESM_REQUIRE(codec != nullptr);
  if (dynamic_cast<const TracedCodec*>(codec.get()) != nullptr) return codec;
  return std::make_shared<TracedCodec>(std::move(codec));
}

Bytes Codec::encode64(std::span<const double>, const Shape&) const {
  throw InvalidArgument(name() + " does not support 64-bit data");
}

std::vector<double> Codec::decode64(std::span<const std::uint8_t>) const {
  throw InvalidArgument(name() + " does not support 64-bit data");
}

PrepPlanPtr Codec::build_prep(std::span<const float>, const Shape&) const {
  return nullptr;
}

Bytes Codec::encode_with_prep(const PrepPlan&, std::span<const float> data,
                              const Shape& shape) const {
  return encode(data, shape);
}

void Codec::decode_into(std::span<const std::uint8_t> stream,
                        std::span<float> out) const {
  const std::vector<float> tmp = decode(stream);
  if (tmp.size() != out.size()) {
    throw FormatError(name() + ": decoded element count does not match output buffer");
  }
  std::copy(tmp.begin(), tmp.end(), out.begin());
}

RoundTrip round_trip(const Codec& codec, std::span<const float> data, const Shape& shape) {
  RoundTrip rt;
  Bytes stream = codec.encode(data, shape);
  rt.compressed_bytes = stream.size();
  rt.cr = compression_ratio(stream.size(), data.size());
  rt.reconstructed = codec.decode(stream);
  return rt;
}

namespace wire {

void write_header(ByteWriter& w, std::uint32_t magic, const Shape& shape) {
  w.u32(magic);
  w.u8(static_cast<std::uint8_t>(shape.rank()));
  for (std::size_t d : shape.dims) w.u64(d);
}

Shape read_header(ByteReader& r, std::uint32_t magic) {
  const std::uint32_t got = r.u32();
  if (got != magic) throw FormatError("bad stream magic");
  const unsigned rank = r.u8();
  if (rank == 0 || rank > 8) throw FormatError("bad rank");
  Shape s;
  s.dims.resize(rank);
  std::uint64_t count = 1;
  for (unsigned i = 0; i < rank; ++i) {
    s.dims[i] = r.u64();
    if (s.dims[i] == 0 || s.dims[i] > kMaxDecodeElements) {
      throw FormatError("bad dimension");
    }
    count *= s.dims[i];
    // A corrupt header must not drive a multi-gigabyte allocation: cap
    // the total decoded element count (see kMaxDecodeElements).
    if (count > kMaxDecodeElements) throw FormatError("implausible element count");
  }
  return s;
}

}  // namespace wire
}  // namespace cesm::comp
