#pragma once
// Common interface for every compression method in the study.
//
// A Codec turns a float field (with known logical shape) into a
// self-describing byte stream and back. Parameters such as fpzip's bits of
// precision or APAX's target rate are constructor state of the concrete
// codec, so one Codec instance == one "variant" in the paper's tables
// (fpzip-24, APAX-4, ISA-0.5, ...).
//
// Table 1 of the paper is a capability matrix over these methods; the
// Capabilities struct carries exactly those columns.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/error.h"

namespace cesm::comp {

/// Logical array extents, slowest-varying first. CAM 2-D fields are
/// {ncol}; 3-D fields are {nlev, ncol}.
struct Shape {
  std::vector<std::size_t> dims;

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 1;
    for (std::size_t d : dims) n *= d;
    return dims.empty() ? 0 : n;
  }

  [[nodiscard]] std::size_t rank() const { return dims.size(); }

  static Shape d1(std::size_t n) { return Shape{{n}}; }
  static Shape d2(std::size_t rows, std::size_t cols) { return Shape{{rows, cols}}; }
  static Shape d3(std::size_t planes, std::size_t rows, std::size_t cols) {
    return Shape{{planes, rows, cols}};
  }
};

/// Capability matrix columns from paper Table 1.
struct Capabilities {
  bool lossless_mode = false;   ///< has an exact mode
  bool special_values = false;  ///< natively handles missing/fill values
  bool freely_available = false;
  bool fixed_quality = false;   ///< can target a quality level directly
  bool fixed_rate = false;      ///< can target a compression ratio directly
  bool handles_64bit = false;   ///< supports double-precision input
};

/// Compression ratio as defined by paper eq. (1): compressed/original.
/// Smaller is better; 1.0 means no compression.
inline double compression_ratio(std::size_t compressed_bytes, std::size_t value_count,
                                std::size_t bytes_per_value = sizeof(float)) {
  CESM_REQUIRE(value_count > 0);
  return static_cast<double>(compressed_bytes) /
         static_cast<double>(value_count * bytes_per_value);
}

/// Variant-invariant preprocessing shared across a codec family's sweep
/// variants (see prep.h for the PlanStore that caches these). A plan is
/// immutable from the caller's point of view; implementations may keep
/// internal lazily-filled memo state behind their own lock, but
/// resident_bytes() must stay constant over the plan's lifetime so cache
/// accounting remains exact (reserve memo capacity at build time).
class PrepPlan {
 public:
  virtual ~PrepPlan() = default;

  /// Bytes held resident by this plan, including reserved memo capacity.
  [[nodiscard]] virtual std::size_t resident_bytes() const = 0;
};

using PrepPlanPtr = std::shared_ptr<const PrepPlan>;

/// Abstract compression method.
class Codec {
 public:
  virtual ~Codec() = default;

  /// Variant name as it appears in the paper's tables (e.g. "fpzip-24").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Method family ("fpzip", "ISABELA", "APAX", "GRIB2", "NetCDF-4").
  [[nodiscard]] virtual std::string family() const = 0;

  [[nodiscard]] virtual Capabilities capabilities() const = 0;

  /// True when this variant reconstructs input exactly.
  [[nodiscard]] virtual bool is_lossless() const = 0;

  /// Encode single-precision data. shape.count() must equal data.size().
  [[nodiscard]] virtual Bytes encode(std::span<const float> data,
                                     const Shape& shape) const = 0;

  /// Decode a stream produced by encode(). Throws FormatError on corrupt
  /// or truncated input.
  [[nodiscard]] virtual std::vector<float> decode(
      std::span<const std::uint8_t> stream) const = 0;

  /// Decode directly into `out`, which must hold exactly the stream's
  /// element count (FormatError otherwise). The base implementation
  /// decodes into a temporary and copies; codecs that can write their
  /// output in place override it to skip the copy — ChunkedCodec decodes
  /// every chunk straight into its slice of `out`, saving one full pass
  /// over each decoded field.
  virtual void decode_into(std::span<const std::uint8_t> stream,
                           std::span<float> out) const;

  /// Double-precision path; default throws unless capabilities().handles_64bit.
  [[nodiscard]] virtual Bytes encode64(std::span<const double> data,
                                       const Shape& shape) const;
  [[nodiscard]] virtual std::vector<double> decode64(
      std::span<const std::uint8_t> stream) const;

  // --- Shared encode-prep plans (variant-sweep engine, see prep.h) ------
  //
  // A codec family whose variants differ only in a tuning knob (fpzip
  // precision, ISABELA error bound, GRIB2 decimal scale) can expose the
  // knob-invariant stage of encode() as a reusable plan. The contract is
  // pure memoization: for any plan built by build_prep(data, shape) on a
  // codec with the same prep_key(), encode_with_prep(plan, data, shape)
  // must return a stream byte-identical to encode(data, shape).

  /// Key identifying the preprocessing this codec can share. Codecs with
  /// equal keys accept each other's plans for the same data. Empty (the
  /// default) means "no plannable stage": PlanStore takes the direct path.
  [[nodiscard]] virtual std::string prep_key() const { return {}; }

  /// Compute the variant-invariant stage for `data`. Must throw exactly
  /// the input-validation errors encode() would throw for the same field
  /// (exception parity is part of the bit-identity contract). The default
  /// returns nullptr, which PlanStore treats as "take the direct path".
  [[nodiscard]] virtual PrepPlanPtr build_prep(std::span<const float> data,
                                               const Shape& shape) const;

  /// Encode using a plan built over the same data by a codec with the
  /// same prep_key(). Byte-identical to encode(data, shape) by contract;
  /// the default ignores the plan and calls encode().
  [[nodiscard]] virtual Bytes encode_with_prep(const PrepPlan& plan,
                                               std::span<const float> data,
                                               const Shape& shape) const;
};

using CodecPtr = std::shared_ptr<const Codec>;

/// Round-trip helper: encode then decode, returning reconstruction and the
/// achieved compression ratio.
struct RoundTrip {
  std::vector<float> reconstructed;
  std::size_t compressed_bytes = 0;
  double cr = 1.0;
};

RoundTrip round_trip(const Codec& codec, std::span<const float> data, const Shape& shape);

/// Wrap `codec` so every encode/decode runs under a trace span
/// ("encode:<name>" / "decode:<name>") with byte/element/call counters
/// (see util/trace.h). Name, family, and stream format are unchanged;
/// the factory functions in variants.cpp wrap every variant with this so
/// all of the paper's methods are profiled uniformly. Returns `codec`
/// unchanged when it is already traced.
CodecPtr traced(CodecPtr codec);

namespace wire {
/// Decode-side safety cap on the total element count a stream header may
/// claim (2^27 floats = 512 MiB). Large fields should go through
/// ChunkedCodec, whose chunks each respect this bound.
inline constexpr std::uint64_t kMaxDecodeElements = 1ull << 27;

/// Shared stream-header helpers so every codec is self-describing: a
/// 4-byte magic, the shape, and the element count.
void write_header(ByteWriter& w, std::uint32_t magic, const Shape& shape);
Shape read_header(ByteReader& r, std::uint32_t magic);
}  // namespace wire

}  // namespace cesm::comp
