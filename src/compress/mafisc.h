#pragma once
// MAFISC-class adaptive-filtering lossless compressor (Hübbe & Kunkel —
// paper §2.1: "MAFISC essentially acts as a preconditioner by applying
// multiple filters to the data before a standard compression method is
// used", evaluated on German Weather Service and CMIP5 climate data).
//
// The idea: try a small set of reversible integer filters per block —
// identity, delta, delta-of-delta, and stride delta (exploiting the
// leading-dimension layout of gridded data) — keep whichever makes the
// block most compressible (estimated by byte entropy), then run the
// filtered stream through the deflate back end with byte shuffle.

#include "compress/codec.h"

namespace cesm::comp {

/// Reversible per-block filters, applied to the ordered-integer mapping
/// of the values (so deltas of floats are well-defined integers).
enum class MafiscFilter : std::uint8_t {
  kIdentity = 0,
  kDelta = 1,        ///< x[i] -= x[i-1]
  kDelta2 = 2,       ///< second difference
  kStrideDelta = 3,  ///< x[i] -= x[i-stride]  (stride = fastest dim length)
};

class MafiscCodec final : public Codec {
 public:
  /// `block`: samples per filter decision (the filter byte is per block).
  explicit MafiscCodec(std::size_t block = 4096, int effort = 6);

  [[nodiscard]] std::string name() const override { return "MAFISC"; }
  [[nodiscard]] std::string family() const override { return "MAFISC"; }
  [[nodiscard]] bool is_lossless() const override { return true; }

  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.lossless_mode = true,
                        .special_values = true,  // lossless => trivially
                        .freely_available = true,
                        .fixed_quality = false,
                        .fixed_rate = false,
                        .handles_64bit = true};
  }

  [[nodiscard]] Bytes encode(std::span<const float> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<float> decode(std::span<const std::uint8_t> stream) const override;
  [[nodiscard]] Bytes encode64(std::span<const double> data, const Shape& shape) const override;
  [[nodiscard]] std::vector<double> decode64(
      std::span<const std::uint8_t> stream) const override;

 private:
  std::size_t block_;
  int effort_;
};

}  // namespace cesm::comp
