#include "compress/isobar.h"

#include <array>
#include <cmath>
#include <cstring>

#include "compress/deflate/deflate.h"
#include "util/failpoint.h"

namespace cesm::comp {

namespace {

constexpr std::uint32_t kIsobarMagic = 0x42305349;  // "IS0B"

double column_entropy(std::span<const std::uint8_t> input, std::size_t elem_size,
                      std::size_t column) {
  std::array<std::uint64_t, 256> histogram{};
  const std::size_t n = input.size() / elem_size;
  for (std::size_t i = 0; i < n; ++i) {
    ++histogram[input[i * elem_size + column]];
  }
  double entropy = 0.0;
  for (std::uint64_t count : histogram) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(n);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

template <typename T>
Bytes isobar_encode(std::span<const T> data, const Shape& shape, double threshold,
                    int effort) {
  CESM_REQUIRE(shape.count() == data.size());
  constexpr std::size_t kElem = sizeof(T);
  std::vector<std::uint8_t> raw(data.size() * kElem);
  std::memcpy(raw.data(), data.data(), raw.size());

  const ColumnPlan plan = analyze_columns(raw, kElem, threshold);
  const std::size_t n = data.size();

  // Gather compressible columns into one plane (column-major, like the
  // shuffle filter but only over the low-entropy columns).
  Bytes compressible_plane, raw_plane;
  for (std::size_t c = 0; c < kElem; ++c) {
    Bytes& dst = plan.compressible[c] ? compressible_plane : raw_plane;
    for (std::size_t i = 0; i < n; ++i) {
      dst.push_back(raw[i * kElem + c]);
    }
  }
  const Bytes packed = deflate_compress(compressible_plane, effort);

  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kIsobarMagic, shape);
  w.u8(kElem);
  std::uint8_t flags = 0;
  for (std::size_t c = 0; c < kElem; ++c) {
    if (plan.compressible[c]) flags |= static_cast<std::uint8_t>(1u << c);
  }
  w.u8(flags);
  w.u64(packed.size());
  w.raw(packed);
  w.raw(raw_plane);
  return out;
}

template <typename T>
std::vector<T> isobar_decode(std::span<const std::uint8_t> stream) {
  ByteReader r(stream);
  const Shape shape = wire::read_header(r, kIsobarMagic);
  constexpr std::size_t kElem = sizeof(T);
  if (r.u8() != kElem) throw FormatError("isobar element size mismatch");
  const std::uint8_t flags = r.u8();
  const std::uint64_t packed_size = r.u64();
  const std::vector<std::uint8_t> compressible_plane =
      deflate_decompress(r.raw(packed_size));

  const std::size_t n = shape.count();
  std::size_t n_comp = 0;
  for (std::size_t c = 0; c < kElem; ++c) {
    if (flags & (1u << c)) ++n_comp;
  }
  if (compressible_plane.size() != n_comp * n) {
    throw FormatError("isobar compressible plane size mismatch");
  }
  auto raw_plane = r.raw((kElem - n_comp) * n);

  std::vector<std::uint8_t> raw(n * kElem);
  std::size_t comp_off = 0, raw_off = 0;
  for (std::size_t c = 0; c < kElem; ++c) {
    const bool compressed = (flags & (1u << c)) != 0;
    for (std::size_t i = 0; i < n; ++i) {
      raw[i * kElem + c] =
          compressed ? compressible_plane[comp_off + i] : raw_plane[raw_off + i];
    }
    (compressed ? comp_off : raw_off) += n;
  }

  std::vector<T> data(n);
  std::memcpy(data.data(), raw.data(), raw.size());
  return data;
}

}  // namespace

ColumnPlan analyze_columns(std::span<const std::uint8_t> input, std::size_t elem_size,
                           double entropy_threshold) {
  CESM_REQUIRE(elem_size > 0 && elem_size <= 8);
  CESM_REQUIRE(input.size() % elem_size == 0);
  ColumnPlan plan;
  plan.compressible.resize(elem_size);
  plan.entropy.resize(elem_size);
  for (std::size_t c = 0; c < elem_size; ++c) {
    plan.entropy[c] = input.empty() ? 0.0 : column_entropy(input, elem_size, c);
    plan.compressible[c] = plan.entropy[c] < entropy_threshold ? 1 : 0;
  }
  return plan;
}

IsobarCodec::IsobarCodec(double entropy_threshold, int effort)
    : entropy_threshold_(entropy_threshold), effort_(effort) {
  CESM_REQUIRE(entropy_threshold > 0.0 && entropy_threshold <= 8.0);
}

Bytes IsobarCodec::encode(std::span<const float> data, const Shape& shape) const {
  return isobar_encode<float>(data, shape, entropy_threshold_, effort_);
}

std::vector<float> IsobarCodec::decode(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("isobar.decode");
  return isobar_decode<float>(stream);
}

Bytes IsobarCodec::encode64(std::span<const double> data, const Shape& shape) const {
  return isobar_encode<double>(data, shape, entropy_threshold_, effort_);
}

std::vector<double> IsobarCodec::decode64(std::span<const std::uint8_t> stream) const {
  CESM_FAILPOINT("isobar.decode");
  return isobar_decode<double>(stream);
}

}  // namespace cesm::comp
