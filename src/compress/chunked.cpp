#include "compress/chunked.h"

#include <algorithm>

#include "util/failpoint.h"
#include "util/scheduler.h"
#include "util/trace.h"

namespace cesm::comp {

namespace {
// "CHK2": version 2 appends a per-chunk element-count array to the header
// so the decoder can presize one output buffer and hand each chunk its
// slice without trusting (or recomputing) the encoder's chunking policy.
constexpr std::uint32_t kChunkMagic = 0x324b4843;
}

ChunkedCodec::ChunkedCodec(CodecPtr inner, std::size_t target_chunk_elems)
    : inner_(std::move(inner)), target_chunk_elems_(target_chunk_elems) {
  CESM_REQUIRE(inner_ != nullptr);
  CESM_REQUIRE(target_chunk_elems_ >= 1024);
}

std::vector<std::size_t> ChunkedCodec::chunk_offsets(const Shape& shape) const {
  const std::size_t total = shape.count();
  std::vector<std::size_t> offsets = {0};
  if (total == 0) return offsets;

  // Whole slices of the slowest dimension keep inner-codec geometry sane.
  std::size_t slice = total;
  if (shape.rank() > 1) {
    slice = total / shape.dims[0];
  }
  const std::size_t slices_per_chunk =
      std::max<std::size_t>(1, target_chunk_elems_ / slice);
  const std::size_t step = shape.rank() > 1 ? slices_per_chunk * slice
                                            : std::min(total, target_chunk_elems_);
  for (std::size_t off = step; off < total; off += step) offsets.push_back(off);
  offsets.push_back(total);
  return offsets;
}

Shape ChunkedCodec::chunk_shape(const Shape& shape, std::size_t lo,
                                std::size_t hi) const {
  CESM_REQUIRE(lo < hi && hi <= shape.count());
  if (shape.rank() > 1) {
    const std::size_t slice = shape.count() / shape.dims[0];
    CESM_REQUIRE((hi - lo) % slice == 0 && lo % slice == 0);
    Shape cs = shape;
    cs.dims[0] = (hi - lo) / slice;
    return cs;
  }
  return Shape::d1(hi - lo);
}

std::size_t ChunkedCodec::packed_stream_bytes(
    const Shape& shape, std::span<const std::size_t> chunk_sizes) const {
  // Write the actual header (sans payloads) so the size is tied to the
  // wire format by construction, not by a parallel arithmetic formula.
  Bytes header;
  ByteWriter w(header);
  wire::write_header(w, kChunkMagic, shape);
  w.u32(static_cast<std::uint32_t>(chunk_sizes.size()));
  std::size_t payload = 0;
  for (const std::size_t s : chunk_sizes) {
    w.u64(s);
    payload += s;
  }
  for (std::size_t c = 0; c < chunk_sizes.size(); ++c) w.u64(0);  // element counts
  return header.size() + payload;
}

Bytes ChunkedCodec::encode(std::span<const float> data, const Shape& shape) const {
  CESM_REQUIRE(shape.count() == data.size());
  trace::Span span("chunked.encode");
  const std::vector<std::size_t> offsets = chunk_offsets(shape);
  const std::size_t chunks = offsets.size() - 1;

  std::vector<Bytes> streams(chunks);
  parallel_for(0, chunks, [&](std::size_t c) {
    const std::size_t lo = offsets[c];
    const std::size_t hi = offsets[c + 1];
    streams[c] = inner_->encode(data.subspan(lo, hi - lo), chunk_shape(shape, lo, hi));
  });

  Bytes out;
  ByteWriter w(out);
  wire::write_header(w, kChunkMagic, shape);
  w.u32(static_cast<std::uint32_t>(chunks));
  for (const Bytes& s : streams) w.u64(s.size());
  for (std::size_t c = 0; c < chunks; ++c) w.u64(offsets[c + 1] - offsets[c]);
  for (const Bytes& s : streams) w.raw(s);
  trace::counter_add("chunked.chunks", chunks);
  return out;
}

std::vector<float> ChunkedCodec::decode(std::span<const std::uint8_t> stream) const {
  ByteReader r(stream);
  const Shape shape = wire::read_header(r, kChunkMagic);
  std::vector<float> out(shape.count());
  decode_chunks(stream, out);
  return out;
}

void ChunkedCodec::decode_into(std::span<const std::uint8_t> stream,
                               std::span<float> out) const {
  decode_chunks(stream, out);
}

void ChunkedCodec::decode_chunks(std::span<const std::uint8_t> stream,
                                 std::span<float> out) const {
  trace::Span span("chunked.decode");
  CESM_FAILPOINT("chunked.decode");
  ByteReader r(stream);
  const Shape shape = wire::read_header(r, kChunkMagic);
  if (out.size() != shape.count()) {
    throw FormatError("chunked: output buffer does not match stream element count");
  }
  const std::uint32_t chunks = r.u32();
  if (chunks == 0 || chunks > (1u << 24)) throw FormatError("chunked: bad chunk count");
  // Every claim the header makes must be validated against the actual
  // stream before it is allowed to size an allocation or slice the output:
  // each chunk owes an 8-byte size entry and an 8-byte element count, the
  // element counts must tile shape.count() exactly (each chunk at least
  // one element), and the chunk sizes must tile the payload region
  // exactly.
  if (chunks > r.remaining() / 16) {
    throw FormatError("chunked: chunk count exceeds stream length");
  }
  if (chunks > shape.count()) throw FormatError("chunked: more chunks than elements");

  std::vector<std::uint64_t> sizes(chunks);
  std::uint64_t payload_total = 0;
  for (auto& s : sizes) {
    s = r.u64();
    if (s > stream.size()) throw FormatError("chunked: chunk size exceeds stream length");
    payload_total += s;  // no overflow: both operands are bounded by stream.size()
    if (payload_total > stream.size()) {
      throw FormatError("chunked: chunk sizes exceed stream length");
    }
  }

  // Per-chunk element counts -> exclusive prefix sum = each chunk's slice
  // offset in `out`. Counts are bounded by shape.count() (<= the decode
  // element cap), so the running sum cannot overflow.
  std::vector<std::size_t> elem_off(chunks + 1, 0);
  for (std::uint32_t c = 0; c < chunks; ++c) {
    const std::uint64_t elems = r.u64();
    if (elems == 0) throw FormatError("chunked: empty chunk");
    if (elems > shape.count() - elem_off[c]) {
      throw FormatError("chunked: chunk elements exceed stream element count");
    }
    elem_off[c + 1] = elem_off[c] + static_cast<std::size_t>(elems);
  }
  if (elem_off[chunks] != shape.count()) {
    throw FormatError("chunked: chunk elements disagree with stream element count");
  }
  if (payload_total != r.remaining()) {
    throw FormatError("chunked: chunk sizes disagree with stream length");
  }

  std::vector<std::span<const std::uint8_t>> payloads(chunks);
  for (std::uint32_t c = 0; c < chunks; ++c) payloads[c] = r.raw(sizes[c]);

  // Each chunk decodes straight into its disjoint slice; the inner
  // decode_into validates that the chunk really holds the element count
  // the header promised.
  parallel_for(0, chunks, [&](std::size_t c) {
    inner_->decode_into(payloads[c],
                        out.subspan(elem_off[c], elem_off[c + 1] - elem_off[c]));
  });
  trace::counter_add("chunked.chunks", chunks);
}

}  // namespace cesm::comp
