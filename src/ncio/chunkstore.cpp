#include "ncio/chunkstore.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "util/bytes.h"
#include "util/cache.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/trace.h"

namespace cesm::ncio {

namespace {

// "CNK1": staged-chunk spill file. Version 2 adds the header checksum and
// the per-chunk payload checksum table (see chunkstore.h); version-1 files
// are rejected — a reuse path must never trust an unchecksummed spill.
constexpr std::uint32_t kChunkStoreMagic = 0x314b4e43;
constexpr std::uint32_t kChunkStoreVersion = 2;
constexpr std::size_t kMaxRank = 8;
constexpr std::uint32_t kMaxMembers = 1u << 20;

void write_fully(int fd, const void* buf, std::size_t len, std::uint64_t offset,
                 const std::string& path) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (len > 0) {
    const ::ssize_t n = ::pwrite(fd, p, len, static_cast<::off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("chunkstore write failed: " + path + ": " + std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void read_fully(int fd, void* buf, std::size_t len, std::uint64_t offset,
                const std::string& path) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const ::ssize_t n = ::pread(fd, p, len, static_cast<::off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("chunkstore read failed: " + path + ": " + std::strerror(errno));
    }
    if (n == 0) throw IoError("chunkstore truncated: " + path);
    p += n;
    len -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

/// Serialize the full header. The first 16 bytes are magic, version and
/// the header checksum; `header_checksum` covers everything after those 16
/// bytes (including the trailing table checksum), so any single-bit flip
/// anywhere in the header is detectable.
Bytes serialize_header(const std::string& variable, const comp::Shape& shape,
                       std::optional<float> fill, std::uint32_t member_count,
                       std::span<const std::size_t> offsets,
                       std::uint64_t header_checksum, std::uint64_t table_checksum) {
  Bytes header;
  ByteWriter w(header);
  w.u32(kChunkStoreMagic);
  w.u32(kChunkStoreVersion);
  w.u64(header_checksum);
  w.str(variable);
  w.u8(static_cast<std::uint8_t>(shape.rank()));
  for (const std::size_t d : shape.dims) w.u64(d);
  w.u8(fill ? 1 : 0);
  w.f32(fill ? *fill : 0.0f);
  w.u32(member_count);
  w.u32(static_cast<std::uint32_t>(offsets.size() - 1));
  for (const std::size_t off : offsets) w.u64(off);
  w.u64(table_checksum);
  return header;
}

/// Unique temp name: concurrent writers (including other processes
/// spilling into a shared directory) must never collide on the in-flight
/// file, or one writer's rename would publish another's half-written data.
std::string unique_tmp_name(const std::string& path) {
  static std::atomic<std::uint64_t> seq{0};
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

std::uint64_t checksum_of(std::span<const float> data) {
  return util::fnv1a64(
      {reinterpret_cast<const std::uint8_t*>(data.data()), data.size() * sizeof(float)});
}

}  // namespace

ChunkStoreWriter::ChunkStoreWriter(std::string path, std::string variable,
                                   comp::Shape shape, std::optional<float> fill,
                                   std::uint32_t member_count,
                                   std::span<const std::size_t> chunk_offsets)
    : path_(std::move(path)),
      tmp_(unique_tmp_name(path_)),
      variable_(std::move(variable)),
      shape_(std::move(shape)),
      fill_(fill),
      offsets_(chunk_offsets.begin(), chunk_offsets.end()),
      member_count_(member_count) {
  CESM_REQUIRE(member_count_ >= 1 && member_count_ <= kMaxMembers);
  CESM_REQUIRE(shape_.rank() >= 1 && shape_.rank() <= kMaxRank);
  CESM_REQUIRE(offsets_.size() >= 2 && offsets_.front() == 0);
  total_elems_ = shape_.count();
  CESM_REQUIRE(offsets_.back() == total_elems_);
  for (std::size_t c = 0; c + 1 < offsets_.size(); ++c) {
    CESM_REQUIRE(offsets_[c] < offsets_[c + 1]);
  }
  checksums_.assign(std::size_t{member_count_} * (offsets_.size() - 1), 0);

  const Bytes header =
      serialize_header(variable_, shape_, fill_, member_count_, offsets_, 0, 0);
  header_bytes_ = header.size();

  fd_ = ::open(tmp_.c_str(), O_CREAT | O_TRUNC | O_RDWR | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw IoError("chunkstore cannot create: " + tmp_ + ": " + std::strerror(errno));
  }
  CESM_FAILPOINT("ncio.write");
  write_fully(fd_, header.data(), header.size(), 0, tmp_);
  // Size the full file (header + checksum table + payload) up front so
  // concurrent writers never race the file length and a crash leaves an
  // obviously-short .tmp, not the store.
  const std::uint64_t total = header_bytes_ + std::uint64_t{8} * checksums_.size() +
                              std::uint64_t{4} * total_elems_ * member_count_;
  if (::ftruncate(fd_, static_cast<::off_t>(total)) != 0) {
    throw IoError("chunkstore cannot size: " + tmp_ + ": " + std::strerror(errno));
  }
}

ChunkStoreWriter::~ChunkStoreWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
    std::error_code ec;
    std::filesystem::remove(tmp_, ec);  // finish() was never called
  }
}

void ChunkStoreWriter::write_chunk(std::uint32_t member, std::size_t chunk,
                                   std::span<const float> data) {
  CESM_REQUIRE(fd_ >= 0);
  CESM_REQUIRE(member < member_count_ && chunk + 1 < offsets_.size());
  CESM_REQUIRE(data.size() == offsets_[chunk + 1] - offsets_[chunk]);
  const std::uint64_t offset =
      header_bytes_ + std::uint64_t{8} * checksums_.size() +
      std::uint64_t{4} * (std::uint64_t{member} * total_elems_ + offsets_[chunk]);
  write_fully(fd_, data.data(), data.size() * sizeof(float), offset, tmp_);
  checksums_[std::size_t{member} * (offsets_.size() - 1) + chunk] = checksum_of(data);
  trace::counter_add("ooc.chunks_written", 1);
}

void ChunkStoreWriter::finish() {
  CESM_REQUIRE(fd_ >= 0);
  Bytes table;
  {
    ByteWriter w(table);
    for (const std::uint64_t sum : checksums_) w.u64(sum);
  }
  const std::uint64_t table_checksum = util::fnv1a64(table);
  // The header was written with placeholder checksums at construction;
  // re-serialize it now that the real ones are known and self-checksum
  // the result. The file is only renamed into existence after this, so
  // readers never see the placeholder version.
  Bytes header = serialize_header(variable_, shape_, fill_, member_count_,
                                  offsets_, 0, table_checksum);
  CESM_REQUIRE(header.size() == header_bytes_);
  const std::uint64_t header_checksum =
      util::fnv1a64(std::span<const std::uint8_t>(header).subspan(16));
  for (int i = 0; i < 8; ++i) {
    header[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(header_checksum >> (8 * i));
  }
  write_fully(fd_, header.data(), header.size(), 0, tmp_);
  write_fully(fd_, table.data(), table.size(), header_bytes_, tmp_);
  if (::fsync(fd_) != 0) {
    throw IoError("chunkstore fsync failed: " + tmp_ + ": " + std::strerror(errno));
  }
  ::close(fd_);
  fd_ = -1;
  std::error_code ec;
  std::filesystem::rename(tmp_, path_, ec);
  if (ec) {
    std::filesystem::remove(tmp_, ec);
    throw IoError("chunkstore cannot rename " + tmp_ + " to " + path_);
  }
}

ChunkStoreReader::ChunkStoreReader(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0) {
    throw IoError("chunkstore cannot open: " + path + ": " + std::strerror(errno));
  }
  // Headers are small; read a generous fixed prefix and parse from it.
  const std::uint64_t file_size = [&] {
    const ::off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) throw IoError("chunkstore cannot seek: " + path);
    return static_cast<std::uint64_t>(end);
  }();
  Bytes prefix(std::min<std::uint64_t>(file_size, 1 << 20));
  read_fully(fd_, prefix.data(), prefix.size(), 0, path_);
  try {
    ByteReader r(prefix);
    if (r.u32() != kChunkStoreMagic) throw FormatError("chunkstore: bad magic");
    if (r.u32() != kChunkStoreVersion) throw FormatError("chunkstore: bad version");
    const std::uint64_t header_checksum = r.u64();
    variable_ = r.str();
    const std::uint8_t rank = r.u8();
    if (rank < 1 || rank > kMaxRank) throw FormatError("chunkstore: bad rank");
    std::size_t count = 1;
    for (std::uint8_t d = 0; d < rank; ++d) {
      const std::uint64_t dim = r.u64();
      if (dim == 0 || dim > comp::wire::kMaxDecodeElements ||
          count > comp::wire::kMaxDecodeElements / dim) {
        throw FormatError("chunkstore: bad dimension");
      }
      shape_.dims.push_back(static_cast<std::size_t>(dim));
      count *= static_cast<std::size_t>(dim);
    }
    const bool has_fill = r.u8() != 0;
    const float fill = r.f32();
    if (has_fill) fill_ = fill;
    member_count_ = r.u32();
    if (member_count_ < 1 || member_count_ > kMaxMembers) {
      throw FormatError("chunkstore: bad member count");
    }
    const std::uint32_t chunks = r.u32();
    if (chunks == 0 || chunks > count) throw FormatError("chunkstore: bad chunk count");
    offsets_.resize(std::size_t{chunks} + 1);
    for (std::size_t c = 0; c <= chunks; ++c) {
      offsets_[c] = static_cast<std::size_t>(r.u64());
    }
    if (offsets_.front() != 0 || offsets_.back() != count) {
      throw FormatError("chunkstore: chunk offsets disagree with shape");
    }
    for (std::size_t c = 0; c < chunks; ++c) {
      if (offsets_[c] >= offsets_[c + 1]) {
        throw FormatError("chunkstore: chunk offsets not increasing");
      }
    }
    const std::uint64_t table_checksum = r.u64();
    header_bytes_ = r.position();
    // The header attests to itself before any of its values are used to
    // size reads: a flipped bit that still parses cleanly dies here.
    if (util::fnv1a64(std::span<const std::uint8_t>(prefix).first(header_bytes_)
                          .subspan(16)) != header_checksum) {
      throw FormatError("chunkstore: header checksum mismatch");
    }
    const std::uint64_t table_bytes =
        std::uint64_t{8} * member_count_ * chunks;
    const std::uint64_t expected =
        header_bytes_ + table_bytes + std::uint64_t{4} * count * member_count_;
    if (file_size != expected) throw FormatError("chunkstore: payload size mismatch");
    Bytes table(static_cast<std::size_t>(table_bytes));
    read_fully(fd_, table.data(), table.size(), header_bytes_, path_);
    if (util::fnv1a64(table) != table_checksum) {
      throw FormatError("chunkstore: chunk table checksum mismatch");
    }
    checksums_.resize(std::size_t{member_count_} * chunks);
    ByteReader tr(table);
    for (std::uint64_t& sum : checksums_) sum = tr.u64();
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

ChunkStoreReader::~ChunkStoreReader() {
  if (fd_ >= 0) ::close(fd_);
}

void ChunkStoreReader::read_chunk(std::uint32_t member, std::size_t chunk,
                                  std::span<float> out) const {
  CESM_REQUIRE(member < member_count_ && chunk + 1 < offsets_.size());
  CESM_REQUIRE(out.size() == offsets_[chunk + 1] - offsets_[chunk]);
  CESM_FAILPOINT("ncio.read_chunk");
  const std::uint64_t offset =
      header_bytes_ + std::uint64_t{8} * checksums_.size() +
      std::uint64_t{4} * (std::uint64_t{member} * offsets_.back() + offsets_[chunk]);
  read_fully(fd_, out.data(), out.size() * sizeof(float), offset, path_);
  const std::uint64_t expected =
      checksums_[std::size_t{member} * chunk_count() + chunk];
  if (checksum_of(out) != expected) {
    throw FormatError("chunkstore: chunk checksum mismatch (member " +
                      std::to_string(member) + ", chunk " + std::to_string(chunk) +
                      "): " + path_);
  }
  trace::counter_add("ooc.chunks_read", 1);
}

}  // namespace cesm::ncio
