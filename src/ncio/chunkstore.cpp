#include "ncio/chunkstore.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "util/bytes.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/trace.h"

namespace cesm::ncio {

namespace {

// "CNK1": staged-chunk spill file, version 1.
constexpr std::uint32_t kChunkStoreMagic = 0x314b4e43;
constexpr std::uint32_t kChunkStoreVersion = 1;
constexpr std::size_t kMaxRank = 8;
constexpr std::uint32_t kMaxMembers = 1u << 20;

void write_fully(int fd, const void* buf, std::size_t len, std::uint64_t offset,
                 const std::string& path) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (len > 0) {
    const ::ssize_t n = ::pwrite(fd, p, len, static_cast<::off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("chunkstore write failed: " + path + ": " + std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void read_fully(int fd, void* buf, std::size_t len, std::uint64_t offset,
                const std::string& path) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const ::ssize_t n = ::pread(fd, p, len, static_cast<::off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("chunkstore read failed: " + path + ": " + std::strerror(errno));
    }
    if (n == 0) throw IoError("chunkstore truncated: " + path);
    p += n;
    len -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

}  // namespace

ChunkStoreWriter::ChunkStoreWriter(std::string path, std::string variable,
                                   comp::Shape shape, std::optional<float> fill,
                                   std::uint32_t member_count,
                                   std::span<const std::size_t> chunk_offsets)
    : path_(std::move(path)),
      tmp_(path_ + ".tmp"),
      offsets_(chunk_offsets.begin(), chunk_offsets.end()),
      member_count_(member_count) {
  CESM_REQUIRE(member_count_ >= 1 && member_count_ <= kMaxMembers);
  CESM_REQUIRE(shape.rank() >= 1 && shape.rank() <= kMaxRank);
  CESM_REQUIRE(offsets_.size() >= 2 && offsets_.front() == 0);
  total_elems_ = shape.count();
  CESM_REQUIRE(offsets_.back() == total_elems_);
  for (std::size_t c = 0; c + 1 < offsets_.size(); ++c) {
    CESM_REQUIRE(offsets_[c] < offsets_[c + 1]);
  }

  Bytes header;
  ByteWriter w(header);
  w.u32(kChunkStoreMagic);
  w.u32(kChunkStoreVersion);
  w.str(variable);
  w.u8(static_cast<std::uint8_t>(shape.rank()));
  for (const std::size_t d : shape.dims) w.u64(d);
  w.u8(fill ? 1 : 0);
  w.f32(fill ? *fill : 0.0f);
  w.u32(member_count_);
  w.u32(static_cast<std::uint32_t>(offsets_.size() - 1));
  for (const std::size_t off : offsets_) w.u64(off);
  header_bytes_ = header.size();

  fd_ = ::open(tmp_.c_str(), O_CREAT | O_TRUNC | O_RDWR | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw IoError("chunkstore cannot create: " + tmp_ + ": " + std::strerror(errno));
  }
  CESM_FAILPOINT("ncio.write");
  write_fully(fd_, header.data(), header.size(), 0, tmp_);
  // Size the payload region up front so concurrent writers never race the
  // file length and a crash leaves an obviously-short .tmp, not the store.
  const std::uint64_t total =
      header_bytes_ + std::uint64_t{4} * total_elems_ * member_count_;
  if (::ftruncate(fd_, static_cast<::off_t>(total)) != 0) {
    throw IoError("chunkstore cannot size: " + tmp_ + ": " + std::strerror(errno));
  }
}

ChunkStoreWriter::~ChunkStoreWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
    std::error_code ec;
    std::filesystem::remove(tmp_, ec);  // finish() was never called
  }
}

void ChunkStoreWriter::write_chunk(std::uint32_t member, std::size_t chunk,
                                   std::span<const float> data) {
  CESM_REQUIRE(fd_ >= 0);
  CESM_REQUIRE(member < member_count_ && chunk + 1 < offsets_.size());
  CESM_REQUIRE(data.size() == offsets_[chunk + 1] - offsets_[chunk]);
  const std::uint64_t offset =
      header_bytes_ +
      std::uint64_t{4} * (std::uint64_t{member} * total_elems_ + offsets_[chunk]);
  write_fully(fd_, data.data(), data.size() * sizeof(float), offset, tmp_);
  trace::counter_add("ooc.chunks_written", 1);
}

void ChunkStoreWriter::finish() {
  CESM_REQUIRE(fd_ >= 0);
  if (::fsync(fd_) != 0) {
    throw IoError("chunkstore fsync failed: " + tmp_ + ": " + std::strerror(errno));
  }
  ::close(fd_);
  fd_ = -1;
  std::error_code ec;
  std::filesystem::rename(tmp_, path_, ec);
  if (ec) {
    std::filesystem::remove(tmp_, ec);
    throw IoError("chunkstore cannot rename " + tmp_ + " to " + path_);
  }
}

ChunkStoreReader::ChunkStoreReader(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0) {
    throw IoError("chunkstore cannot open: " + path + ": " + std::strerror(errno));
  }
  // Headers are small; read a generous fixed prefix and parse from it.
  const std::uint64_t file_size = [&] {
    const ::off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) throw IoError("chunkstore cannot seek: " + path);
    return static_cast<std::uint64_t>(end);
  }();
  Bytes prefix(std::min<std::uint64_t>(file_size, 1 << 20));
  read_fully(fd_, prefix.data(), prefix.size(), 0, path_);
  try {
    ByteReader r(prefix);
    if (r.u32() != kChunkStoreMagic) throw FormatError("chunkstore: bad magic");
    if (r.u32() != kChunkStoreVersion) throw FormatError("chunkstore: bad version");
    variable_ = r.str();
    const std::uint8_t rank = r.u8();
    if (rank < 1 || rank > kMaxRank) throw FormatError("chunkstore: bad rank");
    std::size_t count = 1;
    for (std::uint8_t d = 0; d < rank; ++d) {
      const std::uint64_t dim = r.u64();
      if (dim == 0 || dim > comp::wire::kMaxDecodeElements ||
          count > comp::wire::kMaxDecodeElements / dim) {
        throw FormatError("chunkstore: bad dimension");
      }
      shape_.dims.push_back(static_cast<std::size_t>(dim));
      count *= static_cast<std::size_t>(dim);
    }
    const bool has_fill = r.u8() != 0;
    const float fill = r.f32();
    if (has_fill) fill_ = fill;
    member_count_ = r.u32();
    if (member_count_ < 1 || member_count_ > kMaxMembers) {
      throw FormatError("chunkstore: bad member count");
    }
    const std::uint32_t chunks = r.u32();
    if (chunks == 0 || chunks > count) throw FormatError("chunkstore: bad chunk count");
    offsets_.resize(std::size_t{chunks} + 1);
    for (std::size_t c = 0; c <= chunks; ++c) {
      offsets_[c] = static_cast<std::size_t>(r.u64());
    }
    if (offsets_.front() != 0 || offsets_.back() != count) {
      throw FormatError("chunkstore: chunk offsets disagree with shape");
    }
    for (std::size_t c = 0; c < chunks; ++c) {
      if (offsets_[c] >= offsets_[c + 1]) {
        throw FormatError("chunkstore: chunk offsets not increasing");
      }
    }
    header_bytes_ = r.position();
    const std::uint64_t expected =
        header_bytes_ + std::uint64_t{4} * count * member_count_;
    if (file_size != expected) throw FormatError("chunkstore: payload size mismatch");
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

ChunkStoreReader::~ChunkStoreReader() {
  if (fd_ >= 0) ::close(fd_);
}

void ChunkStoreReader::read_chunk(std::uint32_t member, std::size_t chunk,
                                  std::span<float> out) const {
  CESM_REQUIRE(member < member_count_ && chunk + 1 < offsets_.size());
  CESM_REQUIRE(out.size() == offsets_[chunk + 1] - offsets_[chunk]);
  CESM_FAILPOINT("ncio.read_chunk");
  const std::uint64_t offset =
      header_bytes_ +
      std::uint64_t{4} * (std::uint64_t{member} * offsets_.back() + offsets_[chunk]);
  read_fully(fd_, out.data(), out.size() * sizeof(float), offset, path_);
  trace::counter_add("ooc.chunks_read", 1);
}

}  // namespace cesm::ncio
