#include "ncio/dataset.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "compress/deflate/deflate.h"
#include "compress/variants.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/trace.h"

namespace cesm::ncio {

namespace {

constexpr std::uint32_t kFileMagic = 0x31434e43;  // "CNC1"
constexpr std::uint16_t kVersion = 2;

void write_attr(ByteWriter& w, const std::string& name, const AttrValue& value) {
  w.str(name);
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    w.u8(0);
    w.i64(*i);
  } else if (const auto* d = std::get_if<double>(&value)) {
    w.u8(1);
    w.f64(*d);
  } else {
    w.u8(2);
    w.str(std::get<std::string>(value));
  }
}

std::pair<std::string, AttrValue> read_attr(ByteReader& r) {
  std::string name = r.str();
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case 0:
      return {std::move(name), AttrValue{r.i64()}};
    case 1:
      return {std::move(name), AttrValue{r.f64()}};
    case 2:
      return {std::move(name), AttrValue{r.str()}};
    default:
      throw FormatError("unknown attribute tag");
  }
}

void write_attrs(ByteWriter& w, const std::map<std::string, AttrValue>& attrs) {
  w.u32(static_cast<std::uint32_t>(attrs.size()));
  for (const auto& [name, value] : attrs) write_attr(w, name, value);
}

std::map<std::string, AttrValue> read_attrs(ByteReader& r) {
  std::map<std::string, AttrValue> attrs;
  const std::uint32_t n = r.u32();
  if (n > (1u << 20)) throw FormatError("implausible attribute count");
  for (std::uint32_t i = 0; i < n; ++i) attrs.insert(read_attr(r));
  return attrs;
}

comp::Shape payload_shape(const Variable& v, const std::vector<Dimension>& dims) {
  comp::Shape shape;
  for (std::uint32_t id : v.dim_ids) shape.dims.push_back(dims[id].length);
  if (shape.dims.empty()) shape.dims.push_back(v.element_count());
  return shape;
}

Bytes payload_bytes(const Variable& v, const std::vector<Dimension>& dims) {
  if (v.storage == Storage::kCodec) {
    CESM_REQUIRE(!v.codec_spec.empty());
    const std::optional<float> fill =
        v.fill_value ? std::optional<float>(static_cast<float>(*v.fill_value))
                     : std::nullopt;
    const comp::CodecPtr codec = comp::make_variant(v.codec_spec, fill);
    const comp::Shape shape = payload_shape(v, dims);
    if (v.dtype == DataType::kFloat32) {
      return codec->encode(v.f32, shape);
    }
    return codec->encode64(v.f64, shape);
  }
  Bytes raw;
  if (v.dtype == DataType::kFloat32) {
    raw.resize(v.f32.size() * sizeof(float));
    std::memcpy(raw.data(), v.f32.data(), raw.size());
  } else {
    raw.resize(v.f64.size() * sizeof(double));
    std::memcpy(raw.data(), v.f64.data(), raw.size());
  }
  if (v.storage == Storage::kDeflate) {
    const std::size_t elem = v.dtype == DataType::kFloat32 ? 4 : 8;
    return comp::deflate_compress(comp::shuffle_bytes(raw, elem));
  }
  return raw;
}

}  // namespace

std::uint32_t Dataset::add_dimension(const std::string& name, std::uint64_t length) {
  CESM_REQUIRE(!name.empty());
  CESM_REQUIRE(length > 0);
  CESM_REQUIRE(!find_dimension(name).has_value());
  dims_.push_back(Dimension{name, length});
  return static_cast<std::uint32_t>(dims_.size() - 1);
}

const Dimension& Dataset::dimension(std::uint32_t id) const {
  CESM_REQUIRE(id < dims_.size());
  return dims_[id];
}

std::optional<std::uint32_t> Dataset::find_dimension(const std::string& name) const {
  for (std::uint32_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].name == name) return i;
  }
  return std::nullopt;
}

Variable& Dataset::add_variable(Variable var) {
  CESM_REQUIRE(!var.name.empty());
  CESM_REQUIRE(find_variable(var.name) == nullptr);
  std::uint64_t expected = 1;
  for (std::uint32_t id : var.dim_ids) {
    CESM_REQUIRE(id < dims_.size());
    expected *= dims_[id].length;
  }
  CESM_REQUIRE(var.element_count() == expected);
  vars_.push_back(std::move(var));
  return vars_.back();
}

const Variable* Dataset::find_variable(const std::string& name) const {
  for (const Variable& v : vars_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

Variable* Dataset::find_variable(const std::string& name) {
  for (Variable& v : vars_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

Bytes Dataset::serialize() const {
  trace::Span span("ncio.write");
  CESM_FAILPOINT("ncio.write");
  Bytes out;
  ByteWriter w(out);
  w.u32(kFileMagic);
  w.u16(kVersion);
  write_attrs(w, attrs_);

  w.u32(static_cast<std::uint32_t>(dims_.size()));
  for (const Dimension& d : dims_) {
    w.str(d.name);
    w.u64(d.length);
  }

  w.u32(static_cast<std::uint32_t>(vars_.size()));
  for (const Variable& v : vars_) {
    w.str(v.name);
    w.u8(static_cast<std::uint8_t>(v.dtype));
    w.u8(static_cast<std::uint8_t>(v.storage));
    w.str(v.codec_spec);
    w.u8(v.fill_value ? 1 : 0);
    w.f64(v.fill_value.value_or(0.0));
    w.u32(static_cast<std::uint32_t>(v.dim_ids.size()));
    for (std::uint32_t id : v.dim_ids) w.u32(id);
    write_attrs(w, v.attrs);
    const Bytes payload = payload_bytes(v, dims_);
    w.u64(payload.size());
    w.raw(payload);
  }
  trace::counter_add("ncio.bytes_written", out.size());
  return out;
}

Dataset Dataset::deserialize(std::span<const std::uint8_t> bytes) {
  trace::Span span("ncio.read");
  CESM_FAILPOINT("ncio.read");
  trace::counter_add("ncio.bytes_read", bytes.size());
  ByteReader r(bytes);
  if (r.u32() != kFileMagic) throw FormatError("not a CNC1 dataset");
  if (r.u16() != kVersion) throw FormatError("unsupported CNC1 version");

  Dataset ds;
  ds.attrs_ = read_attrs(r);

  const std::uint32_t ndims = r.u32();
  if (ndims > (1u << 16)) throw FormatError("implausible dimension count");
  for (std::uint32_t i = 0; i < ndims; ++i) {
    std::string name = r.str();
    const std::uint64_t length = r.u64();
    if (length == 0 || length > comp::wire::kMaxDecodeElements) {
      throw FormatError("bad dimension length");
    }
    ds.dims_.push_back(Dimension{std::move(name), length});
  }

  const std::uint32_t nvars = r.u32();
  if (nvars > (1u << 20)) throw FormatError("implausible variable count");
  for (std::uint32_t i = 0; i < nvars; ++i) {
    Variable v;
    v.name = r.str();
    const std::uint8_t dtype = r.u8();
    if (dtype > 1) throw FormatError("unknown dtype");
    v.dtype = static_cast<DataType>(dtype);
    const std::uint8_t storage = r.u8();
    if (storage > 2) throw FormatError("unknown storage");
    v.storage = static_cast<Storage>(storage);
    v.codec_spec = r.str();
    if (v.storage == Storage::kCodec && v.codec_spec.empty()) {
      throw FormatError("codec storage without codec spec");
    }
    const bool has_fill = r.u8() != 0;
    const double fill = r.f64();
    if (has_fill) v.fill_value = fill;

    const std::uint32_t rank = r.u32();
    if (rank > 8) throw FormatError("implausible rank");
    std::uint64_t expected = 1;
    for (std::uint32_t k = 0; k < rank; ++k) {
      const std::uint32_t id = r.u32();
      if (id >= ds.dims_.size()) throw FormatError("dimension id out of range");
      v.dim_ids.push_back(id);
      expected *= ds.dims_[id].length;
      if (expected > comp::wire::kMaxDecodeElements) {
        throw FormatError("implausible variable size");
      }
    }
    v.attrs = read_attrs(r);

    const std::uint64_t payload_size = r.u64();
    auto payload = r.raw(payload_size);
    if (v.storage == Storage::kCodec) {
      const std::optional<float> fill =
          v.fill_value ? std::optional<float>(static_cast<float>(*v.fill_value))
                       : std::nullopt;
      const comp::CodecPtr codec = comp::make_variant(v.codec_spec, fill);
      if (v.dtype == DataType::kFloat32) {
        v.f32 = codec->decode(payload);
        if (v.f32.size() != expected) throw FormatError("codec payload count mismatch");
      } else {
        v.f64 = codec->decode64(payload);
        if (v.f64.size() != expected) throw FormatError("codec payload count mismatch");
      }
    } else {
      std::vector<std::uint8_t> raw;
      if (v.storage == Storage::kDeflate) {
        const std::size_t elem = v.dtype == DataType::kFloat32 ? 4 : 8;
        raw = comp::unshuffle_bytes(comp::deflate_decompress(payload), elem);
      } else {
        raw.assign(payload.begin(), payload.end());
      }
      const std::size_t elem = v.dtype == DataType::kFloat32 ? 4 : 8;
      if (raw.size() != expected * elem) throw FormatError("variable payload size mismatch");
      if (v.dtype == DataType::kFloat32) {
        v.f32.resize(expected);
        std::memcpy(v.f32.data(), raw.data(), raw.size());
      } else {
        v.f64.resize(expected);
        std::memcpy(v.f64.data(), raw.data(), raw.size());
      }
    }
    ds.vars_.push_back(std::move(v));
  }
  return ds;
}

void Dataset::write_file(const std::string& path) const {
  CESM_FAILPOINT("ncio.write_file");
  const Bytes bytes = serialize();
  // Temp + rename: a writer killed mid-write (SIGTERM, crash, full disk)
  // must never leave a torn dataset at the destination path.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw IoError("cannot open for writing: " + tmp);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    f.flush();
    if (!f) {
      f.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw IoError("write failed: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw IoError("cannot rename " + tmp + " to " + path);
  }
}

Dataset Dataset::read_file(const std::string& path) {
  CESM_FAILPOINT("ncio.read_file");
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw IoError("cannot open for reading: " + path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  Bytes bytes(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!f) throw IoError("read failed: " + path);
  return deserialize(bytes);
}

std::size_t Dataset::stored_payload_bytes(const std::string& var_name) const {
  const Variable* v = find_variable(var_name);
  CESM_REQUIRE(v != nullptr);
  return payload_bytes(*v, dims_).size();
}

}  // namespace cesm::ncio
