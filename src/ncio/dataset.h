#pragma once
// Minimal self-describing array container, standing in for NetCDF.
//
// CESM history files are NetCDF; the verification workflow only needs a
// small slice of that format: named dimensions, named float/double
// variables with attributes and fill values, and optional per-variable
// lossless compression (NetCDF-4's deflate). This module provides exactly
// that slice with a compact binary layout ("CNC1").
//
// The per-variable `storage` knob selects raw bytes or the deflate codec
// with byte-shuffle — the configuration whose compression ratio the paper
// reports in the "CR" column of Table 2 and the "NC" column of Table 7.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.h"

namespace cesm::ncio {

enum class DataType : std::uint8_t { kFloat32 = 0, kFloat64 = 1 };

/// How a variable's payload is stored on disk.
///   kRaw      — IEEE bytes verbatim;
///   kDeflate  — NetCDF-4-style lossless (shuffle + deflate);
///   kCodec    — any study codec, named by Variable::codec_spec (e.g.
///               "fpzip-24", "APAX-4", "GRIB2:5") — the paper's end goal
///               of integrating lossy compression into the I/O layer.
enum class Storage : std::uint8_t { kRaw = 0, kDeflate = 1, kCodec = 2 };

using AttrValue = std::variant<std::int64_t, double, std::string>;

struct Dimension {
  std::string name;
  std::uint64_t length = 0;
};

/// A named variable: data plus metadata. Data lives in exactly one of
/// `f32` / `f64` according to `dtype`.
struct Variable {
  std::string name;
  DataType dtype = DataType::kFloat32;
  std::vector<std::uint32_t> dim_ids;  ///< indices into Dataset::dims
  std::optional<double> fill_value;
  std::map<std::string, AttrValue> attrs;
  Storage storage = Storage::kRaw;
  /// Codec variant name for Storage::kCodec (see comp::make_variant).
  /// Lossy codecs make the stored payload an approximation: reading back
  /// yields the reconstruction, exactly like reading a compressed archive.
  std::string codec_spec;
  std::vector<float> f32;
  std::vector<double> f64;

  [[nodiscard]] std::size_t element_count() const {
    return dtype == DataType::kFloat32 ? f32.size() : f64.size();
  }
};

/// An in-memory dataset mirroring one history file.
class Dataset {
 public:
  /// Register a dimension; returns its id. Names must be unique.
  std::uint32_t add_dimension(const std::string& name, std::uint64_t length);

  [[nodiscard]] const Dimension& dimension(std::uint32_t id) const;
  [[nodiscard]] std::optional<std::uint32_t> find_dimension(const std::string& name) const;

  /// Add a variable; dim lengths must multiply to the data size.
  Variable& add_variable(Variable var);

  [[nodiscard]] const Variable* find_variable(const std::string& name) const;
  [[nodiscard]] Variable* find_variable(const std::string& name);

  [[nodiscard]] const std::vector<Dimension>& dimensions() const { return dims_; }
  [[nodiscard]] const std::vector<Variable>& variables() const { return vars_; }
  [[nodiscard]] std::vector<Variable>& variables() { return vars_; }

  std::map<std::string, AttrValue>& attrs() { return attrs_; }
  [[nodiscard]] const std::map<std::string, AttrValue>& attrs() const { return attrs_; }

  /// Serialize to bytes / parse from bytes (throws FormatError).
  [[nodiscard]] Bytes serialize() const;
  static Dataset deserialize(std::span<const std::uint8_t> bytes);

  /// File convenience wrappers (throw IoError).
  void write_file(const std::string& path) const;
  static Dataset read_file(const std::string& path);

  /// Serialized size of one variable's payload (post-compression), used
  /// for per-variable compression-ratio accounting.
  [[nodiscard]] std::size_t stored_payload_bytes(const std::string& var_name) const;

 private:
  std::vector<Dimension> dims_;
  std::vector<Variable> vars_;
  std::map<std::string, AttrValue> attrs_;
};

}  // namespace cesm::ncio
