#pragma once
// Chunk-granular staged-variable store for the out-of-core pipeline.
//
// A full-grid suite run cannot hold even one ensemble member's variable in
// RAM alongside the derived per-point statistics, so synthesis writes each
// member chunk-by-chunk into a "CNK1" spill file and every later phase
// (stats accumulation, codec round-trips, verification) re-reads the same
// chunks on demand. The format is deliberately minimal: a self-describing
// little-endian header (variable name, shape, fill value, member count,
// chunk partition) followed by raw float32 payloads in member-major,
// chunk-major order — every chunk's byte offset is computable, so reads
// and writes are independent pread/pwrite calls that parallel workers can
// issue concurrently with no shared file cursor.
//
// The chunk partition stored in the header is the single source of truth
// shared by both verification legs: the streaming leg feeds kernels and
// codecs chunk-by-chunk, the in-core leg reassembles whole members from
// the very same bytes, which is what makes "bitwise-identical verdicts on
// the same data" a meaningful claim.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "compress/codec.h"

namespace cesm::ncio {

/// Writer: construct with the full layout (all header fields are known up
/// front), write_chunk from any thread, then finish() to fsync + atomically
/// rename into place. A writer destroyed without finish() removes its
/// temporary file.
class ChunkStoreWriter {
 public:
  ChunkStoreWriter(std::string path, std::string variable, comp::Shape shape,
                   std::optional<float> fill, std::uint32_t member_count,
                   std::span<const std::size_t> chunk_offsets);
  ~ChunkStoreWriter();

  ChunkStoreWriter(const ChunkStoreWriter&) = delete;
  ChunkStoreWriter& operator=(const ChunkStoreWriter&) = delete;

  /// Write one chunk of one member (data.size() must equal the chunk's
  /// element count). Thread-safe: positional write, no shared cursor.
  void write_chunk(std::uint32_t member, std::size_t chunk,
                   std::span<const float> data);

  /// Flush to disk and atomically rename the temp file to the final path.
  void finish();

 private:
  std::string path_;
  std::string tmp_;
  std::vector<std::size_t> offsets_;
  std::size_t header_bytes_ = 0;
  std::size_t total_elems_ = 0;
  std::uint32_t member_count_ = 0;
  int fd_ = -1;
};

/// Reader over a finished CNK1 file. read_chunk is thread-safe (pread).
class ChunkStoreReader {
 public:
  explicit ChunkStoreReader(const std::string& path);
  ~ChunkStoreReader();

  ChunkStoreReader(const ChunkStoreReader&) = delete;
  ChunkStoreReader& operator=(const ChunkStoreReader&) = delete;

  [[nodiscard]] const std::string& variable() const { return variable_; }
  [[nodiscard]] const comp::Shape& shape() const { return shape_; }
  [[nodiscard]] std::optional<float> fill() const { return fill_; }
  [[nodiscard]] std::uint32_t member_count() const { return member_count_; }

  /// Element offsets of the chunk partition (size chunk_count() + 1).
  [[nodiscard]] const std::vector<std::size_t>& chunk_offsets() const {
    return offsets_;
  }
  [[nodiscard]] std::size_t chunk_count() const { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t chunk_elems(std::size_t chunk) const {
    return offsets_[chunk + 1] - offsets_[chunk];
  }
  [[nodiscard]] std::size_t total_elems() const { return offsets_.back(); }

  /// Read one chunk of one member into `out` (size must equal the chunk's
  /// element count). Fails via the "ncio.read_chunk" failpoint in tests.
  void read_chunk(std::uint32_t member, std::size_t chunk, std::span<float> out) const;

 private:
  std::string path_;
  std::string variable_;
  comp::Shape shape_;
  std::optional<float> fill_;
  std::vector<std::size_t> offsets_;
  std::size_t header_bytes_ = 0;
  std::uint32_t member_count_ = 0;
  int fd_ = -1;
};

}  // namespace cesm::ncio
