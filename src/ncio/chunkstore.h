#pragma once
// Chunk-granular staged-variable store for the out-of-core pipeline.
//
// A full-grid suite run cannot hold even one ensemble member's variable in
// RAM alongside the derived per-point statistics, so synthesis writes each
// member chunk-by-chunk into a "CNK1" spill file and every later phase
// (stats accumulation, codec round-trips, verification) re-reads the same
// chunks on demand. The format is deliberately minimal: a self-describing
// little-endian header (variable name, shape, fill value, member count,
// chunk partition) followed by a per-chunk checksum table and the raw
// float32 payloads in member-major, chunk-major order — every chunk's byte
// offset is computable, so reads and writes are independent pread/pwrite
// calls that parallel workers can issue concurrently with no shared file
// cursor.
//
// Format version 2 makes every byte of the file checksummed, because spill
// stores can now outlive the run that wrote them (content-addressed spill
// reuse): the header carries an FNV-1a checksum of itself, the chunk
// checksum table carries its own checksum, and each (member, chunk)
// payload carries a 64-bit FNV-1a entry in the table, verified on every
// read_chunk. Truncation at any byte prefix and any single-bit flip —
// header, table, or payload — therefore surfaces as a typed FormatError
// (at open for header/table damage, at the affected read for payload
// damage), never as silently-wrong science or undefined behavior.
//
// The chunk partition stored in the header is the single source of truth
// shared by both verification legs: the streaming leg feeds kernels and
// codecs chunk-by-chunk, the in-core leg reassembles whole members from
// the very same bytes, which is what makes "bitwise-identical verdicts on
// the same data" a meaningful claim.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "compress/codec.h"

namespace cesm::ncio {

/// Writer: construct with the full layout (all header fields are known up
/// front), write_chunk from any thread, then finish() to fsync + atomically
/// rename into place. A writer destroyed without finish() removes its
/// temporary file. Temporary names are unique per process and per writer,
/// so concurrent processes staging into one directory never clobber each
/// other's in-flight files.
class ChunkStoreWriter {
 public:
  ChunkStoreWriter(std::string path, std::string variable, comp::Shape shape,
                   std::optional<float> fill, std::uint32_t member_count,
                   std::span<const std::size_t> chunk_offsets);
  ~ChunkStoreWriter();

  ChunkStoreWriter(const ChunkStoreWriter&) = delete;
  ChunkStoreWriter& operator=(const ChunkStoreWriter&) = delete;

  /// Write one chunk of one member (data.size() must equal the chunk's
  /// element count) and record its checksum. Thread-safe across distinct
  /// (member, chunk) slots: positional write, no shared cursor, one
  /// checksum slot per chunk. finish() must not race in-flight writes
  /// (callers join their workers first).
  void write_chunk(std::uint32_t member, std::size_t chunk,
                   std::span<const float> data);

  /// Write the checksum table, flush to disk, and atomically rename the
  /// temp file to the final path.
  void finish();

 private:
  std::string path_;
  std::string tmp_;
  std::string variable_;
  comp::Shape shape_;
  std::optional<float> fill_;
  std::vector<std::size_t> offsets_;
  std::vector<std::uint64_t> checksums_;  // member-major, one per chunk
  std::size_t header_bytes_ = 0;
  std::size_t total_elems_ = 0;
  std::uint32_t member_count_ = 0;
  int fd_ = -1;
};

/// Reader over a finished CNK1 file. The constructor validates the entire
/// header and checksum table (typed FormatError on any damage); read_chunk
/// is thread-safe (pread) and verifies the chunk's payload checksum.
class ChunkStoreReader {
 public:
  explicit ChunkStoreReader(const std::string& path);
  ~ChunkStoreReader();

  ChunkStoreReader(const ChunkStoreReader&) = delete;
  ChunkStoreReader& operator=(const ChunkStoreReader&) = delete;

  [[nodiscard]] const std::string& variable() const { return variable_; }
  [[nodiscard]] const comp::Shape& shape() const { return shape_; }
  [[nodiscard]] std::optional<float> fill() const { return fill_; }
  [[nodiscard]] std::uint32_t member_count() const { return member_count_; }

  /// Element offsets of the chunk partition (size chunk_count() + 1).
  [[nodiscard]] const std::vector<std::size_t>& chunk_offsets() const {
    return offsets_;
  }
  [[nodiscard]] std::size_t chunk_count() const { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t chunk_elems(std::size_t chunk) const {
    return offsets_[chunk + 1] - offsets_[chunk];
  }
  [[nodiscard]] std::size_t total_elems() const { return offsets_.back(); }

  /// Byte extents of the file regions, for corruption tests that need to
  /// aim at a specific one: [0, header_bytes) is the header,
  /// [header_bytes, header_bytes + table_bytes) the checksum table, and
  /// everything after is payload.
  [[nodiscard]] std::size_t header_bytes() const { return header_bytes_; }
  [[nodiscard]] std::size_t table_bytes() const { return checksums_.size() * 8; }

  /// Read one chunk of one member into `out` (size must equal the chunk's
  /// element count) and verify its checksum (FormatError on mismatch).
  /// Fails via the "ncio.read_chunk" failpoint in tests.
  void read_chunk(std::uint32_t member, std::size_t chunk, std::span<float> out) const;

 private:
  std::string path_;
  std::string variable_;
  comp::Shape shape_;
  std::optional<float> fill_;
  std::vector<std::size_t> offsets_;
  std::vector<std::uint64_t> checksums_;  // member-major, one per chunk
  std::size_t header_bytes_ = 0;
  std::uint32_t member_count_ = 0;
  int fd_ = -1;
};

}  // namespace cesm::ncio
