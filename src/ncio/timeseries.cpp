#include "ncio/timeseries.h"

#include "util/error.h"

namespace cesm::ncio {

namespace {

const Variable& require_variable(const Dataset& ds, const std::string& name) {
  const Variable* v = ds.find_variable(name);
  if (v == nullptr) throw InvalidArgument("time slice is missing variable " + name);
  return *v;
}

}  // namespace

Dataset to_timeseries(std::span<const Dataset> slices, const std::string& variable,
                      const StoragePolicy& policy) {
  CESM_REQUIRE(!slices.empty());
  const Variable& first = require_variable(slices.front(), variable);
  CESM_REQUIRE(policy.storage != Storage::kCodec || !policy.codec_spec.empty());

  Dataset out;
  out.attrs() = slices.front().attrs();
  out.attrs()["variable"] = variable;
  out.attrs()["time_steps"] = static_cast<std::int64_t>(slices.size());

  const std::uint32_t time_dim = out.add_dimension("time", slices.size());
  std::vector<std::uint32_t> dim_map;  // source dim id -> output dim id
  Variable series;
  series.name = variable;
  series.dtype = first.dtype;
  series.fill_value = first.fill_value;
  series.attrs = first.attrs;
  series.storage = policy.storage;
  series.codec_spec = policy.codec_spec;
  series.dim_ids.push_back(time_dim);
  for (std::uint32_t id : first.dim_ids) {
    const Dimension& d = slices.front().dimension(id);
    std::uint32_t out_id;
    if (auto existing = out.find_dimension(d.name)) {
      out_id = *existing;
    } else {
      out_id = out.add_dimension(d.name, d.length);
    }
    series.dim_ids.push_back(out_id);
  }

  for (const Dataset& slice : slices) {
    const Variable& v = require_variable(slice, variable);
    if (v.dtype != first.dtype || v.element_count() != first.element_count()) {
      throw InvalidArgument("inconsistent slices for variable " + variable);
    }
    if (v.fill_value != first.fill_value) {
      throw InvalidArgument("inconsistent fill value for variable " + variable);
    }
    if (first.dtype == DataType::kFloat32) {
      series.f32.insert(series.f32.end(), v.f32.begin(), v.f32.end());
    } else {
      series.f64.insert(series.f64.end(), v.f64.begin(), v.f64.end());
    }
  }
  out.add_variable(std::move(series));
  return out;
}

std::map<std::string, Dataset> to_timeseries_all(std::span<const Dataset> slices,
                                                 const PolicyFn& policy) {
  CESM_REQUIRE(!slices.empty());
  std::map<std::string, Dataset> out;
  for (const Variable& v : slices.front().variables()) {
    const StoragePolicy p = policy ? policy(v) : StoragePolicy{};
    out.emplace(v.name, to_timeseries(slices, v.name, p));
  }
  return out;
}

std::vector<float> timeseries_slice(const Dataset& series, const std::string& variable,
                                    std::size_t t) {
  const Variable* v = series.find_variable(variable);
  CESM_REQUIRE(v != nullptr);
  CESM_REQUIRE(v->dtype == DataType::kFloat32);
  CESM_REQUIRE(!v->dim_ids.empty());
  const std::uint64_t steps = series.dimension(v->dim_ids.front()).length;
  CESM_REQUIRE(t < steps);
  const std::size_t per_step = v->f32.size() / steps;
  return std::vector<float>(v->f32.begin() + static_cast<std::ptrdiff_t>(t * per_step),
                            v->f32.begin() + static_cast<std::ptrdiff_t>((t + 1) * per_step));
}

}  // namespace cesm::ncio
