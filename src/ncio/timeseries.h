#pragma once
// History-file to time-series conversion.
//
// Paper §1: "we examine compression with the intention of integrating it
// into a post-processing step that converts the CESM time-slice data
// history files to time series data files for each variable". This module
// is that step: given a sequence of history Datasets (one per time slice),
// it produces one Dataset per variable with a leading "time" dimension,
// applying a chosen per-variable storage treatment (raw, deflate, or any
// study codec) on the way out.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ncio/dataset.h"

namespace cesm::ncio {

/// Storage decision for one variable of the output time series.
struct StoragePolicy {
  Storage storage = Storage::kDeflate;
  std::string codec_spec;  ///< required when storage == kCodec
};

/// Chooses the treatment per variable; default compresses everything
/// losslessly (deflate).
using PolicyFn = std::function<StoragePolicy(const Variable&)>;

/// Convert time slices into one time-series dataset for `variable`.
/// Every slice must contain the variable with identical dims/attrs/fill.
/// The output has dimensions {time, <original dims...>}.
Dataset to_timeseries(std::span<const Dataset> slices, const std::string& variable,
                      const StoragePolicy& policy = {});

/// Convert all variables of the slices; returns one dataset per variable,
/// keyed by name. `policy` decides each variable's storage.
std::map<std::string, Dataset> to_timeseries_all(std::span<const Dataset> slices,
                                                 const PolicyFn& policy = nullptr);

/// Extract time step `t` of a time-series dataset's variable as a flat
/// vector (float32 variables only).
std::vector<float> timeseries_slice(const Dataset& series, const std::string& variable,
                                    std::size_t t);

}  // namespace cesm::ncio
