#pragma once
// Byte-level serialization helpers used by the codecs and the ncio
// container. All multi-byte values are stored little-endian regardless of
// host order so encoded streams are portable.

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.h"

namespace cesm {

using Bytes = std::vector<std::uint8_t>;

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u32) string.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  void raw(const std::uint8_t* data, std::size_t n) {
    out_.insert(out_.end(), data, data + n);
  }

  void raw(std::span<const std::uint8_t> data) { raw(data.data(), data.size()); }

  // Bulk little-endian array writes (cache serialization of multi-MB
  // field/statistic arrays): one memcpy on little-endian hosts, the
  // per-element path elsewhere, so streams stay byte-identical across
  // architectures.
  void f32_array(std::span<const float> v) { scalar_array(v); }
  void f64_array(std::span<const double> v) { scalar_array(v); }
  void u32_array(std::span<const std::uint32_t> v) { scalar_array(v); }

  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  template <typename T>
  void scalar_array(std::span<const T> v) {
    static_assert(std::is_arithmetic_v<T>);
    if constexpr (std::endian::native == std::endian::little) {
      raw(reinterpret_cast<const std::uint8_t*>(v.data()), v.size() * sizeof(T));
    } else {
      for (const T& x : v) {
        if constexpr (sizeof(T) == 4) {
          u32(std::bit_cast<std::uint32_t>(x));
        } else {
          u64(std::bit_cast<std::uint64_t>(x));
        }
      }
    }
  }

  Bytes& out_;
};

/// Bounds-checked little-endian byte source; throws FormatError past end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32() { return std::bit_cast<float>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::span<const std::uint8_t> raw(std::size_t n) {
    need(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  // Bulk little-endian array reads mirroring ByteWriter's *_array.
  void f32_array(std::span<float> out) { scalar_array(out); }
  void f64_array(std::span<double> out) { scalar_array(out); }
  void u32_array(std::span<std::uint32_t> out) { scalar_array(out); }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  void scalar_array(std::span<T> out) {
    static_assert(std::is_arithmetic_v<T>);
    if constexpr (std::endian::native == std::endian::little) {
      const auto src = raw(out.size() * sizeof(T));
      std::memcpy(out.data(), src.data(), src.size());
    } else {
      for (T& x : out) {
        if constexpr (sizeof(T) == 4) {
          x = std::bit_cast<T>(u32());
        } else {
          x = std::bit_cast<T>(u64());
        }
      }
    }
  }

  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw FormatError("truncated stream");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace cesm
