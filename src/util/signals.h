#pragma once
// Cooperative SIGINT/SIGTERM drain (cesm::util).
//
// No binary in the tree used to install any signal handler, so Ctrl-C
// mid-run could kill a process between the open() and the final write()
// of a suite CSV or bench JSON, leaving a half-written file behind. This
// helper gives every long-running binary (cesmd, cesmtool, bench_suite)
// the same drain discipline the DiskCache already applies to its entries:
//
//   * install_signal_drain() registers an async-signal-safe handler for
//     SIGINT and SIGTERM that records the signal and writes one byte to a
//     self-pipe — it never exits the process itself;
//   * code checks interrupt_requested() at its natural boundaries
//     (between variables, between bench phases, between requests) and
//     finishes the write in flight — writes themselves go through
//     temp+rename, so there is no window where a reader or a second
//     signal can observe a torn file;
//   * poll/select loops (the cesmd accept loop) add interrupt_fd() to
//     their fd set so a signal delivered to any thread wakes them;
//   * a SECOND signal restores the default disposition and re-raises, so
//     a wedged process still dies to a double Ctrl-C.

namespace cesm::util {

/// Install the SIGINT/SIGTERM drain handler. Idempotent; thread-safe.
/// SIGPIPE is set to ignore at the same time (a disconnecting socket
/// client must surface as a write error, not a process kill).
void install_signal_drain();

/// True once a drained signal has been received.
bool interrupt_requested();

/// The signal number recorded by the handler (0 when none yet).
int interrupt_signal();

/// Read end of the self-pipe: becomes readable when a signal arrives.
/// Valid (>= 0) only after install_signal_drain(). Never read it empty —
/// poll it and consult interrupt_requested().
int interrupt_fd();

/// Conventional exit code for a run that drained `sig` (128 + signum).
int interrupt_exit_code();

/// Test hook: forget a recorded signal so scenarios stay independent.
void clear_interrupt_for_tests();

}  // namespace cesm::util
