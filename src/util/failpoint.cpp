#include "util/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/rng.h"
#include "util/trace.h"

namespace cesm::fail {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

/// Canonical site registry. Every CESM_FAILPOINT name in the tree must be
/// listed here: the list is what makes all_sites() complete without
/// executing a single site, which in turn is what lets the failpoint
/// meta-test fail when a site has no test firing it. Keep sorted.
constexpr const char* kRegisteredSites[] = {
    "apax.decode",        //
    "cache.disk_read",    //
    "chunked.decode",     //
    "comp.prep_plan",     //
    "deflate.decode",     //
    "fpc.decode",         //
    "fpz.decode",         //
    "grib2.decode",       //
    "isabela.decode",     //
    "isobar.decode",      //
    "mafisc.decode",      //
    "ncio.read",          //
    "ncio.read_chunk",    //
    "ncio.read_file",     //
    "ncio.write",         //
    "ncio.write_file",    //
    "sched.task",         //
    "serve.request",      //
    "special.decode",     //
    "suite.variable",     //
    "suite.verify_variant",
};

std::atomic<std::size_t> g_armed_count{0};

}  // namespace

struct Site {
  std::string name;
  std::mutex mu;  ///< guards trigger state on the (test-only) armed path
  Trigger trigger;
  std::uint64_t countdown = 0;   ///< kNth: armed hits left before firing
  std::uint64_t armed_hits = 0;  ///< kProbability: index into the hash stream
  std::atomic<bool> armed{false};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
};

namespace {

struct Registry {
  std::mutex mu;
  /// Node-based map: Site addresses stay stable across registrations.
  std::map<std::string, Site> sites;
};

Registry& registry() {
  // Leaked on purpose: failpoints may be hit during static destruction.
  static auto* r = [] {
    auto* reg = new Registry;
    for (const char* name : kRegisteredSites) reg->sites[name].name = name;
    return reg;
  }();
  return *r;
}

Site* find_site(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  auto it = reg.sites.find(name);
  return it == reg.sites.end() ? nullptr : &it->second;
}

Site& require_site(const std::string& name) {
  Site* s = find_site(name);
  if (s == nullptr) throw InvalidArgument("unknown failpoint: " + name);
  return *s;
}

/// Apply `trigger` to `s` and maintain the armed-site census that backs
/// the global enabled flag.
void set_trigger(Site& s, const Trigger& trigger) {
  std::lock_guard lock(s.mu);
  const bool was_armed = s.armed.load(std::memory_order_relaxed);
  s.trigger = trigger;
  s.countdown = trigger.kind == Trigger::Kind::kNth ? trigger.n : 0;
  s.armed_hits = 0;
  const bool now_armed = trigger.kind != Trigger::Kind::kNever;
  s.armed.store(now_armed, std::memory_order_release);
  if (was_armed != now_armed) {
    const std::size_t count =
        now_armed ? g_armed_count.fetch_add(1, std::memory_order_relaxed) + 1
                  : g_armed_count.fetch_sub(1, std::memory_order_relaxed) - 1;
    g_enabled.store(count > 0, std::memory_order_relaxed);
  }
}

Trigger parse_trigger(const std::string& spec) {
  if (spec == "off") return Trigger::off();
  if (spec == "always") return Trigger::always();
  if (spec == "once") return Trigger::once();
  if (spec.rfind("nth:", 0) == 0) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(spec.c_str() + 4, &end, 10);
    if (end == spec.c_str() + 4 || *end != '\0' || n == 0) {
      throw InvalidArgument("bad failpoint trigger (want nth:N, N >= 1): " + spec);
    }
    return Trigger::nth(n);
  }
  if (spec.rfind("prob:", 0) == 0) {
    char* end = nullptr;
    const double p = std::strtod(spec.c_str() + 5, &end);
    if (end == spec.c_str() + 5 || !(p >= 0.0 && p <= 1.0)) {
      throw InvalidArgument("bad failpoint trigger (want prob:P[:SEED], 0<=P<=1): " + spec);
    }
    std::uint64_t seed = 0;
    if (*end == ':') {
      char* seed_end = nullptr;
      seed = std::strtoull(end + 1, &seed_end, 0);
      if (seed_end == end + 1 || *seed_end != '\0') {
        throw InvalidArgument("bad failpoint trigger seed: " + spec);
      }
    } else if (*end != '\0') {
      throw InvalidArgument("bad failpoint trigger: " + spec);
    }
    return Trigger::with_probability(p, seed);
  }
  throw InvalidArgument("unknown failpoint trigger: " + spec);
}

// Applies CESM_FAILPOINTS exactly once, before main() in any binary that
// links a failpoint site (the TU is pulled in by the site's symbol
// references). Sites armed here are live for the whole process.
const bool g_env_applied = [] {
  configure_from_env();
  return true;
}();

}  // namespace

Site& site(const char* name) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  Site& s = reg.sites[name];
  // A site the canonical list does not know about still works (and shows
  // up in all_sites() once executed) so production code never aborts, but
  // the meta-test will flag it as unfirable until it is listed.
  if (s.name.empty()) s.name = name;
  return s;
}

void hit(Site& s) {
  s.hits.fetch_add(1, std::memory_order_relaxed);
  trace::counter_add("fail.hit." + s.name, 1);
  if (!s.armed.load(std::memory_order_acquire)) return;

  bool fire = false;
  bool disarmed = false;
  {
    std::lock_guard lock(s.mu);
    switch (s.trigger.kind) {
      case Trigger::Kind::kNever:
        break;
      case Trigger::Kind::kAlways:
        fire = true;
        break;
      case Trigger::Kind::kNth:
        if (s.countdown > 0 && --s.countdown == 0) {
          fire = true;
          // One-shot: disarm before throwing so a retry of the failed
          // operation succeeds — the recovery path the suite's retry
          // policy depends on.
          s.trigger = Trigger::off();
          s.armed.store(false, std::memory_order_release);
          disarmed = true;
        }
        break;
      case Trigger::Kind::kProbability: {
        // Pure function of (seed, armed-hit index): a fixed hit sequence
        // fires at the same indices on every run.
        const std::uint64_t h = hash_combine(s.trigger.seed, s.armed_hits++);
        fire = static_cast<double>(h >> 11) * 0x1.0p-53 < s.trigger.probability;
        break;
      }
    }
  }
  if (disarmed) {
    const std::size_t count = g_armed_count.fetch_sub(1, std::memory_order_relaxed) - 1;
    g_enabled.store(count > 0, std::memory_order_relaxed);
  }
  if (!fire) return;
  s.fires.fetch_add(1, std::memory_order_relaxed);
  trace::counter_add("fail.fired." + s.name, 1);
  throw InjectedFault(s.name);
}

}  // namespace detail

void arm(const std::string& site, const Trigger& trigger) {
  detail::set_trigger(detail::require_site(site), trigger);
}

void disarm(const std::string& site) { arm(site, Trigger::off()); }

void disarm_all() {
  detail::Registry& reg = detail::registry();
  std::vector<detail::Site*> sites;
  {
    std::lock_guard lock(reg.mu);
    for (auto& [_, s] : reg.sites) sites.push_back(&s);
  }
  for (detail::Site* s : sites) detail::set_trigger(*s, Trigger::off());
}

void reset() {
  detail::Registry& reg = detail::registry();
  std::vector<detail::Site*> sites;
  {
    std::lock_guard lock(reg.mu);
    for (auto& [_, s] : reg.sites) sites.push_back(&s);
  }
  for (detail::Site* s : sites) {
    detail::set_trigger(*s, Trigger::off());
    s->hits.store(0, std::memory_order_relaxed);
    s->fires.store(0, std::memory_order_relaxed);
  }
}

void configure(const std::string& spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find_first_of(",;", pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    // Tolerate stray whitespace around entries.
    const std::size_t first = entry.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const std::size_t last = entry.find_last_not_of(" \t");
    entry = entry.substr(first, last - first + 1);

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
      throw InvalidArgument("bad failpoint entry (want site=trigger): " + entry);
    }
    const auto trim = [](std::string s) {
      const std::size_t b = s.find_first_not_of(" \t");
      if (b == std::string::npos) return std::string();
      return s.substr(b, s.find_last_not_of(" \t") - b + 1);
    };
    const std::string site = trim(entry.substr(0, eq));
    const std::string trigger = trim(entry.substr(eq + 1));
    if (site.empty() || trigger.empty()) {
      throw InvalidArgument("bad failpoint entry (want site=trigger): " + entry);
    }
    arm(site, detail::parse_trigger(trigger));
  }
}

bool configure_from_env() {
  const char* spec = std::getenv("CESM_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return false;
  try {
    configure(spec);
    return true;
  } catch (const Error& e) {
    // A typo in the environment must not abort the host process during
    // static initialization; report and run without the bad entries.
    std::fprintf(stderr, "CESM_FAILPOINTS ignored: %s\n", e.what());
    return false;
  }
}

std::vector<std::string> all_sites() {
  detail::Registry& reg = detail::registry();
  std::lock_guard lock(reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.sites.size());
  for (const auto& [name, _] : reg.sites) names.push_back(name);
  return names;  // std::map iterates sorted
}

bool is_registered(const std::string& site) { return detail::find_site(site) != nullptr; }

std::uint64_t hit_count(const std::string& site) {
  return detail::require_site(site).hits.load(std::memory_order_relaxed);
}

std::uint64_t fire_count(const std::string& site) {
  return detail::require_site(site).fires.load(std::memory_order_relaxed);
}

std::map<std::string, std::uint64_t> fire_counts() {
  detail::Registry& reg = detail::registry();
  std::lock_guard lock(reg.mu);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, s] : reg.sites) {
    out[name] = s.fires.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace cesm::fail
